package batlife

import (
	"sort"
	"sync"
	"testing"
)

// TestSolveReportFirstSolve pins the report of a cold solve: a fresh
// model build, no memo hit, and the uniformisation statistics of the
// actual iteration.
func TestSolveReportFirstSolve(t *testing.T) {
	b, w := onOffC1(t)
	times := []float64{10000, 15000}
	s := NewSolver(SolverOptions{})
	var rep SolveReport
	d, err := s.LifetimeDistribution(b, w, times, AnalysisOptions{Delta: 50, Report: &rep})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModelCacheHit || rep.ResultMemoHit {
		t.Errorf("cold solve reported hits: %+v", rep)
	}
	if rep.States != d.States || rep.Transitions != d.Transitions || rep.Iterations != d.Iterations {
		t.Errorf("report stats %+v disagree with distribution %d/%d/%d",
			rep, d.States, d.Transitions, d.Iterations)
	}
	if rep.Iterations <= 0 || rep.SpMVs != rep.Iterations {
		t.Errorf("Iterations = %d, SpMVs = %d; want equal and positive", rep.Iterations, rep.SpMVs)
	}
	if rep.FoxGlynnRight <= 0 || rep.FoxGlynnLeft > rep.FoxGlynnRight {
		t.Errorf("Fox–Glynn window [%d, %d] implausible", rep.FoxGlynnLeft, rep.FoxGlynnRight)
	}
	if rep.UniformizationRate <= 0 {
		t.Errorf("UniformizationRate = %v", rep.UniformizationRate)
	}
	if rep.BuildDuration <= 0 || rep.SolveDuration <= 0 {
		t.Errorf("durations %v/%v, want positive on a cold solve", rep.BuildDuration, rep.SolveDuration)
	}
}

// TestSolveReportMemoReplay pins the memo-hit contract: the answer comes
// from the memo, the statistics replay those of the original solve, and
// ResultMemoHit/ModelCacheHit are set.
func TestSolveReportMemoReplay(t *testing.T) {
	b, w := onOffC1(t)
	times := []float64{10000, 15000}
	s := NewSolver(SolverOptions{})
	var first SolveReport
	if _, err := s.LifetimeDistribution(b, w, times, AnalysisOptions{Delta: 50, Report: &first}); err != nil {
		t.Fatal(err)
	}
	var second SolveReport
	d2, err := s.LifetimeDistribution(b, w, times, AnalysisOptions{Delta: 50, Report: &second})
	if err != nil {
		t.Fatal(err)
	}
	if !second.ResultMemoHit || !second.ModelCacheHit {
		t.Errorf("repeat solve: ResultMemoHit=%v ModelCacheHit=%v, want both true",
			second.ResultMemoHit, second.ModelCacheHit)
	}
	if second.SolveDuration != 0 {
		t.Errorf("memo hit SolveDuration = %v, want 0", second.SolveDuration)
	}
	if second.States != first.States || second.Iterations != first.Iterations ||
		second.SpMVs != first.SpMVs || second.FoxGlynnRight != first.FoxGlynnRight {
		t.Errorf("memo replay stats %+v != original %+v", second, first)
	}
	if d2.Iterations != first.Iterations {
		t.Errorf("memoised distribution Iterations = %d, want %d", d2.Iterations, first.Iterations)
	}
}

// TestTelemetryExactCounts asserts exact deterministic counter values
// after a known sequence of solves: two identical queries are one build,
// one engine hit, one memo hit — and the iteration total matches the
// report.
func TestTelemetryExactCounts(t *testing.T) {
	b, w := onOffC1(t)
	times := []float64{10000, 15000}
	reg := NewTelemetry()
	s := NewSolver(SolverOptions{Telemetry: reg})
	var rep SolveReport
	if _, err := s.LifetimeDistribution(b, w, times, AnalysisOptions{Delta: 50, Report: &rep}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LifetimeDistribution(b, w, times, AnalysisOptions{Delta: 50}); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{
		"solver_solves_total":                  2,
		"solver_result_memo_hits_total":        1,
		"engine_cache_misses_total":            1,
		"engine_cache_hits_total":              1,
		"core_expansions_total":                1,
		"ctmc_solves_total":                    1,
		"ctmc_uniformization_iterations_total": int64(rep.Iterations),
		"ctmc_spmv_total":                      int64(rep.SpMVs),
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("Stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

// TestSweepProgressOncePerScenario pins the Progress contract: exactly
// one callback per scenario — including memo-served repeats and failing
// scenarios — with each done value 1..n delivered exactly once.
func TestSweepProgressOncePerScenario(t *testing.T) {
	b, w := onOffC1(t)
	times := []float64{10000, 15000}
	mk := func(name string, delta float64) Scenario {
		return Scenario{Name: name, Battery: b, Workload: w, DeltaAs: delta, Times: times}
	}
	scenarios := []Scenario{
		mk("a", 50),
		mk("a-again", 50), // same cell: served from cache/memo
		mk("bad", 7),      // 7 does not divide the well capacities: fails
		mk("b", 100),
		mk("a-thrice", 50),
		mk("bad-again", 7),
	}
	var (
		mu    sync.Mutex
		calls []int
	)
	s := NewSolver(SolverOptions{})
	results, err := s.Sweep(scenarios, SweepOptions{
		Workers: 3,
		Progress: func(done, total int) {
			if total != len(scenarios) {
				t.Errorf("Progress total = %d, want %d", total, len(scenarios))
			}
			mu.Lock()
			calls = append(calls, done)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(scenarios) {
		t.Fatalf("Progress fired %d times, want once per scenario (%d)", len(calls), len(scenarios))
	}
	sort.Ints(calls)
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("Progress done values %v, want a permutation of 1..%d", calls, len(scenarios))
		}
	}
	var failed int
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}
	if failed != 2 {
		t.Errorf("%d failed scenarios, want 2", failed)
	}
}

// TestSweepTelemetrySpans runs an instrumented sweep and checks the span
// coverage the trace export promises: one sweep.scenario span per
// scenario, plus build and transient spans underneath.
func TestSweepTelemetrySpans(t *testing.T) {
	b, w := onOffC1(t)
	times := []float64{10000, 15000}
	reg := NewTelemetry()
	s := NewSolver(SolverOptions{Telemetry: reg})
	scenarios := []Scenario{
		{Name: "d50", Battery: b, Workload: w, DeltaAs: 50, Times: times},
		{Name: "d100", Battery: b, Workload: w, DeltaAs: 100, Times: times},
		{Name: "bad", Battery: b, Workload: w, DeltaAs: 7, Times: times},
	}
	if _, err := s.Sweep(scenarios, SweepOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, span := range reg.Tracer().Spans() {
		byName[span.Name]++
	}
	if byName["sweep.scenario"] != len(scenarios) {
		t.Errorf("sweep.scenario spans = %d, want %d (got %v)", byName["sweep.scenario"], len(scenarios), byName)
	}
	// All three scenarios are cache misses, so three engine.build spans
	// (the bad Δ ends with an error attr); core.build rejects the bad Δ
	// in validation, before its span starts.
	if byName["engine.build"] != 3 || byName["core.build"] != 2 {
		t.Errorf("build spans engine=%d core=%d, want 3/2", byName["engine.build"], byName["core.build"])
	}
	if byName["ctmc.transient"] != 2 {
		t.Errorf("ctmc.transient spans = %d, want 2", byName["ctmc.transient"])
	}
	if v := reg.Counter("sweep_scenarios_total").Value(); v != int64(len(scenarios)) {
		t.Errorf("sweep_scenarios_total = %d, want %d", v, len(scenarios))
	}
	if h := reg.Histogram("sweep_queue_wait_seconds"); h.Snapshot().Count != int64(len(scenarios)) {
		t.Errorf("sweep_queue_wait_seconds count = %d, want %d", h.Snapshot().Count, len(scenarios))
	}
}
