package batlife

import (
	"encoding/json"
	"errors"
	"testing"
)

// twoState returns a small custom workload with a charging mode, the
// codec's golden model.
func twoState(t *testing.T) *Workload {
	t.Helper()
	w, err := NewWorkload(
		[]StateSpec{{Name: "idle", CurrentA: 0.008}, {Name: "send", CurrentA: 0.2}},
		[]TransitionSpec{
			{From: "idle", To: "send", RatePerSec: 0.5},
			{From: "send", To: "idle", RatePerSec: 0.25},
		},
		"idle")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBatteryJSONGolden(t *testing.T) {
	got, err := json.Marshal(PaperBattery())
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"version":1,"capacity_as":7200,"available_fraction":0.625,"flow_rate_per_sec":0.000045}`
	if string(got) != want {
		t.Errorf("marshal = %s\nwant      %s", got, want)
	}

	var back Battery
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != PaperBattery() {
		t.Errorf("round trip = %+v, want %+v", back, PaperBattery())
	}
}

func TestBatteryJSONUnitString(t *testing.T) {
	var b Battery
	in := `{"capacity": "2000mAh", "available_fraction": 0.625, "flow_rate_per_sec": 4.5e-5}`
	if err := json.Unmarshal([]byte(in), &b); err != nil {
		t.Fatal(err)
	}
	if b != PaperBattery() {
		t.Errorf("decoded %+v, want %+v", b, PaperBattery())
	}
}

func TestBatteryJSONDecodeErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"missing capacity", `{"available_fraction":0.625,"flow_rate_per_sec":4.5e-5}`},
		{"both capacities", `{"capacity_as":7200,"capacity":"2000mAh","available_fraction":0.625,"flow_rate_per_sec":4.5e-5}`},
		{"bad unit", `{"capacity":"2000parsec","available_fraction":0.625,"flow_rate_per_sec":4.5e-5}`},
		{"invalid battery", `{"capacity_as":-1,"available_fraction":0.625,"flow_rate_per_sec":4.5e-5}`},
		{"fraction out of range", `{"capacity_as":7200,"available_fraction":1.5,"flow_rate_per_sec":4.5e-5}`},
		{"unknown field", `{"capacity_as":7200,"available_fraction":0.625,"flow_rate_per_sec":4.5e-5,"chemistry":"LiIon"}`},
		{"future version", `{"version":2,"capacity_as":7200,"available_fraction":0.625,"flow_rate_per_sec":4.5e-5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b Battery
			err := json.Unmarshal([]byte(tc.in), &b)
			if !errors.Is(err, ErrBadArgument) {
				t.Errorf("err = %v, want ErrBadArgument", err)
			}
		})
	}
}

func TestInvalidBatteryDoesNotMarshal(t *testing.T) {
	_, err := json.Marshal(Battery{CapacityAs: -1, AvailableFraction: 0.5, FlowRate: 1e-5})
	if !errors.Is(err, ErrBadArgument) {
		t.Errorf("err = %v, want ErrBadArgument", err)
	}
}

func TestWorkloadJSONGolden(t *testing.T) {
	got, err := json.Marshal(twoState(t))
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"version":1,` +
		`"states":[{"name":"idle","current":0.008},{"name":"send","current":0.2}],` +
		`"transitions":[{"from":"idle","to":"send","rate_per_second":0.5},{"from":"send","to":"idle","rate_per_second":0.25}],` +
		`"initial":"idle"}`
	if string(got) != want {
		t.Errorf("marshal = %s\nwant      %s", got, want)
	}
}

func TestWorkloadJSONRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		make func() (*Workload, error)
	}{
		{"custom", func() (*Workload, error) {
			w := twoState(t)
			return w, nil
		}},
		{"onoff erlang3", func() (*Workload, error) { return OnOffWorkload(1, 3, 0.96) }},
		{"simple", SimpleWireless},
		{"burst", BurstWireless},
		{"charging", func() (*Workload, error) {
			return NewWorkload(
				[]StateSpec{{Name: "drain", CurrentA: 0.1}, {Name: "charge", CurrentA: -0.05}},
				[]TransitionSpec{
					{From: "drain", To: "charge", RatePerSec: 1e-3},
					{From: "charge", To: "drain", RatePerSec: 2e-3},
				},
				"drain")
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, err := tc.make()
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			var back Workload
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			again, err := json.Marshal(&back)
			if err != nil {
				t.Fatal(err)
			}
			if string(again) != string(data) {
				t.Errorf("round trip drifted:\n first %s\nsecond %s", data, again)
			}
			// The rebuilt model must behave identically, not just print
			// identically.
			if back.charging != w.charging {
				t.Errorf("charging = %v, want %v", back.charging, w.charging)
			}
			m1, err1 := w.MeanCurrent()
			m2, err2 := back.MeanCurrent()
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("MeanCurrent errors diverge: %v vs %v", err1, err2)
			}
			//numlint:ignore floatcmp identical construction must give bit-identical results
			if err1 == nil && m1 != m2 {
				t.Errorf("MeanCurrent = %v, want %v", m2, m1)
			}
		})
	}
}

func TestWorkloadJSONUnitStringsAndHourlyRates(t *testing.T) {
	// The legacy CLI -spec schema: unit-string currents and per-hour
	// rates must decode to the same model as the canonical form.
	legacy := `{
	  "states": [
	    {"name": "idle", "current": "8mA"},
	    {"name": "send", "current": "200mA"}
	  ],
	  "transitions": [
	    {"from": "idle", "to": "send", "rate_per_hour": 1800},
	    {"from": "send", "to": "idle", "rate_per_second": 0.25}
	  ],
	  "initial": "idle"
	}`
	var w Workload
	if err := json.Unmarshal([]byte(legacy), &w); err != nil {
		t.Fatal(err)
	}
	canonical, err := json.Marshal(&w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(twoState(t))
	if err != nil {
		t.Fatal(err)
	}
	if string(canonical) != string(want) {
		t.Errorf("legacy spec decoded to %s\nwant %s", canonical, want)
	}
}

func TestWorkloadJSONDecodeErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no states", `{"states":[],"transitions":[],"initial":"idle"}`},
		{"unknown initial", `{"states":[{"name":"idle","current":0.008}],"transitions":[],"initial":"nope"}`},
		{"both rate units", `{"states":[{"name":"a","current":1},{"name":"b","current":1}],"transitions":[{"from":"a","to":"b","rate_per_second":1,"rate_per_hour":1}],"initial":"a"}`},
		{"unknown transition endpoint", `{"states":[{"name":"a","current":1}],"transitions":[{"from":"a","to":"b","rate_per_second":1}],"initial":"a"}`},
		{"bad current unit", `{"states":[{"name":"a","current":"8knots"}],"transitions":[],"initial":"a"}`},
		{"missing current", `{"states":[{"name":"a"}],"transitions":[],"initial":"a"}`},
		{"unknown field", `{"states":[{"name":"a","current":1}],"transitions":[],"initial":"a","color":"red"}`},
		{"future version", `{"version":7,"states":[{"name":"a","current":1}],"transitions":[],"initial":"a"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w Workload
			err := json.Unmarshal([]byte(tc.in), &w)
			if !errors.Is(err, ErrBadArgument) {
				t.Errorf("err = %v, want ErrBadArgument", err)
			}
		})
	}
}

func TestAnalysisOptionsJSONGolden(t *testing.T) {
	got, err := json.Marshal(AnalysisOptions{Delta: 18, Epsilon: 1e-10, MaxIterations: 500000})
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"version":1,"delta_as":18,"epsilon":1e-10,"max_iterations":500000}`
	if string(got) != want {
		t.Errorf("marshal = %s\nwant      %s", got, want)
	}
	var back AnalysisOptions
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	//numlint:ignore floatcmp round trip must be exact
	if back.Delta != 18 || back.Epsilon != 1e-10 || back.MaxIterations != 500000 {
		t.Errorf("round trip = %+v", back)
	}

	// The zero value stays minimal on the wire.
	zero, err := json.Marshal(AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(zero) != `{"version":1}` {
		t.Errorf("zero marshal = %s", zero)
	}
}

func TestAnalysisOptionsJSONUnitDelta(t *testing.T) {
	var o AnalysisOptions
	if err := json.Unmarshal([]byte(`{"delta":"5mAh"}`), &o); err != nil {
		t.Fatal(err)
	}
	//numlint:ignore floatcmp 5 mAh is exactly 18 As
	if o.Delta != 18 {
		t.Errorf("Delta = %v, want 18", o.Delta)
	}
}

func TestAnalysisOptionsJSONErrors(t *testing.T) {
	decode := []struct {
		name, in string
	}{
		{"negative delta", `{"delta_as":-1}`},
		{"both deltas", `{"delta_as":18,"delta":"5mAh"}`},
		{"epsilon too large", `{"epsilon":1}`},
		{"negative epsilon", `{"epsilon":-0.5}`},
		{"negative budget", `{"max_iterations":-2}`},
		{"unknown field", `{"delta_as":18,"progress":true}`},
		{"future version", `{"version":3,"delta_as":18}`},
	}
	for _, tc := range decode {
		t.Run(tc.name, func(t *testing.T) {
			var o AnalysisOptions
			err := json.Unmarshal([]byte(tc.in), &o)
			if !errors.Is(err, ErrBadArgument) {
				t.Errorf("err = %v, want ErrBadArgument", err)
			}
		})
	}

	_, err := json.Marshal(AnalysisOptions{Delta: 18, Progress: func(int, int) {}})
	if !errors.Is(err, ErrBadArgument) {
		t.Errorf("marshal with Progress: err = %v, want ErrBadArgument", err)
	}
}

func TestSpecDecompilesConstructorInput(t *testing.T) {
	w := twoState(t)
	states, transitions, initial := w.Spec()
	if initial != "idle" {
		t.Errorf("initial = %q, want idle", initial)
	}
	wantStates := []StateSpec{{Name: "idle", CurrentA: 0.008}, {Name: "send", CurrentA: 0.2}}
	if len(states) != len(wantStates) {
		t.Fatalf("states = %v", states)
	}
	for i := range wantStates {
		if states[i] != wantStates[i] {
			t.Errorf("state %d = %+v, want %+v", i, states[i], wantStates[i])
		}
	}
	wantTrans := []TransitionSpec{
		{From: "idle", To: "send", RatePerSec: 0.5},
		{From: "send", To: "idle", RatePerSec: 0.25},
	}
	if len(transitions) != len(wantTrans) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i := range wantTrans {
		if transitions[i] != wantTrans[i] {
			t.Errorf("transition %d = %+v, want %+v", i, transitions[i], wantTrans[i])
		}
	}
}

func TestWorkloadJSONSolveEquivalence(t *testing.T) {
	// A decoded workload must be interchangeable with its source in an
	// actual solve — the codec's end-to-end contract.
	b := Battery{CapacityAs: 7200, AvailableFraction: 1}
	src := twoState(t)
	data, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	var dec Workload
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	times := []float64{20000, 40000}
	s := NewSolver(SolverOptions{})
	want, err := s.LifetimeDistribution(b, src, times, AnalysisOptions{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.LifetimeDistribution(b, &dec, times, AnalysisOptions{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	sameCurve(t, "decoded vs source", got.EmptyProb, want.EmptyProb)
	// Content addressing must see one model, not two.
	if st := s.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit (identical fingerprints)", st)
	}
}
