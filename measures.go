package batlife

// ExpectedLifetime returns E[L], the mean battery lifetime in seconds,
// computed on the Markovian approximation's expanded chain by solving
// the absorption-time equations directly (no time grid needed). The
// same grid-step trade-off as LifetimeDistribution applies: the value
// converges to the true mean as deltaAs shrinks, approaching from
// below.
//
// Deprecated: Use [Solver.ExpectedLifetime], which caches the expanded
// CTMC across queries. This wrapper delegates to [DefaultSolver] and
// produces identical output.
func ExpectedLifetime(b Battery, w *Workload, deltaAs float64) (float64, error) {
	return DefaultSolver().ExpectedLifetime(b, w, AnalysisOptions{Delta: deltaAs})
}

// StrandedCharge describes the bound charge left in the battery at the
// moment it empties — capacity that was paid for but never delivered.
type StrandedCharge struct {
	// MeanAs is the expected stranded charge in ampere-seconds.
	MeanAs float64
	// FractionOfBound is MeanAs relative to the bound-well capacity
	// (1−c)·C; 0 means the battery used everything, 1 means the bound
	// well was untouched.
	FractionOfBound float64
}

// ExpectedStrandedCharge computes the stranded-charge summary for the
// battery under the workload, evaluated at a horizon far past the
// lifetime's upper tail (horizonSeconds; it must be late enough that
// depletion is near-certain, or an error is returned).
//
// Deprecated: Use [Solver.StrandedCharge], which caches the expanded
// CTMC across queries. This wrapper delegates to [DefaultSolver] and
// produces identical output.
func ExpectedStrandedCharge(b Battery, w *Workload, deltaAs, horizonSeconds float64) (*StrandedCharge, error) {
	return DefaultSolver().StrandedCharge(b, w, horizonSeconds, AnalysisOptions{Delta: deltaAs})
}

// WorkloadPhase is one segment of a time-varying usage scenario: the
// workload in force for DurationSeconds (the final phase may be +Inf).
type WorkloadPhase struct {
	Workload        *Workload
	DurationSeconds float64
}

// PhasedLifetimeDistribution computes the lifetime CDF for a scenario
// that switches workloads at fixed instants — for example a light
// night-time profile followed by a heavy daytime one. All phases run on
// the same battery and must have the same number of workload states.
//
// Deprecated: Use [Solver.PhasedLifetimeDistribution], which serves
// each phase's expanded CTMC from the model cache and accepts per-call
// options (epsilon, iteration budget, cancellation, progress). This
// wrapper delegates to [DefaultSolver] and produces identical output.
func PhasedLifetimeDistribution(b Battery, phases []WorkloadPhase, deltaAs float64, times []float64) (*Distribution, error) {
	return DefaultSolver().PhasedLifetimeDistribution(b, phases, times, AnalysisOptions{Delta: deltaAs})
}
