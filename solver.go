package batlife

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"batlife/internal/core"
	"batlife/internal/ctmc"
	"batlife/internal/engine"
	"batlife/internal/mrm"
	"batlife/internal/obs"
	"batlife/internal/performability"
	"batlife/internal/sparse"
)

// ErrIterationLimit reports that an analysis was refused because its
// transient solve would exceed AnalysisOptions.MaxIterations.
var ErrIterationLimit = errors.New("batlife: iteration limit exceeded")

// Telemetry is the observability registry of the solver stack: named
// counters, gauges and histograms, a span tracer, and an optional
// structured logger. Attach one via SolverOptions.Telemetry to record
// cache behaviour, uniformisation iteration counts, Fox–Glynn windows
// and per-stage spans; see docs/OBSERVABILITY.md for the metric and span
// catalogue. A nil *Telemetry disables all recording at (near) zero
// cost.
type Telemetry = obs.Registry

// NewTelemetry returns an enabled Telemetry registry.
func NewTelemetry() *Telemetry { return obs.NewRegistry() }

// SolveReport is per-solve telemetry, filled in place when
// AnalysisOptions.Report points at one and the analysis succeeds. Unlike
// Progress, requesting a report does not bypass the solver's result
// memo: a memoised answer replays the statistics of the solve that
// produced it, with ResultMemoHit set.
type SolveReport struct {
	// States and Transitions describe the expanded CTMC.
	States, Transitions int
	// Iterations counts uniformisation steps; SpMVs sparse
	// matrix-vector products (equal for a full solve).
	Iterations, SpMVs int
	// FoxGlynnLeft and FoxGlynnRight delimit the Poisson truncation
	// window the transient solve committed to — with Iterations, the
	// cost drivers of uniformisation on large chains.
	FoxGlynnLeft, FoxGlynnRight int
	// UniformizationRate is the uniformisation constant q.
	UniformizationRate float64
	// ModelCacheHit reports whether the expanded CTMC came from the
	// engine cache (including waiting on a concurrent build);
	// ResultMemoHit whether the whole answer came from the result memo.
	ModelCacheHit, ResultMemoHit bool
	// BuildDuration is the time spent obtaining the expanded model
	// (≈0 on a cache hit); SolveDuration the time in the analysis
	// proper (≈0 on a memo hit).
	BuildDuration, SolveDuration time.Duration
}

// AnalysisOptions tunes one Solver analysis. The zero value selects the
// engine defaults everywhere except Delta, which the approximate
// analyses require.
type AnalysisOptions struct {
	// Delta is the charge discretisation step in ampere-seconds; it
	// must divide both well capacities. Required by the approximate
	// analyses (LifetimeDistribution, ExpectedLifetime, StrandedCharge);
	// ignored by ExactCDF, which needs no grid.
	Delta float64
	// Epsilon bounds the truncated Poisson tail mass of the transient
	// solve; zero selects 1e-12.
	Epsilon float64
	// MaxIterations caps the number of uniformisation steps. A solve
	// whose Fox–Glynn window needs more fails up front with an error
	// matching ErrIterationLimit. Zero is unlimited.
	MaxIterations int
	// Context, when non-nil, cancels long-running solves between
	// iterations; the returned error wraps Context.Err().
	Context context.Context
	// Progress, when non-nil, is invoked after every uniformisation
	// step with (done, total). Setting it bypasses the solver's result
	// memo for the call — a memoised answer performs no iterations, so
	// replaying progress would be a lie.
	Progress func(done, total int)
	// Report, when non-nil, is filled with per-solve telemetry on
	// success. It does not bypass the result memo (see SolveReport).
	Report *SolveReport
}

// SolverOptions configures a Solver.
type SolverOptions struct {
	// ModelCacheCapacity bounds the number of expanded CTMCs the solver
	// retains across queries, each costing O(states + transitions)
	// memory. Values < 1 select 8.
	ModelCacheCapacity int
	// ResultCacheCapacity bounds the number of memoised analysis
	// results (distributions and scalars — cheap compared to models).
	// Values < 1 select 64.
	ResultCacheCapacity int
	// Workers sets the SpMV parallelism of the solver's shared worker
	// pool; values < 1 select runtime.NumCPU().
	Workers int
	// Telemetry, when non-nil, records solver metrics and spans: engine
	// cache hits/misses, uniformisation iterations, Fox–Glynn windows,
	// SpMV pool traffic, per-scenario sweep spans. Nil (the default)
	// disables recording; the remaining cost is a handful of nil checks
	// and no allocations on the hot path.
	Telemetry *Telemetry
}

// Solver is a reusable analysis engine: it caches expanded CTMCs —
// keyed on (battery, workload, Δ) — together with their uniformised
// operators and Fox–Glynn weight tables, and memoises full analysis
// results, so repeated queries against the same model skip construction
// entirely. All methods are safe for concurrent use; Sweep evaluates
// whole scenario grids in parallel on top of the shared cache.
//
// The free functions LifetimeDistribution, ExpectedLifetime,
// ExpectedStrandedCharge and ExactLifetimeCDF are thin deprecated
// wrappers over a process-wide default Solver (see DefaultSolver).
type Solver struct {
	eng     *engine.Engine
	results *engine.Cache[resultKey, any]
	obs     *obs.Registry

	// Pre-resolved counters (nil without telemetry; Add is then a no-op)
	// so the memo fast path pays atomic increments, not name lookups.
	solves, memoHits *obs.Counter
}

// NewSolver returns a Solver with the given cache bounds and worker
// pool.
func NewSolver(opts SolverOptions) *Solver {
	rc := opts.ResultCacheCapacity
	if rc < 1 {
		rc = 64
	}
	s := &Solver{
		eng: engine.New(engine.Options{
			Capacity: opts.ModelCacheCapacity,
			Workers:  opts.Workers,
			Obs:      opts.Telemetry,
		}),
		results: engine.NewCache[resultKey, any](rc),
		obs:     opts.Telemetry,
	}
	if s.obs != nil {
		s.solves = s.obs.Counter("solver_solves_total")
		s.memoHits = s.obs.Counter("solver_result_memo_hits_total")
	}
	return s
}

// Stats reports the solver's model-cache counters: hits (including
// waiter-hits on concurrent builds), misses (= builds), LRU evictions
// and current entries. Available with or without Telemetry.
func (s *Solver) Stats() engine.Stats { return s.eng.Stats() }

// Close releases the solver's persistent SpMV worker goroutines. The
// solver stays usable afterwards — later analyses run their products
// serially — so Close is a resource release for callers that are done
// with parallel solving, not a shutdown. Idempotent and safe to call
// concurrently with in-flight solves (they finish normally).
func (s *Solver) Close() { s.eng.Close() }

var defaultSolver = sync.OnceValue(func() *Solver {
	// The deprecated free functions previously built and discarded one
	// expanded model per call; a small model cache keeps their memory
	// footprint modest while still serving repeated-query workloads.
	return NewSolver(SolverOptions{ModelCacheCapacity: 2})
})

// DefaultSolver returns the process-wide Solver that backs the
// deprecated free functions. Use a dedicated NewSolver to size caches
// for heavy workloads.
func DefaultSolver() *Solver { return defaultSolver() }

// CachedModels reports how many expanded CTMCs the solver currently
// retains — an observability hook for cache sizing.
func (s *Solver) CachedModels() int { return s.eng.CachedModels() }

// analysis kinds for result memoisation.
const (
	kindCDF = iota + 1
	kindMean
	kindStranded
	kindExact
	kindPhased
)

// resultKey identifies one memoised analysis result.
type resultKey struct {
	model    engine.Key
	query    [sha256.Size]byte // hash of times / horizon
	kind     uint8
	epsBits  uint64
	maxIter  int
	capBits  uint64 // ExactCDF: capacity (its model key has no grid)
	exactCDF bool
}

// hashFloats digests a float64 slice by exact bit patterns.
func hashFloats(xs []float64) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(len(xs))))
	h.Write(buf[:])
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// memoKey builds the result-cache key for a query. The second result
// reports whether memoisation applies (a Progress callback opts out).
func memoKey(kind uint8, model engine.Key, query []float64, opts AnalysisOptions) (resultKey, bool) {
	if opts.Progress != nil {
		return resultKey{}, false
	}
	return resultKey{
		model:   model,
		query:   hashFloats(query),
		kind:    kind,
		epsBits: math.Float64bits(opts.Epsilon),
		maxIter: opts.MaxIterations,
	}, true
}

// clone deep-copies a Distribution so cached results stay immutable
// under caller mutation.
func (d *Distribution) clone() *Distribution {
	if d == nil {
		return nil
	}
	out := *d
	out.Times = append([]float64(nil), d.Times...)
	out.EmptyProb = append([]float64(nil), d.EmptyProb...)
	return &out
}

// wrapErr normalises internal errors for the facade: argument-class
// failures (bad grid step, malformed model, bad query ranges) become
// errors.Is-matchable against ErrBadArgument, iteration-budget refusals
// against ErrIterationLimit, and everything else keeps the "batlife:"
// prefix with the cause chain intact (so context.Canceled and friends
// still match through it).
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrBadArgument) || errors.Is(err, ErrIterationLimit) {
		return err
	}
	if errors.Is(err, core.ErrBadGrid) || errors.Is(err, mrm.ErrBadModel) ||
		errors.Is(err, core.ErrPhaseMismatch) ||
		errors.Is(err, ctmc.ErrBadInput) || errors.Is(err, performability.ErrBadQuery) {
		return fmt.Errorf("%w: %w", ErrBadArgument, err)
	}
	if errors.Is(err, ctmc.ErrIterationBudget) {
		return fmt.Errorf("%w: %w", ErrIterationLimit, err)
	}
	return fmt.Errorf("batlife: %w", err)
}

// solveSpan begins the facade-level "solver.solve" span for one
// analysis, returning the context the rest of the solve should run
// under so the engine/core/ctmc stage spans nest beneath it. When
// tracing is off (no registry and no span in ctx) it returns (ctx, nil)
// without building the attribute slice, keeping the disabled path
// allocation-free. Callers start it only after a result-memo miss:
// a memo hit is a sub-microsecond lookup already covered by the
// request-level span, and recording it would put span allocation on
// the solver's hottest path (BenchmarkTraceOverhead pins the warm-path
// overhead).
func (s *Solver) solveSpan(ctx context.Context, analysis string) (context.Context, *obs.Span) {
	if s.obs == nil && obs.SpanFromContext(ctx) == nil {
		return ctx, nil
	}
	return obs.StartSpan(ctx, s.obs, "solver.solve", obs.String("analysis", analysis))
}

// endSolveSpan completes a facade span, recording the failure if any.
func endSolveSpan(span *obs.Span, err error) {
	if span == nil {
		return
	}
	if err != nil {
		span.End(obs.String("error", err.Error()))
		return
	}
	span.End()
}

// solveOptions translates facade options into core solve options.
func (s *Solver) solveOptions(opts AnalysisOptions, pool *sparse.Pool) core.SolveOptions {
	return core.SolveOptions{
		Epsilon:       opts.Epsilon,
		Pool:          pool,
		MaxIterations: opts.MaxIterations,
		Context:       opts.Context,
		OnIteration:   opts.Progress,
		Obs:           s.obs,
	}
}

// memoEntry pairs a memoised analysis result with the SolveReport of
// the solve that produced it, so a memo hit can replay the statistics.
type memoEntry struct {
	val any
	rep SolveReport
}

// replayReport fills opts.Report on a memo hit: the original solve's
// model statistics with ResultMemoHit set, the current call's cache
// outcome, and a zero SolveDuration (no iterations ran).
func replayReport(opts AnalysisOptions, entry memoEntry, hit bool, buildDur time.Duration) {
	if opts.Report == nil {
		return
	}
	rep := entry.rep
	rep.ResultMemoHit = true
	rep.ModelCacheHit = hit
	rep.BuildDuration = buildDur
	rep.SolveDuration = 0
	*opts.Report = rep
}

// expanded validates the (battery, workload, delta) triple and returns
// the — possibly cached — expanded CTMC plus its cache key, whether the
// model came from the cache, and the time spent obtaining it (measured
// only when opts.Report is set; the warm path stays clock-free).
func (s *Solver) expanded(b Battery, w *Workload, opts AnalysisOptions) (*core.Expanded, engine.Key, bool, time.Duration, error) {
	if w == nil {
		return nil, engine.Key{}, false, 0, fmt.Errorf("%w: nil workload", ErrBadArgument)
	}
	if opts.Delta <= 0 || math.IsNaN(opts.Delta) {
		return nil, engine.Key{}, false, 0, fmt.Errorf("%w: discretisation step Delta %v (set AnalysisOptions.Delta to a positive divisor of the well capacities)",
			ErrBadArgument, opts.Delta)
	}
	model := w.kibamrm(b)
	key, _ := engine.Fingerprint(model, opts.Delta, core.Options{})
	var start time.Time
	if opts.Report != nil {
		start = time.Now()
	}
	// Context rides along for span parenting only; it is not part of the
	// fingerprint, so cache identity is unchanged.
	e, hit, err := s.eng.Expanded(model, opts.Delta, core.Options{Context: opts.Context})
	var buildDur time.Duration
	if opts.Report != nil {
		buildDur = time.Since(start)
	}
	if err != nil {
		return nil, engine.Key{}, false, 0, wrapErr(err)
	}
	return e, key, hit, buildDur, nil
}

// LifetimeDistribution computes the paper's Markovian approximation of
// the lifetime CDF at the given times (seconds, ascending), reusing the
// cached expanded CTMC for (battery, workload, opts.Delta) when one
// exists. See the package-level LifetimeDistribution for the numerical
// trade-offs of the Δ grid.
func (s *Solver) LifetimeDistribution(b Battery, w *Workload, times []float64, opts AnalysisOptions) (*Distribution, error) {
	return s.lifetimeDistribution(b, w, times, opts, s.eng.Pool())
}

func (s *Solver) lifetimeDistribution(b Battery, w *Workload, times []float64, opts AnalysisOptions, pool *sparse.Pool) (d *Distribution, err error) {
	s.solves.Inc()
	e, modelKey, hit, buildDur, err := s.expanded(b, w, opts)
	if err != nil {
		return nil, err
	}
	key, memoable := memoKey(kindCDF, modelKey, times, opts)
	if memoable {
		if v, ok := s.results.Get(key); ok {
			s.memoHits.Inc()
			entry := v.(memoEntry)
			replayReport(opts, entry, hit, buildDur)
			return entry.val.(*Distribution).clone(), nil
		}
	}
	ctx, span := s.solveSpan(opts.Context, "cdf")
	if span != nil {
		opts.Context = ctx
		defer func() { endSolveSpan(span, err) }()
	}
	var start time.Time
	if opts.Report != nil {
		start = time.Now()
	}
	res, err := e.LifetimeCDFOpts(times, s.solveOptions(opts, pool))
	if err != nil {
		return nil, wrapErr(err)
	}
	d = &Distribution{
		Times:       res.Times,
		EmptyProb:   res.EmptyProb,
		States:      res.States,
		Transitions: res.NNZ,
		Iterations:  res.Iterations,
	}
	rep := SolveReport{
		States:             res.States,
		Transitions:        res.NNZ,
		Iterations:         res.Iterations,
		SpMVs:              res.SpMVs,
		FoxGlynnLeft:       res.FoxGlynnLeft,
		FoxGlynnRight:      res.FoxGlynnRight,
		UniformizationRate: res.Rate,
		ModelCacheHit:      hit,
	}
	if opts.Report != nil {
		rep.BuildDuration = buildDur
		rep.SolveDuration = time.Since(start)
		*opts.Report = rep
	}
	if memoable {
		// Durations are per-call; the memo stores only the model stats.
		stored := rep
		stored.BuildDuration, stored.SolveDuration = 0, 0
		s.results.Put(key, memoEntry{val: d.clone(), rep: stored})
	}
	return d, nil
}

// lifetimeDistributionBatch solves the lifetime CDF for several time
// grids against one (battery, workload, Δ) model in a single batched
// transient solve (core.LifetimeCDFBatchOpts), after answering what it
// can from the result memo. Distinct grids traverse the expanded matrix
// together; duplicate grids are solved once. Each returned distribution
// is bit-identical to a solo LifetimeDistribution call.
//
// On any failure it returns nil without touching the solve counters or
// the memo: a batch error has no per-grid attribution, so the caller
// (Sweep) falls back to solo solves, which re-run the counting and
// report exact per-scenario errors.
func (s *Solver) lifetimeDistributionBatch(b Battery, w *Workload, grids [][]float64, opts AnalysisOptions, pool *sparse.Pool) []*Distribution {
	e, modelKey, hit, _, err := s.expanded(b, w, opts)
	if err != nil {
		return nil
	}
	dists := make([]*Distribution, len(grids))
	var (
		missKeys  []resultKey
		missGrids [][]float64
		missFor   [][]int // batch positions sharing missGrids[i]
		memoHits  int64
	)
	seen := make(map[[sha256.Size]byte]int)
	for k, grid := range grids {
		key, _ := memoKey(kindCDF, modelKey, grid, opts) // Sweep sets no Progress: always memoable
		if v, ok := s.results.Get(key); ok {
			memoHits++
			dists[k] = v.(memoEntry).val.(*Distribution).clone()
			continue
		}
		if i, dup := seen[key.query]; dup {
			missFor[i] = append(missFor[i], k)
			continue
		}
		seen[key.query] = len(missGrids)
		missKeys = append(missKeys, key)
		missGrids = append(missGrids, grid)
		missFor = append(missFor, []int{k})
	}
	if len(missGrids) > 0 {
		ctx, span := s.solveSpan(opts.Context, "cdf_batch")
		opts.Context = ctx
		ress, err := e.LifetimeCDFBatchOpts(missGrids, s.solveOptions(opts, pool))
		endSolveSpan(span, err)
		if err != nil {
			return nil
		}
		for i, res := range ress {
			d := &Distribution{
				Times:       res.Times,
				EmptyProb:   res.EmptyProb,
				States:      res.States,
				Transitions: res.NNZ,
				Iterations:  res.Iterations,
			}
			s.results.Put(missKeys[i], memoEntry{val: d, rep: SolveReport{
				States:             res.States,
				Transitions:        res.NNZ,
				Iterations:         res.Iterations,
				SpMVs:              res.SpMVs,
				FoxGlynnLeft:       res.FoxGlynnLeft,
				FoxGlynnRight:      res.FoxGlynnRight,
				UniformizationRate: res.Rate,
				ModelCacheHit:      hit,
			}})
			for _, k := range missFor[i] {
				dists[k] = d.clone()
			}
		}
	}
	// Counters commit only once the whole batch is known good, so the
	// solo fallback after a failed batch does not double-count.
	s.solves.Add(int64(len(grids)))
	s.memoHits.Add(memoHits)
	return dists
}

// phasedKey folds the per-phase model keys and durations into one
// composite model identity for the result memo.
func phasedKey(keys []engine.Key, durations []float64) engine.Key {
	h := sha256.New()
	var buf [8]byte
	for i, k := range keys {
		h.Write(k[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(durations[i]))
		h.Write(buf[:])
	}
	var out engine.Key
	h.Sum(out[:0])
	return out
}

// PhasedLifetimeDistribution computes the lifetime CDF for a scenario
// that switches workloads at fixed instants — for example a light
// night-time profile followed by a heavy daytime one. All phases run on
// the same battery, are discretised with opts.Delta, and must have the
// same number of workload states. Each phase's expanded CTMC is served
// by the solver's model cache (a day/night schedule over two workloads
// expands each exactly once, however many queries follow), and whole
// results are memoised like every other analysis.
func (s *Solver) PhasedLifetimeDistribution(b Battery, phases []WorkloadPhase, times []float64, opts AnalysisOptions) (d *Distribution, err error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("%w: no phases", ErrBadArgument)
	}
	if opts.Delta <= 0 || math.IsNaN(opts.Delta) {
		return nil, fmt.Errorf("%w: discretisation step Delta %v (set AnalysisOptions.Delta to a positive divisor of the well capacities)",
			ErrBadArgument, opts.Delta)
	}
	s.solves.Inc()
	var start time.Time
	if opts.Report != nil {
		start = time.Now()
	}
	xs := make([]*core.Expanded, len(phases))
	keys := make([]engine.Key, len(phases))
	durations := make([]float64, len(phases))
	allHit := true
	for i, ph := range phases {
		if ph.Workload == nil {
			return nil, fmt.Errorf("%w: nil workload in phase %d", ErrBadArgument, i)
		}
		d := ph.DurationSeconds
		if d <= 0 && !math.IsInf(d, 1) {
			return nil, fmt.Errorf("%w: phase %d duration %v", ErrBadArgument, i, d)
		}
		model := ph.Workload.kibamrm(b)
		keys[i], _ = engine.Fingerprint(model, opts.Delta, core.Options{})
		e, hit, err := s.eng.Expanded(model, opts.Delta, core.Options{Context: opts.Context})
		if err != nil {
			return nil, wrapErr(err)
		}
		xs[i], durations[i] = e, d
		allHit = allHit && hit
	}
	var buildDur time.Duration
	if opts.Report != nil {
		buildDur = time.Since(start)
	}
	key, memoable := memoKey(kindPhased, phasedKey(keys, durations), times, opts)
	if memoable {
		if v, ok := s.results.Get(key); ok {
			s.memoHits.Inc()
			entry := v.(memoEntry)
			replayReport(opts, entry, allHit, buildDur)
			return entry.val.(*Distribution).clone(), nil
		}
	}
	ctx, span := s.solveSpan(opts.Context, "phased")
	if span != nil {
		opts.Context = ctx
		defer func() { endSolveSpan(span, err) }()
	}
	if opts.Report != nil {
		start = time.Now()
	}
	res, err := core.PhasedLifetimeCDFExpanded(xs, durations, times, s.solveOptions(opts, s.eng.Pool()))
	if err != nil {
		return nil, wrapErr(err)
	}
	d = &Distribution{
		Times:       res.Times,
		EmptyProb:   res.EmptyProb,
		States:      res.States,
		Transitions: res.NNZ,
		Iterations:  res.Iterations,
	}
	rep := SolveReport{
		States:             res.States,
		Transitions:        res.NNZ,
		Iterations:         res.Iterations,
		SpMVs:              res.SpMVs,
		UniformizationRate: res.Rate,
		ModelCacheHit:      allHit,
	}
	if opts.Report != nil {
		rep.BuildDuration = buildDur
		rep.SolveDuration = time.Since(start)
		*opts.Report = rep
	}
	if memoable {
		stored := rep
		stored.BuildDuration, stored.SolveDuration = 0, 0
		s.results.Put(key, memoEntry{val: d.clone(), rep: stored})
	}
	return d, nil
}

// ExpectedLifetime computes E[L] on the expanded chain by solving the
// absorption-time equations (no time grid needed); see the package
// function of the same name. Epsilon, MaxIterations, Context and
// Progress do not apply to the direct linear solve and are ignored.
func (s *Solver) ExpectedLifetime(b Battery, w *Workload, opts AnalysisOptions) (mean float64, err error) {
	s.solves.Inc()
	e, modelKey, hit, buildDur, err := s.expanded(b, w, opts)
	if err != nil {
		return 0, err
	}
	key, memoable := memoKey(kindMean, modelKey, nil, opts)
	if memoable {
		if v, ok := s.results.Get(key); ok {
			s.memoHits.Inc()
			entry := v.(memoEntry)
			replayReport(opts, entry, hit, buildDur)
			return entry.val.(float64), nil
		}
	}
	_, span := s.solveSpan(opts.Context, "mean")
	if span != nil {
		defer func() { endSolveSpan(span, err) }()
	}
	var start time.Time
	if opts.Report != nil {
		start = time.Now()
	}
	mean, err = e.MeanLifetime()
	if err != nil {
		return 0, wrapErr(err)
	}
	// The mean solve is a direct linear system: no uniformisation
	// statistics to report beyond the chain size.
	rep := SolveReport{
		States:        e.NumStates(),
		Transitions:   e.NNZ(),
		ModelCacheHit: hit,
	}
	if opts.Report != nil {
		rep.BuildDuration = buildDur
		rep.SolveDuration = time.Since(start)
		*opts.Report = rep
	}
	if memoable {
		stored := rep
		stored.BuildDuration, stored.SolveDuration = 0, 0
		s.results.Put(key, memoEntry{val: mean, rep: stored})
	}
	return mean, nil
}

// StrandedCharge computes the stranded-charge summary at a horizon far
// past the lifetime's upper tail; see ExpectedStrandedCharge for the
// measure's semantics. The horizon must leave at least 99% of the
// probability mass depleted, or an error matching ErrBadArgument is
// returned.
func (s *Solver) StrandedCharge(b Battery, w *Workload, horizonSeconds float64, opts AnalysisOptions) (out *StrandedCharge, err error) {
	if w == nil {
		return nil, fmt.Errorf("%w: nil workload", ErrBadArgument)
	}
	if b.AvailableFraction >= 1 {
		return &StrandedCharge{}, nil // no bound well, nothing to strand
	}
	s.solves.Inc()
	e, modelKey, hit, buildDur, err := s.expanded(b, w, opts)
	if err != nil {
		return nil, err
	}
	key, memoable := memoKey(kindStranded, modelKey, []float64{horizonSeconds}, opts)
	if memoable {
		if v, ok := s.results.Get(key); ok {
			s.memoHits.Inc()
			entry := v.(memoEntry)
			replayReport(opts, entry, hit, buildDur)
			sc := entry.val.(StrandedCharge)
			return &sc, nil
		}
	}
	ctx, span := s.solveSpan(opts.Context, "stranded")
	if span != nil {
		opts.Context = ctx
		defer func() { endSolveSpan(span, err) }()
	}
	var start time.Time
	if opts.Report != nil {
		start = time.Now()
	}
	wc, err := e.WastedChargeDistributionOpts(horizonSeconds, s.solveOptions(opts, s.eng.Pool()))
	if err != nil {
		return nil, wrapErr(err)
	}
	if wc.AbsorbedMass < 0.99 {
		return nil, fmt.Errorf("%w: only %.1f%% of runs depleted by the horizon; increase horizonSeconds",
			ErrBadArgument, 100*wc.AbsorbedMass)
	}
	bound := (1 - b.AvailableFraction) * b.CapacityAs
	sc := StrandedCharge{
		MeanAs:          wc.Mean(),
		FractionOfBound: wc.Mean() / bound,
	}
	rep := SolveReport{
		States:        e.NumStates(),
		Transitions:   e.NNZ(),
		ModelCacheHit: hit,
	}
	if opts.Report != nil {
		rep.BuildDuration = buildDur
		rep.SolveDuration = time.Since(start)
		*opts.Report = rep
	}
	if memoable {
		stored := rep
		stored.BuildDuration, stored.SolveDuration = 0, 0
		s.results.Put(key, memoEntry{val: sc, rep: stored})
	}
	return &sc, nil
}

// ExactCDF computes the exact lifetime CDF for a battery with all
// charge available (AvailableFraction = 1) via the performability
// transform — the same quantity as the deprecated ExactLifetimeCDF, but
// returned as a *Distribution whose States, Transitions and Iterations
// reflect the workload chain and the number of transform evaluations,
// making the exact path interchangeable with the approximate ones
// downstream. Delta, Epsilon and Progress are ignored (the transform
// needs no grid and reports no step-wise progress); Context cancels
// between time points.
func (s *Solver) ExactCDF(b Battery, w *Workload, times []float64, opts AnalysisOptions) (d *Distribution, err error) {
	if w == nil {
		return nil, fmt.Errorf("%w: nil workload", ErrBadArgument)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	//numlint:ignore floatcmp AvailableFraction = 1 is an exact configuration sentinel, not a computed value
	if b.AvailableFraction != 1 {
		return nil, fmt.Errorf("%w: exact solution requires AvailableFraction = 1, got %v",
			ErrBadArgument, b.AvailableFraction)
	}
	model := mrm.ConstantReward{
		Chain:   w.model.Chain,
		Rates:   w.model.Currents,
		Initial: w.model.Initial,
	}
	// The exact path has no expanded model; key on the workload chain
	// (via the KiBaMRM fingerprint at a dummy Δ) plus the capacity.
	modelKey, _ := engine.Fingerprint(w.kibamrm(b), 1, core.Options{})
	key, memoable := memoKey(kindExact, modelKey, times, opts)
	key.capBits = math.Float64bits(b.CapacityAs)
	key.exactCDF = true
	s.solves.Inc()
	if memoable {
		if v, ok := s.results.Get(key); ok {
			s.memoHits.Inc()
			entry := v.(memoEntry)
			replayReport(opts, entry, false, 0)
			return entry.val.(*Distribution).clone(), nil
		}
	}
	ctx, span := s.solveSpan(opts.Context, "exact")
	if span != nil {
		opts.Context = ctx
		defer func() { endSolveSpan(span, err) }()
	}
	var start time.Time
	if opts.Report != nil {
		start = time.Now()
	}
	probs, stats, err := performability.EnergyDepletionCDFStats(model, b.CapacityAs, times, opts.Context)
	if err != nil {
		return nil, wrapErr(err)
	}
	d = &Distribution{
		Times:       append([]float64(nil), times...),
		EmptyProb:   probs,
		States:      stats.States,
		Transitions: stats.Transitions,
		Iterations:  stats.TransformEvals,
	}
	// The exact transform expands no CTMC; Iterations here counts
	// transform evaluations.
	rep := SolveReport{
		States:      stats.States,
		Transitions: stats.Transitions,
		Iterations:  stats.TransformEvals,
	}
	if opts.Report != nil {
		rep.SolveDuration = time.Since(start)
		*opts.Report = rep
	}
	if memoable {
		s.results.Put(key, memoEntry{val: d.clone(), rep: rep})
	}
	return d, nil
}

// Scenario is one cell of a Sweep grid: a battery/workload pair, the
// discretisation step, and the evaluation time grid. Scenarios may vary
// any of these — Δ refinements, state currents (via distinct
// workloads), AvailableFraction, initial capacity, time grids.
type Scenario struct {
	// Name labels the scenario in results; purely descriptive.
	Name string
	// Battery and Workload define the model.
	Battery  Battery
	Workload *Workload
	// DeltaAs is the discretisation step in ampere-seconds.
	DeltaAs float64
	// Times are the evaluation points in seconds, ascending.
	Times []float64
}

// SweepResult is the outcome of one scenario, in input order.
type SweepResult struct {
	// Index and Name echo the scenario's position and label.
	Index int
	Name  string
	// Distribution is the computed lifetime CDF; nil when Err is set.
	Distribution *Distribution
	// Err is the per-scenario failure, if any. Scenario errors do not
	// abort the sweep; a cancelled context does, marking unprocessed
	// scenarios with the context error.
	Err error
}

// SweepOptions tunes a Sweep.
type SweepOptions struct {
	// Workers bounds how many scenarios are solved concurrently;
	// values < 1 select runtime.NumCPU(). The SpMV parallelism inside
	// each solve is scaled down so that scenario-level and matrix-level
	// parallelism together stay near NumCPU.
	Workers int
	// Epsilon, MaxIterations and Context apply to every scenario, as in
	// AnalysisOptions.
	Epsilon       float64
	MaxIterations int
	Context       context.Context
	// Progress, when non-nil, is invoked after each scenario completes
	// with (done, total). Calls are serialised.
	Progress func(done, total int)
}

// sweepGroups partitions scenario indexes by expanded-model identity
// (the engine fingerprint over battery, workload and Δ): scenarios in
// one group share an expanded CTMC and are solved as one batched
// multi-grid transient. Scenarios that cannot be fingerprinted (nil
// workload, non-positive Δ) become singleton groups so the solo path
// reports their errors exactly. Group order follows first appearance,
// and indexes within a group stay in input order.
func sweepGroups(scenarios []Scenario) [][]int {
	groups := make([][]int, 0, len(scenarios))
	at := make(map[engine.Key]int, len(scenarios))
	for i, sc := range scenarios {
		if sc.Workload == nil || !(sc.DeltaAs > 0) {
			groups = append(groups, []int{i})
			continue
		}
		key, ok := engine.Fingerprint(sc.Workload.kibamrm(sc.Battery), sc.DeltaAs, core.Options{})
		if !ok {
			groups = append(groups, []int{i})
			continue
		}
		if g, dup := at[key]; dup {
			groups[g] = append(groups[g], i)
			continue
		}
		at[key] = len(groups)
		groups = append(groups, []int{i})
	}
	return groups
}

// Sweep evaluates a grid of scenarios in parallel over a bounded worker
// pool, reusing the solver's model cache across scenarios (a Δ-sweep
// over one model expands each distinct grid once, and repeated cells
// not at all). Scenarios that share one expanded CTMC — same battery,
// workload and Δ, differing only in time grids — are additionally
// solved as one batched multi-vector transient, so the matrix is
// traversed once per uniformisation step for the whole group. Results
// are returned in input order and are bit-identical to solving each
// scenario sequentially. The returned error is non-nil only for empty
// input or a cancelled context; per-scenario failures land in
// SweepResult.Err.
func (s *Solver) Sweep(scenarios []Scenario, opts SweepOptions) ([]SweepResult, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("%w: no scenarios", ErrBadArgument)
	}
	groups := sweepGroups(scenarios)
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	// One SpMV pool shared by all sweep workers: splitting the cores
	// between scenario- and matrix-parallelism keeps the goroutine count
	// near NumCPU instead of workers × NumCPU. The pool's persistent
	// workers are released when the sweep returns.
	spmv := runtime.NumCPU() / workers
	if spmv < 1 {
		spmv = 1
	}
	pool := sparse.NewPoolObs(spmv, s.obs)
	defer pool.Close()
	ctx := opts.Context

	// With telemetry, each group enqueue is timestamped just before the
	// channel send; the channel's happens-before edge makes the
	// worker-side read race-free, and the difference is the queue wait,
	// observed once per scenario in the group.
	var (
		enqueued  []time.Time
		queueWait *obs.Histogram
	)
	if s.obs != nil {
		enqueued = make([]time.Time, len(groups))
		queueWait = s.obs.Histogram("sweep_queue_wait_seconds")
		s.obs.Counter("sweep_scenarios_total").Add(int64(len(scenarios)))
	}

	results := make([]SweepResult, len(scenarios))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range jobs {
				group := groups[gi]
				// Per-scenario spans parent from the sweep caller's
				// context (so daemon sweeps nest under their request
				// trace); solo solves run under their scenario's span.
				spans := make([]*obs.Span, len(group))
				scCtxs := make([]context.Context, len(group))
				for j, idx := range group {
					scCtxs[j] = ctx
					if s.obs != nil {
						queueWait.ObserveDuration(time.Since(enqueued[gi]).Seconds())
						scCtxs[j], spans[j] = obs.StartSpan(ctx, s.obs, "sweep.scenario",
							obs.Int("index", int64(idx)),
							obs.String("name", scenarios[idx].Name),
							obs.Float("delta", scenarios[idx].DeltaAs))
					}
				}
				cancelled := ctx != nil && ctx.Err() != nil
				var batched []*Distribution
				if !cancelled && len(group) > 1 {
					first := scenarios[group[0]]
					grids := make([][]float64, len(group))
					for j, idx := range group {
						grids[j] = scenarios[idx].Times
					}
					batched = s.lifetimeDistributionBatch(first.Battery, first.Workload, grids, AnalysisOptions{
						Delta:         first.DeltaAs,
						Epsilon:       opts.Epsilon,
						MaxIterations: opts.MaxIterations,
						Context:       ctx,
					}, pool)
				}
				for j, idx := range group {
					sc := scenarios[idx]
					r := SweepResult{Index: idx, Name: sc.Name}
					switch {
					case cancelled:
						r.Err = ctx.Err()
					case batched != nil:
						r.Distribution = batched[j]
					default:
						r.Distribution, r.Err = s.lifetimeDistribution(sc.Battery, sc.Workload, sc.Times, AnalysisOptions{
							Delta:         sc.DeltaAs,
							Epsilon:       opts.Epsilon,
							MaxIterations: opts.MaxIterations,
							Context:       scCtxs[j],
						}, pool)
					}
					span := spans[j]
					switch {
					case r.Err != nil:
						span.End(obs.String("error", r.Err.Error()))
					case r.Distribution != nil:
						span.End(obs.Int("states", int64(r.Distribution.States)),
							obs.Int("iterations", int64(r.Distribution.Iterations)))
					default:
						span.End()
					}
					results[idx] = r
					mu.Lock()
					done++
					if opts.Progress != nil {
						opts.Progress(done, len(scenarios))
					}
					mu.Unlock()
				}
			}
		}()
	}
	for gi := range groups {
		if enqueued != nil {
			enqueued[gi] = time.Now()
		}
		jobs <- gi
	}
	close(jobs)
	wg.Wait()
	if ctx != nil && ctx.Err() != nil {
		return results, fmt.Errorf("batlife: sweep: %w", ctx.Err())
	}
	return results, nil
}
