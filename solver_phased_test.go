package batlife

import (
	"context"
	"errors"
	"testing"

	"batlife/internal/core"
)

// dayNight returns a two-phase schedule over distinct workloads that
// share the state count, as Solver.PhasedLifetimeDistribution requires.
func dayNight(t *testing.T) (Battery, []WorkloadPhase) {
	t.Helper()
	heavy, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	light, err := OnOffWorkload(1, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	b := Battery{CapacityAs: 7200, AvailableFraction: 1}
	return b, []WorkloadPhase{
		{Workload: heavy, DurationSeconds: 10000},
		{Workload: light, DurationSeconds: 40000},
	}
}

func TestSolverGoldenPhasedLifetimeDistribution(t *testing.T) {
	// The deprecated free function, a fresh Solver, and the pre-redesign
	// direct core path must produce bit-identical curves.
	b, phases := dayNight(t)
	times := []float64{8000, 16000, 32000}
	const delta = 100

	mps := make([]core.ModelPhase, len(phases))
	for i, ph := range phases {
		mps[i] = core.ModelPhase{Model: ph.Workload.kibamrm(b), Duration: ph.DurationSeconds}
	}
	direct, err := core.PhasedLifetimeCDF(mps, delta, times, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	viaFree, err := PhasedLifetimeDistribution(b, phases, delta, times)
	if err != nil {
		t.Fatal(err)
	}
	viaSolver, err := NewSolver(SolverOptions{}).PhasedLifetimeDistribution(b, phases, times, AnalysisOptions{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}

	sameCurve(t, "free function vs core", viaFree.EmptyProb, direct.EmptyProb)
	sameCurve(t, "Solver vs core", viaSolver.EmptyProb, direct.EmptyProb)
	if viaSolver.States != direct.States || viaSolver.Transitions != direct.NNZ || viaSolver.Iterations != direct.Iterations {
		t.Errorf("metadata: solver {%d %d %d} vs core {%d %d %d}",
			viaSolver.States, viaSolver.Transitions, viaSolver.Iterations,
			direct.States, direct.NNZ, direct.Iterations)
	}
}

func TestSolverPhasedCachesModelsAndResults(t *testing.T) {
	b, phases := dayNight(t)
	times := []float64{8000, 16000}
	s := NewSolver(SolverOptions{})

	first, err := s.PhasedLifetimeDistribution(b, phases, times, AnalysisOptions{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("after first solve: stats = %+v, want 2 misses (one build per phase)", st)
	}

	var rep SolveReport
	second, err := s.PhasedLifetimeDistribution(b, phases, times, AnalysisOptions{Delta: 100, Report: &rep})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Misses != 2 || st.Hits != 2 {
		t.Errorf("after second solve: stats = %+v, want 2 misses + 2 hits", st)
	}
	if !rep.ResultMemoHit || !rep.ModelCacheHit {
		t.Errorf("report = %+v, want result-memo and model-cache hits", rep)
	}
	sameCurve(t, "memoised phased result", second.EmptyProb, first.EmptyProb)

	// A phase sharing a model with a plain query shares its cache entry.
	if _, err := s.LifetimeDistribution(b, phases[0].Workload, times, AnalysisOptions{Delta: 100}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Misses != 2 || st.Hits != 3 {
		t.Errorf("after shared-model query: stats = %+v, want no new build", st)
	}
}

func TestSolverPhasedErrors(t *testing.T) {
	b, phases := dayNight(t)
	s := NewSolver(SolverOptions{})
	times := []float64{8000}

	if _, err := s.PhasedLifetimeDistribution(b, nil, times, AnalysisOptions{Delta: 100}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("no phases: err = %v, want ErrBadArgument", err)
	}
	if _, err := s.PhasedLifetimeDistribution(b, phases, times, AnalysisOptions{}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero delta: err = %v, want ErrBadArgument", err)
	}
	if _, err := s.PhasedLifetimeDistribution(b, []WorkloadPhase{{Workload: nil, DurationSeconds: 1}}, times, AnalysisOptions{Delta: 100}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil workload: err = %v, want ErrBadArgument", err)
	}
	if _, err := s.PhasedLifetimeDistribution(b, []WorkloadPhase{{Workload: phases[0].Workload, DurationSeconds: -3}}, times, AnalysisOptions{Delta: 100}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("bad duration: err = %v, want ErrBadArgument", err)
	}

	// Mismatched state counts are a phase-compatibility argument error.
	three, err := SimpleWireless()
	if err != nil {
		t.Fatal(err)
	}
	mixed := []WorkloadPhase{phases[0], {Workload: three, DurationSeconds: 1000}}
	if _, err := s.PhasedLifetimeDistribution(b, mixed, times, AnalysisOptions{Delta: 100}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("mismatched phases: err = %v, want ErrBadArgument", err)
	}

	// Cancellation threads through to the piecewise solve.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PhasedLifetimeDistribution(b, phases, times, AnalysisOptions{Delta: 100, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled: err = %v, want context.Canceled in chain", err)
	}

	// An iteration budget refuses the solve with the sentinel.
	if _, err := s.PhasedLifetimeDistribution(b, phases, times, AnalysisOptions{Delta: 100, MaxIterations: 1}); !errors.Is(err, ErrIterationLimit) {
		t.Errorf("budget: err = %v, want ErrIterationLimit", err)
	}
}
