package batlife

// The v1 wire codec. Battery, Workload and AnalysisOptions marshal to a
// stable, versioned JSON schema shared by every process boundary in the
// repo — the batlife CLI's -spec files, the batlifed daemon's request
// bodies (internal/api), and any user tooling that persists scenarios.
// Decoding validates: a value that unmarshals without error is usable,
// and every decode failure matches ErrBadArgument.
//
// The schema is additive-versioned: encoders always write "version": 1;
// decoders accept a missing version (treated as 1, for files written
// before the codec existed) and reject versions they do not know.
// Unknown fields are rejected so typos fail loudly instead of silently
// selecting defaults.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"batlife/internal/units"
)

// CodecVersion is the wire-schema version written by the marshalers and
// the highest version the unmarshalers accept.
const CodecVersion = 1

// checkCodecVersion validates a decoded "version" field: 0 (absent)
// and CodecVersion are acceptable.
func checkCodecVersion(what string, v int) error {
	if v != 0 && v != CodecVersion {
		return fmt.Errorf("%w: %s: unsupported schema version %d (want %d)",
			ErrBadArgument, what, v, CodecVersion)
	}
	return nil
}

// strictUnmarshal decodes data into v rejecting unknown fields, so
// misspelt keys surface as errors instead of zero values.
func strictUnmarshal(data []byte, v any, what string) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadArgument, what, err)
	}
	return nil
}

// batteryJSON is the v1 wire form of a Battery.
type batteryJSON struct {
	Version int `json:"version,omitempty"`
	// CapacityAs is the capacity in ampere-seconds. On decode the
	// string form "capacity" ("2000mAh") may be used instead.
	CapacityAs        *float64 `json:"capacity_as,omitempty"`
	Capacity          string   `json:"capacity,omitempty"`
	AvailableFraction float64  `json:"available_fraction"`
	FlowRatePerSec    float64  `json:"flow_rate_per_sec"`
}

// MarshalJSON encodes the battery in the v1 wire schema:
//
//	{"version":1,"capacity_as":7200,"available_fraction":0.625,"flow_rate_per_sec":4.5e-5}
//
// Invalid batteries do not encode; the error matches ErrBadArgument.
func (b Battery) MarshalJSON() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	c := b.CapacityAs
	return json.Marshal(batteryJSON{
		Version:           CodecVersion,
		CapacityAs:        &c,
		AvailableFraction: b.AvailableFraction,
		FlowRatePerSec:    b.FlowRate,
	})
}

// UnmarshalJSON decodes the v1 wire schema, accepting the capacity
// either as "capacity_as" (a number in ampere-seconds) or "capacity" (a
// unit string such as "2000mAh"). The decoded battery is validated; all
// failures match ErrBadArgument.
func (b *Battery) UnmarshalJSON(data []byte) error {
	var raw batteryJSON
	if err := strictUnmarshal(data, &raw, "battery"); err != nil {
		return err
	}
	if err := checkCodecVersion("battery", raw.Version); err != nil {
		return err
	}
	var capacity float64
	switch {
	case raw.CapacityAs != nil && raw.Capacity != "":
		return fmt.Errorf("%w: battery: capacity_as and capacity are mutually exclusive", ErrBadArgument)
	case raw.CapacityAs != nil:
		capacity = *raw.CapacityAs
	case raw.Capacity != "":
		c, err := units.ParseCharge(raw.Capacity)
		if err != nil {
			return fmt.Errorf("%w: battery capacity: %v", ErrBadArgument, err)
		}
		capacity = c.AmpereSeconds()
	default:
		return fmt.Errorf("%w: battery: missing capacity", ErrBadArgument)
	}
	decoded := Battery{
		CapacityAs:        capacity,
		AvailableFraction: raw.AvailableFraction,
		FlowRate:          raw.FlowRatePerSec,
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*b = decoded
	return nil
}

// workloadStateJSON is the wire form of one StateSpec. Current carries
// either a number (amperes) or a unit string ("8mA").
type workloadStateJSON struct {
	Name    string          `json:"name"`
	Current json.RawMessage `json:"current"`
}

// workloadTransJSON is the wire form of one TransitionSpec; exactly one
// rate field may be set.
type workloadTransJSON struct {
	From          string  `json:"from"`
	To            string  `json:"to"`
	RatePerSecond float64 `json:"rate_per_second,omitempty"`
	RatePerHour   float64 `json:"rate_per_hour,omitempty"`
}

// workloadJSON is the v1 wire form of a Workload.
type workloadJSON struct {
	Version     int                 `json:"version,omitempty"`
	States      []workloadStateJSON `json:"states"`
	Transitions []workloadTransJSON `json:"transitions"`
	Initial     string              `json:"initial"`
}

// Spec decompiles the workload into the specification that NewWorkload
// rebuilds it from: states in chain order with their currents,
// transitions in row-major generator order, and the name of the initial
// mode. It is the inverse of NewWorkload and the basis of the JSON
// codec.
func (w *Workload) Spec() (states []StateSpec, transitions []TransitionSpec, initial string) {
	chain := w.model.Chain
	n := chain.NumStates()
	states = make([]StateSpec, n)
	for i := 0; i < n; i++ {
		states[i] = StateSpec{Name: chain.Name(i), CurrentA: w.model.Currents[i]}
	}
	gen := chain.Generator()
	for r := 0; r < gen.Rows(); r++ {
		gen.Row(r, func(col int, v float64) {
			if col != r && v > 0 {
				transitions = append(transitions, TransitionSpec{
					From: chain.Name(r), To: chain.Name(col), RatePerSec: v,
				})
			}
		})
	}
	// Every public constructor starts in a single mode; report the mode
	// holding the largest initial mass so Spec stays total.
	best := 0
	for i, p := range w.model.Initial {
		if p > w.model.Initial[best] {
			best = i
		}
	}
	return states, transitions, chain.Name(best)
}

// MarshalJSON encodes the workload in the v1 wire schema:
//
//	{
//	  "version": 1,
//	  "states": [{"name": "idle", "current": 0.008}, ...],
//	  "transitions": [{"from": "idle", "to": "send", "rate_per_second": 0.000555}, ...],
//	  "initial": "idle"
//	}
//
// Currents are written in amperes and rates in 1/s; decoders also
// accept unit strings for currents ("8mA") and "rate_per_hour" for
// rates. The output is deterministic: states in chain order,
// transitions in row-major generator order.
func (w *Workload) MarshalJSON() ([]byte, error) {
	states, transitions, initial := w.Spec()
	out := workloadJSON{
		Version:     CodecVersion,
		States:      make([]workloadStateJSON, len(states)),
		Transitions: make([]workloadTransJSON, len(transitions)),
		Initial:     initial,
	}
	for i, s := range states {
		cur, err := json.Marshal(s.CurrentA)
		if err != nil {
			return nil, fmt.Errorf("batlife: workload state %s: %w", s.Name, err)
		}
		out.States[i] = workloadStateJSON{Name: s.Name, Current: cur}
	}
	for i, tr := range transitions {
		out.Transitions[i] = workloadTransJSON{From: tr.From, To: tr.To, RatePerSecond: tr.RatePerSec}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the v1 wire schema and builds the workload
// through NewWorkload, so a value that decodes is a valid model; all
// failures match ErrBadArgument.
func (w *Workload) UnmarshalJSON(data []byte) error {
	var raw workloadJSON
	if err := strictUnmarshal(data, &raw, "workload"); err != nil {
		return err
	}
	if err := checkCodecVersion("workload", raw.Version); err != nil {
		return err
	}
	states := make([]StateSpec, len(raw.States))
	names := make(map[string]bool, len(raw.States))
	for i, s := range raw.States {
		if s.Name == "" {
			return fmt.Errorf("%w: workload state %d: missing name", ErrBadArgument, i)
		}
		if names[s.Name] {
			return fmt.Errorf("%w: workload: duplicate state %q", ErrBadArgument, s.Name)
		}
		names[s.Name] = true
		cur, err := decodeCurrent(s.Current)
		if err != nil {
			return fmt.Errorf("%w: workload state %q: %v", ErrBadArgument, s.Name, err)
		}
		states[i] = StateSpec{Name: s.Name, CurrentA: cur}
	}
	transitions := make([]TransitionSpec, len(raw.Transitions))
	for i, tr := range raw.Transitions {
		// NewWorkload's builder would silently create endpoint states;
		// on the wire an undeclared endpoint is a spec error.
		if !names[tr.From] || !names[tr.To] {
			return fmt.Errorf("%w: workload transition %s->%s references an undeclared state",
				ErrBadArgument, tr.From, tr.To)
		}
		rate := tr.RatePerSecond
		if tr.RatePerHour != 0 {
			if rate != 0 {
				return fmt.Errorf("%w: workload transition %s->%s sets both rate units",
					ErrBadArgument, tr.From, tr.To)
			}
			rate = units.PerHour(tr.RatePerHour).PerSecond()
		}
		transitions[i] = TransitionSpec{From: tr.From, To: tr.To, RatePerSec: rate}
	}
	decoded, err := NewWorkload(states, transitions, raw.Initial)
	if err != nil {
		// Builder failures (unknown endpoints, bad rates) are argument
		// errors; normalise so every decode failure matches ErrBadArgument.
		return wrapErr(err)
	}
	*w = *decoded
	return nil
}

// decodeCurrent interprets a wire current: a JSON number is amperes, a
// JSON string carries units ("8mA", "0.96A").
func decodeCurrent(raw json.RawMessage) (float64, error) {
	if len(raw) == 0 {
		return 0, fmt.Errorf("missing current")
	}
	if raw[0] == '"' {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return 0, err
		}
		cur, err := units.ParseCurrent(s)
		if err != nil {
			return 0, err
		}
		return cur.Amperes(), nil
	}
	var a float64
	if err := json.Unmarshal(raw, &a); err != nil {
		return 0, err
	}
	return a, nil
}

// analysisOptionsJSON is the v1 wire form of AnalysisOptions. Only the
// serialisable numerical knobs travel; Context, Progress and Report are
// per-call process-local state.
type analysisOptionsJSON struct {
	Version int `json:"version,omitempty"`
	// DeltaAs is the discretisation step in ampere-seconds; the string
	// form "delta" ("5mAh") may be used instead on decode.
	DeltaAs       *float64 `json:"delta_as,omitempty"`
	Delta         string   `json:"delta,omitempty"`
	Epsilon       float64  `json:"epsilon,omitempty"`
	MaxIterations int      `json:"max_iterations,omitempty"`
}

// MarshalJSON encodes the serialisable options in the v1 wire schema:
//
//	{"version":1,"delta_as":18,"epsilon":1e-10,"max_iterations":500000}
//
// Options carrying process-local state (Context, Progress, Report) do
// not encode; the error matches ErrBadArgument.
func (o AnalysisOptions) MarshalJSON() ([]byte, error) {
	if o.Context != nil || o.Progress != nil || o.Report != nil {
		return nil, fmt.Errorf("%w: AnalysisOptions with Context, Progress or Report set cannot be serialised", ErrBadArgument)
	}
	out := analysisOptionsJSON{
		Version:       CodecVersion,
		Epsilon:       o.Epsilon,
		MaxIterations: o.MaxIterations,
	}
	if o.Delta != 0 {
		d := o.Delta
		out.DeltaAs = &d
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the v1 wire schema, accepting the step either
// as "delta_as" (ampere-seconds) or "delta" (a unit string such as
// "5mAh"), and validates ranges: Delta and Epsilon must be finite and
// non-negative, Epsilon below 1, MaxIterations non-negative. Absent
// fields keep their zero-value semantics (engine defaults). Failures
// match ErrBadArgument.
func (o *AnalysisOptions) UnmarshalJSON(data []byte) error {
	var raw analysisOptionsJSON
	if err := strictUnmarshal(data, &raw, "options"); err != nil {
		return err
	}
	if err := checkCodecVersion("options", raw.Version); err != nil {
		return err
	}
	var decoded AnalysisOptions
	switch {
	case raw.DeltaAs != nil && raw.Delta != "":
		return fmt.Errorf("%w: options: delta_as and delta are mutually exclusive", ErrBadArgument)
	case raw.DeltaAs != nil:
		decoded.Delta = *raw.DeltaAs
	case raw.Delta != "":
		d, err := units.ParseCharge(raw.Delta)
		if err != nil {
			return fmt.Errorf("%w: options delta: %v", ErrBadArgument, err)
		}
		decoded.Delta = d.AmpereSeconds()
	}
	if decoded.Delta < 0 || math.IsNaN(decoded.Delta) || math.IsInf(decoded.Delta, 0) {
		return fmt.Errorf("%w: options: delta %v", ErrBadArgument, decoded.Delta)
	}
	if raw.Epsilon < 0 || raw.Epsilon >= 1 || math.IsNaN(raw.Epsilon) {
		return fmt.Errorf("%w: options: epsilon %v (want 0 <= epsilon < 1)", ErrBadArgument, raw.Epsilon)
	}
	if raw.MaxIterations < 0 {
		return fmt.Errorf("%w: options: max_iterations %d", ErrBadArgument, raw.MaxIterations)
	}
	decoded.Epsilon = raw.Epsilon
	decoded.MaxIterations = raw.MaxIterations
	*o = decoded
	return nil
}
