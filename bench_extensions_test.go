package batlife

// Ablation and extension benchmarks beyond the paper's own tables — see
// DESIGN.md ("Ablations called out by the design") and the extension
// experiments of cmd/paperfigs.

import (
	"math"
	"testing"

	"batlife/internal/core"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/peukert"
	"batlife/internal/rao"
	"batlife/internal/units"
	"batlife/internal/workload"
)

// BenchmarkBaselineComparison runs the Section 2–3 model ladder (ideal,
// Peukert, KiBaM, modified KiBaM) on the Table 1 loads and reports the
// square-wave lifetimes: the two analytic baselines cannot distinguish
// pulsed from constant loads of the same average.
func BenchmarkBaselineComparison(b *testing.B) {
	modK, err := rao.CalibrateK(7200, 0.625, 1, 0.96, 90*60)
	if err != nil {
		b.Fatal(err)
	}
	modified := rao.Params{Capacity: 7200, C: 0.625, K: modK}
	l1, err := benchPaperBattery.Lifetime(kibam.ConstantLoad(0.5))
	if err != nil {
		b.Fatal(err)
	}
	l2, err := benchPaperBattery.Lifetime(kibam.ConstantLoad(2.0))
	if err != nil {
		b.Fatal(err)
	}
	law, err := peukert.Fit(0.5, l1, 2.0, l2)
	if err != nil {
		b.Fatal(err)
	}
	var idealMin, peukertMin, kibamMin, modMin float64
	wave := kibam.SquareWave{On: 0.96, Frequency: 1}
	for i := 0; i < b.N; i++ {
		iv, err := peukert.Ideal{Capacity: 7200}.Lifetime(0.48)
		if err != nil {
			b.Fatal(err)
		}
		idealMin = iv / 60
		pv, err := law.LifetimeAverage(0.96, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		peukertMin = pv / 60
		kv, err := benchPaperBattery.Lifetime(wave)
		if err != nil {
			b.Fatal(err)
		}
		kibamMin = kv / 60
		mv, err := modified.Lifetime(wave)
		if err != nil {
			b.Fatal(err)
		}
		modMin = mv / 60
	}
	b.ReportMetric(idealMin, "ideal_min")
	b.ReportMetric(peukertMin, "peukert_min")
	b.ReportMetric(kibamMin, "kibam_min")
	b.ReportMetric(modMin, "modified_min")
}

// BenchmarkMeanLifetimeSolver measures the Gauss–Seidel absorption-time
// solve on the expanded two-well chain and reports the mean.
func BenchmarkMeanLifetimeSolver(b *testing.B) {
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		b.Fatal(err)
	}
	model := mrm.KiBaMRM{
		Workload: w.Chain, Currents: w.Currents, Initial: w.Initial, Battery: benchPaperBattery,
	}
	e, err := core.Build(model, 50, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mean, err = e.MeanLifetime()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mean, "mean_lifetime_s")
	b.ReportMetric(float64(e.NumStates()), "states")
}

// BenchmarkWastedCharge measures the stranded-charge distribution of
// the two-well on/off battery — the quantification of Figure 10's
// "not possible to make use of the total capacity" observation.
func BenchmarkWastedCharge(b *testing.B) {
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		b.Fatal(err)
	}
	model := mrm.KiBaMRM{
		Workload: w.Chain, Currents: w.Currents, Initial: w.Initial, Battery: benchPaperBattery,
	}
	e, err := core.Build(model, 100, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wc, err := e.WastedChargeDistribution(40000)
		if err != nil {
			b.Fatal(err)
		}
		mean = wc.Mean()
	}
	b.ReportMetric(mean, "stranded_As")
}

// BenchmarkErlangKOnOff regenerates the Erlang-K extension experiment:
// the simulated distribution sharpens with K; the metric is the CDF
// spread between 14500 s and 15500 s (larger = sharper).
func BenchmarkErlangKOnOff(b *testing.B) {
	battery := kibam.Params{Capacity: 7200, C: 1, K: 0}
	for _, k := range []int{1, 4} {
		b.Run(
			map[int]string{1: "K=1", 4: "K=4"}[k],
			func(b *testing.B) {
				w, err := workload.OnOff(1, k, units.Amperes(0.96))
				if err != nil {
					b.Fatal(err)
				}
				model := mrm.KiBaMRM{
					Workload: w.Chain, Currents: w.Currents, Initial: w.Initial, Battery: battery,
				}
				var spread float64
				for i := 0; i < b.N; i++ {
					e, err := core.Build(model, 50, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					res, err := e.LifetimeCDF([]float64{14500, 15500})
					if err != nil {
						b.Fatal(err)
					}
					spread = res.EmptyProb[1] - res.EmptyProb[0]
				}
				b.ReportMetric(spread, "cdf_spread")
			})
	}
}

// BenchmarkPhasedDayNight measures the piecewise time-inhomogeneous
// solver: a light night phase followed by a heavy day phase.
func BenchmarkPhasedDayNight(b *testing.B) {
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		b.Fatal(err)
	}
	heavy := mrm.KiBaMRM{
		Workload: w.Chain, Currents: w.Currents, Initial: w.Initial,
		Battery: kibam.Params{Capacity: 7200, C: 1, K: 0},
	}
	light := heavy
	light.Currents = []float64{0.24, 0}
	phases := []core.ModelPhase{
		{Model: light, Duration: 8000},
		{Model: heavy, Duration: math.Inf(1)},
	}
	var probe float64
	for i := 0; i < b.N; i++ {
		res, err := core.PhasedLifetimeCDF(phases, 100, []float64{20000}, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		probe = res.EmptyProb[0]
	}
	b.ReportMetric(probe, "Pr_20000s")
}

// BenchmarkChargingHarvest measures the charging extension: an on/off
// device with a harvesting state.
func BenchmarkChargingHarvest(b *testing.B) {
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		b.Fatal(err)
	}
	model := mrm.KiBaMRM{
		Workload:      w.Chain,
		Currents:      []float64{0.96, -0.3},
		Initial:       w.Initial,
		Battery:       kibam.Params{Capacity: 7200, C: 1, K: 0},
		AllowCharging: true,
	}
	var probe float64
	for i := 0; i < b.N; i++ {
		e, err := core.Build(model, 50, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.LifetimeCDF([]float64{20000})
		if err != nil {
			b.Fatal(err)
		}
		probe = res.EmptyProb[0]
	}
	b.ReportMetric(probe, "Pr_20000s")
}
