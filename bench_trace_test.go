package batlife

import (
	"context"
	"fmt"
	"testing"

	"batlife/internal/obs"
)

// BenchmarkTraceOverhead measures what request-scoped tracing costs on
// the solver's hottest path — the memoised warm query — in three modes:
//
//   - "disabled": nil registry, untraced context. The solver's span
//     guard (solveSpan) short-circuits before building any attribute
//     slice; internal/obs's TestDisabledPathAllocs pins this guard at
//     zero allocations.
//   - "enabled": live registry, untraced context — every solve records
//     a root "solver.solve" span. The acceptance bar is < 3% overhead
//     against "disabled".
//   - "traced": live registry plus an inbound request span carried by
//     the context, the shape every daemon request has — the solve span
//     becomes a child and context propagation is exercised end to end.
//
// `make bench` records this benchmark's output as BENCH_trace.json.
func BenchmarkTraceOverhead(b *testing.B) {
	battery := Battery{CapacityAs: 7200, AvailableFraction: 0.625, FlowRate: 4.5e-5}
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{10000, 15000, 20000}

	modes := []string{"disabled", "enabled", "traced"}
	for _, mode := range modes {
		b.Run(fmt.Sprintf("warm/%s", mode), func(b *testing.B) {
			var reg *Telemetry
			if mode != "disabled" {
				reg = NewTelemetry()
			}
			s := NewSolver(SolverOptions{Telemetry: reg})
			opts := AnalysisOptions{Delta: 50}
			if mode == "traced" {
				ctx, span := obs.StartSpan(context.Background(), reg, "http.request")
				defer span.End()
				opts.Context = ctx
			}
			if _, err := s.LifetimeDistribution(battery, w, times, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.LifetimeDistribution(battery, w, times, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
