# Development entry points. `make test` is the tier-1 verify; `make lint`
# is the full static-analysis suite; `make ci` is everything the CI
# workflow gates on. See docs/DEVELOPING.md.

GO ?= go

.PHONY: all build test race checks lint lint-flow fuzz gen-checks bench bench-gate bench-baseline serve ci

all: build test lint

## build: compile every package
build:
	$(GO) build ./...

## test: tier-1 verify — build plus the full test suite
test: build
	$(GO) test ./...

## race: full test suite under the race detector
race:
	$(GO) test -race ./...

## checks: full test suite with the runtime invariant layer compiled in
checks:
	$(GO) test -tags debugchecks ./...

## lint: gofmt and go vet (both tag configurations)
lint:
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed for:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) vet -tags debugchecks ./internal/check

## lint-flow: the numlint analyzer suite over the whole module, gated on
## the committed baseline (only findings absent from
## .numlint-baseline.json fail), after vetting and race-testing the
## analyzers themselves. See docs/STATIC_ANALYSIS.md.
lint-flow:
	$(GO) vet ./tools/...
	$(GO) test -race ./tools/numlint/...
	$(GO) run ./tools/numlint -verify-gen-checks
	$(GO) run ./tools/numlint -baseline .numlint-baseline.json ./...

## fuzz: short fuzzing smoke over the directive, contract-grammar, and
## traceparent parsers; raise FUZZTIME for a real session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz='^FuzzParseDirective$$' -fuzztime=$(FUZZTIME) -run='^$$' ./tools/numlint
	$(GO) test -fuzz='^FuzzParseContract$$' -fuzztime=$(FUZZTIME) -run='^$$' ./tools/numlint/internal/summary
	$(GO) test -fuzz='^FuzzParseTraceparent$$' -fuzztime=$(FUZZTIME) -run='^$$' ./internal/obs

## gen-checks: regenerate the runtime contract shims from //numlint:
## requires/ensures directives (see docs/STATIC_ANALYSIS.md).
gen-checks:
	$(GO) run ./tools/numlint -gen-checks

## bench: run every benchmark once (smoke); pass BENCHTIME for real runs.
## The Solver benchmarks (cached reuse, parallel sweep) additionally land
## in BENCH_solver.json, the telemetry overhead benchmark (instrumented
## vs uninstrumented solves) in BENCH_obs.json, and the request-scoped
## tracing overhead benchmark (disabled / enabled / traced-context warm
## solves) in BENCH_trace.json, for machine comparison across commits.
## The SpMV runtime benchmarks (persistent pool vs spawn-per-product,
## fused and batched kernels) land in BENCH_spmv.json; BENCHCOUNT > 1
## repeats each benchmark so the gate's min-of-N filters scheduler noise.
BENCHTIME ?= 1x
BENCHCOUNT ?= 1
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -run='^$$' ./...
	$(GO) test -bench='BenchmarkSolverCachedReuse|BenchmarkSweepParallel' \
		-benchtime=$(BENCHTIME) -run='^$$' -json . > BENCH_solver.json
	$(GO) test -bench='^BenchmarkObsOverhead$$' \
		-benchtime=$(BENCHTIME) -run='^$$' -json . > BENCH_obs.json
	$(GO) test -bench='^BenchmarkTraceOverhead$$' \
		-benchtime=$(BENCHTIME) -run='^$$' -json . > BENCH_trace.json
	$(GO) test -bench='^BenchmarkUniformizedSpMV' -count=$(BENCHCOUNT) \
		-benchtime=$(BENCHTIME) -run='^$$' -json ./internal/sparse > BENCH_spmv.json

## bench-gate: fail if the SpMV benchmarks regressed against the
## committed BENCH_BASELINE.json (tolerance lives in the baseline;
## override per-run with `go run ./tools/benchgate -tolerance 0.2 ...`).
## Run `make bench` first (or let this target's dependency do it).
bench-gate: bench
	$(GO) run ./tools/benchgate -baseline BENCH_BASELINE.json BENCH_spmv.json

## bench-baseline: refresh the committed benchmark baseline from a fresh
## measurement on this machine. Use real repetitions, then commit the
## result: `make bench-baseline BENCHTIME=2s BENCHCOUNT=5`.
bench-baseline: bench
	$(GO) run ./tools/benchgate -baseline BENCH_BASELINE.json -write-baseline BENCH_spmv.json

## serve: run the batlifed HTTP daemon locally (override the listen
## address with ADDR, e.g. `make serve ADDR=:9000`). See docs/SERVICE.md.
ADDR ?= :8418
serve:
	$(GO) run ./cmd/batlifed -addr $(ADDR)

## ci: everything the CI workflow gates on
ci: lint lint-flow build test race checks
