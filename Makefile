# Development entry points. `make test` is the tier-1 verify; `make lint`
# is the full static-analysis suite; `make ci` is everything the CI
# workflow gates on. See docs/DEVELOPING.md.

GO ?= go

.PHONY: all build test race checks lint bench ci

all: build test lint

## build: compile every package
build:
	$(GO) build ./...

## test: tier-1 verify — build plus the full test suite
test: build
	$(GO) test ./...

## race: full test suite under the race detector
race:
	$(GO) test -race ./...

## checks: full test suite with the runtime invariant layer compiled in
checks:
	$(GO) test -tags debugchecks ./...

## lint: gofmt, go vet (both tag configurations), and numlint
lint:
	@fmtout=$$(gofmt -l .); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed for:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) vet -tags debugchecks ./internal/check
	$(GO) run ./tools/numlint ./...

## bench: run every benchmark once (smoke); pass BENCHTIME for real runs.
## The Solver benchmarks (cached reuse, parallel sweep) additionally land
## in BENCH_solver.json, and the telemetry overhead benchmark
## (instrumented vs uninstrumented solves) in BENCH_obs.json, for
## machine comparison across commits.
BENCHTIME ?= 1x
bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -run='^$$' ./...
	$(GO) test -bench='BenchmarkSolverCachedReuse|BenchmarkSweepParallel' \
		-benchtime=$(BENCHTIME) -run='^$$' -json . > BENCH_solver.json
	$(GO) test -bench='^BenchmarkObsOverhead$$' \
		-benchtime=$(BENCHTIME) -run='^$$' -json . > BENCH_obs.json

## ci: everything the CI workflow gates on
ci: lint build test race checks
