package batlife

// This file is the benchmark harness required by DESIGN.md: one
// testing.B benchmark per table and figure of the paper's evaluation,
// plus the ablations the design calls out. Each benchmark regenerates
// the experiment's data (at a bench-friendly resolution; cmd/paperfigs
// -full runs the paper-exact grids) and reports headline numbers as
// custom metrics so the shape of the result is visible in the bench
// output itself.

import (
	"fmt"
	"runtime"
	"testing"

	"batlife/internal/core"
	"batlife/internal/discretize"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/performability"
	"batlife/internal/rao"
	"batlife/internal/sim"
	"batlife/internal/units"
	"batlife/internal/workload"
)

var benchPaperBattery = kibam.Params{Capacity: 7200, C: 0.625, K: 4.5e-5}

func benchOnOffModel(b *testing.B, battery kibam.Params) mrm.KiBaMRM {
	b.Helper()
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		b.Fatal(err)
	}
	return mrm.KiBaMRM{Workload: w.Chain, Currents: w.Currents, Initial: w.Initial, Battery: battery}
}

func benchWireless(b *testing.B, m *workload.Model, battery kibam.Params) mrm.KiBaMRM {
	b.Helper()
	return mrm.KiBaMRM{Workload: m.Chain, Currents: m.Currents, Initial: m.Initial, Battery: battery}
}

// BenchmarkFig2SquareWaveTrace regenerates Figure 2: the charge-well
// trace under a 0.001 Hz square wave.
func BenchmarkFig2SquareWaveTrace(b *testing.B) {
	var depletion float64
	for i := 0; i < b.N; i++ {
		points, err := benchPaperBattery.Trace(kibam.SquareWave{On: 0.96, Frequency: 0.001}, 100, 13000)
		if err != nil {
			b.Fatal(err)
		}
		depletion = points[len(points)-1].T
	}
	b.ReportMetric(depletion, "depletion_s")
}

// BenchmarkTable1Lifetimes regenerates Table 1: plain KiBaM, modified
// KiBaM (deterministic) and modified KiBaM (stochastic) lifetimes under
// continuous, 1 Hz and 0.2 Hz loads.
func BenchmarkTable1Lifetimes(b *testing.B) {
	modK, err := rao.CalibrateK(7200, 0.625, 1, 0.96, 90*60)
	if err != nil {
		b.Fatal(err)
	}
	modified := rao.Params{Capacity: 7200, C: 0.625, K: modK}
	stochastic := rao.StochasticParams{Params: modified}
	profiles := map[string]kibam.Profile{
		"continuous": kibam.ConstantLoad(0.96),
		"1Hz":        kibam.SquareWave{On: 0.96, Frequency: 1},
		"0.2Hz":      kibam.SquareWave{On: 0.96, Frequency: 0.2},
	}
	results := make(map[string]float64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, p := range profiles {
			plain, err := benchPaperBattery.Lifetime(p)
			if err != nil {
				b.Fatal(err)
			}
			numeric, err := modified.Lifetime(p)
			if err != nil {
				b.Fatal(err)
			}
			stoch, _, err := stochastic.MeanLifetime(1, 5, p)
			if err != nil {
				b.Fatal(err)
			}
			results["kibam_"+name] = plain / 60
			results["modnum_"+name] = numeric / 60
			results["modstoch_"+name] = stoch / 60
		}
	}
	for name, v := range results {
		b.ReportMetric(v, name+"_min")
	}
}

// benchmarkLifetimeCDF times one Markovian-approximation solve and
// reports the CDF at a probe time plus the chain size.
func benchmarkLifetimeCDF(b *testing.B, model mrm.KiBaMRM, delta float64, times []float64, probeIdx int) {
	b.Helper()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		e, err := core.Build(model, delta, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err = e.LifetimeCDF(times)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.States), "states")
	b.ReportMetric(float64(res.Iterations), "iters")
	b.ReportMetric(res.EmptyProb[probeIdx], "Pr_probe")
}

// BenchmarkFig7OnOffDegenerate regenerates Figure 7 (c = 1, k = 0)
// across step sizes; the probe metric is Pr[empty at 15000 s] ≈ 0.5.
func BenchmarkFig7OnOffDegenerate(b *testing.B) {
	model := benchOnOffModel(b, kibam.Params{Capacity: 7200, C: 1, K: 0})
	times := []float64{10000, 15000, 20000}
	for _, delta := range []float64{100, 50, 25, 5} {
		b.Run(fmt.Sprintf("delta=%g", delta), func(b *testing.B) {
			benchmarkLifetimeCDF(b, model, delta, times, 1)
		})
	}
	b.Run("simulation", func(b *testing.B) {
		var probe float64
		for i := 0; i < b.N; i++ {
			curve, err := sim.CurveAt(model, 1, sim.Options{Runs: 1000}, times)
			if err != nil {
				b.Fatal(err)
			}
			probe = curve[1]
		}
		b.ReportMetric(probe, "Pr_probe")
	})
}

// BenchmarkFig8OnOffKiBaM regenerates Figure 8 (c = 0.625, k = 4.5e-5).
// The paper's Δ = 10 and Δ = 5 grids are exercised by cmd/paperfigs
// -full; the bench keeps the grid at Δ ≥ 25 to stay in seconds.
func BenchmarkFig8OnOffKiBaM(b *testing.B) {
	model := benchOnOffModel(b, benchPaperBattery)
	times := []float64{10000, 15000, 20000}
	for _, delta := range []float64{100, 50, 25} {
		b.Run(fmt.Sprintf("delta=%g", delta), func(b *testing.B) {
			benchmarkLifetimeCDF(b, model, delta, times, 1)
		})
	}
	b.Run("simulation", func(b *testing.B) {
		var probe float64
		for i := 0; i < b.N; i++ {
			curve, err := sim.CurveAt(model, 1, sim.Options{Runs: 1000}, times)
			if err != nil {
				b.Fatal(err)
			}
			probe = curve[1]
		}
		b.ReportMetric(probe, "Pr_probe")
	})
}

// BenchmarkFig9InitialCapacity regenerates Figure 9: the three
// initial-capacity scenarios, probing Pr[empty at 12000 s], which
// orders them small < two-well < large.
func BenchmarkFig9InitialCapacity(b *testing.B) {
	scenarios := []struct {
		name    string
		battery kibam.Params
		delta   float64
	}{
		{"C=4500_c=1", kibam.Params{Capacity: 4500, C: 1, K: 0}, 5},
		{"C=7200_c=0.625", benchPaperBattery, 25},
		{"C=7200_c=1", kibam.Params{Capacity: 7200, C: 1, K: 0}, 5},
	}
	times := []float64{12000, 16000}
	for _, s := range scenarios {
		b.Run(s.name, func(b *testing.B) {
			benchmarkLifetimeCDF(b, benchOnOffModel(b, s.battery), s.delta, times, 0)
		})
	}
}

// BenchmarkFig10SimpleModel regenerates Figure 10: the simple wireless
// model under the three battery settings, probing Pr[empty at 15 h].
func BenchmarkFig10SimpleModel(b *testing.B) {
	simple, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		b.Fatal(err)
	}
	mah := func(x float64) float64 { return units.MilliampHours(x).AmpereSeconds() }
	times := []float64{10 * 3600, 15 * 3600, 20 * 3600}

	b.Run("C=500_c=1_delta=2mAh", func(b *testing.B) {
		model := benchWireless(b, simple, kibam.Params{Capacity: mah(500), C: 1, K: 0})
		benchmarkLifetimeCDF(b, model, mah(2), times, 1)
	})
	b.Run("C=800_c=0.625_delta=2mAh", func(b *testing.B) {
		model := benchWireless(b, simple, kibam.Params{Capacity: mah(800), C: 0.625, K: 4.5e-5})
		benchmarkLifetimeCDF(b, model, mah(2), times, 1)
	})
	b.Run("C=800_c=1_exact", func(b *testing.B) {
		model := mrm.ConstantReward{Chain: simple.Chain, Rates: simple.Currents, Initial: simple.Initial}
		var probe float64
		for i := 0; i < b.N; i++ {
			probs, err := performability.EnergyDepletionCDF(model, mah(800), times)
			if err != nil {
				b.Fatal(err)
			}
			probe = probs[1]
		}
		b.ReportMetric(probe, "Pr_probe")
	})
	b.Run("C=800_c=0.625_simulation", func(b *testing.B) {
		model := benchWireless(b, simple, kibam.Params{Capacity: mah(800), C: 0.625, K: 4.5e-5})
		var probe float64
		for i := 0; i < b.N; i++ {
			curve, err := sim.CurveAt(model, 1, sim.Options{Runs: 1000}, times)
			if err != nil {
				b.Fatal(err)
			}
			probe = curve[1]
		}
		b.ReportMetric(probe, "Pr_probe")
	})
}

// BenchmarkFig11SimpleVsBurst regenerates Figure 11 at the paper's
// Δ = 5 mAh and reports both models' Pr[empty at 20 h] — the paper's
// quoted 0.95 vs 0.89 comparison.
func BenchmarkFig11SimpleVsBurst(b *testing.B) {
	battery := kibam.Params{
		Capacity: units.MilliampHours(800).AmpereSeconds(),
		C:        0.625,
		K:        4.5e-5,
	}
	delta := units.MilliampHours(5).AmpereSeconds()
	times := []float64{20 * 3600}
	simple, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		b.Fatal(err)
	}
	burst, err := workload.Burst(workload.BurstConfig{})
	if err != nil {
		b.Fatal(err)
	}
	var pSimple, pBurst float64
	for i := 0; i < b.N; i++ {
		for _, m := range []struct {
			model *workload.Model
			out   *float64
		}{{simple, &pSimple}, {burst, &pBurst}} {
			e, err := core.Build(benchWireless(b, m.model, battery), delta, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := e.LifetimeCDF(times)
			if err != nil {
				b.Fatal(err)
			}
			*m.out = res.EmptyProb[0]
		}
	}
	b.ReportMetric(pSimple, "Pr_simple_20h")
	b.ReportMetric(pBurst, "Pr_burst_20h")
}

// BenchmarkComplexityScaling measures the Δ^-dependence of the
// Markovian approximation (Section 5.3): states grow with Δ^-1 (one
// well) or Δ^-2 (two wells), and iterations grow once consumption
// dominates the uniformisation rate.
func BenchmarkComplexityScaling(b *testing.B) {
	times := []float64{17000}
	for _, delta := range []float64{300, 100, 50, 25} {
		b.Run(fmt.Sprintf("two-well/delta=%g", delta), func(b *testing.B) {
			benchmarkLifetimeCDF(b, benchOnOffModel(b, benchPaperBattery), delta, times, 0)
		})
	}
	for _, delta := range []float64{50, 25, 10, 5} {
		b.Run(fmt.Sprintf("one-well/delta=%g", delta), func(b *testing.B) {
			model := benchOnOffModel(b, kibam.Params{Capacity: 7200, C: 1, K: 0})
			benchmarkLifetimeCDF(b, model, delta, times, 0)
		})
	}
}

// BenchmarkAblationDiscretize compares the paper's Markovian
// approximation against the reward-discretisation algorithm of [18] and
// the exact transform on the same question: Pr[empty at 15 h] for the
// simple model with c = 1. The paper's claim is that discretisation is
// unattractive; the metrics let the error/runtime trade-off be read off
// directly.
func BenchmarkAblationDiscretize(b *testing.B) {
	simple, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		b.Fatal(err)
	}
	capacity := units.MilliampHours(800).AmpereSeconds()
	times := []float64{15 * 3600}
	cr := mrm.ConstantReward{Chain: simple.Chain, Rates: simple.Currents, Initial: simple.Initial}
	exact, err := performability.EnergyDepletionCDF(cr, capacity, times)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("markovian/delta=2mAh", func(b *testing.B) {
		model := benchWireless(b, simple, kibam.Params{Capacity: capacity, C: 1, K: 0})
		var probe float64
		for i := 0; i < b.N; i++ {
			e, err := core.Build(model, units.MilliampHours(2).AmpereSeconds(), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			res, err := e.LifetimeCDF(times)
			if err != nil {
				b.Fatal(err)
			}
			probe = res.EmptyProb[0]
		}
		b.ReportMetric(probe-exact[0], "error_vs_exact")
	})
	for _, step := range []float64{120, 30} {
		b.Run(fmt.Sprintf("discretize/step=%gs", step), func(b *testing.B) {
			var probe float64
			for i := 0; i < b.N; i++ {
				probs, err := discretize.EnergyDepletionCDF(cr, capacity, times, step)
				if err != nil {
					b.Fatal(err)
				}
				probe = probs[0]
			}
			b.ReportMetric(probe-exact[0], "error_vs_exact")
		})
	}
	b.Run("exact-transform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := performability.EnergyDepletionCDF(cr, capacity, times); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulation1000Runs measures the paper's simulation
// methodology in isolation: 1000 trajectories of the two-well on/off
// model.
func BenchmarkSimulation1000Runs(b *testing.B) {
	model := benchOnOffModel(b, benchPaperBattery)
	for i := 0; i < b.N; i++ {
		if _, err := sim.Lifetimes(model, int64(i+1), sim.Options{Runs: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverCachedReuse measures the payoff of the Solver's cache
// layers on a repeated identical query. "cold" pays the full pipeline
// every iteration (a fresh Solver per query, the pre-Solver behaviour);
// "warm-model" reuses the cached expanded CTMC and uniformised operator
// but re-runs the transient solve (Progress bypasses the result memo);
// "warm" additionally hits the result memo. The acceptance bar for the
// engine is warm ≥ 2x faster than cold.
func BenchmarkSolverCachedReuse(b *testing.B) {
	battery := Battery{CapacityAs: 7200, AvailableFraction: 0.625, FlowRate: 4.5e-5}
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{10000, 15000, 20000}
	opts := AnalysisOptions{Delta: 50}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewSolver(SolverOptions{}).LifetimeDistribution(battery, w, times, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-model", func(b *testing.B) {
		s := NewSolver(SolverOptions{})
		noMemo := opts
		noMemo.Progress = func(done, total int) {}
		if _, err := s.LifetimeDistribution(battery, w, times, noMemo); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.LifetimeDistribution(battery, w, times, noMemo); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := NewSolver(SolverOptions{})
		if _, err := s.LifetimeDistribution(battery, w, times, opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.LifetimeDistribution(battery, w, times, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepParallel measures Solver.Sweep on the Figure 8
// Δ-refinement grid, sequential vs all-cores — the scenario-level
// scaling the sweep API exists for. Each iteration uses a fresh Solver
// so every scenario is solved for real (no memo hits across b.N).
func BenchmarkSweepParallel(b *testing.B) {
	battery := Battery{CapacityAs: 7200, AvailableFraction: 0.625, FlowRate: 4.5e-5}
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{10000, 15000, 20000}
	var scenarios []Scenario
	for _, delta := range []float64{100, 50, 25} {
		scenarios = append(scenarios, Scenario{
			Name: fmt.Sprintf("delta=%g", delta), Battery: battery, Workload: w,
			DeltaAs: delta, Times: times,
		})
	}
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := NewSolver(SolverOptions{}).Sweep(scenarios, SweepOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkPublicAPI measures the facade end-to-end: build workload,
// expand, solve — what a downstream user pays per call.
func BenchmarkPublicAPI(b *testing.B) {
	battery := Battery{CapacityAs: MilliampHours(800), AvailableFraction: 0.625, FlowRate: 4.5e-5}
	w, err := SimpleWireless()
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{15 * 3600, 20 * 3600}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LifetimeDistribution(battery, w, MilliampHours(10), times); err != nil {
			b.Fatal(err)
		}
	}
}
