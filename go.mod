module batlife

go 1.22
