package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"batlife"
	"batlife/internal/api"
)

// startDaemon runs the daemon with an ephemeral port and returns its
// base URL, the injected signal channel, and the exit-code future.
func startDaemon(t *testing.T, extra ...string) (url string, sigs chan os.Signal, code chan int) {
	t.Helper()
	sigs = make(chan os.Signal, 1)
	ready := make(chan string, 1)
	code = make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	var logBuf bytes.Buffer
	go func() { code <- run(args, sigs, ready, &logBuf) }()
	select {
	case addr := <-ready:
		return "http://" + addr, sigs, code
	case c := <-code:
		t.Fatalf("daemon exited immediately with %d; log:\n%s", c, logBuf.String())
		return "", nil, nil
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
		return "", nil, nil
	}
}

func solveBody(t *testing.T) []byte {
	t.Helper()
	w, err := batlife.NewWorkload(
		[]batlife.StateSpec{{Name: "idle", CurrentA: 0.008}, {Name: "send", CurrentA: 0.2}},
		[]batlife.TransitionSpec{
			{From: "idle", To: "send", RatePerSec: 0.5},
			{From: "send", To: "idle", RatePerSec: 0.25},
		},
		"idle")
	if err != nil {
		t.Fatal(err)
	}
	req := api.SolveRequest{
		Battery:  batlife.Battery{CapacityAs: 7200, AvailableFraction: 1},
		Workload: w,
		Times:    []float64{10000, 20000, 40000},
		Options:  batlife.AnalysisOptions{Delta: 200},
	}
	raw, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestDaemonLifecycle(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	url, sigs, code := startDaemon(t, "-trace-out", traceFile)

	// Liveness and readiness.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	// A real end-to-end solve.
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(solveBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve = %d, body = %s", resp.StatusCode, body)
	}
	var sr api.SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Result == nil || len(sr.Result.EmptyProb) != 3 {
		t.Fatalf("solve result = %+v", sr)
	}
	last := sr.Result.EmptyProb[len(sr.Result.EmptyProb)-1]
	if last <= 0 || last > 1 {
		t.Errorf("CDF tail = %v, want in (0, 1]", last)
	}

	// Metrics are live.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`service_requests_total{endpoint="solve"}`)) {
		t.Errorf("/metrics = %d, service counters missing", resp.StatusCode)
	}

	// SIGTERM: graceful drain, clean exit, telemetry flushed.
	sigs <- syscall.SIGTERM
	select {
	case c := <-code:
		if c != exitOK {
			t.Fatalf("exit code = %d, want %d", c, exitOK)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	if !json.Valid(raw) {
		t.Error("trace file is not valid JSON")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, nil, nil, &buf); code != exitUsage {
		t.Errorf("bad flag exit = %d, want %d", code, exitUsage)
	}
	if code := run([]string{"stray"}, nil, nil, &buf); code != exitUsage {
		t.Errorf("stray arg exit = %d, want %d", code, exitUsage)
	}
	if !strings.Contains(buf.String(), "unexpected arguments") {
		t.Errorf("stray-arg message missing; log:\n%s", buf.String())
	}
}

func TestDaemonListenFailure(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:-1"}, nil, nil, &buf); code != exitInternal {
		t.Errorf("bad addr exit = %d, want %d", code, exitInternal)
	}
}
