// Command batlifed is the battery-lifetime solve daemon: a long-running
// HTTP/JSON service fronting a shared batlife.Solver, so repeated and
// concurrent analyses share one model cache, result memo and admission
// policy instead of each paying cold-start construction.
//
// Endpoints (wire schema in internal/api, semantics in internal/service):
//
//	POST /v1/solve      lifetime CDF ("cdf", default), exact CDF
//	                    ("exact") or expected lifetime ("mean")
//	POST /v1/sweep      scenario grid; ?stream=1 returns NDJSON progress
//	GET  /v1/jobs/{id}  status/result of a live or retained job
//	GET  /healthz       liveness (always ok while serving)
//	GET  /readyz        readiness (503 once draining)
//	GET  /metrics       Prometheus/OpenMetrics text exposition
//	GET  /metrics.json  expvar-style metrics JSON (also /debug/vars)
//	GET  /debug/traces  recent request traces (JSON span trees;
//	                    ?fmt=text renders a waterfall), with
//	                    net/http/pprof under /debug/pprof/
//
// Every request runs under a trace: an inbound W3C traceparent header
// is honoured (the daemon joins the caller's trace) and otherwise a
// root trace is minted; the trace ID is echoed in the
// X-Batlife-Trace-Id response header, stamped on log lines, and
// reported by GET /v1/jobs/{id} (add ?trace=1 for the full span tree).
//
// Identical concurrent requests coalesce onto one job (content-addressed
// job IDs), overload is refused up front (429) instead of queued without
// bound, and SIGINT/SIGTERM triggers a graceful drain: stop admitting
// (503 + not-ready), finish inflight jobs, then exit.
//
// Exit status: 0 after a clean drain, 1 on serve/internal errors, 2 on
// bad flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"batlife"
	"batlife/internal/obs"
	"batlife/internal/service"
)

const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], sigs, nil, os.Stderr))
}

// run parses flags, serves until a signal arrives, drains and exits.
// ready, when non-nil, receives the bound listen address once the
// server accepts connections (tests use it with -addr :0).
func run(args []string, sigs <-chan os.Signal, ready chan<- string, stderr io.Writer) int {
	fs := flag.NewFlagSet("batlifed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr           = fs.String("addr", ":8418", "listen address (host:port; :0 picks an ephemeral port)")
		maxInflight    = fs.Int("max-inflight", 0, "max concurrently running jobs (0 = NumCPU)")
		queueDepth     = fs.Int("queue-depth", -1, "admitted jobs allowed to wait for a run slot (-1 = 2x max-inflight, 0 = none)")
		defaultTimeout = fs.Duration("default-timeout", time.Minute, "per-job deadline for requests without timeout_seconds")
		maxTimeout     = fs.Duration("max-timeout", 10*time.Minute, "upper clamp on requested per-job deadlines")
		jobRetention   = fs.Int("job-retention", 128, "finished jobs kept addressable via /v1/jobs/{id}")
		sweepWorkers   = fs.Int("sweep-workers", 0, "upper clamp on per-request sweep parallelism (0 = NumCPU)")
		modelCache     = fs.Int("model-cache", 32, "expanded CTMCs retained across requests")
		resultCache    = fs.Int("result-cache", 256, "memoised analysis results retained across requests")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits for inflight jobs before giving up")
		traceOut       = fs.String("trace-out", "", "write solve spans as JSON to this file on exit")
		traceRetention = fs.Int("trace-retention", obs.DefaultMaxSpans, "completed spans retained for /debug/traces (ring; oldest evicted first)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "batlifed: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}

	reg := batlife.NewTelemetry()
	reg.SetLogger(obs.NewLogger(stderr, obsLogLevel()))
	reg.Tracer().SetMaxSpans(*traceRetention)
	logger := reg.Logger()

	svc := service.New(service.Config{
		Solver: batlife.NewSolver(batlife.SolverOptions{
			ModelCacheCapacity:  *modelCache,
			ResultCacheCapacity: *resultCache,
			Telemetry:           reg,
		}),
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		JobRetention:   *jobRetention,
		SweepWorkers:   *sweepWorkers,
		Obs:            reg,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "batlifed: listen %s: %v\n", *addr, err)
		return exitInternal
	}
	srv := &http.Server{
		Handler:           svc.Routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logger.Info("batlifed serving", "addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	code := exitOK
	select {
	case sig := <-sigs:
		logger.Info("signal received, draining", "signal", fmt.Sprint(sig), "timeout", drainTimeout.String())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := svc.Drain(drainCtx); err != nil {
			logger.Warn("drain expired with jobs inflight", "err", err.Error())
			code = exitInternal
		}
		cancel()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Warn("shutdown", "err", err.Error())
			code = exitInternal
		}
		cancel()
		<-serveErr // Serve has returned http.ErrServerClosed
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "batlifed: serve: %v\n", err)
			code = exitInternal
		}
	}

	// Flush telemetry: drain is complete, so the span set is final.
	if *traceOut != "" {
		if err := writeTrace(*traceOut, reg); err != nil {
			fmt.Fprintf(stderr, "batlifed: %v\n", err)
			code = exitInternal
		}
	}
	logger.Info("batlifed stopped")
	return code
}

// obsLogLevel reads BATLIFED_LOG ("debug", "info", "warn", "error");
// unset or unknown selects info.
func obsLogLevel() slog.Level {
	switch os.Getenv("BATLIFED_LOG") {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// writeTrace dumps the tracer's spans to path.
func writeTrace(path string, reg *batlife.Telemetry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := reg.Tracer().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("trace-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	return nil
}
