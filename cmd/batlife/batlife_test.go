package main

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestTimeGrid(t *testing.T) {
	times, err := timeGrid("2h", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1800, 3600, 5400, 7200}
	if len(times) != len(want) {
		t.Fatalf("grid = %v", times)
	}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-9 {
			t.Errorf("times[%d] = %v, want %v", i, times[i], want[i])
		}
	}
}

func TestTimeGridErrors(t *testing.T) {
	if _, err := timeGrid("bogus", 4); err == nil {
		t.Error("bad duration accepted")
	}
	if _, err := timeGrid("2h", 1); err == nil {
		t.Error("single point accepted")
	}
	if _, err := timeGrid("-2h", 4); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestBatteryFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	bf := addBatteryFlags(fs)
	if err := fs.Parse([]string{"-capacity", "800mAh", "-c", "0.5", "-k", "1e-5"}); err != nil {
		t.Fatal(err)
	}
	p, err := bf.params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity != 2880 || p.C != 0.5 || p.K != 1e-5 {
		t.Errorf("params = %+v", p)
	}
}

func TestBatteryFlagsInvalid(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	bf := addBatteryFlags(fs)
	if err := fs.Parse([]string{"-capacity", "800joules"}); err != nil {
		t.Fatal(err)
	}
	if _, err := bf.params(); err == nil {
		t.Error("bad capacity unit accepted")
	}
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	bf2 := addBatteryFlags(fs2)
	if err := fs2.Parse([]string{"-c", "1.5"}); err != nil {
		t.Fatal(err)
	}
	if _, err := bf2.params(); err == nil {
		t.Error("c > 1 accepted")
	}
}

func TestWorkloadFlagsBuiltins(t *testing.T) {
	for _, name := range []string{"simple", "burst", "onoff"} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		wf := addWorkloadFlags(fs)
		if err := fs.Parse([]string{"-workload", name}); err != nil {
			t.Fatal(err)
		}
		m, err := wf.model()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Chain.NumStates() == 0 {
			t.Errorf("%s: empty chain", name)
		}
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	wf := addWorkloadFlags(fs)
	if err := fs.Parse([]string{"-workload", "quantum"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wf.model(); err == nil {
		t.Error("unknown workload accepted")
	}
}

func writeTempSpec(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSpec(t *testing.T) {
	path := writeTempSpec(t, `{
		"states": [
			{"name": "idle", "current": "8mA"},
			{"name": "send", "current": "0.2A"}
		],
		"transitions": [
			{"from": "idle", "to": "send", "rate_per_hour": 2},
			{"from": "send", "to": "idle", "rate_per_second": 0.00166}
		],
		"initial": "idle"
	}`)
	m, err := loadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.NumStates() != 2 {
		t.Fatalf("states = %d", m.Chain.NumStates())
	}
	idle := m.Chain.Index("idle")
	if m.Currents[idle] != 0.008 {
		t.Errorf("idle current = %v", m.Currents[idle])
	}
	if got := m.Chain.ExitRate(idle); math.Abs(got-2.0/3600) > 1e-12 {
		t.Errorf("idle rate = %v, want 2/h", got)
	}
	if m.Initial[idle] != 1 {
		t.Error("initial distribution not on idle")
	}
}

func TestLoadSpecCanonicalCodecForm(t *testing.T) {
	// The CLI accepts the canonical v1 codec form (versioned, numeric
	// currents) — one wire schema shared with the batlifed daemon — and
	// loadSpec/loadPublicSpec agree on the decoded model.
	path := writeTempSpec(t, `{
		"version": 1,
		"states": [
			{"name": "idle", "current": 0.008},
			{"name": "send", "current": 0.2}
		],
		"transitions": [
			{"from": "idle", "to": "send", "rate_per_second": 0.5},
			{"from": "send", "to": "idle", "rate_per_second": 0.25}
		],
		"initial": "idle"
	}`)
	m, err := loadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := loadPublicSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.NumStates() != 2 {
		t.Fatalf("states = %d", m.Chain.NumStates())
	}
	if got := m.Currents[m.Chain.Index("send")]; got != 0.2 {
		t.Errorf("send current = %v", got)
	}
	states, _, initial := w.Spec()
	if len(states) != 2 || initial != "idle" {
		t.Errorf("public spec: %d states, initial %q", len(states), initial)
	}

	// An undeclared transition endpoint is now a loud spec error.
	bad := writeTempSpec(t, `{
		"states": [{"name": "a", "current": "1A"}],
		"transitions": [{"from": "a", "to": "ghost", "rate_per_second": 1}],
		"initial": "a"
	}`)
	if _, err := loadSpec(bad); err == nil {
		t.Error("undeclared endpoint accepted")
	}
}

func TestLoadSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty states", `{"states": [], "initial": "x"}`},
		{"bad json", `{`},
		{"unknown initial", `{"states":[{"name":"a","current":"1A"}],"initial":"zzz"}`},
		{"bad current", `{"states":[{"name":"a","current":"1V"}],"initial":"a"}`},
		{"both rate units", `{"states":[{"name":"a","current":"1A"},{"name":"b","current":"0mA"}],
			"transitions":[{"from":"a","to":"b","rate_per_hour":1,"rate_per_second":1}],"initial":"a"}`},
		{"negative rate", `{"states":[{"name":"a","current":"1A"},{"name":"b","current":"0mA"}],
			"transitions":[{"from":"a","to":"b","rate_per_hour":-1}],"initial":"a"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTempSpec(t, tc.json)
			if _, err := loadSpec(path); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
	if _, err := loadSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
