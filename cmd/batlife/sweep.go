package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"batlife"
	"batlife/internal/units"
)

// cmdSweep evaluates a grid of scenarios — the cartesian product of the
// requested capacities and discretisation steps over one workload — in
// parallel through the public Solver, and prints the lifetime CDFs as
// one wide table (one column per scenario). This is how the paper's
// Δ-refinement figures (e.g. Figure 8) are produced in one run instead
// of one `batlife cdf` invocation per curve.
func cmdSweep(args []string) (retErr error) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	bf := addBatteryFlags(fs)
	wf := addWorkloadFlags(fs)
	of := addObsFlags(fs)
	deltas := fs.String("deltas", "10mAh,5mAh,2.5mAh", "comma-separated discretisation steps (charge units)")
	capacities := fs.String("capacities", "", "comma-separated capacities to sweep (default: just -capacity)")
	until := fs.String("until", "30h", "evaluation horizon")
	points := fs.Int("points", 30, "number of evaluation points")
	workers := fs.Int("workers", 0, "concurrent scenarios (0: number of CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	run, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if err := run.finish(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	reg := run.reg
	p, err := bf.params()
	if err != nil {
		return err
	}
	w, err := wf.public()
	if err != nil {
		return err
	}
	times, err := timeGrid(*until, *points)
	if err != nil {
		return err
	}

	capSpecs := []string{*bf.capacity}
	if *capacities != "" {
		capSpecs = strings.Split(*capacities, ",")
	}
	deltaSpecs := strings.Split(*deltas, ",")

	var scenarios []batlife.Scenario
	for _, cs := range capSpecs {
		cap_, err := units.ParseCharge(strings.TrimSpace(cs))
		if err != nil {
			return fmt.Errorf("capacity %q: %w", cs, err)
		}
		for _, ds := range deltaSpecs {
			d, err := units.ParseCharge(strings.TrimSpace(ds))
			if err != nil {
				return fmt.Errorf("delta %q: %w", ds, err)
			}
			name := fmt.Sprintf("Δ=%s", strings.TrimSpace(ds))
			if len(capSpecs) > 1 {
				name = fmt.Sprintf("C=%s %s", strings.TrimSpace(cs), name)
			}
			scenarios = append(scenarios, batlife.Scenario{
				Name: name,
				Battery: batlife.Battery{
					CapacityAs:        cap_.AmpereSeconds(),
					AvailableFraction: p.C,
					FlowRate:          p.K,
				},
				Workload: w,
				DeltaAs:  d.AmpereSeconds(),
				Times:    times,
			})
		}
	}

	solver := batlife.NewSolver(batlife.SolverOptions{
		ModelCacheCapacity: len(scenarios),
		Telemetry:          reg,
	})
	results, err := solver.Sweep(scenarios, batlife.SweepOptions{
		Workers: *workers,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d scenarios", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		return err
	}
	var failed int
	var firstErr error
	for _, r := range results {
		if r.Err != nil {
			failed++
			if firstErr == nil {
				firstErr = r.Err
			}
			fmt.Fprintf(os.Stderr, "scenario %s: %v\n", r.Name, r.Err)
		}
	}
	if failed == len(results) {
		// Wrap the first failure so sentinel classes (ErrBadArgument,
		// ErrIterationLimit) survive into the process exit code.
		return fmt.Errorf("all %d scenarios failed: %w", failed, firstErr)
	}

	header := []string{"t_s", "t_h"}
	for _, r := range results {
		if r.Err == nil {
			header = append(header, r.Name)
		}
	}
	fmt.Println(strings.Join(header, "\t"))
	for i, t := range times {
		row := []string{fmt.Sprintf("%.1f", t), fmt.Sprintf("%.3f", t/3600)}
		for _, r := range results {
			if r.Err == nil {
				row = append(row, fmt.Sprintf("%.6f", r.Distribution.EmptyProb[i]))
			}
		}
		fmt.Println(strings.Join(row, "\t"))
	}
	if reg != nil {
		st := solver.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d evictions, %d models retained\n",
			st.Hits, st.Misses, st.Evictions, st.Entries)
	}
	return nil
}

// public builds the workload as a public batlife.Workload — the sweep
// command runs entirely on the facade so the Solver path the library
// users take is the one the CLI exercises.
func (wf workloadFlags) public() (*batlife.Workload, error) {
	if *wf.spec != "" {
		return loadPublicSpec(*wf.spec)
	}
	switch *wf.name {
	case "simple":
		return batlife.SimpleWireless()
	case "burst":
		return batlife.BurstWireless()
	case "onoff":
		cur, err := units.ParseCurrent(*wf.on)
		if err != nil {
			return nil, err
		}
		return batlife.OnOffWorkload(*wf.freq, *wf.k, cur.Amperes())
	default:
		return nil, fmt.Errorf("unknown workload %q (want simple, burst or onoff)", *wf.name)
	}
}
