package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"batlife/internal/core"
	"batlife/internal/mrm"
	"batlife/internal/performability"
	"batlife/internal/sim"
	"batlife/internal/units"
)

func cmdMean(args []string) error {
	fs := flag.NewFlagSet("mean", flag.ExitOnError)
	bf := addBatteryFlags(fs)
	wf := addWorkloadFlags(fs)
	delta := fs.String("delta", "5mAh", "discretisation step (charge units)")
	horizon := fs.String("horizon", "", "stranded-charge horizon (default 5x the mean lifetime)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := bf.params()
	if err != nil {
		return err
	}
	model, err := wf.kibamrm(p)
	if err != nil {
		return err
	}
	d, err := units.ParseCharge(*delta)
	if err != nil {
		return err
	}
	e, err := core.Build(model, d.AmpereSeconds(), core.Options{})
	if err != nil {
		return err
	}
	mean, err := e.MeanLifetime()
	if err != nil {
		return err
	}
	fmt.Printf("mean_lifetime\t%.1fs\t%.2fmin\t%.4fh\n", mean, mean/60, mean/3600)

	if p.C < 1 {
		h := 5 * mean
		if *horizon != "" {
			hd, err := units.ParseDuration(*horizon)
			if err != nil {
				return err
			}
			h = hd.Seconds()
		}
		wc, err := e.WastedChargeDistribution(h)
		if err != nil {
			return err
		}
		if wc.AbsorbedMass < 0.99 {
			fmt.Fprintf(os.Stderr, "warning: only %.1f%% depleted by the horizon; stranded figures are conditional\n",
				100*wc.AbsorbedMass)
		}
		bound := (1 - p.C) * p.Capacity
		fmt.Printf("stranded_charge\t%.1fAs\t%.1fmAh\t(%.1f%% of the bound well)\n",
			wc.Mean(), units.Coulombs(wc.Mean()).MilliampHours(), 100*wc.Mean()/bound)
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	bf := addBatteryFlags(fs)
	wf := addWorkloadFlags(fs)
	delta := fs.String("delta", "5mAh", "discretisation step (charge units)")
	runs := fs.Int("runs", 1000, "simulation runs")
	seed := fs.Int64("seed", 1, "simulation seed")
	until := fs.String("until", "30h", "evaluation horizon")
	points := fs.Int("points", 15, "number of evaluation points")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := bf.params()
	if err != nil {
		return err
	}
	model, err := wf.kibamrm(p)
	if err != nil {
		return err
	}
	d, err := units.ParseCharge(*delta)
	if err != nil {
		return err
	}
	times, err := timeGrid(*until, *points)
	if err != nil {
		return err
	}

	e, err := core.Build(model, d.AmpereSeconds(), core.Options{})
	if err != nil {
		return err
	}
	approx, err := e.LifetimeCDF(times)
	if err != nil {
		return err
	}
	ecdf, err := sim.Lifetimes(model, *seed, sim.Options{Runs: *runs})
	if err != nil {
		return err
	}
	simCurve := ecdf.Eval(times)

	var exact []float64
	//numlint:ignore floatcmp c = 1 is an exact spec-file sentinel selecting the exact solver
	if p.C == 1 {
		cr := mrm.ConstantReward{Chain: model.Workload, Rates: model.Currents, Initial: model.Initial}
		exact, err = performability.EnergyDepletionCDF(cr, p.Capacity, times)
		if err != nil {
			return err
		}
	}

	if exact != nil {
		fmt.Println("t_h\tapprox\tsimulation\texact")
	} else {
		fmt.Println("t_h\tapprox\tsimulation")
	}
	for i, t := range times {
		if exact != nil {
			fmt.Printf("%.3f\t%.6f\t%.6f\t%.6f\n", t/3600, approx.EmptyProb[i], simCurve[i], exact[i])
		} else {
			fmt.Printf("%.3f\t%.6f\t%.6f\n", t/3600, approx.EmptyProb[i], simCurve[i])
		}
	}
	fmt.Fprintf(os.Stderr, "approximation: %d states, %d iterations; simulation: %d runs (DKW 95%% band ±%.3f)\n",
		approx.States, approx.Iterations, ecdf.N(), dkwBand(ecdf.N()))
	return nil
}

// dkwBand is the 95% Dvoretzky–Kiefer–Wolfowitz half-width for n runs.
func dkwBand(n int) float64 {
	if n <= 0 {
		return 1
	}
	return math.Sqrt(math.Log(2/0.05) / (2 * float64(n)))
}
