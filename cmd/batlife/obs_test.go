package main

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"batlife"
	"batlife/internal/obs"
)

// TestCmdSweepTraceOut pins the acceptance path: one sweep run with
// -trace-out and -metrics-addr must produce a valid span JSON file
// covering expansion, uniformisation and per-scenario stages.
func TestCmdSweepTraceOut(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	args := []string{
		"-workload", "onoff", "-capacity", "7200As", "-c", "1", "-k", "0",
		"-deltas", "720As,360As", "-until", "6h", "-points", "4", "-workers", "2",
		"-trace-out", trace, "-metrics-addr", "127.0.0.1:0",
	}
	if err := cmdSweep(args); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		t.Fatalf("trace file is not valid span JSON: %v", err)
	}
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
		if s.DurationNs < 0 || s.StartUnixNs <= 0 {
			t.Errorf("span %s: implausible timing %+v", s.Name, s)
		}
	}
	if byName["sweep.scenario"] != 2 {
		t.Errorf("sweep.scenario spans = %d, want 2", byName["sweep.scenario"])
	}
	for _, stage := range []string{"engine.build", "core.build", "ctmc.transient"} {
		if byName[stage] != 2 {
			t.Errorf("%s spans = %d, want 2 (one per Δ); got %v", stage, byName[stage], byName)
		}
	}
}

// TestCmdCDFTraceOut checks the cdf command writes build and transient
// spans too.
func TestCmdCDFTraceOut(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	args := []string{
		"-workload", "onoff", "-capacity", "7200As", "-c", "1", "-k", "0",
		"-delta", "720As", "-until", "6h", "-points", "4",
		"-trace-out", trace,
	}
	if err := cmdCDF(args); err != nil {
		t.Fatalf("cdf: %v", err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		t.Fatalf("trace file is not valid span JSON: %v", err)
	}
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
	}
	if byName["core.build"] != 1 || byName["ctmc.transient"] != 1 {
		t.Errorf("spans = %v, want one core.build and one ctmc.transient", byName)
	}
}

// TestLiveMetricsEndpoint drives the same obsFlags wiring the commands
// use and scrapes the live /metrics endpoint mid-run: engine cache
// hit/miss counters and the uniformisation iteration total must be
// visible.
func TestLiveMetricsEndpoint(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	of := addObsFlags(fs)
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	run, err := of.setup()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := run.finish(); err != nil {
			t.Error(err)
		}
	}()

	w, err := batlife.OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	b := batlife.Battery{CapacityAs: 7200, AvailableFraction: 1}
	solver := batlife.NewSolver(batlife.SolverOptions{Telemetry: run.reg})
	times := []float64{10000, 15000}
	// Two queries on one model: the first builds it (miss); the second
	// uses a distinct time grid, so it skips the result memo but hits the
	// engine cache.
	if _, err := solver.LifetimeDistribution(b, w, times, batlife.AnalysisOptions{Delta: 720}); err != nil {
		t.Fatal(err)
	}
	if _, err := solver.LifetimeDistribution(b, w, []float64{12000}, batlife.AnalysisOptions{Delta: 720}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + run.srv.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["engine_cache_misses_total"] != 1 {
		t.Errorf("engine_cache_misses_total = %d, want 1", snap.Counters["engine_cache_misses_total"])
	}
	if snap.Counters["engine_cache_hits_total"] != 1 {
		t.Errorf("engine_cache_hits_total = %d, want 1", snap.Counters["engine_cache_hits_total"])
	}
	if snap.Counters["ctmc_uniformization_iterations_total"] <= 0 {
		t.Errorf("ctmc_uniformization_iterations_total = %d, want > 0",
			snap.Counters["ctmc_uniformization_iterations_total"])
	}
}
