// Command batlife computes battery lifetimes and lifetime distributions
// from the command line.
//
// Subcommands:
//
//	lifetime   analytic KiBaM lifetime under constant or square-wave load
//	cdf        lifetime distribution via the Markovian approximation
//	simulate   lifetime distribution via Monte-Carlo simulation
//	calibrate  fit the KiBaM flow constant k to a measured lifetime
//	trace      charge-well evolution under a square wave
//	mean       expected lifetime and stranded charge
//	compare    approximation vs simulation (vs exact when c = 1)
//	sweep      parallel scenario grid (capacities x discretisation steps)
//
// Quantities are written with units: currents as "0.96A"/"200mA",
// charges as "800mAh"/"7200As", durations as "90min"/"2h"/"15000s".
// Workloads are either built-in ("simple", "burst", "onoff") or custom
// JSON specifications (see -spec).
//
// Examples:
//
//	batlife lifetime -capacity 2000mAh -c 0.625 -k 4.5e-5 -current 0.96A
//	batlife lifetime -capacity 2000mAh -c 0.625 -k 4.5e-5 -current 0.96A -freq 1
//	batlife cdf -workload simple -capacity 800mAh -c 0.625 -k 4.5e-5 -delta 5mAh -until 30h -points 60
//	batlife simulate -workload onoff -capacity 2000mAh -c 1 -runs 1000 -until 6h -points 50
//	batlife calibrate -capacity 2000mAh -c 0.625 -current 0.96A -target 90min
//	batlife trace -capacity 2000mAh -c 0.625 -k 4.5e-5 -current 0.96A -freq 0.001 -until 4h
//	batlife sweep -workload simple -capacity 800mAh -deltas 10mAh,5mAh,2.5mAh -until 30h -points 60
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "lifetime":
		err = cmdLifetime(os.Args[2:])
	case "cdf":
		err = cmdCDF(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "calibrate":
		err = cmdCalibrate(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "mean":
		err = cmdMean(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "batlife: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "batlife:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: batlife <subcommand> [flags]

subcommands:
  lifetime   analytic KiBaM lifetime under constant or square-wave load
  cdf        lifetime distribution via the Markovian approximation
  simulate   lifetime distribution via Monte-Carlo simulation
  calibrate  fit the KiBaM flow constant k to a measured lifetime
  trace      charge-well evolution under a square wave
  mean       expected lifetime and stranded charge
  compare    approximation vs simulation (vs exact when c = 1)
  sweep      parallel scenario grid (capacities x discretisation steps)

run 'batlife <subcommand> -h' for flags
`)
}
