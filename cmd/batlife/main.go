// Command batlife computes battery lifetimes and lifetime distributions
// from the command line.
//
// Subcommands:
//
//	lifetime   analytic KiBaM lifetime under constant or square-wave load
//	cdf        lifetime distribution via the Markovian approximation
//	simulate   lifetime distribution via Monte-Carlo simulation
//	calibrate  fit the KiBaM flow constant k to a measured lifetime
//	trace      charge-well evolution under a square wave
//	mean       expected lifetime and stranded charge
//	compare    approximation vs simulation (vs exact when c = 1)
//	sweep      parallel scenario grid (capacities x discretisation steps)
//
// Quantities are written with units: currents as "0.96A"/"200mA",
// charges as "800mAh"/"7200As", durations as "90min"/"2h"/"15000s".
// Workloads are either built-in ("simple", "burst", "onoff") or custom
// JSON specifications (see -spec).
//
// Exit status distinguishes the failure class for scripts driving
// parameter studies:
//
//	0  success
//	1  internal error (solver failure, I/O, ...)
//	2  usage error: unknown subcommand, bad flags, or batlife.ErrBadArgument
//	3  batlife.ErrIterationLimit: the solve was refused or truncated by
//	   an iteration budget — retry with a larger budget or coarser grid
//
// Examples:
//
//	batlife lifetime -capacity 2000mAh -c 0.625 -k 4.5e-5 -current 0.96A
//	batlife lifetime -capacity 2000mAh -c 0.625 -k 4.5e-5 -current 0.96A -freq 1
//	batlife cdf -workload simple -capacity 800mAh -c 0.625 -k 4.5e-5 -delta 5mAh -until 30h -points 60
//	batlife simulate -workload onoff -capacity 2000mAh -c 1 -runs 1000 -until 6h -points 50
//	batlife calibrate -capacity 2000mAh -c 0.625 -current 0.96A -target 90min
//	batlife trace -capacity 2000mAh -c 0.625 -k 4.5e-5 -current 0.96A -freq 0.001 -until 4h
//	batlife sweep -workload simple -capacity 800mAh -deltas 10mAh,5mAh,2.5mAh -until 30h -points 60
package main

import (
	"errors"
	"fmt"
	"os"

	"batlife"
)

// Exit codes; see the command doc comment.
const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
	exitLimit    = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run dispatches one subcommand and returns the process exit code.
func run(args []string, stderr *os.File) int {
	if len(args) < 1 {
		usage(stderr)
		return exitUsage
	}
	var err error
	switch args[0] {
	case "lifetime":
		err = cmdLifetime(args[1:])
	case "cdf":
		err = cmdCDF(args[1:])
	case "simulate":
		err = cmdSimulate(args[1:])
	case "calibrate":
		err = cmdCalibrate(args[1:])
	case "trace":
		err = cmdTrace(args[1:])
	case "mean":
		err = cmdMean(args[1:])
	case "compare":
		err = cmdCompare(args[1:])
	case "sweep":
		err = cmdSweep(args[1:])
	case "-h", "--help", "help":
		usage(stderr)
		return exitOK
	default:
		fmt.Fprintf(stderr, "batlife: unknown subcommand %q\n\n", args[0])
		usage(stderr)
		return exitUsage
	}
	if err != nil {
		fmt.Fprintln(stderr, "batlife:", err)
	}
	return exitCode(err)
}

// exitCode maps a subcommand error to the exit status: invalid
// arguments land with usage errors, iteration-budget refusals get their
// own code so callers can retry with a different budget, and everything
// else is an internal error.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, batlife.ErrBadArgument):
		return exitUsage
	case errors.Is(err, batlife.ErrIterationLimit):
		return exitLimit
	}
	return exitInternal
}

func usage(w *os.File) {
	fmt.Fprint(w, `usage: batlife <subcommand> [flags]

subcommands:
  lifetime   analytic KiBaM lifetime under constant or square-wave load
  cdf        lifetime distribution via the Markovian approximation
  simulate   lifetime distribution via Monte-Carlo simulation
  calibrate  fit the KiBaM flow constant k to a measured lifetime
  trace      charge-well evolution under a square wave
  mean       expected lifetime and stranded charge
  compare    approximation vs simulation (vs exact when c = 1)
  sweep      parallel scenario grid (capacities x discretisation steps)

run 'batlife <subcommand> -h' for flags; exit codes: 0 ok, 1 internal,
2 usage, 3 iteration limit
`)
}
