package main

import (
	"testing"
)

// The command functions parse their own flags from argument slices, so
// they can be driven end to end in-process. They print to stdout, which
// go test tolerates; correctness of the numbers is pinned by the
// library tests — these tests pin the wiring.

func TestCmdLifetime(t *testing.T) {
	cases := [][]string{
		{"-current", "0.96A"},
		{"-current", "0.96A", "-freq", "1"},
		{"-current", "0.96A", "-cutoff", "3.4"},
		{"-current", "0.96A", "-freq", "1", "-cutoff", "3.4"},
	}
	for _, args := range cases {
		if err := cmdLifetime(args); err != nil {
			t.Errorf("lifetime %v: %v", args, err)
		}
	}
}

func TestCmdLifetimeErrors(t *testing.T) {
	cases := [][]string{
		{"-current", "0.96V"},
		{"-capacity", "800joules"},
		{"-current", "0.96A", "-cutoff", "9.9"},
		{"-c", "0"},
	}
	for _, args := range cases {
		if err := cmdLifetime(args); err == nil {
			t.Errorf("lifetime %v: expected error", args)
		}
	}
}

func TestCmdCalibrate(t *testing.T) {
	if err := cmdCalibrate([]string{"-target", "90min"}); err != nil {
		t.Errorf("calibrate: %v", err)
	}
	if err := cmdCalibrate([]string{"-target", "1min"}); err == nil {
		t.Error("unreachable target accepted")
	}
}

func TestCmdTrace(t *testing.T) {
	if err := cmdTrace([]string{"-until", "30min", "-interval", "5min"}); err != nil {
		t.Errorf("trace: %v", err)
	}
	if err := cmdTrace([]string{"-interval", "0s"}); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestCmdCDF(t *testing.T) {
	args := []string{
		"-workload", "onoff", "-capacity", "7200As", "-c", "1", "-k", "0",
		"-delta", "720As", "-until", "6h", "-points", "4",
	}
	if err := cmdCDF(args); err != nil {
		t.Errorf("cdf: %v", err)
	}
	if err := cmdCDF(append(args[:len(args):len(args)], "-plot")); err != nil {
		t.Errorf("cdf -plot: %v", err)
	}
	if err := cmdCDF([]string{"-delta", "7As"}); err == nil {
		t.Error("non-divisor delta accepted")
	}
}

func TestCmdSimulate(t *testing.T) {
	args := []string{
		"-workload", "onoff", "-capacity", "7200As", "-c", "1", "-k", "0",
		"-runs", "20", "-until", "6h", "-points", "4",
	}
	if err := cmdSimulate(args); err != nil {
		t.Errorf("simulate: %v", err)
	}
}

func TestCmdMean(t *testing.T) {
	args := []string{
		"-workload", "onoff", "-capacity", "7200As", "-delta", "900As",
	}
	if err := cmdMean(args); err != nil {
		t.Errorf("mean: %v", err)
	}
	if err := cmdMean([]string{"-delta", "nonsense"}); err == nil {
		t.Error("bad delta accepted")
	}
}

func TestCmdCompare(t *testing.T) {
	args := []string{
		"-workload", "onoff", "-capacity", "7200As", "-c", "1", "-k", "0",
		"-delta", "720As", "-runs", "50", "-until", "6h", "-points", "3",
	}
	if err := cmdCompare(args); err != nil {
		t.Errorf("compare: %v", err)
	}
	// Two-well battery: no exact column, still works.
	args2 := []string{
		"-workload", "onoff", "-capacity", "7200As", "-c", "0.625", "-k", "4.5e-5",
		"-delta", "900As", "-runs", "50", "-until", "6h", "-points", "3",
	}
	if err := cmdCompare(args2); err != nil {
		t.Errorf("compare two-well: %v", err)
	}
}

func TestCmdSweep(t *testing.T) {
	args := []string{
		"-workload", "onoff", "-capacity", "7200As", "-c", "1", "-k", "0",
		"-deltas", "720As,360As", "-until", "6h", "-points", "4", "-workers", "2",
	}
	if err := cmdSweep(args); err != nil {
		t.Errorf("sweep: %v", err)
	}
	multi := []string{
		"-workload", "onoff", "-capacity", "7200As", "-c", "1", "-k", "0",
		"-capacities", "7200As,3600As", "-deltas", "720As",
		"-until", "6h", "-points", "3",
	}
	if err := cmdSweep(multi); err != nil {
		t.Errorf("sweep -capacities: %v", err)
	}
	if err := cmdSweep([]string{"-deltas", "nonsense"}); err == nil {
		t.Error("bad delta accepted")
	}
	// Non-divisor deltas fail every scenario, which must fail the command.
	if err := cmdSweep([]string{
		"-workload", "onoff", "-capacity", "7200As", "-c", "1", "-k", "0",
		"-deltas", "7As", "-until", "6h", "-points", "3",
	}); err == nil {
		t.Error("all-failing sweep reported success")
	}
}

func TestCmdSweepSpec(t *testing.T) {
	spec := `{
	  "states": [
	    {"name": "idle", "current": "8mA"},
	    {"name": "send", "current": "200mA"}
	  ],
	  "transitions": [
	    {"from": "idle", "to": "send", "rate_per_hour": 2},
	    {"from": "send", "to": "idle", "rate_per_hour": 6}
	  ],
	  "initial": "idle"
	}`
	path := writeTempSpec(t, spec)
	args := []string{
		"-spec", path, "-capacity", "800mAh", "-c", "1", "-k", "0",
		"-deltas", "80mAh", "-until", "30h", "-points", "3",
	}
	if err := cmdSweep(args); err != nil {
		t.Errorf("sweep -spec: %v", err)
	}
}

func TestDKWBand(t *testing.T) {
	if b := dkwBand(1000); b < 0.042 || b > 0.044 {
		t.Errorf("dkwBand(1000) = %v", b)
	}
	if b := dkwBand(0); b != 1 {
		t.Errorf("dkwBand(0) = %v", b)
	}
}
