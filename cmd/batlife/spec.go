package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"batlife"
	"batlife/internal/ctmc"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/units"
	"batlife/internal/workload"
)

// workloadFlags selects a built-in workload or a JSON specification.
type workloadFlags struct {
	name *string
	spec *string
	freq *float64
	k    *int
	on   *string
}

func addWorkloadFlags(fs *flag.FlagSet) workloadFlags {
	return workloadFlags{
		name: fs.String("workload", "simple", "built-in workload: simple, burst, onoff (ignored with -spec)"),
		spec: fs.String("spec", "", "path to a JSON workload specification (batlife v1 codec)"),
		freq: fs.Float64("freq-onoff", 1, "on/off workload switching frequency in Hz"),
		k:    fs.Int("erlang", 1, "on/off workload Erlang order"),
		on:   fs.String("on-current", "0.96A", "on/off workload on-phase current"),
	}
}

func (wf workloadFlags) model() (*workload.Model, error) {
	if *wf.spec != "" {
		w, err := loadPublicSpec(*wf.spec)
		if err != nil {
			return nil, err
		}
		return internalModel(w)
	}
	switch *wf.name {
	case "simple":
		return workload.Simple(workload.SimpleConfig{})
	case "burst":
		return workload.Burst(workload.BurstConfig{})
	case "onoff":
		cur, err := units.ParseCurrent(*wf.on)
		if err != nil {
			return nil, err
		}
		return workload.OnOff(*wf.freq, *wf.k, cur)
	default:
		return nil, fmt.Errorf("unknown workload %q (want simple, burst or onoff)", *wf.name)
	}
}

func (wf workloadFlags) kibamrm(battery kibam.Params) (mrm.KiBaMRM, error) {
	m, err := wf.model()
	if err != nil {
		return mrm.KiBaMRM{}, err
	}
	return mrm.KiBaMRM{
		Workload: m.Chain,
		Currents: m.Currents,
		Initial:  m.Initial,
		Battery:  battery,
	}, nil
}

// loadPublicSpec reads a workload specification through the public
// batlife JSON codec — the same wire schema the batlifed daemon
// accepts, so one spec file drives both the CLI and the service:
//
//	{
//	  "version": 1,
//	  "states": [
//	    {"name": "idle", "current": "8mA"},
//	    {"name": "send", "current": 0.2}
//	  ],
//	  "transitions": [
//	    {"from": "idle", "to": "send", "rate_per_hour": 2},
//	    {"from": "send", "to": "idle", "rate_per_second": 0.00166}
//	  ],
//	  "initial": "idle"
//	}
//
// Currents are numbers in amperes or unit strings; "version" may be
// omitted (treated as 1). Decoding validates: anything that loads is a
// usable model.
func loadPublicSpec(path string) (*batlife.Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read spec: %w", err)
	}
	var w batlife.Workload
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	return &w, nil
}

// loadSpec loads a spec file for the internal-model commands; it
// decodes through the public codec and decompiles the result, so both
// paths accept exactly one schema.
func loadSpec(path string) (*workload.Model, error) {
	w, err := loadPublicSpec(path)
	if err != nil {
		return nil, err
	}
	return internalModel(w)
}

// internalModel rebuilds the internal workload model from a public
// Workload via its decompiled specification.
func internalModel(w *batlife.Workload) (*workload.Model, error) {
	states, transitions, initial := w.Spec()
	var b ctmc.Builder
	for _, s := range states {
		b.State(s.Name)
	}
	for _, tr := range transitions {
		b.Transition(tr.From, tr.To, tr.RatePerSec)
	}
	chain, err := b.Build()
	if err != nil {
		return nil, err
	}
	currents := make([]float64, chain.NumStates())
	for _, s := range states {
		currents[chain.Index(s.Name)] = s.CurrentA
	}
	return &workload.Model{
		Chain:    chain,
		Currents: currents,
		Initial:  chain.PointDistribution(chain.Index(initial)),
	}, nil
}
