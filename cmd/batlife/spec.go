package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"batlife/internal/ctmc"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/units"
	"batlife/internal/workload"
)

// workloadFlags selects a built-in workload or a JSON specification.
type workloadFlags struct {
	name *string
	spec *string
	freq *float64
	k    *int
	on   *string
}

func addWorkloadFlags(fs *flag.FlagSet) workloadFlags {
	return workloadFlags{
		name: fs.String("workload", "simple", "built-in workload: simple, burst, onoff (ignored with -spec)"),
		spec: fs.String("spec", "", "path to a JSON workload specification"),
		freq: fs.Float64("freq-onoff", 1, "on/off workload switching frequency in Hz"),
		k:    fs.Int("erlang", 1, "on/off workload Erlang order"),
		on:   fs.String("on-current", "0.96A", "on/off workload on-phase current"),
	}
}

func (wf workloadFlags) model() (*workload.Model, error) {
	if *wf.spec != "" {
		return loadSpec(*wf.spec)
	}
	switch *wf.name {
	case "simple":
		return workload.Simple(workload.SimpleConfig{})
	case "burst":
		return workload.Burst(workload.BurstConfig{})
	case "onoff":
		cur, err := units.ParseCurrent(*wf.on)
		if err != nil {
			return nil, err
		}
		return workload.OnOff(*wf.freq, *wf.k, cur)
	default:
		return nil, fmt.Errorf("unknown workload %q (want simple, burst or onoff)", *wf.name)
	}
}

func (wf workloadFlags) kibamrm(battery kibam.Params) (mrm.KiBaMRM, error) {
	m, err := wf.model()
	if err != nil {
		return mrm.KiBaMRM{}, err
	}
	return mrm.KiBaMRM{
		Workload: m.Chain,
		Currents: m.Currents,
		Initial:  m.Initial,
		Battery:  battery,
	}, nil
}

// specFile is the JSON schema for custom workloads:
//
//	{
//	  "states": [
//	    {"name": "idle", "current": "8mA"},
//	    {"name": "send", "current": "200mA"}
//	  ],
//	  "transitions": [
//	    {"from": "idle", "to": "send", "rate_per_hour": 2},
//	    {"from": "send", "to": "idle", "rate_per_second": 0.00166}
//	  ],
//	  "initial": "idle"
//	}
type specFile struct {
	States []struct {
		Name    string `json:"name"`
		Current string `json:"current"`
	} `json:"states"`
	Transitions []struct {
		From          string  `json:"from"`
		To            string  `json:"to"`
		RatePerHour   float64 `json:"rate_per_hour"`
		RatePerSecond float64 `json:"rate_per_second"`
	} `json:"transitions"`
	Initial string `json:"initial"`
}

func loadSpec(path string) (*workload.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read spec: %w", err)
	}
	var spec specFile
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("parse spec %s: %w", path, err)
	}
	if len(spec.States) == 0 {
		return nil, fmt.Errorf("spec %s: no states", path)
	}
	var b ctmc.Builder
	for _, s := range spec.States {
		b.State(s.Name)
	}
	for _, tr := range spec.Transitions {
		rate := tr.RatePerSecond
		if tr.RatePerHour != 0 {
			if rate != 0 {
				return nil, fmt.Errorf("spec %s: transition %s->%s sets both rate units", path, tr.From, tr.To)
			}
			rate = units.PerHour(tr.RatePerHour).PerSecond()
		}
		b.Transition(tr.From, tr.To, rate)
	}
	chain, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("spec %s: %w", path, err)
	}
	currents := make([]float64, chain.NumStates())
	for _, s := range spec.States {
		cur, err := units.ParseCurrent(s.Current)
		if err != nil {
			return nil, fmt.Errorf("spec %s, state %s: %w", path, s.Name, err)
		}
		currents[chain.Index(s.Name)] = cur.Amperes()
	}
	init := chain.Index(spec.Initial)
	if init < 0 {
		return nil, fmt.Errorf("spec %s: unknown initial state %q", path, spec.Initial)
	}
	return &workload.Model{
		Chain:    chain,
		Currents: currents,
		Initial:  chain.PointDistribution(init),
	}, nil
}
