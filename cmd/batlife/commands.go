package main

import (
	"flag"
	"fmt"
	"os"

	"batlife/internal/core"
	"batlife/internal/kibam"
	"batlife/internal/report"
	"batlife/internal/sim"
	"batlife/internal/units"
)

// batteryFlags registers the common battery flags on fs.
type batteryFlags struct {
	capacity *string
	c        *float64
	k        *float64
}

func addBatteryFlags(fs *flag.FlagSet) batteryFlags {
	return batteryFlags{
		capacity: fs.String("capacity", "2000mAh", "battery capacity (e.g. 800mAh, 7200As)"),
		c:        fs.Float64("c", 0.625, "KiBaM available-charge fraction in (0,1]"),
		k:        fs.Float64("k", 4.5e-5, "KiBaM flow constant in 1/s"),
	}
}

func (bf batteryFlags) params() (kibam.Params, error) {
	cap_, err := units.ParseCharge(*bf.capacity)
	if err != nil {
		return kibam.Params{}, err
	}
	p := kibam.Params{Capacity: cap_.AmpereSeconds(), C: *bf.c, K: *bf.k}
	if err := p.Validate(); err != nil {
		return kibam.Params{}, err
	}
	return p, nil
}

// timeGrid builds an evaluation grid from -until and -points.
func timeGrid(until string, points int) ([]float64, error) {
	d, err := units.ParseDuration(until)
	if err != nil {
		return nil, err
	}
	if points < 2 {
		return nil, fmt.Errorf("need at least 2 points, got %d", points)
	}
	horizon := d.Seconds()
	if horizon <= 0 {
		return nil, fmt.Errorf("horizon must be positive, got %v", horizon)
	}
	times := make([]float64, points)
	for i := range times {
		times[i] = horizon * float64(i+1) / float64(points)
	}
	return times, nil
}

func cmdLifetime(args []string) error {
	fs := flag.NewFlagSet("lifetime", flag.ExitOnError)
	bf := addBatteryFlags(fs)
	current := fs.String("current", "0.96A", "load current")
	freq := fs.Float64("freq", 0, "square-wave frequency in Hz (0: constant load)")
	duty := fs.Float64("duty", 0.5, "square-wave duty cycle")
	cutoff := fs.Float64("cutoff", 0, "cut-off voltage in volt (0: run to charge depletion); uses a typical Li-ion voltage curve")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := bf.params()
	if err != nil {
		return err
	}
	cur, err := units.ParseCurrent(*current)
	if err != nil {
		return err
	}
	var profile kibam.Profile = kibam.ConstantLoad(cur.Amperes())
	if *freq > 0 {
		profile = kibam.SquareWave{On: cur.Amperes(), Frequency: *freq, Duty: *duty}
	}
	if *cutoff > 0 {
		res, err := p.LifetimeToCutoff(kibam.TypicalLiIon(), profile, *cutoff)
		if err != nil {
			return err
		}
		reason := "charge depleted"
		if res.VoltageLimited {
			reason = "voltage cut-off"
		}
		fmt.Printf("lifetime\t%.1fs\t%.2fmin\t%.4fh\t(%s)\n",
			res.Lifetime, res.Lifetime/60, res.Lifetime/3600, reason)
		return nil
	}
	life, err := p.Lifetime(profile)
	if err != nil {
		return err
	}
	fmt.Printf("lifetime\t%.1fs\t%.2fmin\t%.4fh\n", life, life/60, life/3600)
	delivered, err := p.DeliveredCharge(profile)
	if err != nil {
		return err
	}
	fmt.Printf("delivered\t%.1fAs\t%.1fmAh\t(%.1f%% of capacity)\n",
		delivered, units.Coulombs(delivered).MilliampHours(), 100*delivered/p.Capacity)
	return nil
}

func cmdCDF(args []string) (retErr error) {
	fs := flag.NewFlagSet("cdf", flag.ExitOnError)
	bf := addBatteryFlags(fs)
	wf := addWorkloadFlags(fs)
	of := addObsFlags(fs)
	delta := fs.String("delta", "5mAh", "discretisation step (charge units)")
	until := fs.String("until", "30h", "evaluation horizon")
	points := fs.Int("points", 30, "number of evaluation points")
	plot := fs.Bool("plot", false, "render an ASCII chart instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	run, err := of.setup()
	if err != nil {
		return err
	}
	defer func() {
		if err := run.finish(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	reg := run.reg
	p, err := bf.params()
	if err != nil {
		return err
	}
	model, err := wf.kibamrm(p)
	if err != nil {
		return err
	}
	d, err := units.ParseCharge(*delta)
	if err != nil {
		return err
	}
	times, err := timeGrid(*until, *points)
	if err != nil {
		return err
	}
	e, err := core.Build(model, d.AmpereSeconds(), core.Options{Obs: reg})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "expanded CTMC: %d states, %d transitions\n", e.NumStates(), e.NNZ())
	res, err := e.LifetimeCDFOpts(times, core.SolveOptions{Obs: reg})
	if err != nil {
		return err
	}
	if *plot {
		hours := make([]float64, len(res.Times))
		for i, t := range res.Times {
			hours[i] = t / 3600
		}
		table := &report.Table{
			XName:  "t (hours)",
			X:      hours,
			Names:  []string{"Pr[battery empty]"},
			Series: [][]float64{res.EmptyProb},
		}
		chart, err := table.Chart(report.ChartOptions{YMin: 0, YMax: 1})
		if err != nil {
			return err
		}
		fmt.Print(chart)
	} else {
		fmt.Println("t_s\tt_h\tPr_empty")
		for i, t := range res.Times {
			fmt.Printf("%.1f\t%.3f\t%.6f\n", t, t/3600, res.EmptyProb[i])
		}
	}
	fmt.Fprintf(os.Stderr, "%d uniformisation iterations (rate %.4g)\n", res.Iterations, res.Rate)
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	bf := addBatteryFlags(fs)
	wf := addWorkloadFlags(fs)
	runs := fs.Int("runs", 1000, "number of simulation runs")
	seed := fs.Int64("seed", 1, "random seed")
	until := fs.String("until", "30h", "evaluation horizon")
	points := fs.Int("points", 30, "number of evaluation points")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := bf.params()
	if err != nil {
		return err
	}
	model, err := wf.kibamrm(p)
	if err != nil {
		return err
	}
	times, err := timeGrid(*until, *points)
	if err != nil {
		return err
	}
	ecdf, err := sim.Lifetimes(model, *seed, sim.Options{Runs: *runs})
	if err != nil {
		return err
	}
	mean, err := ecdf.Mean()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d runs: mean lifetime %.1f s (%.2f h), %d censored\n",
		ecdf.N(), mean, mean/3600, ecdf.Censored())
	fmt.Println("t_s\tt_h\tPr_empty")
	for _, t := range times {
		fmt.Printf("%.1f\t%.3f\t%.6f\n", t, t/3600, ecdf.At(t))
	}
	return nil
}

func cmdCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	capacity := fs.String("capacity", "2000mAh", "battery capacity")
	c := fs.Float64("c", 0.625, "KiBaM available-charge fraction")
	current := fs.String("current", "0.96A", "constant calibration load")
	target := fs.String("target", "90min", "measured lifetime under the calibration load")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cap_, err := units.ParseCharge(*capacity)
	if err != nil {
		return err
	}
	cur, err := units.ParseCurrent(*current)
	if err != nil {
		return err
	}
	tgt, err := units.ParseDuration(*target)
	if err != nil {
		return err
	}
	k, err := kibam.CalibrateK(cap_.AmpereSeconds(), *c, cur.Amperes(), tgt.Seconds())
	if err != nil {
		return err
	}
	fmt.Printf("k\t%.6e\t/s\n", k)
	check, err := kibam.Params{Capacity: cap_.AmpereSeconds(), C: *c, K: k}.
		Lifetime(kibam.ConstantLoad(cur.Amperes()))
	if err != nil {
		return err
	}
	fmt.Printf("lifetime_check\t%.1fs\t(target %.1fs)\n", check, tgt.Seconds())
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	bf := addBatteryFlags(fs)
	current := fs.String("current", "0.96A", "on-phase load current")
	freq := fs.Float64("freq", 0.001, "square-wave frequency in Hz")
	interval := fs.String("interval", "100s", "sampling interval")
	until := fs.String("until", "4h", "trace horizon")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := bf.params()
	if err != nil {
		return err
	}
	cur, err := units.ParseCurrent(*current)
	if err != nil {
		return err
	}
	iv, err := units.ParseDuration(*interval)
	if err != nil {
		return err
	}
	horizon, err := units.ParseDuration(*until)
	if err != nil {
		return err
	}
	points, err := p.Trace(kibam.SquareWave{On: cur.Amperes(), Frequency: *freq},
		iv.Seconds(), horizon.Seconds())
	if err != nil {
		return err
	}
	fmt.Println("t_s\ty1_As\ty2_As")
	for _, pt := range points {
		fmt.Printf("%.1f\t%.2f\t%.2f\n", pt.T, pt.Y1, pt.Y2)
	}
	return nil
}
