package main

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"batlife"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"bad argument", batlife.ErrBadArgument, exitUsage},
		{"wrapped bad argument", fmt.Errorf("cdf: %w", fmt.Errorf("%w: c 0", batlife.ErrBadArgument)), exitUsage},
		{"iteration limit", batlife.ErrIterationLimit, exitLimit},
		{"wrapped iteration limit", fmt.Errorf("sweep: %w", batlife.ErrIterationLimit), exitLimit},
		{"internal", errors.New("disk on fire"), exitInternal},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, exitUsage},
		{"unknown subcommand", []string{"bogus"}, exitUsage},
		{"help", []string{"help"}, exitOK},
		{"lifetime ok", []string{"lifetime", "-current", "0.96A"}, exitOK},
		{"lifetime bad unit", []string{"lifetime", "-current", "0.96V"}, exitInternal},
		{"lifetime bad params", []string{"lifetime", "-current", "0.96A", "-c", "0"}, exitInternal},
	}
	// Subcommands print to stdout; silence it for the test.
	oldStdout := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = oldStdout }()
	for _, tc := range cases {
		if got := run(tc.args, devnull); got != tc.want {
			t.Errorf("run(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestRunBadArgumentExitCode drives a facade-backed subcommand with an
// argument the library rejects via ErrBadArgument and checks the
// distinct usage exit code survives the dispatch path.
func TestRunBadArgumentExitCode(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	oldStdout := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = oldStdout }()
	// sweep goes through batlife.Solver, which rejects a non-positive
	// discretisation step with ErrBadArgument; with a single scenario
	// the all-failed path must carry the sentinel out.
	got := run([]string{"sweep", "-workload", "simple", "-capacity", "800mAh",
		"-deltas", "0mAh", "-until", "30h", "-points", "4"}, devnull)
	if got != exitUsage {
		t.Errorf("run(sweep -deltas 0mAh) = %d, want %d", got, exitUsage)
	}
}
