package main

import (
	"flag"
	"fmt"
	"os"

	"batlife"
	"batlife/internal/obs"
)

// obsFlags registers the shared observability flags: -metrics-addr
// serves live metrics (expvar-style JSON at /metrics and /debug/vars)
// plus net/http/pprof while the command runs, and -trace-out writes the
// solve spans as a JSON array on exit. Either flag enables telemetry;
// with neither, recording is disabled entirely.
type obsFlags struct {
	metricsAddr *string
	traceOut    *string
}

func addObsFlags(fs *flag.FlagSet) obsFlags {
	return obsFlags{
		metricsAddr: fs.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address while running (e.g. :8080, :0 for an ephemeral port)"),
		traceOut:    fs.String("trace-out", "", "write solve spans as JSON to this file on exit"),
	}
}

// obsRun is the live telemetry of one command invocation: the registry
// to thread through the solver (nil when observability is off), the
// metrics server if one is listening, and the trace destination.
type obsRun struct {
	reg      *batlife.Telemetry
	srv      *obs.Server
	traceOut string
}

// setup builds the telemetry state implied by the flags and starts the
// metrics server when requested. The returned run's registry is nil when
// neither flag is set; call finish once when the command is done.
func (of obsFlags) setup() (*obsRun, error) {
	run := &obsRun{traceOut: *of.traceOut}
	if *of.metricsAddr == "" && *of.traceOut == "" {
		return run, nil
	}
	run.reg = batlife.NewTelemetry()
	if *of.metricsAddr != "" {
		srv, err := obs.Serve(*of.metricsAddr, run.reg)
		if err != nil {
			return nil, fmt.Errorf("metrics server: %w", err)
		}
		run.srv = srv
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics (pprof at /debug/pprof/)\n", srv.Addr())
	}
	return run, nil
}

// finish stops the metrics server and writes the trace file.
func (r *obsRun) finish() error {
	if r.srv != nil {
		if err := r.srv.Close(); err != nil {
			return err
		}
	}
	if r.traceOut != "" {
		f, err := os.Create(r.traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := r.reg.Tracer().WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %d spans to %s\n", len(r.reg.Tracer().Spans()), r.traceOut)
	}
	return nil
}
