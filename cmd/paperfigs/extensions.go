package main

import (
	"fmt"
	"io"

	"batlife/internal/core"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/peukert"
	"batlife/internal/rao"
	"batlife/internal/sim"
	"batlife/internal/units"
	"batlife/internal/workload"
)

// newModifiedPaperBattery calibrates the modified KiBaM to the paper's
// 90-minute continuous-load target.
func newModifiedPaperBattery() (rao.Params, error) {
	k, err := rao.CalibrateK(7200, 0.625, 1, 0.96, 90*60)
	if err != nil {
		return rao.Params{}, err
	}
	return rao.Params{Capacity: 7200, C: 0.625, K: k}, nil
}

// fitPeukert fits Peukert's law to two (current, lifetime) points.
func fitPeukert(i1, l1, i2, l2 float64) (peukert.Law, error) {
	return peukert.Fit(i1, l1, i2, l2)
}

// runErlangK produces the curves the paper's Section 6.1 describes but
// does not show: the on/off model with Erlang-K phase times for K > 1.
// The simulated lifetime distribution sharpens with K while the
// Markovian approximation barely moves — the approximation cannot
// resolve the difference.
func runErlangK(w io.Writer, cfg config) error {
	battery := kibam.Params{Capacity: 7200, C: 1, K: 0}
	times := timesRange(13000, 17000, 100)
	var names []string
	var curves [][]float64
	for _, k := range []int{1, 2, 4, 8} {
		wl, err := workload.OnOff(1, k, units.Amperes(0.96))
		if err != nil {
			return err
		}
		model := mrm.KiBaMRM{
			Workload: wl.Chain, Currents: wl.Currents, Initial: wl.Initial, Battery: battery,
		}
		approx, err := approxCurve(model, 25, times)
		if err != nil {
			return err
		}
		names = append(names, fmt.Sprintf("K=%d,delta=25", k))
		curves = append(curves, approx)
		simCurve, err := sim.CurveAt(model, 1, sim.Options{Runs: cfg.runs}, times)
		if err != nil {
			return err
		}
		names = append(names, fmt.Sprintf("K=%d,simulation", k))
		curves = append(curves, simCurve)
	}
	fmt.Fprintln(w, "# extension: Erlang-K on/off curves (paper §6.1: \"we do not show curves here\")")
	fmt.Fprintln(w, "# expected shape: simulation sharpens with K; the approximation barely changes")
	return writeCurves(w, "t_s", times, 1, names, curves)
}

// runStranded quantifies the Figure 10 discussion — "it is in general
// not possible to make use of the total capacity" — as a distribution:
// how much bound charge is left when the battery dies, per workload and
// flow constant.
func runStranded(w io.Writer, cfg config) error {
	fmt.Fprintln(w, "# extension: stranded bound charge at depletion (quantifies the Fig. 10 discussion)")
	fmt.Fprintln(w, "workload\tk_per_s\tmean_lifetime_s\tstranded_mean_As\tstranded_frac_of_bound\tsim_stranded_mean_As")

	type scenario struct {
		label   string
		model   mrm.KiBaMRM
		horizon float64
		delta   float64
	}
	onoff := func(k float64) mrm.KiBaMRM {
		wl, err := workload.OnOff(1, 1, units.Amperes(0.96))
		if err != nil {
			panic("static on/off workload cannot fail: " + err.Error())
		}
		return mrm.KiBaMRM{
			Workload: wl.Chain, Currents: wl.Currents, Initial: wl.Initial,
			Battery: kibam.Params{Capacity: 7200, C: 0.625, K: k},
		}
	}
	simpleModel, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		return err
	}
	simpleRM := wirelessKiBaMRM(simpleModel, kibam.Params{
		Capacity: units.MilliampHours(800).AmpereSeconds(), C: 0.625, K: 4.5e-5,
	})
	scenarios := []scenario{
		{"onoff-1Hz", onoff(4.5e-5), 40000, 50},
		{"onoff-1Hz", onoff(9e-5), 40000, 50},
		{"onoff-1Hz", onoff(2.25e-5), 40000, 50},
		{"simple-wireless", simpleRM, 40 * 3600, units.MilliampHours(5).AmpereSeconds()},
	}
	for _, s := range scenarios {
		e, err := core.Build(s.model, s.delta, core.Options{})
		if err != nil {
			return err
		}
		mean, err := e.MeanLifetime()
		if err != nil {
			return err
		}
		wc, err := e.WastedChargeDistribution(s.horizon)
		if err != nil {
			return err
		}
		res, err := sim.Run(s.model, 1, sim.Options{Runs: cfg.runs / 2})
		if err != nil {
			return err
		}
		simMean, err := res.WastedCharge.Mean()
		if err != nil {
			return err
		}
		bound := (1 - s.model.Battery.C) * s.model.Battery.Capacity
		fmt.Fprintf(w, "%s\t%.3g\t%.0f\t%.0f\t%.3f\t%.0f\n",
			s.label, s.model.Battery.K, mean, wc.Mean(), wc.Mean()/bound, simMean)
	}
	return nil
}

// runVoltage evaluates cut-off–voltage lifetimes (Section 2: "the
// voltage drops during discharge") across load frequencies: the
// charge-based lifetime is an upper bound; a realistic cut-off trips
// earlier under continuous load than under pulsed load, because pulses
// let both the ohmic drop and the charge recover.
func runVoltage(w io.Writer, _ config) error {
	vp := kibam.TypicalLiIon()
	fmt.Fprintln(w, "# extension: cut-off-voltage lifetimes (Manwell–McGowan voltage layer)")
	fmt.Fprintf(w, "# cell: E0=%.2fV A=%.2f CV=%.2f D=%.2f R0=%.2fΩ\n", vp.E0, vp.A, vp.CV, vp.D, vp.R0)
	fmt.Fprintln(w, "load\tcutoff_V\tlifetime_min\tlimited_by")
	type load struct {
		label   string
		profile kibam.Profile
	}
	loads := []load{
		{"constant-0.96A", kibam.ConstantLoad(0.96)},
		{"square-1Hz", kibam.SquareWave{On: 0.96, Frequency: 1}},
		{"square-0.01Hz", kibam.SquareWave{On: 0.96, Frequency: 0.01}},
	}
	for _, cutoff := range []float64{3.0, 3.4, 3.6} {
		for _, ld := range loads {
			res, err := paperBattery.LifetimeToCutoff(vp, ld.profile, cutoff)
			if err != nil {
				return err
			}
			reason := "charge"
			if res.VoltageLimited {
				reason = "voltage"
			}
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%s\n", ld.label, cutoff, res.Lifetime/60, reason)
		}
	}
	return nil
}

// runBaselines compares the battery models of Sections 2–3 head to
// head: ideal linear battery, Peukert's law (fitted to two KiBaM
// points), plain KiBaM and modified KiBaM, on constant and square-wave
// loads. Peukert predicts the same lifetime for every profile with the
// same average — the failure the paper uses to motivate the KiBaM.
func runBaselines(w io.Writer, _ config) error {
	fmt.Fprintln(w, "# extension: baseline model comparison (Sections 2-3; lifetimes in minutes)")
	fmt.Fprintln(w, "load\tideal\tpeukert\tkibam\tmodified_kibam")

	battery := paperBattery
	modified, err := newModifiedPaperBattery()
	if err != nil {
		return err
	}
	ideal := func(avg float64) float64 { return battery.Capacity / avg / 60 }

	// Fit Peukert's law to the KiBaM's own constant-load behaviour at
	// two currents (the paper fits to measurements; we have none).
	l1, err := battery.Lifetime(kibam.ConstantLoad(0.5))
	if err != nil {
		return err
	}
	l2, err := battery.Lifetime(kibam.ConstantLoad(2.0))
	if err != nil {
		return err
	}
	law, err := fitPeukert(0.5, l1, 2.0, l2)
	if err != nil {
		return err
	}

	type load struct {
		label   string
		profile kibam.Profile
		avg     float64
	}
	loads := []load{
		{"constant-0.96A", kibam.ConstantLoad(0.96), 0.96},
		{"constant-0.48A", kibam.ConstantLoad(0.48), 0.48},
		{"square-1Hz-0.96A", kibam.SquareWave{On: 0.96, Frequency: 1}, 0.48},
		{"square-0.01Hz-0.96A", kibam.SquareWave{On: 0.96, Frequency: 0.01}, 0.48},
	}
	for _, ld := range loads {
		pk, err := law.Lifetime(ld.avg)
		if err != nil {
			return err
		}
		kb, err := battery.Lifetime(ld.profile)
		if err != nil {
			return err
		}
		mod, err := modified.Lifetime(ld.profile)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\n",
			ld.label, ideal(ld.avg), pk/60, kb/60, mod/60)
	}
	return nil
}
