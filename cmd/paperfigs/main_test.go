package main

import (
	"math"
	"strings"
	"testing"
)

func TestTimesRange(t *testing.T) {
	got := timesRange(0, 10, 2.5)
	want := []float64{0, 2.5, 5, 7.5, 10}
	if len(got) != len(want) {
		t.Fatalf("range = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTimesRangeIncludesEndDespiteRounding(t *testing.T) {
	got := timesRange(0, 1, 0.1)
	if len(got) != 11 {
		t.Errorf("got %d points, want 11 (end point must survive FP rounding)", len(got))
	}
}

func TestWriteCurves(t *testing.T) {
	var sb strings.Builder
	axis := []float64{3600, 7200}
	curves := [][]float64{{0.25, 0.5}, {0.125, 1}}
	if err := writeCurves(&sb, "t_h", axis, 1.0/3600, []string{"a", "b"}, curves); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("output:\n%s", sb.String())
	}
	if lines[0] != "t_h\ta\tb" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1\t0.250000\t0.125000") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "2\t0.500000\t1.000000") {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestJoinComma(t *testing.T) {
	if got := joinComma([]string{"a", "b", "c"}); got != "a, b, c" {
		t.Errorf("joinComma = %q", got)
	}
	if got := joinComma(nil); got != "" {
		t.Errorf("joinComma(nil) = %q", got)
	}
}

// TestSmallExperimentsRun executes the cheap experiments end to end with
// a tiny run budget, catching wiring regressions without the full cost.
func TestSmallExperimentsRun(t *testing.T) {
	cfg := config{runs: 10}
	var sb strings.Builder
	if err := runFig2(&sb, cfg); err != nil {
		t.Errorf("fig2: %v", err)
	}
	if err := runCalibration(&sb, cfg); err != nil {
		t.Errorf("calibration: %v", err)
	}
	if err := runBaselines(&sb, cfg); err != nil {
		t.Errorf("baselines: %v", err)
	}
	if !strings.Contains(sb.String(), "lambda_burst_per_hour\t182.00") {
		t.Error("calibration output missing the 182/h result")
	}
}
