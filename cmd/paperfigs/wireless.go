package main

import (
	"fmt"
	"io"

	"batlife/internal/core"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/performability"
	"batlife/internal/sim"
	"batlife/internal/units"
	"batlife/internal/workload"
)

// runFig10 regenerates Figure 10: the simple wireless model under three
// battery settings — (C=500 mAh, c=1), (C=800 mAh, c=0.625) and the
// exact (C=800 mAh, c=1) curve — each approximated at Δ = 25 mAh and
// Δ = 2 mAh and simulated.
func runFig10(w io.Writer, cfg config) error {
	simple, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		return err
	}
	times := timesRange(0, 30*3600, 1800) // 0..30 h, half-hour grid
	mah := func(x float64) float64 { return units.MilliampHours(x).AmpereSeconds() }

	var names []string
	var curves [][]float64
	add := func(name string, c []float64) {
		names = append(names, name)
		curves = append(curves, c)
	}

	type setting struct {
		label   string
		battery kibam.Params
	}
	settings := []setting{
		{"C=500,c=1", kibam.Params{Capacity: mah(500), C: 1, K: 0}},
		{"C=800,c=0.625", kibam.Params{Capacity: mah(800), C: 0.625, K: 4.5e-5}},
	}
	for _, s := range settings {
		model := wirelessKiBaMRM(simple, s.battery)
		for _, deltaMAh := range []float64{25, 2} {
			c, err := approxCurve(model, mah(deltaMAh), times)
			if err != nil {
				return err
			}
			add(fmt.Sprintf("%s,delta=%gmAh", s.label, deltaMAh), c)
		}
		simCurve, err := sim.CurveAt(model, 1, sim.Options{Runs: cfg.runs}, times)
		if err != nil {
			return err
		}
		add(s.label+",simulation", simCurve)
	}

	// Exact curve for C = 800 mAh, c = 1 via the performability
	// transform (the paper uses Sericola's algorithm [25]; see
	// DESIGN.md substitution 3).
	exactModel := mrm.ConstantReward{
		Chain:   simple.Chain,
		Rates:   simple.Currents,
		Initial: simple.Initial,
	}
	exact, err := performability.EnergyDepletionCDF(exactModel, mah(800), times)
	if err != nil {
		return err
	}
	add("C=800,c=1,exact", exact)

	fmt.Fprintln(w, "# paper: Figure 10 (simple model; time axis in hours)")
	return writeCurves(w, "t_h", times, 1.0/3600, names, curves)
}

// runFig11 regenerates Figure 11: the simple model against the burst
// model, C = 800 mAh, c = 0.625, at the paper's Δ = 5 mAh.
func runFig11(w io.Writer, _ config) error {
	battery := kibam.Params{
		Capacity: units.MilliampHours(800).AmpereSeconds(),
		C:        0.625,
		K:        4.5e-5,
	}
	delta := units.MilliampHours(5).AmpereSeconds()
	times := timesRange(0, 30*3600, 1800)

	simple, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		return err
	}
	burst, err := workload.Burst(workload.BurstConfig{})
	if err != nil {
		return err
	}
	simpleCurve, err := approxCurve(wirelessKiBaMRM(simple, battery), delta, times)
	if err != nil {
		return err
	}
	burstCurve, err := approxCurve(wirelessKiBaMRM(burst, battery), delta, times)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: Figure 11 (C=800mAh, c=0.625, delta=5mAh; time axis in hours)")
	fmt.Fprintln(w, "# paper reference points: Pr[empty at 20h] ≈ 0.95 (simple), ≈ 0.89 (burst)")
	return writeCurves(w, "t_h", times, 1.0/3600, []string{"simple", "burst"},
		[][]float64{simpleCurve, burstCurve})
}

// runComplexity reproduces the size and iteration-count observations of
// Sections 5.3 and 6.1: states, nonzeros, uniformisation rate and
// iterations for the on/off model across step sizes.
func runComplexity(w io.Writer, cfg config) error {
	fmt.Fprintln(w, "# paper: Section 6.1 size/iteration observations")
	fmt.Fprintln(w, "# paper reference: delta=5, c=1 has 2882 states; t=17000 needs >36000 iterations;")
	fmt.Fprintln(w, "# delta=5, c=0.625 has ~3.2e6 nonzeros; t=20000 needs >4.6e4 iterations")
	fmt.Fprintln(w, "config\tdelta\tstates\tnonzeros\tunif_rate\titers_t17000")

	type case_ struct {
		label   string
		battery kibam.Params
		deltas  []float64
	}
	cases := []case_{
		{"c=1", kibam.Params{Capacity: 7200, C: 1, K: 0}, []float64{100, 50, 25, 10, 5}},
		{"c=0.625", paperBattery, []float64{100, 50, 25}},
	}
	if cfg.full {
		cases[1].deltas = append(cases[1].deltas, 10, 5)
	}
	for _, cs := range cases {
		model, err := onOffKiBaMRM(cs.battery)
		if err != nil {
			return err
		}
		for _, d := range cs.deltas {
			e, err := core.Build(model, d, core.Options{})
			if err != nil {
				return err
			}
			res, err := e.LifetimeCDF([]float64{17000})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%g\t%d\t%d\t%.4f\t%d\n",
				cs.label, d, res.States, res.NNZ, res.Rate, res.Iterations)
		}
	}
	return nil
}

// runCalibration reproduces the model-fitting steps: the burst-rate
// calibration of Section 4.3 (λ_burst = 182/h) and the flow-constant
// calibration of Section 3 (k fitted to the 90-minute continuous-load
// lifetime).
func runCalibration(w io.Writer, _ config) error {
	lb, err := workload.CalibrateBurst(workload.BurstConfig{}, 0.25)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: Section 4.3 (λ_burst) and Section 3 (k)")
	fmt.Fprintf(w, "lambda_burst_per_hour\t%.2f\t# paper: 182\n", lb)

	burst, err := workload.Burst(workload.BurstConfig{LambdaBurst: lb})
	if err != nil {
		return err
	}
	pSend, err := burst.SendProbability()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "burst_send_probability\t%.4f\t# target: 0.25 (simple model)\n", pSend)

	piB, err := burst.Chain.SteadyState()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "burst_sleep_probability\t%.4f\t# simple model: 0.25\n",
		piB[burst.Chain.Index("sleep")])

	k, err := kibam.CalibrateK(7200, 0.625, 0.96, 90*60)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "kibam_k_per_second\t%.3e\t# paper uses 4.5e-5 (fitted to 90 min at 0.96 A)\n", k)
	life, err := kibam.Params{Capacity: 7200, C: 0.625, K: k}.Lifetime(kibam.ConstantLoad(0.96))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lifetime_with_fitted_k_min\t%.1f\t# target: 90\n", life/60)
	return nil
}
