package main

import (
	"fmt"
	"io"
	"time"

	"batlife/internal/core"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/rao"
	"batlife/internal/sim"
	"batlife/internal/units"
	"batlife/internal/workload"
)

// paperBattery is the 2000 mAh cell of Table 1 and Figures 2, 8, 9.
var paperBattery = kibam.Params{Capacity: 7200, C: 0.625, K: 4.5e-5}

// onOffKiBaMRM builds the Figure 7/8/9 model: Erlang-K on/off workload
// at 1 Hz drawing 0.96 A.
func onOffKiBaMRM(battery kibam.Params) (mrm.KiBaMRM, error) {
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		return mrm.KiBaMRM{}, err
	}
	return mrm.KiBaMRM{
		Workload: w.Chain,
		Currents: w.Currents,
		Initial:  w.Initial,
		Battery:  battery,
	}, nil
}

// wirelessKiBaMRM wraps a wireless workload model with a battery.
func wirelessKiBaMRM(m *workload.Model, battery kibam.Params) mrm.KiBaMRM {
	return mrm.KiBaMRM{
		Workload: m.Chain,
		Currents: m.Currents,
		Initial:  m.Initial,
		Battery:  battery,
	}
}

// approxCurve solves the Markovian approximation at one step size.
func approxCurve(model mrm.KiBaMRM, delta float64, times []float64) ([]float64, error) {
	e, err := core.Build(model, delta, core.Options{})
	if err != nil {
		return nil, err
	}
	res, err := e.LifetimeCDF(times)
	if err != nil {
		return nil, err
	}
	return res.EmptyProb, nil
}

// runFig2 regenerates Figure 2: the evolution of the available- and
// bound-charge wells under a square wave with f = 0.001 Hz, I = 0.96 A.
func runFig2(w io.Writer, _ config) error {
	points, err := paperBattery.Trace(kibam.SquareWave{On: 0.96, Frequency: 0.001}, 100, 13000)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# paper: Figure 2 (y1/y2 in As vs seconds)")
	fmt.Fprintln(w, "t_s\ty1_As\ty2_As")
	for _, p := range points {
		fmt.Fprintf(w, "%.1f\t%.2f\t%.2f\n", p.T, p.Y1, p.Y2)
	}
	return nil
}

// runTable1 regenerates Table 1: lifetimes in minutes under continuous
// and square-wave loads for the plain and modified KiBaM. The
// experimental column quotes the measurements of Rao et al. [9] (no
// hardware here; see DESIGN.md).
func runTable1(w io.Writer, cfg config) error {
	modK, err := rao.CalibrateK(7200, 0.625, 1, 0.96, 90*60)
	if err != nil {
		return err
	}
	modified := rao.Params{Capacity: 7200, C: 0.625, K: modK}
	stochastic := rao.StochasticParams{Params: modified}
	runs := cfg.runs / 20
	if runs < 5 {
		runs = 5
	}

	type row struct {
		label   string
		profile kibam.Profile
		exp     float64 // minutes, from [9]
	}
	rows := []row{
		{"continuous", kibam.ConstantLoad(0.96), 90},
		{"1Hz", kibam.SquareWave{On: 0.96, Frequency: 1}, 193},
		{"0.2Hz", kibam.SquareWave{On: 0.96, Frequency: 0.2}, 230},
	}
	fmt.Fprintln(w, "# paper: Table 1 (lifetimes in minutes; experimental column quoted from Rao et al. [9])")
	fmt.Fprintf(w, "# paper values: KiBaM 91/203/203, modified stochastic 90/193/226, modified numerical 89/193/193\n")
	fmt.Fprintln(w, "frequency\texperimental_min\tkibam_min\tmodified_stochastic_min\tmodified_numerical_min")
	for _, r := range rows {
		plain, err := paperBattery.Lifetime(r.profile)
		if err != nil {
			return err
		}
		numeric, err := modified.Lifetime(r.profile)
		if err != nil {
			return err
		}
		stochMean, _, err := stochastic.MeanLifetime(1, runs, r.profile)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.label, r.exp, plain/60, stochMean/60, numeric/60)
	}
	return nil
}

// runFig7 regenerates Figure 7: the on/off lifetime distribution with
// the degenerate KiBaM (c = 1, k = 0) for several step sizes, against
// simulation.
func runFig7(w io.Writer, cfg config) error {
	model, err := onOffKiBaMRM(kibam.Params{Capacity: 7200, C: 1, K: 0})
	if err != nil {
		return err
	}
	times := timesRange(6000, 20000, 250)
	deltas := []float64{100, 50, 25, 5}
	names := make([]string, 0, len(deltas)+1)
	curves := make([][]float64, 0, len(deltas)+1)
	for _, d := range deltas {
		c, err := approxCurve(model, d, times)
		if err != nil {
			return err
		}
		names = append(names, fmt.Sprintf("delta=%g", d))
		curves = append(curves, c)
	}
	simCurve, err := sim.CurveAt(model, 1, sim.Options{Runs: cfg.runs}, times)
	if err != nil {
		return err
	}
	names = append(names, "simulation")
	curves = append(curves, simCurve)
	fmt.Fprintln(w, "# paper: Figure 7 (f=1Hz, K=1, C=7200As, c=1, k=0)")
	return writeCurves(w, "t_s", times, 1, names, curves)
}

// runFig8 regenerates Figure 8: the on/off lifetime distribution with
// the full KiBaM (c = 0.625, k = 4.5e-5). The paper's Δ = 10 and Δ = 5
// grids have 10^5–10^6 states and are enabled by -full.
func runFig8(w io.Writer, cfg config) error {
	model, err := onOffKiBaMRM(paperBattery)
	if err != nil {
		return err
	}
	times := timesRange(6000, 20000, 250)
	deltas := []float64{100, 50, 25}
	if cfg.full {
		deltas = append(deltas, 10, 5)
	}
	names := make([]string, 0, len(deltas)+1)
	curves := make([][]float64, 0, len(deltas)+1)
	for _, d := range deltas {
		start := time.Now()
		c, err := approxCurve(model, d, times)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "# delta=%g solved in %v\n", d, time.Since(start).Round(time.Millisecond))
		names = append(names, fmt.Sprintf("delta=%g", d))
		curves = append(curves, c)
	}
	simCurve, err := sim.CurveAt(model, 1, sim.Options{Runs: cfg.runs}, times)
	if err != nil {
		return err
	}
	names = append(names, "simulation")
	curves = append(curves, simCurve)
	fmt.Fprintln(w, "# paper: Figure 8 (f=1Hz, K=1, C=7200As, c=0.625, k=4.5e-5)")
	return writeCurves(w, "t_s", times, 1, names, curves)
}

// runFig9 regenerates Figure 9: lifetime distributions for three
// initial-capacity configurations. The paper uses Δ = 5 for all three;
// the two-well case falls back to Δ = 25 unless -full is given.
func runFig9(w io.Writer, cfg config) error {
	times := timesRange(6000, 20000, 250)
	type scenario struct {
		label   string
		battery kibam.Params
		delta   float64
	}
	twoWellDelta := 25.0
	if cfg.full {
		twoWellDelta = 5
	}
	scenarios := []scenario{
		{"C=4500,c=1", kibam.Params{Capacity: 4500, C: 1, K: 0}, 5},
		{"C=7200,c=0.625", paperBattery, twoWellDelta},
		{"C=7200,c=1", kibam.Params{Capacity: 7200, C: 1, K: 0}, 5},
	}
	var names []string
	var curves [][]float64
	for _, s := range scenarios {
		model, err := onOffKiBaMRM(s.battery)
		if err != nil {
			return err
		}
		c, err := approxCurve(model, s.delta, times)
		if err != nil {
			return err
		}
		names = append(names, fmt.Sprintf("%s(delta=%g)", s.label, s.delta))
		curves = append(curves, c)
	}
	fmt.Fprintln(w, "# paper: Figure 9 (on/off model, different initial capacities)")
	return writeCurves(w, "t_s", times, 1, names, curves)
}
