// Command paperfigs regenerates every table and figure of the paper's
// evaluation as tab-separated data series.
//
// Usage:
//
//	paperfigs -exp fig2|table1|fig7|fig8|fig9|fig10|fig11|complexity|calibration|all
//	          [-full] [-runs N] [-out dir]
//
// With -out, each experiment is written to <dir>/<exp>.tsv; otherwise
// everything goes to standard output. -full selects the paper's exact
// (and expensive) step sizes for the two-well grids — Δ = 5 As grids
// have about a million states and dominate the runtime, exactly as the
// paper's Section 5.3 predicts; the default resolution completes in a
// few minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"
)

type experiment struct {
	name string
	desc string
	run  func(w io.Writer, cfg config) error
}

type config struct {
	full bool
	runs int
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func run() error {
	exps := []experiment{
		{"fig2", "charge-well evolution under a 0.001 Hz square wave", runFig2},
		{"table1", "experimental vs KiBaM vs modified-KiBaM lifetimes", runTable1},
		{"fig7", "on/off lifetime distribution, degenerate KiBaM (c=1)", runFig7},
		{"fig8", "on/off lifetime distribution, full KiBaM (c=0.625)", runFig8},
		{"fig9", "on/off lifetime distributions for three initial-capacity splits", runFig9},
		{"fig10", "simple-model lifetime distributions for three battery settings", runFig10},
		{"fig11", "simple vs burst model lifetime distribution", runFig11},
		{"complexity", "expanded-chain sizes and iteration counts (Sections 5.3, 6.1)", runComplexity},
		{"calibration", "burst-rate and flow-constant calibration (Sections 3, 4.3)", runCalibration},
		{"erlangk", "extension: Erlang-K on/off curves the paper describes but omits", runErlangK},
		{"stranded", "extension: bound charge stranded at depletion", runStranded},
		{"baselines", "extension: ideal/Peukert/KiBaM/modified-KiBaM comparison", runBaselines},
		{"voltage", "extension: cut-off-voltage lifetimes across load shapes", runVoltage},
	}
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.name
	}
	sort.Strings(names)

	var (
		expFlag  = flag.String("exp", "all", "experiment to run: all, or one of "+joinComma(names))
		fullFlag = flag.Bool("full", false, "use the paper's exact step sizes (slow for the two-well grids)")
		runsFlag = flag.Int("runs", 1000, "simulation runs per curve")
		outFlag  = flag.String("out", "", "directory for per-experiment .tsv files (default: stdout)")
	)
	flag.Parse()
	cfg := config{full: *fullFlag, runs: *runsFlag}
	if cfg.runs <= 0 {
		return fmt.Errorf("-runs must be positive, got %d", cfg.runs)
	}

	selected := exps[:0:0]
	for _, e := range exps {
		if *expFlag == "all" || *expFlag == e.name {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown experiment %q; choose all or one of %s", *expFlag, joinComma(names))
	}

	for _, e := range selected {
		w := io.Writer(os.Stdout)
		var closeFn func() error
		if *outFlag != "" {
			if err := os.MkdirAll(*outFlag, 0o755); err != nil {
				return fmt.Errorf("create output dir: %w", err)
			}
			f, err := os.Create(filepath.Join(*outFlag, e.name+".tsv"))
			if err != nil {
				return fmt.Errorf("create output file: %w", err)
			}
			w = f
			closeFn = f.Close
		}
		start := time.Now()
		fmt.Fprintf(w, "# %s: %s\n", e.name, e.desc)
		err := e.run(w, cfg)
		fmt.Fprintf(os.Stderr, "%-12s %8s  %v\n", e.name, time.Since(start).Round(time.Millisecond), errString(err))
		if closeFn != nil {
			if cerr := closeFn(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.name, err)
		}
	}
	return nil
}

func errString(err error) string {
	if err != nil {
		return err.Error()
	}
	return "ok"
}

func joinComma(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// timesRange returns {start, start+step, ..., end}.
func timesRange(start, end, step float64) []float64 {
	var out []float64
	for t := start; t <= end+1e-9; t += step {
		out = append(out, t)
	}
	return out
}

// writeCurves prints a TSV table: the first column is the time axis
// (scaled by axisScale, e.g. 1/3600 for hours), followed by one column
// per named curve.
func writeCurves(w io.Writer, axisName string, axis []float64, axisScale float64, names []string, curves [][]float64) error {
	if _, err := fmt.Fprintf(w, "%s", axisName); err != nil {
		return err
	}
	for _, n := range names {
		fmt.Fprintf(w, "\t%s", n)
	}
	fmt.Fprintln(w)
	for i, t := range axis {
		fmt.Fprintf(w, "%s", strconv.FormatFloat(t*axisScale, 'g', 8, 64))
		for _, c := range curves {
			fmt.Fprintf(w, "\t%s", strconv.FormatFloat(c[i], 'f', 6, 64))
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
