package batlife

import (
	"errors"
	"math"
	"testing"
)

func TestExpectedLifetimeMatchesSimulation(t *testing.T) {
	b := PaperBattery()
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := ExpectedLifetime(b, w, 100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SimulateLifetimes(b, w, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	simMean, err := s.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-simMean) > 0.05*simMean {
		t.Errorf("expected lifetime %v vs simulated %v", mean, simMean)
	}
}

func TestExpectedLifetimeErrors(t *testing.T) {
	if _, err := ExpectedLifetime(PaperBattery(), nil, 100); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil workload: err = %v", err)
	}
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedLifetime(PaperBattery(), w, 7); err == nil {
		t.Error("non-divisor delta accepted")
	}
}

func TestExpectedStrandedCharge(t *testing.T) {
	b := PaperBattery()
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ExpectedStrandedCharge(b, w, 100, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if sc.MeanAs <= 0 || sc.MeanAs >= 2700 {
		t.Errorf("stranded mean = %v As", sc.MeanAs)
	}
	if sc.FractionOfBound <= 0 || sc.FractionOfBound >= 1 {
		t.Errorf("stranded fraction = %v", sc.FractionOfBound)
	}
	// c = 1: nothing can be stranded.
	ideal := Battery{CapacityAs: 7200, AvailableFraction: 1}
	sc1, err := ExpectedStrandedCharge(ideal, w, 100, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if sc1.MeanAs != 0 {
		t.Errorf("ideal battery stranded = %v", sc1.MeanAs)
	}
}

func TestExpectedStrandedChargeEarlyHorizon(t *testing.T) {
	b := PaperBattery()
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	// At t = 5000 s almost no run has depleted: must refuse.
	if _, err := ExpectedStrandedCharge(b, w, 100, 5000); !errors.Is(err, ErrBadArgument) {
		t.Errorf("early horizon: err = %v", err)
	}
}

func TestPhasedLifetimeDistribution(t *testing.T) {
	b := Battery{CapacityAs: 7200, AvailableFraction: 1}
	heavy, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	light, err := OnOffWorkload(1, 1, 0.24)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{20000}
	phased, err := PhasedLifetimeDistribution(b, []WorkloadPhase{
		{Workload: light, DurationSeconds: 8000},
		{Workload: heavy, DurationSeconds: math.Inf(1)},
	}, 100, times)
	if err != nil {
		t.Fatal(err)
	}
	heavyOnly, err := LifetimeDistribution(b, heavy, 100, times)
	if err != nil {
		t.Fatal(err)
	}
	if phased.EmptyProb[0] >= heavyOnly.EmptyProb[0] {
		t.Errorf("light night did not extend life: phased %v vs heavy %v",
			phased.EmptyProb[0], heavyOnly.EmptyProb[0])
	}
}

func TestPhasedLifetimeDistributionErrors(t *testing.T) {
	b := PaperBattery()
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PhasedLifetimeDistribution(b, nil, 100, []float64{1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("no phases: err = %v", err)
	}
	if _, err := PhasedLifetimeDistribution(b, []WorkloadPhase{{Workload: nil, DurationSeconds: 1}}, 100, []float64{1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil workload: err = %v", err)
	}
	if _, err := PhasedLifetimeDistribution(b, []WorkloadPhase{{Workload: w, DurationSeconds: -1}}, 100, []float64{1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("negative duration: err = %v", err)
	}
	// Mismatched phase workloads (different state counts).
	simple, err := SimpleWireless()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PhasedLifetimeDistribution(b, []WorkloadPhase{
		{Workload: w, DurationSeconds: 10},
		{Workload: simple, DurationSeconds: math.Inf(1)},
	}, 100, []float64{5}); err == nil {
		t.Error("mismatched phases accepted")
	}
}
