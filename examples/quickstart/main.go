// Quickstart: model a phone battery, ask three questions — how long the
// battery lasts under a constant load, how much an intermittent load
// extends that, and what the full lifetime distribution looks like when
// the device follows a stochastic workload.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"batlife"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The 2000 mAh cell used throughout the DSN 2007 paper:
	// 62.5% of the charge is immediately available, the rest is bound
	// and flows over with rate constant k = 4.5e-5/s.
	battery := batlife.PaperBattery()

	// 1. Constant 0.96 A load.
	constant, err := battery.Lifetime(0.96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constant 0.96 A load:      %6.1f min\n", constant/60)

	// 2. Same current, but pulsed at 1 Hz with a 50%% duty cycle. The
	// battery recovers during the off phases, so the lifetime is far
	// more than doubled.
	pulsed, err := battery.LifetimeSquareWave(0.96, 1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pulsed 0.96 A load (1 Hz): %6.1f min  (%.0f%% more on-time)\n",
		pulsed/60, 100*(pulsed/2-constant)/constant)

	// 3. A stochastic workload: the paper's simple wireless device
	// (idle 8 mA / send 200 mA / sleep 0 mA), on an 800 mAh battery.
	phone := batlife.Battery{
		CapacityAs:        batlife.MilliampHours(800),
		AvailableFraction: 0.625,
		FlowRate:          4.5e-5,
	}
	device, err := batlife.SimpleWireless()
	if err != nil {
		log.Fatal(err)
	}
	var times []float64
	for h := 5.0; h <= 25; h += 2.5 {
		times = append(times, h*3600)
	}
	result, err := batlife.LifetimeDistribution(phone, device, batlife.MilliampHours(5), times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstochastic wireless workload, Pr[battery empty at t]:")
	for i, t := range result.Times {
		fmt.Printf("  %5.1f h: %6.2f%%\n", t/3600, 100*result.EmptyProb[i])
	}
	fmt.Printf("(expanded Markov chain: %d states, %d transitions, %d iterations)\n",
		result.States, result.Transitions, result.Iterations)
}
