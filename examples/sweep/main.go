// Sweep: evaluate a whole grid of scenarios in one call with the
// reusable Solver — here the paper's Δ-refinement study (Figure 8):
// the same battery and workload solved at three discretisation steps,
// in parallel, with cached model reuse across queries.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"batlife"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	battery := batlife.PaperBattery()
	w, err := batlife.OnOffWorkload(1, 1, 0.96)
	if err != nil {
		log.Fatal(err)
	}
	times := []float64{10000, 12500, 15000, 17500, 20000}

	// One scenario per Δ. Scenarios can also vary the battery, the
	// workload or the time grid — anything that defines a query.
	var scenarios []batlife.Scenario
	for _, delta := range []float64{100, 50, 25} {
		scenarios = append(scenarios, batlife.Scenario{
			Name:     fmt.Sprintf("delta=%gAs", delta),
			Battery:  battery,
			Workload: w,
			DeltaAs:  delta,
			Times:    times,
		})
	}

	solver := batlife.NewSolver(batlife.SolverOptions{})
	results, err := solver.Sweep(scenarios, batlife.SweepOptions{
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "solved %d/%d\n", done, total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Results come back in input order; per-scenario failures are
	// reported on the result, not as a sweep error.
	tw := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprint(tw, "t (s)")
	for _, r := range results {
		fmt.Fprintf(tw, "\t%s", r.Name)
	}
	fmt.Fprintln(tw)
	for i, t := range times {
		fmt.Fprintf(tw, "%.0f", t)
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprint(tw, "\terror")
				continue
			}
			fmt.Fprintf(tw, "\t%.4f", r.Distribution.EmptyProb[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	// The solver's caches persist across calls: re-asking any of the
	// swept questions is now effectively free, and related queries
	// (the mean lifetime on the same grid) reuse the expanded CTMC.
	mean, err := solver.ExpectedLifetime(battery, w, batlife.AnalysisOptions{Delta: 25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpected lifetime (delta=25As): %.0f s (%.1f h), %d model(s) cached\n",
		mean, mean/3600, solver.CachedModels())
}
