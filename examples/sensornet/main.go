// Sensornet: dimension the reporting rate of a sensor node.
//
//	go run ./examples/sensornet
//
// A battery-powered environmental sensor sleeps, wakes for measurement-
// and-report sessions, and occasionally keeps its radio listening for
// firmware updates. The designer controls the session rate; more
// frequent sessions give fresher data but shorter battery life. This
// example builds a custom workload with the public API and sweeps the
// session rate, reporting the 10%-quantile lifetime (the "warranty"
// number: 90% of deployed nodes live at least this long) from
// simulation, cross-checked at one point against the Markovian
// approximation.
package main

import (
	"fmt"
	"log"

	"batlife"
)

// node builds the sensor workload: deep sleep (modelled as 0 A), a
// measurement-and-report session (12 mA for ~2 minutes, radio duty
// cycle included), and a rare long listen window for firmware updates
// (15 mA for ~10 minutes, once a day on average). sessionsPerHour
// controls the sleep→session rate.
func node(sessionsPerHour float64) (*batlife.Workload, error) {
	perHour := func(r float64) float64 { return r / 3600 }
	return batlife.NewWorkload(
		[]batlife.StateSpec{
			{Name: "sleep", CurrentA: 0},
			{Name: "session", CurrentA: 0.012},
			{Name: "listen", CurrentA: 0.015},
		},
		[]batlife.TransitionSpec{
			{From: "sleep", To: "session", RatePerSec: perHour(sessionsPerHour)},
			{From: "session", To: "sleep", RatePerSec: 1.0 / 120},
			{From: "sleep", To: "listen", RatePerSec: perHour(1.0 / 24)},
			{From: "listen", To: "sleep", RatePerSec: 1.0 / 600},
		},
		"sleep",
	)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sensornet: ")

	// A pair of AA cells, 2600 mAh. Primary cells show a strong
	// recovery effect: c = 0.55, k fitted so that a continuous 12 mA
	// load (radio always on) lasts 7 days.
	base := batlife.Battery{
		CapacityAs:        batlife.MilliampHours(2600),
		AvailableFraction: 0.55,
	}
	k, err := base.CalibrateFlowRate(0.012, 7*86400)
	if err != nil {
		log.Fatal(err)
	}
	base.FlowRate = k
	fmt.Printf("battery: 2600 mAh, c = %.2f, fitted k = %.2e /s\n\n", base.AvailableFraction, k)

	fmt.Println("sessions/h   mean draw    mean life    p10 life   Pr[dead in 60 days]")
	for _, rate := range []float64{1, 2, 4, 8} {
		w, err := node(rate)
		if err != nil {
			log.Fatal(err)
		}
		mean, err := w.MeanCurrent()
		if err != nil {
			log.Fatal(err)
		}
		samples, err := batlife.Simulate(base, w, batlife.SimulateOptions{
			Runs: 300,
			Seed: 7,
			// Deeply duty-cycled nodes can live for years; censor at two.
			MaxTimeSeconds: 2 * 365 * 86400,
		})
		if err != nil {
			log.Fatal(err)
		}
		mLife, err := samples.Mean()
		if err != nil {
			log.Fatal(err)
		}
		q10, err := samples.Quantile(0.10)
		if err != nil {
			log.Fatal(err)
		}
		// Cross-check one point with the Markovian approximation.
		day60 := 60 * 24 * 3600.0
		res, err := batlife.LifetimeDistribution(base, w, batlife.MilliampHours(26), []float64{day60})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %4.0f     %7.3f mA   %7.1f d   %7.1f d        %6.1f%%\n",
			rate, mean*1000, mLife/86400, q10/86400, 100*res.EmptyProb[0])
	}
	fmt.Println("\n(mean and p10 life from 300 simulation runs; the 60-day probability")
	fmt.Println(" from the Markovian approximation at delta = 26 mAh — independent methods.")
	fmt.Println(" Note the approximation spreads the nearly-deterministic lifetime: a")
	fmt.Println(" phase-type distribution at coarse delta smears the transition region,")
	fmt.Println(" the effect the paper discusses with Figure 7. Decrease delta to tighten.)")
}
