// Harvesting: size the solar panel of an outdoor IoT gateway.
//
//	go run ./examples/harvesting
//
// An outdoor gateway relays traffic continuously and recharges from a
// small solar panel when the sun is out. Modelling sun/cloud alternation
// as a stochastic process, charging states are workload states with
// *negative* current — an extension of the paper's discharge-only model
// (see internal/core's charging transitions). The question: what panel
// current keeps the probability of a dead gateway below 1% over a
// three-day autonomy window?
package main

import (
	"fmt"
	"log"

	"batlife"
)

// gateway builds the workload: the device alternates between relay
// (high draw) and standby (low draw); independently the sky alternates
// between sun and cloud, which we fold into four composite states. With
// sun, the panel offsets the draw by panelA.
func gateway(panelA float64) (*batlife.Workload, error) {
	const (
		relayA   = 0.150
		standbyA = 0.020
		// Mean 20 min relay bursts, 40 min standby.
		relayEnd   = 1.0 / (20 * 60)
		relayStart = 1.0 / (40 * 60)
		// Sun and cloud spells, 90 min each on average.
		sky = 1.0 / (90 * 60)
	)
	mode := func(draw float64, sunny bool) float64 {
		if sunny {
			return draw - panelA
		}
		return draw
	}
	return batlife.NewWorkload(
		[]batlife.StateSpec{
			{Name: "relay/sun", CurrentA: mode(relayA, true)},
			{Name: "relay/cloud", CurrentA: mode(relayA, false)},
			{Name: "standby/sun", CurrentA: mode(standbyA, true)},
			{Name: "standby/cloud", CurrentA: mode(standbyA, false)},
		},
		[]batlife.TransitionSpec{
			{From: "relay/sun", To: "standby/sun", RatePerSec: relayEnd},
			{From: "relay/cloud", To: "standby/cloud", RatePerSec: relayEnd},
			{From: "standby/sun", To: "relay/sun", RatePerSec: relayStart},
			{From: "standby/cloud", To: "relay/cloud", RatePerSec: relayStart},
			{From: "relay/sun", To: "relay/cloud", RatePerSec: sky},
			{From: "relay/cloud", To: "relay/sun", RatePerSec: sky},
			{From: "standby/sun", To: "standby/cloud", RatePerSec: sky},
			{From: "standby/cloud", To: "standby/sun", RatePerSec: sky},
		},
		"standby/cloud",
	)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("harvesting: ")

	battery := batlife.Battery{
		CapacityAs:        batlife.MilliampHours(3000),
		AvailableFraction: 0.625,
		FlowRate:          4.5e-5,
	}
	window := 3 * 24 * 3600.0 // three-day autonomy target
	times := []float64{window / 3, 2 * window / 3, window}

	fmt.Println("panel current   mean net draw   Pr[dead in 1d]  Pr[dead in 2d]  Pr[dead in 3d]")
	for _, panel := range []float64{0, 0.050, 0.100, 0.150, 0.200} {
		w, err := gateway(panel)
		if err != nil {
			log.Fatal(err)
		}
		mean, err := w.MeanCurrent()
		if err != nil {
			log.Fatal(err)
		}
		res, err := batlife.LifetimeDistribution(battery, w, batlife.MilliampHours(15), times)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %3.0f mA        %+6.1f mA       %7.3f%%        %7.3f%%        %7.3f%%\n",
			panel*1000, mean*1000,
			100*res.EmptyProb[0], 100*res.EmptyProb[1], 100*res.EmptyProb[2])
	}
	fmt.Println("\n(a dead gateway means the available charge hit zero at least once;")
	fmt.Println(" charging states have negative current — the paper's model extended")
	fmt.Println(" with upward consumption transitions, surplus discarded at full)")
}
