// Wireless: should a device send data immediately or batch it?
//
//	go run ./examples/wireless
//
// This is the design question behind the paper's Figures 10 and 11: the
// "simple" device transmits whenever data arrives; the "burst" device
// buffers data and transmits in condensed bursts, sleeping in between.
// Both send the same amount of data (the burst model is calibrated so
// its steady-state send probability matches). The burst strategy wins —
// and this example quantifies by how much, with three independent
// methods.
package main

import (
	"fmt"
	"log"

	"batlife"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wireless: ")

	battery := batlife.Battery{
		CapacityAs:        batlife.MilliampHours(800),
		AvailableFraction: 0.625,
		FlowRate:          4.5e-5,
	}

	simple, err := batlife.SimpleWireless()
	if err != nil {
		log.Fatal(err)
	}
	burst, err := batlife.BurstWireless()
	if err != nil {
		log.Fatal(err)
	}

	meanSimple, err := simple.MeanCurrent()
	if err != nil {
		log.Fatal(err)
	}
	meanBurst, err := burst.MeanCurrent()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean draw: simple %.1f mA, burst %.1f mA (more sleep at equal send activity)\n\n",
		meanSimple*1000, meanBurst*1000)

	// Method 1: the Markovian approximation at Δ = 5 mAh (Figure 11).
	var times []float64
	for h := 10.0; h <= 27.5; h += 2.5 {
		times = append(times, h*3600)
	}
	delta := batlife.MilliampHours(5)
	ds, err := batlife.LifetimeDistribution(battery, simple, delta, times)
	if err != nil {
		log.Fatal(err)
	}
	db, err := batlife.LifetimeDistribution(battery, burst, delta, times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pr[battery empty at t]   (Markovian approximation, delta = 5 mAh)")
	fmt.Println("    t       simple    burst")
	for i, t := range times {
		fmt.Printf("  %5.1f h   %6.2f%%  %6.2f%%\n", t/3600, 100*ds.EmptyProb[i], 100*db.EmptyProb[i])
	}

	// Method 2: Monte-Carlo simulation, 1000 runs each.
	ss, err := batlife.SimulateLifetimes(battery, simple, 1000, 1)
	if err != nil {
		log.Fatal(err)
	}
	sb, err := batlife.SimulateLifetimes(battery, burst, 1000, 2)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := ss.Mean()
	if err != nil {
		log.Fatal(err)
	}
	mb, err := sb.Mean()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated mean lifetime: simple %.1f h, burst %.1f h (+%.1f%%)\n",
		ms/3600, mb/3600, 100*(mb-ms)/ms)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		qs, err := ss.Quantile(p)
		if err != nil {
			log.Fatal(err)
		}
		qb, err := sb.Quantile(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2.0f%%-quantile: simple %5.1f h, burst %5.1f h\n", p*100, qs/3600, qb/3600)
	}

	// Method 3: the exact transform solution for the ideal-battery
	// variant (c = 1) of both workloads.
	ideal := battery
	ideal.AvailableFraction = 1
	ideal.FlowRate = 0
	es, err := batlife.ExactLifetimeCDF(ideal, simple, times)
	if err != nil {
		log.Fatal(err)
	}
	eb, err := batlife.ExactLifetimeCDF(ideal, burst, times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexact CDF with all charge available (c = 1):")
	fmt.Println("    t       simple    burst")
	for i, t := range times {
		fmt.Printf("  %5.1f h   %6.2f%%  %6.2f%%\n", t/3600, 100*es[i], 100*eb[i])
	}
}
