// Calibration: fit KiBaM constants from discharge measurements.
//
//	go run ./examples/calibration
//
// The paper's Section 3 describes how the two KiBaM constants are
// obtained from measurements: c from the charge delivered under very
// large and very small loads, and k by matching a measured lifetime
// under a known constant load. This example walks that procedure using
// the public API, then validates the fitted model against "held-out"
// pulsed-load measurements — the same structure as the paper's Table 1.
package main

import (
	"fmt"
	"log"

	"batlife"
)

// measurement is a (load, lifetime) pair as one would read off a
// datasheet or a discharge-test rig. These numbers were produced by a
// reference battery (C = 9000 As, c = 0.58, k = 3.2e-5) standing in for
// lab hardware — the fit below recovers it without knowing that.
type measurement struct {
	currentA float64
	seconds  float64
	label    string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibration: ")

	// Step 0: the "lab measurements".
	reference := batlife.Battery{CapacityAs: 9000, AvailableFraction: 0.58, FlowRate: 3.2e-5}
	mustLifetime := func(i float64) float64 {
		l, err := reference.Lifetime(i)
		if err != nil {
			log.Fatal(err)
		}
		return l
	}
	calibLoad := 1.2
	calib := measurement{calibLoad, mustLifetime(calibLoad), "calibration (constant 1.2 A)"}
	tiny := measurement{0.005, mustLifetime(0.005), "trickle discharge (5 mA)"}
	huge := measurement{25, mustLifetime(25), "stress discharge (25 A)"}

	// Step 1: c = delivered(huge load) / delivered(tiny load).
	deliveredTiny := tiny.currentA * tiny.seconds
	deliveredHuge := huge.currentA * huge.seconds
	c := deliveredHuge / deliveredTiny
	capacity := deliveredTiny // at a trickle, the whole capacity drains
	fmt.Printf("step 1: capacity ≈ %.0f As, c ≈ %.3f  (true: 9000, 0.580)\n", capacity, c)

	// Step 2: fit k to the measured lifetime at the calibration load.
	fitted := batlife.Battery{CapacityAs: capacity, AvailableFraction: c}
	k, err := fitted.CalibrateFlowRate(calib.currentA, calib.seconds)
	if err != nil {
		log.Fatal(err)
	}
	fitted.FlowRate = k
	fmt.Printf("step 2: k ≈ %.3e /s            (true: 3.200e-05)\n\n", k)

	// Step 3: validate on held-out pulsed loads, Table-1 style.
	fmt.Println("held-out validation (lifetimes in minutes):")
	fmt.Println("  load                      measured   fitted model   error")
	validate := func(label string, measured, predicted float64) {
		fmt.Printf("  %-24s  %8.1f   %12.1f   %4.1f%%\n",
			label, measured/60, predicted/60, 100*(predicted-measured)/measured)
	}
	for _, freq := range []float64{1, 0.1, 0.01} {
		measured, err := reference.LifetimeSquareWave(1.2, freq, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		predicted, err := fitted.LifetimeSquareWave(1.2, freq, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		validate(fmt.Sprintf("square wave %g Hz", freq), measured, predicted)
	}
	for _, load := range []float64{0.6, 2.4} {
		predicted, err := fitted.Lifetime(load)
		if err != nil {
			log.Fatal(err)
		}
		validate(fmt.Sprintf("constant %.1f A", load), mustLifetime(load), predicted)
	}

	// Step 4: use the fitted model for a stochastic workload question —
	// something the bare measurements cannot answer.
	w, err := batlife.OnOffWorkload(0.5, 1, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	samples, err := batlife.SimulateLifetimes(fitted, w, 500, 3)
	if err != nil {
		log.Fatal(err)
	}
	mean, err := samples.Mean()
	if err != nil {
		log.Fatal(err)
	}
	q05, err := samples.Quantile(0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstochastic on/off use (0.5 Hz, exp. phases): mean %.0f min, 5%%-quantile %.0f min\n",
		mean/60, q05/60)
}
