package batlife

import (
	"testing"
)

// TestSweepBatchedGroupMatchesSolo forces the batched sweep path —
// scenarios sharing (battery, workload, Δ) but with distinct time grids
// land in one fingerprint group and are solved through a single
// multi-vector transient — and checks every curve bit for bit against
// fresh solo solves, the batching contract.
func TestSweepBatchedGroupMatchesSolo(t *testing.T) {
	b, w := onOffC1(t)
	scenarios := []Scenario{
		{Name: "short", Battery: b, Workload: w, DeltaAs: 100, Times: []float64{5000, 9000}},
		{Name: "long", Battery: b, Workload: w, DeltaAs: 100, Times: []float64{10000, 15000, 20000}},
		{Name: "dense", Battery: b, Workload: w, DeltaAs: 100, Times: []float64{6000, 7000, 8000, 9000}},
		{Name: "short-again", Battery: b, Workload: w, DeltaAs: 100, Times: []float64{5000, 9000}},
	}
	reg := NewTelemetry()
	s := NewSolver(SolverOptions{Telemetry: reg})
	defer s.Close()
	results, err := s.Sweep(scenarios, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %q: %v", r.Name, r.Err)
		}
		if r.Index != i || r.Name != scenarios[i].Name {
			t.Fatalf("result %d is {Index: %d, Name: %q}, want input order", i, r.Index, r.Name)
		}
		solo, err := NewSolver(SolverOptions{}).LifetimeDistribution(
			scenarios[i].Battery, scenarios[i].Workload, scenarios[i].Times,
			AnalysisOptions{Delta: scenarios[i].DeltaAs})
		if err != nil {
			t.Fatal(err)
		}
		sameCurve(t, "batched sweep "+r.Name, r.Distribution.EmptyProb, solo.EmptyProb)
	}

	// One fingerprint group: the whole sweep must have expanded exactly
	// one model and batched the three distinct grids into one transient
	// (the duplicate grid dedupes; it is served from the batch, and a
	// repeat sweep comes entirely from the result memo).
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("model builds = %d, want 1 (one shared expanded CTMC)", st.Misses)
	}
	if v := reg.Counter("ctmc_batched_solves_total").Value(); v != 1 {
		t.Errorf("ctmc_batched_solves_total = %d, want 1", v)
	}
	if v := reg.Counter("solver_solves_total").Value(); v != int64(len(scenarios)) {
		t.Errorf("solver_solves_total = %d, want %d", v, len(scenarios))
	}

	again, err := s.Sweep(scenarios, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range again {
		if r.Err != nil {
			t.Fatalf("memoised scenario %q: %v", r.Name, r.Err)
		}
		sameCurve(t, "memoised sweep "+r.Name, r.Distribution.EmptyProb, results[i].Distribution.EmptyProb)
	}
	if v := reg.Counter("solver_result_memo_hits_total").Value(); v != int64(len(scenarios)) {
		t.Errorf("memo hits after repeat sweep = %d, want %d", v, len(scenarios))
	}
}

// TestSweepBatchedGroupErrorFallsBackToSolo: when the shared model of a
// group cannot be built (Δ does not divide the wells), the batch is
// abandoned and every member reports its own solo error — batching must
// not coarsen per-scenario error attribution.
func TestSweepBatchedGroupErrorFallsBackToSolo(t *testing.T) {
	b, w := onOffC1(t)
	scenarios := []Scenario{
		{Name: "bad-a", Battery: b, Workload: w, DeltaAs: 7, Times: []float64{5000}},
		{Name: "bad-b", Battery: b, Workload: w, DeltaAs: 7, Times: []float64{9000}},
		{Name: "good", Battery: b, Workload: w, DeltaAs: 100, Times: []float64{9000}},
	}
	results, err := NewSolver(SolverOptions{}).Sweep(scenarios, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results[:2] {
		if r.Err == nil || r.Distribution != nil {
			t.Errorf("scenario %q: err = %v, dist = %v; want per-scenario error", r.Name, r.Err, r.Distribution)
		}
	}
	if results[2].Err != nil {
		t.Errorf("scenario good: %v", results[2].Err)
	}
}

// TestSolverCloseKeepsSolving: Close releases the worker pool but the
// solver must keep answering queries (serially) and Close must be
// idempotent.
func TestSolverCloseKeepsSolving(t *testing.T) {
	b, w := onOffC1(t)
	times := []float64{9000, 12000}
	s := NewSolver(SolverOptions{})
	before, err := s.LifetimeDistribution(b, w, times, AnalysisOptions{Delta: 100})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	// Bypass the result memo with a fresh grid so the post-Close solve
	// actually iterates.
	after, err := s.LifetimeDistribution(b, w, []float64{9000, 12000, 15000}, AnalysisOptions{Delta: 100})
	if err != nil {
		t.Fatalf("solve after Close: %v", err)
	}
	sameCurve(t, "post-close prefix", after.EmptyProb[:2], before.EmptyProb)
}
