package linalg

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveRealKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveReal(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveRealNeedsPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	x, err := SolveReal(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSolveRealSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveReal(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveRealShapeErrors(t *testing.T) {
	if _, err := SolveReal(nil, nil); !errors.Is(err, ErrShape) {
		t.Errorf("empty system: err = %v, want ErrShape", err)
	}
	if _, err := SolveReal([][]float64{{1, 2}}, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged system: err = %v, want ErrShape", err)
	}
	if _, err := SolveReal([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("wrong b: err = %v, want ErrShape", err)
	}
}

func TestSolveRealDoesNotModifyInputs(t *testing.T) {
	a := [][]float64{{4, 1}, {1, 3}}
	b := []float64{1, 2}
	if _, err := SolveReal(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 4 || a[1][0] != 1 || b[0] != 1 {
		t.Errorf("inputs modified: a=%v b=%v", a, b)
	}
}

func TestSolveRealResidualProperty(t *testing.T) {
	// For random well-conditioned systems, the residual A·x - b must be
	// tiny relative to b.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonal dominance keeps conditioning sane
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveReal(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			r := -b[i]
			for j := 0; j < n; j++ {
				r += a[i][j] * x[j]
			}
			if math.Abs(r) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMatCMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatC(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	id := IdentityC(4)
	left := id.Mul(m)
	right := m.Mul(id)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if left.At(i, j) != m.At(i, j) || right.At(i, j) != m.At(i, j) {
				t.Fatalf("identity product differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestExpZeroMatrix(t *testing.T) {
	e := NewMatC(3).Exp()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Errorf("exp(0)[%d][%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestExpDiagonal(t *testing.T) {
	// exp(diag(d)) = diag(exp(d)), including complex entries.
	d := []complex128{complex(-1, 0), complex(0.5, 2), complex(-3, -1)}
	m := NewMatC(3)
	for i, v := range d {
		m.Set(i, i, v)
	}
	e := m.Exp()
	for i, v := range d {
		if cmplx.Abs(e.At(i, i)-cmplx.Exp(v)) > 1e-13*cmplx.Abs(cmplx.Exp(v)) {
			t.Errorf("diag %d: %v, want %v", i, e.At(i, i), cmplx.Exp(v))
		}
		for j := range d {
			if i != j && cmplx.Abs(e.At(i, j)) > 1e-14 {
				t.Errorf("off-diagonal (%d,%d) = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestExpNilpotent(t *testing.T) {
	// For the nilpotent N = [[0,1],[0,0]], e^(aN) = I + aN exactly.
	m := NewMatC(2)
	m.Set(0, 1, complex(3.7, -0.2))
	e := m.Exp()
	if cmplx.Abs(e.At(0, 0)-1) > 1e-14 || cmplx.Abs(e.At(1, 1)-1) > 1e-14 {
		t.Errorf("diagonal not 1: %v, %v", e.At(0, 0), e.At(1, 1))
	}
	if cmplx.Abs(e.At(0, 1)-complex(3.7, -0.2)) > 1e-13 {
		t.Errorf("e[0][1] = %v", e.At(0, 1))
	}
	if cmplx.Abs(e.At(1, 0)) > 1e-14 {
		t.Errorf("e[1][0] = %v", e.At(1, 0))
	}
}

func TestExpAdditivityCommuting(t *testing.T) {
	// exp(A)·exp(A) = exp(2A) for any A (A commutes with itself).
	rng := rand.New(rand.NewSource(2))
	a := NewMatC(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	twice := a.Clone().Scale(2).Exp()
	squared := a.Exp()
	squared = squared.Mul(squared)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if cmplx.Abs(twice.At(i, j)-squared.At(i, j)) > 1e-10*(1+cmplx.Abs(twice.At(i, j))) {
				t.Fatalf("(%d,%d): exp(2A)=%v, exp(A)^2=%v", i, j, twice.At(i, j), squared.At(i, j))
			}
		}
	}
}

func TestExpGeneratorRowSums(t *testing.T) {
	// For a real generator matrix Q (rows sum to 0), exp(Qt) is
	// stochastic: rows sum to 1 and entries are non-negative.
	q := NewMatC(3)
	rates := [][]float64{
		{-3, 2, 1},
		{6, -6, 0},
		{0, 2, -2},
	}
	for i := range rates {
		for j := range rates[i] {
			q.Set(i, j, complex(rates[i][j]*0.7, 0)) // t = 0.7
		}
	}
	p := q.Exp()
	for i := 0; i < 3; i++ {
		sum := complex128(0)
		for j := 0; j < 3; j++ {
			v := p.At(i, j)
			if real(v) < -1e-12 || math.Abs(imag(v)) > 1e-12 {
				t.Errorf("P[%d][%d] = %v not a probability", i, j, v)
			}
			sum += v
		}
		if cmplx.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestMulVecLeft(t *testing.T) {
	m := NewMatC(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	out, err := m.MulVecLeft([]complex128{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 31 || out[1] != 42 {
		t.Errorf("x·m = %v, want [31 42]", out)
	}
	if _, err := m.MulVecLeft([]complex128{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short vector: err = %v, want ErrShape", err)
	}
}

func BenchmarkExp6x6(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatC(6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Exp()
	}
}

func BenchmarkSolveReal10(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 10
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.NormFloat64()
		}
		a[i][i] += 10
	}
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveReal(a, vec); err != nil {
			b.Fatal(err)
		}
	}
}
