// Package linalg provides the small dense linear-algebra kernels the
// battery solvers need: LU decomposition with partial pivoting for
// steady-state equations, and a complex matrix exponential for the
// transform-domain performability solver.
//
// Workload CTMCs in the paper have at most a handful of states, so these
// routines are written for clarity and numerical robustness rather than
// blocked performance. Large systems (the expanded CTMC Q*) never pass
// through this package — they are handled sparsely by internal/sparse.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrSingular reports a (numerically) singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrShape reports inconsistent dimensions.
var ErrShape = errors.New("linalg: dimension mismatch")

// SolveReal solves A·x = b by LU decomposition with partial pivoting.
// A and b are left unmodified.
func SolveReal(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("solve %dx? with |b|=%d: %w", n, len(b), ErrShape)
	}
	// Working copy.
	lu := make([][]float64, n)
	for i := range lu {
		if len(a[i]) != n {
			return nil, fmt.Errorf("row %d has %d columns, want %d: %w", i, len(a[i]), n, ErrShape)
		}
		lu[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, maxAbs := col, math.Abs(lu[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(lu[r][col]); abs > maxAbs {
				pivot, maxAbs = r, abs
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("pivot column %d: %w", col, ErrSingular)
		}
		lu[col], lu[pivot] = lu[pivot], lu[col]
		x[col], x[pivot] = x[pivot], x[col]

		inv := 1 / lu[col][col]
		for r := col + 1; r < n; r++ {
			f := lu[r][col] * inv
			if f == 0 {
				continue
			}
			lu[r][col] = 0
			for c := col + 1; c < n; c++ {
				lu[r][c] -= f * lu[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		sum := x[r]
		for c := r + 1; c < n; c++ {
			sum -= lu[r][c] * x[c]
		}
		x[r] = sum / lu[r][r]
	}
	return x, nil
}

// MatC is a dense square complex matrix stored row-major.
type MatC struct {
	n    int
	data []complex128
}

// NewMatC returns the zero n×n complex matrix.
func NewMatC(n int) *MatC {
	return &MatC{n: n, data: make([]complex128, n*n)}
}

// IdentityC returns the n×n identity.
func IdentityC(n int) *MatC {
	m := NewMatC(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// N reports the dimension.
func (m *MatC) N() int { return m.n }

// At returns the (r, c) entry.
func (m *MatC) At(r, c int) complex128 { return m.data[r*m.n+c] }

// Set assigns the (r, c) entry.
func (m *MatC) Set(r, c int, v complex128) { m.data[r*m.n+c] = v }

// Clone returns a deep copy.
func (m *MatC) Clone() *MatC {
	c := NewMatC(m.n)
	copy(c.data, m.data)
	return c
}

// Scale multiplies every entry by s, in place, and returns m.
func (m *MatC) Scale(s complex128) *MatC {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddInPlace adds o entrywise, in place, and returns m.
func (m *MatC) AddInPlace(o *MatC) *MatC {
	for i := range m.data {
		m.data[i] += o.data[i]
	}
	return m
}

// Mul returns m·o.
func (m *MatC) Mul(o *MatC) *MatC {
	n := m.n
	out := NewMatC(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.data[i*n+k]
			if a == 0 {
				continue
			}
			row := o.data[k*n:]
			outRow := out.data[i*n:]
			for j := 0; j < n; j++ {
				outRow[j] += a * row[j]
			}
		}
	}
	return out
}

// MulVecLeft returns x·m for a row vector x.
func (m *MatC) MulVecLeft(x []complex128) ([]complex128, error) {
	if len(x) != m.n {
		return nil, fmt.Errorf("vector length %d for %dx%d: %w", len(x), m.n, m.n, ErrShape)
	}
	out := make([]complex128, m.n)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.data[i*m.n:]
		for j := 0; j < m.n; j++ {
			out[j] += xi * row[j]
		}
	}
	return out, nil
}

// normInf returns the maximum absolute row sum.
func (m *MatC) normInf() float64 {
	maxSum := 0.0
	for i := 0; i < m.n; i++ {
		sum := 0.0
		for j := 0; j < m.n; j++ {
			sum += cmplx.Abs(m.data[i*m.n+j])
		}
		if sum > maxSum {
			maxSum = sum
		}
	}
	return maxSum
}

// Exp returns e^m via scaling and squaring with a Taylor series on the
// scaled matrix. The matrix is scaled by 2^-s until its infinity norm is
// below 1/2; the series then converges to machine precision in ~20
// terms, and the result is squared s times.
func (m *MatC) Exp() *MatC {
	norm := m.normInf()
	s := 0
	for scaled := norm; scaled > 0.5; scaled /= 2 {
		s++
	}
	a := m.Clone().Scale(complex(math.Exp2(-float64(s)), 0))

	// Taylor: e^A = Σ A^k / k!.
	result := IdentityC(m.n)
	term := IdentityC(m.n)
	for k := 1; k <= 24; k++ {
		term = term.Mul(a).Scale(complex(1/float64(k), 0))
		result.AddInPlace(term)
		if term.normInf() < 1e-18*(1+result.normInf()) {
			break
		}
	}
	for i := 0; i < s; i++ {
		result = result.Mul(result)
	}
	return result
}
