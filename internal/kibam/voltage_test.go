package kibam

import (
	"errors"
	"math"
	"testing"
)

func TestVoltageParamsValidate(t *testing.T) {
	if err := TypicalLiIon().Validate(); err != nil {
		t.Errorf("typical cell rejected: %v", err)
	}
	cases := []VoltageParams{
		{E0: 0, A: -0.5, CV: -0.1, D: 1.1, R0: 0.1},
		{E0: 4.2, A: 0.5, CV: -0.1, D: 1.1, R0: 0.1},
		{E0: 4.2, A: -0.5, CV: 0.1, D: 1.1, R0: 0.1},
		{E0: 4.2, A: -0.5, CV: -0.1, D: 0.9, R0: 0.1},
		{E0: 4.2, A: -0.5, CV: -0.1, D: 1.1, R0: -1},
		{E0: math.NaN(), A: -0.5, CV: -0.1, D: 1.1, R0: 0.1},
	}
	for i, vp := range cases {
		if err := vp.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("case %d: err = %v, want ErrBadParams", i, err)
		}
	}
}

func TestTerminalVoltageFullBatteryNoLoad(t *testing.T) {
	vp := TypicalLiIon()
	v := paperParams.Terminal(vp, paperParams.FullState(), 0)
	if math.Abs(v-vp.E0) > 1e-12 {
		t.Errorf("open-circuit full voltage = %v, want E0 = %v", v, vp.E0)
	}
}

func TestTerminalVoltageOhmicDrop(t *testing.T) {
	vp := TypicalLiIon()
	s := paperParams.FullState()
	v0 := paperParams.Terminal(vp, s, 0)
	v1 := paperParams.Terminal(vp, s, 1)
	if math.Abs((v0-v1)-vp.R0) > 1e-12 {
		t.Errorf("IR drop at 1 A = %v, want R0 = %v", v0-v1, vp.R0)
	}
}

func TestTerminalVoltageDecreasesWithDischarge(t *testing.T) {
	vp := TypicalLiIon()
	s := paperParams.FullState()
	prev := paperParams.Terminal(vp, s, 0.96)
	for i := 0; i < 5; i++ {
		s = paperParams.Step(s, 0.96, 1000)
		v := paperParams.Terminal(vp, s, 0.96)
		if v >= prev {
			t.Fatalf("voltage rose during discharge: %v -> %v", prev, v)
		}
		prev = v
	}
}

func TestTerminalVoltageRecoversAfterRest(t *testing.T) {
	vp := TypicalLiIon()
	loaded := paperParams.Step(paperParams.FullState(), 0.96, 3000)
	underLoad := paperParams.Terminal(vp, loaded, 0.96)
	atRest := paperParams.Terminal(vp, loaded, 0)
	if atRest <= underLoad {
		t.Errorf("removing the load did not raise the voltage: %v vs %v", atRest, underLoad)
	}
}

func TestLifetimeToCutoffVoltageLimited(t *testing.T) {
	// A cut-off just below the loaded full-charge voltage trips quickly,
	// long before the charge is gone.
	vp := TypicalLiIon()
	vStart := paperParams.Terminal(vp, paperParams.FullState(), 0.96)
	res, err := paperParams.LifetimeToCutoff(vp, ConstantLoad(0.96), vStart-0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.VoltageLimited {
		t.Error("expected a voltage-limited result")
	}
	charge, err := paperParams.Lifetime(ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifetime >= charge {
		t.Errorf("voltage-limited lifetime %v not below charge-limited %v", res.Lifetime, charge)
	}
	// The voltage at the crossing must equal the cutoff.
	s := paperParams.Step(paperParams.FullState(), 0.96, res.Lifetime)
	if v := paperParams.Terminal(vp, s, 0.96); math.Abs(v-(vStart-0.05)) > 1e-6 {
		t.Errorf("voltage at crossing = %v, want %v", v, vStart-0.05)
	}
}

func TestLifetimeToCutoffChargeLimited(t *testing.T) {
	// With a very low cut-off the charge runs out first (the rational
	// sag term is capped because X never reaches D).
	vp := VoltageParams{E0: 4.2, A: -0.3, CV: -0.01, D: 1.5, R0: 0.05}
	res, err := paperParams.LifetimeToCutoff(vp, ConstantLoad(0.96), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.VoltageLimited {
		t.Error("expected a charge-limited result")
	}
	charge, err := paperParams.Lifetime(ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lifetime-charge) > 1 {
		t.Errorf("charge-limited lifetime %v, want %v", res.Lifetime, charge)
	}
}

func TestLifetimeToCutoffSquareWave(t *testing.T) {
	// Under a square wave the voltage recovers during off phases (IR
	// drop vanishes and charge flows back), so a cut-off that a
	// continuous load hits early is survived longer.
	vp := TypicalLiIon()
	cutoff := 3.4
	cont, err := paperParams.LifetimeToCutoff(vp, ConstantLoad(0.96), cutoff)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := paperParams.LifetimeToCutoff(vp, SquareWave{On: 0.96, Frequency: 0.01}, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if wave.Lifetime <= cont.Lifetime {
		t.Errorf("square-wave cutoff lifetime %v not above continuous %v", wave.Lifetime, cont.Lifetime)
	}
}

func TestLifetimeToCutoffArgErrors(t *testing.T) {
	vp := TypicalLiIon()
	if _, err := paperParams.LifetimeToCutoff(vp, ConstantLoad(1), 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero cutoff: err = %v", err)
	}
	if _, err := paperParams.LifetimeToCutoff(vp, ConstantLoad(1), 5.0); !errors.Is(err, ErrBadParams) {
		t.Errorf("cutoff above E0: err = %v", err)
	}
	bad := vp
	bad.D = 0.5
	if _, err := paperParams.LifetimeToCutoff(bad, ConstantLoad(1), 3); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad voltage params: err = %v", err)
	}
	if _, err := paperParams.LifetimeToCutoff(vp, ConstantLoad(0), 3); !errors.Is(err, ErrBadProfile) {
		t.Errorf("zero load: err = %v", err)
	}
}

func TestDischargedFractionClamps(t *testing.T) {
	if x := paperParams.dischargedFraction(paperParams.FullState()); x != 0 {
		t.Errorf("full battery X = %v", x)
	}
	if x := paperParams.dischargedFraction(State{Y1: 0, Y2: 0}); x != 1 {
		t.Errorf("empty battery X = %v", x)
	}
	if x := paperParams.dischargedFraction(State{Y1: 9000, Y2: 0}); x != 0 {
		t.Errorf("overfull battery X = %v, want clamp to 0", x)
	}
}
