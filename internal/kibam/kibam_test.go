package kibam

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// paperParams is the battery of the paper's Table 1 and Figures 2, 8, 9:
// C = 7200 As (2000 mAh), c = 0.625, k = 4.5e-5 /s.
var paperParams = Params{Capacity: 7200, C: 0.625, K: 4.5e-5}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"paper battery", paperParams, false},
		{"degenerate c=1", Params{Capacity: 7200, C: 1, K: 0}, false},
		{"zero capacity", Params{Capacity: 0, C: 0.5, K: 1e-5}, true},
		{"negative capacity", Params{Capacity: -1, C: 0.5, K: 1e-5}, true},
		{"c zero", Params{Capacity: 1, C: 0, K: 1e-5}, true},
		{"c above one", Params{Capacity: 1, C: 1.1, K: 1e-5}, true},
		{"negative k", Params{Capacity: 1, C: 0.5, K: -1}, true},
		{"NaN k", Params{Capacity: 1, C: 0.5, K: math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadParams) {
				t.Errorf("error %v does not wrap ErrBadParams", err)
			}
		})
	}
}

func TestFullState(t *testing.T) {
	s := paperParams.FullState()
	if math.Abs(s.Y1-4500) > 1e-9 || math.Abs(s.Y2-2700) > 1e-9 {
		t.Errorf("full state = %+v, want y1=4500 y2=2700", s)
	}
	if math.Abs(paperParams.HeightDiff(s)) > 1e-12 {
		t.Errorf("full state heights differ by %v", paperParams.HeightDiff(s))
	}
	if s.Empty() {
		t.Error("full state reported empty")
	}
}

func TestStepLinearWhenCIsOne(t *testing.T) {
	p := Params{Capacity: 7200, C: 1, K: 0}
	s := p.Step(p.FullState(), 0.96, 1000)
	if math.Abs(s.Y1-(7200-960)) > 1e-9 || s.Y2 != 0 {
		t.Errorf("state = %+v", s)
	}
}

func TestStepNoTransferWhenKIsZero(t *testing.T) {
	p := Params{Capacity: 7200, C: 0.625, K: 0}
	s := p.Step(p.FullState(), 0.96, 1000)
	if math.Abs(s.Y1-(4500-960)) > 1e-9 || math.Abs(s.Y2-2700) > 1e-9 {
		t.Errorf("state = %+v", s)
	}
}

func TestStepChargeConservation(t *testing.T) {
	// Total charge decreases exactly by the drawn charge I·dt while
	// both wells stay in their valid regime.
	s := paperParams.FullState()
	stepped := paperParams.Step(s, 0.96, 600)
	if got, want := stepped.Total(), s.Total()-0.96*600; math.Abs(got-want) > 1e-8 {
		t.Errorf("total = %v, want %v", got, want)
	}
}

func TestStepRecovery(t *testing.T) {
	// Draw hard, then rest: the available well must refill from the
	// bound well with total charge conserved.
	loaded := paperParams.Step(paperParams.FullState(), 0.96, 2000)
	rested := paperParams.Step(loaded, 0, 3000)
	if rested.Y1 <= loaded.Y1 {
		t.Errorf("no recovery: y1 %v -> %v", loaded.Y1, rested.Y1)
	}
	if rested.Y2 >= loaded.Y2 {
		t.Errorf("bound charge did not drain: y2 %v -> %v", loaded.Y2, rested.Y2)
	}
	if math.Abs(rested.Total()-loaded.Total()) > 1e-8 {
		t.Errorf("rest changed total charge: %v -> %v", loaded.Total(), rested.Total())
	}
}

func TestRestEqualizesHeights(t *testing.T) {
	loaded := paperParams.Step(paperParams.FullState(), 0.96, 2000)
	if paperParams.HeightDiff(loaded) <= 0 {
		t.Fatalf("expected positive height difference after load")
	}
	rested := paperParams.Step(loaded, 0, 1e7)
	if d := paperParams.HeightDiff(rested); math.Abs(d) > 1e-6 {
		t.Errorf("height difference after long rest = %v, want 0", d)
	}
}

func TestStepAdditivityProperty(t *testing.T) {
	// Step(s, I, t1+t2) == Step(Step(s, I, t1), I, t2): the closed form
	// must compose, or piecewise evaluation would drift.
	f := func(seedI, seedT uint32) bool {
		current := 0.1 + 1.9*float64(seedI%1000)/1000
		t1 := 10 + float64(seedT%997)
		t2 := 10 + float64((seedT/997)%997)
		s := paperParams.FullState()
		// Keep within the non-empty regime.
		if current*(t1+t2) > 0.8*s.Y1 {
			return true
		}
		oneShot := paperParams.Step(s, current, t1+t2)
		twoShot := paperParams.Step(paperParams.Step(s, current, t1), current, t2)
		return math.Abs(oneShot.Y1-twoShot.Y1) < 1e-7 &&
			math.Abs(oneShot.Y2-twoShot.Y2) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStepNoUphillFlowUnderLoad(t *testing.T) {
	// Custom state with the available well higher than the bound well:
	// the paper's rates forbid flow until the heights meet, so the
	// bound well must not gain charge while h1 > h2.
	s := State{Y1: 4000, Y2: 300} // h1 = 6400, h2 = 800
	if paperParams.HeightDiff(s) >= 0 {
		t.Fatal("test state must have h1 > h2")
	}
	stepped := paperParams.Step(s, 0.96, 500)
	if stepped.Y2 > s.Y2+1e-9 {
		t.Errorf("bound well gained charge uphill: %v -> %v", s.Y2, stepped.Y2)
	}
	if math.Abs(stepped.Y1-(s.Y1-0.96*500)) > 1e-6 {
		t.Errorf("y1 = %v, want pure linear drain while no flow", stepped.Y1)
	}
	// Past the height-crossing instant the flow resumes: a long step
	// must show bound-charge transfer into the available well.
	far := paperParams.Step(s, 0.96, 4000)
	if far.Y2 >= s.Y2 {
		t.Errorf("no transfer after heights met: y2 %v -> %v", s.Y2, far.Y2)
	}
	if math.Abs(far.Total()-(s.Total()-0.96*4000)) > 1e-6 {
		t.Errorf("charge not conserved across the crossing: %v", far.Total())
	}
}

func TestDepletionFromUphillState(t *testing.T) {
	// Depletion from an h1 > h2 state: the linear no-flow phase and the
	// closed-form phase must hand over consistently — the state at the
	// reported depletion instant is empty.
	s := State{Y1: 1000, Y2: 300}
	tdep, ok := paperParams.Depletion(s, 0.96, math.Inf(1))
	if !ok {
		t.Fatal("no depletion")
	}
	at := paperParams.Step(s, 0.96, tdep)
	if math.Abs(at.Y1) > 1e-5 {
		t.Errorf("y1 at reported depletion = %v", at.Y1)
	}
	// Depletion must respect finite segment bounds too.
	if _, ok := paperParams.Depletion(s, 0.96, 10); ok {
		t.Error("depletion inside a 10 s segment that cannot deplete")
	}
}

// rk4 integrates the raw KiBaM ODEs with boundary gating, as an
// independent reference for the closed form.
func rk4(p Params, s State, current, dt float64, steps int) State {
	h := dt / float64(steps)
	deriv := func(y1, y2 float64) (d1, d2 float64) {
		flow := 0.0
		if p.C < 1 && y2 > 0 {
			flow = p.K * (y2/(1-p.C) - y1/p.C)
			if flow < 0 && current <= 0 {
				flow = 0
			}
		}
		return -current + flow, -flow
	}
	y1, y2 := s.Y1, s.Y2
	for i := 0; i < steps; i++ {
		k11, k12 := deriv(y1, y2)
		k21, k22 := deriv(y1+h/2*k11, y2+h/2*k12)
		k31, k32 := deriv(y1+h/2*k21, y2+h/2*k22)
		k41, k42 := deriv(y1+h*k31, y2+h*k32)
		y1 += h / 6 * (k11 + 2*k21 + 2*k31 + k41)
		y2 += h / 6 * (k12 + 2*k22 + 2*k32 + k42)
	}
	return State{Y1: y1, Y2: y2}
}

func TestStepMatchesRK4(t *testing.T) {
	cases := []struct {
		name    string
		p       Params
		current float64
		dt      float64
	}{
		{"paper battery loaded", paperParams, 0.96, 3000},
		{"paper battery light load", paperParams, 0.1, 5000},
		{"fast transfer", Params{Capacity: 1000, C: 0.4, K: 1e-3}, 0.3, 800},
		{"slow transfer", Params{Capacity: 5000, C: 0.8, K: 1e-6}, 0.5, 2000},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			closed := tt.p.Step(tt.p.FullState(), tt.current, tt.dt)
			numeric := rk4(tt.p, tt.p.FullState(), tt.current, tt.dt, 20000)
			if math.Abs(closed.Y1-numeric.Y1) > 1e-4*(1+math.Abs(numeric.Y1)) {
				t.Errorf("y1: closed %v, rk4 %v", closed.Y1, numeric.Y1)
			}
			if math.Abs(closed.Y2-numeric.Y2) > 1e-4*(1+math.Abs(numeric.Y2)) {
				t.Errorf("y2: closed %v, rk4 %v", closed.Y2, numeric.Y2)
			}
		})
	}
}

func TestStepRecoveryMatchesRK4(t *testing.T) {
	loaded := paperParams.Step(paperParams.FullState(), 0.96, 2500)
	closed := paperParams.Step(loaded, 0, 4000)
	numeric := rk4(paperParams, loaded, 0, 4000, 20000)
	if math.Abs(closed.Y1-numeric.Y1) > 1e-4 || math.Abs(closed.Y2-numeric.Y2) > 1e-4 {
		t.Errorf("closed %+v, rk4 %+v", closed, numeric)
	}
}

func TestDepletionLinear(t *testing.T) {
	p := Params{Capacity: 7200, C: 1, K: 0}
	tdep, ok := p.Depletion(p.FullState(), 0.96, math.Inf(1))
	if !ok {
		t.Fatal("no depletion")
	}
	if want := 7200 / 0.96; math.Abs(tdep-want) > 1e-9 {
		t.Errorf("depletion at %v, want %v", tdep, want)
	}
	if _, ok := p.Depletion(p.FullState(), 0.96, 100); ok {
		t.Error("depletion inside a segment that cannot deplete")
	}
}

func TestDepletionHitsZero(t *testing.T) {
	tdep, ok := paperParams.Depletion(paperParams.FullState(), 0.96, math.Inf(1))
	if !ok {
		t.Fatal("no depletion")
	}
	s := paperParams.Step(paperParams.FullState(), 0.96, tdep)
	if math.Abs(s.Y1) > 1e-5 {
		t.Errorf("y1 at depletion time = %v, want 0", s.Y1)
	}
}

func TestDepletionEmptyState(t *testing.T) {
	if tdep, ok := paperParams.Depletion(State{Y1: 0, Y2: 100}, 1, 10); !ok || tdep != 0 {
		t.Errorf("empty battery: (%v, %v), want (0, true)", tdep, ok)
	}
}

func TestDepletionNoLoad(t *testing.T) {
	if _, ok := paperParams.Depletion(paperParams.FullState(), 0, 1e9); ok {
		t.Error("zero load reported depletion")
	}
}

func TestLifetimeContinuousMatchesPaper(t *testing.T) {
	// Table 1, KiBaM column, continuous load: 91 minutes.
	life, err := paperParams.Lifetime(ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	if min := life / 60; math.Abs(min-91) > 0.5 {
		t.Errorf("continuous lifetime = %v min, paper reports 91", min)
	}
}

func TestLifetimeSquareWaveMatchesPaper(t *testing.T) {
	// Table 1, KiBaM column: 203 minutes at both 1 Hz and 0.2 Hz —
	// the plain KiBaM is frequency-independent, which is exactly the
	// deficiency the paper discusses.
	var lifetimes []float64
	for _, f := range []float64{1, 0.2} {
		life, err := paperParams.Lifetime(SquareWave{On: 0.96, Frequency: f})
		if err != nil {
			t.Fatal(err)
		}
		if min := life / 60; math.Abs(min-203) > 1 {
			t.Errorf("f=%v: lifetime = %v min, paper reports 203", f, min)
		}
		lifetimes = append(lifetimes, life)
	}
	if diff := math.Abs(lifetimes[0]-lifetimes[1]) / 60; diff > 0.5 {
		t.Errorf("KiBaM lifetime depends on frequency by %v min; the model must be frequency-independent", diff)
	}
}

func TestLifetimeIdealBattery(t *testing.T) {
	p := Params{Capacity: 7200, C: 1, K: 0}
	life, err := p.Lifetime(ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	want := 7200 / 0.96
	if math.Abs(life-want) > 1e-9 {
		t.Errorf("ideal lifetime = %v, want C/I = %v", life, want)
	}
	// Square wave at duty 0.5 exactly doubles the ideal lifetime.
	life2, err := p.Lifetime(SquareWave{On: 0.96, Frequency: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(life2-2*want) > 100+1e-9 { // at most one 0.01 Hz period of slack
		t.Errorf("square-wave ideal lifetime = %v, want ~%v", life2, 2*want)
	}
}

func TestLifetimeMonotoneInLoad(t *testing.T) {
	prev := math.Inf(1)
	for _, current := range []float64{0.2, 0.4, 0.8, 1.6, 3.2} {
		life, err := paperParams.Lifetime(ConstantLoad(current))
		if err != nil {
			t.Fatal(err)
		}
		if life >= prev {
			t.Errorf("lifetime %v at %vA not below %v at lower load", life, current, prev)
		}
		prev = life
	}
}

func TestIntermittentBeatsContinuous(t *testing.T) {
	cont, err := paperParams.Lifetime(ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	square, err := paperParams.Lifetime(SquareWave{On: 0.96, Frequency: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The on-time alone (half the wall clock) must exceed the
	// continuous lifetime: recovery makes bound charge usable.
	if square/2 <= cont {
		t.Errorf("on-time %v under square wave not above continuous lifetime %v", square/2, cont)
	}
}

func TestLifetimeFromEmptyState(t *testing.T) {
	life, err := paperParams.LifetimeFrom(State{Y1: 0, Y2: 500}, ConstantLoad(1))
	if err != nil || life != 0 {
		t.Errorf("lifetime from empty = (%v, %v), want (0, nil)", life, err)
	}
}

func TestLifetimeZeroLoadFails(t *testing.T) {
	if _, err := paperParams.Lifetime(ConstantLoad(0)); !errors.Is(err, ErrBadProfile) {
		t.Errorf("err = %v, want ErrBadProfile", err)
	}
}

func TestLifetimeBadSegments(t *testing.T) {
	profiles := []Profile{
		SegmentList{{Current: -1, Duration: 10}},
		SegmentList{{Current: 1, Duration: 0}},
		SegmentList{{Current: math.NaN(), Duration: 10}},
	}
	for i, prof := range profiles {
		if _, err := paperParams.Lifetime(prof); !errors.Is(err, ErrBadProfile) {
			t.Errorf("profile %d: err = %v, want ErrBadProfile", i, err)
		}
	}
}

func TestSegmentListTailIsIdle(t *testing.T) {
	l := SegmentList{{Current: 2, Duration: 5}}
	seg := l.Segment(3)
	if seg.Current != 0 || !math.IsInf(seg.Duration, 1) {
		t.Errorf("tail segment = %+v", seg)
	}
}

func TestSquareWaveDuty(t *testing.T) {
	w := SquareWave{On: 1, Frequency: 0.5, Duty: 0.25}
	on, off := w.Segment(0), w.Segment(1)
	if on.Current != 1 || math.Abs(on.Duration-0.5) > 1e-12 {
		t.Errorf("on segment = %+v", on)
	}
	if off.Current != 0 || math.Abs(off.Duration-1.5) > 1e-12 {
		t.Errorf("off segment = %+v", off)
	}
}
