// Package kibam implements the Kinetic Battery Model (KiBaM) of Manwell
// and McGowan, the analytical battery model that Section 3 of the paper
// builds on.
//
// The battery charge is split over two wells. The available-charge well
// (y1) feeds the load directly; the bound-charge well (y2) replenishes
// the available well at a rate proportional to the difference in well
// heights h2 − h1, with h1 = y1/c and h2 = y2/(1−c):
//
//	dy1/dt = −I + k·(h2 − h1)
//	dy2/dt =     − k·(h2 − h1)
//
// For constant load current I this system has a closed-form solution,
// which this package evaluates exactly; piecewise-constant load profiles
// are handled by stepping from segment to segment. Battery lifetime —
// the first time y1 reaches zero — is found by bisection on the closed
// form, using the fact that within a constant-current segment y1 has at
// most one local maximum.
package kibam

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParams reports invalid battery parameters.
var ErrBadParams = errors.New("kibam: invalid parameters")

// ErrBadProfile reports an invalid load profile.
var ErrBadProfile = errors.New("kibam: invalid load profile")

// Params are the three KiBaM battery constants.
type Params struct {
	// Capacity is the total battery capacity C in ampere-seconds.
	Capacity float64
	// C is the fraction of the capacity held by the available-charge
	// well, in (0, 1]. c = 1 degenerates to an ideal linear battery.
	C float64
	// K is the well-flow rate constant k in 1/s. k = 0 disables charge
	// transfer between the wells.
	K float64
}

// Validate reports whether the parameters describe a usable battery.
func (p Params) Validate() error {
	if !(p.Capacity > 0) || math.IsInf(p.Capacity, 0) {
		return fmt.Errorf("%w: capacity %v", ErrBadParams, p.Capacity)
	}
	if !(p.C > 0) || p.C > 1 {
		return fmt.Errorf("%w: well fraction c = %v not in (0,1]", ErrBadParams, p.C)
	}
	if p.K < 0 || math.IsNaN(p.K) || math.IsInf(p.K, 0) {
		return fmt.Errorf("%w: flow constant k = %v", ErrBadParams, p.K)
	}
	return nil
}

// kPrime returns k' = k/(c(1−c)), the relaxation rate of the height
// difference. Only meaningful for c < 1.
func (p Params) kPrime() float64 {
	return p.K / (p.C * (1 - p.C))
}

// twoWell reports whether both wells are active (c < 1 and k > 0 makes
// the bound well reachable; c < 1 with k = 0 still stores charge there,
// it just never flows).
func (p Params) twoWell() bool { return p.C < 1 }

// State is the instantaneous charge content of the two wells, in
// ampere-seconds.
type State struct {
	Y1 float64 // available charge
	Y2 float64 // bound charge
}

// Total returns the total remaining charge.
func (s State) Total() float64 { return s.Y1 + s.Y2 }

// Empty reports whether the available-charge well is exhausted, the
// paper's definition of an empty battery (equation 4).
func (s State) Empty() bool { return s.Y1 <= 0 }

// FullState returns the state of a freshly charged battery:
// y1 = c·C, y2 = (1−c)·C.
func (p Params) FullState() State {
	return State{Y1: p.C * p.Capacity, Y2: (1 - p.C) * p.Capacity}
}

// HeightDiff returns h2 − h1 for the given state.
func (p Params) HeightDiff(s State) float64 {
	if !p.twoWell() {
		return 0
	}
	return s.Y2/(1-p.C) - s.Y1/p.C
}

// Step advances the battery exactly under constant current for dt
// seconds and returns the new state. The available well is not clamped
// at zero — callers interested in depletion must call Depletion first;
// this keeps Step a pure evaluation of the closed form. The bound well
// is clamped at zero (transfer stops when no bound charge is left).
func (p Params) Step(s State, current, dt float64) State {
	if dt == 0 {
		return s
	}
	if !p.twoWell() || p.K == 0 {
		return State{Y1: s.Y1 - current*dt, Y2: s.Y2}
	}
	// Transfer only flows downhill from the bound well (the paper's
	// reward rates vanish unless h2 > h1 > 0 — no flow when the bound
	// well is the lower one; we also stop flow when the bound well is
	// exhausted).
	delta0 := p.HeightDiff(s)
	if s.Y2 <= 0 || (delta0 <= 0 && current <= 0) {
		return State{Y1: s.Y1 - current*dt, Y2: s.Y2}
	}
	if delta0 < 0 {
		// The available well is the higher one (possible only from
		// custom initial states): no flow until the load drains h1 down
		// to h2, at tc = (h1 − h2)·c/I; then the closed form applies
		// with equal heights.
		tc := -delta0 * p.C / current
		if dt <= tc {
			return State{Y1: s.Y1 - current*dt, Y2: s.Y2}
		}
		s = State{Y1: s.Y1 - current*tc, Y2: s.Y2}
		dt -= tc
	}
	y1, y2 := p.evalClosedForm(s, current, dt)
	if y2 < 0 {
		// The bound well ran dry mid-segment: find the crossing and
		// continue with transfer switched off.
		tc := p.bisect(dt, func(t float64) float64 {
			_, v2 := p.evalClosedForm(s, current, t)
			return v2
		})
		y1c, _ := p.evalClosedForm(s, current, tc)
		return State{Y1: y1c - current*(dt-tc), Y2: 0}
	}
	return State{Y1: y1, Y2: y2}
}

// evalClosedForm evaluates the constant-current solution at time t
// without boundary handling. Requires the two-well regime.
func (p Params) evalClosedForm(s State, current, t float64) (y1, y2 float64) {
	kp := p.kPrime()
	delta0 := p.HeightDiff(s)
	deltaInf := current * (1 - p.C) / p.K
	e := math.Exp(-kp * t)
	// ∫0^t δ(s) ds with δ(t) = δ∞ + (δ0−δ∞)e^{−k't}.
	integral := deltaInf*t + (delta0-deltaInf)*(1-e)/kp
	y2 = s.Y2 - p.K*integral
	y1 = s.Y1 - current*t + p.K*integral
	return y1, y2
}

// Depletion returns the first time in (0, dt] at which the available
// well reaches zero under constant current, and true; or 0, false if the
// battery survives the whole segment. The state must not be empty.
func (p Params) Depletion(s State, current, dt float64) (float64, bool) {
	if s.Y1 <= 0 {
		return 0, true
	}
	if !p.twoWell() || p.K == 0 || s.Y2 <= 0 {
		if current <= 0 {
			return 0, false
		}
		t := s.Y1 / current
		if t <= dt {
			return t, true
		}
		return 0, false
	}
	if current <= 0 {
		// Pure recovery: y1 only grows (δ0 ≥ 0 enforced by Step's flow
		// gating; with δ0 < 0 nothing flows and y1 is constant).
		return 0, false
	}
	if math.IsInf(dt, 1) {
		// A positive constant load always depletes the battery within
		// Total/I seconds (all charge drawn); cap the search window.
		dt = s.Total()/current + 1
	}
	if d0 := p.HeightDiff(s); d0 < 0 {
		// No-flow phase while the available well is the higher one;
		// the drain is linear until the heights meet.
		tc := -d0 * p.C / current
		linearEnd := math.Min(tc, dt)
		if t := s.Y1 / current; t <= linearEnd {
			return t, true
		}
		if dt <= tc {
			return 0, false
		}
		rest, ok := p.Depletion(State{Y1: s.Y1 - current*tc, Y2: s.Y2}, current, dt-tc)
		if !ok {
			return 0, false
		}
		return tc + rest, true
	}
	// The closed form is only valid while the bound well holds charge;
	// find the (rare) time tc at which it runs dry within this segment.
	tc := dt
	if _, y2End := p.evalClosedForm(s, current, dt); y2End < 0 {
		tc = p.bisect(dt, func(t float64) float64 {
			_, v2 := p.evalClosedForm(s, current, t)
			return v2
		})
	}
	// Within [0, tc]: y1 rises while k·δ(t) > I and falls afterwards;
	// δ(t) is monotone, so y1 has at most one local maximum at t*.
	kp := p.kPrime()
	delta0 := p.HeightDiff(s)
	deltaInf := current * (1 - p.C) / p.K
	crossing := current / p.K // δ∞ = (1−c)·I/k < I/k, so t* always exists
	tStar := 0.0
	if delta0 > crossing {
		// δ(t*) = I/k: e^{−k' t*} = (I/k − δ∞)/(δ0 − δ∞).
		tStar = -math.Log((crossing-deltaInf)/(delta0-deltaInf)) / kp
	}
	if tStar < tc {
		if y1End, _ := p.evalClosedForm(s, current, tc); y1End <= 0 {
			// Bisect on the decreasing branch [t*, tc].
			lo, hi := tStar, tc
			for i := 0; i < 200; i++ {
				mid := (lo + hi) / 2
				y1m, _ := p.evalClosedForm(s, current, mid)
				if y1m > 0 {
					lo = mid
				} else {
					hi = mid
				}
				if hi-lo < 1e-12*(1+hi) {
					break
				}
			}
			return (lo + hi) / 2, true
		}
	}
	if tc >= dt {
		return 0, false
	}
	// Bound well dry at tc with y1 still positive: the rest of the
	// segment drains linearly.
	y1c, _ := p.evalClosedForm(s, current, tc)
	if t := tc + y1c/current; t <= dt {
		return t, true
	}
	return 0, false
}

// bisect finds a zero of f in (0, dt] assuming f(0) > 0 ≥ f(dt).
func (p Params) bisect(dt float64, f func(float64) float64) float64 {
	lo, hi := 0.0, dt
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
