package kibam

import (
	"fmt"
	"math"
)

// Segment is one piece of a piecewise-constant load profile.
type Segment struct {
	// Current is the load in ampere (non-negative; zero models an idle
	// or sleeping device during which the battery recovers).
	Current float64
	// Duration is the segment length in seconds.
	Duration float64
}

// Profile produces consecutive load segments. Implementations may be
// infinite (periodic workloads); evaluation stops at depletion.
type Profile interface {
	// Segment returns the i-th load segment, starting from 0.
	Segment(i int) Segment
}

// ConstantLoad is a Profile drawing a fixed current forever.
type ConstantLoad float64

// Segment implements Profile.
func (c ConstantLoad) Segment(int) Segment {
	return Segment{Current: float64(c), Duration: math.Inf(1)}
}

// SquareWave is the on/off Profile used throughout the paper's
// experiments: current On for the first half of each period, zero for
// the second half.
type SquareWave struct {
	// On is the load current during the on phase, in ampere.
	On float64
	// Frequency is the wave frequency in hertz.
	Frequency float64
	// Duty is the fraction of each period spent on; zero selects 0.5,
	// the paper's choice.
	Duty float64
}

// Segment implements Profile.
func (w SquareWave) Segment(i int) Segment {
	duty := w.Duty
	if duty == 0 {
		duty = 0.5
	}
	period := 1 / w.Frequency
	if i%2 == 0 {
		return Segment{Current: w.On, Duration: duty * period}
	}
	return Segment{Current: 0, Duration: (1 - duty) * period}
}

// SegmentList is a finite Profile; past its end the load is zero.
type SegmentList []Segment

// Segment implements Profile.
func (l SegmentList) Segment(i int) Segment {
	if i < len(l) {
		return l[i]
	}
	return Segment{Current: 0, Duration: math.Inf(1)}
}

// Lifetime evaluates the battery under the profile from the full state
// and returns the time at which the available charge first reaches zero.
// It returns an error if the profile never depletes the battery (e.g. a
// zero load), detected by a bound on the total charge drawn.
func (p Params) Lifetime(profile Profile) (float64, error) {
	return p.LifetimeFrom(p.FullState(), profile)
}

// LifetimeFrom is Lifetime starting from an arbitrary state.
func (p Params) LifetimeFrom(s State, profile Profile) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if s.Empty() {
		return 0, nil
	}
	elapsed := 0.0
	drawn := 0.0
	for i := 0; ; i++ {
		seg := profile.Segment(i)
		if seg.Current < 0 || seg.Duration <= 0 || math.IsNaN(seg.Current) || math.IsNaN(seg.Duration) {
			return 0, fmt.Errorf("%w: segment %d has current %v, duration %v",
				ErrBadProfile, i, seg.Current, seg.Duration)
		}
		if t, ok := p.Depletion(s, seg.Current, seg.Duration); ok {
			return elapsed + t, nil
		}
		if math.IsInf(seg.Duration, 1) {
			return 0, fmt.Errorf("%w: infinite segment %d with current %v never depletes the battery",
				ErrBadProfile, i, seg.Current)
		}
		s = p.Step(s, seg.Current, seg.Duration)
		elapsed += seg.Duration
		drawn += seg.Current * seg.Duration
		if drawn > 2*p.Capacity {
			return 0, fmt.Errorf("%w: drew %v As without depleting a %v As battery",
				ErrBadProfile, drawn, p.Capacity)
		}
	}
}

// TracePoint is one sample of a charge evolution trace.
type TracePoint struct {
	T  float64 // time in seconds
	Y1 float64 // available charge in ampere-seconds
	Y2 float64 // bound charge in ampere-seconds
}

// Trace samples the well contents under the profile every interval
// seconds, from the full state until the battery empties (the final
// point is the exact depletion instant) or until maxTime. This is the
// computation behind Figure 2.
func (p Params) Trace(profile Profile, interval, maxTime float64) ([]TracePoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 || maxTime <= 0 {
		return nil, fmt.Errorf("%w: interval %v, maxTime %v", ErrBadProfile, interval, maxTime)
	}
	s := p.FullState()
	points := []TracePoint{{T: 0, Y1: s.Y1, Y2: s.Y2}}
	elapsed := 0.0
	nextSample := interval
	segIdx := 0
	seg := profile.Segment(0)
	segLeft := seg.Duration
	for elapsed < maxTime {
		// Advance to the next event: sample instant or segment end.
		dt := math.Min(nextSample-elapsed, segLeft)
		dt = math.Min(dt, maxTime-elapsed)
		if t, ok := p.Depletion(s, seg.Current, dt); ok {
			s = p.Step(s, seg.Current, t)
			points = append(points, TracePoint{T: elapsed + t, Y1: 0, Y2: s.Y2})
			return points, nil
		}
		s = p.Step(s, seg.Current, dt)
		elapsed += dt
		segLeft -= dt
		if elapsed >= nextSample-1e-12 {
			points = append(points, TracePoint{T: elapsed, Y1: math.Max(s.Y1, 0), Y2: s.Y2})
			nextSample += interval
		}
		if segLeft <= 1e-12 {
			segIdx++
			seg = profile.Segment(segIdx)
			segLeft = seg.Duration
		}
	}
	return points, nil
}

// CalibrateK finds the flow constant k for which the battery's lifetime
// under the given constant load matches target (in seconds). This is the
// procedure the paper uses to fit k to the experimental data of Rao et
// al. Lifetime is strictly increasing in k, so bisection applies.
func CalibrateK(capacity, c, load, target float64) (float64, error) {
	base := Params{Capacity: capacity, C: c, K: 0}
	if err := base.Validate(); err != nil {
		return 0, err
	}
	if load <= 0 || target <= 0 {
		return 0, fmt.Errorf("%w: load %v, target %v", ErrBadParams, load, target)
	}
	lifeAt := func(k float64) (float64, error) {
		p := Params{Capacity: capacity, C: c, K: k}
		return p.Lifetime(ConstantLoad(load))
	}
	minLife, err := lifeAt(0)
	if err != nil {
		return 0, err
	}
	if target < minLife {
		return 0, fmt.Errorf("%w: target %v s below the zero-transfer lifetime %v s",
			ErrBadParams, target, minLife)
	}
	maxLife := capacity / load // all charge delivered
	if target >= maxLife {
		return 0, fmt.Errorf("%w: target %v s not reachable; ideal lifetime is %v s",
			ErrBadParams, target, maxLife)
	}
	// Bracket k from above.
	hi := 1e-6
	for {
		l, err := lifeAt(hi)
		if err != nil {
			return 0, err
		}
		if l >= target {
			break
		}
		hi *= 2
		if hi > 1e6 {
			return 0, fmt.Errorf("%w: cannot bracket k for target %v s", ErrBadParams, target)
		}
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		l, err := lifeAt(mid)
		if err != nil {
			return 0, err
		}
		if l < target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-15*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// DeliveredCharge returns the total charge drawn from the battery when
// it is discharged to empty under the profile: the integral of the load
// over the lifetime. For very small loads it approaches Capacity; for
// large loads it approaches c·Capacity. The quotient of these extremes
// is how the paper's Section 3 determines c from measurements.
func (p Params) DeliveredCharge(profile Profile) (float64, error) {
	life, err := p.Lifetime(profile)
	if err != nil {
		return 0, err
	}
	delivered := 0.0
	elapsed := 0.0
	for i := 0; elapsed < life; i++ {
		seg := profile.Segment(i)
		dt := math.Min(seg.Duration, life-elapsed)
		delivered += seg.Current * dt
		elapsed += dt
	}
	return delivered, nil
}
