package kibam

import (
	"errors"
	"math"
	"testing"
)

func TestTraceFigure2Shape(t *testing.T) {
	// Figure 2: square wave with f = 0.001 Hz (500 s on, 500 s off) at
	// 0.96 A on the paper battery. The trace starts at (4500, 2700),
	// y1 falls during on-phases and rises during off-phases, y2 is
	// non-increasing throughout, and the battery dies shortly after
	// 12000 s (the analytic lifetime is ~202 min = 12120 s).
	points, err := paperParams.Trace(SquareWave{On: 0.96, Frequency: 0.001}, 100, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Y1 != 4500 || points[0].Y2 != 2700 {
		t.Fatalf("trace starts at (%v, %v)", points[0].Y1, points[0].Y2)
	}
	last := points[len(points)-1]
	if last.Y1 > 1e-6 {
		t.Errorf("final trace point y1 = %v, want depletion", last.Y1)
	}
	if math.Abs(last.T-12120) > 60 {
		t.Errorf("depletion at %v s, want about 12120 s", last.T)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Y2 > points[i-1].Y2+1e-9 {
			t.Fatalf("y2 increased between %v and %v s", points[i-1].T, points[i].T)
		}
		if points[i].Y1 < -1e-9 {
			t.Fatalf("negative y1 at %v s", points[i].T)
		}
	}
	// Verify the alternating rise/fall of y1 at phase granularity:
	// sample points land every 100 s, phases last 500 s.
	inOn := func(tm float64) bool { return math.Mod(tm, 1000) < 500 }
	for i := 1; i < len(points)-1; i++ {
		prev, cur := points[i-1], points[i]
		if cur.T-prev.T < 99 { // skip the irregular final point
			continue
		}
		mid := (prev.T + cur.T) / 2
		if inOn(prev.T) && inOn(mid) && inOn(cur.T-1) {
			if cur.Y1 >= prev.Y1 {
				t.Fatalf("y1 rose during on-phase: %v at %v -> %v at %v", prev.Y1, prev.T, cur.Y1, cur.T)
			}
		}
		if !inOn(prev.T) && !inOn(mid) && !inOn(cur.T-1) && cur.Y2 > 1e-9 {
			if cur.Y1 <= prev.Y1 {
				t.Fatalf("y1 fell during off-phase: %v at %v -> %v at %v", prev.Y1, prev.T, cur.Y1, cur.T)
			}
		}
	}
}

func TestTraceRespectsMaxTime(t *testing.T) {
	points, err := paperParams.Trace(SquareWave{On: 0.01, Frequency: 0.001}, 500, 5000)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if last.T > 5000+1e-9 {
		t.Errorf("trace ran to %v, want cap at 5000", last.T)
	}
	if len(points) != 11 { // t = 0, 500, ..., 5000
		t.Errorf("got %d points, want 11", len(points))
	}
}

func TestTraceBadArgs(t *testing.T) {
	if _, err := paperParams.Trace(ConstantLoad(1), 0, 100); !errors.Is(err, ErrBadProfile) {
		t.Errorf("zero interval: err = %v", err)
	}
	if _, err := paperParams.Trace(ConstantLoad(1), 10, -1); !errors.Is(err, ErrBadProfile) {
		t.Errorf("negative maxTime: err = %v", err)
	}
	bad := Params{Capacity: -1, C: 0.5, K: 0}
	if _, err := bad.Trace(ConstantLoad(1), 10, 100); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad params: err = %v", err)
	}
}

func TestCalibrateKRoundTrip(t *testing.T) {
	life, err := paperParams.Lifetime(ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	k, err := CalibrateK(paperParams.Capacity, paperParams.C, 0.96, life)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-paperParams.K) > 1e-9 {
		t.Errorf("recovered k = %v, want %v", k, paperParams.K)
	}
}

func TestCalibrateKPaperProcedure(t *testing.T) {
	// The paper sets k so that the continuous-load lifetime matches the
	// experimental 90 minutes. The result must be in the right decade
	// (the paper uses 4.5e-5 after rounding) and reproduce the target.
	k, err := CalibrateK(7200, 0.625, 0.96, 90*60)
	if err != nil {
		t.Fatal(err)
	}
	if k < 1e-5 || k > 1e-4 {
		t.Errorf("calibrated k = %v, expected order 1e-5", k)
	}
	p := Params{Capacity: 7200, C: 0.625, K: k}
	life, err := p.Lifetime(ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(life-90*60) > 1 {
		t.Errorf("lifetime with calibrated k = %v s, want 5400", life)
	}
}

func TestCalibrateKUnreachableTargets(t *testing.T) {
	// Below the zero-transfer lifetime.
	if _, err := CalibrateK(7200, 0.625, 0.96, 1000); !errors.Is(err, ErrBadParams) {
		t.Errorf("low target: err = %v", err)
	}
	// Above the ideal lifetime C/I.
	if _, err := CalibrateK(7200, 0.625, 0.96, 8000); !errors.Is(err, ErrBadParams) {
		t.Errorf("high target: err = %v", err)
	}
	if _, err := CalibrateK(7200, 0.625, -1, 5400); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad load: err = %v", err)
	}
}

func TestDeliveredChargeExtremes(t *testing.T) {
	// Section 3: c is the quotient of the capacity delivered under very
	// large and very small loads.
	big, err := paperParams.DeliveredCharge(ConstantLoad(50))
	if err != nil {
		t.Fatal(err)
	}
	small, err := paperParams.DeliveredCharge(ConstantLoad(0.001))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := big / small; math.Abs(ratio-paperParams.C) > 0.02 {
		t.Errorf("delivered-charge ratio = %v, want c = %v", ratio, paperParams.C)
	}
	if small > paperParams.Capacity || small < 0.99*paperParams.Capacity {
		t.Errorf("small-load delivery = %v, want ≈ C = %v", small, paperParams.Capacity)
	}
}

func TestDeliveredChargeSquareWave(t *testing.T) {
	// Intermittent discharge delivers more charge than continuous at
	// the same current.
	cont, err := paperParams.DeliveredCharge(ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	square, err := paperParams.DeliveredCharge(SquareWave{On: 0.96, Frequency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if square <= cont {
		t.Errorf("square-wave delivery %v not above continuous %v", square, cont)
	}
	if square > paperParams.Capacity+1e-6 {
		t.Errorf("delivered %v exceeds capacity %v", square, paperParams.Capacity)
	}
}

func TestConstantLoadSegment(t *testing.T) {
	seg := ConstantLoad(0.96).Segment(17)
	if seg.Current != 0.96 || !math.IsInf(seg.Duration, 1) {
		t.Errorf("segment = %+v", seg)
	}
}

func BenchmarkLifetimeContinuous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperParams.Lifetime(ConstantLoad(0.96)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLifetimeSquareWave1Hz(b *testing.B) {
	// ~24000 segments per evaluation at 1 Hz.
	for i := 0; i < b.N; i++ {
		if _, err := paperParams.Lifetime(SquareWave{On: 0.96, Frequency: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paperParams.Trace(SquareWave{On: 0.96, Frequency: 0.001}, 100, 20000); err != nil {
			b.Fatal(err)
		}
	}
}
