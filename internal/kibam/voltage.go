package kibam

import (
	"fmt"
	"math"
)

// VoltageParams models the terminal voltage of a KiBaM battery in the
// form of Manwell and McGowan's original model: an open-circuit EMF
// that sags as charge is removed, minus the ohmic drop over the
// internal resistance,
//
//	V = E0 + A·X + CV·X/(D − X) − I·R0,
//
// where X ∈ [0, 1) is the fraction of the capacity already discharged.
// The paper's Section 2 describes exactly this behaviour ("the voltage
// drops during discharge"); the distribution algorithms track charge
// only, so the voltage model is an output layer: it converts charge
// states to voltages and supports cut-off–voltage lifetimes, the
// criterion real devices switch off at.
type VoltageParams struct {
	// E0 is the open-circuit voltage of the full battery, in volt.
	E0 float64
	// A is the linear EMF slope against discharged fraction (≤ 0 for
	// real cells), in volt.
	A float64
	// CV is the coefficient of the rational sag term (≤ 0), in volt.
	CV float64
	// D is the normalised exhaustion knee (> 1): the sag term blows up
	// as X approaches D.
	D float64
	// R0 is the internal resistance in ohm.
	R0 float64
}

// Validate reports whether the voltage constants are usable.
func (vp VoltageParams) Validate() error {
	for _, v := range []float64{vp.E0, vp.A, vp.CV, vp.D, vp.R0} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite voltage constant", ErrBadParams)
		}
	}
	if vp.E0 <= 0 {
		return fmt.Errorf("%w: E0 = %v", ErrBadParams, vp.E0)
	}
	if vp.A > 0 || vp.CV > 0 {
		return fmt.Errorf("%w: EMF slopes must be non-positive (A=%v, CV=%v)", ErrBadParams, vp.A, vp.CV)
	}
	if vp.D <= 1 {
		return fmt.Errorf("%w: exhaustion knee D = %v must exceed 1", ErrBadParams, vp.D)
	}
	if vp.R0 < 0 {
		return fmt.Errorf("%w: internal resistance %v", ErrBadParams, vp.R0)
	}
	return nil
}

// TypicalLiIon returns voltage constants resembling a single Li-ion
// cell: 4.2 V full, ~3.0 V near exhaustion under moderate load.
func TypicalLiIon() VoltageParams {
	return VoltageParams{E0: 4.2, A: -0.6, CV: -0.08, D: 1.08, R0: 0.15}
}

// Terminal returns the terminal voltage of the battery in state s under
// load current (ampere).
func (p Params) Terminal(vp VoltageParams, s State, current float64) float64 {
	x := p.dischargedFraction(s)
	return vp.E0 + vp.A*x + vp.CV*x/(vp.D-x) - current*vp.R0
}

// dischargedFraction returns X, clamped to [0, 1].
func (p Params) dischargedFraction(s State) float64 {
	x := (p.Capacity - s.Total()) / p.Capacity
	return math.Min(1, math.Max(0, x))
}

// CutoffResult describes how a cut-off–voltage evaluation ended.
type CutoffResult struct {
	// Lifetime is the first time the battery became unusable, seconds.
	Lifetime float64
	// VoltageLimited is true when the terminal voltage crossed the
	// cut-off first; false when the available charge ran out first.
	VoltageLimited bool
}

// LifetimeToCutoff evaluates the battery under the profile until either
// the terminal voltage drops below cutoff volts during a load segment
// or the available charge empties, whichever happens first. Within a
// constant-current segment the discharged fraction grows monotonically,
// so the voltage decreases monotonically and the crossing is found by
// bisection.
func (p Params) LifetimeToCutoff(vp VoltageParams, profile Profile, cutoff float64) (CutoffResult, error) {
	if err := p.Validate(); err != nil {
		return CutoffResult{}, err
	}
	if err := vp.Validate(); err != nil {
		return CutoffResult{}, err
	}
	if cutoff <= 0 || cutoff >= vp.E0 {
		return CutoffResult{}, fmt.Errorf("%w: cutoff %v outside (0, E0)", ErrBadParams, cutoff)
	}
	s := p.FullState()
	elapsed := 0.0
	drawn := 0.0
	for i := 0; ; i++ {
		seg := profile.Segment(i)
		if seg.Current < 0 || seg.Duration <= 0 || math.IsNaN(seg.Current) || math.IsNaN(seg.Duration) {
			return CutoffResult{}, fmt.Errorf("%w: segment %d has current %v, duration %v",
				ErrBadProfile, i, seg.Current, seg.Duration)
		}
		dur := seg.Duration
		if math.IsInf(dur, 1) {
			if seg.Current <= 0 {
				return CutoffResult{}, fmt.Errorf("%w: infinite idle segment %d never ends the battery",
					ErrBadProfile, i)
			}
			dur = s.Total()/seg.Current + 1
		}
		// Voltage crossing inside this segment?
		if seg.Current > 0 && p.Terminal(vp, s, seg.Current) >= cutoff {
			// Depletion bounds the bisection window.
			end := dur
			if tdep, ok := p.Depletion(s, seg.Current, dur); ok {
				end = tdep
			}
			vEnd := p.Terminal(vp, p.Step(s, seg.Current, end), seg.Current)
			if vEnd < cutoff {
				lo, hi := 0.0, end
				for iter := 0; iter < 100; iter++ {
					mid := (lo + hi) / 2
					if p.Terminal(vp, p.Step(s, seg.Current, mid), seg.Current) >= cutoff {
						lo = mid
					} else {
						hi = mid
					}
				}
				return CutoffResult{Lifetime: elapsed + (lo+hi)/2, VoltageLimited: true}, nil
			}
		} else if seg.Current > 0 {
			// Already below cutoff at the segment start.
			return CutoffResult{Lifetime: elapsed, VoltageLimited: true}, nil
		}
		// Charge depletion inside this segment?
		if t, ok := p.Depletion(s, seg.Current, dur); ok {
			return CutoffResult{Lifetime: elapsed + t, VoltageLimited: false}, nil
		}
		s = p.Step(s, seg.Current, dur)
		elapsed += dur
		drawn += seg.Current * dur
		if drawn > 2*p.Capacity {
			return CutoffResult{}, fmt.Errorf("%w: drew %v As without ending a %v As battery",
				ErrBadProfile, drawn, p.Capacity)
		}
	}
}
