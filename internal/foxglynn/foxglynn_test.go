package foxglynn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestZeroLambda(t *testing.T) {
	w, err := Compute(0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if w.Left != 0 || w.Right != 0 || w.At(0) != 1 {
		t.Errorf("Compute(0) = [%d,%d] At(0)=%v, want point mass at 0", w.Left, w.Right, w.At(0))
	}
	if w.At(1) != 0 || w.At(-1) != 0 {
		t.Errorf("weights outside window must be 0")
	}
}

func TestRejectsBadLambda(t *testing.T) {
	for _, lam := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := Compute(lam, 1e-10); !errors.Is(err, ErrBadLambda) {
			t.Errorf("Compute(%v): err = %v, want ErrBadLambda", lam, err)
		}
	}
}

func TestMatchesExactPMFSmall(t *testing.T) {
	// For small lambda compare directly against exp(LogPMF).
	for _, lambda := range []float64{0.1, 1, 2.5, 10, 30} {
		w, err := Compute(lambda, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		for n := w.Left; n <= w.Right; n++ {
			exact := math.Exp(LogPMF(n, lambda))
			if math.Abs(w.At(n)-exact) > 1e-10 {
				t.Errorf("lambda=%v n=%d: weight %v, exact %v", lambda, n, w.At(n), exact)
			}
		}
	}
}

func TestMassIsOne(t *testing.T) {
	for _, lambda := range []float64{0.01, 1, 100, 5000, 48000} {
		w, err := Compute(lambda, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if m := w.Mass(); math.Abs(m-1) > 1e-12 {
			t.Errorf("lambda=%v: mass = %v, want 1", lambda, m)
		}
	}
}

func TestWindowCoversBulk(t *testing.T) {
	// The window must contain the mode and extend several standard
	// deviations either side.
	for _, lambda := range []float64{10, 1000, 48000} {
		w, err := Compute(lambda, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		mode := int(lambda)
		if w.Left > mode || w.Right < mode {
			t.Fatalf("lambda=%v: window [%d,%d] misses mode %d", lambda, w.Left, w.Right, mode)
		}
		sd := math.Sqrt(lambda)
		if float64(w.Right-w.Left) < 6*sd {
			t.Errorf("lambda=%v: window width %d < 6 standard deviations %v",
				lambda, w.Right-w.Left, 6*sd)
		}
	}
}

func TestTailMassBelowEps(t *testing.T) {
	// Discarded mass = 1 - sum of exact pmf over window.
	for _, tc := range []struct{ lambda, eps float64 }{
		{5, 1e-6}, {200, 1e-8}, {10000, 1e-10},
	} {
		w, err := Compute(tc.lambda, tc.eps)
		if err != nil {
			t.Fatal(err)
		}
		exact := 0.0
		for n := w.Left; n <= w.Right; n++ {
			exact += math.Exp(LogPMF(n, tc.lambda))
		}
		if tail := 1 - exact; tail > tc.eps {
			t.Errorf("lambda=%v eps=%v: discarded tail %v", tc.lambda, tc.eps, tail)
		}
	}
}

func TestMeanAndVarianceProperty(t *testing.T) {
	// The truncated distribution's mean and variance must approximate
	// lambda for any valid rate.
	f := func(raw float64) bool {
		lambda := math.Abs(math.Mod(raw, 3000)) + 0.5
		w, err := Compute(lambda, 1e-13)
		if err != nil {
			return false
		}
		mean, second := 0.0, 0.0
		for n := w.Left; n <= w.Right; n++ {
			p := w.At(n)
			mean += float64(n) * p
			second += float64(n) * float64(n) * p
		}
		variance := second - mean*mean
		return math.Abs(mean-lambda) < 1e-6*(1+lambda) &&
			math.Abs(variance-lambda) < 1e-4*(1+lambda)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDefaultEpsilon(t *testing.T) {
	// eps <= 0 and eps >= 1 fall back to a sane default rather than
	// failing or producing an empty window.
	for _, eps := range []float64{0, -3, 1, 7} {
		w, err := Compute(50, eps)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.Mass()-1) > 1e-12 {
			t.Errorf("eps=%v: mass %v", eps, w.Mass())
		}
	}
}

func TestLogPMFAgainstRecursion(t *testing.T) {
	// pmf(n+1)/pmf(n) = lambda/(n+1) must hold for LogPMF.
	lambda := 37.5
	for n := 0; n < 200; n++ {
		ratio := math.Exp(LogPMF(n+1, lambda) - LogPMF(n, lambda))
		want := lambda / float64(n+1)
		if math.Abs(ratio-want) > 1e-9*want {
			t.Fatalf("n=%d: ratio %v, want %v", n, ratio, want)
		}
	}
}

func BenchmarkComputeSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compute(100, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputePaperScale(b *testing.B) {
	// q·t ≈ 4.6e4 is the largest uniformisation rate reported in §6.1.
	for i := 0; i < b.N; i++ {
		if _, err := Compute(46000, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}
