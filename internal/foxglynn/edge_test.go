package foxglynn

import (
	"errors"
	"math"
	"testing"
)

func assertFiniteWeights(t *testing.T, w *Weights) {
	t.Helper()
	if w.Left < 0 || w.Right < w.Left {
		t.Fatalf("bad window [%d, %d]", w.Left, w.Right)
	}
	if len(w.Prob) != w.Right-w.Left+1 {
		t.Fatalf("window [%d,%d] but %d weights", w.Left, w.Right, len(w.Prob))
	}
	for i, p := range w.Prob {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			t.Fatalf("weight %d (n=%d) is %v", i, w.Left+i, p)
		}
	}
	if mass := w.Mass(); math.Abs(mass-1) > 1e-9 {
		t.Fatalf("mass %v, want 1", mass)
	}
}

// TestComputeTinyLambda drives qt down to the smallest positive
// float64s. The weights must stay finite and normalised — underflow in
// the recursion would silently zero the whole transient solution.
func TestComputeTinyLambda(t *testing.T) {
	for _, lambda := range []float64{1e-300, 5e-324, 1e-15, 1e-6} {
		w, err := Compute(lambda, 1e-12)
		if err != nil {
			t.Fatalf("Compute(%v): %v", lambda, err)
		}
		assertFiniteWeights(t, w)
		// Nearly all mass sits at n=0 for vanishing lambda.
		if p0 := w.At(0); p0 < 0.999 {
			t.Fatalf("Compute(%v): weight at 0 is %v, want ≈1", lambda, p0)
		}
	}
}

// TestComputeHugeLambda covers the paper's largest windows (q·t ≈
// 4.6·10⁴) and an order-of-magnitude beyond. The naive pmf overflows
// above λ ≈ 700, so finite normalised output here certifies the
// mode-relative recursion.
func TestComputeHugeLambda(t *testing.T) {
	for _, lambda := range []float64{4.6e4, 1e6, 1e7} {
		w, err := Compute(lambda, 1e-12)
		if err != nil {
			t.Fatalf("Compute(%v): %v", lambda, err)
		}
		assertFiniteWeights(t, w)
		mode := int(math.Floor(lambda))
		if mode < w.Left || mode > w.Right {
			t.Fatalf("Compute(%v): mode %d outside window [%d,%d]", lambda, mode, w.Left, w.Right)
		}
		// The window is O(sqrt(lambda)) wide, not O(lambda).
		if width := float64(w.Right - w.Left + 1); width > 60*math.Sqrt(lambda) {
			t.Fatalf("Compute(%v): window width %v disproportionate to sqrt(lambda)", lambda, width)
		}
	}
}

// TestComputeRejectsNonFinite pins the explicit-error contract for NaN,
// ±Inf, and negative rates.
func TestComputeRejectsNonFinite(t *testing.T) {
	for _, lambda := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, -1e-300} {
		w, err := Compute(lambda, 1e-12)
		if !errors.Is(err, ErrBadLambda) {
			t.Fatalf("Compute(%v) = %v, %v; want ErrBadLambda", lambda, w, err)
		}
	}
}

// TestLogPMFFinite guards the anchor helper at the extremes used above.
func TestLogPMFFinite(t *testing.T) {
	for _, lambda := range []float64{1e-300, 1, 4.6e4, 1e7} {
		n := int(math.Floor(lambda))
		lp := LogPMF(n, lambda)
		if math.IsNaN(lp) || lp > 0 {
			t.Fatalf("LogPMF(%d, %v) = %v", n, lambda, lp)
		}
	}
}
