// Package foxglynn computes truncated, normalised Poisson probability
// weights for uniformisation, in the style of Fox and Glynn's algorithm
// (CACM 1988).
//
// Uniformisation expresses the transient solution of a CTMC as
//
//	π(t) = Σ_{n=0}^∞ ψ(n; q·t) · α·P^n,
//
// where ψ(n; λ) is the Poisson(λ) probability mass function. The series
// is truncated to a window [Left, Right] whose discarded tail mass is at
// most a caller-chosen ε. Weights are computed by the classic recursion
// outward from the Poisson mode — where the pmf is largest — with the
// anchor value obtained in log space, so the computation neither
// underflows nor overflows even for λ in the tens of thousands (the
// paper's experiments reach q·t ≈ 4.6·10⁴).
package foxglynn

import (
	"errors"
	"fmt"
	"math"

	"batlife/internal/check"
)

// ErrBadLambda reports a non-finite or negative rate.
var ErrBadLambda = errors.New("foxglynn: lambda must be finite and non-negative")

// Weights holds the truncated, normalised Poisson distribution.
type Weights struct {
	// Left and Right delimit the inclusive truncation window.
	Left, Right int
	// Prob[i] is the normalised Poisson probability of n = Left + i.
	Prob []float64
}

// At returns the weight of n, or zero outside the window.
func (w *Weights) At(n int) float64 {
	if n < w.Left || n > w.Right {
		return 0
	}
	return w.Prob[n-w.Left]
}

// Mass returns the total weight inside the window (1 up to rounding,
// because the window is renormalised).
func (w *Weights) Mass() float64 {
	sum := 0.0
	for _, p := range w.Prob {
		sum += p
	}
	return sum
}

// Compute returns Poisson(lambda) weights whose truncated tail mass is
// at most eps. eps must be in (0, 1); values <= 0 default to 1e-12.
func Compute(lambda, eps float64) (*Weights, error) {
	if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 {
		return nil, fmt.Errorf("%w: %v", ErrBadLambda, lambda)
	}
	if eps <= 0 || eps >= 1 {
		eps = 1e-12
	}
	if lambda == 0 {
		return &Weights{Left: 0, Right: 0, Prob: []float64{1}}, nil
	}

	mode := int(math.Floor(lambda))
	// Unnormalised weights relative to the mode. The pmf decays at
	// least geometrically a few standard deviations away from the mode,
	// so scanning outward until the relative weight falls below
	// eps/(window guess) terminates quickly.
	cut := eps / (8 * (math.Sqrt(lambda) + 10))

	// Scan downward from the mode.
	down := []float64{1}
	v := 1.0
	for n := mode; n > 0; n-- {
		v *= float64(n) / lambda
		if v < cut {
			break
		}
		down = append(down, v)
	}
	left := mode - (len(down) - 1)

	// Scan upward from the mode.
	var up []float64
	v = 1.0
	for n := mode + 1; ; n++ {
		v *= lambda / float64(n)
		if v < cut {
			break
		}
		up = append(up, v)
	}
	right := mode + len(up)

	prob := make([]float64, right-left+1)
	for i, d := range down {
		prob[mode-left-i] = d
	}
	for i, u := range up {
		prob[mode-left+1+i] = u
	}

	prob = normalize(prob)
	return &Weights{Left: left, Right: right, Prob: prob}, nil
}

// normalize scales the relative weights into a probability vector.
// Summing relative weights and dividing is numerically equivalent to
// Fox–Glynn's W-scaling and avoids computing the absolute pmf anywhere
// except implicitly.
//
//numlint:ensures normalized
func normalize(prob []float64) []float64 {
	sum := 0.0
	for _, p := range prob {
		sum += p
	}
	inv := 1 / sum
	for i := range prob {
		prob[i] *= inv
	}
	check.Probabilities("foxglynn.Compute weights", prob)
	return prob
}

// LogPMF returns the exact log of the Poisson(lambda) pmf at n, used by
// tests to validate the recursion anchor. Non-positive lambda is
// treated as the degenerate rate-zero process.
func LogPMF(n int, lambda float64) float64 {
	if lambda <= 0 {
		if n == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	nf := float64(n)
	lg, _ := math.Lgamma(nf + 1)
	return nf*math.Log(lambda) - lambda - lg
}
