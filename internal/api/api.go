// Package api defines the versioned wire schema of the batlifed solve
// service — the request, response and job types exchanged over
// HTTP/JSON. The same types back the server (internal/service) and any
// CLI or client tooling, so there is exactly one wire schema; the model
// payloads themselves (battery, workload, analysis options) are encoded
// by the public batlife codec (see batlife.CodecVersion), making a
// request body a plain composition of already-versioned documents.
//
// All request validation normalises onto batlife.ErrBadArgument so the
// service can map failures to HTTP statuses with one rule.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"batlife"
)

// Version is the URL prefix of the wire schema ("/v1/...").
const Version = "v1"

// Analysis kinds accepted by SolveRequest.
const (
	// AnalysisCDF is the Markovian approximation of the lifetime CDF
	// (the default).
	AnalysisCDF = "cdf"
	// AnalysisExact is the exact transform-domain CDF; it requires
	// AvailableFraction = 1 and ignores Options.Delta.
	AnalysisExact = "exact"
	// AnalysisMean is the expected lifetime E[L] via the absorption-time
	// equations; it needs no time grid.
	AnalysisMean = "mean"
)

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Analysis selects the method: "cdf" (default), "exact" or "mean".
	Analysis string `json:"analysis,omitempty"`
	// Battery and Workload define the model, in the batlife v1 codec.
	Battery  batlife.Battery   `json:"battery"`
	Workload *batlife.Workload `json:"workload"`
	// Times are the evaluation points in seconds, ascending. Required
	// for "cdf" and "exact"; ignored by "mean".
	Times []float64 `json:"times,omitempty"`
	// Options carries the numerical knobs (delta, epsilon, iteration
	// budget) in the batlife v1 codec.
	Options batlife.AnalysisOptions `json:"options,omitempty"`
	// TimeoutSeconds bounds the solve; 0 selects the server default.
	// The server clamps it to its configured maximum.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// Validate checks the request shape; failures match
// batlife.ErrBadArgument. Model-level validation (battery constants,
// workload structure) already happened during decoding.
func (r *SolveRequest) Validate() error {
	switch r.Analysis {
	case "", AnalysisCDF, AnalysisExact, AnalysisMean:
	default:
		return fmt.Errorf("%w: unknown analysis %q (want %s, %s or %s)",
			batlife.ErrBadArgument, r.Analysis, AnalysisCDF, AnalysisExact, AnalysisMean)
	}
	if err := r.Battery.Validate(); err != nil {
		return fmt.Errorf("battery: %w", err)
	}
	if r.Workload == nil {
		return fmt.Errorf("%w: missing workload", batlife.ErrBadArgument)
	}
	if r.Analysis != AnalysisMean && len(r.Times) == 0 {
		return fmt.Errorf("%w: missing times", batlife.ErrBadArgument)
	}
	if err := validTimeout(r.TimeoutSeconds); err != nil {
		return err
	}
	return validTimes(r.Times)
}

// validTimes rejects non-finite, negative or descending time grids.
func validTimes(times []float64) error {
	prev := math.Inf(-1)
	for i, t := range times {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return fmt.Errorf("%w: times[%d] = %v", batlife.ErrBadArgument, i, t)
		}
		if t < prev {
			return fmt.Errorf("%w: times[%d] = %v not ascending", batlife.ErrBadArgument, i, t)
		}
		prev = t
	}
	return nil
}

// SweepScenario is one cell of a sweep grid, mirroring
// batlife.Scenario on the wire.
type SweepScenario struct {
	Name     string            `json:"name,omitempty"`
	Battery  batlife.Battery   `json:"battery"`
	Workload *batlife.Workload `json:"workload"`
	// DeltaAs is the discretisation step in ampere-seconds.
	DeltaAs float64   `json:"delta_as"`
	Times   []float64 `json:"times"`
}

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Scenarios []SweepScenario `json:"scenarios"`
	// Workers bounds scenario-level parallelism; 0 selects the server
	// default (the server additionally clamps to its own limit).
	Workers int `json:"workers,omitempty"`
	// Epsilon and MaxIterations apply to every scenario.
	Epsilon       float64 `json:"epsilon,omitempty"`
	MaxIterations int     `json:"max_iterations,omitempty"`
	// TimeoutSeconds bounds the whole sweep; 0 selects the server
	// default.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// Validate checks the request shape; failures match
// batlife.ErrBadArgument.
func (r *SweepRequest) Validate() error {
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("%w: no scenarios", batlife.ErrBadArgument)
	}
	for i, sc := range r.Scenarios {
		if err := sc.Battery.Validate(); err != nil {
			return fmt.Errorf("scenario %d: battery: %w", i, err)
		}
		if sc.Workload == nil {
			return fmt.Errorf("%w: scenario %d: missing workload", batlife.ErrBadArgument, i)
		}
		if sc.DeltaAs <= 0 || math.IsNaN(sc.DeltaAs) || math.IsInf(sc.DeltaAs, 0) {
			return fmt.Errorf("%w: scenario %d: delta_as %v", batlife.ErrBadArgument, i, sc.DeltaAs)
		}
		if len(sc.Times) == 0 {
			return fmt.Errorf("%w: scenario %d: missing times", batlife.ErrBadArgument, i)
		}
		if err := validTimes(sc.Times); err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
	}
	if r.Workers < 0 {
		return fmt.Errorf("%w: workers %d", batlife.ErrBadArgument, r.Workers)
	}
	if r.Epsilon < 0 || r.Epsilon >= 1 || math.IsNaN(r.Epsilon) {
		return fmt.Errorf("%w: epsilon %v", batlife.ErrBadArgument, r.Epsilon)
	}
	if r.MaxIterations < 0 {
		return fmt.Errorf("%w: max_iterations %d", batlife.ErrBadArgument, r.MaxIterations)
	}
	return validTimeout(r.TimeoutSeconds)
}

// validTimeout rejects negative or non-finite timeout values; 0 selects
// the server default.
func validTimeout(seconds float64) error {
	if seconds < 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return fmt.Errorf("%w: timeout_seconds %v", batlife.ErrBadArgument, seconds)
	}
	return nil
}

// SolveResult is the outcome of one analysis. For "cdf" and "exact" the
// distribution fields are set; for "mean" only MeanSeconds.
type SolveResult struct {
	Times       []float64 `json:"times,omitempty"`
	EmptyProb   []float64 `json:"empty_prob,omitempty"`
	States      int       `json:"states,omitempty"`
	Transitions int       `json:"transitions,omitempty"`
	Iterations  int       `json:"iterations,omitempty"`
	MeanSeconds *float64  `json:"mean_seconds,omitempty"`
}

// DistributionResult converts a computed distribution to its wire form.
func DistributionResult(d *batlife.Distribution) *SolveResult {
	return &SolveResult{
		Times:       d.Times,
		EmptyProb:   d.EmptyProb,
		States:      d.States,
		Transitions: d.Transitions,
		Iterations:  d.Iterations,
	}
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	// JobID is the content-addressed job identity; GET /v1/jobs/{id}
	// replays the outcome while the job is retained.
	JobID string `json:"job_id"`
	// Coalesced reports that this response was served by attaching to
	// an identical in-flight or retained job instead of a new solve.
	Coalesced bool         `json:"coalesced,omitempty"`
	Result    *SolveResult `json:"result"`
}

// SweepItemResult is the outcome of one sweep scenario, in input order.
type SweepItemResult struct {
	Index  int          `json:"index"`
	Name   string       `json:"name,omitempty"`
	Result *SolveResult `json:"result,omitempty"`
	Error  *Error       `json:"error,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	JobID     string            `json:"job_id"`
	Coalesced bool              `json:"coalesced,omitempty"`
	Results   []SweepItemResult `json:"results"`
}

// Job states reported by GET /v1/jobs/{id}.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // "solve" or "sweep"
	State string `json:"state"`
	// Done and Total report sweep progress (scenarios completed); both
	// are zero for solve jobs until completion.
	Done  int64 `json:"done,omitempty"`
	Total int64 `json:"total,omitempty"`
	// Result holds the marshalled SolveResponse/SweepResponse once the
	// job is done.
	Result json.RawMessage `json:"result,omitempty"`
	Error  *Error          `json:"error,omitempty"`
	// TraceID is the trace identity of the request that started the
	// job (empty without telemetry); the same ID appears in the
	// X-Batlife-Trace-Id response header and /debug/traces.
	TraceID string `json:"trace_id,omitempty"`
	// Trace holds the job's completed span trees (an array of
	// obs.TraceTree) when requested with GET /v1/jobs/{id}?trace=1.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ProgressEvent is one line of the NDJSON stream served by
// POST /v1/sweep?stream=1: progress ticks followed by a final result or
// error event.
type ProgressEvent struct {
	Type   string          `json:"type"` // "progress", "result" or "error"
	Done   int64           `json:"done,omitempty"`
	Total  int64           `json:"total,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *Error          `json:"error,omitempty"`
}

// Error is the wire form of a failure, nested under "error" in every
// non-2xx response body.
type Error struct {
	// Code is a stable, machine-matchable class: bad_argument,
	// iteration_limit, deadline_exceeded, canceled, overloaded,
	// draining, not_found, internal.
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
}

// ErrorResponse is the top-level body of every non-2xx response.
type ErrorResponse struct {
	Error *Error `json:"error"`
}

// Fingerprint returns the content-addressed job identity of a solve
// request: a digest of its canonical (re-marshalled) form, so
// formatting differences and field order do not split identical
// requests. Identical concurrent requests coalesce onto one job.
func (r *SolveRequest) Fingerprint() (string, error) {
	return fingerprint("solve", "s", r)
}

// Fingerprint returns the content-addressed job identity of a sweep
// request.
func (r *SweepRequest) Fingerprint() (string, error) {
	return fingerprint("sweep", "w", r)
}

func fingerprint(kind, prefix string, v any) (string, error) {
	canon, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("api: fingerprint: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(canon)
	sum := h.Sum(nil)
	return prefix + "-" + hex.EncodeToString(sum[:12]), nil
}
