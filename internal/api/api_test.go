package api

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"batlife"
)

func twoState(t *testing.T) *batlife.Workload {
	t.Helper()
	w, err := batlife.NewWorkload(
		[]batlife.StateSpec{{Name: "idle", CurrentA: 0.008}, {Name: "send", CurrentA: 0.2}},
		[]batlife.TransitionSpec{
			{From: "idle", To: "send", RatePerSec: 0.5},
			{From: "send", To: "idle", RatePerSec: 0.25},
		},
		"idle")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func validSolve(t *testing.T) SolveRequest {
	t.Helper()
	return SolveRequest{
		Battery:  batlife.Battery{CapacityAs: 7200, AvailableFraction: 1},
		Workload: twoState(t),
		Times:    []float64{1000, 2000, 4000},
		Options:  batlife.AnalysisOptions{Delta: 100},
	}
}

func TestSolveRequestValidate(t *testing.T) {
	ok := validSolve(t)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*SolveRequest)
	}{
		{"unknown analysis", func(r *SolveRequest) { r.Analysis = "median" }},
		{"zero battery", func(r *SolveRequest) { r.Battery = batlife.Battery{} }},
		{"nil workload", func(r *SolveRequest) { r.Workload = nil }},
		{"no times", func(r *SolveRequest) { r.Times = nil }},
		{"negative time", func(r *SolveRequest) { r.Times = []float64{-1, 5} }},
		{"descending times", func(r *SolveRequest) { r.Times = []float64{10, 5} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validSolve(t)
			tc.mutate(&r)
			if err := r.Validate(); !errors.Is(err, batlife.ErrBadArgument) {
				t.Errorf("err = %v, want ErrBadArgument", err)
			}
		})
	}

	// "mean" needs no grid.
	mean := validSolve(t)
	mean.Analysis = AnalysisMean
	mean.Times = nil
	if err := mean.Validate(); err != nil {
		t.Errorf("mean without times: %v", err)
	}
}

func TestSweepRequestValidate(t *testing.T) {
	sc := SweepScenario{
		Name:     "base",
		Battery:  batlife.Battery{CapacityAs: 7200, AvailableFraction: 1},
		Workload: twoState(t),
		DeltaAs:  100,
		Times:    []float64{1000, 2000},
	}
	ok := SweepRequest{Scenarios: []SweepScenario{sc}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*SweepRequest)
	}{
		{"no scenarios", func(r *SweepRequest) { r.Scenarios = nil }},
		{"zero battery", func(r *SweepRequest) { r.Scenarios[0].Battery = batlife.Battery{} }},
		{"nil workload", func(r *SweepRequest) { r.Scenarios[0].Workload = nil }},
		{"zero delta", func(r *SweepRequest) { r.Scenarios[0].DeltaAs = 0 }},
		{"no times", func(r *SweepRequest) { r.Scenarios[0].Times = nil }},
		{"descending times", func(r *SweepRequest) { r.Scenarios[0].Times = []float64{2, 1} }},
		{"negative workers", func(r *SweepRequest) { r.Workers = -1 }},
		{"epsilon out of range", func(r *SweepRequest) { r.Epsilon = 1 }},
		{"negative budget", func(r *SweepRequest) { r.MaxIterations = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := SweepRequest{Scenarios: []SweepScenario{sc}}
			r.Scenarios = append([]SweepScenario(nil), r.Scenarios...)
			tc.mutate(&r)
			if err := r.Validate(); !errors.Is(err, batlife.ErrBadArgument) {
				t.Errorf("err = %v, want ErrBadArgument", err)
			}
		})
	}
}

func TestFingerprintCanonical(t *testing.T) {
	// Two textually different but semantically identical request bodies
	// must land on the same job ID: the fingerprint hashes the canonical
	// re-marshalled form, not the raw bytes.
	bodyA := `{
		"battery": {"capacity_as": 7200, "available_fraction": 1, "flow_rate_per_sec": 0},
		"workload": {
			"states": [{"name": "idle", "current": 0.008}, {"name": "send", "current": 0.2}],
			"transitions": [
				{"from": "idle", "to": "send", "rate_per_second": 0.5},
				{"from": "send", "to": "idle", "rate_per_second": 0.25}
			],
			"initial": "idle"
		},
		"times": [1000, 2000, 4000],
		"options": {"delta_as": 100}
	}`
	bodyB := `{
		"options": {"version": 1, "delta_as": 100},
		"times": [1e3, 2e3, 4e3],
		"workload": {
			"version": 1,
			"states": [{"name": "idle", "current": "8mA"}, {"name": "send", "current": "200mA"}],
			"transitions": [
				{"from": "idle", "to": "send", "rate_per_hour": 1800},
				{"from": "send", "to": "idle", "rate_per_hour": 900}
			],
			"initial": "idle"
		},
		"battery": {"capacity": "2000mAh", "available_fraction": 1, "flow_rate_per_sec": 0}
	}`

	var ra, rb SolveRequest
	if err := json.Unmarshal([]byte(bodyA), &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(bodyB), &rb); err != nil {
		t.Fatal(err)
	}
	fa, err := ra.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := rb.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("fingerprints differ: %s vs %s", fa, fb)
	}
	if !strings.HasPrefix(fa, "s-") {
		t.Errorf("solve fingerprint %q not prefixed s-", fa)
	}

	// A changed payload changes the ID.
	rc := ra
	rc.Times = []float64{1000, 2000, 4000, 8000}
	fc, err := rc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fc == fa {
		t.Error("different times produced identical fingerprints")
	}
}

func TestFingerprintKindsDisjoint(t *testing.T) {
	// A sweep over one scenario is a different job than the equivalent
	// solve, even if their canonical bodies were to collide.
	r := SweepRequest{Scenarios: []SweepScenario{{
		Battery:  batlife.Battery{CapacityAs: 7200, AvailableFraction: 1},
		Workload: twoState(t),
		DeltaAs:  100,
		Times:    []float64{1000},
	}}}
	f, err := r.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(f, "w-") {
		t.Errorf("sweep fingerprint %q not prefixed w-", f)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	// A decoded request re-marshals to a stable canonical form: encode →
	// decode → encode is a fixed point.
	r := validSolve(t)
	r.Analysis = AnalysisCDF
	r.TimeoutSeconds = 30
	first, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	var back SolveRequest
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("round trip not stable:\n first = %s\nsecond = %s", first, second)
	}
}

func TestErrorEnvelopeShape(t *testing.T) {
	raw, err := json.Marshal(ErrorResponse{Error: &Error{Code: "bad_argument", Message: "missing times"}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"bad_argument","message":"missing times"}}`
	if string(raw) != want {
		t.Errorf("envelope = %s, want %s", raw, want)
	}
}
