package engine

import (
	"fmt"
	"sync"
	"testing"

	"batlife/internal/core"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/obs"
	"batlife/internal/units"
	"batlife/internal/workload"
)

func onOffModel(t testing.TB, battery kibam.Params) mrm.KiBaMRM {
	t.Helper()
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		t.Fatal(err)
	}
	return mrm.KiBaMRM{Workload: w.Chain, Currents: w.Currents, Initial: w.Initial, Battery: battery}
}

var paperBattery = kibam.Params{Capacity: 7200, C: 0.625, K: 4.5e-5}

func TestCacheLRU(t *testing.T) {
	c := NewCache[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	// 1 is now most recent; inserting 3 must evict 2.
	c.Put(3, "c")
	if _, ok := c.Get(2); ok {
		t.Error("entry 2 survived eviction")
	}
	if _, ok := c.Get(1); !ok {
		t.Error("recently-used entry 1 was evicted")
	}
	if _, ok := c.Get(3); !ok {
		t.Error("entry 3 missing")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	// Refreshing an existing key must not grow the cache.
	c.Put(1, "a2")
	if v, _ := c.Get(1); v != "a2" {
		t.Errorf("refreshed value = %q, want a2", v)
	}
	if c.Len() != 2 {
		t.Errorf("Len after refresh = %d, want 2", c.Len())
	}
}

func TestFingerprintContentAddressing(t *testing.T) {
	// Two structurally identical models built independently must share
	// a key; any change to battery, delta or options must separate them.
	m1 := onOffModel(t, paperBattery)
	m2 := onOffModel(t, paperBattery)
	k1, ok1 := Fingerprint(m1, 100, core.Options{})
	k2, ok2 := Fingerprint(m2, 100, core.Options{})
	if !ok1 || !ok2 {
		t.Fatal("plain models must be cacheable")
	}
	if k1 != k2 {
		t.Error("identical models fingerprint differently")
	}
	distinct := map[Key]string{k1: "base"}
	cases := []struct {
		name  string
		model mrm.KiBaMRM
		delta float64
		build core.Options
	}{
		{"delta", m1, 50, core.Options{}},
		{"battery-capacity", onOffModel(t, kibam.Params{Capacity: 3600, C: 0.625, K: 4.5e-5}), 100, core.Options{}},
		{"battery-c", onOffModel(t, kibam.Params{Capacity: 7200, C: 0.5, K: 4.5e-5}), 100, core.Options{}},
		{"battery-k", onOffModel(t, kibam.Params{Capacity: 7200, C: 0.625, K: 9e-5}), 100, core.Options{}},
		{"recovery", m1, 100, core.Options{AllowEmptyRecovery: true}},
		{"epsilon", m1, 100, core.Options{Epsilon: 1e-9}},
	}
	for _, tc := range cases {
		k, ok := Fingerprint(tc.model, tc.delta, tc.build)
		if !ok {
			t.Fatalf("%s: not cacheable", tc.name)
		}
		if prev, dup := distinct[k]; dup {
			t.Errorf("%s collides with %s", tc.name, prev)
		}
		distinct[k] = tc.name
	}
}

func TestFingerprintWorkloadContent(t *testing.T) {
	// Differing currents or transition rates must change the key.
	base := onOffModel(t, paperBattery)
	hot := onOffModel(t, paperBattery)
	hot.Currents = append([]float64(nil), hot.Currents...)
	for i := range hot.Currents {
		if hot.Currents[i] > 0 {
			hot.Currents[i] *= 2
		}
	}
	k1, _ := Fingerprint(base, 100, core.Options{})
	k2, _ := Fingerprint(hot, 100, core.Options{})
	if k1 == k2 {
		t.Error("changed currents share a fingerprint")
	}

	slow, err := workload.OnOff(0.5, 1, units.Amperes(0.96))
	if err != nil {
		t.Fatal(err)
	}
	k3, _ := Fingerprint(mrm.KiBaMRM{
		Workload: slow.Chain, Currents: slow.Currents, Initial: slow.Initial, Battery: paperBattery,
	}, 100, core.Options{})
	if k1 == k3 {
		t.Error("changed transition rates share a fingerprint")
	}
}

func TestFingerprintHooksNotCacheable(t *testing.T) {
	m := onOffModel(t, paperBattery)
	if _, ok := Fingerprint(m, 100, core.Options{
		TransitionRate: func(from, to int, y1, y2, base float64) float64 { return base },
	}); ok {
		t.Error("TransitionRate hook fingerprinted")
	}
	if _, ok := Fingerprint(m, 100, core.Options{
		OnIteration: func(done, total int) {},
	}); ok {
		t.Error("OnIteration hook fingerprinted")
	}
}

func TestEngineReusesExpanded(t *testing.T) {
	e := New(Options{Capacity: 4, Workers: 1})
	m := onOffModel(t, paperBattery)
	a, hit, err := e.Expanded(m, 100, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first query reported a cache hit")
	}
	b, hit, err := e.Expanded(onOffModel(t, paperBattery), 100, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("identical query reported a miss")
	}
	if a != b {
		t.Error("identical queries expanded the model twice")
	}
	if e.CachedModels() != 1 {
		t.Errorf("CachedModels = %d, want 1", e.CachedModels())
	}
	c, hit, err := e.Expanded(m, 50, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("different delta reported a cache hit")
	}
	if c == a {
		t.Error("different delta reused the cached model")
	}
	if e.CachedModels() != 2 {
		t.Errorf("CachedModels = %d, want 2", e.CachedModels())
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("Stats = %+v, want Hits 1, Misses 2, Entries 2", st)
	}
}

func TestEngineEviction(t *testing.T) {
	e := New(Options{Capacity: 1, Workers: 1})
	m := onOffModel(t, paperBattery)
	a, _, err := e.Expanded(m, 100, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Expanded(m, 50, core.Options{}); err != nil {
		t.Fatal(err)
	}
	b, _, err := e.Expanded(m, 100, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("evicted model came back from the cache")
	}
	if e.CachedModels() != 1 {
		t.Errorf("CachedModels = %d, want 1", e.CachedModels())
	}
	if st := e.Stats(); st.Evictions != 2 {
		t.Errorf("Stats.Evictions = %d, want 2", st.Evictions)
	}
}

func TestEngineBuildErrorNotCached(t *testing.T) {
	e := New(Options{Capacity: 4, Workers: 1})
	m := onOffModel(t, paperBattery)
	if _, _, err := e.Expanded(m, 7, core.Options{}); err == nil {
		t.Fatal("non-divisor delta accepted")
	}
	if e.CachedModels() != 0 {
		t.Errorf("failed build left %d cache entries", e.CachedModels())
	}
}

func TestEngineConcurrentAccess(t *testing.T) {
	// Concurrent hits and misses on one engine must be race-clean; the
	// solved values must match the sequential path bit for bit.
	e := New(Options{Capacity: 2, Workers: 2})
	m := onOffModel(t, paperBattery)
	times := []float64{10000, 15000}
	want := make(map[float64][]float64)
	for _, delta := range []float64{100, 50} {
		x, err := core.Build(m, delta, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := x.LifetimeCDF(times)
		if err != nil {
			t.Fatal(err)
		}
		want[delta] = res.EmptyProb
	}
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		delta := []float64{100, 50}[g%2]
		go func() {
			x, _, err := e.Expanded(m, delta, core.Options{})
			if err != nil {
				errc <- err
				return
			}
			res, err := x.LifetimeCDF(times)
			if err != nil {
				errc <- err
				return
			}
			for k, p := range res.EmptyProb {
				//numlint:ignore floatcmp cached and fresh solves must agree bit for bit
				if p != want[delta][k] {
					errc <- fmt.Errorf("delta=%g t=%g: cached %v != fresh %v", delta, times[k], p, want[delta][k])
					return
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}
}

func TestEngineSingleflight(t *testing.T) {
	// n concurrent first requests for one key must record exactly one
	// build (a miss) and n−1 waiter-hits, all sharing one *Expanded.
	reg := obs.NewRegistry()
	e := New(Options{Capacity: 4, Workers: 1, Obs: reg})
	m := onOffModel(t, paperBattery)
	const n = 16
	var (
		start sync.WaitGroup
		wg    sync.WaitGroup
		mu    sync.Mutex
		got   = make(map[*core.Expanded]int)
		hits  int
	)
	start.Add(1)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			x, hit, err := e.Expanded(m, 100, core.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got[x]++
			if hit {
				hits++
			}
			mu.Unlock()
		}()
	}
	start.Done()
	wg.Wait()
	if len(got) != 1 {
		t.Fatalf("concurrent requests produced %d distinct models, want 1", len(got))
	}
	st := e.Stats()
	if st.Misses != 1 {
		t.Errorf("Stats.Misses = %d, want exactly 1 build", st.Misses)
	}
	if st.Hits != n-1 {
		t.Errorf("Stats.Hits = %d, want %d waiter-hits", st.Hits, n-1)
	}
	if hits != n-1 {
		t.Errorf("%d calls reported hit=true, want %d", hits, n-1)
	}
	if st.Entries != 1 {
		t.Errorf("Stats.Entries = %d, want 1", st.Entries)
	}
	// The registry counters must agree with Stats.
	if v := reg.Counter("engine_cache_misses_total").Value(); v != 1 {
		t.Errorf("engine_cache_misses_total = %d, want 1", v)
	}
	if v := reg.Counter("engine_cache_hits_total").Value(); v != n-1 {
		t.Errorf("engine_cache_hits_total = %d, want %d", v, n-1)
	}
}
