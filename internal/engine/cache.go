package engine

import (
	"container/list"
	"sync"
)

// Cache is a bounded, mutex-guarded LRU map. It backs both the engine's
// expanded-model cache and the facade's memoised query results; a
// dedicated type (rather than a plain map) keeps memory bounded under
// the north-star workload of many distinct models passing through one
// long-lived Solver.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *pair[K, V]
	items    map[K]*list.Element
	onEvict  func(K, V)
}

type pair[K comparable, V any] struct {
	key K
	val V
}

// NewCache returns an LRU cache holding at most capacity entries;
// capacity < 1 selects 1.
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*pair[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *Cache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*pair[K, V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&pair[K, V]{key: key, val: val})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		p := oldest.Value.(*pair[K, V])
		delete(c.items, p.key)
		if c.onEvict != nil {
			c.onEvict(p.key, p.val)
		}
	}
}

// SetOnEvict registers a callback invoked for every evicted entry. The
// callback runs with the cache lock held and must not call back into the
// cache; it exists to feed eviction counters. Set it before the cache is
// shared across goroutines.
func (c *Cache[K, V]) SetOnEvict(fn func(K, V)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Capacity reports the cache bound.
func (c *Cache[K, V]) Capacity() int { return c.capacity }
