// Package engine is the reusable solving substrate behind the
// batlife.Solver facade. The paper's experiments (Figs. 7–9, Table 2)
// evaluate the same KiBaMRM at many step sizes, time grids and initial
// capacities; every such query pays for expanding the CTMC Q* and
// uniformising it before a single iteration runs. The engine amortises
// that construction: expanded models are kept in a bounded LRU cache
// keyed by a fingerprint of (battery constants, workload chain, step Δ,
// build options), and each cached model carries its own uniformised
// operator and Fox–Glynn tables (see core.Expanded.Operator), so a
// repeated query skips straight to the transient iteration — or, one
// layer up, to a memoised result.
//
// The engine also owns the SpMV worker pool shared by every solve it
// serves, so concurrent scenario sweeps draw from one bounded pool
// instead of multiplying goroutines per query.
package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"
	"time"

	"batlife/internal/core"
	"batlife/internal/mrm"
	"batlife/internal/obs"
	"batlife/internal/sparse"
)

// Options configures an Engine.
type Options struct {
	// Capacity bounds the number of expanded CTMCs retained; at most
	// Capacity models (each O(states + transitions) memory) are live at
	// once. Values < 1 select 8.
	Capacity int
	// Workers sets the parallelism of the shared SpMV pool; values < 1
	// select runtime.NumCPU().
	Workers int
	// Obs, when non-nil, is the observability registry the engine (and
	// the pool and builds it owns) records into: cache hit/miss/eviction
	// counters, build timing, "engine.build" spans. The engine's Stats
	// counters work with or without a registry.
	Obs *obs.Registry
}

// Engine caches expanded CTMCs across queries. It is safe for concurrent
// use. Concurrent misses on the same key are single-flighted: exactly
// one goroutine builds the model while the others wait and share the
// result, so the cache statistics record one build (a miss) and n−1
// waiter-hits — and an expensive expansion is never duplicated.
type Engine struct {
	pool   *sparse.Pool
	models *Cache[Key, *core.Expanded]
	obs    *obs.Registry

	mu       sync.Mutex
	inflight map[Key]*inflightBuild

	hits, misses, evictions *obs.Counter
	buildSeconds            *obs.Histogram
}

// inflightBuild is one in-progress model expansion that concurrent
// requesters of the same key wait on.
type inflightBuild struct {
	done chan struct{}
	x    *core.Expanded
	err  error
}

// New returns an Engine with the given cache bound and worker pool.
func New(o Options) *Engine {
	capacity := o.Capacity
	if capacity < 1 {
		capacity = 8
	}
	e := &Engine{
		pool:     sparse.NewPoolObs(o.Workers, o.Obs),
		models:   NewCache[Key, *core.Expanded](capacity),
		obs:      o.Obs,
		inflight: make(map[Key]*inflightBuild),
	}
	if o.Obs != nil {
		e.hits = o.Obs.Counter("engine_cache_hits_total")
		e.misses = o.Obs.Counter("engine_cache_misses_total")
		e.evictions = o.Obs.Counter("engine_cache_evictions_total")
		e.buildSeconds = o.Obs.Histogram("engine_build_seconds")
	} else {
		// Stats must work without a registry; standalone counters cost
		// one atomic word each.
		e.hits = obs.NewCounter()
		e.misses = obs.NewCounter()
		e.evictions = obs.NewCounter()
	}
	e.models.SetOnEvict(func(Key, *core.Expanded) { e.evictions.Inc() })
	return e
}

// Pool returns the engine's shared SpMV worker pool.
func (e *Engine) Pool() *sparse.Pool { return e.pool }

// Close releases the engine's persistent SpMV worker goroutines. The
// engine stays usable — later solves run their products serially — so
// Close is a resource release, not a poison pill. Idempotent.
func (e *Engine) Close() { e.pool.Close() }

// CachedModels reports how many expanded models are currently retained.
func (e *Engine) CachedModels() int { return e.models.Len() }

// Stats is a point-in-time view of the engine's cache behaviour.
type Stats struct {
	// Hits counts queries answered from the cache, including waiter-hits
	// — requests that arrived while another goroutine was building the
	// same model and shared its result.
	Hits int64
	// Misses counts queries that performed a build (successful or not).
	// Under concurrent misses on one key exactly one build happens, so
	// n concurrent first requests record 1 miss and n−1 hits.
	Misses int64
	// Evictions counts models dropped by the LRU bound.
	Evictions int64
	// Entries is the current number of cached models.
	Entries int
}

// Stats reports the engine's cache counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Hits:      e.hits.Value(),
		Misses:    e.misses.Value(),
		Evictions: e.evictions.Value(),
		Entries:   e.models.Len(),
	}
}

// Key identifies one expanded model in the cache: a SHA-256 digest of
// the model's full content (battery constants, workload generator,
// currents, initial distribution, charging flag), the step Δ and the
// build options. Content addressing makes structurally identical models
// share an entry even when built through different Workload values.
type Key [sha256.Size]byte

// Fingerprint computes the cache key for (model, delta, build). The
// second result reports cacheability: build hooks are functions and
// cannot be fingerprinted, so models using TransitionRate or OnIteration
// bypass the cache.
func Fingerprint(m mrm.KiBaMRM, delta float64, build core.Options) (Key, bool) {
	if build.TransitionRate != nil || build.OnIteration != nil {
		return Key{}, false
	}
	h := sha256.New()
	var buf [8]byte
	writeF := func(x float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	writeU := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	writeF(delta)
	writeF(m.Battery.Capacity)
	writeF(m.Battery.C)
	writeF(m.Battery.K)
	var flags uint64
	if m.AllowCharging {
		flags |= 1
	}
	if build.AllowEmptyRecovery {
		flags |= 2
	}
	writeU(flags)
	// Build-time numerical defaults live on the Expanded and seed later
	// solves, so they are part of the identity.
	writeF(build.Epsilon)
	writeU(uint64(int64(build.Workers)))

	if m.Workload == nil {
		// Invalid model: let core.Build produce the error. Still
		// fingerprintable (all invalid-nil models alias one key that
		// never reaches the cache because Build fails first).
		return Key(sha256.Sum256([]byte("engine: nil workload"))), true
	}
	n := m.Workload.NumStates()
	writeU(uint64(int64(n)))
	for _, c := range m.Currents {
		writeF(c)
	}
	for _, a := range m.Initial {
		writeF(a)
	}
	gen := m.Workload.Generator()
	for r := 0; r < gen.Rows(); r++ {
		gen.Row(r, func(col int, v float64) {
			writeU(uint64(int64(r))<<32 | uint64(int64(col)))
			writeF(v)
		})
	}
	var key Key
	h.Sum(key[:0])
	return key, true
}

// Expanded returns the expanded CTMC for (model, delta, build), reusing
// a cached instance when the fingerprint matches and building (and
// caching) it otherwise. The second result reports whether the model
// came from the cache (including waiting on another goroutine's
// in-flight build). Cached models are shared across callers and must be
// treated as immutable — which core.Expanded guarantees for its public
// API.
func (e *Engine) Expanded(m mrm.KiBaMRM, delta float64, build core.Options) (*core.Expanded, bool, error) {
	key, cacheable := Fingerprint(m, delta, build)
	if !cacheable {
		e.misses.Inc()
		x, err := e.build(m, delta, build)
		return x, false, err
	}
	e.mu.Lock()
	if x, ok := e.models.Get(key); ok {
		e.mu.Unlock()
		e.hits.Inc()
		return x, true, nil
	}
	if c, ok := e.inflight[key]; ok {
		// Another goroutine is building this model; wait and share.
		e.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, false, c.err
		}
		e.hits.Inc()
		return c.x, true, nil
	}
	c := &inflightBuild{done: make(chan struct{})}
	e.inflight[key] = c
	e.mu.Unlock()

	e.misses.Inc()
	c.x, c.err = e.build(m, delta, build)
	e.mu.Lock()
	if c.err == nil {
		e.models.Put(key, c.x)
	}
	delete(e.inflight, key)
	e.mu.Unlock()
	close(c.done)
	return c.x, false, c.err
}

// build runs one model expansion, recording timing and a span when the
// engine has a registry. The engine's registry is injected into the
// build options (unless the caller set one) so core's expansion
// telemetry flows into the same place, and the "engine.build" span is
// parented under the span carried by build.Context — threading the
// request trace through to the nested "core.build" span.
func (e *Engine) build(m mrm.KiBaMRM, delta float64, build core.Options) (*core.Expanded, error) {
	if build.Obs == nil {
		build.Obs = e.obs
	}
	if e.obs == nil {
		return core.Build(m, delta, build)
	}
	ctx, span := obs.StartSpan(build.Context, e.obs, "engine.build", obs.Float("delta", delta))
	build.Context = ctx
	start := time.Now()
	x, err := core.Build(m, delta, build)
	if err != nil {
		span.End(obs.String("error", err.Error()))
		return nil, err
	}
	e.buildSeconds.ObserveDuration(time.Since(start).Seconds())
	span.End(obs.Int("states", int64(x.NumStates())), obs.Int("nnz", int64(x.NNZ())))
	return x, nil
}
