// Package engine is the reusable solving substrate behind the
// batlife.Solver facade. The paper's experiments (Figs. 7–9, Table 2)
// evaluate the same KiBaMRM at many step sizes, time grids and initial
// capacities; every such query pays for expanding the CTMC Q* and
// uniformising it before a single iteration runs. The engine amortises
// that construction: expanded models are kept in a bounded LRU cache
// keyed by a fingerprint of (battery constants, workload chain, step Δ,
// build options), and each cached model carries its own uniformised
// operator and Fox–Glynn tables (see core.Expanded.Operator), so a
// repeated query skips straight to the transient iteration — or, one
// layer up, to a memoised result.
//
// The engine also owns the SpMV worker pool shared by every solve it
// serves, so concurrent scenario sweeps draw from one bounded pool
// instead of multiplying goroutines per query.
package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"batlife/internal/core"
	"batlife/internal/mrm"
	"batlife/internal/sparse"
)

// Options configures an Engine.
type Options struct {
	// Capacity bounds the number of expanded CTMCs retained; at most
	// Capacity models (each O(states + transitions) memory) are live at
	// once. Values < 1 select 8.
	Capacity int
	// Workers sets the parallelism of the shared SpMV pool; values < 1
	// select runtime.NumCPU().
	Workers int
}

// Engine caches expanded CTMCs across queries. It is safe for
// concurrent use; concurrent misses on the same key may build the model
// twice, with the last build winning the cache slot (both results are
// correct, so no singleflight is needed).
type Engine struct {
	pool   *sparse.Pool
	models *Cache[Key, *core.Expanded]
}

// New returns an Engine with the given cache bound and worker pool.
func New(o Options) *Engine {
	capacity := o.Capacity
	if capacity < 1 {
		capacity = 8
	}
	return &Engine{
		pool:   sparse.NewPool(o.Workers),
		models: NewCache[Key, *core.Expanded](capacity),
	}
}

// Pool returns the engine's shared SpMV worker pool.
func (e *Engine) Pool() *sparse.Pool { return e.pool }

// CachedModels reports how many expanded models are currently retained.
func (e *Engine) CachedModels() int { return e.models.Len() }

// Key identifies one expanded model in the cache: a SHA-256 digest of
// the model's full content (battery constants, workload generator,
// currents, initial distribution, charging flag), the step Δ and the
// build options. Content addressing makes structurally identical models
// share an entry even when built through different Workload values.
type Key [sha256.Size]byte

// Fingerprint computes the cache key for (model, delta, build). The
// second result reports cacheability: build hooks are functions and
// cannot be fingerprinted, so models using TransitionRate or OnIteration
// bypass the cache.
func Fingerprint(m mrm.KiBaMRM, delta float64, build core.Options) (Key, bool) {
	if build.TransitionRate != nil || build.OnIteration != nil {
		return Key{}, false
	}
	h := sha256.New()
	var buf [8]byte
	writeF := func(x float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	writeU := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	writeF(delta)
	writeF(m.Battery.Capacity)
	writeF(m.Battery.C)
	writeF(m.Battery.K)
	var flags uint64
	if m.AllowCharging {
		flags |= 1
	}
	if build.AllowEmptyRecovery {
		flags |= 2
	}
	writeU(flags)
	// Build-time numerical defaults live on the Expanded and seed later
	// solves, so they are part of the identity.
	writeF(build.Epsilon)
	writeU(uint64(int64(build.Workers)))

	if m.Workload == nil {
		// Invalid model: let core.Build produce the error. Still
		// fingerprintable (all invalid-nil models alias one key that
		// never reaches the cache because Build fails first).
		return Key(sha256.Sum256([]byte("engine: nil workload"))), true
	}
	n := m.Workload.NumStates()
	writeU(uint64(int64(n)))
	for _, c := range m.Currents {
		writeF(c)
	}
	for _, a := range m.Initial {
		writeF(a)
	}
	gen := m.Workload.Generator()
	for r := 0; r < gen.Rows(); r++ {
		gen.Row(r, func(col int, v float64) {
			writeU(uint64(int64(r))<<32 | uint64(int64(col)))
			writeF(v)
		})
	}
	var key Key
	h.Sum(key[:0])
	return key, true
}

// Expanded returns the expanded CTMC for (model, delta, build), reusing
// a cached instance when the fingerprint matches and building (and
// caching) it otherwise. Cached models are shared across callers and
// must be treated as immutable — which core.Expanded guarantees for its
// public API.
func (e *Engine) Expanded(m mrm.KiBaMRM, delta float64, build core.Options) (*core.Expanded, error) {
	key, cacheable := Fingerprint(m, delta, build)
	if cacheable {
		if x, ok := e.models.Get(key); ok {
			return x, nil
		}
	}
	x, err := core.Build(m, delta, build)
	if err != nil {
		return nil, err
	}
	if cacheable {
		e.models.Put(key, x)
	}
	return x, nil
}
