package ctmc

import (
	"errors"
	"math"
	"testing"
)

// twoState builds the chain 0 --a--> 1, 1 --b--> 0.
func twoState(t *testing.T, a, b float64) *Chain {
	t.Helper()
	var bld Builder
	bld.Transition("zero", "one", a)
	bld.Transition("one", "zero", b)
	c, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuilderBasics(t *testing.T) {
	var b Builder
	if i := b.State("idle"); i != 0 {
		t.Fatalf("first state index = %d", i)
	}
	if i := b.State("idle"); i != 0 {
		t.Fatalf("repeated state index = %d", i)
	}
	b.Transition("idle", "send", 2)
	b.Transition("send", "idle", 6)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 2 {
		t.Errorf("NumStates = %d", c.NumStates())
	}
	if c.Name(1) != "send" || c.Index("send") != 1 {
		t.Errorf("name/index mismatch: %q, %d", c.Name(1), c.Index("send"))
	}
	if c.Index("nope") != -1 {
		t.Errorf("Index of unknown state = %d", c.Index("nope"))
	}
	if got := c.ExitRate(0); got != 2 {
		t.Errorf("ExitRate(0) = %v", got)
	}
	if got := c.Generator().At(0, 0); got != -2 {
		t.Errorf("Q[0][0] = %v", got)
	}
}

func TestBuilderRejectsBadRates(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		var b Builder
		b.Transition("a", "b", rate)
		if _, err := b.Build(); !errors.Is(err, ErrInvalidChain) {
			t.Errorf("rate %v: err = %v, want ErrInvalidChain", rate, err)
		}
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	var b Builder
	b.Transition("a", "a", 1)
	if _, err := b.Build(); !errors.Is(err, ErrInvalidChain) {
		t.Errorf("err = %v, want ErrInvalidChain", err)
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	var b Builder
	if _, err := b.Build(); !errors.Is(err, ErrInvalidChain) {
		t.Errorf("err = %v, want ErrInvalidChain", err)
	}
}

func TestBuilderMergesParallelTransitions(t *testing.T) {
	var b Builder
	b.Transition("a", "b", 1)
	b.Transition("a", "b", 2.5)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Generator().At(0, 1); got != 3.5 {
		t.Errorf("merged rate = %v, want 3.5", got)
	}
	if got := c.ExitRate(0); got != 3.5 {
		t.Errorf("exit rate = %v, want 3.5", got)
	}
}

func TestAbsorbingState(t *testing.T) {
	var b Builder
	b.Transition("live", "dead", 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsAbsorbing(c.Index("dead")) {
		t.Error("dead state not absorbing")
	}
	if c.IsAbsorbing(c.Index("live")) {
		t.Error("live state reported absorbing")
	}
}

func TestSteadyStateTwoState(t *testing.T) {
	a, bRate := 2.0, 6.0
	c := twoState(t, a, bRate)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	// π = (b, a)/(a+b).
	if math.Abs(pi[0]-bRate/(a+bRate)) > 1e-12 || math.Abs(pi[1]-a/(a+bRate)) > 1e-12 {
		t.Errorf("pi = %v", pi)
	}
}

func TestSteadyStateSimpleModel(t *testing.T) {
	// The paper's simple wireless model (Figure 4): idle->send (2/h),
	// idle->sleep (1/h), sleep->send (2/h), send->idle (6/h).
	// Balance gives π = (1/2, 1/4, 1/4).
	var b Builder
	b.Transition("idle", "send", 2)
	b.Transition("idle", "sleep", 1)
	b.Transition("sleep", "send", 2)
	b.Transition("send", "idle", 6)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"idle": 0.5, "send": 0.25, "sleep": 0.25}
	for name, p := range want {
		if got := pi[c.Index(name)]; math.Abs(got-p) > 1e-12 {
			t.Errorf("pi[%s] = %v, want %v", name, got, p)
		}
	}
}

func TestSteadyStateBalanceProperty(t *testing.T) {
	// πQ must vanish for an arbitrary irreducible chain.
	var b Builder
	b.Transition("a", "b", 1.3)
	b.Transition("b", "c", 0.7)
	b.Transition("c", "a", 2.2)
	b.Transition("a", "c", 0.4)
	b.Transition("c", "b", 1.1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("steady state sums to %v", sum)
	}
	flow := make([]float64, c.NumStates())
	if err := c.Generator().VecMul(flow, pi); err != nil {
		t.Fatal(err)
	}
	for i, f := range flow {
		if math.Abs(f) > 1e-12 {
			t.Errorf("(πQ)[%d] = %v, want 0", i, f)
		}
	}
}

func TestNewChainValidation(t *testing.T) {
	// Hand-build an invalid generator: negative off-diagonal.
	c := twoState(t, 1, 1)
	if _, err := NewChain([]string{"only"}, c.Generator()); !errors.Is(err, ErrInvalidChain) {
		t.Errorf("wrong name count: err = %v", err)
	}
}

func TestPointAndUniformDistributions(t *testing.T) {
	c := twoState(t, 1, 1)
	p := c.PointDistribution(1)
	if p[0] != 0 || p[1] != 1 {
		t.Errorf("PointDistribution = %v", p)
	}
	u := c.UniformDistribution()
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Errorf("UniformDistribution = %v", u)
	}
}
