package ctmc

import (
	"fmt"
	"math"

	"batlife/internal/sparse"
)

// Phase is one segment of a piecewise-constant time-inhomogeneous CTMC:
// the generator that is in force for Duration seconds. The paper's
// Section 4.1 allows fully time-inhomogeneous models Q(t); piecewise-
// constant phases are the computationally tractable subclass — each
// phase is solved by ordinary uniformisation and the phase-end
// distribution seeds the next phase.
type Phase struct {
	// Generator is the infinitesimal generator during this phase.
	Generator *sparse.CSR
	// Duration is the phase length in seconds; the final phase may be
	// +Inf.
	Duration float64
}

// PiecewiseTransient computes the state distribution of the
// time-inhomogeneous chain at each requested time (ascending). Times
// beyond the total phase span are rejected unless the last phase is
// infinite.
func PiecewiseTransient(phases []Phase, alpha, times []float64, opts TransientOptions) (*Result, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("%w: no phases", ErrBadInput)
	}
	n := len(alpha)
	for i, ph := range phases {
		if ph.Generator == nil || ph.Generator.Rows() != n || ph.Generator.Cols() != n {
			return nil, fmt.Errorf("%w: phase %d generator does not match %d states", ErrBadInput, i, n)
		}
		if ph.Duration <= 0 || math.IsNaN(ph.Duration) {
			return nil, fmt.Errorf("%w: phase %d duration %v", ErrBadInput, i, ph.Duration)
		}
		if math.IsInf(ph.Duration, 1) && i != len(phases)-1 {
			return nil, fmt.Errorf("%w: only the final phase may be infinite (phase %d)", ErrBadInput, i)
		}
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("%w: no time points", ErrBadInput)
	}

	out := &Result{
		Times:         append([]float64(nil), times...),
		Distributions: make([][]float64, len(times)),
	}
	current := append([]float64(nil), alpha...)
	phaseStart := 0.0
	ti := 0
	for pi, ph := range phases {
		phaseEnd := phaseStart + ph.Duration
		// Collect the requested times that land inside this phase,
		// expressed relative to the phase start.
		var rel []float64
		for k := ti; k < len(times); k++ {
			if times[k] <= phaseEnd+1e-12 || math.IsInf(ph.Duration, 1) {
				r := math.Max(0, times[k]-phaseStart)
				if !math.IsInf(ph.Duration, 1) {
					r = math.Min(r, ph.Duration)
				}
				rel = append(rel, r)
			} else {
				break
			}
		}
		// Always solve to the phase end too (to seed the next phase),
		// unless this is the last phase.
		solveTimes := append([]float64(nil), rel...)
		needEnd := pi != len(phases)-1
		if needEnd {
			solveTimes = append(solveTimes, ph.Duration)
		}
		if len(solveTimes) == 0 {
			phaseStart = phaseEnd
			continue
		}
		res, err := TransientDistributions(ph.Generator, current, solveTimes, opts)
		if err != nil {
			return nil, fmt.Errorf("ctmc: phase %d: %w", pi, err)
		}
		out.Iterations += res.Iterations
		if res.Rate > out.Rate {
			out.Rate = res.Rate
		}
		for k := range rel {
			out.Distributions[ti] = res.Distributions[k]
			ti++
		}
		if needEnd {
			current = res.Distributions[len(solveTimes)-1]
		}
		phaseStart = phaseEnd
		if ti == len(times) {
			break
		}
	}
	if ti != len(times) {
		return nil, fmt.Errorf("%w: time %v beyond the total phase span", ErrBadInput, times[ti])
	}
	return out, nil
}

// PiecewiseTransientFunctional computes w·π(t) for the piecewise chain.
func PiecewiseTransientFunctional(phases []Phase, alpha, w, times []float64, opts TransientOptions) (*Result, error) {
	if w == nil {
		return nil, fmt.Errorf("%w: nil functional", ErrBadInput)
	}
	if len(alpha) != len(w) {
		return nil, fmt.Errorf("%w: |w|=%d for %d states", ErrBadInput, len(w), len(alpha))
	}
	res, err := PiecewiseTransient(phases, alpha, times, opts)
	if err != nil {
		return nil, err
	}
	res.Values = make([]float64, len(times))
	for k, d := range res.Distributions {
		s := 0.0
		for i, wi := range w {
			s += wi * d[i]
		}
		res.Values[k] = s
	}
	res.Distributions = nil
	return res, nil
}
