package ctmc

import (
	"errors"
	"math"
	"testing"
)

func TestPiecewiseMatchesHomogeneous(t *testing.T) {
	// Splitting a homogeneous chain into arbitrary phases of the same
	// generator must not change anything.
	c := twoState(t, 2, 6)
	alpha := c.PointDistribution(0)
	times := []float64{0.3, 0.9, 1.4, 2.5}
	direct, err := c.Transient(alpha, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	phases := []Phase{
		{Generator: c.Generator(), Duration: 0.5},
		{Generator: c.Generator(), Duration: 1.0},
		{Generator: c.Generator(), Duration: math.Inf(1)},
	}
	pw, err := PiecewiseTransient(phases, alpha, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		for i := range alpha {
			if math.Abs(pw.Distributions[k][i]-direct.Distributions[k][i]) > 1e-10 {
				t.Errorf("t=%v state %d: piecewise %v vs direct %v",
					times[k], i, pw.Distributions[k][i], direct.Distributions[k][i])
			}
		}
	}
}

func TestPiecewiseTwoPhaseClosedForm(t *testing.T) {
	// Phase 1: rates (a1, b1) for d seconds; phase 2: rates (a2, b2).
	// Compose the two-state closed forms by hand.
	closed := func(a, b, p0, t float64) float64 {
		// π₁(t) starting with π₁(0) = p0.
		inf := a / (a + b)
		return inf + (p0-inf)*math.Exp(-(a+b)*t)
	}
	c1 := twoState(t, 1.0, 3.0)
	c2 := twoState(t, 5.0, 0.5)
	const d = 0.7
	phases := []Phase{
		{Generator: c1.Generator(), Duration: d},
		{Generator: c2.Generator(), Duration: math.Inf(1)},
	}
	alpha := []float64{1, 0}
	times := []float64{0.2, d, 1.0, 3.0}
	res, err := PiecewiseTransient(phases, alpha, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	atBoundary := closed(1, 3, 0, d)
	want := []float64{
		closed(1, 3, 0, 0.2),
		atBoundary,
		closed(5, 0.5, atBoundary, 1.0-d),
		closed(5, 0.5, atBoundary, 3.0-d),
	}
	for k := range times {
		if math.Abs(res.Distributions[k][1]-want[k]) > 1e-9 {
			t.Errorf("t=%v: π₁ = %v, want %v", times[k], res.Distributions[k][1], want[k])
		}
	}
}

func TestPiecewiseFunctionalMatchesDistributions(t *testing.T) {
	c1 := twoState(t, 1, 2)
	c2 := twoState(t, 4, 1)
	phases := []Phase{
		{Generator: c1.Generator(), Duration: 1},
		{Generator: c2.Generator(), Duration: math.Inf(1)},
	}
	alpha := []float64{0.5, 0.5}
	w := []float64{2, -3}
	times := []float64{0.5, 1.5, 4}
	full, err := PiecewiseTransient(phases, alpha, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := PiecewiseTransientFunctional(phases, alpha, w, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		want := w[0]*full.Distributions[k][0] + w[1]*full.Distributions[k][1]
		if math.Abs(fn.Values[k]-want) > 1e-12 {
			t.Errorf("t=%v: %v, want %v", times[k], fn.Values[k], want)
		}
	}
	if fn.Distributions != nil {
		t.Error("functional result retains distributions")
	}
}

func TestPiecewiseValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	alpha := c.PointDistribution(0)
	good := Phase{Generator: c.Generator(), Duration: 1}

	if _, err := PiecewiseTransient(nil, alpha, []float64{1}, TransientOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("no phases: err = %v", err)
	}
	if _, err := PiecewiseTransient([]Phase{good}, alpha, nil, TransientOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("no times: err = %v", err)
	}
	if _, err := PiecewiseTransient([]Phase{{Generator: c.Generator(), Duration: 0}}, alpha, []float64{1}, TransientOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero duration: err = %v", err)
	}
	inf := Phase{Generator: c.Generator(), Duration: math.Inf(1)}
	if _, err := PiecewiseTransient([]Phase{inf, good}, alpha, []float64{1}, TransientOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("infinite non-final phase: err = %v", err)
	}
	// Time beyond the span of finite phases.
	if _, err := PiecewiseTransient([]Phase{good}, alpha, []float64{5}, TransientOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("time beyond span: err = %v", err)
	}
	// Mismatched generator size.
	var b3 Builder
	b3.Transition("x", "y", 1)
	b3.Transition("y", "z", 1)
	b3.Transition("z", "x", 1)
	c3, err := b3.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PiecewiseTransient([]Phase{{Generator: c3.Generator(), Duration: 1}}, alpha, []float64{0.5}, TransientOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("size mismatch: err = %v", err)
	}
	if _, err := PiecewiseTransientFunctional([]Phase{good}, alpha, nil, []float64{0.5}, TransientOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil functional: err = %v", err)
	}
}

func TestPiecewisePhaseWithNoQueries(t *testing.T) {
	// A middle phase containing no requested times must still advance
	// the distribution.
	c1 := twoState(t, 1, 3)
	c2 := twoState(t, 3, 1)
	phases := []Phase{
		{Generator: c1.Generator(), Duration: 1},
		{Generator: c2.Generator(), Duration: 1},
		{Generator: c1.Generator(), Duration: math.Inf(1)},
	}
	alpha := []float64{1, 0}
	// Only query inside phases 1 and 3.
	res, err := PiecewiseTransient(phases, alpha, []float64{0.5, 2.5}, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against a run that also queries the boundaries.
	ref, err := PiecewiseTransient(phases, alpha, []float64{0.5, 1, 2, 2.5}, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distributions[1][1]-ref.Distributions[3][1]) > 1e-10 {
		t.Errorf("skipped-phase run %v vs reference %v", res.Distributions[1][1], ref.Distributions[3][1])
	}
}
