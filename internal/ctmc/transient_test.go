package ctmc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"batlife/internal/sparse"
)

// erlangCDF is the closed-form CDF of an Erlang(k, rate) distribution.
func erlangCDF(k int, rate, t float64) float64 {
	sum := 0.0
	term := 1.0
	for i := 0; i < k; i++ {
		if i > 0 {
			term *= rate * t / float64(i)
		}
		sum += term
	}
	return 1 - math.Exp(-rate*t)*sum
}

func TestTransientTwoStateClosedForm(t *testing.T) {
	// Starting in state 0 of the chain 0 -a-> 1, 1 -b-> 0:
	// π₁(t) = a/(a+b)·(1 - e^{-(a+b)t}).
	a, b := 2.0, 6.0
	c := twoState(t, a, b)
	times := []float64{0, 0.01, 0.1, 0.5, 1, 5}
	res, err := c.Transient(c.PointDistribution(0), times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range times {
		want := a / (a + b) * (1 - math.Exp(-(a+b)*tm))
		got := res.Distributions[k][1]
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("t=%v: π₁ = %v, want %v", tm, got, want)
		}
		if s := res.Distributions[k][0] + res.Distributions[k][1]; math.Abs(s-1) > 1e-10 {
			t.Errorf("t=%v: distribution sums to %v", tm, s)
		}
	}
}

func TestTransientErlangAbsorption(t *testing.T) {
	// A pure birth chain 0 -> 1 -> ... -> K (absorbing): the probability
	// of having been absorbed by time t is the Erlang(K, rate) CDF.
	const k = 5
	rate := 3.0
	var b Builder
	for i := 0; i < k; i++ {
		b.Transition(stateName(i), stateName(i+1), rate)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, c.NumStates())
	w[c.Index(stateName(k))] = 1
	times := []float64{0.1, 0.5, 1, 2, 4}
	res, err := TransientFunctional(c.Generator(), c.PointDistribution(0), w, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		want := erlangCDF(k, rate, tm)
		if math.Abs(res.Values[i]-want) > 1e-10 {
			t.Errorf("t=%v: P[absorbed] = %v, want Erlang CDF %v", tm, res.Values[i], want)
		}
	}
}

func TestTransientFunctionalMatchesDistributions(t *testing.T) {
	var b Builder
	b.Transition("a", "b", 1.5)
	b.Transition("b", "c", 0.5)
	b.Transition("c", "a", 1.0)
	b.Transition("b", "a", 2.0)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.2, -1.5, 3.0}
	times := []float64{0.3, 1.7, 6.0}
	alpha := c.UniformDistribution()
	full, err := c.Transient(alpha, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := TransientFunctional(c.Generator(), alpha, w, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		want := 0.0
		for i, wi := range w {
			want += wi * full.Distributions[k][i]
		}
		if math.Abs(fn.Values[k]-want) > 1e-11 {
			t.Errorf("t=%v: functional %v, want %v", times[k], fn.Values[k], want)
		}
	}
}

func TestTransientZeroGenerator(t *testing.T) {
	// A chain with no transitions never moves.
	gen, err := sparse.NewBuilder(3, 3, 0).Freeze()
	if err != nil {
		t.Fatal(err)
	}
	alpha := []float64{0.2, 0.3, 0.5}
	res, err := TransientDistributions(gen, alpha, []float64{0, 10, 1e6}, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Times {
		for i := range alpha {
			if res.Distributions[k][i] != alpha[i] {
				t.Errorf("t=%v state %d: %v, want %v", res.Times[k], i, res.Distributions[k][i], alpha[i])
			}
		}
	}
	if res.Iterations != 0 || res.Rate != 0 {
		t.Errorf("iterations=%d rate=%v for frozen chain", res.Iterations, res.Rate)
	}
}

func TestTransientInputValidation(t *testing.T) {
	c := twoState(t, 1, 1)
	alpha := c.PointDistribution(0)
	cases := []struct {
		name  string
		alpha []float64
		w     []float64
		times []float64
	}{
		{"wrong alpha len", []float64{1}, nil, []float64{1}},
		{"alpha not normalised", []float64{0.5, 0.4}, nil, []float64{1}},
		{"negative alpha", []float64{1.5, -0.5}, nil, []float64{1}},
		{"no times", alpha, nil, nil},
		{"negative time", alpha, nil, []float64{-1}},
		{"NaN time", alpha, nil, []float64{math.NaN()}},
		{"unsorted times", alpha, nil, []float64{2, 1}},
		{"wrong w len", alpha, []float64{1}, []float64{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.w != nil {
				_, err = TransientFunctional(c.Generator(), tc.alpha, tc.w, tc.times, TransientOptions{})
			} else {
				_, err = TransientDistributions(c.Generator(), tc.alpha, tc.times, TransientOptions{})
			}
			if !errors.Is(err, ErrBadInput) {
				t.Errorf("err = %v, want ErrBadInput", err)
			}
		})
	}
	if _, err := TransientFunctional(c.Generator(), alpha, nil, []float64{1}, TransientOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil functional: err = %v, want ErrBadInput", err)
	}
}

func TestTransientDistributionProperty(t *testing.T) {
	// For random chains and times, π(t) is a distribution: non-negative
	// and summing to one.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		var b Builder
		// A random ring plus chords guarantees every state has an exit.
		for i := 0; i < n; i++ {
			b.Transition(stateName(i), stateName((i+1)%n), 0.1+3*rng.Float64())
			if rng.Float64() < 0.5 {
				j := rng.Intn(n)
				if j != i {
					b.Transition(stateName(i), stateName(j), 0.1+rng.Float64())
				}
			}
		}
		c, err := b.Build()
		if err != nil {
			return false
		}
		times := []float64{rng.Float64(), 1 + 4*rng.Float64()}
		res, err := c.Transient(c.PointDistribution(rng.Intn(n)), times, TransientOptions{})
		if err != nil {
			return false
		}
		for k := range times {
			sum := 0.0
			for _, p := range res.Distributions[k] {
				if p < -1e-12 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	var b Builder
	b.Transition("idle", "send", 2)
	b.Transition("idle", "sleep", 1)
	b.Transition("sleep", "send", 2)
	b.Transition("send", "idle", 6)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(c.PointDistribution(0), []float64{50}, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(res.Distributions[0][i]-pi[i]) > 1e-8 {
			t.Errorf("state %d: transient %v, steady %v", i, res.Distributions[0][i], pi[i])
		}
	}
}

func TestTransientSharedSequenceConsistency(t *testing.T) {
	// Solving several times at once must agree with solving each alone.
	c := twoState(t, 0.8, 1.7)
	alpha := c.PointDistribution(0)
	w := []float64{0, 1}
	times := []float64{0.5, 2, 8}
	joint, err := TransientFunctional(c.Generator(), alpha, w, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range times {
		single, err := TransientFunctional(c.Generator(), alpha, w, []float64{tm}, TransientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(joint.Values[k]-single.Values[0]) > 1e-11 {
			t.Errorf("t=%v: joint %v, single %v", tm, joint.Values[k], single.Values[0])
		}
	}
}

func TestTransientOnIterationCallback(t *testing.T) {
	c := twoState(t, 1, 1)
	var calls, lastDone, lastTotal int
	opts := TransientOptions{OnIteration: func(done, total int) {
		calls++
		lastDone, lastTotal = done, total
	}}
	res, err := c.Transient(c.PointDistribution(0), []float64{3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Iterations {
		t.Errorf("callback called %d times, iterations %d", calls, res.Iterations)
	}
	if lastDone != res.Iterations || lastTotal < lastDone {
		t.Errorf("last callback (%d,%d), iterations %d", lastDone, lastTotal, res.Iterations)
	}
}

func stateName(i int) string {
	return string(rune('A' + i))
}

func BenchmarkTransientSmallChain(b *testing.B) {
	var bld Builder
	bld.Transition("idle", "send", 2)
	bld.Transition("idle", "sleep", 1)
	bld.Transition("sleep", "send", 2)
	bld.Transition("send", "idle", 6)
	c, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	alpha := c.PointDistribution(0)
	times := []float64{1, 5, 10, 20, 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Transient(alpha, times, TransientOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
