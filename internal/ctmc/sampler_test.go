package ctmc

import (
	"math"
	"testing"
)

func TestSamplerDeterministicWithSeed(t *testing.T) {
	c := twoState(t, 1.2, 3.4)
	a := NewSampler(c, 42)
	b := NewSampler(c, 42)
	for i := 0; i < 100; i++ {
		if a.Sojourn(0) != b.Sojourn(0) || a.Next(0) != b.Next(0) {
			t.Fatal("same seed produced different draws")
		}
	}
}

func TestSamplerSojournMean(t *testing.T) {
	c := twoState(t, 4.0, 1.0)
	s := NewSampler(c, 7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Sojourn(0)
	}
	mean := sum / n
	// Exit rate 4 → mean sojourn 0.25; Monte-Carlo tolerance ~4σ.
	if math.Abs(mean-0.25) > 4*0.25/math.Sqrt(n) {
		t.Errorf("mean sojourn = %v, want 0.25", mean)
	}
}

func TestSamplerAbsorbingSojourn(t *testing.T) {
	var b Builder
	b.Transition("live", "dead", 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(c, 1)
	dead := c.Index("dead")
	if !math.IsInf(s.Sojourn(dead), 1) {
		t.Error("absorbing sojourn not +Inf")
	}
	if s.Next(dead) != dead {
		t.Error("absorbing Next moved")
	}
}

func TestSamplerNextFrequencies(t *testing.T) {
	// From state a, branches b (rate 1) and c (rate 3): P(b) = 0.25.
	var b Builder
	b.Transition("a", "b", 1)
	b.Transition("a", "c", 3)
	b.Transition("b", "a", 1)
	b.Transition("c", "a", 1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(c, 99)
	const n = 100000
	countB := 0
	aIdx, bIdx := c.Index("a"), c.Index("b")
	for i := 0; i < n; i++ {
		if s.Next(aIdx) == bIdx {
			countB++
		}
	}
	p := float64(countB) / n
	if math.Abs(p-0.25) > 4*math.Sqrt(0.25*0.75/n) {
		t.Errorf("P(a→b) = %v, want 0.25", p)
	}
}

func TestSamplerInitialState(t *testing.T) {
	c := twoState(t, 1, 1)
	s := NewSampler(c, 5)
	alpha := []float64{0.7, 0.3}
	const n = 100000
	count0 := 0
	for i := 0; i < n; i++ {
		if s.InitialState(alpha) == 0 {
			count0++
		}
	}
	p := float64(count0) / n
	if math.Abs(p-0.7) > 4*math.Sqrt(0.7*0.3/n) {
		t.Errorf("P(start=0) = %v, want 0.7", p)
	}
}

func TestTrajectoryCoversHorizon(t *testing.T) {
	c := twoState(t, 2, 5)
	s := NewSampler(c, 11)
	const horizon = 25.0
	for trial := 0; trial < 50; trial++ {
		steps := s.Trajectory(c.PointDistribution(0), horizon)
		total := 0.0
		for _, st := range steps {
			if st.Sojourn < 0 {
				t.Fatal("negative sojourn")
			}
			total += st.Sojourn
		}
		if math.Abs(total-horizon) > 1e-9 {
			t.Fatalf("trajectory covers %v, want %v", total, horizon)
		}
	}
}

func TestTrajectoryStopsAtAbsorbing(t *testing.T) {
	var b Builder
	b.Transition("live", "dead", 100)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(c, 3)
	steps := s.Trajectory(c.PointDistribution(c.Index("live")), 1000)
	last := steps[len(steps)-1]
	total := 0.0
	for _, st := range steps {
		total += st.Sojourn
	}
	if math.Abs(total-1000) > 1e-9 {
		t.Errorf("trajectory length %v, want truncation at horizon", total)
	}
	// With rate 100 and horizon 1000, absorption is essentially certain:
	// the final (truncated) step must be in the absorbing state.
	if last.State != c.Index("dead") {
		t.Errorf("final state %s", c.Name(last.State))
	}
}

func TestTrajectoryOccupancyMatchesSteadyState(t *testing.T) {
	c := twoState(t, 2, 6)
	s := NewSampler(c, 21)
	occupancy := make([]float64, 2)
	const horizon = 20000.0
	for _, st := range s.Trajectory(c.PointDistribution(0), horizon) {
		occupancy[st.State] += st.Sojourn
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(occupancy[i]/horizon-pi[i]) > 0.02 {
			t.Errorf("state %d occupancy %v, steady state %v", i, occupancy[i]/horizon, pi[i])
		}
	}
}
