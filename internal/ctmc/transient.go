package ctmc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"batlife/internal/check"
	"batlife/internal/foxglynn"
	"batlife/internal/obs"
	"batlife/internal/sparse"
)

// ErrBadInput reports invalid arguments to the transient engine.
var ErrBadInput = errors.New("ctmc: bad transient input")

// ErrIterationBudget reports that a transient solve would exceed the
// caller-imposed MaxIterations bound.
var ErrIterationBudget = errors.New("ctmc: iteration budget exceeded")

// TransientOptions tunes the uniformisation engine.
type TransientOptions struct {
	// Epsilon bounds the truncated Poisson tail mass per time point.
	// Zero selects 1e-12.
	Epsilon float64
	// Workers sets the SpMV parallelism; zero selects runtime.NumCPU().
	// Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, supplies the SpMV worker pool. Sharing one
	// Pool across concurrent solves (e.g. a scenario sweep) keeps the
	// total parallelism bounded instead of multiplying per solve.
	Pool *sparse.Pool
	// MaxIterations caps the number of uniformisation steps. When the
	// Fox–Glynn window of the largest time point needs more, the solve
	// fails with ErrIterationBudget before iterating. Zero is unlimited.
	MaxIterations int
	// Context, when non-nil, cancels the iteration loop between steps;
	// the returned error wraps Context.Err().
	Context context.Context
	// UniformizationSlack multiplies the maximal exit rate to obtain the
	// uniformisation constant q. Zero selects 1.02; the slack guarantees
	// strictly positive self-loop probabilities, which improves the
	// convergence behaviour of periodic chains.
	UniformizationSlack float64
	// DisableSteadyStateDetection turns off the early-termination check:
	// when the iteration vector v_n stops changing (the uniformised DTMC
	// has converged — e.g. all probability mass has been absorbed), the
	// remaining Poisson weight is folded in analytically and the
	// iteration stops. Detection is sound up to the transient epsilon;
	// disable it to force the full Fox–Glynn window.
	DisableSteadyStateDetection bool
	// OnIteration, when non-nil, is invoked after every uniformisation
	// step with the current and total iteration count. It is called on
	// the calling goroutine.
	OnIteration func(done, total int)
	// Obs, when non-nil, receives solve telemetry: iteration and SpMV
	// totals, Fox–Glynn window sizes, and a "ctmc.transient" span per
	// solve. Nil disables all recording at no cost.
	Obs *obs.Registry
}

func (o TransientOptions) epsilon() float64 {
	if o.Epsilon <= 0 {
		return 1e-12
	}
	return o.Epsilon
}

func (o TransientOptions) slack() float64 {
	if o.UniformizationSlack <= 0 {
		return 1.02
	}
	return o.UniformizationSlack
}

// pool resolves the SpMV pool for one solve. The second result reports
// ownership: an owned pool was created for this solve and must be
// closed when the solve finishes. The nil-Pool, default-Workers path
// shares the process-wide sparse.DefaultPool — with persistent worker
// goroutines, constructing a pool per solve would leak a worker set
// every call.
func (o TransientOptions) pool() (*sparse.Pool, bool) {
	if o.Pool != nil {
		return o.Pool, false
	}
	if o.Workers == 0 {
		return sparse.DefaultPool(), false
	}
	return sparse.NewPool(o.Workers), true
}

// Result is the output of a transient solve.
type Result struct {
	// Times echoes the requested time points.
	Times []float64
	// Distributions[k] is π(Times[k]); nil for functional solves.
	Distributions [][]float64
	// Values[k] is the requested functional of π(Times[k]); nil for
	// distribution solves.
	Values []float64
	// Iterations is the number of vector-matrix products performed.
	Iterations int
	// Rate is the uniformisation constant q.
	Rate float64
	// FoxGlynnLeft and FoxGlynnRight delimit the union of the Poisson
	// truncation windows over all requested time points — the iteration
	// budget the solve committed to (steady-state detection may stop
	// earlier). Both are 0 when the chain has no transitions.
	FoxGlynnLeft, FoxGlynnRight int
	// SpMVs counts the sparse matrix-vector products performed; it
	// equals Iterations for a full solve and is kept separate so
	// higher layers can aggregate operator work without re-deriving it.
	SpMVs int
}

// Uniformized is a reusable uniformisation operator for one generator:
// the uniformisation constant q, the transposed probabilistic matrix
// Pᵀ = (I + Q/q)ᵀ, and a cache of Fox–Glynn weight tables keyed on
// (q·t, ε). Building Pᵀ costs a full transpose-and-scale pass over the
// generator, so callers issuing many transient queries against the same
// chain should construct the operator once and call Transient
// repeatedly. A Uniformized is immutable apart from the internally
// synchronised weight cache and is safe for concurrent use.
type Uniformized struct {
	gen *sparse.CSR
	q   float64
	pt  *sparse.CSR // nil when q == 0 (no transitions anywhere)

	mu      sync.RWMutex
	weights map[weightKey]*foxglynn.Weights
}

// weightKey identifies one Fox–Glynn table by the exact bit patterns of
// its Poisson rate q·t and truncation epsilon.
type weightKey struct {
	qt, eps uint64
}

// NewUniformized builds the reusable operator for the generator. Only
// UniformizationSlack is consulted from opts; the remaining fields are
// per-solve and passed to Transient.
func NewUniformized(gen *sparse.CSR, opts TransientOptions) (*Uniformized, error) {
	n := gen.Rows()
	if gen.Cols() != n {
		return nil, fmt.Errorf("%w: generator is %dx%d", ErrBadInput, gen.Rows(), gen.Cols())
	}
	q := gen.MaxAbsDiagonal() * opts.slack()
	u := &Uniformized{
		gen:     gen,
		q:       q,
		weights: make(map[weightKey]*foxglynn.Weights),
	}
	if q > 0 {
		pt, err := uniformizedTransposed(gen, q)
		if err != nil {
			return nil, err
		}
		u.pt = pt
	}
	return u, nil
}

// Rate reports the uniformisation constant q.
func (u *Uniformized) Rate() float64 { return u.q }

// NumStates reports the dimension of the underlying chain.
func (u *Uniformized) NumStates() int { return u.gen.Rows() }

// weightsFor returns the Fox–Glynn table for time t and truncation eps,
// computing and caching it on first use.
func (u *Uniformized) weightsFor(t, eps float64) (*foxglynn.Weights, error) {
	key := weightKey{qt: math.Float64bits(u.q * t), eps: math.Float64bits(eps)}
	u.mu.RLock()
	fw, ok := u.weights[key]
	u.mu.RUnlock()
	if ok {
		return fw, nil
	}
	fw, err := foxglynn.Compute(u.q*t, eps)
	if err != nil {
		return nil, err
	}
	u.mu.Lock()
	u.weights[key] = fw
	u.mu.Unlock()
	return fw, nil
}

// TransientDistributions computes the full state distribution of the
// CTMC with the given generator at each time point via uniformisation.
// The generator may be any valid infinitesimal generator, including ones
// with absorbing states; validity is the caller's responsibility at this
// level (Chain validates on construction).
func TransientDistributions(gen *sparse.CSR, alpha, times []float64, opts TransientOptions) (*Result, error) {
	u, err := NewUniformized(gen, opts)
	if err != nil {
		return nil, err
	}
	return u.Transient(alpha, nil, times, opts)
}

// TransientFunctional computes w·π(t) — the probability-weighted sum of
// the functional w over states — at each time point. It shares one
// v_n = α·Pⁿ sequence across all time points, so the cost is that of
// solving only the largest one.
func TransientFunctional(gen *sparse.CSR, alpha, w, times []float64, opts TransientOptions) (*Result, error) {
	if w == nil {
		return nil, fmt.Errorf("%w: nil functional", ErrBadInput)
	}
	u, err := NewUniformized(gen, opts)
	if err != nil {
		return nil, err
	}
	return u.Transient(alpha, w, times, opts)
}

// Transient runs one uniformisation solve on the prebuilt operator: the
// full distribution π(t) at each time point when w is nil, or the
// functional w·π(t) otherwise. The operator's cached Pᵀ and Fox–Glynn
// tables are reused across calls; Epsilon, Workers/Pool, MaxIterations,
// Context, Obs and the callbacks are per-call (UniformizationSlack is
// fixed at construction and ignored here).
func (u *Uniformized) Transient(alpha, w, times []float64, opts TransientOptions) (*Result, error) {
	reg := opts.Obs
	if reg == nil {
		return u.transient(alpha, w, times, opts)
	}
	_, span := obs.StartSpan(opts.Context, reg, "ctmc.transient",
		obs.Int("states", int64(u.gen.Rows())),
		obs.Int("time_points", int64(len(times))))
	res, err := u.transient(alpha, w, times, opts)
	if err != nil {
		reg.Counter("ctmc_solve_errors_total").Inc()
		span.End(obs.String("error", err.Error()))
		return nil, err
	}
	reg.Counter("ctmc_solves_total").Inc()
	reg.Counter("ctmc_uniformization_iterations_total").Add(int64(res.Iterations))
	reg.Counter("ctmc_spmv_total").Add(int64(res.SpMVs))
	if res.FoxGlynnRight > 0 {
		reg.Histogram("ctmc_foxglynn_window").Observe(float64(res.FoxGlynnRight - res.FoxGlynnLeft + 1))
	}
	span.End(
		obs.Int("iterations", int64(res.Iterations)),
		obs.Int("foxglynn_left", int64(res.FoxGlynnLeft)),
		obs.Int("foxglynn_right", int64(res.FoxGlynnRight)),
		obs.Float("rate", res.Rate))
	return res, nil
}

// transient is the uninstrumented solve behind Transient.
func (u *Uniformized) transient(alpha, w, times []float64, opts TransientOptions) (*Result, error) {
	n := u.gen.Rows()
	if len(alpha) != n {
		return nil, fmt.Errorf("%w: |alpha|=%d for %d states", ErrBadInput, len(alpha), n)
	}
	if w != nil && len(w) != n {
		return nil, fmt.Errorf("%w: |w|=%d for %d states", ErrBadInput, len(w), n)
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("%w: no time points", ErrBadInput)
	}
	sum := 0.0
	for _, a := range alpha {
		if a < 0 || math.IsNaN(a) {
			return nil, fmt.Errorf("%w: negative or NaN initial probability", ErrBadInput)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: initial distribution sums to %v", ErrBadInput, sum)
	}
	for _, t := range times {
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("%w: time point %v", ErrBadInput, t)
		}
	}
	if !sort.Float64sAreSorted(times) {
		return nil, fmt.Errorf("%w: time points must be ascending", ErrBadInput)
	}

	check.GeneratorRows("ctmc.transient generator", u.gen)
	check.Probabilities("ctmc.transient initial distribution", alpha)

	res := &Result{Times: append([]float64(nil), times...)}
	res.Rate = u.q

	if u.q == 0 {
		// No transitions anywhere: the distribution never moves.
		return validatedResult(frozenResult(res, alpha, w, times)), nil
	}

	// Poisson windows per time point, and the global iteration bound.
	weights := make([]*foxglynn.Weights, len(times))
	maxRight := 0
	minLeft := math.MaxInt
	for k, t := range times {
		fw, err := u.weightsFor(t, opts.epsilon())
		if err != nil {
			return nil, fmt.Errorf("ctmc: poisson weights for t=%v: %w", t, err)
		}
		weights[k] = fw
		if fw.Right > maxRight {
			maxRight = fw.Right
		}
		if fw.Left < minLeft {
			minLeft = fw.Left
		}
	}
	res.FoxGlynnLeft, res.FoxGlynnRight = minLeft, maxRight
	if opts.MaxIterations > 0 && maxRight > opts.MaxIterations {
		return nil, fmt.Errorf("%w: solve needs %d uniformisation steps, limit is %d",
			ErrIterationBudget, maxRight, opts.MaxIterations)
	}

	pool, ownedPool := opts.pool()
	if ownedPool {
		defer pool.Close()
	}

	// Accumulators.
	if w == nil {
		res.Distributions = make([][]float64, len(times))
		for k := range res.Distributions {
			res.Distributions[k] = make([]float64, n)
		}
	} else {
		res.Values = make([]float64, len(times))
	}

	// foldIn accumulates weight·v into every requested time point.
	foldIn := func(it int, v []float64, tailMass bool) {
		if w == nil {
			for k, fw := range weights {
				p := fw.At(it)
				if tailMass {
					p = tailWeight(fw, it)
				}
				if p > 0 {
					dst := res.Distributions[k]
					for i, vi := range v {
						dst[i] += p * vi
					}
				}
			}
			return
		}
		var s float64
		computed := false
		for k, fw := range weights {
			p := fw.At(it)
			if tailMass {
				p = tailWeight(fw, it)
			}
			if p > 0 {
				if !computed {
					for i, vi := range v {
						s += w[i] * vi
					}
					computed = true
				}
				res.Values[k] += p * s
			}
		}
	}

	// Steady-state detection: once v_{n+1} ≈ v_n the DTMC has converged
	// (all further powers are equal up to the tolerance), so the rest
	// of every Poisson window collapses onto the current vector.
	ssdTol := opts.epsilon()
	checkEvery := 16

	// Iteration scratch: both vectors come from (and return to) the
	// pool's free list, so repeated solves on large chains stop paying
	// two O(states) allocations each.
	v := pool.GetVec(n)
	copy(v, alpha)
	next := pool.GetVec(n)
	defer func() {
		pool.PutVec(v)
		pool.PutVec(next)
	}()
	// Single-time-point distribution solves (wasted-charge, charge
	// moments, state snapshots) fold each iterate into exactly one
	// accumulator, so the fold fuses into the product: dst = Pᵀ·v and
	// acc += p·dst in one pass over the matrix. Iterations that run the
	// steady-state check keep the unfused kernel — the tail fold on
	// convergence must see an un-accumulated iterate, exactly like the
	// serial reference. Every fold is an element-independent multiply-
	// add, so fused and unfused paths are bit-identical.
	fused := w == nil && len(times) == 1
	foldedAhead := false
	for it := 0; it <= maxRight; it++ {
		if ctx := opts.Context; ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("ctmc: transient solve cancelled at step %d: %w", it, err)
			}
		}
		if !foldedAhead {
			foldIn(it, v, false)
		}
		foldedAhead = false
		if it == maxRight {
			break
		}
		ssdNow := !opts.DisableSteadyStateDetection && it%checkEvery == 0
		if fused && !ssdNow {
			if err := pool.MulVecAccum(u.pt, next, v, res.Distributions[0], weights[0].At(it+1)); err != nil {
				return nil, fmt.Errorf("ctmc: uniformisation step %d: %w", it, err)
			}
			foldedAhead = true
		} else if err := pool.MulVec(u.pt, next, v); err != nil {
			return nil, fmt.Errorf("ctmc: uniformisation step %d: %w", it, err)
		}
		if ssdNow {
			maxDelta := 0.0
			for i := range v {
				if d := math.Abs(next[i] - v[i]); d > maxDelta {
					maxDelta = d
				}
			}
			if maxDelta <= ssdTol {
				// Fold the remaining window mass (> it) in one shot.
				v, next = next, v
				res.Iterations++
				res.SpMVs++
				foldIn(it+1, v, true)
				return validatedResult(res), nil
			}
		}
		v, next = next, v
		res.Iterations++
		res.SpMVs++
		if opts.OnIteration != nil {
			opts.OnIteration(res.Iterations, maxRight)
		}
	}
	return validatedResult(res), nil
}

// validatedResult asserts, under the debugchecks build tag, that every
// produced distribution lies in [0,1] and every functional value is
// finite. The loop over time points is guarded by check.Enabled so
// release builds skip it entirely.
func validatedResult(res *Result) *Result {
	if check.Enabled {
		for _, d := range res.Distributions {
			check.UnitInterval("ctmc.transient distribution", d)
		}
		check.FiniteVec("ctmc.transient functional values", res.Values)
	}
	return res
}

// tailWeight returns the total Poisson weight of the window at indices
// >= from.
func tailWeight(fw *foxglynn.Weights, from int) float64 {
	sum := 0.0
	if from < fw.Left {
		from = fw.Left
	}
	for n := from; n <= fw.Right; n++ {
		sum += fw.At(n)
	}
	return sum
}

func frozenResult(res *Result, alpha, w, times []float64) *Result {
	if w == nil {
		res.Distributions = make([][]float64, len(times))
		for k := range res.Distributions {
			res.Distributions[k] = append([]float64(nil), alpha...)
		}
		return res
	}
	res.Values = make([]float64, len(times))
	s := 0.0
	for i, a := range alpha {
		s += w[i] * a
	}
	for k := range res.Values {
		res.Values[k] = s
	}
	return res
}

// uniformizedTransposed returns (I + Q/q) transposed, in CSR form.
//
//numlint:requires positive(q)
func uniformizedTransposed(gen *sparse.CSR, q float64) (*sparse.CSR, error) {
	numlintContract_uniformizedTransposed(q)
	n := gen.Rows()
	b := sparse.NewBuilder(n, n, gen.NNZ()+n)
	for r := 0; r < n; r++ {
		diagSeen := false
		gen.Row(r, func(c int, v float64) {
			if c == r {
				// Transposed: entry (c, r) of Pᵀ.
				b.Add(r, r, 1+v/q)
				diagSeen = true
				return
			}
			b.Add(c, r, v/q)
		})
		if !diagSeen {
			b.Add(r, r, 1)
		}
	}
	pt, err := b.Freeze()
	if err != nil {
		return nil, fmt.Errorf("ctmc: build uniformised matrix: %w", err)
	}
	return pt, nil
}
