package ctmc

import (
	"math"
	"math/rand"
)

// Sampler draws trajectories from a chain. It is not safe for concurrent
// use; create one Sampler per goroutine.
type Sampler struct {
	chain *Chain
	rng   *rand.Rand
	// Per-state jump distributions: succ[i] lists successor states,
	// cum[i] the matching cumulative probabilities.
	succ [][]int
	cum  [][]float64
}

// NewSampler returns a deterministic Sampler seeded with seed.
func NewSampler(c *Chain, seed int64) *Sampler {
	n := c.NumStates()
	s := &Sampler{
		chain: c,
		rng:   rand.New(rand.NewSource(seed)),
		succ:  make([][]int, n),
		cum:   make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		qi := c.ExitRate(i)
		if qi == 0 {
			continue
		}
		c.Generator().Row(i, func(col int, v float64) {
			if col == i {
				return
			}
			s.succ[i] = append(s.succ[i], col)
			s.cum[i] = append(s.cum[i], v/qi)
		})
		for k := 1; k < len(s.cum[i]); k++ {
			s.cum[i][k] += s.cum[i][k-1]
		}
	}
	return s
}

// Sojourn samples the holding time in state i. It returns +Inf for
// absorbing states.
func (s *Sampler) Sojourn(i int) float64 {
	qi := s.chain.ExitRate(i)
	if qi == 0 {
		return math.Inf(1)
	}
	return s.rng.ExpFloat64() / qi
}

// Next samples the successor of state i. Calling Next on an absorbing
// state returns i itself.
func (s *Sampler) Next(i int) int {
	succ := s.succ[i]
	if len(succ) == 0 {
		return i
	}
	u := s.rng.Float64()
	for k, c := range s.cum[i] {
		if u <= c {
			return succ[k]
		}
	}
	return succ[len(succ)-1]
}

// InitialState samples from the initial distribution alpha.
func (s *Sampler) InitialState(alpha []float64) int {
	u := s.rng.Float64()
	acc := 0.0
	for i, a := range alpha {
		acc += a
		if u <= acc {
			return i
		}
	}
	return len(alpha) - 1
}

// Rand exposes the sampler's random source for callers that need
// auxiliary draws tied to the same seed (e.g. stochastic recovery).
func (s *Sampler) Rand() *rand.Rand { return s.rng }

// Step is one jump of a trajectory: the state occupied and for how long.
type Step struct {
	State   int
	Sojourn float64
}

// Trajectory samples the chain from a state drawn from alpha until
// horizon time has elapsed or an absorbing state is entered. The last
// step is truncated at the horizon.
func (s *Sampler) Trajectory(alpha []float64, horizon float64) []Step {
	var steps []Step
	state := s.InitialState(alpha)
	elapsed := 0.0
	for elapsed < horizon {
		d := s.Sojourn(state)
		if math.IsInf(d, 1) || elapsed+d >= horizon {
			steps = append(steps, Step{State: state, Sojourn: horizon - elapsed})
			return steps
		}
		steps = append(steps, Step{State: state, Sojourn: d})
		elapsed += d
		state = s.Next(state)
	}
	return steps
}
