package ctmc

import (
	"context"
	"errors"
	"testing"
)

// batchChain builds a small cyclic chain with an absorbing tail — enough
// structure that transient distributions keep moving for a while and
// steady-state detection eventually fires.
func batchChain(t *testing.T) *Chain {
	t.Helper()
	var b Builder
	b.Transition("a", "b", 2.0)
	b.Transition("b", "c", 1.5)
	b.Transition("c", "a", 0.75)
	b.Transition("c", "d", 0.25)
	b.Transition("b", "d", 0.1)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mustUniformized wraps NewUniformized for tests.
func mustUniformized(t *testing.T, c *Chain, opts TransientOptions) *Uniformized {
	t.Helper()
	u, err := NewUniformized(c.Generator(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// sameResult asserts bit-identity between a batched member's result and
// its solo twin: the batched path promises the exact float sequence of
// the solo solve, not an approximation of it.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Iterations != want.Iterations || got.SpMVs != want.SpMVs {
		t.Errorf("%s: iterations/spmvs = %d/%d, want %d/%d",
			label, got.Iterations, got.SpMVs, want.Iterations, want.SpMVs)
	}
	if got.FoxGlynnLeft != want.FoxGlynnLeft || got.FoxGlynnRight != want.FoxGlynnRight {
		t.Errorf("%s: window [%d,%d], want [%d,%d]",
			label, got.FoxGlynnLeft, got.FoxGlynnRight, want.FoxGlynnLeft, want.FoxGlynnRight)
	}
	if len(got.Values) != len(want.Values) || len(got.Distributions) != len(want.Distributions) {
		t.Fatalf("%s: result arity mismatch", label)
	}
	for j := range got.Values {
		if got.Values[j] != want.Values[j] {
			t.Errorf("%s: Values[%d] = %v, want %v (bit-identical)", label, j, got.Values[j], want.Values[j])
		}
	}
	for j := range got.Distributions {
		for i := range got.Distributions[j] {
			if got.Distributions[j][i] != want.Distributions[j][i] {
				t.Errorf("%s: Distributions[%d][%d] = %v, want %v (bit-identical)",
					label, j, i, got.Distributions[j][i], want.Distributions[j][i])
			}
		}
	}
}

// TestTransientMultiMatchesSolo is the batched path's golden test:
// every member of a mixed batch — different initial distributions,
// different grid lengths and horizons, duplicate grids — must be
// bit-identical to its own solo Transient call, in distribution mode
// and in functional mode, with steady-state detection on and off.
func TestTransientMultiMatchesSolo(t *testing.T) {
	c := batchChain(t)
	n := c.NumStates()
	u := mustUniformized(t, c, TransientOptions{})

	alphas := [][]float64{
		c.PointDistribution(0),
		c.PointDistribution(1),
		c.UniformDistribution(),
		c.PointDistribution(0), // duplicate alpha, distinct grid
	}
	grids := [][]float64{
		{0.5, 1, 2, 8},
		{3},
		{0.25, 40}, // long horizon: SSD retires this member late
		{0.5, 1, 2, 8},
	}
	w := make([]float64, n)
	w[c.Index("d")] = 1

	for _, tc := range []struct {
		name string
		w    []float64
		ssd  bool
	}{
		{"distributions ssd", nil, false},
		{"distributions nossd", nil, true},
		{"functional ssd", w, false},
		{"functional nossd", w, true},
	} {
		opts := TransientOptions{DisableSteadyStateDetection: tc.ssd}
		batch, err := u.TransientMulti(alphas, tc.w, grids, opts)
		if err != nil {
			t.Fatalf("%s: TransientMulti: %v", tc.name, err)
		}
		if len(batch) != len(alphas) {
			t.Fatalf("%s: %d results for %d members", tc.name, len(batch), len(alphas))
		}
		for k := range alphas {
			solo, err := u.Transient(alphas[k], tc.w, grids[k], opts)
			if err != nil {
				t.Fatalf("%s: solo %d: %v", tc.name, k, err)
			}
			sameResult(t, tc.name, batch[k], solo)
		}
	}
}

// TestTransientMultiSingleMemberMatchesFusedSolo pins the fused
// single-time solo path against the (unfused) batched path: the fused
// MulVecAccum step must not change a single bit of the answer.
func TestTransientMultiSingleMemberMatchesFusedSolo(t *testing.T) {
	c := batchChain(t)
	u := mustUniformized(t, c, TransientOptions{})
	alpha := c.PointDistribution(0)
	grid := []float64{2.5} // single time point: solo side takes the fused kernel
	solo, err := u.Transient(alpha, nil, grid, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := u.TransientMulti([][]float64{alpha}, nil, [][]float64{grid}, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "fused-vs-batched", batch[0], solo)
}

// TestTransientMultiZeroGenerator: a transition-free chain freezes every
// member at its initial distribution, as in the solo path.
func TestTransientMultiZeroGenerator(t *testing.T) {
	var b Builder
	b.State("only")
	b.State("other")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := mustUniformized(t, c, TransientOptions{})
	alphas := [][]float64{c.PointDistribution(0), c.PointDistribution(1)}
	grids := [][]float64{{0, 5}, {10}}
	batch, err := u.TransientMulti(alphas, nil, grids, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range batch {
		solo, err := u.Transient(alphas[k], nil, grids[k], TransientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "frozen", batch[k], solo)
	}
}

// TestTransientMultiValidation walks the batched validation surface;
// every rejection must identify itself as ErrBadInput (or the iteration
// budget) without touching the pool.
func TestTransientMultiValidation(t *testing.T) {
	c := batchChain(t)
	n := c.NumStates()
	u := mustUniformized(t, c, TransientOptions{})
	good := c.PointDistribution(0)
	gt := []float64{1, 2}

	bad := make([]float64, n)
	bad[0] = 0.5 // sums to 0.5
	neg := make([]float64, n)
	neg[0], neg[1] = 1.5, -0.5

	cases := []struct {
		name   string
		alphas [][]float64
		w      []float64
		grids  [][]float64
	}{
		{"empty batch", nil, nil, nil},
		{"grid arity", [][]float64{good}, nil, [][]float64{gt, gt}},
		{"alpha length", [][]float64{good[:n-1]}, nil, [][]float64{gt}},
		{"alpha sum", [][]float64{bad}, nil, [][]float64{gt}},
		{"alpha negative", [][]float64{neg}, nil, [][]float64{gt}},
		{"w length", [][]float64{good}, []float64{1}, [][]float64{gt}},
		{"empty grid", [][]float64{good}, nil, [][]float64{{}}},
		{"negative time", [][]float64{good}, nil, [][]float64{{-1}}},
		{"descending grid", [][]float64{good}, nil, [][]float64{{2, 1}}},
	}
	for _, tc := range cases {
		if _, err := u.TransientMulti(tc.alphas, tc.w, tc.grids, TransientOptions{}); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: err = %v, want ErrBadInput", tc.name, err)
		}
	}

	if _, err := u.TransientMulti([][]float64{good}, nil, [][]float64{{1e6}},
		TransientOptions{MaxIterations: 3}); !errors.Is(err, ErrIterationBudget) {
		t.Errorf("iteration budget: err = %v, want ErrIterationBudget", err)
	}
}

// TestTransientMultiCancellation: a cancelled context aborts the batch
// between steps with a wrapped context error.
func TestTransientMultiCancellation(t *testing.T) {
	c := batchChain(t)
	u := mustUniformized(t, c, TransientOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := u.TransientMulti([][]float64{c.PointDistribution(0)}, nil, [][]float64{{5}},
		TransientOptions{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
