package ctmc

import (
	"math"
	"testing"
)

// absorbingChain builds a birth chain 0 → 1 → ... → n (absorbing).
func absorbingChain(t *testing.T, n int, rate float64) *Chain {
	t.Helper()
	var b Builder
	for i := 0; i < n; i++ {
		b.Transition(stateName(i), stateName(i+1), rate)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSteadyStateDetectionMatchesFullRun(t *testing.T) {
	// Query far past absorption: detection must terminate early and
	// agree with the full run to within the epsilon budget.
	c := absorbingChain(t, 10, 2.0)
	alpha := c.PointDistribution(0)
	w := make([]float64, c.NumStates())
	w[c.NumStates()-1] = 1
	times := []float64{200} // absorption happens around t ≈ 5

	full, err := TransientFunctional(c.Generator(), alpha, w, times,
		TransientOptions{DisableSteadyStateDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	detected, err := TransientFunctional(c.Generator(), alpha, w, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Values[0]-detected.Values[0]) > 1e-9 {
		t.Errorf("detected %v vs full %v", detected.Values[0], full.Values[0])
	}
	if detected.Iterations >= full.Iterations/2 {
		t.Errorf("detection saved too little: %d vs %d iterations",
			detected.Iterations, full.Iterations)
	}
	if math.Abs(detected.Values[0]-1) > 1e-9 {
		t.Errorf("absorption probability %v, want 1", detected.Values[0])
	}
}

func TestSteadyStateDetectionDistributions(t *testing.T) {
	c := absorbingChain(t, 6, 3.0)
	alpha := c.PointDistribution(0)
	times := []float64{0.5, 50}
	full, err := c.Transient(alpha, times, TransientOptions{DisableSteadyStateDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	det, err := c.Transient(alpha, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		for i := range alpha {
			if math.Abs(full.Distributions[k][i]-det.Distributions[k][i]) > 1e-9 {
				t.Errorf("t=%v state %d: %v vs %v", times[k], i,
					det.Distributions[k][i], full.Distributions[k][i])
			}
		}
	}
}

func TestSteadyStateDetectionErgodicChain(t *testing.T) {
	// An ergodic chain also converges (to its stationary distribution);
	// detection must return that distribution for late time points.
	c := twoState(t, 2, 6)
	alpha := c.PointDistribution(0)
	res, err := c.Transient(alpha, []float64{500}, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(res.Distributions[0][i]-pi[i]) > 1e-9 {
			t.Errorf("state %d: %v, steady %v", i, res.Distributions[0][i], pi[i])
		}
	}
	if res.Iterations > 2000 {
		t.Errorf("no early termination: %d iterations", res.Iterations)
	}
}

func TestSteadyStateDetectionDoesNotTriggerEarly(t *testing.T) {
	// Mid-transient queries must be unaffected by the detection logic.
	c := twoState(t, 1.5, 0.5)
	alpha := c.PointDistribution(0)
	times := []float64{0.1, 0.5, 1.2}
	full, err := c.Transient(alpha, times, TransientOptions{DisableSteadyStateDetection: true})
	if err != nil {
		t.Fatal(err)
	}
	det, err := c.Transient(alpha, times, TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		for i := range alpha {
			if math.Abs(full.Distributions[k][i]-det.Distributions[k][i]) > 1e-9 {
				t.Errorf("t=%v state %d: %v vs %v", times[k], i,
					det.Distributions[k][i], full.Distributions[k][i])
			}
		}
	}
}
