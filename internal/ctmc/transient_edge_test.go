package ctmc

import (
	"math"
	"testing"

	"batlife/internal/sparse"
)

func assertDistributionsFinite(t *testing.T, res *Result) {
	t.Helper()
	for k, d := range res.Distributions {
		sum := 0.0
		for i, p := range d {
			if math.IsNaN(p) || math.IsInf(p, 0) || p < -1e-9 || p > 1+1e-9 {
				t.Fatalf("t=%v: state %d probability %v", res.Times[k], i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-8 {
			t.Fatalf("t=%v: distribution mass %v, want 1", res.Times[k], sum)
		}
	}
}

// TestTransientZeroUniformisationRate covers the q = 0 corner: a
// generator with no transitions at all (every state absorbing). The
// solver must not divide by the zero rate; the distribution is frozen
// at alpha for all times.
func TestTransientZeroUniformisationRate(t *testing.T) {
	const n = 3
	gen, err := sparse.NewBuilder(n, n, 0).Freeze()
	if err != nil {
		t.Fatalf("empty generator: %v", err)
	}
	alpha := []float64{0.2, 0.5, 0.3}
	times := []float64{0, 1, 1e6}

	res, err := TransientDistributions(gen, alpha, times, TransientOptions{})
	if err != nil {
		t.Fatalf("TransientDistributions: %v", err)
	}
	if res.Rate != 0 {
		t.Fatalf("uniformisation rate %v, want 0", res.Rate)
	}
	assertDistributionsFinite(t, res)
	for k := range times {
		for i := range alpha {
			if res.Distributions[k][i] != alpha[i] {
				t.Fatalf("t=%v: state %d moved from %v to %v with no transitions",
					times[k], i, alpha[i], res.Distributions[k][i])
			}
		}
	}

	// The functional path through the same corner.
	w := []float64{1, 10, 100}
	fres, err := TransientFunctional(gen, alpha, w, times, TransientOptions{})
	if err != nil {
		t.Fatalf("TransientFunctional: %v", err)
	}
	want := 0.2*1 + 0.5*10 + 0.3*100
	for k, v := range fres.Values {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("t=%v: functional %v, want %v", times[k], v, want)
		}
	}
}

// TestTransientAbsorbingOnlyChain drives a chain whose only dynamics is
// absorption at very large horizons. All mass must end in the absorbing
// state with no NaN/Inf anywhere — this is the regime where steady-state
// detection folds a huge Poisson tail in one shot.
func TestTransientAbsorbingOnlyChain(t *testing.T) {
	var b Builder
	b.Transition("on", "dead", 2.0)
	chain, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	alpha := chain.PointDistribution(chain.Index("on"))
	times := []float64{0.1, 1, 100, 1e4}

	res, err := chain.Transient(alpha, times, TransientOptions{})
	if err != nil {
		t.Fatalf("Transient: %v", err)
	}
	assertDistributionsFinite(t, res)

	dead := chain.Index("dead")
	for k, tp := range times {
		want := 1 - math.Exp(-2*tp)
		if got := res.Distributions[k][dead]; math.Abs(got-want) > 1e-8 {
			t.Fatalf("t=%v: absorbed mass %v, want %v", tp, got, want)
		}
	}
	// The last horizon corresponds to q·t ≈ 2e4; the full window would
	// be ~2e4 iterations, so detection must have cut it short.
	if res.Iterations > 5000 {
		t.Fatalf("steady-state detection did not engage: %d iterations", res.Iterations)
	}
}

// TestTransientRejectsBadTimes pins explicit errors for NaN/Inf inputs
// rather than silent propagation.
func TestTransientRejectsBadTimes(t *testing.T) {
	var b Builder
	b.Transition("a", "b", 1)
	chain, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	alpha := chain.UniformDistribution()
	for _, times := range [][]float64{
		{math.NaN()},
		{math.Inf(1)},
		{-1},
		{},
	} {
		if _, err := chain.Transient(alpha, times, TransientOptions{}); err == nil {
			t.Fatalf("Transient(%v) accepted invalid time points", times)
		}
	}
}
