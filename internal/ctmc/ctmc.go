// Package ctmc implements continuous-time Markov chains: construction
// and validation of generator matrices, steady-state and transient
// analysis, and trajectory sampling.
//
// The package serves two distinct scales. Workload models (Section 4.3
// of the paper) have a handful of states and are handled through the
// Chain type. The expanded chains produced by the Markovian
// approximation (Section 5) have up to millions of states; for those the
// transient engine operates directly on sparse generators — see
// TransientFunctional and TransientDistributions — and is shared by both
// scales.
package ctmc

import (
	"errors"
	"fmt"
	"math"

	"batlife/internal/check"
	"batlife/internal/linalg"
	"batlife/internal/sparse"
)

// ErrInvalidChain reports a malformed generator or distribution.
var ErrInvalidChain = errors.New("ctmc: invalid chain")

// Builder assembles a CTMC from named states and transitions.
// The zero value is ready to use.
type Builder struct {
	names   []string
	index   map[string]int
	entries []transition
}

type transition struct {
	from, to int
	rate     float64
}

// State adds (or looks up) a state by name and returns its index.
func (b *Builder) State(name string) int {
	if b.index == nil {
		b.index = make(map[string]int)
	}
	if i, ok := b.index[name]; ok {
		return i
	}
	i := len(b.names)
	b.names = append(b.names, name)
	b.index[name] = i
	return i
}

// Transition adds a transition between named states with the given rate.
// Rates must be positive and finite; violations surface at Build time.
func (b *Builder) Transition(from, to string, rate float64) {
	b.entries = append(b.entries, transition{from: b.State(from), to: b.State(to), rate: rate})
}

// Build validates the accumulated model and returns the chain.
func (b *Builder) Build() (*Chain, error) {
	n := len(b.names)
	if n == 0 {
		return nil, fmt.Errorf("%w: no states", ErrInvalidChain)
	}
	sb := sparse.NewBuilder(n, n, len(b.entries)*2)
	for _, tr := range b.entries {
		if tr.rate <= 0 || math.IsNaN(tr.rate) || math.IsInf(tr.rate, 0) {
			return nil, fmt.Errorf("%w: transition %s -> %s has rate %v",
				ErrInvalidChain, b.names[tr.from], b.names[tr.to], tr.rate)
		}
		if tr.from == tr.to {
			return nil, fmt.Errorf("%w: self-loop on state %s", ErrInvalidChain, b.names[tr.from])
		}
		sb.Add(tr.from, tr.to, tr.rate)
		sb.Add(tr.from, tr.from, -tr.rate)
	}
	gen, err := sb.Freeze()
	if err != nil {
		return nil, fmt.Errorf("ctmc: freeze generator: %w", err)
	}
	return NewChain(append([]string(nil), b.names...), gen)
}

// Chain is an immutable CTMC with named states.
type Chain struct {
	names []string
	gen   *sparse.CSR
	exit  []float64 // exit rate q_i = -Q[i][i]
}

// NewChain wraps a generator matrix, validating that it is a proper
// infinitesimal generator (non-negative off-diagonal, rows sum to zero).
func NewChain(names []string, gen *sparse.CSR) (*Chain, error) {
	n := gen.Rows()
	if gen.Cols() != n {
		return nil, fmt.Errorf("%w: generator is %dx%d", ErrInvalidChain, gen.Rows(), gen.Cols())
	}
	if names != nil && len(names) != n {
		return nil, fmt.Errorf("%w: %d names for %d states", ErrInvalidChain, len(names), n)
	}
	if names == nil {
		names = make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("s%d", i)
		}
	}
	exit := make([]float64, n)
	for r := 0; r < n; r++ {
		var diag, offSum float64
		bad := false
		gen.Row(r, func(c int, v float64) {
			if c == r {
				diag = v
				return
			}
			if v < 0 {
				bad = true
			}
			offSum += v
		})
		if bad {
			return nil, fmt.Errorf("%w: negative off-diagonal rate in row %d (%s)",
				ErrInvalidChain, r, names[r])
		}
		if math.Abs(diag+offSum) > 1e-9*(1+offSum) {
			return nil, fmt.Errorf("%w: row %d (%s) sums to %v, want 0",
				ErrInvalidChain, r, names[r], diag+offSum)
		}
		exit[r] = -diag
	}
	return &Chain{names: names, gen: gen, exit: exit}, nil
}

// NumStates reports the number of states.
func (c *Chain) NumStates() int { return len(c.exit) }

// Name returns the name of state i.
func (c *Chain) Name(i int) string { return c.names[i] }

// Index returns the index of the named state, or -1.
func (c *Chain) Index(name string) int {
	for i, n := range c.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Generator returns the generator matrix. Callers must not modify it.
func (c *Chain) Generator() *sparse.CSR { return c.gen }

// ExitRate returns q_i, the total rate out of state i.
func (c *Chain) ExitRate(i int) float64 { return c.exit[i] }

// IsAbsorbing reports whether state i has no outgoing transitions.
func (c *Chain) IsAbsorbing(i int) bool { return c.exit[i] == 0 }

// SteadyState solves πQ = 0, Σπ = 1 for an irreducible chain using a
// dense LU solve; it is intended for workload-scale models.
func (c *Chain) SteadyState() ([]float64, error) {
	n := c.NumStates()
	if n > 4096 {
		return nil, fmt.Errorf("ctmc: steady state of %d states exceeds dense solver limit", n)
	}
	// Solve Qᵀπ = 0 with the last equation replaced by Σπ = 1.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for r := 0; r < n; r++ {
		c.gen.Row(r, func(col int, v float64) {
			a[col][r] = v
		})
	}
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1
	pi, err := linalg.SolveReal(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctmc: steady state (chain may be reducible): %w", err)
	}
	for i, p := range pi {
		if p < -1e-9 {
			return nil, fmt.Errorf("%w: steady-state probability %v for state %s",
				ErrInvalidChain, p, c.names[i])
		}
		if p < 0 {
			pi[i] = 0
		}
	}
	// Σπ = 1 is an equation of the solve; after clamping the residual
	// negatives, non-negativity is the remaining invariant to assert.
	check.NonNegative("ctmc.SteadyState", pi)
	return pi, nil
}

// Transient returns the state distribution at each requested time,
// starting from the initial distribution alpha.
func (c *Chain) Transient(alpha []float64, times []float64, opts TransientOptions) (*Result, error) {
	return TransientDistributions(c.gen, alpha, times, opts)
}

// UniformDistribution returns the uniform initial distribution: n
// entries of 1/n sum to 1 by construction.
//
//numlint:ensures normalized
func (c *Chain) UniformDistribution() []float64 {
	n := c.NumStates()
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = 1 / float64(n)
	}
	numlintContract_Chain_UniformDistribution_ensures(alpha)
	return alpha
}

// PointDistribution returns the distribution concentrated on state i:
// unit mass on a single coordinate by construction.
//
//numlint:ensures normalized
func (c *Chain) PointDistribution(i int) []float64 {
	alpha := make([]float64, c.NumStates())
	alpha[i] = 1
	numlintContract_Chain_PointDistribution_ensures(alpha)
	return alpha
}
