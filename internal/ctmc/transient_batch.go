package ctmc

import (
	"fmt"
	"math"
	"sort"

	"batlife/internal/check"
	"batlife/internal/foxglynn"
	"batlife/internal/obs"
)

// TransientMulti runs a batch of transient solves against one prebuilt
// operator in lockstep: right-hand side k starts from alphas[k] and is
// evaluated at the time points grids[k] (each ascending), with w — when
// non-nil — the shared functional (w·π(t) per grid point; nil yields
// full distributions). Every uniformisation step advances all still-
// active right-hand sides through one batched Pᵀ product
// (sparse.Pool.MulVecMulti), so the matrix is traversed once per step
// for the whole batch instead of once per solve — the amortisation a
// scenario sweep over one expanded chain wants.
//
// Results[k] is bit-identical to the solo call
// Transient(alphas[k], w, grids[k], opts): each right-hand side's
// iterate sequence, Poisson folds, steady-state detection schedule and
// tail handling are exactly those of its own solo solve. A right-hand
// side whose Fox–Glynn window (or steady-state detection) finishes
// early retires from the batch and stops paying products.
//
// Epsilon, Pool/Workers, MaxIterations, Context and Obs behave as in
// Transient. OnIteration is not supported on the batched path (there is
// no single iteration total to report against) and is ignored.
func (u *Uniformized) TransientMulti(alphas [][]float64, w []float64, grids [][]float64, opts TransientOptions) ([]*Result, error) {
	reg := opts.Obs
	if reg == nil {
		return u.transientMulti(alphas, w, grids, opts)
	}
	_, span := obs.StartSpan(opts.Context, reg, "ctmc.transient_multi",
		obs.Int("states", int64(u.gen.Rows())),
		obs.Int("rhs", int64(len(alphas))))
	ress, err := u.transientMulti(alphas, w, grids, opts)
	if err != nil {
		reg.Counter("ctmc_solve_errors_total").Inc()
		span.End(obs.String("error", err.Error()))
		return nil, err
	}
	var iters, spmvs int64
	for _, res := range ress {
		iters += int64(res.Iterations)
		spmvs += int64(res.SpMVs)
		if res.FoxGlynnRight > 0 {
			reg.Histogram("ctmc_foxglynn_window").Observe(float64(res.FoxGlynnRight - res.FoxGlynnLeft + 1))
		}
	}
	reg.Counter("ctmc_solves_total").Add(int64(len(ress)))
	reg.Counter("ctmc_batched_solves_total").Inc()
	reg.Counter("ctmc_uniformization_iterations_total").Add(iters)
	reg.Counter("ctmc_spmv_total").Add(spmvs)
	span.End(obs.Int("iterations", iters))
	return ress, nil
}

// batchMember is the per-right-hand-side iteration state of one batched
// transient solve.
type batchMember struct {
	k        int
	res      *Result
	weights  []*foxglynn.Weights
	maxRight int
	v, next  []float64
	w        []float64 // shared functional, nil for distribution solves
}

// foldIn accumulates weight·v into every requested time point of this
// member — the batched twin of the solo solve's foldIn closure.
func (b *batchMember) foldIn(it int, v []float64, tailMass bool) {
	if b.w == nil {
		for k, fw := range b.weights {
			p := fw.At(it)
			if tailMass {
				p = tailWeight(fw, it)
			}
			if p > 0 {
				dst := b.res.Distributions[k]
				for i, vi := range v {
					dst[i] += p * vi
				}
			}
		}
		return
	}
	var s float64
	computed := false
	for k, fw := range b.weights {
		p := fw.At(it)
		if tailMass {
			p = tailWeight(fw, it)
		}
		if p > 0 {
			if !computed {
				for i, vi := range v {
					s += b.w[i] * vi
				}
				computed = true
			}
			b.res.Values[k] += p * s
		}
	}
}

// transientMulti is the uninstrumented solve behind TransientMulti.
func (u *Uniformized) transientMulti(alphas [][]float64, w []float64, grids [][]float64, opts TransientOptions) ([]*Result, error) {
	n := u.gen.Rows()
	if len(alphas) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadInput)
	}
	if len(grids) != len(alphas) {
		return nil, fmt.Errorf("%w: %d time grids for %d right-hand sides", ErrBadInput, len(grids), len(alphas))
	}
	if w != nil && len(w) != n {
		return nil, fmt.Errorf("%w: |w|=%d for %d states", ErrBadInput, len(w), n)
	}
	for k, alpha := range alphas {
		if len(alpha) != n {
			return nil, fmt.Errorf("%w: rhs %d: |alpha|=%d for %d states", ErrBadInput, k, len(alpha), n)
		}
		sum := 0.0
		for _, a := range alpha {
			if a < 0 || math.IsNaN(a) {
				return nil, fmt.Errorf("%w: rhs %d: negative or NaN initial probability", ErrBadInput, k)
			}
			sum += a
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("%w: rhs %d: initial distribution sums to %v", ErrBadInput, k, sum)
		}
		times := grids[k]
		if len(times) == 0 {
			return nil, fmt.Errorf("%w: rhs %d: no time points", ErrBadInput, k)
		}
		for _, t := range times {
			if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
				return nil, fmt.Errorf("%w: rhs %d: time point %v", ErrBadInput, k, t)
			}
		}
		if !sort.Float64sAreSorted(times) {
			return nil, fmt.Errorf("%w: rhs %d: time points must be ascending", ErrBadInput, k)
		}
	}

	check.GeneratorRows("ctmc.transientMulti generator", u.gen)

	ress := make([]*Result, len(alphas))
	if u.q == 0 {
		// No transitions anywhere: every distribution stays frozen.
		for k := range ress {
			res := &Result{Times: append([]float64(nil), grids[k]...)}
			ress[k] = validatedResult(frozenResult(res, alphas[k], w, grids[k]))
		}
		return ress, nil
	}

	// Per-member Poisson windows and accumulators.
	members := make([]*batchMember, len(alphas))
	globalMax := 0
	for k := range alphas {
		times := grids[k]
		res := &Result{Times: append([]float64(nil), times...), Rate: u.q}
		weights := make([]*foxglynn.Weights, len(times))
		maxRight := 0
		minLeft := math.MaxInt
		for j, t := range times {
			fw, err := u.weightsFor(t, opts.epsilon())
			if err != nil {
				return nil, fmt.Errorf("ctmc: rhs %d: poisson weights for t=%v: %w", k, t, err)
			}
			weights[j] = fw
			if fw.Right > maxRight {
				maxRight = fw.Right
			}
			if fw.Left < minLeft {
				minLeft = fw.Left
			}
		}
		res.FoxGlynnLeft, res.FoxGlynnRight = minLeft, maxRight
		if opts.MaxIterations > 0 && maxRight > opts.MaxIterations {
			return nil, fmt.Errorf("%w: rhs %d needs %d uniformisation steps, limit is %d",
				ErrIterationBudget, k, maxRight, opts.MaxIterations)
		}
		if w == nil {
			res.Distributions = make([][]float64, len(times))
			for j := range res.Distributions {
				res.Distributions[j] = make([]float64, n)
			}
		} else {
			res.Values = make([]float64, len(times))
		}
		members[k] = &batchMember{k: k, res: res, weights: weights, maxRight: maxRight, w: w}
		if maxRight > globalMax {
			globalMax = maxRight
		}
		ress[k] = res
	}

	pool, ownedPool := opts.pool()
	if ownedPool {
		defer pool.Close()
	}
	for _, b := range members {
		b.v = pool.GetVec(n)
		copy(b.v, alphas[b.k])
		b.next = pool.GetVec(n)
	}
	defer func() {
		for _, b := range members {
			pool.PutVec(b.v)
			pool.PutVec(b.next)
		}
	}()

	ssdTol := opts.epsilon()
	checkEvery := 16

	// Reusable product argument slices sized for the whole batch.
	xs := make([][]float64, 0, len(members))
	ds := make([][]float64, 0, len(members))

	// The active set is filtered in place as members retire; it must not
	// share a backing array with members, which the scratch-vector
	// cleanup above iterates in full.
	active := append(make([]*batchMember, 0, len(members)), members...)
	for it := 0; it <= globalMax && len(active) > 0; it++ {
		if ctx := opts.Context; ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("ctmc: batched transient solve cancelled at step %d: %w", it, err)
			}
		}
		// Fold this iterate into every member's accumulators; members at
		// the end of their window retire — like the solo loop's break.
		live := active[:0]
		for _, b := range active {
			b.foldIn(it, b.v, false)
			if it < b.maxRight {
				live = append(live, b)
			}
		}
		active = live
		if len(active) == 0 {
			break
		}

		// One batched product advances every live right-hand side.
		xs, ds = xs[:0], ds[:0]
		for _, b := range active {
			xs = append(xs, b.v)
			ds = append(ds, b.next)
		}
		if err := pool.MulVecMulti(u.pt, ds, xs); err != nil {
			return nil, fmt.Errorf("ctmc: batched uniformisation step %d: %w", it, err)
		}

		if !opts.DisableSteadyStateDetection && it%checkEvery == 0 {
			live = active[:0]
			for _, b := range active {
				maxDelta := 0.0
				for i := range b.v {
					if d := math.Abs(b.next[i] - b.v[i]); d > maxDelta {
						maxDelta = d
					}
				}
				if maxDelta <= ssdTol {
					// Converged: fold the remaining window mass in one
					// shot and retire, exactly like the solo solve.
					b.v, b.next = b.next, b.v
					b.res.Iterations++
					b.res.SpMVs++
					b.foldIn(it+1, b.v, true)
					continue
				}
				live = append(live, b)
			}
			active = live
		}
		for _, b := range active {
			b.v, b.next = b.next, b.v
			b.res.Iterations++
			b.res.SpMVs++
		}
	}
	for k := range ress {
		validatedResult(ress[k])
	}
	return ress, nil
}
