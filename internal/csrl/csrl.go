// Package csrl implements time-bounded until operators over CTMCs — the
// probability that a chain reaches a goal set within a time bound while
// staying inside a safe set. This is the model-checking machinery of
// CSL/CSRL that the paper's authors developed the performability
// algorithms for in the first place ([15], [16], [17] in the paper);
// applied to the expanded battery chains of internal/core and
// internal/multireward it answers mission questions such as "does the
// device finish its task before the battery dies?".
//
// The algorithms are the standard transient-analysis reductions:
//
//   - Until(safe, goal, t): make goal states and unsafe states
//     absorbing; Pr = goal mass of the transient distribution at t.
//   - UntilInterval(safe, goal, t1, t2): two phases. During [0, t1]
//     only unsafe states are absorbing (the path must stay safe but may
//     pass through goal states); the phase-1 distribution (with unsafe
//     mass discarded) seeds a phase-2 Until over [0, t2 − t1].
package csrl

import (
	"errors"
	"fmt"

	"batlife/internal/ctmc"
	"batlife/internal/sparse"
)

// ErrBadQuery reports invalid until-query arguments.
var ErrBadQuery = errors.New("csrl: invalid query")

// Until returns Pr{ X stays in safe until it enters goal, within t } for
// each time point (ascending). States in neither set are unsafe and
// absorb failure. A state in both sets counts as goal.
func Until(gen *sparse.CSR, alpha []float64, safe, goal func(int) bool, times []float64, opts ctmc.TransientOptions) ([]float64, error) {
	if err := checkQuery(gen, alpha, safe, goal); err != nil {
		return nil, err
	}
	n := gen.Rows()
	absorbing := func(i int) bool { return goal(i) || !safe(i) }
	restricted, err := absorbify(gen, absorbing)
	if err != nil {
		return nil, err
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		if goal(i) {
			w[i] = 1
		}
	}
	res, err := ctmc.TransientFunctional(restricted, alpha, w, times, opts)
	if err != nil {
		return nil, fmt.Errorf("csrl: until: %w", err)
	}
	return clamp(res.Values), nil
}

// UntilInterval returns Pr{ X stays in safe during [0, t2] and is in
// goal at some instant of [t1, t2] } for a single interval query.
func UntilInterval(gen *sparse.CSR, alpha []float64, safe, goal func(int) bool, t1, t2 float64, opts ctmc.TransientOptions) (float64, error) {
	if err := checkQuery(gen, alpha, safe, goal); err != nil {
		return 0, err
	}
	if t1 < 0 || t2 < t1 {
		return 0, fmt.Errorf("%w: interval [%v, %v]", ErrBadQuery, t1, t2)
	}
	n := gen.Rows()
	phase1Alpha := alpha
	if t1 > 0 {
		// Phase 1: stay safe during [0, t1]; goal states are ordinary.
		unsafeAbs, err := absorbify(gen, func(i int) bool { return !safe(i) })
		if err != nil {
			return 0, err
		}
		res, err := ctmc.TransientDistributions(unsafeAbs, alpha, []float64{t1}, opts)
		if err != nil {
			return 0, fmt.Errorf("csrl: until-interval phase 1: %w", err)
		}
		// Discard the mass that fell into unsafe states; the remainder
		// is a defective distribution — renormalising would be wrong,
		// so phase 2 runs with the defect (the result is the joint
		// probability, as desired).
		v := res.Distributions[0]
		for i := 0; i < n; i++ {
			if !safe(i) {
				v[i] = 0
			}
		}
		phase1Alpha = v
	}
	// Phase 2: an ordinary Until over [0, t2 − t1] from the (defective)
	// phase-1 distribution. TransientFunctional validates that initial
	// vectors are distributions, so run the defective vector through a
	// manual split: total defect mass d contributes 0.
	total := 0.0
	for _, p := range phase1Alpha {
		total += p
	}
	if total == 0 {
		return 0, nil
	}
	scaled := make([]float64, n)
	for i, p := range phase1Alpha {
		scaled[i] = p / total
	}
	probs, err := Until(gen, scaled, safe, goal, []float64{t2 - t1}, opts)
	if err != nil {
		return 0, err
	}
	return probs[0] * total, nil
}

// checkQuery validates the common arguments.
func checkQuery(gen *sparse.CSR, alpha []float64, safe, goal func(int) bool) error {
	if gen == nil || gen.Rows() != gen.Cols() {
		return fmt.Errorf("%w: generator must be square", ErrBadQuery)
	}
	if len(alpha) != gen.Rows() {
		return fmt.Errorf("%w: |alpha|=%d for %d states", ErrBadQuery, len(alpha), gen.Rows())
	}
	if safe == nil || goal == nil {
		return fmt.Errorf("%w: nil predicate", ErrBadQuery)
	}
	return nil
}

// absorbify returns a copy of the generator with all outgoing
// transitions of the selected states removed.
func absorbify(gen *sparse.CSR, absorbing func(int) bool) (*sparse.CSR, error) {
	n := gen.Rows()
	b := sparse.NewBuilder(n, n, gen.NNZ())
	for r := 0; r < n; r++ {
		if absorbing(r) {
			continue
		}
		gen.Row(r, func(c int, v float64) {
			b.Add(r, c, v)
		})
	}
	out, err := b.Freeze()
	if err != nil {
		return nil, fmt.Errorf("csrl: absorbify: %w", err)
	}
	return out, nil
}

func clamp(vals []float64) []float64 {
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		} else if v > 1 {
			vals[i] = 1
		}
	}
	return vals
}
