package csrl

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/ctmc"
	"batlife/internal/multireward"
	"batlife/internal/units"
	"batlife/internal/workload"
)

// raceChain builds start --g--> goal, start --u--> bad.
func raceChain(t *testing.T, g, u float64) *ctmc.Chain {
	t.Helper()
	var b ctmc.Builder
	b.Transition("start", "goal", g)
	b.Transition("start", "bad", u)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUntilErlangClosedForm(t *testing.T) {
	// a → b → c at rate r, goal = c, everything safe:
	// Pr = Erlang(2, r) CDF.
	var b ctmc.Builder
	b.Transition("a", "b", 3)
	b.Transition("b", "c", 3)
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	goalIdx := chain.Index("c")
	times := []float64{0.2, 0.5, 1, 2}
	probs, err := Until(chain.Generator(), chain.PointDistribution(0),
		func(int) bool { return true },
		func(i int) bool { return i == goalIdx },
		times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range times {
		want := 1 - math.Exp(-3*tm)*(1+3*tm)
		if math.Abs(probs[k]-want) > 1e-10 {
			t.Errorf("t=%v: %v, want %v", tm, probs[k], want)
		}
	}
}

func TestUntilRace(t *testing.T) {
	// Race between goal (rate g) and unsafe (rate u):
	// Pr[goal by t] = g/(g+u) · (1 − e^{−(g+u)t}).
	g, u := 2.0, 5.0
	chain := raceChain(t, g, u)
	goalIdx, badIdx := chain.Index("goal"), chain.Index("bad")
	times := []float64{0.1, 0.5, 3}
	probs, err := Until(chain.Generator(), chain.PointDistribution(chain.Index("start")),
		func(i int) bool { return i != badIdx },
		func(i int) bool { return i == goalIdx },
		times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range times {
		want := g / (g + u) * (1 - math.Exp(-(g+u)*tm))
		if math.Abs(probs[k]-want) > 1e-10 {
			t.Errorf("t=%v: %v, want %v", tm, probs[k], want)
		}
	}
}

func TestUntilFromGoalState(t *testing.T) {
	chain := raceChain(t, 1, 1)
	goalIdx := chain.Index("goal")
	probs, err := Until(chain.Generator(), chain.PointDistribution(goalIdx),
		func(int) bool { return true },
		func(i int) bool { return i == goalIdx },
		[]float64{0.01}, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 1 {
		t.Errorf("starting in goal: Pr = %v, want 1", probs[0])
	}
}

func TestUntilFromUnsafeState(t *testing.T) {
	chain := raceChain(t, 1, 1)
	badIdx, goalIdx := chain.Index("bad"), chain.Index("goal")
	probs, err := Until(chain.Generator(), chain.PointDistribution(badIdx),
		func(i int) bool { return i != badIdx },
		func(i int) bool { return i == goalIdx },
		[]float64{10}, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 0 {
		t.Errorf("starting unsafe: Pr = %v, want 0", probs[0])
	}
}

func TestUntilIntervalZeroT1MatchesUntil(t *testing.T) {
	chain := raceChain(t, 1.5, 0.5)
	goalIdx, badIdx := chain.Index("goal"), chain.Index("bad")
	safe := func(i int) bool { return i != badIdx }
	goal := func(i int) bool { return i == goalIdx }
	alpha := chain.PointDistribution(chain.Index("start"))
	plain, err := Until(chain.Generator(), alpha, safe, goal, []float64{2}, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	interval, err := UntilInterval(chain.Generator(), alpha, safe, goal, 0, 2, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain[0]-interval) > 1e-12 {
		t.Errorf("interval [0,2] %v vs plain %v", interval, plain[0])
	}
}

func TestUntilIntervalClosedForm(t *testing.T) {
	// start → goal at rate g, no unsafe states, goal absorbing in the
	// chain itself: Pr[in goal during [t1,t2]] = Pr[jump by t2]
	// (being in goal at any instant of the window requires only
	// reaching it by t2... it is absorbing, so reaching by t2 suffices;
	// paths that reached it before t1 remain there at t1).
	var b ctmc.Builder
	b.Transition("start", "goal", 2)
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	goalIdx := chain.Index("goal")
	p, err := UntilInterval(chain.Generator(), chain.PointDistribution(0),
		func(int) bool { return true },
		func(i int) bool { return i == goalIdx },
		1, 3, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-2*3)
	if math.Abs(p-want) > 1e-10 {
		t.Errorf("interval Pr = %v, want %v", p, want)
	}
}

func TestUntilIntervalUnsafeBeforeT1(t *testing.T) {
	// Paths killed before t1 must not count even if they would have
	// reached the goal later. Chain: start --u--> bad --g--> goal.
	var b ctmc.Builder
	b.Transition("start", "bad", 100)
	b.Transition("bad", "goal", 100)
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	badIdx, goalIdx := chain.Index("bad"), chain.Index("goal")
	p, err := UntilInterval(chain.Generator(), chain.PointDistribution(chain.Index("start")),
		func(i int) bool { return i != badIdx },
		func(i int) bool { return i == goalIdx },
		1, 2, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Reaching the goal requires passing through bad, which is unsafe.
	if p > 1e-12 {
		t.Errorf("Pr = %v, want 0", p)
	}
}

func TestUntilQueryValidation(t *testing.T) {
	chain := raceChain(t, 1, 1)
	alpha := chain.PointDistribution(0)
	any := func(int) bool { return true }
	if _, err := Until(nil, alpha, any, any, []float64{1}, ctmc.TransientOptions{}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("nil generator: err = %v", err)
	}
	if _, err := Until(chain.Generator(), alpha[:1], any, any, []float64{1}, ctmc.TransientOptions{}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("short alpha: err = %v", err)
	}
	if _, err := Until(chain.Generator(), alpha, nil, any, []float64{1}, ctmc.TransientOptions{}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("nil safe: err = %v", err)
	}
	if _, err := UntilInterval(chain.Generator(), alpha, any, any, 2, 1, ctmc.TransientOptions{}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("inverted interval: err = %v", err)
	}
}

// TestBatteryMission asks the motivating question: does the device
// deliver a target amount of energy before the battery dies? Modelled
// as a 2-reward grid (charge, delivered-energy counter) with a CSRL
// until over the expanded chain.
func TestBatteryMission(t *testing.T) {
	const (
		capacity = 1800.0
		delta    = 60.0
		target   = 12 // delivered-energy levels to count as mission done
	)
	w, err := workload.OnOff(0.2, 1, units.Amperes(1))
	if err != nil {
		t.Fatal(err)
	}
	n1 := int(capacity/delta) + 1
	nd := target + 1 // counter saturates at the target
	spec := multireward.Spec{
		Chain:       w.Chain,
		Levels:      []int{n1, nd},
		Initial:     w.Initial,
		InitialCell: []int{n1 - 2, 0},
		Moves: func(state int, cell []int) []multireward.Move {
			if cell[0] == 0 {
				return nil
			}
			var moves []multireward.Move
			if cur := w.Currents[state]; cur > 0 {
				shift := []int{-1, 1}
				if cell[1] >= nd-1 {
					shift = []int{-1, 0} // counter saturated
				}
				moves = append(moves, multireward.Move{Rate: cur / delta, Shift: shift})
			}
			return moves
		},
		Absorbing: func(_ int, cell []int) bool { return cell[0] == 0 },
	}
	g, err := multireward.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	safe := g.Indicator(func(_ int, cell []int) bool { return cell[0] > 0 })
	done := g.Indicator(func(_ int, cell []int) bool { return cell[1] >= target })

	times := []float64{1000, 3000, 8000}
	probs, err := Until(g.Generator(), g.InitialVector(), safe, done, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Monotone in t, and eventually certain: the mission needs 12 of
	// the 28 available levels, so the battery always survives it.
	prev := 0.0
	for k, p := range probs {
		if p < prev-1e-12 {
			t.Fatalf("mission probability decreased: %v", probs)
		}
		prev = p
		if k == len(probs)-1 && p < 0.999 {
			t.Errorf("mission not certain by t=8000: %v", p)
		}
	}
	// With a mission larger than the battery (target beyond capacity
	// levels), success must be impossible — tested via an unreachable
	// goal threshold on the same grid.
	impossible := g.Indicator(func(_ int, cell []int) bool { return cell[1] >= nd })
	probs2, err := Until(g.Generator(), g.InitialVector(), safe, impossible, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs2 {
		if p != 0 {
			t.Errorf("unreachable mission Pr = %v", p)
		}
	}
}
