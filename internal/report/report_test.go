package report

import (
	"errors"
	"strings"
	"testing"
)

func validTable() *Table {
	return &Table{
		XName:  "t_s",
		X:      []float64{0, 10, 20, 30},
		Names:  []string{"approx", "sim"},
		Series: [][]float64{{0, 0.2, 0.7, 1}, {0, 0.1, 0.8, 1}},
	}
}

func TestValidate(t *testing.T) {
	if err := validTable().Validate(); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Table)
	}{
		{"empty axis", func(tb *Table) { tb.X = nil }},
		{"no series", func(tb *Table) { tb.Series = nil; tb.Names = nil }},
		{"name mismatch", func(tb *Table) { tb.Names = tb.Names[:1] }},
		{"ragged series", func(tb *Table) { tb.Series[1] = tb.Series[1][:2] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := validTable()
			tc.mutate(tb)
			if err := tb.Validate(); !errors.Is(err, ErrBadTable) {
				t.Errorf("err = %v, want ErrBadTable", err)
			}
		})
	}
}

func TestWriteTSV(t *testing.T) {
	var sb strings.Builder
	if err := validTable().WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	if lines[0] != "t_s\tapprox\tsim" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != "10\t0.200000\t0.100000" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWriteTSVInvalid(t *testing.T) {
	tb := validTable()
	tb.X = nil
	var sb strings.Builder
	if err := tb.WriteTSV(&sb); !errors.Is(err, ErrBadTable) {
		t.Errorf("err = %v, want ErrBadTable", err)
	}
}

func TestChartBasics(t *testing.T) {
	chart, err := validTable().Chart(ChartOptions{Width: 40, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "*") || !strings.Contains(chart, "o") {
		t.Errorf("chart missing series glyphs:\n%s", chart)
	}
	if !strings.Contains(chart, "approx") || !strings.Contains(chart, "sim") {
		t.Errorf("chart missing legend:\n%s", chart)
	}
	if !strings.Contains(chart, "t_s") {
		t.Errorf("chart missing axis label:\n%s", chart)
	}
	// Axis extremes rendered.
	if !strings.Contains(chart, "0") || !strings.Contains(chart, "30") {
		t.Errorf("chart missing axis range:\n%s", chart)
	}
	for _, line := range strings.Split(chart, "\n") {
		if len([]rune(line)) > 40+12 {
			t.Errorf("line wider than plot area: %q", line)
		}
	}
}

func TestChartMonotoneCurveOrientation(t *testing.T) {
	// An increasing curve must have its glyph in the top-right and
	// bottom-left regions, not the reverse.
	tb := &Table{
		XName:  "x",
		X:      []float64{0, 1, 2, 3},
		Names:  []string{"up"},
		Series: [][]float64{{0, 1, 2, 3}},
	}
	chart, err := tb.Chart(ChartOptions{Width: 20, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(chart, "\n")
	top, bottom := lines[0], lines[7]
	if !strings.Contains(top, "*") {
		t.Errorf("top row missing the curve maximum:\n%s", chart)
	}
	if strings.Index(bottom, "*") > strings.Index(top, "*") {
		t.Errorf("curve slopes the wrong way:\n%s", chart)
	}
}

func TestChartFixedRange(t *testing.T) {
	tb := validTable()
	chart, err := tb.Chart(ChartOptions{Width: 20, Height: 6, YMin: 0, YMax: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "2 ") {
		t.Errorf("fixed YMax not rendered:\n%s", chart)
	}
}

func TestChartDegenerateData(t *testing.T) {
	// Constant series and single-point axis must not divide by zero.
	tb := &Table{
		XName:  "x",
		X:      []float64{5},
		Names:  []string{"flat"},
		Series: [][]float64{{1}},
	}
	if _, err := tb.Chart(ChartOptions{}); err != nil {
		t.Errorf("degenerate chart failed: %v", err)
	}
}

func TestChartInvalidTable(t *testing.T) {
	tb := validTable()
	tb.Series = nil
	tb.Names = nil
	if _, err := tb.Chart(ChartOptions{}); !errors.Is(err, ErrBadTable) {
		t.Errorf("err = %v, want ErrBadTable", err)
	}
}
