// Package report renders computed curves for humans: tab-separated
// tables for downstream tooling and ASCII charts for terminals. The
// experiment driver (cmd/paperfigs) and the CLI (cmd/batlife) share it.
package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ErrBadTable reports inconsistent table data.
var ErrBadTable = errors.New("report: invalid table")

// Table is a set of named series over a shared X axis.
type Table struct {
	// XName labels the axis column.
	XName string
	// X holds the axis values.
	X []float64
	// Names labels the series.
	Names []string
	// Series holds one row of Y values per name, each len(X) long.
	Series [][]float64
}

// Validate reports whether the table is rectangular.
func (t *Table) Validate() error {
	if len(t.X) == 0 {
		return fmt.Errorf("%w: empty axis", ErrBadTable)
	}
	if len(t.Names) != len(t.Series) {
		return fmt.Errorf("%w: %d names for %d series", ErrBadTable, len(t.Names), len(t.Series))
	}
	if len(t.Series) == 0 {
		return fmt.Errorf("%w: no series", ErrBadTable)
	}
	for i, s := range t.Series {
		if len(s) != len(t.X) {
			return fmt.Errorf("%w: series %q has %d points for %d axis values",
				ErrBadTable, t.Names[i], len(s), len(t.X))
		}
	}
	return nil
}

// WriteTSV writes the table as tab-separated values with a header row.
func (t *Table) WriteTSV(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	cols := append([]string{t.XName}, t.Names...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, "\t")); err != nil {
		return err
	}
	for i, x := range t.X {
		row := make([]string, 0, len(cols))
		row = append(row, strconv.FormatFloat(x, 'g', 8, 64))
		for _, s := range t.Series {
			row = append(row, strconv.FormatFloat(s[i], 'f', 6, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// ChartOptions tunes ASCII rendering.
type ChartOptions struct {
	// Width and Height are the plot area size in characters; zero
	// selects 64×16.
	Width, Height int
	// YMin and YMax fix the Y range; when both are zero the range is
	// taken from the data.
	YMin, YMax float64
}

func (o ChartOptions) size() (int, int) {
	w, h := o.Width, o.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	return w, h
}

// seriesGlyphs mark the successive series in a chart.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the table as an ASCII chart: one glyph per series,
// a legend, and axis labels. Intended for quick terminal inspection,
// not precision.
func (t *Table) Chart(opts ChartOptions) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	width, height := opts.size()

	xMin, xMax := t.X[0], t.X[len(t.X)-1]
	//numlint:ignore floatcmp degenerate-range sentinel; any nonzero span scales finitely
	if xMax == xMin {
		xMax = xMin + 1
	}
	yMin, yMax := opts.YMin, opts.YMax
	if yMin == 0 && yMax == 0 {
		yMin, yMax = math.Inf(1), math.Inf(-1)
		for _, s := range t.Series {
			for _, v := range s {
				yMin = math.Min(yMin, v)
				yMax = math.Max(yMax, v)
			}
		}
		//numlint:ignore floatcmp degenerate-range sentinel; any nonzero span scales finitely
		if yMax == yMin {
			yMax = yMin + 1
		}
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, glyph byte) {
		cx := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
		cy := int(math.Round((y - yMin) / (yMax - yMin) * float64(height-1)))
		if cx < 0 || cx >= width || cy < 0 || cy >= height {
			return
		}
		grid[height-1-cy][cx] = glyph
	}
	for si, s := range t.Series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i, v := range s {
			plot(t.X[i], v, glyph)
		}
		// Linear interpolation between samples for denser lines.
		for i := 1; i < len(s); i++ {
			steps := width / len(t.X)
			for st := 1; st < steps; st++ {
				f := float64(st) / float64(steps)
				plot(t.X[i-1]+f*(t.X[i]-t.X[i-1]), s[i-1]+f*(s[i]-s[i-1]), glyph)
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%8.3g ┤%s\n", yMax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&sb, "%8s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&sb, "%8.3g ┤%s\n", yMin, string(grid[height-1]))
	fmt.Fprintf(&sb, "%8s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&sb, "%9s%-*g%*g\n", "", width/2, xMin, width-width/2, xMax)
	fmt.Fprintf(&sb, "%9s%s\n", "", t.XName)
	for si, name := range t.Names {
		fmt.Fprintf(&sb, "%9s%c %s\n", "", seriesGlyphs[si%len(seriesGlyphs)], name)
	}
	return sb.String(), nil
}
