package rao

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"batlife/internal/kibam"
)

// calibrated returns the modified-KiBaM battery fitted to the paper's
// procedure: continuous 0.96 A load lasts 90 minutes.
func calibrated(t *testing.T) Params {
	t.Helper()
	k, err := CalibrateK(7200, 0.625, 1, 0.96, 90*60)
	if err != nil {
		t.Fatal(err)
	}
	return Params{Capacity: 7200, C: 0.625, K: k}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{"good", Params{Capacity: 7200, C: 0.625, K: 4.5e-5}, false},
		{"c=1 not allowed", Params{Capacity: 7200, C: 1, K: 4.5e-5}, true},
		{"bad capacity", Params{Capacity: 0, C: 0.5, K: 1e-5}, true},
		{"negative gamma", Params{Capacity: 1, C: 0.5, K: 1e-5, Gamma: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadParams) {
				t.Errorf("error %v does not wrap ErrBadParams", err)
			}
		})
	}
}

func TestFlowDampedByBoundHeight(t *testing.T) {
	p := Params{Capacity: 7200, C: 0.625, K: 4.5e-5}
	// Same height difference, less bound charge: the modified flow must
	// be smaller. Construct two states with identical h2−h1.
	full := kibam.State{Y1: 2000, Y2: 2400}   // h1=3200, h2=6400, diff 3200
	drained := kibam.State{Y1: 500, Y2: 1500} // h1=800,  h2=4000, diff 3200
	plain := kibam.Params{Capacity: p.Capacity, C: p.C, K: p.K}
	if d1, d2 := plain.HeightDiff(full), plain.HeightDiff(drained); math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("test states have different height gaps: %v vs %v", d1, d2)
	}
	if f1, f2 := p.flow(full), p.flow(drained); f2 >= f1 {
		t.Errorf("flow with drained bound well %v not below %v", f2, f1)
	}
}

func TestFlowGating(t *testing.T) {
	p := Params{Capacity: 7200, C: 0.625, K: 4.5e-5}
	if f := p.flow(kibam.State{Y1: 1000, Y2: 0}); f != 0 {
		t.Errorf("flow with empty bound well = %v", f)
	}
	// Bound well lower than available well: no reverse flow.
	if f := p.flow(kibam.State{Y1: 4500, Y2: 100}); f != 0 {
		t.Errorf("uphill flow = %v", f)
	}
}

func TestStepConservesChargeDuringRest(t *testing.T) {
	p := calibrated(t)
	loaded := p.Step(p.FullState(), 0.96, 2000, 0)
	rested := p.Step(loaded, 0, 3000, 0)
	if math.Abs(rested.Total()-loaded.Total()) > 1e-6 {
		t.Errorf("rest changed total: %v -> %v", loaded.Total(), rested.Total())
	}
	if rested.Y1 <= loaded.Y1 {
		t.Errorf("no recovery: %v -> %v", loaded.Y1, rested.Y1)
	}
}

func TestRecoverySlowerThanPlainKiBaM(t *testing.T) {
	// With identical constants, the modified model must recover less
	// during the same rest period (that is its whole point).
	k := 4.5e-5
	mod := Params{Capacity: 7200, C: 0.625, K: k}
	plain := kibam.Params{Capacity: 7200, C: 0.625, K: k}
	loadedPlain := plain.Step(plain.FullState(), 0.96, 2000)
	loadedMod := mod.Step(mod.FullState(), 0.96, 2000, 0)
	gainPlain := plain.Step(loadedPlain, 0, 1000).Y1 - loadedPlain.Y1
	gainMod := mod.Step(loadedMod, 0, 1000, 0).Y1 - loadedMod.Y1
	if gainMod >= gainPlain {
		t.Errorf("modified recovery %v not below plain %v", gainMod, gainPlain)
	}
}

func TestCalibrationHitsTarget(t *testing.T) {
	p := calibrated(t)
	life, err := p.Lifetime(kibam.ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 1, modified KiBaM numerical, continuous: 89-90 min.
	if math.Abs(life/60-90) > 0.5 {
		t.Errorf("continuous lifetime = %v min, want 90", life/60)
	}
}

func TestCalibrateKErrors(t *testing.T) {
	if _, err := CalibrateK(7200, 0.625, 1, 0.96, 1000); !errors.Is(err, ErrBadParams) {
		t.Errorf("unreachably low target: err = %v", err)
	}
	if _, err := CalibrateK(7200, 0.625, 1, 0.96, 9000); !errors.Is(err, ErrBadParams) {
		t.Errorf("unreachably high target: err = %v", err)
	}
	if _, err := CalibrateK(7200, 0.625, 1, 0, 5400); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero load: err = %v", err)
	}
}

func TestNumericalLifetimeFrequencyIndependent(t *testing.T) {
	// Table 1, "Modified KiBaM numerical": 193 min at 1 Hz and at
	// 0.2 Hz — the deterministic evaluation shows no frequency
	// dependence, which is the discrepancy the paper reports.
	p := calibrated(t)
	l1, err := p.Lifetime(kibam.SquareWave{On: 0.96, Frequency: 1})
	if err != nil {
		t.Fatal(err)
	}
	l02, err := p.Lifetime(kibam.SquareWave{On: 0.96, Frequency: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(l1-l02) / 60; diff > 1 {
		t.Errorf("deterministic lifetimes differ by %v min across frequencies", diff)
	}
	// The absolute value must be near the paper's 193 (we measure ~195
	// with our reconstruction of the recovery damping).
	if min := l1 / 60; math.Abs(min-193) > 5 {
		t.Errorf("1 Hz lifetime = %v min, paper reports 193", min)
	}
}

func TestStochasticLifetimeFrequencyDependent(t *testing.T) {
	// The stochastic variant must live longer at 0.2 Hz than at 1 Hz —
	// the qualitative behaviour of the experimental data (230 vs 193)
	// that deterministic evaluation cannot show.
	p := calibrated(t)
	sp := StochasticParams{Params: p}
	m1, _, err := sp.MeanLifetime(1, 10, kibam.SquareWave{On: 0.96, Frequency: 1})
	if err != nil {
		t.Fatal(err)
	}
	m02, _, err := sp.MeanLifetime(2, 10, kibam.SquareWave{On: 0.96, Frequency: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m02 <= m1 {
		t.Errorf("stochastic lifetime at 0.2 Hz (%v min) not above 1 Hz (%v min)", m02/60, m1/60)
	}
}

func TestStochasticContinuousMatchesDeterministic(t *testing.T) {
	// Without idle periods the activation mechanism is irrelevant.
	p := calibrated(t)
	det, err := p.Lifetime(kibam.ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	sp := StochasticParams{Params: p}
	life, err := sp.SimulateLifetime(rand.New(rand.NewSource(3)), kibam.ConstantLoad(0.96))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(life-det) > 1 {
		t.Errorf("stochastic continuous %v vs deterministic %v", life, det)
	}
}

func TestStochasticReproducibleWithSeed(t *testing.T) {
	p := calibrated(t)
	sp := StochasticParams{Params: p}
	w := kibam.SquareWave{On: 0.96, Frequency: 0.5}
	a, err := sp.SimulateLifetime(rand.New(rand.NewSource(7)), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.SimulateLifetime(rand.New(rand.NewSource(7)), w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different lifetimes: %v vs %v", a, b)
	}
}

func TestMeanLifetimeErrors(t *testing.T) {
	p := calibrated(t)
	sp := StochasticParams{Params: p}
	if _, _, err := sp.MeanLifetime(1, 0, kibam.ConstantLoad(1)); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero runs: err = %v", err)
	}
	if _, err := p.Lifetime(kibam.ConstantLoad(0)); !errors.Is(err, ErrNoDepletion) {
		t.Errorf("zero load: err = %v", err)
	}
}

func TestHigherGammaDampsMore(t *testing.T) {
	w := kibam.SquareWave{On: 0.96, Frequency: 1}
	base := Params{Capacity: 7200, C: 0.625, K: 4.5e-5, Gamma: 1}
	strong := Params{Capacity: 7200, C: 0.625, K: 4.5e-5, Gamma: 3}
	l1, err := base.Lifetime(w)
	if err != nil {
		t.Fatal(err)
	}
	l3, err := strong.Lifetime(w)
	if err != nil {
		t.Fatal(err)
	}
	if l3 >= l1 {
		t.Errorf("gamma=3 lifetime %v not below gamma=1 lifetime %v", l3, l1)
	}
}

func BenchmarkNumericalLifetime1Hz(b *testing.B) {
	k, err := CalibrateK(7200, 0.625, 1, 0.96, 90*60)
	if err != nil {
		b.Fatal(err)
	}
	p := Params{Capacity: 7200, C: 0.625, K: k}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Lifetime(kibam.SquareWave{On: 0.96, Frequency: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStochasticLifetime(b *testing.B) {
	k, err := CalibrateK(7200, 0.625, 1, 0.96, 90*60)
	if err != nil {
		b.Fatal(err)
	}
	sp := StochasticParams{Params: Params{Capacity: 7200, C: 0.625, K: k}}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.SimulateLifetime(rng, kibam.SquareWave{On: 0.96, Frequency: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
