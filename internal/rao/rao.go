// Package rao implements the modified Kinetic Battery Model of Rao,
// Singhal, Kumar and Navet ("Battery model for embedded systems",
// VLSID 2005), the comparison model of the paper's Table 1.
//
// The paper describes the modification as giving the recovery rate "an
// additional dependence on the height of the bound-charge well, making
// the recovery slower when less charge is left in the battery". Rao et
// al.'s own description is not reproduced in the paper, so this package
// realises exactly that sentence (see DESIGN.md, substitution 2): the
// well flow becomes
//
//	flow = k · (h2 − h1) · (h2 / h2max)^γ,       γ = 1 by default,
//
// which coincides with the plain KiBaM at full charge and vanishes as
// the bound well drains.
//
// Two evaluators are provided, matching the two Table 1 columns:
//
//   - Deterministic: a fixed-step RK4 integrator (the flow is no longer
//     linear, so there is no closed form). With a deterministic square
//     wave this variant remains frequency-independent — the discrepancy
//     the paper reports and could not resolve with the original authors.
//   - Stochastic: a discrete-time simulation in which recovery needs a
//     random diffusion-activation delay after the load is removed. Long
//     idle periods are therefore more valuable per unit of idle time
//     than short ones, making the computed lifetime frequency-dependent
//     in the same direction as Rao et al.'s measurements.
package rao

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"batlife/internal/kibam"
)

// ErrBadParams reports invalid model parameters.
var ErrBadParams = errors.New("rao: invalid parameters")

// ErrNoDepletion reports a load profile that never empties the battery.
var ErrNoDepletion = errors.New("rao: profile never depletes the battery")

// Params extends the KiBaM constants with the recovery exponent.
type Params struct {
	// Capacity, C and K are as in the plain KiBaM.
	Capacity float64
	C        float64
	K        float64
	// Gamma is the exponent of the bound-height recovery factor; zero
	// selects 1. Gamma = 0 is not representable (it would be the plain
	// KiBaM; use package kibam for that).
	Gamma float64
}

func (p Params) gamma() float64 {
	if p.Gamma == 0 {
		return 1
	}
	return p.Gamma
}

// Validate reports whether the parameters describe a usable battery.
func (p Params) Validate() error {
	base := kibam.Params{Capacity: p.Capacity, C: p.C, K: p.K}
	if err := base.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	if p.C >= 1 {
		return fmt.Errorf("%w: modified KiBaM needs a bound well (c < 1), got c = %v", ErrBadParams, p.C)
	}
	if p.gamma() < 0 || math.IsNaN(p.gamma()) {
		return fmt.Errorf("%w: gamma = %v", ErrBadParams, p.Gamma)
	}
	return nil
}

// FullState returns the state of a freshly charged battery.
func (p Params) FullState() kibam.State {
	return kibam.State{Y1: p.C * p.Capacity, Y2: (1 - p.C) * p.Capacity}
}

// h2max is the bound-well height at full charge, (1−c)·C/(1−c) = C.
func (p Params) h2max() float64 { return p.Capacity }

// flow evaluates the modified transfer rate at the given state.
func (p Params) flow(s kibam.State) float64 {
	if s.Y2 <= 0 {
		return 0
	}
	h1 := s.Y1 / p.C
	h2 := s.Y2 / (1 - p.C)
	if h2 <= h1 {
		return 0
	}
	return p.K * (h2 - h1) * math.Pow(h2/p.h2max(), p.gamma())
}

// derivatives returns (dy1/dt, dy2/dt) under the given load.
func (p Params) derivatives(s kibam.State, current float64) (float64, float64) {
	f := p.flow(s)
	return -current + f, -f
}

// Step advances the battery under constant current for dt seconds using
// RK4 with the given step count (<= 0 selects steps so that each RK4
// step spans at most 0.25 s). The available well is not clamped at zero.
func (p Params) Step(s kibam.State, current, dt float64, steps int) kibam.State {
	if dt <= 0 {
		return s
	}
	if steps <= 0 {
		steps = int(dt/0.25) + 1
	}
	h := dt / float64(steps)
	for i := 0; i < steps; i++ {
		k11, k12 := p.derivatives(s, current)
		k21, k22 := p.derivatives(kibam.State{Y1: s.Y1 + h/2*k11, Y2: s.Y2 + h/2*k12}, current)
		k31, k32 := p.derivatives(kibam.State{Y1: s.Y1 + h/2*k21, Y2: s.Y2 + h/2*k22}, current)
		k41, k42 := p.derivatives(kibam.State{Y1: s.Y1 + h*k31, Y2: s.Y2 + h*k32}, current)
		s.Y1 += h / 6 * (k11 + 2*k21 + 2*k31 + k41)
		s.Y2 += h / 6 * (k12 + 2*k22 + 2*k32 + k42)
		if s.Y2 < 0 {
			s.Y2 = 0
		}
	}
	return s
}

// Lifetime integrates the battery under a piecewise-constant load until
// the available charge first reaches zero, from the full state. This is
// the "Modified KiBaM, numerical" column of Table 1.
func (p Params) Lifetime(profile kibam.Profile) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	s := p.FullState()
	elapsed := 0.0
	drawn := 0.0
	for i := 0; ; i++ {
		seg := profile.Segment(i)
		if seg.Current < 0 || seg.Duration <= 0 || math.IsNaN(seg.Current) || math.IsNaN(seg.Duration) {
			return 0, fmt.Errorf("%w: segment %d: current %v, duration %v",
				ErrBadParams, i, seg.Current, seg.Duration)
		}
		dur := seg.Duration
		if math.IsInf(dur, 1) {
			if seg.Current <= 0 {
				return 0, fmt.Errorf("%w: infinite idle segment %d", ErrNoDepletion, i)
			}
			dur = s.Total()/seg.Current + 1 // total-charge bound
		}
		// Integrate in sub-steps, watching for the zero crossing.
		const maxStep = 0.25
		steps := int(dur/maxStep) + 1
		h := dur / float64(steps)
		for j := 0; j < steps; j++ {
			next := p.Step(s, seg.Current, h, 1)
			if next.Y1 <= 0 {
				// Linear interpolation of the crossing inside the step.
				frac := 1.0
				if d := s.Y1 - next.Y1; d > 0 {
					frac = s.Y1 / d
				}
				return elapsed + float64(j)*h + frac*h, nil
			}
			s = next
		}
		elapsed += dur
		drawn += seg.Current * dur
		if drawn > 2*p.Capacity {
			return 0, fmt.Errorf("%w: drew %v As from a %v As battery", ErrNoDepletion, drawn, p.Capacity)
		}
	}
}

// CalibrateK fits k so that the continuous-load lifetime matches target
// seconds, mirroring kibam.CalibrateK for the modified model.
func CalibrateK(capacity, c, gamma, load, target float64) (float64, error) {
	if load <= 0 || target <= 0 {
		return 0, fmt.Errorf("%w: load %v, target %v", ErrBadParams, load, target)
	}
	lifeAt := func(k float64) (float64, error) {
		p := Params{Capacity: capacity, C: c, K: k, Gamma: gamma}
		return p.Lifetime(kibam.ConstantLoad(load))
	}
	minLife := c * capacity / load
	if target < minLife {
		return 0, fmt.Errorf("%w: target %v below zero-transfer lifetime %v", ErrBadParams, target, minLife)
	}
	if target >= capacity/load {
		return 0, fmt.Errorf("%w: target %v not below ideal lifetime %v", ErrBadParams, target, capacity/load)
	}
	hi := 1e-6
	for {
		l, err := lifeAt(hi)
		if err != nil {
			return 0, err
		}
		if l >= target {
			break
		}
		hi *= 2
		if hi > 1e6 {
			return 0, fmt.Errorf("%w: cannot bracket k", ErrBadParams)
		}
	}
	lo := 0.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		l, err := lifeAt(mid)
		if err != nil {
			return 0, err
		}
		if l < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// StochasticParams parameterises the stochastic evaluator.
type StochasticParams struct {
	Params
	// ActivationTime is the mean diffusion-activation delay θ in
	// seconds: after the load drops to zero, recovery starts after an
	// Exp(1/θ) delay and stops as soon as load resumes. Zero selects
	// 0.3 s.
	ActivationTime float64
	// SlotDT is the simulation slot length in seconds; zero selects
	// 0.02 s.
	SlotDT float64
}

func (sp StochasticParams) theta() float64 {
	if sp.ActivationTime <= 0 {
		return 0.3
	}
	return sp.ActivationTime
}

func (sp StochasticParams) slot() float64 {
	if sp.SlotDT <= 0 {
		return 0.02
	}
	return sp.SlotDT
}

// SimulateLifetime draws one lifetime sample under the profile.
func (sp StochasticParams) SimulateLifetime(rng *rand.Rand, profile kibam.Profile) (float64, error) {
	if err := sp.Validate(); err != nil {
		return 0, err
	}
	s := sp.FullState()
	elapsed := 0.0
	drawn := 0.0
	dt := sp.slot()
	segIdx := 0
	seg := profile.Segment(0)
	segLeft := seg.Duration
	active := false        // diffusion currently active
	pending := math.Inf(1) // sampled delay until activation
	for {
		if seg.Current > 0 {
			active = false
			pending = math.Inf(1)
		} else if !active {
			if math.IsInf(pending, 1) {
				pending = rng.ExpFloat64() * sp.theta()
			}
			if pending <= 0 {
				active = true
			}
		}
		step := math.Min(dt, segLeft)
		if math.IsInf(step, 1) {
			if seg.Current <= 0 {
				return 0, fmt.Errorf("%w: infinite idle segment %d", ErrNoDepletion, segIdx)
			}
			step = dt
		}
		// Integrate one slot: discharge always applies; recovery flow
		// only while diffusion is active.
		var next kibam.State
		if seg.Current > 0 || active {
			next = sp.Step(s, seg.Current, step, 1)
		} else {
			next = s // idle, diffusion not yet active: nothing moves
		}
		if next.Y1 <= 0 {
			frac := 1.0
			if d := s.Y1 - next.Y1; d > 0 {
				frac = s.Y1 / d
			}
			return elapsed + frac*step, nil
		}
		s = next
		elapsed += step
		drawn += seg.Current * step
		segLeft -= step
		if seg.Current <= 0 && !active {
			pending -= step
			if pending <= 0 {
				active = true
			}
		}
		if segLeft <= 1e-12 {
			segIdx++
			seg = profile.Segment(segIdx)
			segLeft = seg.Duration
		}
		if drawn > 2*sp.Capacity {
			return 0, fmt.Errorf("%w: drew %v As from a %v As battery", ErrNoDepletion, drawn, sp.Capacity)
		}
	}
}

// MeanLifetime averages runs independent lifetime samples and returns
// the sample mean and standard deviation. This is the "Modified KiBaM,
// stochastic" column of Table 1.
func (sp StochasticParams) MeanLifetime(seed int64, runs int, profile kibam.Profile) (mean, stddev float64, err error) {
	if runs <= 0 {
		return 0, 0, fmt.Errorf("%w: runs = %d", ErrBadParams, runs)
	}
	rng := rand.New(rand.NewSource(seed))
	sum, sumSq := 0.0, 0.0
	for i := 0; i < runs; i++ {
		life, err := sp.SimulateLifetime(rng, profile)
		if err != nil {
			return 0, 0, err
		}
		sum += life
		sumSq += life * life
	}
	mean = sum / float64(runs)
	variance := sumSq/float64(runs) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), nil
}
