package sparse

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"batlife/internal/check"
	"batlife/internal/obs"
)

// PoolMetrics bundles the observability handles a Pool records into.
// The counters are resolved once at pool construction (metric lookup is
// a lock + map read, too slow for the SpMV path) and are nil-safe, so a
// metrics-free pool costs exactly a handful of nil checks per product.
type PoolMetrics struct {
	// SpMV counts every matrix-vector product (each right-hand side of a
	// batched product counts once); SpMVParallel the subset dispatched
	// across worker goroutines (large matrices only); SpMVFused the
	// fused multiply-accumulate products; SpMVBatched the batched
	// multi-RHS dispatches (one per MulVecMulti call).
	SpMV, SpMVParallel, SpMVFused, SpMVBatched *obs.Counter
	// VecGets, VecPuts and VecAllocs describe the scratch-vector pool:
	// gets and puts are deterministic per solve; allocs additionally
	// counts gets that found no reusable buffer (sync.Pool eviction makes
	// this one nondeterministic).
	VecGets, VecPuts, VecAllocs *obs.Counter
	// WorkersBusy gauges how many persistent workers are currently
	// executing row chunks — the pool's instantaneous utilization.
	WorkersBusy *obs.Gauge
	// TaskWait observes, per dispatched product, the seconds between
	// enqueueing the task and the first worker picking it up.
	TaskWait *obs.Histogram
	// PartitionImbalance gauges the nnz-balance quality of the most
	// recently used row partition: max chunk weight over ideal chunk
	// weight (1.0 is perfectly balanced).
	PartitionImbalance *obs.Gauge
}

// PoolMetricsFrom resolves the pool metric handles from a registry; a
// nil registry yields all-nil handles (every record is a no-op).
func PoolMetricsFrom(reg *obs.Registry) PoolMetrics {
	if reg == nil {
		return PoolMetrics{}
	}
	return PoolMetrics{
		SpMV:               reg.Counter("sparse_pool_spmv_total"),
		SpMVParallel:       reg.Counter("sparse_pool_spmv_parallel_total"),
		SpMVFused:          reg.Counter("sparse_pool_spmv_fused_total"),
		SpMVBatched:        reg.Counter("sparse_pool_spmv_batched_total"),
		VecGets:            reg.Counter("sparse_pool_vec_gets_total"),
		VecPuts:            reg.Counter("sparse_pool_vec_puts_total"),
		VecAllocs:          reg.Counter("sparse_pool_vec_allocs_total"),
		WorkersBusy:        reg.Gauge("sparse_pool_workers_busy"),
		TaskWait:           reg.Histogram("sparse_pool_task_wait_seconds"),
		PartitionImbalance: reg.Gauge("sparse_pool_partition_imbalance"),
	}
}

// parallelThreshold is the matrix size below which products stay on the
// calling goroutine: the fork cost of a parallel dispatch only pays for
// itself once a product is a few hundred microseconds of work.
const parallelThreshold = 4096

// Pool executes parallel matrix-vector products over a set of
// long-lived worker goroutines and recycles iteration-scratch vectors.
// A zero-value Pool is not valid; use NewPool.
//
// Workers are started lazily on the first product large enough to
// parallelise and then persist — a product costs channel sends, not
// goroutine spawns. Close shuts the workers down; a closed pool remains
// usable but runs every product serially, so Close is always safe to
// call even with products still in flight (they complete on the calling
// goroutine). Pools that never see a large product never start a
// goroutine.
type Pool struct {
	workers int
	m       PoolMetrics
	vecs    sync.Pool // of *[]float64

	startOnce sync.Once
	tasks     chan *spmvJob
	quit      chan struct{}
	workerWG  sync.WaitGroup
	closed    atomic.Bool
}

// NewPool returns a Pool with the given parallelism; workers <= 0 selects
// runtime.NumCPU().
func NewPool(workers int) *Pool {
	return NewPoolObs(workers, nil)
}

// NewPoolObs is NewPool with an observability registry; the pool's SpMV
// and scratch-vector traffic is recorded there. A nil registry disables
// recording at no cost.
func NewPoolObs(workers int, reg *obs.Registry) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers, m: PoolMetricsFrom(reg)}
}

var defaultPool = sync.OnceValue(func() *Pool { return NewPool(0) })

// DefaultPool returns the process-wide shared pool (NumCPU workers).
// Callers that need SpMV parallelism but own no pool — one-shot
// transient solves, tests, the deprecated free functions — share this
// instance instead of spawning worker sets per solve. It is never
// closed; close only pools you created.
func DefaultPool() *Pool { return defaultPool() }

// Workers reports the pool's parallelism.
func (p *Pool) Workers() int { return p.workers }

// Close shuts down the pool's persistent workers and waits for them to
// exit. Products already dispatched complete (their calling goroutines
// finish any chunks the workers abandoned), and later products run
// serially on the caller. Close is idempotent and safe to race with
// in-flight products.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		p.workerWG.Wait() // a concurrent first Close wins; wait with it
		return
	}
	// Consume the start slot so a racing product cannot spawn workers
	// after the quit broadcast; if start already ran this is a no-op and
	// quit is non-nil.
	p.startOnce.Do(func() {})
	if p.quit != nil {
		close(p.quit)
	}
	p.workerWG.Wait()
}

// start lazily spawns the worker goroutines. It reports whether the
// runtime is usable (false once the pool is closed).
func (p *Pool) start() bool {
	if p.closed.Load() {
		return false
	}
	p.startOnce.Do(func() {
		// The dispatching goroutine always participates in its own
		// product, so workers-1 persistent goroutines give `workers`
		// concurrent strands per product.
		n := p.workers - 1
		p.tasks = make(chan *spmvJob, 2*p.workers)
		p.quit = make(chan struct{})
		p.workerWG.Add(n)
		for i := 0; i < n; i++ {
			go p.worker()
		}
	})
	// Close may have raced the start; its quit broadcast is ordered
	// after the Do above, so the workers (if any) are already stopping
	// and the caller must run the product itself.
	return !p.closed.Load()
}

// worker is the body of one persistent pool goroutine: pick up a
// dispatched product, drain row chunks from its cursor, repeat.
func (p *Pool) worker() {
	defer p.workerWG.Done()
	for {
		select {
		case <-p.quit:
			return
		case j := <-p.tasks:
			j.observeWait(&p.m)
			p.m.WorkersBusy.Add(1)
			j.run()
			p.m.WorkersBusy.Add(-1)
		}
	}
}

// Kernel opcodes of a dispatched job.
const (
	opMul = iota
	opAccum
	opMulti
)

// spmvJob is one parallel product: an immutable task description plus a
// work-stealing cursor over the matrix's nnz-balanced row chunks.
// Workers and the dispatching caller all drain the cursor, so a
// straggling chunk never serialises the product and a closed pool
// degrades to the caller doing every chunk itself.
type spmvJob struct {
	op     uint8
	m      *CSR
	x, dst []float64
	acc    []float64 // opAccum
	w      float64   // opAccum
	xs     [][]float64
	dsts   [][]float64 // opMulti
	bounds []int32     // row chunk boundaries, len = chunks+1

	next    atomic.Int32
	pending sync.WaitGroup // one count per chunk

	enqueuedNanos int64 // 0 when task-wait recording is off
	waitObserved  atomic.Bool
}

// observeWait records the enqueue-to-pickup latency once per job.
func (j *spmvJob) observeWait(m *PoolMetrics) {
	if j.enqueuedNanos == 0 || j.waitObserved.Swap(true) {
		return
	}
	m.TaskWait.Observe(float64(time.Now().UnixNano()-j.enqueuedNanos) / 1e9)
}

// run drains row chunks from the job's cursor until none remain.
func (j *spmvJob) run() {
	nChunks := int32(len(j.bounds) - 1)
	for {
		i := j.next.Add(1) - 1
		if i >= nChunks {
			return
		}
		j.chunk(int(i))
		j.pending.Done()
	}
}

// chunk executes the job's kernel over one row range.
func (j *spmvJob) chunk(i int) {
	m := j.m
	lo, hi := int(j.bounds[i]), int(j.bounds[i+1])
	switch j.op {
	case opMul:
		m.mulRows(j.dst, j.x, lo, hi)
	case opAccum:
		m.mulAccumRows(j.dst, j.x, j.acc, j.w, lo, hi)
	case opMulti:
		m.mulMultiRows(j.dsts, j.xs, lo, hi)
	}
}

// dispatch fans a job out over the persistent workers and participates
// until every chunk is done. It never blocks on the task channel: if
// the channel is full (or the workers are gone), the caller simply
// drains the cursor itself, so dispatch is deadlock-free even when it
// races Close.
func (p *Pool) dispatch(j *spmvJob) {
	chunks := len(j.bounds) - 1
	j.pending.Add(chunks)
	if p.start() {
		if p.m.TaskWait != nil {
			j.enqueuedNanos = time.Now().UnixNano()
		}
		// The caller takes chunks too, so at most chunks-1 workers can
		// contribute.
		announce := chunks - 1
		if announce > p.workers-1 {
			announce = p.workers - 1
		}
	announcing:
		for i := 0; i < announce; i++ {
			select {
			case p.tasks <- j:
			default:
				break announcing // workers saturated; keep the rest local
			}
		}
	}
	j.run()
	j.pending.Wait()
}

// parallel reports whether a product over m should be fanned out, and
// returns the row chunk boundaries to use if so.
func (p *Pool) parallel(m *CSR) ([]int32, bool) {
	if m.rows < parallelThreshold || p.workers == 1 || p.closed.Load() {
		return nil, false
	}
	part := m.rowPartition(p.workers)
	p.m.PartitionImbalance.Set(part.imbalance)
	return part.bounds, true
}

// GetVec returns a length-n scratch vector, zeroed, reusing a previously
// Put buffer when one of sufficient capacity is available. Callers
// return it with PutVec when done; vectors that escape (results) must be
// allocated normally instead.
func (p *Pool) GetVec(n int) []float64 {
	p.m.VecGets.Add(1)
	if v, ok := p.vecs.Get().(*[]float64); ok && cap(*v) >= n {
		s := (*v)[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	p.m.VecAllocs.Add(1)
	return make([]float64, n)
}

// PutVec returns a scratch vector obtained from GetVec to the pool.
func (p *Pool) PutVec(v []float64) {
	if v == nil {
		return
	}
	p.m.VecPuts.Add(1)
	p.vecs.Put(&v)
}

// MulVec computes dst = m·x with rows partitioned across the pool's
// workers. dst and x must not alias.
func (p *Pool) MulVec(m *CSR, dst, x []float64) error {
	if len(x) != m.cols || len(dst) != m.rows {
		return fmt.Errorf("sparse: parallel MulVec %dx%d with |x|=%d |dst|=%d: %w",
			m.rows, m.cols, len(x), len(dst), ErrShape)
	}
	p.m.SpMV.Add(1)
	bounds, ok := p.parallel(m)
	if !ok {
		return m.MulVec(dst, x)
	}
	p.m.SpMVParallel.Add(1)
	p.dispatch(&spmvJob{op: opMul, m: m, x: x, dst: dst, bounds: bounds})
	check.FiniteVec("sparse.Pool.MulVec", dst)
	return nil
}

// MulVecAccum computes dst = m·x and, when w != 0, acc += w·dst in the
// same pass over the matrix — the fused kernel of the uniformisation
// inner loop, which otherwise pays a second O(rows) sweep to fold each
// iterate into its accumulator. dst, x and acc must not alias. The
// result is bit-identical to MulVec followed by an element-wise
// acc[i] += w*dst[i] loop.
func (p *Pool) MulVecAccum(m *CSR, dst, x, acc []float64, w float64) error {
	if len(x) != m.cols || len(dst) != m.rows || len(acc) != m.rows {
		return fmt.Errorf("sparse: MulVecAccum %dx%d with |x|=%d |dst|=%d |acc|=%d: %w",
			m.rows, m.cols, len(x), len(dst), len(acc), ErrShape)
	}
	p.m.SpMV.Add(1)
	p.m.SpMVFused.Add(1)
	bounds, ok := p.parallel(m)
	if !ok {
		return m.MulVecAccum(dst, x, acc, w)
	}
	p.m.SpMVParallel.Add(1)
	p.dispatch(&spmvJob{op: opAccum, m: m, x: x, dst: dst, acc: acc, w: w, bounds: bounds})
	check.FiniteVec("sparse.Pool.MulVecAccum", dst)
	return nil
}

// MulVecMulti computes dsts[k] = m·xs[k] for every right-hand side in
// one traversal of the matrix: row data is loaded once per row and
// reused across all k, so a batch of B products costs roughly one
// traversal plus B accumulation streams instead of B full traversals.
// All slices must be distinct and non-aliasing; each dsts[k] is
// bit-identical to a solo MulVec(dsts[k], xs[k]).
func (p *Pool) MulVecMulti(m *CSR, dsts, xs [][]float64) error {
	if len(dsts) != len(xs) {
		return fmt.Errorf("sparse: MulVecMulti with %d dsts for %d xs: %w", len(dsts), len(xs), ErrShape)
	}
	if len(xs) == 0 {
		return nil
	}
	for k := range xs {
		if len(xs[k]) != m.cols || len(dsts[k]) != m.rows {
			return fmt.Errorf("sparse: MulVecMulti %dx%d with |xs[%d]|=%d |dsts[%d]|=%d: %w",
				m.rows, m.cols, k, len(xs[k]), k, len(dsts[k]), ErrShape)
		}
	}
	p.m.SpMV.Add(int64(len(xs)))
	p.m.SpMVBatched.Add(1)
	bounds, ok := p.parallel(m)
	if !ok {
		m.mulMultiRows(dsts, xs, 0, m.rows)
		for k := range dsts {
			check.FiniteVec("sparse.Pool.MulVecMulti", dsts[k])
		}
		return nil
	}
	p.m.SpMVParallel.Add(1)
	p.dispatch(&spmvJob{op: opMulti, m: m, xs: xs, dsts: dsts, bounds: bounds})
	for k := range dsts {
		check.FiniteVec("sparse.Pool.MulVecMulti", dsts[k])
	}
	return nil
}
