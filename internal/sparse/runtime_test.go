package sparse

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitForGoroutines polls until the process goroutine count drops to at
// most want. Worker goroutines mark their WaitGroup done before their
// final return, so a just-Closed pool's workers may linger for a
// scheduler beat.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines stuck at %d, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolCloseReleasesWorkers is the goroutine-leak regression test for
// the persistent runtime: a pool that has started its workers must shed
// every goroutine on Close. Before the persistent runtime this property
// was vacuous (goroutines were per-call); now it is the contract that
// lets TransientOptions.pool() hand out per-solve pools safely.
func TestPoolCloseReleasesWorkers(t *testing.T) {
	m := buildStressCSR(t, 5000, 4)
	x := make([]float64, 5000)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	dst := make([]float64, 5000)

	before := runtime.NumGoroutine()
	pool := NewPool(4)
	if err := pool.MulVec(m, dst, x); err != nil { // forces lazy start
		t.Fatalf("MulVec: %v", err)
	}
	if n := runtime.NumGoroutine(); n < before+3 {
		t.Fatalf("after first product %d goroutines, want >= %d (3 persistent workers)", n, before+3)
	}
	pool.Close()
	waitForGoroutines(t, before)
}

// TestPoolCloseIdempotent closes a started pool repeatedly, including
// concurrently; every call must return, and the pool must stay usable
// as a serial executor afterwards.
func TestPoolCloseIdempotent(t *testing.T) {
	m := buildStressCSR(t, 4500, 3)
	x := make([]float64, 4500)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	want := make([]float64, 4500)
	if err := m.MulVec(want, x); err != nil {
		t.Fatal(err)
	}

	pool := NewPool(3)
	dst := make([]float64, 4500)
	if err := pool.MulVec(m, dst, x); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Close()
		}()
	}
	wg.Wait()
	pool.Close() // and once more, sequentially

	// A closed pool degrades to the serial kernel, bit-identically.
	for i := range dst {
		dst[i] = math.NaN()
	}
	if err := pool.MulVec(m, dst, x); err != nil {
		t.Fatalf("MulVec after Close: %v", err)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("post-Close dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

// TestPoolCloseNeverStartedNoGoroutines: a pool that only ever saw
// small (serial) products must not spawn anything, and Close on it is a
// cheap no-op.
func TestPoolCloseNeverStartedNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	pool := NewPool(8)
	b := NewBuilder(16, 16, 0)
	for i := 0; i < 16; i++ {
		b.Add(i, i, 1)
	}
	m, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	dst, x := make([]float64, 16), make([]float64, 16)
	x[3] = 1
	if err := pool.MulVec(m, dst, x); err != nil {
		t.Fatal(err)
	}
	if n := runtime.NumGoroutine(); n != before {
		t.Errorf("small products spawned goroutines: %d, want %d", n, before)
	}
	pool.Close()
	waitForGoroutines(t, before)
}

// TestPoolCloseRacesInflight hammers one pool with products from many
// goroutines while Close fires in the middle: nothing may deadlock, and
// every product — dispatched before or after the close — must still be
// bit-identical to the serial kernel (in-flight chunks are finished by
// their callers; later calls fall back to serial).
func TestPoolCloseRacesInflight(t *testing.T) {
	const rows = 5000
	m := buildStressCSR(t, rows, 4)
	x := make([]float64, rows)
	for i := range x {
		x[i] = math.Sin(float64(i) / 3)
	}
	want := make([]float64, rows)
	if err := m.MulVec(want, x); err != nil {
		t.Fatal(err)
	}

	pool := NewPool(4)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, rows)
			for it := 0; it < 30; it++ {
				if err := pool.MulVec(m, dst, x); err != nil {
					t.Errorf("MulVec: %v", err)
					return
				}
				for i := range dst {
					if dst[i] != want[i] {
						t.Errorf("iter %d: dst[%d] = %v, want %v", it, i, dst[i], want[i])
						return
					}
				}
			}
		}()
	}
	time.Sleep(time.Millisecond) // let some products get airborne
	pool.Close()
	wg.Wait()
}

// TestDefaultPoolShared pins the bugfix for the per-solve pool leak:
// TransientOptions with neither Pool nor Workers must resolve to one
// process-wide pool rather than constructing (and leaking) worker sets
// per solve.
func TestDefaultPoolShared(t *testing.T) {
	p1, p2 := DefaultPool(), DefaultPool()
	if p1 != p2 {
		t.Fatalf("DefaultPool returned distinct pools %p, %p", p1, p2)
	}
	if p1.Workers() < 1 {
		t.Fatalf("DefaultPool workers = %d", p1.Workers())
	}
}

// TestMulVecAccumMatchesUnfused checks the fused kernel against its
// definition — MulVec then acc[i] += w·dst[i] — for the serial and the
// parallel paths, bit for bit, including the w = 0 accumulate skip.
func TestMulVecAccumMatchesUnfused(t *testing.T) {
	const rows = 5200
	m := buildStressCSR(t, rows, 5)
	x := make([]float64, rows)
	accInit := make([]float64, rows)
	for i := range x {
		x[i] = math.Sin(float64(i)) + 1.5
		accInit[i] = 1 / float64(i+1)
	}

	for _, w := range []float64{0, 1, 0.37, -2.25} {
		wantDst := make([]float64, rows)
		wantAcc := append([]float64(nil), accInit...)
		if err := m.MulVec(wantDst, x); err != nil {
			t.Fatal(err)
		}
		if w != 0 {
			for i := range wantAcc {
				wantAcc[i] += w * wantDst[i]
			}
		}

		check := func(label string, run func(dst, acc []float64) error) {
			t.Helper()
			dst := make([]float64, rows)
			acc := append([]float64(nil), accInit...)
			if err := run(dst, acc); err != nil {
				t.Fatalf("%s (w=%v): %v", label, w, err)
			}
			for i := range dst {
				if dst[i] != wantDst[i] {
					t.Fatalf("%s (w=%v): dst[%d] = %v, want %v", label, w, i, dst[i], wantDst[i])
				}
				if acc[i] != wantAcc[i] {
					t.Fatalf("%s (w=%v): acc[%d] = %v, want %v", label, w, i, acc[i], wantAcc[i])
				}
			}
		}
		check("serial", func(dst, acc []float64) error {
			return m.MulVecAccum(dst, x, acc, w)
		})
		pool := NewPool(4)
		defer pool.Close()
		check("parallel", func(dst, acc []float64) error {
			return pool.MulVecAccum(m, dst, x, acc, w)
		})
	}
}

// TestMulVecMultiMatchesSolo checks the batched kernel against B solo
// MulVec calls, bit for bit, on serial and parallel paths and for batch
// sizes around the kernel's unrolling decisions.
func TestMulVecMultiMatchesSolo(t *testing.T) {
	const rows = 4800
	m := buildStressCSR(t, rows, 4)
	for _, batch := range []int{1, 2, 3, 7} {
		xs := make([][]float64, batch)
		want := make([][]float64, batch)
		for k := range xs {
			xs[k] = make([]float64, rows)
			for i := range xs[k] {
				xs[k][i] = math.Sin(float64(i*(k+1))) + float64(k)
			}
			want[k] = make([]float64, rows)
			if err := m.MulVec(want[k], xs[k]); err != nil {
				t.Fatal(err)
			}
		}
		verify := func(label string, dsts [][]float64) {
			t.Helper()
			for k := range dsts {
				for i := range dsts[k] {
					if dsts[k][i] != want[k][i] {
						t.Fatalf("%s batch=%d: dsts[%d][%d] = %v, want %v",
							label, batch, k, i, dsts[k][i], want[k][i])
					}
				}
			}
		}
		dsts := make([][]float64, batch)
		for k := range dsts {
			dsts[k] = make([]float64, rows)
		}
		if err := m.MulVecMulti(dsts, xs); err != nil {
			t.Fatalf("serial MulVecMulti: %v", err)
		}
		verify("serial", dsts)

		pool := NewPool(4)
		for k := range dsts {
			for i := range dsts[k] {
				dsts[k][i] = math.NaN()
			}
		}
		if err := pool.MulVecMulti(m, dsts, xs); err != nil {
			t.Fatalf("parallel MulVecMulti: %v", err)
		}
		verify("parallel", dsts)
		pool.Close()
	}
}

// TestPoolMulVecMultiConcurrent drives batched and single products
// through one pool from many goroutines at once — the mixed traffic a
// daemon produces when batched sweeps and solo solves overlap. Run
// under -race.
func TestPoolMulVecMultiConcurrent(t *testing.T) {
	const rows = 4600
	m := buildStressCSR(t, rows, 4)
	x := make([]float64, rows)
	for i := range x {
		x[i] = float64(i%13) + 0.25
	}
	want := make([]float64, rows)
	if err := m.MulVec(want, x); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	defer pool.Close()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				dsts := [][]float64{make([]float64, rows), make([]float64, rows)}
				xs := [][]float64{x, x}
				for it := 0; it < 20; it++ {
					if err := pool.MulVecMulti(m, dsts, xs); err != nil {
						t.Errorf("MulVecMulti: %v", err)
						return
					}
					for k := range dsts {
						for i := range dsts[k] {
							if dsts[k][i] != want[i] {
								t.Errorf("dsts[%d][%d] = %v, want %v", k, i, dsts[k][i], want[i])
								return
							}
						}
					}
				}
				return
			}
			dst := make([]float64, rows)
			acc := make([]float64, rows)
			for it := 0; it < 20; it++ {
				if err := pool.MulVecAccum(m, dst, x, acc, 0); err != nil {
					t.Errorf("MulVecAccum: %v", err)
					return
				}
				for i := range dst {
					if dst[i] != want[i] {
						t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestKernelShapeErrors covers the argument validation of the new
// kernels on both the serial and pooled entry points.
func TestKernelShapeErrors(t *testing.T) {
	b := NewBuilder(4, 4, 0)
	b.Add(0, 0, 1)
	m, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(2)
	defer pool.Close()
	good := make([]float64, 4)
	bad := make([]float64, 3)
	cases := []struct {
		name string
		err  error
	}{
		{"serial accum dst", m.MulVecAccum(bad, good, good, 1)},
		{"serial accum acc", m.MulVecAccum(good, good, bad, 1)},
		{"pool accum x", pool.MulVecAccum(m, good, bad, good, 1)},
		{"serial multi ragged", m.MulVecMulti([][]float64{good}, [][]float64{bad})},
		{"serial multi arity", m.MulVecMulti([][]float64{good, good}, [][]float64{good})},
		{"pool multi ragged", pool.MulVecMulti(m, [][]float64{good}, [][]float64{bad})},
	}
	for _, c := range cases {
		if !errors.Is(c.err, ErrShape) {
			t.Errorf("%s: err = %v, want ErrShape", c.name, c.err)
		}
	}
	if err := m.MulVecMulti(nil, nil); err != nil {
		t.Errorf("empty batch: %v, want nil", err)
	}
}

// buildSkewedCSR returns a matrix whose nnz mass is concentrated in a
// small prefix of rows — the adversarial shape for row-count
// partitioning and the motivating case for nnz balancing.
func buildSkewedCSR(t testing.TB, rows, heavy, heavyNNZ int) *CSR {
	t.Helper()
	b := NewBuilder(rows, rows, heavy*heavyNNZ+rows)
	state := uint64(0x2545f4914f6cdd1d)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for r := 0; r < rows; r++ {
		n := 1
		if r < heavy {
			n = heavyNNZ
		}
		for k := 0; k < n; k++ {
			b.Add(r, int(next()%uint64(rows)), 1+float64(next()%100)/100)
		}
	}
	m, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRowPartitionProperties is the property test for the nnz-balanced
// partition: for a range of chunk counts over a heavily skewed matrix,
// the bounds must cover every row exactly once in order, and every
// chunk's weight (nnz + rows, the kernel's actual work) must stay below
// ideal + the heaviest single row — the greedy cut's guarantee.
func TestRowPartitionProperties(t *testing.T) {
	const rows = 6000
	m := buildSkewedCSR(t, rows, 64, 300)

	maxRowW := 0
	for r := 0; r < rows; r++ {
		if w := int(m.rowPtr[r+1]-m.rowPtr[r]) + 1; w > maxRowW {
			maxRowW = w
		}
	}
	total := m.NNZ() + rows

	for _, chunks := range []int{1, 2, 3, 4, 7, 8, 16, 61} {
		part := m.rowPartition(chunks)
		bounds := part.bounds
		if len(bounds) < 2 || bounds[0] != 0 || int(bounds[len(bounds)-1]) != rows {
			t.Fatalf("chunks=%d: bounds %v do not span [0,%d]", chunks, bounds, rows)
		}
		if len(bounds)-1 > chunks {
			t.Fatalf("chunks=%d: %d chunks produced", chunks, len(bounds)-1)
		}
		ideal := float64(total) / float64(chunks)
		maxW := 0
		for c := 0; c+1 < len(bounds); c++ {
			lo, hi := int(bounds[c]), int(bounds[c+1])
			if hi <= lo {
				t.Fatalf("chunks=%d: empty or inverted chunk [%d,%d)", chunks, lo, hi)
			}
			w := int(m.rowPtr[hi]-m.rowPtr[lo]) + (hi - lo)
			if w > maxW {
				maxW = w
			}
			if float64(w) >= ideal+float64(maxRowW)+1 {
				t.Errorf("chunks=%d: chunk [%d,%d) weight %d exceeds ideal %.1f + max row %d",
					chunks, lo, hi, w, ideal, maxRowW)
			}
		}
		if got := part.imbalance; math.Abs(got-float64(maxW)/ideal) > 1e-9 {
			t.Errorf("chunks=%d: imbalance %v, want %v", chunks, got, float64(maxW)/ideal)
		}
	}
}

// TestRowPartitionCacheAndInvalidation pins the caching contract: the
// partition for a given chunk count is computed once and shared, a
// different chunk count recomputes, and Validate drops the cache (it is
// the designated mutation barrier).
func TestRowPartitionCacheAndInvalidation(t *testing.T) {
	m := buildStressCSR(t, 5000, 3)
	p4 := m.rowPartition(4)
	if again := m.rowPartition(4); again != p4 {
		t.Error("same chunk count did not reuse the cached partition")
	}
	p2 := m.rowPartition(2)
	if p2 == p4 || p2.chunks != 2 {
		t.Errorf("chunk-count change returned %+v", p2)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.part.Load() != nil {
		t.Error("Validate did not invalidate the cached partition")
	}
	if p := m.rowPartition(2); p == p2 {
		t.Error("post-Validate partition was not recomputed")
	}
}

// TestFusedKernelsZeroAlloc backs the //numlint:hotpath annotations on
// the new serial kernels: MulVecAccum and MulVecMulti must not allocate
// per call — they run once per uniformisation step.
func TestFusedKernelsZeroAlloc(t *testing.T) {
	b := NewBuilder(64, 64, 0)
	for i := 0; i < 64; i++ {
		b.Add(i, i, 2)
		b.Add(i, (i+3)%64, -0.5)
	}
	m, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 64)
	dst := make([]float64, 64)
	acc := make([]float64, 64)
	for i := range x {
		x[i] = float64(i%5) + 0.25
	}
	dsts := [][]float64{make([]float64, 64), make([]float64, 64)}
	xs := [][]float64{x, x}
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.MulVecAccum(dst, x, acc, 0.5); err != nil {
			t.Fatal(err)
		}
		if err := m.MulVecMulti(dsts, xs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("fused kernels allocate %v per run, want 0", allocs)
	}
}
