package sparse

import (
	"fmt"
	"sync"
	"testing"
)

// spawnPool is the pre-persistent-runtime dispatch strategy, kept here
// as the benchmark comparator: every product spawns one goroutine per
// chunk and joins them all. BenchmarkUniformizedSpMV pits it against
// the persistent channel-fed workers on the same nnz-balanced
// partition, so the measured gap is pure dispatch overhead — the cost
// the persistent runtime exists to delete from the uniformisation
// inner loop.
type spawnPool struct {
	workers int
}

func (p *spawnPool) mulVec(m *CSR, dst, x []float64) {
	part := m.rowPartition(p.workers)
	bounds := part.bounds
	var wg sync.WaitGroup
	for c := 0; c+1 < len(bounds); c++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulRows(dst, x, lo, hi)
		}(int(bounds[c]), int(bounds[c+1]))
	}
	wg.Wait()
}

// benchSkewedChain is the benchmark workload: a 50k-row chain whose nnz
// mass piles onto a small prefix of rows, the shape that defeats
// row-count partitioning and that expanded battery CTMCs take near the
// depleted boundary.
func benchSkewedChain(b *testing.B) (*CSR, []float64) {
	b.Helper()
	const rows = 50000
	m := buildSkewedCSR(b, rows, 512, 96)
	x := make([]float64, rows)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	return m, x
}

// BenchmarkUniformizedSpMV measures one uniformisation-step product on
// the skewed 50k-row chain under the dispatch strategies the runtime
// redesign chooses between: the persistent channel-fed worker pool
// against spawn-per-product goroutines, per worker count. The
// persistent/spawn gap at >= 8 workers is the benchmark-gate headline
// (see docs/PERFORMANCE.md; the gap only materialises on multi-core
// runners — a 1-vCPU machine runs both serially).
func BenchmarkUniformizedSpMV(b *testing.B) {
	m, x := benchSkewedChain(b)
	dst := make([]float64, m.Rows())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("persistent-w%d", workers), func(b *testing.B) {
			pool := NewPool(workers)
			defer pool.Close()
			b.ReportMetric(float64(m.NNZ()), "nnz")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.MulVec(m, dst, x); err != nil {
					b.Fatal(err)
				}
			}
		})
		if workers == 1 {
			continue // spawn-per-product with one chunk is just serial
		}
		b.Run(fmt.Sprintf("spawn-w%d", workers), func(b *testing.B) {
			pool := &spawnPool{workers: workers}
			b.ReportMetric(float64(m.NNZ()), "nnz")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.mulVec(m, dst, x)
			}
		})
	}
}

// BenchmarkUniformizedSpMVFused compares the fused
// product-and-accumulate kernel against the unfused product plus a
// separate accumulation sweep — the fold the transient inner loop pays
// per iterate without fusion.
func BenchmarkUniformizedSpMVFused(b *testing.B) {
	m, x := benchSkewedChain(b)
	dst := make([]float64, m.Rows())
	acc := make([]float64, m.Rows())
	b.Run("unfused", func(b *testing.B) {
		pool := NewPool(1)
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pool.MulVec(m, dst, x); err != nil {
				b.Fatal(err)
			}
			for j := range acc {
				acc[j] += 0.5 * dst[j]
			}
		}
	})
	b.Run("fused", func(b *testing.B) {
		pool := NewPool(1)
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pool.MulVecAccum(m, dst, x, acc, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUniformizedSpMVMulti compares B solo products against one
// batched multi-vector product over the same right-hand sides — the
// row-traversal amortisation batched sweeps buy.
func BenchmarkUniformizedSpMVMulti(b *testing.B) {
	m, x := benchSkewedChain(b)
	const batch = 4
	xs := make([][]float64, batch)
	dsts := make([][]float64, batch)
	for k := range xs {
		xs[k] = append([]float64(nil), x...)
		dsts[k] = make([]float64, m.Rows())
	}
	b.Run(fmt.Sprintf("solo-x%d", batch), func(b *testing.B) {
		pool := NewPool(1)
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := range xs {
				if err := pool.MulVec(m, dsts[k], xs[k]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("batched-x%d", batch), func(b *testing.B) {
		pool := NewPool(1)
		defer pool.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pool.MulVecMulti(m, dsts, xs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
