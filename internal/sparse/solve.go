package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence reports that an iterative solve did not reach the
// requested tolerance within its iteration budget.
var ErrNoConvergence = errors.New("sparse: iteration did not converge")

// ErrZeroDiagonal reports a row with no usable pivot.
var ErrZeroDiagonal = errors.New("sparse: zero diagonal entry")

// GaussSeidelOptions tunes the iterative solver.
type GaussSeidelOptions struct {
	// MaxIterations bounds the sweeps; zero selects 10000.
	MaxIterations int
	// Tolerance is the maximum-norm bound on the update between sweeps,
	// relative to the solution scale; zero selects 1e-12.
	Tolerance float64
}

func (o GaussSeidelOptions) maxIter() int {
	if o.MaxIterations <= 0 {
		return 10000
	}
	return o.MaxIterations
}

func (o GaussSeidelOptions) tol() float64 {
	if o.Tolerance <= 0 {
		return 1e-12
	}
	return o.Tolerance
}

// GaussSeidel solves A·x = b in place by Gauss–Seidel sweeps, returning
// the number of sweeps performed. A must be square with nonzero
// diagonal entries; convergence is guaranteed for (weakly chained)
// diagonally dominant systems such as the absorption-time equations of
// a CTMC, where it typically needs far fewer sweeps than the matrix
// dimension because information propagates along the chain within one
// sweep. x serves as the starting guess.
func GaussSeidel(a *CSR, x, b []float64, opts GaussSeidelOptions) (int, error) {
	n := a.Rows()
	if a.Cols() != n {
		return 0, fmt.Errorf("sparse: GaussSeidel on %dx%d matrix: %w", a.Rows(), a.Cols(), ErrShape)
	}
	if len(x) != n || len(b) != n {
		return 0, fmt.Errorf("sparse: GaussSeidel |x|=%d |b|=%d for n=%d: %w", len(x), len(b), n, ErrShape)
	}
	// Cache the diagonal and verify pivots.
	diag := make([]float64, n)
	for r := 0; r < n; r++ {
		d := a.At(r, r)
		if d == 0 {
			return 0, fmt.Errorf("sparse: row %d: %w", r, ErrZeroDiagonal)
		}
		diag[r] = d
	}
	tol := opts.tol()
	for sweep := 1; sweep <= opts.maxIter(); sweep++ {
		maxDelta, maxX := 0.0, 0.0
		for r := 0; r < n; r++ {
			sum := b[r]
			for i := a.rowPtr[r]; i < a.rowPtr[r+1]; i++ {
				c := a.colIdx[i]
				if int(c) == r {
					continue
				}
				sum -= a.vals[i] * x[c]
			}
			next := sum / diag[r]
			if d := math.Abs(next - x[r]); d > maxDelta {
				maxDelta = d
			}
			if ax := math.Abs(next); ax > maxX {
				maxX = ax
			}
			x[r] = next
		}
		if maxDelta <= tol*(1+maxX) {
			return sweep, nil
		}
	}
	return opts.maxIter(), fmt.Errorf("%w after %d sweeps", ErrNoConvergence, opts.maxIter())
}
