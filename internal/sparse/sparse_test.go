package sparse

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"batlife/internal/check"
)

// buildRandom assembles a random rows×cols matrix with the given fill
// density and returns both the CSR form and a dense reference.
func buildRandom(t *testing.T, rng *rand.Rand, rows, cols int, density float64) (*CSR, [][]float64) {
	t.Helper()
	b := NewBuilder(rows, cols, int(float64(rows*cols)*density)+1)
	dense := make([][]float64, rows)
	for r := range dense {
		dense[r] = make([]float64, cols)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				b.Add(r, c, v)
				dense[r][c] += v
			}
		}
	}
	m, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return m, dense
}

func TestBuilderFreezeBasic(t *testing.T) {
	b := NewBuilder(2, 3, 0)
	b.Add(0, 0, 1)
	b.Add(0, 2, 2)
	b.Add(1, 1, -3)
	m, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 3 || m.NNZ() != 3 {
		t.Fatalf("shape/nnz = %d x %d / %d", m.Rows(), m.Cols(), m.NNZ())
	}
	if got := m.At(0, 2); got != 2 {
		t.Errorf("At(0,2) = %v, want 2", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("At(1,0) = %v, want 0", got)
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(1, 1, 0)
	b.Add(0, 0, 1.5)
	b.Add(0, 0, 2.5)
	b.Add(0, 0, -4.0)
	m, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	// 1.5 + 2.5 - 4 = 0: the merged entry must be dropped entirely.
	if m.NNZ() != 0 {
		t.Errorf("NNZ = %d, want 0 after cancelling duplicates", m.NNZ())
	}
}

func TestBuilderSkipsZeros(t *testing.T) {
	b := NewBuilder(4, 4, 0)
	b.Add(1, 1, 0)
	if b.NNZ() != 0 {
		t.Errorf("NNZ = %d after adding zero, want 0", b.NNZ())
	}
}

func TestFreezeRejectsOutOfRange(t *testing.T) {
	for _, coords := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 3}} {
		b := NewBuilder(2, 3, 0)
		b.Add(coords[0], coords[1], 1)
		if _, err := b.Freeze(); !errors.Is(err, ErrShape) {
			t.Errorf("Freeze with entry %v: err = %v, want ErrShape", coords, err)
		}
	}
}

func TestFreezeRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		// Add declares //numlint:requires finite(v); with debugchecks on,
		// the generated contract shim panics at the Add call, before
		// Freeze gets a chance to report the entry.
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					if !check.Enabled {
						t.Fatalf("Add(%v) panicked with checks disabled: %v", v, r)
					}
					err = fmt.Errorf("contract: %v", r)
				}
			}()
			b := NewBuilder(1, 1, 0)
			b.Add(0, 0, v)
			_, err = b.Freeze()
			return err
		}()
		if err == nil {
			t.Errorf("Freeze with value %v: want error", v)
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		m, dense := buildRandom(t, rng, rows, cols, 0.3)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, rows)
		if err := m.MulVec(got, x); err != nil {
			t.Fatalf("MulVec: %v", err)
		}
		for r := 0; r < rows; r++ {
			want := 0.0
			for c := 0; c < cols; c++ {
				want += dense[r][c] * x[c]
			}
			if math.Abs(got[r]-want) > 1e-10 {
				t.Fatalf("trial %d row %d: got %v, want %v", trial, r, got[r], want)
			}
		}
	}
}

func TestVecMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		m, dense := buildRandom(t, rng, rows, cols, 0.3)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, cols)
		if err := m.VecMul(got, x); err != nil {
			t.Fatalf("VecMul: %v", err)
		}
		for c := 0; c < cols; c++ {
			want := 0.0
			for r := 0; r < rows; r++ {
				want += x[r] * dense[r][c]
			}
			if math.Abs(got[c]-want) > 1e-10 {
				t.Fatalf("trial %d col %d: got %v, want %v", trial, c, got[c], want)
			}
		}
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, dense := buildRandom(t, rng, 17, 23, 0.25)
	tt := m.Transpose().Transpose()
	if tt.Rows() != m.Rows() || tt.Cols() != m.Cols() || tt.NNZ() != m.NNZ() {
		t.Fatalf("double transpose changed shape or nnz")
	}
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			if tt.At(r, c) != dense[r][c] {
				t.Fatalf("(%d,%d): %v != %v", r, c, tt.At(r, c), dense[r][c])
			}
		}
	}
}

func TestTransposeVecMulEquivalence(t *testing.T) {
	// x·M must equal Transpose(M)·x — this identity is what the
	// uniformisation engine relies on.
	rng := rand.New(rand.NewSource(4))
	m, _ := buildRandom(t, rng, 31, 29, 0.2)
	mt := m.Transpose()
	x := make([]float64, m.Rows())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	a := make([]float64, m.Cols())
	bv := make([]float64, m.Cols())
	if err := m.VecMul(a, x); err != nil {
		t.Fatal(err)
	}
	if err := mt.MulVec(bv, x); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-bv[i]) > 1e-12 {
			t.Fatalf("mismatch at %d: %v vs %v", i, a[i], bv[i])
		}
	}
}

func TestParallelMulVecMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Above the serial cutoff (4096 rows) so the parallel path runs.
	rows, cols := 5000, 300
	b := NewBuilder(rows, cols, rows*3)
	for r := 0; r < rows; r++ {
		for k := 0; k < 3; k++ {
			b.Add(r, rng.Intn(cols), rng.NormFloat64())
		}
	}
	m, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := make([]float64, rows)
	if err := m.MulVec(serial, x); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		par := make([]float64, rows)
		if err := NewPool(workers).MulVec(m, par, x); err != nil {
			t.Fatal(err)
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d row %d: %v != %v", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestMulVecShapeErrors(t *testing.T) {
	m, err := NewBuilder(3, 4, 0).Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MulVec(make([]float64, 3), make([]float64, 5)); !errors.Is(err, ErrShape) {
		t.Errorf("MulVec wrong x len: %v, want ErrShape", err)
	}
	if err := m.VecMul(make([]float64, 4), make([]float64, 5)); !errors.Is(err, ErrShape) {
		t.Errorf("VecMul wrong x len: %v, want ErrShape", err)
	}
	if err := NewPool(2).MulVec(m, make([]float64, 2), make([]float64, 4)); !errors.Is(err, ErrShape) {
		t.Errorf("Pool.MulVec wrong dst len: %v, want ErrShape", err)
	}
}

func TestRowSumAndMaxAbsDiagonal(t *testing.T) {
	b := NewBuilder(3, 3, 0)
	b.Add(0, 0, -2)
	b.Add(0, 1, 2)
	b.Add(1, 1, -7)
	b.Add(1, 0, 3)
	b.Add(1, 2, 4)
	b.Add(2, 2, -0.5)
	b.Add(2, 0, 0.5)
	m, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if s := m.RowSum(r); math.Abs(s) > 1e-15 {
			t.Errorf("RowSum(%d) = %v, want 0", r, s)
		}
	}
	if got := m.MaxAbsDiagonal(); got != 7 {
		t.Errorf("MaxAbsDiagonal = %v, want 7", got)
	}
}

func TestRowIteration(t *testing.T) {
	b := NewBuilder(2, 4, 0)
	b.Add(1, 3, 5)
	b.Add(1, 0, 7)
	m, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	var cols []int
	var vals []float64
	m.Row(1, func(c int, v float64) {
		cols = append(cols, c)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 3 || vals[0] != 7 || vals[1] != 5 {
		t.Errorf("Row(1) iterated cols=%v vals=%v", cols, vals)
	}
	count := 0
	m.Row(0, func(int, float64) { count++ })
	if count != 0 {
		t.Errorf("Row(0) iterated %d entries, want 0", count)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, dense := buildRandom(t, rng, 9, 11, 0.4)
	got := m.Dense()
	for r := range dense {
		for c := range dense[r] {
			if got[r][c] != dense[r][c] {
				t.Fatalf("(%d,%d): %v != %v", r, c, got[r][c], dense[r][c])
			}
		}
	}
}

// TestMulVecLinearityProperty checks M(ax+by) = a·Mx + b·My on random
// matrices via testing/quick.
func TestMulVecLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, _ := buildRandom(t, rng, 13, 13, 0.3)
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// Clamp scalars to keep floating-point comparison meaningful.
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 13)
		y := make([]float64, 13)
		comb := make([]float64, 13)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
			comb[i] = a*x[i] + b*y[i]
		}
		mx := make([]float64, 13)
		my := make([]float64, 13)
		mc := make([]float64, 13)
		if m.MulVec(mx, x) != nil || m.MulVec(my, y) != nil || m.MulVec(mc, comb) != nil {
			return false
		}
		for i := range mc {
			if math.Abs(mc[i]-(a*mx[i]+b*my[i])) > 1e-8*(1+math.Abs(mc[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulVecSerial(b *testing.B) {
	benchmarkMulVec(b, 1)
}

func BenchmarkMulVecParallel(b *testing.B) {
	benchmarkMulVec(b, 0) // NumCPU
}

func benchmarkMulVec(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(8))
	rows := 200000
	bu := NewBuilder(rows, rows, rows*4)
	for r := 0; r < rows; r++ {
		for k := 0; k < 4; k++ {
			bu.Add(r, rng.Intn(rows), rng.Float64())
		}
	}
	m, err := bu.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, rows)
	for i := range x {
		x[i] = rng.Float64()
	}
	dst := make([]float64, rows)
	pool := NewPool(workers)
	b.ReportMetric(float64(m.NNZ()), "nnz")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pool.MulVec(m, dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMulVecZeroAlloc backs the //numlint:hotpath annotations on MulVec
// and VecMul: the serial SpMV kernels must not allocate per call, since
// uniformisation drives them once per Taylor term per time point.
func TestMulVecZeroAlloc(t *testing.T) {
	b := NewBuilder(64, 64, 0)
	for i := 0; i < 64; i++ {
		b.Add(i, i, 2)
		b.Add(i, (i+1)%64, -1)
	}
	m, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	x := make([]float64, 64)
	dst := make([]float64, 64)
	for i := range x {
		x[i] = float64(i%7) + 0.5
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.MulVec(dst, x); err != nil {
			t.Fatal(err)
		}
		if err := m.VecMul(dst, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("MulVec+VecMul allocate %v per run, want 0", allocs)
	}
}
