package sparse

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// buildStressCSR assembles a deterministic pseudo-random matrix large
// enough (rows > 4096) to take the parallel path in Pool.MulVec.
func buildStressCSR(t testing.TB, rows, nnzPerRow int) *CSR {
	t.Helper()
	b := NewBuilder(rows, rows, rows*nnzPerRow)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for r := 0; r < rows; r++ {
		for k := 0; k < nnzPerRow; k++ {
			col := int(next() % uint64(rows))
			val := 1 + float64(next()%1000)/1000
			b.Add(r, col, val)
		}
	}
	m, err := b.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return m
}

// TestPoolMulVecConcurrentSharing drives one Pool and one CSR from many
// goroutines at once — the sharing pattern the transient solver will
// adopt once solves are served concurrently — and cross-checks every
// result against the serial kernel. Run with -race (the CI default) to
// certify the pool has no hidden shared state.
func TestPoolMulVecConcurrentSharing(t *testing.T) {
	const (
		rows       = 5000
		goroutines = 8
		iterations = 25
	)
	m := buildStressCSR(t, rows, 5)
	pool := NewPool(4)
	defer pool.Close()

	x := make([]float64, rows)
	for i := range x {
		x[i] = math.Sin(float64(i)) // fixed, shared read-only input
	}
	want := make([]float64, rows)
	if err := m.MulVec(want, x); err != nil {
		t.Fatalf("serial MulVec: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]float64, rows)
			for it := 0; it < iterations; it++ {
				if err := pool.MulVec(m, dst, x); err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %w", g, it, err)
					return
				}
				for i := range dst {
					if dst[i] != want[i] {
						errs <- fmt.Errorf("goroutine %d iter %d: dst[%d]=%v want %v", g, it, i, dst[i], want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolMulVecConcurrentPools exercises many distinct Pools sharing
// one immutable CSR, ensuring the matrix itself is safe for concurrent
// readers.
func TestPoolMulVecConcurrentPools(t *testing.T) {
	const rows = 4200
	m := buildStressCSR(t, rows, 3)
	x := make([]float64, rows)
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	want := make([]float64, rows)
	if err := m.MulVec(want, x); err != nil {
		t.Fatalf("serial MulVec: %v", err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			pool := NewPool(workers)
			defer pool.Close()
			dst := make([]float64, rows)
			if err := pool.MulVec(m, dst, x); err != nil {
				t.Errorf("pool(%d): %v", workers, err)
				return
			}
			for i := range dst {
				if dst[i] != want[i] {
					t.Errorf("pool(%d): dst[%d]=%v want %v", workers, i, dst[i], want[i])
					return
				}
			}
		}(g%4 + 1)
	}
	wg.Wait()
}
