// Package sparse implements the sparse-matrix substrate for the expanded
// CTMCs produced by the Markovian approximation algorithm of the paper.
//
// The expanded generator Q* of Section 5 has N·n1·n2 states (up to a few
// million at the paper's finest step size Δ=5) with at most a handful of
// nonzeros per row, so a compressed sparse row (CSR) representation with
// 32-bit column indices is used. Matrices are assembled through a
// coordinate (COO) Builder and then frozen into an immutable CSR matrix
// whose vector products can run in parallel.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"batlife/internal/check"
	"batlife/internal/obs"
)

// ErrShape reports a dimension mismatch between a matrix and a vector or
// between two matrices.
var ErrShape = errors.New("sparse: dimension mismatch")

// Builder accumulates coordinate-format entries for a rows×cols matrix.
// Duplicate entries for the same (row, col) are summed when the matrix
// is frozen, which is convenient for generator assembly where diagonal
// entries are accumulated as negative row sums.
type Builder struct {
	rows, cols int
	entries    []entry
}

type entry struct {
	row, col int32
	val      float64
}

// NewBuilder returns a Builder for a rows×cols matrix. The sizeHint
// preallocates entry storage; pass 0 if unknown.
func NewBuilder(rows, cols, sizeHint int) *Builder {
	return &Builder{
		rows:    rows,
		cols:    cols,
		entries: make([]entry, 0, sizeHint),
	}
}

// Rows reports the number of rows of the matrix under construction.
func (b *Builder) Rows() int { return b.rows }

// Cols reports the number of columns of the matrix under construction.
func (b *Builder) Cols() int { return b.cols }

// NNZ reports the number of entries added so far (before duplicate
// merging).
func (b *Builder) NNZ() int { return len(b.entries) }

// Add records v at position (row, col). Zero values are skipped.
// Out-of-range coordinates are reported at Freeze time, so assembly
// loops stay free of per-entry error handling.
//
//numlint:requires finite(v)
func (b *Builder) Add(row, col int, v float64) {
	numlintContract_Builder_Add(v)
	if v == 0 {
		return
	}
	b.entries = append(b.entries, entry{row: int32(row), col: int32(col), val: v})
}

// Freeze validates the accumulated entries, merges duplicates, and
// returns the immutable CSR matrix.
func (b *Builder) Freeze() (*CSR, error) {
	for _, e := range b.entries {
		if e.row < 0 || int(e.row) >= b.rows || e.col < 0 || int(e.col) >= b.cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d matrix: %w",
				e.row, e.col, b.rows, b.cols, ErrShape)
		}
		if math.IsNaN(e.val) || math.IsInf(e.val, 0) {
			return nil, fmt.Errorf("sparse: entry (%d,%d) is not finite: %v", e.row, e.col, e.val)
		}
	}
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].row != b.entries[j].row {
			return b.entries[i].row < b.entries[j].row
		}
		return b.entries[i].col < b.entries[j].col
	})

	m := &CSR{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int32, b.rows+1),
	}
	m.colIdx = make([]int32, 0, len(b.entries))
	m.vals = make([]float64, 0, len(b.entries))

	for i := 0; i < len(b.entries); {
		j := i
		sum := 0.0
		for j < len(b.entries) && b.entries[j].row == b.entries[i].row && b.entries[j].col == b.entries[i].col {
			sum += b.entries[j].val
			j++
		}
		if sum != 0 {
			m.colIdx = append(m.colIdx, b.entries[i].col)
			m.vals = append(m.vals, sum)
			m.rowPtr[b.entries[i].row+1]++
		}
		i = j
	}
	for r := 0; r < b.rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	check.CSRWellFormed("sparse.Freeze", m)
	return m, nil
}

// CSR is an immutable sparse matrix in compressed sparse row format.
type CSR struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	vals       []float64
}

// Validate performs a structural self-check: row-pointer monotonicity
// and bounds, in-range strictly ascending column indices per row, and
// finite stored values. Freeze guarantees all of these, so Validate only
// fails on memory corruption or a hand-built matrix; it backs the
// debugchecks invariant layer (internal/check) and is cheap enough to
// call directly in tests.
func (m *CSR) Validate() error {
	if len(m.rowPtr) != m.rows+1 {
		return fmt.Errorf("sparse: rowPtr has %d entries for %d rows", len(m.rowPtr), m.rows)
	}
	if m.rowPtr[0] != 0 || int(m.rowPtr[m.rows]) != len(m.vals) || len(m.colIdx) != len(m.vals) {
		return fmt.Errorf("sparse: rowPtr spans [%d,%d] over %d values and %d columns",
			m.rowPtr[0], m.rowPtr[m.rows], len(m.vals), len(m.colIdx))
	}
	for r := 0; r < m.rows; r++ {
		if m.rowPtr[r] > m.rowPtr[r+1] {
			return fmt.Errorf("sparse: rowPtr not monotone at row %d", r)
		}
		prev := int32(-1)
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			if c < 0 || int(c) >= m.cols {
				return fmt.Errorf("sparse: row %d references column %d of %d", r, c, m.cols)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly ascending at %d", r, c)
			}
			prev = c
			if v := m.vals[i]; math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("sparse: entry (%d,%d) is not finite: %v", r, c, v)
			}
		}
	}
	return nil
}

// Rows reports the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ reports the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the value at (row, col); absent entries are zero.
func (m *CSR) At(row, col int) float64 {
	if row < 0 || row >= m.rows || col < 0 || col >= m.cols {
		return 0
	}
	lo, hi := int(m.rowPtr[row]), int(m.rowPtr[row+1])
	idx := lo + sort.Search(hi-lo, func(i int) bool { return m.colIdx[lo+i] >= int32(col) })
	if idx < hi && m.colIdx[idx] == int32(col) {
		return m.vals[idx]
	}
	return 0
}

// Row iterates over the nonzeros of one row.
func (m *CSR) Row(row int, fn func(col int, v float64)) {
	for i := m.rowPtr[row]; i < m.rowPtr[row+1]; i++ {
		fn(int(m.colIdx[i]), m.vals[i])
	}
}

// RowSum returns the sum of the entries in one row.
func (m *CSR) RowSum(row int) float64 {
	sum := 0.0
	for i := m.rowPtr[row]; i < m.rowPtr[row+1]; i++ {
		sum += m.vals[i]
	}
	return sum
}

// MaxAbsDiagonal returns max_i |m[i,i]|, the quantity a uniformisation
// constant must dominate for a generator matrix.
func (m *CSR) MaxAbsDiagonal() float64 {
	maxAbs := 0.0
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			if int(m.colIdx[i]) == r {
				if a := math.Abs(m.vals[i]); a > maxAbs {
					maxAbs = a
				}
			}
		}
	}
	return maxAbs
}

// Transpose returns the transposed matrix. Left multiplication x·M — the
// direction uniformisation iterates — is implemented as Transpose(M)·x,
// so transposition is done once per transient solve.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int32, m.cols+1),
		colIdx: make([]int32, len(m.colIdx)),
		vals:   make([]float64, len(m.vals)),
	}
	// Count entries per column of m.
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for r := 0; r < t.rows; r++ {
		t.rowPtr[r+1] += t.rowPtr[r]
	}
	next := make([]int32, t.rows)
	copy(next, t.rowPtr[:t.rows])
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			pos := next[c]
			t.colIdx[pos] = int32(r)
			t.vals[pos] = m.vals[i]
			next[c]++
		}
	}
	return t
}

// MulVec computes dst = m·x (matrix times column vector). dst and x must
// not alias. It runs serially; see ParallelMulVec for large matrices.
//
//numlint:hotpath
func (m *CSR) MulVec(dst, x []float64) error {
	if len(x) != m.cols || len(dst) != m.rows {
		//numlint:ignore hotalloc cold shape-error path, never taken per SpMV iteration
		return fmt.Errorf("sparse: MulVec %dx%d with |x|=%d |dst|=%d: %w",
			m.rows, m.cols, len(x), len(dst), ErrShape)
	}
	for r := 0; r < m.rows; r++ {
		sum := 0.0
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			sum += m.vals[i] * x[m.colIdx[i]]
		}
		dst[r] = sum
	}
	check.FiniteVec("sparse.CSR.MulVec", dst)
	return nil
}

// VecMul computes dst = x·m (row vector times matrix) without
// transposing. It is a gather-free scatter loop and therefore serial;
// for repeated products transpose once and use MulVec.
//
//numlint:hotpath
func (m *CSR) VecMul(dst, x []float64) error {
	if len(x) != m.rows || len(dst) != m.cols {
		//numlint:ignore hotalloc cold shape-error path, never taken per SpMV iteration
		return fmt.Errorf("sparse: VecMul %dx%d with |x|=%d |dst|=%d: %w",
			m.rows, m.cols, len(x), len(dst), ErrShape)
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			dst[m.colIdx[i]] += m.vals[i] * xr
		}
	}
	check.FiniteVec("sparse.CSR.VecMul", dst)
	return nil
}

// Dense returns the matrix as a dense row-major slice of rows, intended
// for tests and small systems only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.rows)
	for r := range d {
		d[r] = make([]float64, m.cols)
	}
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			d[r][m.colIdx[i]] = m.vals[i]
		}
	}
	return d
}

// PoolMetrics bundles the observability handles a Pool records into.
// The counters are resolved once at pool construction (metric lookup is
// a lock + map read, too slow for the SpMV path) and are nil-safe, so a
// metrics-free pool costs exactly two nil checks per product.
type PoolMetrics struct {
	// SpMV counts every matrix-vector product; SpMVParallel the subset
	// dispatched across worker goroutines (large matrices only).
	SpMV, SpMVParallel *obs.Counter
	// VecGets, VecPuts and VecAllocs describe the scratch-vector pool:
	// gets and puts are deterministic per solve; allocs additionally
	// counts gets that found no reusable buffer (sync.Pool eviction makes
	// this one nondeterministic).
	VecGets, VecPuts, VecAllocs *obs.Counter
}

// PoolMetricsFrom resolves the pool metric handles from a registry; a
// nil registry yields all-nil handles (every record is a no-op).
func PoolMetricsFrom(reg *obs.Registry) PoolMetrics {
	if reg == nil {
		return PoolMetrics{}
	}
	return PoolMetrics{
		SpMV:         reg.Counter("sparse_pool_spmv_total"),
		SpMVParallel: reg.Counter("sparse_pool_spmv_parallel_total"),
		VecGets:      reg.Counter("sparse_pool_vec_gets_total"),
		VecPuts:      reg.Counter("sparse_pool_vec_puts_total"),
		VecAllocs:    reg.Counter("sparse_pool_vec_allocs_total"),
	}
}

// Pool executes parallel matrix-vector products over a fixed set of
// worker goroutines and recycles iteration-scratch vectors. A zero-value
// Pool is not valid; use NewPool. The pool owns no goroutines between
// calls — workers are spawned per product and joined before returning,
// so a Pool never leaks.
type Pool struct {
	workers int
	m       PoolMetrics
	vecs    sync.Pool // of *[]float64
}

// NewPool returns a Pool with the given parallelism; workers <= 0 selects
// runtime.NumCPU().
func NewPool(workers int) *Pool {
	return NewPoolObs(workers, nil)
}

// NewPoolObs is NewPool with an observability registry; the pool's SpMV
// and scratch-vector traffic is recorded there. A nil registry disables
// recording at no cost.
func NewPoolObs(workers int, reg *obs.Registry) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers, m: PoolMetricsFrom(reg)}
}

// Workers reports the pool's parallelism.
func (p *Pool) Workers() int { return p.workers }

// GetVec returns a length-n scratch vector, zeroed, reusing a previously
// Put buffer when one of sufficient capacity is available. Callers
// return it with PutVec when done; vectors that escape (results) must be
// allocated normally instead.
func (p *Pool) GetVec(n int) []float64 {
	p.m.VecGets.Add(1)
	if v, ok := p.vecs.Get().(*[]float64); ok && cap(*v) >= n {
		s := (*v)[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	p.m.VecAllocs.Add(1)
	return make([]float64, n)
}

// PutVec returns a scratch vector obtained from GetVec to the pool.
func (p *Pool) PutVec(v []float64) {
	if v == nil {
		return
	}
	p.m.VecPuts.Add(1)
	p.vecs.Put(&v)
}

// MulVec computes dst = m·x with rows partitioned across the pool's
// workers. dst and x must not alias.
func (p *Pool) MulVec(m *CSR, dst, x []float64) error {
	if len(x) != m.cols || len(dst) != m.rows {
		return fmt.Errorf("sparse: parallel MulVec %dx%d with |x|=%d |dst|=%d: %w",
			m.rows, m.cols, len(x), len(dst), ErrShape)
	}
	p.m.SpMV.Add(1)
	workers := p.workers
	if m.rows < 4096 || workers == 1 {
		return m.MulVec(dst, x)
	}
	p.m.SpMVParallel.Add(1)
	var wg sync.WaitGroup
	chunk := (m.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= m.rows {
			break
		}
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				sum := 0.0
				for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
					sum += m.vals[i] * x[m.colIdx[i]]
				}
				dst[r] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
	check.FiniteVec("sparse.Pool.MulVec", dst)
	return nil
}
