// Package sparse implements the sparse-matrix substrate for the expanded
// CTMCs produced by the Markovian approximation algorithm of the paper.
//
// The expanded generator Q* of Section 5 has N·n1·n2 states (up to a few
// million at the paper's finest step size Δ=5) with at most a handful of
// nonzeros per row, so a compressed sparse row (CSR) representation with
// 32-bit column indices is used. Matrices are assembled through a
// coordinate (COO) Builder and then frozen into an immutable CSR matrix
// whose vector products can run in parallel.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"batlife/internal/check"
)

// ErrShape reports a dimension mismatch between a matrix and a vector or
// between two matrices.
var ErrShape = errors.New("sparse: dimension mismatch")

// Builder accumulates coordinate-format entries for a rows×cols matrix.
// Duplicate entries for the same (row, col) are summed when the matrix
// is frozen, which is convenient for generator assembly where diagonal
// entries are accumulated as negative row sums.
type Builder struct {
	rows, cols int
	entries    []entry
}

type entry struct {
	row, col int32
	val      float64
}

// NewBuilder returns a Builder for a rows×cols matrix. The sizeHint
// preallocates entry storage; pass 0 if unknown.
func NewBuilder(rows, cols, sizeHint int) *Builder {
	return &Builder{
		rows:    rows,
		cols:    cols,
		entries: make([]entry, 0, sizeHint),
	}
}

// Rows reports the number of rows of the matrix under construction.
func (b *Builder) Rows() int { return b.rows }

// Cols reports the number of columns of the matrix under construction.
func (b *Builder) Cols() int { return b.cols }

// NNZ reports the number of entries added so far (before duplicate
// merging).
func (b *Builder) NNZ() int { return len(b.entries) }

// Add records v at position (row, col). Zero values are skipped.
// Out-of-range coordinates are reported at Freeze time, so assembly
// loops stay free of per-entry error handling.
//
//numlint:requires finite(v)
func (b *Builder) Add(row, col int, v float64) {
	numlintContract_Builder_Add(v)
	if v == 0 {
		return
	}
	b.entries = append(b.entries, entry{row: int32(row), col: int32(col), val: v})
}

// Freeze validates the accumulated entries, merges duplicates, and
// returns the immutable CSR matrix.
func (b *Builder) Freeze() (*CSR, error) {
	for _, e := range b.entries {
		if e.row < 0 || int(e.row) >= b.rows || e.col < 0 || int(e.col) >= b.cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d matrix: %w",
				e.row, e.col, b.rows, b.cols, ErrShape)
		}
		if math.IsNaN(e.val) || math.IsInf(e.val, 0) {
			return nil, fmt.Errorf("sparse: entry (%d,%d) is not finite: %v", e.row, e.col, e.val)
		}
	}
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].row != b.entries[j].row {
			return b.entries[i].row < b.entries[j].row
		}
		return b.entries[i].col < b.entries[j].col
	})

	m := &CSR{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int32, b.rows+1),
	}
	m.colIdx = make([]int32, 0, len(b.entries))
	m.vals = make([]float64, 0, len(b.entries))

	for i := 0; i < len(b.entries); {
		j := i
		sum := 0.0
		for j < len(b.entries) && b.entries[j].row == b.entries[i].row && b.entries[j].col == b.entries[i].col {
			sum += b.entries[j].val
			j++
		}
		if sum != 0 {
			m.colIdx = append(m.colIdx, b.entries[i].col)
			m.vals = append(m.vals, sum)
			m.rowPtr[b.entries[i].row+1]++
		}
		i = j
	}
	for r := 0; r < b.rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	check.CSRWellFormed("sparse.Freeze", m)
	return m, nil
}

// CSR is an immutable sparse matrix in compressed sparse row format.
type CSR struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	vals       []float64

	// part caches the most recently computed nnz-balanced row partition
	// (one entry suffices: a matrix is nearly always driven by one pool
	// with a fixed worker count). Validate invalidates it, so hand-built
	// matrices that mutate and re-validate get fresh chunk boundaries.
	part atomic.Pointer[rowPartition]
}

// Validate performs a structural self-check: row-pointer monotonicity
// and bounds, in-range strictly ascending column indices per row, and
// finite stored values. Freeze guarantees all of these, so Validate only
// fails on memory corruption or a hand-built matrix; it backs the
// debugchecks invariant layer (internal/check) and is cheap enough to
// call directly in tests.
func (m *CSR) Validate() error {
	// Validation is the designated entry point after any out-of-band
	// mutation of a hand-built matrix, so drop the cached row partition:
	// its chunk boundaries were balanced for the old sparsity pattern.
	m.part.Store(nil)
	if len(m.rowPtr) != m.rows+1 {
		return fmt.Errorf("sparse: rowPtr has %d entries for %d rows", len(m.rowPtr), m.rows)
	}
	if m.rowPtr[0] != 0 || int(m.rowPtr[m.rows]) != len(m.vals) || len(m.colIdx) != len(m.vals) {
		return fmt.Errorf("sparse: rowPtr spans [%d,%d] over %d values and %d columns",
			m.rowPtr[0], m.rowPtr[m.rows], len(m.vals), len(m.colIdx))
	}
	for r := 0; r < m.rows; r++ {
		if m.rowPtr[r] > m.rowPtr[r+1] {
			return fmt.Errorf("sparse: rowPtr not monotone at row %d", r)
		}
		prev := int32(-1)
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			if c < 0 || int(c) >= m.cols {
				return fmt.Errorf("sparse: row %d references column %d of %d", r, c, m.cols)
			}
			if c <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly ascending at %d", r, c)
			}
			prev = c
			if v := m.vals[i]; math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("sparse: entry (%d,%d) is not finite: %v", r, c, v)
			}
		}
	}
	return nil
}

// Rows reports the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ reports the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the value at (row, col); absent entries are zero.
func (m *CSR) At(row, col int) float64 {
	if row < 0 || row >= m.rows || col < 0 || col >= m.cols {
		return 0
	}
	lo, hi := int(m.rowPtr[row]), int(m.rowPtr[row+1])
	idx := lo + sort.Search(hi-lo, func(i int) bool { return m.colIdx[lo+i] >= int32(col) })
	if idx < hi && m.colIdx[idx] == int32(col) {
		return m.vals[idx]
	}
	return 0
}

// Row iterates over the nonzeros of one row.
func (m *CSR) Row(row int, fn func(col int, v float64)) {
	for i := m.rowPtr[row]; i < m.rowPtr[row+1]; i++ {
		fn(int(m.colIdx[i]), m.vals[i])
	}
}

// RowSum returns the sum of the entries in one row.
func (m *CSR) RowSum(row int) float64 {
	sum := 0.0
	for i := m.rowPtr[row]; i < m.rowPtr[row+1]; i++ {
		sum += m.vals[i]
	}
	return sum
}

// MaxAbsDiagonal returns max_i |m[i,i]|, the quantity a uniformisation
// constant must dominate for a generator matrix.
func (m *CSR) MaxAbsDiagonal() float64 {
	maxAbs := 0.0
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			if int(m.colIdx[i]) == r {
				if a := math.Abs(m.vals[i]); a > maxAbs {
					maxAbs = a
				}
			}
		}
	}
	return maxAbs
}

// Transpose returns the transposed matrix. Left multiplication x·M — the
// direction uniformisation iterates — is implemented as Transpose(M)·x,
// so transposition is done once per transient solve.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int32, m.cols+1),
		colIdx: make([]int32, len(m.colIdx)),
		vals:   make([]float64, len(m.vals)),
	}
	// Count entries per column of m.
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for r := 0; r < t.rows; r++ {
		t.rowPtr[r+1] += t.rowPtr[r]
	}
	next := make([]int32, t.rows)
	copy(next, t.rowPtr[:t.rows])
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			pos := next[c]
			t.colIdx[pos] = int32(r)
			t.vals[pos] = m.vals[i]
			next[c]++
		}
	}
	return t
}

// MulVec computes dst = m·x (matrix times column vector). dst and x must
// not alias. It runs serially; see ParallelMulVec for large matrices.
//
//numlint:hotpath
func (m *CSR) MulVec(dst, x []float64) error {
	if len(x) != m.cols || len(dst) != m.rows {
		//numlint:ignore hotalloc cold shape-error path, never taken per SpMV iteration
		return fmt.Errorf("sparse: MulVec %dx%d with |x|=%d |dst|=%d: %w",
			m.rows, m.cols, len(x), len(dst), ErrShape)
	}
	for r := 0; r < m.rows; r++ {
		sum := 0.0
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			sum += m.vals[i] * x[m.colIdx[i]]
		}
		dst[r] = sum
	}
	check.FiniteVec("sparse.CSR.MulVec", dst)
	return nil
}

// VecMul computes dst = x·m (row vector times matrix) without
// transposing. It is a gather-free scatter loop and therefore serial;
// for repeated products transpose once and use MulVec.
//
//numlint:hotpath
func (m *CSR) VecMul(dst, x []float64) error {
	if len(x) != m.rows || len(dst) != m.cols {
		//numlint:ignore hotalloc cold shape-error path, never taken per SpMV iteration
		return fmt.Errorf("sparse: VecMul %dx%d with |x|=%d |dst|=%d: %w",
			m.rows, m.cols, len(x), len(dst), ErrShape)
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			dst[m.colIdx[i]] += m.vals[i] * xr
		}
	}
	check.FiniteVec("sparse.CSR.VecMul", dst)
	return nil
}

// Dense returns the matrix as a dense row-major slice of rows, intended
// for tests and small systems only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.rows)
	for r := range d {
		d[r] = make([]float64, m.cols)
	}
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			d[r][m.colIdx[i]] = m.vals[i]
		}
	}
	return d
}

// MulVecAccum computes dst = m·x and, when w != 0, acc[r] += w·dst[r]
// in the same pass — the serial fused kernel behind Pool.MulVecAccum.
// dst, x and acc must not alias. Bit-identical to MulVec followed by an
// element-wise accumulate: each element sees the same multiply-add in
// the same order.
//
//numlint:hotpath
func (m *CSR) MulVecAccum(dst, x, acc []float64, w float64) error {
	if len(x) != m.cols || len(dst) != m.rows || len(acc) != m.rows {
		//numlint:ignore hotalloc cold shape-error path, never taken per SpMV iteration
		return fmt.Errorf("sparse: MulVecAccum %dx%d with |x|=%d |dst|=%d |acc|=%d: %w",
			m.rows, m.cols, len(x), len(dst), len(acc), ErrShape)
	}
	m.mulAccumRows(dst, x, acc, w, 0, m.rows)
	check.FiniteVec("sparse.CSR.MulVecAccum", dst)
	return nil
}

// MulVecMulti computes dsts[k] = m·xs[k] for every right-hand side in a
// single traversal of the matrix — the serial batched kernel behind
// Pool.MulVecMulti. Row data (column indices and values) is loaded once
// per row and reused across all right-hand sides. Each dsts[k] is
// bit-identical to a solo MulVec(dsts[k], xs[k]).
//
//numlint:hotpath
func (m *CSR) MulVecMulti(dsts, xs [][]float64) error {
	if len(dsts) != len(xs) {
		//numlint:ignore hotalloc cold shape-error path, never taken per SpMV iteration
		return fmt.Errorf("sparse: MulVecMulti with %d dsts for %d xs: %w", len(dsts), len(xs), ErrShape)
	}
	for k := range xs {
		if len(xs[k]) != m.cols || len(dsts[k]) != m.rows {
			//numlint:ignore hotalloc cold shape-error path, never taken per SpMV iteration
			return fmt.Errorf("sparse: MulVecMulti %dx%d with |xs[%d]|=%d |dsts[%d]|=%d: %w",
				m.rows, m.cols, k, len(xs[k]), k, len(dsts[k]), ErrShape)
		}
	}
	m.mulMultiRows(dsts, xs, 0, m.rows)
	if check.Enabled {
		for k := range dsts {
			check.FiniteVec("sparse.CSR.MulVecMulti", dsts[k])
		}
	}
	return nil
}

// mulRows is the plain SpMV kernel over one row range. The CSR arrays
// are hoisted into locals: indexing receiver fields inside the loop
// defeats bounds-check elimination (the compiler must assume dst writes
// may alias the header of m.vals) and costs ~35% on a 50k-row chain.
func (m *CSR) mulRows(dst, x []float64, lo, hi int) {
	rowPtr, vals, colIdx := m.rowPtr, m.vals, m.colIdx
	for r := lo; r < hi; r++ {
		sum := 0.0
		for i := rowPtr[r]; i < rowPtr[r+1]; i++ {
			sum += vals[i] * x[colIdx[i]]
		}
		dst[r] = sum
	}
}

// mulAccumRows is the fused multiply-accumulate kernel over one row
// range: dst[r] = m[r,:]·x and, when w != 0, acc[r] += w·dst[r] while
// the freshly computed sum is still in a register.
func (m *CSR) mulAccumRows(dst, x, acc []float64, w float64, lo, hi int) {
	if w == 0 {
		// Matches the unfused path exactly: a zero Poisson weight folds
		// nothing in (foldIn skips p <= 0), so skip the accumulate
		// rather than adding +0.0 to every element.
		m.mulRows(dst, x, lo, hi)
		return
	}
	rowPtr, vals, colIdx := m.rowPtr, m.vals, m.colIdx
	for r := lo; r < hi; r++ {
		sum := 0.0
		for i := rowPtr[r]; i < rowPtr[r+1]; i++ {
			sum += vals[i] * x[colIdx[i]]
		}
		dst[r] = sum
		acc[r] += w * sum
	}
}

// mulMultiRows is the batched multi-RHS kernel over one row range: one
// full sweep of the range per right-hand side, so each (k, row)
// accumulates in exactly MulVec's entry order (bit-identity). Per-row
// and row-tiled interleavings were measured and rejected: the matrix
// arrays stream sequentially (the prefetcher hides them) while the
// gathers into x do not, and interleaving k right-hand sides multiplies
// the gather working set by k — ~2x slower on a 50k-row skewed chain.
// The batch's savings come from the pool layer instead: one dispatch,
// one partition lookup, and one task covers every right-hand side.
func (m *CSR) mulMultiRows(dsts, xs [][]float64, lo, hi int) {
	for k := range xs {
		m.mulRows(dsts[k], xs[k], lo, hi)
	}
}

// rowPartition is a precomputed nnz-balanced split of a matrix's rows
// into chunks: bounds[i]..bounds[i+1] is chunk i. imbalance is the
// heaviest chunk's weight relative to the ideal (total/chunks); 1.0 is
// perfect balance.
type rowPartition struct {
	chunks    int
	bounds    []int32
	imbalance float64
}

// rowPartition returns the cached nnz-balanced partition of the rows
// into at most `chunks` contiguous chunks, computing and caching it on
// first use (or when the requested chunk count changes). Row weight is
// nnz(row)+1 so empty-row regions still split, and a chunk never ends
// mid-row, so every parallel product remains bit-identical to the
// serial kernel. The greedy cut guarantees every chunk's weight is
// below ideal + the heaviest single row.
func (m *CSR) rowPartition(chunks int) *rowPartition {
	if p := m.part.Load(); p != nil && p.chunks == chunks {
		return p
	}
	p := computePartition(m.rowPtr, m.rows, chunks)
	m.part.Store(p)
	return p
}

// computePartition greedily cuts rows into nnz-balanced chunks.
func computePartition(rowPtr []int32, rows, chunks int) *rowPartition {
	if chunks < 1 {
		chunks = 1
	}
	if chunks > rows {
		chunks = rows
	}
	total := int64(rowPtr[rows]) + int64(rows) // Σ (nnz(r) + 1)
	ideal := float64(total) / float64(chunks)
	bounds := make([]int32, 1, chunks+1)
	var acc, maxChunk int64
	var cut int64 = 1 // cut after the chunk's weight reaches cut*ideal
	for r := 0; r < rows; r++ {
		acc += int64(rowPtr[r+1]-rowPtr[r]) + 1
		// Cut as soon as the cumulative weight crosses the next ideal
		// boundary, but leave enough rows for the remaining chunks.
		if float64(acc) >= float64(cut)*ideal && len(bounds) < chunks && rows-r-1 >= chunks-len(bounds) {
			bounds = append(bounds, int32(r+1))
			cut++
		}
	}
	bounds = append(bounds, int32(rows))
	// Measure the realised balance.
	for i := 0; i+1 < len(bounds); i++ {
		w := chunkWeight(rowPtr, int(bounds[i]), int(bounds[i+1]))
		if w > maxChunk {
			maxChunk = w
		}
	}
	imb := 1.0
	if ideal > 0 {
		imb = float64(maxChunk) / ideal
	}
	return &rowPartition{chunks: len(bounds) - 1, bounds: bounds, imbalance: imb}
}

// chunkWeight is the partition weight (nnz + row count) of rows [lo,hi).
func chunkWeight(rowPtr []int32, lo, hi int) int64 {
	return int64(rowPtr[hi]-rowPtr[lo]) + int64(hi-lo)
}
