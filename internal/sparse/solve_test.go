package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func buildFrom(t *testing.T, n int, entries map[[2]int]float64) *CSR {
	t.Helper()
	b := NewBuilder(n, n, len(entries))
	for pos, v := range entries {
		b.Add(pos[0], pos[1], v)
	}
	m, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGaussSeidelKnownSystem(t *testing.T) {
	// 4x - y = 7; -x + 3y = 1  →  x = 22/11 = 2, y = 1.
	a := buildFrom(t, 2, map[[2]int]float64{
		{0, 0}: 4, {0, 1}: -1,
		{1, 0}: -1, {1, 1}: 3,
	})
	x := make([]float64, 2)
	sweeps, err := GaussSeidel(a, x, []float64{7, 1}, GaussSeidelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sweeps <= 0 {
		t.Errorf("sweeps = %d", sweeps)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-1) > 1e-10 {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestGaussSeidelLargeDominantSystem(t *testing.T) {
	// Random strictly diagonally dominant system; verify the residual.
	rng := rand.New(rand.NewSource(1))
	const n = 500
	b := NewBuilder(n, n, n*6)
	rowAbs := make([]float64, n)
	for r := 0; r < n; r++ {
		for k := 0; k < 4; k++ {
			c := rng.Intn(n)
			if c == r {
				continue
			}
			v := rng.NormFloat64()
			b.Add(r, c, v)
			rowAbs[r] += math.Abs(v)
		}
	}
	for r := 0; r < n; r++ {
		b.Add(r, r, rowAbs[r]+1+rng.Float64())
	}
	a, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	if _, err := GaussSeidel(a, x, rhs, GaussSeidelOptions{}); err != nil {
		t.Fatal(err)
	}
	ax := make([]float64, n)
	if err := a.MulVec(ax, x); err != nil {
		t.Fatal(err)
	}
	for i := range ax {
		if math.Abs(ax[i]-rhs[i]) > 1e-8 {
			t.Fatalf("residual %v at row %d", ax[i]-rhs[i], i)
		}
	}
}

func TestGaussSeidelBidiagonalChain(t *testing.T) {
	// The absorption-time structure: m_j·q − m_{j-1}·q = 1 with m_0
	// known — lower-bidiagonal systems solve in one sweep exactly.
	const n = 1000
	q := 2.5
	b := NewBuilder(n, n, 2*n)
	for r := 0; r < n; r++ {
		b.Add(r, r, q)
		if r > 0 {
			b.Add(r, r-1, -q)
		}
	}
	a, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, n)
	sweeps, err := GaussSeidel(a, x, rhs, GaussSeidelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sweeps > 2 {
		t.Errorf("lower-triangular chain took %d sweeps, want <= 2", sweeps)
	}
	// m_j = (j+1)/q.
	for j := 0; j < n; j++ {
		if want := float64(j+1) / q; math.Abs(x[j]-want) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", j, x[j], want)
		}
	}
}

func TestGaussSeidelZeroDiagonal(t *testing.T) {
	a := buildFrom(t, 2, map[[2]int]float64{{0, 0}: 1, {0, 1}: 1, {1, 0}: 1})
	x := make([]float64, 2)
	if _, err := GaussSeidel(a, x, []float64{1, 1}, GaussSeidelOptions{}); !errors.Is(err, ErrZeroDiagonal) {
		t.Errorf("err = %v, want ErrZeroDiagonal", err)
	}
}

func TestGaussSeidelDivergence(t *testing.T) {
	// Off-diagonal dominance makes Gauss–Seidel diverge.
	a := buildFrom(t, 2, map[[2]int]float64{
		{0, 0}: 1, {0, 1}: 3,
		{1, 0}: 3, {1, 1}: 1,
	})
	x := make([]float64, 2)
	if _, err := GaussSeidel(a, x, []float64{1, 1}, GaussSeidelOptions{MaxIterations: 200}); !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestGaussSeidelShapeErrors(t *testing.T) {
	a := buildFrom(t, 2, map[[2]int]float64{{0, 0}: 1, {1, 1}: 1})
	if _, err := GaussSeidel(a, make([]float64, 1), make([]float64, 2), GaussSeidelOptions{}); !errors.Is(err, ErrShape) {
		t.Errorf("short x: err = %v", err)
	}
	rect, err := NewBuilder(2, 3, 0).Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GaussSeidel(rect, make([]float64, 2), make([]float64, 2), GaussSeidelOptions{}); !errors.Is(err, ErrShape) {
		t.Errorf("rectangular: err = %v", err)
	}
}

func TestGaussSeidelWarmStart(t *testing.T) {
	a := buildFrom(t, 2, map[[2]int]float64{
		{0, 0}: 4, {0, 1}: -1,
		{1, 0}: -1, {1, 1}: 3,
	})
	// Starting at the exact solution must converge immediately.
	x := []float64{2, 1}
	sweeps, err := GaussSeidel(a, x, []float64{7, 1}, GaussSeidelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sweeps != 1 {
		t.Errorf("warm start took %d sweeps", sweeps)
	}
}

func BenchmarkGaussSeidelChain(b *testing.B) {
	const n = 100000
	bu := NewBuilder(n, n, 2*n)
	for r := 0; r < n; r++ {
		bu.Add(r, r, 2.0)
		if r > 0 {
			bu.Add(r, r-1, -2.0)
		}
	}
	a, err := bu.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		if _, err := GaussSeidel(a, x, rhs, GaussSeidelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
