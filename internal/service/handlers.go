package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"batlife"
	"batlife/internal/api"
	"batlife/internal/obs"
)

// Routes returns the daemon's HTTP handler: the v1 API, health probes,
// and — when the service has a telemetry registry — the Prometheus
// /metrics exposition plus the /metrics.json, /debug/vars,
// /debug/traces and /debug/pprof/ suite. The whole tree sits behind
// obs.TraceMiddleware, so every request runs under an "http.request"
// span that honours an inbound W3C traceparent header and echoes its
// trace ID in the X-Batlife-Trace-Id response header.
func (s *Service) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /"+api.Version+"/solve", s.instrument("solve", http.HandlerFunc(s.handleSolve)))
	mux.Handle("POST /"+api.Version+"/sweep", s.instrument("sweep", http.HandlerFunc(s.handleSweep)))
	mux.Handle("GET /"+api.Version+"/jobs/{id}", s.instrument("jobs", http.HandlerFunc(s.handleJob)))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.reg != nil {
		oh := obs.Handler(s.reg)
		mux.Handle("GET /metrics", oh)
		mux.Handle("GET /metrics.json", oh)
		mux.Handle("GET /debug/", oh)
	}
	return obs.TraceMiddleware(s.reg, mux)
}

// instrument wraps a handler with a request counter and latency
// histogram labelled by endpoint; the latency observation carries the
// request's trace ID as an exemplar, so a slow scrape sample links
// straight to its trace in /debug/traces.
func (s *Service) instrument(name string, h http.Handler) http.Handler {
	if s.reg == nil {
		return h
	}
	endpoint := obs.String("endpoint", name)
	requests := s.reg.CounterWith("service_requests_total", endpoint)
	latency := s.reg.HistogramWith("service_latency_seconds", endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		start := time.Now()
		h.ServeHTTP(w, r)
		latency.ObserveExemplar(time.Since(start).Seconds(),
			obs.SpanFromContext(r.Context()).TraceID())
	})
}

// handleSolve serves POST /v1/solve: decode, validate, fingerprint,
// admit (or coalesce onto identical work), await, respond.
func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req api.SolveRequest
	if err := decodeRequest(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeErr(w, err)
		return
	}
	id, err := req.Fingerprint()
	if err != nil {
		writeErr(w, err)
		return
	}
	j, coalesced, attached, err := s.admit(r.Context(), id, "solve", s.timeoutFor(req.TimeoutSeconds),
		func(ctx context.Context, _ func(done, total int)) (any, error) {
			res, err := s.solve(ctx, &req)
			if err != nil {
				return nil, err
			}
			return res, nil
		})
	if err != nil {
		writeErr(w, err)
		return
	}
	s.respond(r.Context(), w, j, coalesced, attached)
}

// handleSweep serves POST /v1/sweep. With ?stream=1 the response is an
// NDJSON progress stream (api.ProgressEvent per line) ending in a
// result or error event; otherwise it blocks and returns the
// SweepResponse.
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := decodeRequest(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeErr(w, err)
		return
	}
	id, err := req.Fingerprint()
	if err != nil {
		writeErr(w, err)
		return
	}
	stream := r.URL.Query().Get("stream") != ""
	j, coalesced, attached, err := s.admit(r.Context(), id, "sweep", s.timeoutFor(req.TimeoutSeconds),
		func(ctx context.Context, progress func(done, total int)) (any, error) {
			items, err := s.sweep(ctx, &req, progress)
			if err != nil {
				return nil, err
			}
			return items, nil
		})
	if err != nil {
		writeErr(w, err)
		return
	}
	if stream {
		s.stream(r.Context(), w, j, coalesced, attached)
		return
	}
	s.respond(r.Context(), w, j, coalesced, attached)
}

// handleJob serves GET /v1/jobs/{id}: the current status of a live or
// retained job, including the full response document once done. With
// ?trace=1 (and telemetry enabled) the status additionally carries the
// job's completed span trees, as served by /debug/traces.
func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		writeErr(w, fmt.Errorf("%w: %s", ErrNotFound, id))
		return
	}
	st, err := statusOf(j)
	if err != nil {
		writeErr(w, err)
		return
	}
	if r.URL.Query().Get("trace") != "" && s.reg != nil && !j.trace.IsZero() {
		trees := obs.BuildTraceTrees(s.reg.Tracer().TraceSpans(j.trace))
		if raw, err := json.Marshal(trees); err == nil {
			st.Trace = raw
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz turns not-ready during drain so load balancers stop
// routing before the listener closes.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// respond awaits the job and writes its response envelope.
func (s *Service) respond(ctx context.Context, w http.ResponseWriter, j *job, coalesced, attached bool) {
	if err := s.await(ctx, j, attached); err != nil {
		writeErr(w, err)
		return
	}
	resp, err := responseFor(j.id, j.kind, coalesced, j.payload)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// await blocks until the job finishes or the caller's context expires.
// attached callers are detached on every path; the last one to abandon
// an unfinished job cancels it.
func (s *Service) await(ctx context.Context, j *job, attached bool) error {
	if attached {
		defer j.detach()
	}
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// stream writes the NDJSON progress stream for a sweep job. The status
// is committed as 200 before the job finishes, so terminal failures
// travel as an in-stream error event rather than an HTTP status.
func (s *Service) stream(ctx context.Context, w http.ResponseWriter, j *job, coalesced, attached bool) {
	if attached {
		defer j.detach()
	}
	ch := j.subscribe()
	defer j.unsubscribe(ch)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev api.ProgressEvent) {
		if enc.Encode(ev) == nil && flusher != nil {
			flusher.Flush()
		}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-ch:
			emit(api.ProgressEvent{
				Type:  "progress",
				Done:  j.progressDone.Load(),
				Total: j.progressTotal.Load(),
			})
		case <-j.done:
			if j.err != nil {
				emit(api.ProgressEvent{Type: "error", Error: toAPIError(j.err)})
				return
			}
			resp, err := responseFor(j.id, j.kind, coalesced, j.payload)
			if err != nil {
				emit(api.ProgressEvent{Type: "error", Error: toAPIError(err)})
				return
			}
			raw, err := json.Marshal(resp)
			if err != nil {
				emit(api.ProgressEvent{Type: "error", Error: toAPIError(err)})
				return
			}
			emit(api.ProgressEvent{
				Type:   "result",
				Done:   j.progressDone.Load(),
				Total:  j.progressTotal.Load(),
				Result: raw,
			})
			return
		}
	}
}

// decodeRequest strictly decodes a JSON request body; failures are
// argument errors.
func decodeRequest(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: request body: %v", batlife.ErrBadArgument, err)
	}
	return nil
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	// The status line is already on the wire; an encode failure here has
	// nowhere better to go than the connection itself.
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps an error through the sentinel taxonomy and writes the
// wire envelope.
func writeErr(w http.ResponseWriter, err error) {
	status, _ := classify(err)
	writeJSON(w, status, api.ErrorResponse{Error: toAPIError(err)})
}
