package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"batlife"
	"batlife/internal/api"
	"batlife/internal/obs"
)

// stubResult is the payload returned by gated stub jobs.
var stubResult = &api.SolveResult{States: 1}

// gatedService returns a service whose solve hook signals `started` on
// entry and blocks until `release` closes (or the job context ends).
func gatedService(t *testing.T, cfg Config) (s *Service, started chan string, release chan struct{}) {
	t.Helper()
	s = New(cfg)
	started = make(chan string, 16)
	release = make(chan struct{})
	s.solve = func(ctx context.Context, req *api.SolveRequest) (*api.SolveResult, error) {
		started <- fmt.Sprint(req.Times)
		select {
		case <-release:
			return stubResult, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, started, release
}

// stubRun adapts the service solve hook into an admit run body.
func stubRun(s *Service, req *api.SolveRequest) runFunc {
	return func(ctx context.Context, _ func(done, total int)) (any, error) {
		res, err := s.solve(ctx, req)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

func waitStarted(t *testing.T, started chan string) {
	t.Helper()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job did not start")
	}
}

func awaitDone(t *testing.T, j *job) error {
	t.Helper()
	select {
	case <-j.done:
		return j.err
	case <-time.After(5 * time.Second):
		t.Fatal("job did not finish")
		return nil
	}
}

func TestAdmissionControl(t *testing.T) {
	// One run slot, one queue slot: the third distinct concurrent job is
	// refused immediately with ErrOverloaded.
	reg := obs.NewRegistry()
	s, started, release := gatedService(t, Config{MaxInflight: 1, QueueDepth: 1, Obs: reg})

	req := &api.SolveRequest{}
	j1, coalesced, attached, err := s.admit(context.Background(), "a", "solve", time.Minute, stubRun(s, req))
	if err != nil || coalesced || !attached {
		t.Fatalf("admit a: job=%v coalesced=%v attached=%v err=%v", j1, coalesced, attached, err)
	}
	waitStarted(t, started) // a holds the run slot

	j2, _, _, err := s.admit(context.Background(), "b", "solve", time.Minute, stubRun(s, req))
	if err != nil {
		t.Fatalf("admit b (queued): %v", err)
	}
	if _, _, _, err := s.admit(context.Background(), "c", "solve", time.Minute, stubRun(s, req)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit c: err = %v, want ErrOverloaded", err)
	}
	if got := reg.Counter("service_rejected_total").Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	close(release)
	if err := awaitDone(t, j1); err != nil {
		t.Errorf("job a: %v", err)
	}
	if err := awaitDone(t, j2); err != nil {
		t.Errorf("job b: %v", err)
	}
	// Capacity freed: admission works again.
	if _, _, _, err := s.admit(context.Background(), "d", "solve", time.Minute, stubRun(s, req)); err != nil {
		t.Errorf("admit d after drain of queue: %v", err)
	}
}

func TestCoalesceAttachesToInflightJob(t *testing.T) {
	reg := obs.NewRegistry()
	s, started, release := gatedService(t, Config{MaxInflight: 2, Obs: reg})
	req := &api.SolveRequest{}

	j1, _, _, err := s.admit(context.Background(), "same", "solve", time.Minute, stubRun(s, req))
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, started)
	j2, coalesced, attached, err := s.admit(context.Background(), "same", "solve", time.Minute, stubRun(s, req))
	if err != nil || !coalesced || !attached {
		t.Fatalf("second admit: coalesced=%v attached=%v err=%v", coalesced, attached, err)
	}
	if j1 != j2 {
		t.Fatal("identical fingerprints landed on distinct jobs")
	}
	close(release)
	if err := awaitDone(t, j1); err != nil {
		t.Fatal(err)
	}
	// Only one execution: the hook was entered once.
	if len(started) != 0 {
		t.Errorf("job body ran %d extra times", len(started))
	}
	if got := reg.Counter("service_coalesced_total").Value(); got != 1 {
		t.Errorf("coalesced counter = %d, want 1", got)
	}
	if got := reg.Counter("service_jobs_total").Value(); got != 1 {
		t.Errorf("jobs counter = %d, want 1", got)
	}

	// Replay after completion: served from retention, no new execution,
	// no waiter accounting.
	j3, coalesced, attached, err := s.admit(context.Background(), "same", "solve", time.Minute, stubRun(s, req))
	if err != nil || !coalesced || attached {
		t.Fatalf("replay: coalesced=%v attached=%v err=%v", coalesced, attached, err)
	}
	if j3.payload != any(stubResult) {
		t.Errorf("replay payload = %v", j3.payload)
	}
}

func TestAbandonedJobIsCancelled(t *testing.T) {
	// When the last waiter walks away from an unfinished job, its context
	// is cancelled so it stops consuming a run slot.
	s, started, _ := gatedService(t, Config{MaxInflight: 1})
	req := &api.SolveRequest{}
	j, _, attached, err := s.admit(context.Background(), "a", "solve", time.Minute, stubRun(s, req))
	if err != nil || !attached {
		t.Fatal(err)
	}
	waitStarted(t, started)
	j.detach()
	if err := awaitDone(t, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned job err = %v, want context.Canceled", err)
	}
	// The slot is free again.
	if _, _, _, err := s.admit(context.Background(), "b", "solve", time.Minute, stubRun(s, req)); err != nil {
		t.Fatalf("admit after abandonment: %v", err)
	}
}

func TestAbandonedQueuedJobReleasesToken(t *testing.T) {
	// A queued job whose waiter leaves never runs; it fails with the
	// cancellation and frees its admission token.
	s, started, release := gatedService(t, Config{MaxInflight: 1, QueueDepth: 1})
	req := &api.SolveRequest{}
	j1, _, _, err := s.admit(context.Background(), "a", "solve", time.Minute, stubRun(s, req))
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, started)
	j2, _, _, err := s.admit(context.Background(), "b", "solve", time.Minute, stubRun(s, req))
	if err != nil {
		t.Fatal(err)
	}
	j2.detach()
	if err := awaitDone(t, j2); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued abandoned job err = %v, want context.Canceled", err)
	}
	if len(started) != 0 {
		t.Error("abandoned queued job ran anyway")
	}
	close(release)
	if err := awaitDone(t, j1); err != nil {
		t.Fatal(err)
	}
}

func TestJobDeadline(t *testing.T) {
	s, started, _ := gatedService(t, Config{MaxInflight: 1})
	req := &api.SolveRequest{}
	j, _, _, err := s.admit(context.Background(), "a", "solve", 20*time.Millisecond, stubRun(s, req))
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, started)
	if err := awaitDone(t, j); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestDrainSemantics(t *testing.T) {
	// Drain: inflight jobs run to completion, new work is refused with
	// ErrDraining, and Drain returns once idle.
	s, started, release := gatedService(t, Config{MaxInflight: 2})
	req := &api.SolveRequest{}
	j, _, _, err := s.admit(context.Background(), "inflight", "solve", time.Minute, stubRun(s, req))
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, started)

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	if _, _, _, err := s.admit(context.Background(), "new", "solve", time.Minute, stubRun(s, req)); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit during drain: err = %v, want ErrDraining", err)
	}

	// Drain blocks while the job is inflight.
	expired, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with inflight job = %v, want deadline exceeded", err)
	}

	close(release)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	// The inflight job completed successfully — drain did not cancel it.
	if err := awaitDone(t, j); err != nil {
		t.Errorf("inflight job during drain failed: %v", err)
	}
	if j.payload != any(stubResult) {
		t.Errorf("inflight job payload = %v, want stub result", j.payload)
	}
}

func TestDrainClosesOwnedSolver(t *testing.T) {
	// A service that constructed its own solver releases the solver's
	// persistent SpMV workers on a successful drain; the solver must
	// stay usable (it degrades to serial products) for late stats reads
	// or a drain-then-flush shutdown sequence.
	s := New(Config{MaxInflight: 1})
	if !s.ownsSolver {
		t.Fatal("service with nil Config.Solver does not own its solver")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	w, err := batlife.OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	b := batlife.Battery{CapacityAs: 7200, AvailableFraction: 1}
	if _, err := s.Solver().LifetimeDistribution(b, w, []float64{9000},
		batlife.AnalysisOptions{Delta: 100}); err != nil {
		t.Fatalf("solve after drain: %v", err)
	}

	// A caller-supplied solver is not the service's to close.
	shared := batlife.NewSolver(batlife.SolverOptions{})
	defer shared.Close()
	s2 := New(Config{Solver: shared, MaxInflight: 1})
	if s2.ownsSolver {
		t.Fatal("service with caller-supplied solver claims ownership")
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestRetentionEviction(t *testing.T) {
	s := New(Config{MaxInflight: 2, JobRetention: 2})
	run := func(ctx context.Context, _ func(done, total int)) (any, error) {
		return stubResult, nil
	}
	for _, id := range []string{"a", "b", "c"} {
		j, _, _, err := s.admit(context.Background(), id, "solve", time.Minute, run)
		if err != nil {
			t.Fatal(err)
		}
		if err := awaitDone(t, j); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.lookup("a"); ok {
		t.Error("oldest job survived past retention")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := s.lookup(id); !ok {
			t.Errorf("job %s evicted while within retention", id)
		}
	}
}

func TestClassifyTable(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"bad argument", batlife.ErrBadArgument, http.StatusBadRequest, "bad_argument"},
		{"wrapped bad argument", fmt.Errorf("decode: %w", batlife.ErrBadArgument), http.StatusBadRequest, "bad_argument"},
		{"iteration limit", fmt.Errorf("solve: %w", batlife.ErrIterationLimit), http.StatusUnprocessableEntity, "iteration_limit"},
		{"overloaded", ErrOverloaded, http.StatusTooManyRequests, "overloaded"},
		{"draining", ErrDraining, http.StatusServiceUnavailable, "draining"},
		{"not found", fmt.Errorf("%w: x", ErrNotFound), http.StatusNotFound, "not_found"},
		{"deadline", fmt.Errorf("ctx: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, "deadline_exceeded"},
		{"canceled", context.Canceled, statusClientGone, "canceled"},
		{"internal", errors.New("boom"), http.StatusInternalServerError, "internal"},
		{"internal sentinel", errInternalf("odd payload %d", 7), http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, code := classify(tc.err)
			if status != tc.status || code != tc.code {
				t.Errorf("classify(%v) = (%d, %q), want (%d, %q)", tc.err, status, code, tc.status, tc.code)
			}
		})
	}
}

func TestJobStateStrings(t *testing.T) {
	s, started, release := gatedService(t, Config{MaxInflight: 1})
	req := &api.SolveRequest{}
	j, _, _, err := s.admit(context.Background(), "a", "solve", time.Minute, stubRun(s, req))
	if err != nil {
		t.Fatal(err)
	}
	waitStarted(t, started)
	if st := j.state(); st != api.JobQueued && st != api.JobRunning {
		t.Errorf("inflight state = %q", st)
	}
	close(release)
	if err := awaitDone(t, j); err != nil {
		t.Fatal(err)
	}
	if st := j.state(); st != api.JobDone {
		t.Errorf("finished state = %q, want done", st)
	}
	status, err := statusOf(j)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != api.JobDone || len(status.Result) == 0 {
		t.Errorf("statusOf = %+v, want done with result", status)
	}
}
