// Package service is the batlifed daemon's core: a long-running solve
// service fronting a shared batlife.Solver behind HTTP/JSON (the
// internal/api wire schema). It owns the concerns a request/response
// CLI does not have:
//
//   - Admission control. At most MaxInflight jobs run concurrently and
//     at most QueueDepth more may wait; past that, new work is refused
//     immediately with an overload error rather than queued without
//     bound.
//   - Deadlines. Every job runs under a context with a per-request
//     timeout (clamped to a server maximum) that propagates into
//     AnalysisOptions, so a stuck solve cannot pin a worker forever.
//   - Coalescing and idempotency. Job identity is the content address
//     of the canonical request (api.Fingerprint); identical concurrent
//     requests attach to one running job and identical replays within
//     the retention window are served from the job store without
//     resolving. The solver's own model cache and result memo make the
//     underlying numerics cheap; coalescing extends that economy to
//     whole requests.
//   - Graceful drain. Drain stops admitting work, lets inflight jobs
//     finish, and flips /readyz to not-ready so load balancers move on.
//
// The package is transport-complete but socket-free: Routes returns an
// http.Handler and cmd/batlifed owns listening and signals.
package service

import (
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"batlife"
	"batlife/internal/api"
	"batlife/internal/obs"
)

// Config tunes a Service. The zero value of every field selects a
// sensible default.
type Config struct {
	// Solver executes the analyses. Nil constructs a private solver
	// with default cache bounds.
	Solver *batlife.Solver
	// MaxInflight bounds concurrently running jobs; values < 1 select
	// runtime.NumCPU().
	MaxInflight int
	// QueueDepth bounds jobs admitted but waiting for a run slot;
	// values < 0 select 2×MaxInflight. Zero is honoured: no queue,
	// reject unless a run slot is free.
	QueueDepth int
	// DefaultTimeout applies to requests that do not set
	// timeout_seconds; values <= 0 select 60s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps requested timeouts; values <= 0 select 10min.
	MaxTimeout time.Duration
	// JobRetention bounds how many finished jobs stay addressable via
	// GET /v1/jobs/{id} (and replayable by identical POSTs); values < 1
	// select 128. Oldest-finished evicts first.
	JobRetention int
	// SweepWorkers clamps the per-request scenario parallelism; values
	// < 1 select runtime.NumCPU().
	SweepWorkers int
	// Obs, when non-nil, records service metrics (queue wait, inflight,
	// per-endpoint latency, rejections, coalesced hits) and is mounted
	// at /metrics, /debug/vars and /debug/pprof/ by Routes.
	Obs *obs.Registry
}

func (c *Config) setDefaults() {
	if c.MaxInflight < 1 {
		c.MaxInflight = runtime.NumCPU()
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 2 * c.MaxInflight
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.JobRetention < 1 {
		c.JobRetention = 128
	}
	if c.SweepWorkers < 1 {
		c.SweepWorkers = runtime.NumCPU()
	}
}

// Service is the daemon core. All methods are safe for concurrent use.
type Service struct {
	cfg    Config
	solver *batlife.Solver
	reg    *obs.Registry

	// tokens is the admission budget (run slots + queue depth): holding
	// a token means the job is inside the service, queued or running.
	// slots is the run budget. Both are channel semaphores so acquire
	// composes with select.
	tokens chan struct{}
	slots  chan struct{}

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // finished job IDs, oldest first, for retention eviction

	draining atomic.Bool
	inflight sync.WaitGroup // running + queued jobs

	// ownsSolver records that New constructed the solver (Config.Solver
	// was nil), so a completed Drain releases its worker goroutines too.
	ownsSolver bool

	// Pre-resolved instruments (nil without Obs; methods on nil are
	// no-ops).
	inflightGauge *obs.Gauge
	queueWait     *obs.Histogram
	rejections    *obs.Counter
	coalesces     *obs.Counter
	jobsStarted   *obs.Counter

	// solve and sweep execute the analyses; tests substitute these to
	// pin scheduling behaviour (drain, cancellation, deadlines) without
	// real numerics.
	solve func(ctx context.Context, req *api.SolveRequest) (*api.SolveResult, error)
	sweep func(ctx context.Context, req *api.SweepRequest, progress func(done, total int)) ([]api.SweepItemResult, error)
}

// New constructs a Service.
func New(cfg Config) *Service {
	cfg.setDefaults()
	s := &Service{
		cfg:    cfg,
		solver: cfg.Solver,
		reg:    cfg.Obs,
		tokens: make(chan struct{}, cfg.MaxInflight+cfg.QueueDepth),
		slots:  make(chan struct{}, cfg.MaxInflight),
		jobs:   make(map[string]*job),
	}
	if s.solver == nil {
		// The daemon owns this solver — and so its persistent SpMV worker
		// pool — for its whole lifetime; Drain releases it.
		s.solver = batlife.NewSolver(batlife.SolverOptions{Telemetry: cfg.Obs})
		s.ownsSolver = true
	}
	if s.reg != nil {
		s.inflightGauge = s.reg.Gauge("service_inflight")
		s.queueWait = s.reg.Histogram("service_queue_wait_seconds")
		s.rejections = s.reg.Counter("service_rejected_total")
		s.coalesces = s.reg.Counter("service_coalesced_total")
		s.jobsStarted = s.reg.Counter("service_jobs_total")
	}
	s.solve = s.runSolve
	s.sweep = s.runSweep
	return s
}

// Solver exposes the backing solver (for stats endpoints and tests).
func (s *Service) Solver() *batlife.Solver { return s.solver }

// Draining reports whether the service has stopped admitting work.
func (s *Service) Draining() bool { return s.draining.Load() }

// BeginDrain stops admitting new jobs: subsequent solve/sweep requests
// fail with ErrDraining and /readyz turns not-ready. Inflight and
// queued jobs keep running. Idempotent.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Drain performs a graceful shutdown: stop admitting, then wait for
// every admitted job to finish or for ctx to expire, whichever comes
// first. It returns ctx.Err() on expiry, nil once idle. A successful
// drain of a service that constructed its own solver (Config.Solver was
// nil) also closes that solver's persistent SpMV worker pool; on expiry
// the workers are left running because jobs may still be using them.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	idle := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		if s.ownsSolver {
			s.solver.Close()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// job is one admitted unit of work, shared by every request that
// coalesced onto it.
type job struct {
	id   string
	kind string // "solve" or "sweep"

	// ctx governs the job's whole life; cancel fires when the last
	// waiter detaches before completion (nobody wants the answer).
	ctx    context.Context
	cancel context.CancelFunc

	timeout time.Duration

	done    chan struct{} // closed on completion
	payload any           // *api.SolveResult or []api.SweepItemResult
	err     error         // terminal failure, nil on success

	// span is the "service.job" span covering the job's whole life
	// (nil without telemetry); trace is its trace identity, reported in
	// JobStatus so a client can correlate a job with /debug/traces.
	span  *obs.Span
	trace obs.TraceID

	progressDone  atomic.Int64
	progressTotal atomic.Int64

	mu       sync.Mutex
	finished bool
	waiters  int
	subs     map[chan struct{}]struct{}
}

// attach registers a caller waiting on the job. It returns false when
// the job already finished (replay — no waiter accounting needed).
func (j *job) attach() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return false
	}
	j.waiters++
	return true
}

// detach drops one waiter; when the last waiter leaves an unfinished
// job, the job is cancelled — nobody is listening for the answer, so
// burning a run slot on it would only delay admitted work.
func (j *job) detach() {
	j.mu.Lock()
	j.waiters--
	abandon := j.waiters == 0 && !j.finished
	j.mu.Unlock()
	if abandon {
		j.cancel()
	}
}

// finish publishes the outcome and wakes waiters and subscribers.
func (j *job) finish(payload any, err error) {
	j.mu.Lock()
	j.finished = true
	j.payload = payload
	j.err = err
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	j.mu.Unlock()
	close(j.done)
	j.cancel()
}

// state reports the api.Job* state string.
func (j *job) state() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case !j.finished:
		if j.progressDone.Load() > 0 || j.progressTotal.Load() > 0 {
			return api.JobRunning
		}
		return api.JobQueued
	case j.err != nil:
		return api.JobFailed
	default:
		return api.JobDone
	}
}

// subscribe registers a progress notification channel; notify sends are
// non-blocking, so the channel doubles as a dirty flag.
func (j *job) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan struct{}]struct{})
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// setProgress records sweep progress and pokes subscribers.
func (j *job) setProgress(done, total int) {
	j.progressDone.Store(int64(done))
	j.progressTotal.Store(int64(total))
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	j.mu.Unlock()
}

// runFunc is a job body: it runs under the job's deadline context and
// may report progress through the supplied sink (never nil).
type runFunc func(ctx context.Context, progress func(done, total int)) (any, error)

// admit looks up or creates the job for a fingerprint. ctx is the
// admitting request's context: its span (if any) parents the job's
// "service.job" span, and coalesce-attach events are recorded on its
// trace. The returned coalesced flag reports whether the request
// attached to pre-existing work (inflight or retained). run executes
// the job body once; it is ignored on coalesce. attached reports
// whether waiter accounting is live (false for replays of finished
// jobs).
func (s *Service) admit(ctx context.Context, id, kind string, timeout time.Duration, run runFunc) (j *job, coalesced, attached bool, err error) {
	if s.draining.Load() {
		s.rejections.Inc()
		return nil, false, false, ErrDraining
	}
	s.mu.Lock()
	if existing, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		s.coalesces.Inc()
		live := existing.attach()
		if obs.TracingEnabled(ctx, s.reg) {
			// Record the coalesce-attach on the incoming request's
			// trace, including how many waiters now share the job.
			existing.mu.Lock()
			waiters := existing.waiters
			existing.mu.Unlock()
			_, cs := obs.StartSpan(ctx, s.reg, "service.coalesce",
				obs.String("job_id", id),
				obs.String("job_trace_id", existing.trace.String()),
				obs.Int("waiters", int64(waiters)))
			cs.End()
		}
		return existing, true, live, nil
	}
	// New work needs an admission token; without one the service is at
	// run+queue capacity and the request is refused rather than parked.
	select {
	case s.tokens <- struct{}{}:
	default:
		s.mu.Unlock()
		s.rejections.Inc()
		return nil, false, false, ErrOverloaded
	}
	_, span := obs.StartSpan(ctx, s.reg, "service.job",
		obs.String("job_id", id), obs.String("kind", kind))
	// The job deliberately outlives the admitting request (coalesced
	// waiters may still want the answer after the first caller leaves),
	// so its context detaches from the request's cancellation; only the
	// trace identity is carried over.
	//numlint:ignore ctxflow job lifetime is decoupled from the admitting request by design
	jctx, cancel := context.WithCancel(obs.ContextWithSpan(context.Background(), span))
	j = &job{
		id:      id,
		kind:    kind,
		ctx:     jctx,
		cancel:  cancel,
		timeout: timeout,
		done:    make(chan struct{}),
		span:    span,
		trace:   span.TraceID(),
	}
	j.waiters = 1
	s.jobs[id] = j
	s.inflight.Add(1)
	s.mu.Unlock()

	s.jobsStarted.Inc()
	if s.reg != nil {
		s.reg.Logger().InfoContext(ctx, "job admitted",
			"job_id", id, "kind", kind, "timeout", timeout.String())
	}
	go s.execute(j, run)
	return j, false, true, nil
}

// execute runs one admitted job: wait for a run slot (or for the job to
// be abandoned), apply the deadline, run the body, publish the outcome,
// and hand back the slot and admission token.
func (s *Service) execute(j *job, run runFunc) {
	defer s.inflight.Done()
	defer func() { <-s.tokens }()

	enqueued := time.Now()
	queueSpan := j.span.Child("service.queue")
	select {
	case s.slots <- struct{}{}:
	case <-j.ctx.Done():
		// Abandoned while queued; surface the cancellation so a later
		// GET /v1/jobs/{id} reports a failed job, not a vanished one.
		queueSpan.End(obs.String("error", j.ctx.Err().Error()))
		s.retire(j, nil, j.ctx.Err())
		return
	}
	defer func() { <-s.slots }()
	queueSpan.End()
	s.queueWait.ObserveDuration(time.Since(enqueued).Seconds())

	s.inflightGauge.Add(1)
	defer s.inflightGauge.Add(-1)

	ctx, cancel := context.WithTimeout(j.ctx, j.timeout)
	defer cancel()
	payload, err := run(ctx, j.setProgress)
	s.retire(j, payload, err)
}

// retire publishes a job outcome and applies retention: the finished
// job stays addressable (and coalescable) until JobRetention newer
// finishes push it out.
func (s *Service) retire(j *job, payload any, err error) {
	if err != nil {
		j.span.End(obs.String("error", err.Error()))
	} else {
		j.span.End()
	}
	j.finish(payload, err)
	s.mu.Lock()
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.JobRetention {
		evict := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, evict)
	}
	s.mu.Unlock()
}

// lookup returns a live or retained job.
func (s *Service) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// timeoutFor clamps a requested timeout into the configured window.
func (s *Service) timeoutFor(seconds float64) time.Duration {
	if seconds <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(seconds * float64(time.Second))
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// runSolve executes one solve with the job context threaded into
// AnalysisOptions, dispatching on the requested analysis.
func (s *Service) runSolve(ctx context.Context, req *api.SolveRequest) (*api.SolveResult, error) {
	opts := req.Options
	opts.Context = ctx
	switch req.Analysis {
	case api.AnalysisExact:
		d, err := s.solver.ExactCDF(req.Battery, req.Workload, req.Times, opts)
		if err != nil {
			return nil, err
		}
		return api.DistributionResult(d), nil
	case api.AnalysisMean:
		mean, err := s.solver.ExpectedLifetime(req.Battery, req.Workload, opts)
		if err != nil {
			return nil, err
		}
		return &api.SolveResult{MeanSeconds: &mean}, nil
	default: // api.AnalysisCDF
		d, err := s.solver.LifetimeDistribution(req.Battery, req.Workload, req.Times, opts)
		if err != nil {
			return nil, err
		}
		return api.DistributionResult(d), nil
	}
}

// runSweep executes one sweep with the job context and progress hook
// threaded into SweepOptions. Per-scenario failures land in the item
// results; only whole-sweep failures (cancellation) are returned.
func (s *Service) runSweep(ctx context.Context, req *api.SweepRequest, progress func(done, total int)) ([]api.SweepItemResult, error) {
	scenarios := make([]batlife.Scenario, len(req.Scenarios))
	for i, sc := range req.Scenarios {
		scenarios[i] = batlife.Scenario{
			Name:     sc.Name,
			Battery:  sc.Battery,
			Workload: sc.Workload,
			DeltaAs:  sc.DeltaAs,
			Times:    sc.Times,
		}
	}
	workers := req.Workers
	if workers < 1 || workers > s.cfg.SweepWorkers {
		workers = s.cfg.SweepWorkers
	}
	results, err := s.solver.Sweep(scenarios, batlife.SweepOptions{
		Workers:       workers,
		Epsilon:       req.Epsilon,
		MaxIterations: req.MaxIterations,
		Context:       ctx,
		Progress:      progress,
	})
	if err != nil {
		return nil, err
	}
	items := make([]api.SweepItemResult, len(results))
	for i, r := range results {
		item := api.SweepItemResult{Index: r.Index, Name: r.Name}
		if r.Err != nil {
			item.Error = toAPIError(r.Err)
		} else {
			item.Result = api.DistributionResult(r.Distribution)
		}
		items[i] = item
	}
	return items, nil
}

// statusOf renders a job's current JobStatus document.
func statusOf(j *job) (*api.JobStatus, error) {
	st := &api.JobStatus{
		ID:    j.id,
		Kind:  j.kind,
		State: j.state(),
		Done:  j.progressDone.Load(),
		Total: j.progressTotal.Load(),
	}
	if !j.trace.IsZero() {
		st.TraceID = j.trace.String()
	}
	j.mu.Lock()
	finished, payload, jerr := j.finished, j.payload, j.err
	j.mu.Unlock()
	if !finished {
		return st, nil
	}
	if jerr != nil {
		st.Error = toAPIError(jerr)
		return st, nil
	}
	resp, err := responseFor(j.id, j.kind, false, payload)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	st.Result = raw
	return st, nil
}

// responseFor wraps a job payload in its endpoint response envelope.
func responseFor(id, kind string, coalesced bool, payload any) (any, error) {
	switch p := payload.(type) {
	case *api.SolveResult:
		return &api.SolveResponse{JobID: id, Coalesced: coalesced, Result: p}, nil
	case []api.SweepItemResult:
		return &api.SweepResponse{JobID: id, Coalesced: coalesced, Results: p}, nil
	default:
		return nil, errInternalf("job %s (%s): unexpected payload %T", id, kind, payload)
	}
}
