package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batlife"
	"batlife/internal/api"
	"batlife/internal/obs"
)

func twoState(t *testing.T) *batlife.Workload {
	t.Helper()
	w, err := batlife.NewWorkload(
		[]batlife.StateSpec{{Name: "idle", CurrentA: 0.008}, {Name: "send", CurrentA: 0.2}},
		[]batlife.TransitionSpec{
			{From: "idle", To: "send", RatePerSec: 0.5},
			{From: "send", To: "idle", RatePerSec: 0.25},
		},
		"idle")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func validSolveReq(t *testing.T) api.SolveRequest {
	t.Helper()
	return api.SolveRequest{
		Battery:  batlife.Battery{CapacityAs: 7200, AvailableFraction: 1},
		Workload: twoState(t),
		Times:    []float64{10000, 20000, 40000},
		Options:  batlife.AnalysisOptions{Delta: 100},
	}
}

func postJSON(t *testing.T, client *http.Client, url string, v any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == nil {
		t.Fatalf("not an error envelope: %s", body)
	}
	return er.Error.Code
}

func eventually(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestHTTPSolveGoldenAgainstSolver(t *testing.T) {
	solver := batlife.NewSolver(batlife.SolverOptions{})
	svc := New(Config{Solver: solver, MaxInflight: 2})
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	req := validSolveReq(t)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var sr api.SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.JobID == "" || sr.Coalesced || sr.Result == nil {
		t.Fatalf("response = %+v", sr)
	}

	// The wire result is bit-identical to calling the solver directly.
	want, err := batlife.NewSolver(batlife.SolverOptions{}).LifetimeDistribution(
		req.Battery, req.Workload, req.Times, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Result.EmptyProb) != len(want.EmptyProb) {
		t.Fatalf("curve length %d, want %d", len(sr.Result.EmptyProb), len(want.EmptyProb))
	}
	for i := range want.EmptyProb {
		if sr.Result.EmptyProb[i] != want.EmptyProb[i] {
			t.Errorf("EmptyProb[%d] = %v, want %v", i, sr.Result.EmptyProb[i], want.EmptyProb[i])
		}
	}
	if sr.Result.States != want.States || sr.Result.Iterations != want.Iterations {
		t.Errorf("metadata {%d %d} vs {%d %d}", sr.Result.States, sr.Result.Iterations, want.States, want.Iterations)
	}

	// "mean" and "exact" dispatch to their analyses.
	mean := req
	mean.Analysis = api.AnalysisMean
	mean.Times = nil
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/solve", &mean)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mean status = %d, body = %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Result.MeanSeconds == nil || *sr.Result.MeanSeconds <= 0 {
		t.Errorf("mean result = %+v", sr.Result)
	}

	exact := req
	exact.Analysis = api.AnalysisExact
	exact.Options = batlife.AnalysisOptions{}
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/solve", &exact)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact status = %d, body = %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Result.EmptyProb) != len(exact.Times) {
		t.Errorf("exact curve length = %d", len(sr.Result.EmptyProb))
	}
}

func TestHTTPCoalescedDuplicatesBuildOnce(t *testing.T) {
	// The acceptance pin: N identical concurrent POSTs perform exactly
	// one engine build (Solver.Stats) and one service-level execution.
	const n = 4
	solver := batlife.NewSolver(batlife.SolverOptions{})
	reg := obs.NewRegistry()
	svc := New(Config{Solver: solver, MaxInflight: n, Obs: reg})

	inner := svc.solve
	var calls atomic.Int32
	gate := make(chan struct{})
	svc.solve = func(ctx context.Context, req *api.SolveRequest) (*api.SolveResult, error) {
		calls.Add(1)
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return inner(ctx, req)
	}

	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	req := validSolveReq(t)
	id, err := req.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		status int
		body   []byte
	}
	results := make(chan outcome, n)
	post := func() {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", &req)
		results <- outcome{resp.StatusCode, body}
	}

	go post()
	eventually(t, func() bool { return calls.Load() == 1 }, "first request did not start")
	for i := 1; i < n; i++ {
		go post()
	}
	// All n requests are mid-flight on one job before it is released.
	eventually(t, func() bool {
		j, ok := svc.lookup(id)
		if !ok {
			return false
		}
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.waiters == n
	}, "requests did not coalesce onto one job")
	close(gate)

	var coalesced int
	jobIDs := make(map[string]bool)
	for i := 0; i < n; i++ {
		out := <-results
		if out.status != http.StatusOK {
			t.Fatalf("status = %d, body = %s", out.status, out.body)
		}
		var sr api.SolveResponse
		if err := json.Unmarshal(out.body, &sr); err != nil {
			t.Fatal(err)
		}
		jobIDs[sr.JobID] = true
		if sr.Coalesced {
			coalesced++
		}
	}
	if len(jobIDs) != 1 || !jobIDs[id] {
		t.Errorf("job IDs = %v, want exactly {%s}", jobIDs, id)
	}
	if coalesced != n-1 {
		t.Errorf("coalesced responses = %d, want %d", coalesced, n-1)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("service executions = %d, want 1", got)
	}
	if st := solver.Stats(); st.Misses != 1 {
		t.Errorf("engine stats = %+v, want exactly one build", st)
	}
	if got := reg.Counter("service_coalesced_total").Value(); got != n-1 {
		t.Errorf("coalesced counter = %d, want %d", got, n-1)
	}
	if got := reg.Counter("service_jobs_total").Value(); got != 1 {
		t.Errorf("jobs counter = %d, want 1", got)
	}
}

func TestHTTPJobStatusAndIdempotentReplay(t *testing.T) {
	svc := New(Config{MaxInflight: 2})
	var calls atomic.Int32
	svc.solve = func(ctx context.Context, req *api.SolveRequest) (*api.SolveResult, error) {
		calls.Add(1)
		return stubResult, nil
	}
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	req := validSolveReq(t)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var sr api.SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	// GET /v1/jobs/{id} replays the outcome.
	getResp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sr.JobID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("job status = %d, body = %s", getResp.StatusCode, body)
	}
	var st api.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != sr.JobID || st.Kind != "solve" || st.State != api.JobDone || len(st.Result) == 0 {
		t.Fatalf("job status = %+v", st)
	}

	// An identical POST is served from the job store without re-solving.
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/solve", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Coalesced {
		t.Error("replay not marked coalesced")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("solve executions = %d, want 1 (replay must not re-run)", got)
	}

	// Unknown jobs are 404 not_found.
	getResp, err = ts.Client().Get(ts.URL + "/v1/jobs/s-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound || errCode(t, body) != "not_found" {
		t.Errorf("unknown job: status %d code %q", getResp.StatusCode, errCode(t, body))
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	svc := New(Config{MaxInflight: 2})
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	// Malformed body.
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errCode(t, body) != "bad_argument" {
		t.Errorf("malformed body: status %d code %q", resp.StatusCode, errCode(t, body))
	}

	// Unknown top-level field.
	resp, err = ts.Client().Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(`{"battery":{},"typo":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", resp.StatusCode)
	}

	// Validation failure (no times).
	req := validSolveReq(t)
	req.Times = nil
	resp2, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", &req)
	if resp2.StatusCode != http.StatusBadRequest || errCode(t, body) != "bad_argument" {
		t.Errorf("invalid request: status %d code %q", resp2.StatusCode, errCode(t, body))
	}

	// A solve refused by the iteration budget is 422 iteration_limit.
	req = validSolveReq(t)
	req.Options = batlife.AnalysisOptions{Delta: 100, MaxIterations: 1}
	resp2, body = postJSON(t, ts.Client(), ts.URL+"/v1/solve", &req)
	if resp2.StatusCode != http.StatusUnprocessableEntity || errCode(t, body) != "iteration_limit" {
		t.Errorf("iteration limit: status %d code %q body %s", resp2.StatusCode, errCode(t, body), body)
	}
}

func TestHTTPClientCancellationMidSolve(t *testing.T) {
	svc, started, _ := gatedService(t, Config{MaxInflight: 1})
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	req := validSolveReq(t)
	id, err := req.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(httpReq)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitStarted(t, started)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned no error")
	}

	// The abandoned job was cancelled mid-solve and recorded as failed.
	j, ok := svc.lookup(id)
	if !ok {
		t.Fatal("job vanished")
	}
	if err := awaitDone(t, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("job err = %v, want context.Canceled", err)
	}
	getResp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	var st api.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobFailed || st.Error == nil || st.Error.Code != "canceled" {
		t.Errorf("job status after cancellation = %+v", st)
	}
}

func TestHTTPDeadlineExpiry(t *testing.T) {
	svc, started, _ := gatedService(t, Config{MaxInflight: 1})
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	req := validSolveReq(t)
	req.TimeoutSeconds = 0.03
	done := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(done)
		resp, b := postJSON(t, ts.Client(), ts.URL+"/v1/solve", &req)
		status, body = resp.StatusCode, b
	}()
	waitStarted(t, started)
	<-done
	if status != http.StatusGatewayTimeout || errCode(t, body) != "deadline_exceeded" {
		t.Errorf("deadline: status %d code %q", status, errCode(t, body))
	}
}

func TestHTTPDrain(t *testing.T) {
	// The SIGTERM semantics, driven through BeginDrain (cmd/batlifed
	// wires the signal to exactly this call): inflight jobs complete and
	// are answered, new work is 503 draining, readyz flips.
	svc, started, release := gatedService(t, Config{MaxInflight: 2})
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	req := validSolveReq(t)
	done := make(chan outcome2, 1)
	go func() {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", &req)
		done <- outcome2{resp.StatusCode, body}
	}()
	waitStarted(t, started)

	svc.BeginDrain()

	other := validSolveReq(t)
	other.Times = []float64{1, 2} // distinct fingerprint
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", &other)
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, body) != "draining" {
		t.Errorf("new work during drain: status %d code %q", resp.StatusCode, errCode(t, body))
	}

	ready, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, ready.Body)
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", ready.StatusCode)
	}

	close(release)
	out := <-done
	if out.status != http.StatusOK {
		t.Errorf("inflight job during drain: status %d body %s", out.status, out.body)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

type outcome2 struct {
	status int
	body   []byte
}

func TestHTTPSweepAndPartialFailure(t *testing.T) {
	solver := batlife.NewSolver(batlife.SolverOptions{})
	svc := New(Config{Solver: solver, MaxInflight: 2})
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	good := api.SweepScenario{
		Name:     "good",
		Battery:  batlife.Battery{CapacityAs: 7200, AvailableFraction: 1},
		Workload: twoState(t),
		DeltaAs:  100,
		Times:    []float64{10000, 20000},
	}
	bad := good
	bad.Name = "bad"
	bad.DeltaAs = 7000 // does not divide the well capacity
	req := api.SweepRequest{Scenarios: []api.SweepScenario{good, bad}}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var sw api.SweepResponse
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(sw.Results))
	}
	if sw.Results[0].Result == nil || sw.Results[0].Error != nil || sw.Results[0].Name != "good" {
		t.Errorf("good scenario = %+v", sw.Results[0])
	}
	if sw.Results[1].Error == nil || sw.Results[1].Error.Code != "bad_argument" {
		t.Errorf("bad scenario = %+v", sw.Results[1])
	}

	// The good curve matches a direct solve bit-for-bit.
	want, err := batlife.NewSolver(batlife.SolverOptions{}).LifetimeDistribution(
		good.Battery, good.Workload, good.Times, batlife.AnalysisOptions{Delta: good.DeltaAs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.EmptyProb {
		if sw.Results[0].Result.EmptyProb[i] != want.EmptyProb[i] {
			t.Errorf("EmptyProb[%d] = %v, want %v", i, sw.Results[0].Result.EmptyProb[i], want.EmptyProb[i])
		}
	}
}

func TestHTTPSweepStreaming(t *testing.T) {
	svc := New(Config{MaxInflight: 1})
	subReady := make(chan struct{})
	var once sync.Once
	svc.sweep = func(ctx context.Context, req *api.SweepRequest, progress func(done, total int)) ([]api.SweepItemResult, error) {
		<-subReady
		progress(1, 2)
		progress(2, 2)
		return []api.SweepItemResult{
			{Index: 0, Result: &api.SolveResult{States: 3}},
			{Index: 1, Result: &api.SolveResult{States: 3}},
		}, nil
	}
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	req := api.SweepRequest{Scenarios: []api.SweepScenario{{
		Battery:  batlife.Battery{CapacityAs: 7200, AvailableFraction: 1},
		Workload: twoState(t),
		DeltaAs:  100,
		Times:    []float64{10000},
	}}}
	id, err := req.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}

	// Hold the sweep until the streaming handler has subscribed, so the
	// progress ticks are observable on the wire.
	go func() {
		eventually(t, func() bool {
			j, ok := svc.lookup(id)
			if !ok {
				return false
			}
			j.mu.Lock()
			defer j.mu.Unlock()
			return len(j.subs) > 0
		}, "no subscriber appeared")
		once.Do(func() { close(subReady) })
	}()

	resp, err := ts.Client().Post(ts.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}

	var events []api.ProgressEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev api.ProgressEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("events = %+v, want progress then result", events)
	}
	last := events[len(events)-1]
	if last.Type != "result" || last.Done != 2 || last.Total != 2 {
		t.Fatalf("final event = %+v", last)
	}
	var sw api.SweepResponse
	if err := json.Unmarshal(last.Result, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.JobID != id || len(sw.Results) != 2 {
		t.Errorf("streamed response = %+v", sw)
	}
	sawProgress := false
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "progress" {
			t.Errorf("non-progress event before result: %+v", ev)
		}
		sawProgress = true
	}
	if !sawProgress {
		t.Error("no progress events observed")
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	svc := New(Config{MaxInflight: 1, Obs: reg})
	svc.solve = func(ctx context.Context, req *api.SolveRequest) (*api.SolveResult, error) {
		return stubResult, nil
	}
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}

	req := validSolveReq(t)
	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/solve", &req); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, name := range []string{
		`service_requests_total{endpoint="solve"}`,
		`service_latency_seconds_bucket{endpoint="solve"`,
		"service_jobs_total",
		"service_queue_wait_seconds",
	} {
		if !bytes.Contains(body, []byte(name)) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if got := reg.CounterWith("service_requests_total", obs.String("endpoint", "solve")).Value(); got != 1 {
		t.Errorf("request counter = %d, want 1", got)
	}
	if got := reg.Gauge("service_inflight").Value(); got != 0 {
		t.Errorf("inflight gauge after completion = %v, want 0", got)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for capturing log output
// written from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestHTTPTracePropagationEndToEnd drives the full acceptance path with
// a real solver: a POST /v1/solve carrying a W3C traceparent must echo
// the same trace ID, produce a span tree spanning service→engine→ctmc
// in /debug/traces, stamp the trace ID onto a log line, and surface the
// trace as an exemplar on the solve-latency histogram in /metrics.
func TestHTTPTracePropagationEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	var logBuf syncBuffer
	reg.SetLogger(obs.NewLogger(&logBuf, slog.LevelInfo))
	svc := New(Config{MaxInflight: 2, Obs: reg}) // real solver, shared registry
	ts := httptest.NewServer(svc.Routes())
	defer ts.Close()

	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req := validSolveReq(t)
	raw, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, _ := http.NewRequest("POST", ts.URL+"/v1/solve", bytes.NewReader(raw))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.TraceparentHeader, "00-"+wantTrace+"-00f067aa0ba902b7-01")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != wantTrace {
		t.Fatalf("%s = %q, want the inbound trace %q", obs.TraceHeader, got, wantTrace)
	}
	var sr api.SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	// The span tree must span the whole stack. The job's spans are
	// complete once the response is written (the job retires before the
	// waiter wakes); fetch them by trace ID.
	tresp, err := ts.Client().Get(ts.URL + "/debug/traces?trace=" + wantTrace)
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d %s", tresp.StatusCode, traceBody)
	}
	var trees []obs.TraceTree
	if err := json.Unmarshal(traceBody, &trees); err != nil {
		t.Fatalf("/debug/traces not a tree array: %v\n%s", err, traceBody)
	}
	if len(trees) != 1 {
		t.Fatalf("got %d trees for one trace, want 1", len(trees))
	}
	names := map[string]bool{}
	var walk func(nodes []*obs.TraceNode)
	walk = func(nodes []*obs.TraceNode) {
		for _, n := range nodes {
			if n.TraceID != wantTrace {
				t.Errorf("node %s has trace %s", n.Name, n.TraceID)
			}
			names[n.Name] = true
			walk(n.Children)
		}
	}
	walk(trees[0].Spans)
	for _, want := range []string{"service.job", "service.queue", "solver.solve", "engine.build", "core.build", "ctmc.transient"} {
		if !names[want] {
			t.Errorf("span tree missing %q (have %v)", want, names)
		}
	}

	// A log line carries the trace identity.
	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"job admitted"`) || !strings.Contains(logs, `"trace_id":"`+wantTrace+`"`) {
		t.Errorf("log output lacks a trace-stamped admission line:\n%s", logs)
	}

	// The Prometheus exposition carries the trace as an exemplar on the
	// solve-latency histogram.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	var sawExemplar bool
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, `service_latency_seconds_bucket{endpoint="solve"`) &&
			strings.Contains(line, `# {trace_id="`+wantTrace+`"}`) {
			sawExemplar = true
		}
	}
	if !sawExemplar {
		t.Errorf("solve-latency histogram lacks an exemplar for trace %s:\n%s", wantTrace, metrics)
	}

	// GET /v1/jobs/{id}?trace=1 returns the span tree with the status.
	jresp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sr.JobID + "?trace=1")
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(jresp.Body)
	jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("jobs?trace=1: %d %s", jresp.StatusCode, jbody)
	}
	var st api.JobStatus
	if err := json.Unmarshal(jbody, &st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != wantTrace {
		t.Errorf("job trace_id = %q, want %q", st.TraceID, wantTrace)
	}
	var jobTrees []obs.TraceTree
	if err := json.Unmarshal(st.Trace, &jobTrees); err != nil || len(jobTrees) == 0 {
		t.Fatalf("job status trace field invalid: %v\n%s", err, jbody)
	}
	// Without ?trace=1 the tree is omitted.
	jresp2, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sr.JobID)
	if err != nil {
		t.Fatal(err)
	}
	jbody2, _ := io.ReadAll(jresp2.Body)
	jresp2.Body.Close()
	var st2 api.JobStatus
	if err := json.Unmarshal(jbody2, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Trace != nil {
		t.Errorf("job status without ?trace=1 carries a trace payload")
	}
}
