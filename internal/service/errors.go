package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"batlife"
	"batlife/internal/api"
)

// Service-level sentinels, completing the solver's taxonomy
// (batlife.ErrBadArgument, batlife.ErrIterationLimit) with the failure
// classes only a daemon has. Every error leaving a handler matches
// exactly one sentinel class; classify is the single mapping from the
// taxonomy to HTTP statuses and wire codes.
var (
	// ErrOverloaded reports that admission failed: run and queue
	// capacity are both exhausted. Clients should retry with backoff.
	ErrOverloaded = errors.New("service: overloaded, retry later")
	// ErrDraining reports that the service is shutting down and no
	// longer admits work.
	ErrDraining = errors.New("service: draining, not admitting work")
	// ErrNotFound reports an unknown (or retention-evicted) job ID.
	ErrNotFound = errors.New("service: no such job")
)

// errInternal marks failures with no better class; classify maps it —
// and any unrecognised error — to 500.
var errInternal = errors.New("service: internal error")

func errInternalf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errInternal}, args...)...)
}

// statusClientGone is nginx's non-standard 499 "client closed request":
// the caller abandoned the request, so no one reads the response, but
// job-store replays still need an honest terminal class.
const statusClientGone = 499

// classify maps an error onto its HTTP status and stable wire code.
// The order encodes precedence: argument errors are client mistakes
// even when wrapped in context errors, and the service sentinels are
// checked before the context classes because an overloaded rejection
// happens while the caller's context is still live.
func classify(err error) (status int, code string) {
	switch {
	case err == nil:
		return http.StatusOK, ""
	case errors.Is(err, batlife.ErrBadArgument):
		return http.StatusBadRequest, "bad_argument"
	case errors.Is(err, batlife.ErrIterationLimit):
		return http.StatusUnprocessableEntity, "iteration_limit"
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return statusClientGone, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// toAPIError renders an error as its wire form.
func toAPIError(err error) *api.Error {
	_, code := classify(err)
	return &api.Error{Code: code, Message: err.Error()}
}
