package dist

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewECDFErrors(t *testing.T) {
	if _, err := NewECDF(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty: err = %v, want ErrNoSamples", err)
	}
	if _, err := NewECDF([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN sample accepted")
	}
}

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := e.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if e.N() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Errorf("N/Min/Max = %d/%v/%v", e.N(), e.Min(), e.Max())
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	samples := []float64{3, 1, 2}
	e, err := NewECDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	samples[0] = -100
	if e.Min() != 1 {
		t.Error("ECDF aliases caller's slice")
	}
}

func TestQuantile(t *testing.T) {
	e, err := NewECDF([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
	}
	for _, tc := range cases {
		got, err := e.Quantile(tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := e.Quantile(p); !errors.Is(err, ErrBadProbability) {
			t.Errorf("Quantile(%v): err = %v, want ErrBadProbability", p, err)
		}
	}
}

func TestMeanAndStd(t *testing.T) {
	e, err := NewECDF([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := e.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if mean != 5 {
		t.Errorf("Mean = %v, want 5", mean)
	}
	std, err := e.Std()
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(32.0 / 7.0); math.Abs(std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", std, want)
	}
}

func TestCensoredSamples(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, math.Inf(1), math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if e.Censored() != 2 {
		t.Errorf("Censored = %d, want 2", e.Censored())
	}
	if got := e.At(1e12); got != 0.5 {
		t.Errorf("CDF at huge x = %v, want 0.5 with half the mass censored", got)
	}
	mean, err := e.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if mean != 1.5 {
		t.Errorf("finite-sample mean = %v, want 1.5", mean)
	}
	if e.Max() != 2 {
		t.Errorf("Max = %v, want largest finite sample 2", e.Max())
	}
	allCensored, err := NewECDF([]float64{math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := allCensored.Mean(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("all-censored mean: err = %v", err)
	}
	if !math.IsInf(allCensored.Max(), 1) {
		t.Error("all-censored Max not +Inf")
	}
}

func TestEval(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Eval([]float64{0, 1.5, 5})
	want := []float64{0, 1.0 / 3, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Errorf("Eval[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKSAgainstExactUniform(t *testing.T) {
	// Large uniform sample against the true uniform CDF: KS distance
	// must be small but positive.
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 10000)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	e, err := NewECDF(samples)
	if err != nil {
		t.Fatal(err)
	}
	uniform := func(x float64) float64 {
		return math.Min(1, math.Max(0, x))
	}
	ks := e.KSAgainst(uniform)
	if ks <= 0 || ks > 0.03 {
		t.Errorf("KS distance = %v, want small positive", ks)
	}
	// Against a shifted CDF the distance must be near the shift.
	shifted := func(x float64) float64 { return uniform(x - 0.2) }
	if ks := e.KSAgainst(shifted); math.Abs(ks-0.2) > 0.03 {
		t.Errorf("KS against shifted = %v, want ≈ 0.2", ks)
	}
}

func TestKSBetween(t *testing.T) {
	a, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if ks := KSBetween(a, b); ks != 0 {
		t.Errorf("KS between identical = %v", ks)
	}
	c, err := NewECDF([]float64{101, 102, 103, 104})
	if err != nil {
		t.Fatal(err)
	}
	if ks := KSBetween(a, c); ks != 1 {
		t.Errorf("KS between disjoint = %v, want 1", ks)
	}
}

func TestConfidenceBand(t *testing.T) {
	e, err := NewECDF(make([]float64, 1000))
	if err != nil {
		t.Fatal(err)
	}
	band, err := e.ConfidenceBand(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// DKW at n=1000, alpha=0.05: sqrt(ln(40)/2000) ≈ 0.0429.
	if math.Abs(band-0.0429) > 0.001 {
		t.Errorf("band = %v, want ≈ 0.0429", band)
	}
	for _, a := range []float64{0, 1, -1} {
		if _, err := e.ConfidenceBand(a); !errors.Is(err, ErrBadProbability) {
			t.Errorf("alpha %v: err = %v", a, err)
		}
	}
}

func TestECDFProperties(t *testing.T) {
	// The ECDF is a valid CDF: monotone, 0 before min, 1 at max (when
	// uncensored), and At(Quantile(p)) >= p.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 100
		}
		e, err := NewECDF(samples)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			cur := e.At(x)
			if cur < prev {
				return false
			}
			prev = cur
		}
		if e.At(e.Min()-1) != 0 || e.At(e.Max()) != 1 {
			return false
		}
		for _, p := range []float64{0.1, 0.5, 0.9} {
			q, err := e.Quantile(p)
			if err != nil || e.At(q) < p-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
