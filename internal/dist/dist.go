// Package dist provides empirical-distribution utilities for the
// simulation side of the paper's experiments: empirical CDFs, quantiles,
// moments and Kolmogorov–Smirnov distances for comparing simulated
// lifetime distributions with the Markovian approximation.
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"batlife/internal/check"
)

// ErrNoSamples reports an empty sample set.
var ErrNoSamples = errors.New("dist: no samples")

// ErrBadProbability reports a probability outside [0, 1].
var ErrBadProbability = errors.New("dist: probability out of range")

// ECDF is an immutable empirical cumulative distribution function.
// Samples of +Inf are allowed and model censored observations: the CDF
// then never reaches one.
type ECDF struct {
	sorted []float64
	finite int // number of finite samples
}

// NewECDF builds an empirical CDF from the samples (copied, then
// sorted). NaN samples are rejected.
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	s := append([]float64(nil), samples...)
	for _, x := range s {
		if math.IsNaN(x) {
			return nil, fmt.Errorf("dist: NaN sample")
		}
	}
	sort.Float64s(s)
	finite := len(s)
	for finite > 0 && math.IsInf(s[finite-1], 1) {
		finite--
	}
	return &ECDF{sorted: s, finite: finite}, nil
}

// N reports the total number of samples.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns the fraction of samples ≤ x.
func (e *ECDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Eval returns the CDF at each of the given points.
//
//numlint:ensures unitinterval
func (e *ECDF) Eval(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = e.At(x)
	}
	check.UnitInterval("dist.ECDF.Eval", out)
	return out
}

// Quantile returns the p-quantile (inverse CDF) of the samples.
func (e *ECDF) Quantile(p float64) (float64, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: %v", ErrBadProbability, p)
	}
	if p == 0 {
		return e.sorted[0], nil
	}
	idx := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx], nil
}

// Mean returns the sample mean over the finite samples.
func (e *ECDF) Mean() (float64, error) {
	if e.finite == 0 {
		return 0, fmt.Errorf("%w: all samples censored", ErrNoSamples)
	}
	sum := 0.0
	for _, x := range e.sorted[:e.finite] {
		sum += x
	}
	return sum / float64(e.finite), nil
}

// Std returns the sample standard deviation over the finite samples.
func (e *ECDF) Std() (float64, error) {
	mean, err := e.Mean()
	if err != nil {
		return 0, err
	}
	if e.finite < 2 {
		return 0, nil
	}
	sum := 0.0
	for _, x := range e.sorted[:e.finite] {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(e.finite-1)), nil
}

// Min returns the smallest sample.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest finite sample, or +Inf if every sample is
// censored.
func (e *ECDF) Max() float64 {
	if e.finite == 0 {
		return math.Inf(1)
	}
	return e.sorted[e.finite-1]
}

// Censored reports the number of +Inf (censored) samples.
func (e *ECDF) Censored() int { return len(e.sorted) - e.finite }

// KSAgainst returns the Kolmogorov–Smirnov distance between the
// empirical CDF and a reference CDF, evaluated at the sample points
// (where the empirical CDF attains its sup deviations).
func (e *ECDF) KSAgainst(cdf func(float64) float64) float64 {
	maxDev := 0.0
	n := float64(len(e.sorted))
	for i, x := range e.sorted[:e.finite] {
		ref := cdf(x)
		lower := math.Abs(float64(i)/n - ref)   // just below the jump
		upper := math.Abs(float64(i+1)/n - ref) // just above the jump
		maxDev = math.Max(maxDev, math.Max(lower, upper))
	}
	return maxDev
}

// KSBetween returns the Kolmogorov–Smirnov distance between two
// empirical CDFs.
func KSBetween(a, b *ECDF) float64 {
	maxDev := 0.0
	for _, x := range a.sorted[:a.finite] {
		maxDev = math.Max(maxDev, math.Abs(a.At(x)-b.At(x)))
	}
	for _, x := range b.sorted[:b.finite] {
		maxDev = math.Max(maxDev, math.Abs(a.At(x)-b.At(x)))
	}
	return maxDev
}

// ConfidenceBand returns the half-width of the Dvoretzky–Kiefer–
// Wolfowitz confidence band for the empirical CDF at level 1−alpha:
// with probability 1−alpha the true CDF lies within ±band everywhere.
func (e *ECDF) ConfidenceBand(alpha float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("%w: alpha %v", ErrBadProbability, alpha)
	}
	return math.Sqrt(math.Log(2/alpha) / (2 * float64(len(e.sorted)))), nil
}
