// Package mrm implements the Markov reward model formalism of the
// paper's Section 4: homogeneous MRMs with constant reward rates, and
// the KiBaMRM — the reward-inhomogeneous, two-reward MRM whose
// accumulated rewards are the two charge wells of the Kinetic Battery
// Model.
//
// A homogeneous MRM is a CTMC plus a reward rate r_i per state; the
// accumulated reward Y(t) = ∫ r_X(s) ds is the performability measure of
// Meyer. In the battery context the reward is energy drawn, and the
// battery lifetime is the first passage of Y(t) to the capacity.
//
// The KiBaMRM instead accumulates two rewards whose rates depend on the
// rewards themselves (reward-inhomogeneity), following the KiBaM
// differential equations; its numerical solution lives in internal/core.
package mrm

import (
	"errors"
	"fmt"
	"math"

	"batlife/internal/ctmc"
	"batlife/internal/kibam"
)

// ErrBadModel reports an inconsistent model definition.
var ErrBadModel = errors.New("mrm: invalid model")

// ConstantReward is a homogeneous Markov reward model: a CTMC with one
// constant reward rate per state.
type ConstantReward struct {
	// Chain is the underlying workload CTMC.
	Chain *ctmc.Chain
	// Rates holds the reward rate r_i for each state.
	Rates []float64
	// Initial is the initial state distribution α.
	Initial []float64
}

// Validate reports whether the model is well formed.
func (m ConstantReward) Validate() error {
	if m.Chain == nil {
		return fmt.Errorf("%w: nil chain", ErrBadModel)
	}
	n := m.Chain.NumStates()
	if len(m.Rates) != n {
		return fmt.Errorf("%w: %d reward rates for %d states", ErrBadModel, len(m.Rates), n)
	}
	for i, r := range m.Rates {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("%w: reward rate %v in state %s", ErrBadModel, r, m.Chain.Name(i))
		}
	}
	if len(m.Initial) != n {
		return fmt.Errorf("%w: initial distribution has %d entries for %d states",
			ErrBadModel, len(m.Initial), n)
	}
	sum := 0.0
	for _, a := range m.Initial {
		if a < 0 {
			return fmt.Errorf("%w: negative initial probability", ErrBadModel)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: initial distribution sums to %v", ErrBadModel, sum)
	}
	return nil
}

// ExpectedReward returns E[Y(t)] at each of the given times, computed by
// integrating the expected reward rate E[r_X(s)] with uniformisation on
// a fine grid. The grid has steps subintervals per requested interval
// (zero selects 64).
func (m ConstantReward) ExpectedReward(times []float64, steps int) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("%w: no time points", ErrBadModel)
	}
	if steps <= 0 {
		steps = 64
	}
	// Build the integration grid: union of refined points up to each t.
	last := times[len(times)-1]
	grid := make([]float64, 0, steps+1)
	for i := 0; i <= steps; i++ {
		grid = append(grid, last*float64(i)/float64(steps))
	}
	res, err := ctmc.TransientFunctional(m.Chain.Generator(), m.Initial, m.Rates, grid, ctmc.TransientOptions{})
	if err != nil {
		return nil, fmt.Errorf("mrm: expected reward: %w", err)
	}
	// Cumulative trapezoid over the grid, then interpolate at times.
	cum := make([]float64, len(grid))
	for i := 1; i < len(grid); i++ {
		cum[i] = cum[i-1] + (grid[i]-grid[i-1])*(res.Values[i]+res.Values[i-1])/2
	}
	out := make([]float64, len(times))
	for k, t := range times {
		if t < 0 {
			return nil, fmt.Errorf("%w: negative time %v", ErrBadModel, t)
		}
		pos := t / last * float64(steps)
		lo := int(pos)
		if lo >= steps {
			out[k] = cum[steps]
			continue
		}
		frac := pos - float64(lo)
		out[k] = cum[lo] + frac*(cum[lo+1]-cum[lo])
	}
	return out, nil
}

// KiBaMRM is the paper's Section 4.2 model: a workload CTMC whose state
// i draws current I_i, coupled to a KiBaM battery. The two accumulated
// rewards are the available-charge well Y1 and the bound-charge well Y2,
// with the reward-inhomogeneous rates
//
//	r_{i,1}(y1, y2) = −I_i + k·(h2 − h1)   if h2 > h1 > 0, else −I_i·𝟙{y1>0}
//	r_{i,2}(y1, y2) = −k·(h2 − h1)         if h2 > h1 > 0, else 0.
type KiBaMRM struct {
	// Workload is the device's operating-mode CTMC.
	Workload *ctmc.Chain
	// Currents holds the energy-consumption rate I_i (ampere) drawn in
	// each workload state. Negative entries model charging states
	// (e.g. energy harvesting) and require AllowCharging.
	Currents []float64
	// Initial is the initial workload-state distribution.
	Initial []float64
	// Battery holds the KiBaM constants.
	Battery kibam.Params
	// AllowCharging permits negative currents: such states refill the
	// available-charge well (surplus beyond the well capacity is
	// discarded). The paper's model is discharge-only; this is the
	// extension its Section 2 reaction equations point at.
	AllowCharging bool
}

// Validate reports whether the model is well formed.
func (m KiBaMRM) Validate() error {
	if m.Workload == nil {
		return fmt.Errorf("%w: nil workload chain", ErrBadModel)
	}
	n := m.Workload.NumStates()
	if len(m.Currents) != n {
		return fmt.Errorf("%w: %d currents for %d states", ErrBadModel, len(m.Currents), n)
	}
	for i, c := range m.Currents {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: current %v in state %s", ErrBadModel, c, m.Workload.Name(i))
		}
		if c < 0 && !m.AllowCharging {
			return fmt.Errorf("%w: negative current %v in state %s without AllowCharging",
				ErrBadModel, c, m.Workload.Name(i))
		}
	}
	if len(m.Initial) != n {
		return fmt.Errorf("%w: initial distribution has %d entries for %d states",
			ErrBadModel, len(m.Initial), n)
	}
	sum := 0.0
	for _, a := range m.Initial {
		if a < 0 {
			return fmt.Errorf("%w: negative initial probability", ErrBadModel)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: initial distribution sums to %v", ErrBadModel, sum)
	}
	if err := m.Battery.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	return nil
}

// RewardRates evaluates the two reward rates of state i at accumulated
// charges (y1, y2), the equations of Section 4.2.
func (m KiBaMRM) RewardRates(i int, y1, y2 float64) (r1, r2 float64) {
	if y1 <= 0 {
		// Battery empty: absorbing, no further consumption or transfer.
		return 0, 0
	}
	s := kibam.State{Y1: y1, Y2: y2}
	d := m.Battery.HeightDiff(s)
	if d > 0 && m.Battery.K > 0 {
		return -m.Currents[i] + m.Battery.K*d, -m.Battery.K * d
	}
	return -m.Currents[i], 0
}

// MaxCurrent returns the largest per-state current magnitude, used for
// grid and rate bounds.
func (m KiBaMRM) MaxCurrent() float64 {
	maxI := 0.0
	for _, c := range m.Currents {
		if a := math.Abs(c); a > maxI {
			maxI = a
		}
	}
	return maxI
}

// EnergyReward derives the homogeneous MRM whose accumulated reward is
// the total energy drawn (reward rate +I_i): the model the paper solves
// exactly for the c = 1 case of Figure 10. The battery is then empty as
// soon as Y(t) exceeds the capacity.
func (m KiBaMRM) EnergyReward() ConstantReward {
	return ConstantReward{
		Chain:   m.Workload,
		Rates:   append([]float64(nil), m.Currents...),
		Initial: append([]float64(nil), m.Initial...),
	}
}
