package mrm

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/ctmc"
	"batlife/internal/kibam"
)

func twoStateChain(t *testing.T) *ctmc.Chain {
	t.Helper()
	var b ctmc.Builder
	b.Transition("on", "off", 2)
	b.Transition("off", "on", 2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConstantRewardValidate(t *testing.T) {
	chain := twoStateChain(t)
	good := ConstantReward{Chain: chain, Rates: []float64{1, 0}, Initial: []float64{1, 0}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	cases := []ConstantReward{
		{Chain: nil, Rates: []float64{1}, Initial: []float64{1}},
		{Chain: chain, Rates: []float64{1}, Initial: []float64{1, 0}},
		{Chain: chain, Rates: []float64{1, math.NaN()}, Initial: []float64{1, 0}},
		{Chain: chain, Rates: []float64{1, 0}, Initial: []float64{1}},
		{Chain: chain, Rates: []float64{1, 0}, Initial: []float64{0.7, 0.7}},
		{Chain: chain, Rates: []float64{1, 0}, Initial: []float64{1.5, -0.5}},
	}
	for i, m := range cases {
		if err := m.Validate(); !errors.Is(err, ErrBadModel) {
			t.Errorf("case %d: err = %v, want ErrBadModel", i, err)
		}
	}
}

func TestExpectedRewardSingleState(t *testing.T) {
	// One absorbing state with rate r: E[Y(t)] = r·t exactly.
	var b ctmc.Builder
	b.Transition("a", "b", 1e-12) // effectively frozen in a
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := ConstantReward{Chain: chain, Rates: []float64{3, 3}, Initial: []float64{1, 0}}
	times := []float64{0.5, 1, 2}
	got, err := m.ExpectedReward(times, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range times {
		if math.Abs(got[k]-3*tm) > 1e-6 {
			t.Errorf("E[Y(%v)] = %v, want %v", tm, got[k], 3*tm)
		}
	}
}

func TestExpectedRewardConvergesToSteadyStateRate(t *testing.T) {
	// For large t, E[Y(t)]/t approaches the steady-state mean rate.
	chain := twoStateChain(t)
	m := ConstantReward{Chain: chain, Rates: []float64{1, 0}, Initial: []float64{1, 0}}
	got, err := m.ExpectedReward([]float64{200}, 512)
	if err != nil {
		t.Fatal(err)
	}
	if rate := got[0] / 200; math.Abs(rate-0.5) > 1e-3 {
		t.Errorf("long-run mean rate = %v, want 0.5", rate)
	}
}

func TestExpectedRewardClosedFormTwoState(t *testing.T) {
	// Starting in on (rate 1) with symmetric switching rate a:
	// E[Y(t)] = t/2 + (1 − e^{−2at})/(4a).
	a := 2.0
	chain := twoStateChain(t)
	m := ConstantReward{Chain: chain, Rates: []float64{1, 0}, Initial: []float64{1, 0}}
	times := []float64{0.25, 0.5, 1, 3}
	got, err := m.ExpectedReward(times, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range times {
		want := tm/2 + (1-math.Exp(-2*a*tm))/(4*a)
		if math.Abs(got[k]-want) > 1e-4 {
			t.Errorf("E[Y(%v)] = %v, want %v", tm, got[k], want)
		}
	}
}

func TestExpectedRewardErrors(t *testing.T) {
	chain := twoStateChain(t)
	m := ConstantReward{Chain: chain, Rates: []float64{1, 0}, Initial: []float64{1, 0}}
	if _, err := m.ExpectedReward(nil, 0); !errors.Is(err, ErrBadModel) {
		t.Errorf("no times: err = %v", err)
	}
	bad := ConstantReward{Chain: chain, Rates: []float64{1}, Initial: []float64{1, 0}}
	if _, err := bad.ExpectedReward([]float64{1}, 0); !errors.Is(err, ErrBadModel) {
		t.Errorf("invalid model: err = %v", err)
	}
}

func validKiBaMRM(t *testing.T) KiBaMRM {
	t.Helper()
	chain := twoStateChain(t)
	return KiBaMRM{
		Workload: chain,
		Currents: []float64{0.96, 0},
		Initial:  []float64{1, 0},
		Battery:  kibam.Params{Capacity: 7200, C: 0.625, K: 4.5e-5},
	}
}

func TestKiBaMRMValidate(t *testing.T) {
	m := validKiBaMRM(t)
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := m
	bad.Currents = []float64{-1, 0}
	if err := bad.Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("negative current: err = %v", err)
	}
	bad = m
	bad.Battery.C = 2
	if err := bad.Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad battery: err = %v", err)
	}
	bad = m
	bad.Initial = []float64{0.5, 0.3}
	if err := bad.Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad initial: err = %v", err)
	}
	bad = m
	bad.Workload = nil
	if err := bad.Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("nil workload: err = %v", err)
	}
}

func TestKiBaMRMRewardRates(t *testing.T) {
	m := validKiBaMRM(t)
	k := m.Battery.K

	// Full battery: heights equal, no transfer; the on-state drains at
	// −I, the off-state rests.
	r1, r2 := m.RewardRates(0, 4500, 2700)
	if math.Abs(r1+0.96) > 1e-12 || r2 != 0 {
		t.Errorf("full battery on-state rates = (%v, %v)", r1, r2)
	}

	// Unbalanced wells: transfer at k(h2 − h1) flows from bound to
	// available.
	y1, y2 := 2000.0, 2500.0
	h1, h2 := y1/0.625, y2/0.375
	r1, r2 = m.RewardRates(1, y1, y2)
	if math.Abs(r1-k*(h2-h1)) > 1e-12 {
		t.Errorf("off-state r1 = %v, want %v", r1, k*(h2-h1))
	}
	if math.Abs(r2+k*(h2-h1)) > 1e-12 {
		t.Errorf("off-state r2 = %v, want %v", r2, -k*(h2-h1))
	}
	// Conservation: transfer terms cancel between the two rewards.
	r1on, r2on := m.RewardRates(0, y1, y2)
	if math.Abs((r1on+r2on)+0.96) > 1e-12 {
		t.Errorf("rate sum = %v, want −I", r1on+r2on)
	}

	// Empty battery: everything stops.
	r1, r2 = m.RewardRates(0, 0, 2700)
	if r1 != 0 || r2 != 0 {
		t.Errorf("empty battery rates = (%v, %v)", r1, r2)
	}

	// Bound well below available: no reverse flow (h2 < h1).
	r1, r2 = m.RewardRates(1, 4000, 100)
	if r1 != 0 || r2 != 0 {
		t.Errorf("uphill rates = (%v, %v), want (0, 0) in the idle state", r1, r2)
	}
}

func TestKiBaMRMMaxCurrent(t *testing.T) {
	m := validKiBaMRM(t)
	if got := m.MaxCurrent(); got != 0.96 {
		t.Errorf("MaxCurrent = %v", got)
	}
}

func TestEnergyRewardDerivation(t *testing.T) {
	m := validKiBaMRM(t)
	er := m.EnergyReward()
	if err := er.Validate(); err != nil {
		t.Fatal(err)
	}
	if er.Rates[0] != 0.96 || er.Rates[1] != 0 {
		t.Errorf("energy rates = %v", er.Rates)
	}
	// Mutating the derived model must not touch the source.
	er.Rates[0] = 99
	if m.Currents[0] != 0.96 {
		t.Error("EnergyReward aliases the current slice")
	}
}
