// Package multireward generalises the Markovian approximation of
// internal/core to an arbitrary number of accumulated rewards. The
// paper's Section 5 presents the construction for the two battery wells
// but notes that "the approach applies for three or more reward types
// equally well" — this package is that remark made concrete.
//
// A model is a workload CTMC plus a D-dimensional reward grid. Each
// grid cell holds one copy of the workload states; reward dynamics are
// expressed as Moves — transitions that shift the cell by an integer
// vector (the two-well battery's consumption is shift (−1, 0), its
// transfer is (+1, −1); a joint energy-delivered counter adds a third
// component). Absorbing cells (e.g. battery empty) are cut out of the
// generator exactly as in core. The lifetime-style measures are
// transient functionals of the expanded CTMC, computed by the shared
// uniformisation engine.
package multireward

import (
	"errors"
	"fmt"
	"math"

	"batlife/internal/ctmc"
	"batlife/internal/sparse"
)

// ErrBadSpec reports an invalid model specification.
var ErrBadSpec = errors.New("multireward: invalid specification")

// ErrBadMove reports a reward move that leaves the grid.
var ErrBadMove = errors.New("multireward: move leaves the grid")

// Move is one reward-driven transition: with the given rate, every
// reward dimension d shifts by Shift[d] grid levels.
type Move struct {
	// Rate is the transition rate (already divided by the grid step, as
	// in the paper's I/Δ).
	Rate float64
	// Shift is the per-dimension level change; len(Shift) must equal
	// the grid dimension.
	Shift []int
}

// Spec describes a multi-reward Markovian approximation.
type Spec struct {
	// Chain is the workload CTMC.
	Chain *ctmc.Chain
	// Levels holds the number of grid levels per reward dimension.
	Levels []int
	// Initial is the initial workload-state distribution.
	Initial []float64
	// InitialCell is the starting grid cell.
	InitialCell []int
	// Moves returns the reward moves available to the given workload
	// state in the given cell. Moves whose target leaves the grid are
	// an error — gate them in the callback, mirroring the explicit
	// boundary handling of Section 5.2.
	Moves func(state int, cell []int) []Move
	// Absorbing reports whether (state, cell) is absorbing; absorbing
	// cells keep their probability mass (no outgoing transitions).
	// May be nil (no absorbing region).
	Absorbing func(state int, cell []int) bool
	// RateScale optionally modulates a workload transition rate at a
	// grid cell (the reward-inhomogeneous generator Q(y) of Section
	// 4.1); nil leaves rates unchanged.
	RateScale func(from, to int, cell []int, base float64) float64
}

// validate checks the static parts of the specification.
func (s Spec) validate() error {
	if s.Chain == nil {
		return fmt.Errorf("%w: nil chain", ErrBadSpec)
	}
	if len(s.Levels) == 0 {
		return fmt.Errorf("%w: no reward dimensions", ErrBadSpec)
	}
	total := 1
	for d, l := range s.Levels {
		if l < 1 {
			return fmt.Errorf("%w: dimension %d has %d levels", ErrBadSpec, d, l)
		}
		if total > (1<<31)/l {
			return fmt.Errorf("%w: grid exceeds 2^31 cells", ErrBadSpec)
		}
		total *= l
	}
	n := s.Chain.NumStates()
	if len(s.Initial) != n {
		return fmt.Errorf("%w: initial distribution has %d entries for %d states",
			ErrBadSpec, len(s.Initial), n)
	}
	sum := 0.0
	for _, a := range s.Initial {
		if a < 0 {
			return fmt.Errorf("%w: negative initial probability", ErrBadSpec)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: initial distribution sums to %v", ErrBadSpec, sum)
	}
	if len(s.InitialCell) != len(s.Levels) {
		return fmt.Errorf("%w: initial cell has %d coordinates for %d dimensions",
			ErrBadSpec, len(s.InitialCell), len(s.Levels))
	}
	for d, c := range s.InitialCell {
		if c < 0 || c >= s.Levels[d] {
			return fmt.Errorf("%w: initial cell %v outside the grid", ErrBadSpec, s.InitialCell)
		}
	}
	if s.Moves == nil {
		return fmt.Errorf("%w: nil Moves callback", ErrBadSpec)
	}
	return nil
}

// Grid is the expanded CTMC over states × cells.
type Grid struct {
	spec    Spec
	strides []int // stride per dimension, in cells
	cells   int
	gen     *sparse.CSR
	alpha   []float64
}

// Build assembles the expanded generator.
func Build(spec Spec) (*Grid, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	g := &Grid{spec: spec}
	g.strides = make([]int, len(spec.Levels))
	stride := 1
	for d := len(spec.Levels) - 1; d >= 0; d-- {
		g.strides[d] = stride
		stride *= spec.Levels[d]
	}
	g.cells = stride

	n := spec.Chain.NumStates()
	total := n * g.cells
	g.alpha = make([]float64, total)
	initCell := g.cellIndex(spec.InitialCell)
	for i := 0; i < n; i++ {
		g.alpha[g.index(i, initCell)] = spec.Initial[i]
	}

	b := sparse.NewBuilder(total, total, total*4)
	cell := make([]int, len(spec.Levels))
	for ci := 0; ci < g.cells; ci++ {
		g.cellCoords(ci, cell)
		for i := 0; i < n; i++ {
			if spec.Absorbing != nil && spec.Absorbing(i, cell) {
				continue
			}
			from := g.index(i, ci)
			diag := 0.0
			// Workload transitions within the cell.
			spec.Chain.Generator().Row(i, func(col int, v float64) {
				if col == i || v <= 0 {
					return
				}
				rate := v
				if spec.RateScale != nil {
					rate = spec.RateScale(i, col, cell, v)
					if rate < 0 || math.IsNaN(rate) {
						rate = 0
					}
				}
				if rate == 0 {
					return
				}
				b.Add(from, g.index(col, ci), rate)
				diag -= rate
			})
			// Reward moves.
			for _, mv := range spec.Moves(i, cell) {
				if mv.Rate <= 0 || math.IsNaN(mv.Rate) || math.IsInf(mv.Rate, 0) {
					return nil, fmt.Errorf("%w: rate %v in state %s cell %v",
						ErrBadSpec, mv.Rate, spec.Chain.Name(i), cell)
				}
				if len(mv.Shift) != len(spec.Levels) {
					return nil, fmt.Errorf("%w: shift %v has %d coordinates in a %d-dimensional grid",
						ErrBadMove, mv.Shift, len(mv.Shift), len(spec.Levels))
				}
				target := ci
				for d, sh := range mv.Shift {
					nc := cell[d] + sh
					if nc < 0 || nc >= spec.Levels[d] {
						return nil, fmt.Errorf("%w: state %s cell %v shift %v",
							ErrBadMove, spec.Chain.Name(i), cell, mv.Shift)
					}
					target += sh * g.strides[d]
				}
				b.Add(from, g.index(i, target), mv.Rate)
				diag -= mv.Rate
			}
			if diag != 0 {
				b.Add(from, from, diag)
			}
		}
	}
	gen, err := b.Freeze()
	if err != nil {
		return nil, fmt.Errorf("multireward: assemble: %w", err)
	}
	g.gen = gen
	return g, nil
}

// index maps (state, cellIndex) to a flat index.
func (g *Grid) index(state, cellIdx int) int {
	return cellIdx*g.spec.Chain.NumStates() + state
}

// cellIndex flattens cell coordinates.
func (g *Grid) cellIndex(cell []int) int {
	idx := 0
	for d, c := range cell {
		idx += c * g.strides[d]
	}
	return idx
}

// cellCoords expands a flat cell index into dst.
func (g *Grid) cellCoords(idx int, dst []int) {
	for d := range dst {
		dst[d] = idx / g.strides[d]
		idx %= g.strides[d]
	}
}

// NumStates reports the expanded state count.
func (g *Grid) NumStates() int { return g.spec.Chain.NumStates() * g.cells }

// Generator exposes the expanded generator (e.g. for CSRL until queries
// over the grid). Callers must not modify it.
func (g *Grid) Generator() *sparse.CSR { return g.gen }

// InitialVector returns a copy of the expanded initial distribution.
func (g *Grid) InitialVector() []float64 {
	return append([]float64(nil), g.alpha...)
}

// Indicator lifts a (state, cell) predicate to a flat-index predicate
// over the expanded chain.
func (g *Grid) Indicator(pred func(state int, cell []int) bool) func(int) bool {
	n := g.spec.Chain.NumStates()
	return func(idx int) bool {
		cell := make([]int, len(g.spec.Levels))
		g.cellCoords(idx/n, cell)
		return pred(idx%n, cell)
	}
}

// NNZ reports the generator nonzeros.
func (g *Grid) NNZ() int { return g.gen.NNZ() }

// Measure computes Pr{(X(t), cell(t)) ∈ A} at each time, where A is
// given by the indicator.
func (g *Grid) Measure(indicator func(state int, cell []int) bool, times []float64, opts ctmc.TransientOptions) ([]float64, error) {
	if indicator == nil {
		return nil, fmt.Errorf("%w: nil indicator", ErrBadSpec)
	}
	n := g.spec.Chain.NumStates()
	w := make([]float64, g.NumStates())
	cell := make([]int, len(g.spec.Levels))
	for ci := 0; ci < g.cells; ci++ {
		g.cellCoords(ci, cell)
		for i := 0; i < n; i++ {
			if indicator(i, cell) {
				w[g.index(i, ci)] = 1
			}
		}
	}
	res, err := ctmc.TransientFunctional(g.gen, g.alpha, w, times, opts)
	if err != nil {
		return nil, fmt.Errorf("multireward: measure: %w", err)
	}
	for k, p := range res.Values {
		res.Values[k] = math.Min(1, math.Max(0, p))
	}
	return res.Values, nil
}

// CellMarginal returns the marginal distribution of one reward
// dimension at time t.
func (g *Grid) CellMarginal(dim int, t float64, opts ctmc.TransientOptions) ([]float64, error) {
	if dim < 0 || dim >= len(g.spec.Levels) {
		return nil, fmt.Errorf("%w: dimension %d of %d", ErrBadSpec, dim, len(g.spec.Levels))
	}
	res, err := ctmc.TransientDistributions(g.gen, g.alpha, []float64{t}, opts)
	if err != nil {
		return nil, fmt.Errorf("multireward: marginal: %w", err)
	}
	out := make([]float64, g.spec.Levels[dim])
	n := g.spec.Chain.NumStates()
	cell := make([]int, len(g.spec.Levels))
	for ci := 0; ci < g.cells; ci++ {
		g.cellCoords(ci, cell)
		for i := 0; i < n; i++ {
			out[cell[dim]] += res.Distributions[0][g.index(i, ci)]
		}
	}
	return out, nil
}
