package multireward

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/core"
	"batlife/internal/ctmc"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/units"
	"batlife/internal/workload"
)

func singleStateChain(t *testing.T) *ctmc.Chain {
	t.Helper()
	var b ctmc.Builder
	b.State("on")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func erlangCDF(k int, rate, t float64) float64 {
	sum, term := 0.0, 1.0
	for i := 0; i < k; i++ {
		if i > 0 {
			term *= rate * t / float64(i)
		}
		sum += term
	}
	return 1 - math.Exp(-rate*t)*sum
}

// oneDimSpec models a single always-on state draining a 1-D grid:
// identical to core's degenerate battery.
func oneDimSpec(t *testing.T, levels int, rate float64) Spec {
	t.Helper()
	chain := singleStateChain(t)
	return Spec{
		Chain:       chain,
		Levels:      []int{levels},
		Initial:     []float64{1},
		InitialCell: []int{levels - 2},
		Moves: func(_ int, cell []int) []Move {
			if cell[0] == 0 {
				return nil
			}
			return []Move{{Rate: rate, Shift: []int{-1}}}
		},
		Absorbing: func(_ int, cell []int) bool { return cell[0] == 0 },
	}
}

func TestOneDimensionErlangClosedForm(t *testing.T) {
	const levels, rate = 21, 0.04
	g, err := Build(oneDimSpec(t, levels, rate))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != levels {
		t.Fatalf("states = %d", g.NumStates())
	}
	empty := func(_ int, cell []int) bool { return cell[0] == 0 }
	times := []float64{100, 475, 500, 525, 900}
	probs, err := g.Measure(empty, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jumps := levels - 2
	for k, tm := range times {
		want := erlangCDF(jumps, rate, tm)
		if math.Abs(probs[k]-want) > 1e-8 {
			t.Errorf("t=%v: %v, want Erlang %v", tm, probs[k], want)
		}
	}
}

// twoWellSpec reproduces core's two-well battery on the generic grid.
func twoWellSpec(t *testing.T, battery kibam.Params, delta float64) (Spec, mrm.KiBaMRM) {
	t.Helper()
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		t.Fatal(err)
	}
	model := mrm.KiBaMRM{
		Workload: w.Chain, Currents: w.Currents, Initial: w.Initial, Battery: battery,
	}
	n1 := int(battery.C*battery.Capacity/delta) + 1
	n2 := int((1-battery.C)*battery.Capacity/delta) + 1
	j2init := n2 - 2
	if n2 == 1 {
		j2init = 0
	}
	k, c := battery.K, battery.C
	spec := Spec{
		Chain:       w.Chain,
		Levels:      []int{n1, n2},
		Initial:     w.Initial,
		InitialCell: []int{n1 - 2, j2init},
		Moves: func(state int, cell []int) []Move {
			if cell[0] == 0 {
				return nil
			}
			var moves []Move
			if cur := model.Currents[state]; cur > 0 {
				moves = append(moves, Move{Rate: cur / delta, Shift: []int{-1, 0}})
			}
			if k > 0 && cell[1] > 0 && cell[0] < n1-1 {
				y1 := float64(cell[0]) * delta
				y2 := float64(cell[1]) * delta
				if rate := k * (y2/(1-c) - y1/c) / delta; rate > 0 {
					moves = append(moves, Move{Rate: rate, Shift: []int{1, -1}})
				}
			}
			return moves
		},
		Absorbing: func(_ int, cell []int) bool { return cell[0] == 0 },
	}
	return spec, model
}

func TestTwoWellMatchesCore(t *testing.T) {
	// The generic grid must reproduce internal/core exactly — both
	// build the same expanded CTMC.
	battery := kibam.Params{Capacity: 7200, C: 0.625, K: 4.5e-5}
	const delta = 300
	spec, model := twoWellSpec(t, battery, delta)
	g, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Build(model, delta, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != e.NumStates() {
		t.Fatalf("states %d vs core %d", g.NumStates(), e.NumStates())
	}
	if g.NNZ() != e.NNZ() {
		t.Fatalf("nnz %d vs core %d", g.NNZ(), e.NNZ())
	}
	times := []float64{8000, 12000, 16000}
	probs, err := g.Measure(func(_ int, cell []int) bool { return cell[0] == 0 }, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		if math.Abs(probs[k]-want.EmptyProb[k]) > 1e-10 {
			t.Errorf("t=%v: generic %v vs core %v", times[k], probs[k], want.EmptyProb[k])
		}
	}
}

func TestThreeRewardJointMeasure(t *testing.T) {
	// Third dimension: a delivered-energy counter that increments with
	// every consumption move. Checks the paper's "three or more reward
	// types" claim end to end.
	battery := kibam.Params{Capacity: 7200, C: 0.625, K: 4.5e-5}
	const delta = 450.0
	n1 := int(battery.C*battery.Capacity/delta) + 1     // 11
	n2 := int((1-battery.C)*battery.Capacity/delta) + 1 // 7
	nd := int(battery.Capacity/delta) + 2               // delivered counter bound
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		t.Fatal(err)
	}
	k, c := battery.K, battery.C
	currents := w.Currents
	spec := Spec{
		Chain:       w.Chain,
		Levels:      []int{n1, n2, nd},
		Initial:     w.Initial,
		InitialCell: []int{n1 - 2, n2 - 2, 0},
		Moves: func(state int, cell []int) []Move {
			if cell[0] == 0 {
				return nil
			}
			var moves []Move
			if cur := currents[state]; cur > 0 && cell[2] < nd-1 {
				moves = append(moves, Move{Rate: cur / delta, Shift: []int{-1, 0, 1}})
			}
			if k > 0 && cell[1] > 0 && cell[0] < n1-1 {
				y1 := float64(cell[0]) * delta
				y2 := float64(cell[1]) * delta
				if rate := k * (y2/(1-c) - y1/c) / delta; rate > 0 {
					moves = append(moves, Move{Rate: rate, Shift: []int{1, -1, 0}})
				}
			}
			return moves
		},
		Absorbing: func(_ int, cell []int) bool { return cell[0] == 0 },
	}
	g, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Marginal over the first dimension must match the 2-D model's
	// empty probability (adding an observer dimension changes nothing).
	spec2, _ := twoWellSpec(t, battery, delta)
	g2, err := Build(spec2)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{10000, 14000}
	empty3, err := g.Measure(func(_ int, cell []int) bool { return cell[0] == 0 }, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	empty2, err := g2.Measure(func(_ int, cell []int) bool { return cell[0] == 0 }, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range times {
		if math.Abs(empty3[i]-empty2[i]) > 1e-9 {
			t.Errorf("t=%v: 3-reward marginal %v vs 2-reward %v", times[i], empty3[i], empty2[i])
		}
	}

	// Joint measure: empty AND delivered at least 12 levels. Must be
	// less than or equal to the plain empty probability, and the
	// difference must be the empty-with-low-delivery mass.
	joint, err := g.Measure(func(_ int, cell []int) bool {
		return cell[0] == 0 && cell[2] >= 12
	}, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	low, err := g.Measure(func(_ int, cell []int) bool {
		return cell[0] == 0 && cell[2] < 12
	}, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range times {
		if joint[i] > empty3[i]+1e-12 {
			t.Errorf("joint %v exceeds marginal %v", joint[i], empty3[i])
		}
		if math.Abs(joint[i]+low[i]-empty3[i]) > 1e-9 {
			t.Errorf("t=%v: partition %v + %v != %v", times[i], joint[i], low[i], empty3[i])
		}
	}

	// The delivered marginal at a late time concentrates near the
	// initial available charge plus transferred bound charge: its mean
	// must lie between the available-well content and the capacity.
	marginal, err := g.CellMarginal(2, 30000, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for lvl, p := range marginal {
		mean += float64(lvl) * delta * p
	}
	if mean < c*battery.Capacity-2*delta || mean > battery.Capacity {
		t.Errorf("mean delivered energy %v As outside (%v, %v)", mean, c*battery.Capacity, battery.Capacity)
	}
}

func TestRateScaleInhomogeneousGenerator(t *testing.T) {
	// Throttling the workload at low charge must extend the lifetime —
	// the same check core runs, through the generic interface.
	battery := kibam.Params{Capacity: 7200, C: 1, K: 0}
	const delta = 300
	spec, _ := twoWellSpec(t, battery, delta)
	base, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	throttledSpec := spec
	throttledSpec.RateScale = func(_, to int, cell []int, rate float64) float64 {
		if to == 0 && cell[0] < 8 { // entering the on-state at low charge
			return rate / 5
		}
		return rate
	}
	throttled, err := Build(throttledSpec)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{15000}
	empty := func(_ int, cell []int) bool { return cell[0] == 0 }
	pBase, err := base.Measure(empty, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pThrottled, err := throttled.Measure(empty, times, ctmc.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pThrottled[0] >= pBase[0] {
		t.Errorf("throttled %v not below base %v", pThrottled[0], pBase[0])
	}
}

func TestSpecValidation(t *testing.T) {
	chain := singleStateChain(t)
	good := oneDimSpec(t, 5, 1)
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"nil chain", func(s *Spec) { s.Chain = nil }},
		{"no dimensions", func(s *Spec) { s.Levels = nil }},
		{"zero levels", func(s *Spec) { s.Levels = []int{0} }},
		{"bad initial len", func(s *Spec) { s.Initial = []float64{0.5, 0.5} }},
		{"unnormalised initial", func(s *Spec) { s.Initial = []float64{0.5} }},
		{"bad cell dims", func(s *Spec) { s.InitialCell = []int{1, 1} }},
		{"cell out of range", func(s *Spec) { s.InitialCell = []int{99} }},
		{"nil moves", func(s *Spec) { s.Moves = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := good
			tc.mutate(&s)
			if _, err := Build(s); !errors.Is(err, ErrBadSpec) {
				t.Errorf("err = %v, want ErrBadSpec", err)
			}
		})
	}
	_ = chain
}

func TestMoveValidation(t *testing.T) {
	s := oneDimSpec(t, 5, 1)
	// A move that walks off the grid must be rejected at build time.
	s.Moves = func(_ int, cell []int) []Move {
		return []Move{{Rate: 1, Shift: []int{-1}}} // fires even at cell 0... but 0 is absorbing
	}
	s.Absorbing = nil // expose the bad move
	if _, err := Build(s); !errors.Is(err, ErrBadMove) {
		t.Errorf("off-grid move: err = %v", err)
	}
	s2 := oneDimSpec(t, 5, 1)
	s2.Moves = func(_ int, cell []int) []Move {
		if cell[0] == 0 {
			return nil
		}
		return []Move{{Rate: 1, Shift: []int{-1, 0}}}
	}
	if _, err := Build(s2); !errors.Is(err, ErrBadMove) {
		t.Errorf("wrong shift arity: err = %v", err)
	}
	s3 := oneDimSpec(t, 5, 1)
	s3.Moves = func(_ int, cell []int) []Move {
		if cell[0] == 0 {
			return nil
		}
		return []Move{{Rate: -2, Shift: []int{-1}}}
	}
	if _, err := Build(s3); !errors.Is(err, ErrBadSpec) {
		t.Errorf("negative rate: err = %v", err)
	}
}

func TestMeasureValidation(t *testing.T) {
	g, err := Build(oneDimSpec(t, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Measure(nil, []float64{1}, ctmc.TransientOptions{}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("nil indicator: err = %v", err)
	}
	if _, err := g.CellMarginal(7, 1, ctmc.TransientOptions{}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("bad dimension: err = %v", err)
	}
}
