package discretize

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/ctmc"
	"batlife/internal/mrm"
	"batlife/internal/performability"
	"batlife/internal/units"
	"batlife/internal/workload"
)

func singleState(t *testing.T, rate float64) mrm.ConstantReward {
	t.Helper()
	var b ctmc.Builder
	b.State("only")
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return mrm.ConstantReward{Chain: chain, Rates: []float64{rate}, Initial: []float64{1}}
}

func TestScaleRates(t *testing.T) {
	tests := []struct {
		name     string
		rates    []float64
		wantUnit float64
		wantG    []int
		wantErr  bool
	}{
		{"paper currents", []float64{0.008, 0.2, 0}, 0.008, []int{1, 25, 0}, false},
		{"integers", []float64{3, 6, 9}, 3, []int{1, 2, 3}, false},
		{"all zero", []float64{0, 0}, 0, []int{0, 0}, false},
		{"single", []float64{0.96}, 0.96, []int{1}, false},
		{"irrational pair", []float64{1, math.Pi}, 0, nil, true},
		{"negative", []float64{-1, 2}, 0, nil, true},
		{"NaN", []float64{math.NaN()}, 0, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			unit, g, err := ScaleRates(tt.rates)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				if !errors.Is(err, ErrNotScalable) {
					t.Errorf("error %v does not wrap ErrNotScalable", err)
				}
				return
			}
			if math.Abs(unit-tt.wantUnit) > 1e-12 {
				t.Errorf("unit = %v, want %v", unit, tt.wantUnit)
			}
			for i := range tt.wantG {
				if g[i] != tt.wantG[i] {
					t.Errorf("g = %v, want %v", g, tt.wantG)
					break
				}
			}
		})
	}
}

func TestDeterministicDepletion(t *testing.T) {
	// Single state at 2 units/s, capacity 100: dead at step 50/D.
	m := singleState(t, 2)
	probs, err := EnergyDepletionCDF(m, 100, []float64{40, 49.5, 50.5, 70}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 0 || probs[1] != 0 {
		t.Errorf("alive phase: %v", probs[:2])
	}
	if probs[2] != 1 || probs[3] != 1 {
		t.Errorf("dead phase: %v", probs[2:])
	}
}

func TestMassConservation(t *testing.T) {
	// Dead + live mass must remain 1 — checked implicitly by the CDF
	// approaching 1 and never exceeding it.
	w, err := workload.OnOff(0.05, 1, units.Amperes(1))
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.ConstantReward{Chain: w.Chain, Rates: w.Currents, Initial: w.Initial}
	probs, err := EnergyDepletionCDF(m, 50, []float64{50, 100, 200, 400, 800}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, p := range probs {
		if p < prev-1e-12 || p > 1 {
			t.Fatalf("probs[%d] = %v (prev %v)", i, p, prev)
		}
		prev = p
	}
	if probs[len(probs)-1] < 0.99 {
		t.Errorf("battery survives too long: %v", probs)
	}
}

func TestAgreesWithExactSolver(t *testing.T) {
	// On the simple wireless model the discretisation must converge to
	// the transform-domain exact solution.
	w, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.ConstantReward{Chain: w.Chain, Rates: w.Currents, Initial: w.Initial}
	capacity := units.MilliampHours(800).AmpereSeconds()
	times := []float64{10 * 3600, 15 * 3600, 20 * 3600, 25 * 3600}
	exact, err := performability.EnergyDepletionCDF(m, capacity, times)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := EnergyDepletionCDF(m, capacity, times, 30)
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		if math.Abs(approx[k]-exact[k]) > 0.02 {
			t.Errorf("t=%v h: discretize %v vs exact %v", times[k]/3600, approx[k], exact[k])
		}
	}
}

func TestConvergenceInStep(t *testing.T) {
	w, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.ConstantReward{Chain: w.Chain, Rates: w.Currents, Initial: w.Initial}
	capacity := units.MilliampHours(800).AmpereSeconds()
	times := []float64{15 * 3600}
	exact, err := performability.EnergyDepletionCDF(m, capacity, times)
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for _, step := range []float64{240, 60, 15} {
		approx, err := EnergyDepletionCDF(m, capacity, times, step)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, math.Abs(approx[0]-exact[0]))
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] >= errs[i-1] && errs[i] > 1e-4 {
			t.Errorf("error did not shrink with step: %v", errs)
		}
	}
}

func TestRejectsUnscalableRates(t *testing.T) {
	var b ctmc.Builder
	b.Transition("a", "b", 1)
	b.Transition("b", "a", 1)
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.ConstantReward{Chain: chain, Rates: []float64{1, math.Sqrt2}, Initial: []float64{1, 0}}
	if _, err := EnergyDepletionCDF(m, 10, []float64{5}, 0.01); !errors.Is(err, ErrNotScalable) {
		t.Errorf("err = %v, want ErrNotScalable", err)
	}
}

func TestRejectsUnstableStep(t *testing.T) {
	var b ctmc.Builder
	b.Transition("a", "b", 10)
	b.Transition("b", "a", 10)
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.ConstantReward{Chain: chain, Rates: []float64{1, 0}, Initial: []float64{1, 0}}
	// q·D = 10·0.5 = 5 > 1.
	if _, err := EnergyDepletionCDF(m, 10, []float64{5}, 0.5); !errors.Is(err, ErrBadStep) {
		t.Errorf("err = %v, want ErrBadStep", err)
	}
}

func TestBadArguments(t *testing.T) {
	m := singleState(t, 1)
	if _, err := EnergyDepletionCDF(m, 0, []float64{1}, 0.1); !errors.Is(err, ErrBadStep) {
		t.Errorf("zero capacity: err = %v", err)
	}
	if _, err := EnergyDepletionCDF(m, 10, nil, 0.1); !errors.Is(err, ErrBadStep) {
		t.Errorf("no times: err = %v", err)
	}
	if _, err := EnergyDepletionCDF(m, 10, []float64{1}, 0); !errors.Is(err, ErrBadStep) {
		t.Errorf("zero step: err = %v", err)
	}
}

func TestZeroRatesNeverDeplete(t *testing.T) {
	m := singleState(t, 0)
	probs, err := EnergyDepletionCDF(m, 10, []float64{1, 100}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 0 || probs[1] != 0 {
		t.Errorf("probs = %v, want zeros", probs)
	}
}

func BenchmarkDiscretizeSimpleModel(b *testing.B) {
	w, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		b.Fatal(err)
	}
	m := mrm.ConstantReward{Chain: w.Chain, Rates: w.Currents, Initial: w.Initial}
	capacity := units.MilliampHours(800).AmpereSeconds()
	times := []float64{20 * 3600}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EnergyDepletionCDF(m, capacity, times, 60); err != nil {
			b.Fatal(err)
		}
	}
}
