// Package discretize implements the reward/time discretisation algorithm
// for performability distributions (Haverkort & Katoen [18]; described in
// detail in the technical report [20]) that the paper's Section 5
// considers and rejects in favour of the Markovian approximation.
//
// Time advances in fixed steps D; accumulated reward advances in units
// u·D, where u is the greatest common divisor of the reward rates, so
// that state i gains exactly g_i = r_i/u reward levels per step.
// Probability mass is propagated over the (state, level) grid with the
// one-step kernel P = I + Q·D.
//
// The algorithm requires the reward rates to be integer after scaling —
// the weakness the paper calls out: rationally unrelated or
// finely-grained rates blow up the level count (the simple wireless
// model's 8 mA and 200 mA scale benignly to 1 and 25, but rates such as
// 1 and π have no common unit at all). The ablation benchmark at the
// repository root measures this against the Markovian approximation.
package discretize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"batlife/internal/check"
	"batlife/internal/mrm"
	"batlife/internal/obs"
)

// ErrNotScalable reports reward rates with no usable common unit.
var ErrNotScalable = errors.New("discretize: reward rates have no common integer scaling")

// ErrBadStep reports an unusable time step.
var ErrBadStep = errors.New("discretize: invalid time step")

// maxLevelsPerStep bounds the integer rate multipliers; beyond this the
// grid is declared infeasible (this is exactly the paper's objection).
const maxLevelsPerStep = 1 << 20

// ScaleRates returns the common unit u and integer multipliers g with
// rates[i] ≈ g[i]·u. Zero rates map to zero. It fails when the rates are
// not rationally related within a 1e-9 relative tolerance.
func ScaleRates(rates []float64) (float64, []int, error) {
	unit := 0.0
	for _, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return 0, nil, fmt.Errorf("%w: rate %v", ErrNotScalable, r)
		}
		if r == 0 {
			continue
		}
		if unit == 0 {
			unit = r
			continue
		}
		unit = floatGCD(unit, r)
		if unit == 0 {
			return 0, nil, ErrNotScalable
		}
	}
	g := make([]int, len(rates))
	if unit == 0 {
		return 0, g, nil // all rates zero
	}
	for i, r := range rates {
		q := r / unit
		rounded := math.Round(q)
		if math.Abs(q-rounded) > 1e-6 || rounded > maxLevelsPerStep {
			return 0, nil, fmt.Errorf("%w: rate %v is %v units", ErrNotScalable, r, q)
		}
		g[i] = int(rounded)
	}
	return unit, g, nil
}

// floatGCD is Euclid's algorithm on positive reals with a relative
// tolerance; it returns 0 when no common divisor emerges before the
// remainder vanishes into rounding noise.
func floatGCD(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	ref := a
	for i := 0; i < 256; i++ {
		if b < 1e-9*ref {
			return a
		}
		a, b = b, math.Mod(a, b)
		if a < b {
			a, b = b, a
		}
	}
	return 0
}

// Options tunes one discretisation run.
type Options struct {
	// Obs, when non-nil, receives run telemetry: grid dimensions, step
	// counts and a "discretize.run" span. Nil disables recording.
	Obs *obs.Registry
	// Context, when non-nil, carries the request-scoped trace: the
	// "discretize.run" span nests under the span the context carries.
	// It does not affect the computation.
	Context context.Context
}

// EnergyDepletionCDF approximates Pr{Y(t) ≥ capacity} — the battery
// lifetime CDF of a c = 1 battery — at the given times using the
// discretisation scheme with time step. Times are snapped to the step
// grid. All reward rates must be non-negative.
//
//numlint:ensures unitinterval
func EnergyDepletionCDF(m mrm.ConstantReward, capacity float64, times []float64, step float64) ([]float64, error) {
	return EnergyDepletionCDFOpts(m, capacity, times, step, Options{})
}

// EnergyDepletionCDFOpts is EnergyDepletionCDF with observability.
//
//numlint:ensures unitinterval
func EnergyDepletionCDFOpts(m mrm.ConstantReward, capacity float64, times []float64, step float64, opts Options) ([]float64, error) {
	reg := opts.Obs
	if reg == nil {
		return energyDepletionCDF(m, capacity, times, step, nil)
	}
	_, span := obs.StartSpan(opts.Context, reg, "discretize.run", obs.Float("step", step))
	start := time.Now()
	out, err := energyDepletionCDF(m, capacity, times, step, reg)
	if err != nil {
		span.End(obs.String("error", err.Error()))
		return nil, err
	}
	reg.Counter("discretize_runs_total").Inc()
	reg.Histogram("discretize_run_seconds").ObserveDuration(time.Since(start).Seconds())
	span.End()
	return out, nil
}

// energyDepletionCDF runs the discretised transient recursion and
// clamps the accumulated absorption mass into [0, 1] at every recorded
// time point.
//
//numlint:ensures unitinterval
func energyDepletionCDF(m mrm.ConstantReward, capacity float64, times []float64, step float64, reg *obs.Registry) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("discretize: %w", err)
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("%w: capacity %v", ErrBadStep, capacity)
	}
	if step <= 0 || math.IsNaN(step) || math.IsInf(step, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadStep, step)
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("%w: no time points", ErrBadStep)
	}
	unit, g, err := ScaleRates(m.Rates)
	if err != nil {
		return nil, err
	}
	if unit == 0 {
		// No state ever accrues reward: the battery never depletes.
		return make([]float64, len(times)), nil
	}

	n := m.Chain.NumStates()
	// Stability: every one-step jump probability must stay a probability.
	for i := 0; i < n; i++ {
		if p := m.Chain.ExitRate(i) * step; p > 1 {
			return nil, fmt.Errorf("%w: exit rate %v × step %v = %v > 1 (state %s)",
				ErrBadStep, m.Chain.ExitRate(i), step, p, m.Chain.Name(i))
		}
	}

	// Level grid: one level = unit·step reward; absorption at the first
	// level at or beyond the capacity.
	levelSize := unit * step
	absorb := int(math.Ceil(capacity / levelSize))
	if absorb < 1 {
		absorb = 1
	}
	if absorb > 64<<20/n {
		return nil, fmt.Errorf("%w: %d reward levels needed — grid infeasible (decrease resolution)",
			ErrNotScalable, absorb)
	}
	maxSteps := int(math.Round(times[len(times)-1] / step))
	reg.Histogram("discretize_levels").Observe(float64(absorb))
	reg.Counter("discretize_steps_total").Add(int64(maxSteps))

	// mass[i·(absorb) + l] for live levels l < absorb; dead collects the
	// absorbed probability.
	mass := make([]float64, n*absorb)
	next := make([]float64, n*absorb)
	dead := 0.0
	for i := 0; i < n; i++ {
		mass[i*absorb] = m.Initial[i]
	}

	out := make([]float64, len(times))
	ti := 0
	record := func(stepIdx int) {
		for ti < len(times) && int(math.Round(times[ti]/step)) <= stepIdx {
			out[ti] = math.Min(1, math.Max(0, dead))
			ti++
		}
	}
	record(0)

	for s := 1; s <= maxSteps && ti < len(times); s++ {
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < n; i++ {
			base := i * absorb
			gi := g[i]
			stay := 1 - m.Chain.ExitRate(i)*step
			for l := 0; l < absorb; l++ {
				p := mass[base+l]
				if p == 0 {
					continue
				}
				nl := l + gi
				if nl >= absorb {
					dead += p
					continue
				}
				// Stay, accruing reward.
				next[base+nl] += p * stay
				// Jump to successors, accruing this state's reward for
				// the step.
				m.Chain.Generator().Row(i, func(col int, v float64) {
					if col == i {
						return
					}
					next[col*absorb+nl] += p * v * step
				})
			}
		}
		mass, next = next, mass
		record(s)
	}
	// Any remaining (late) time points: the loop ended because maxSteps
	// was reached.
	record(maxSteps)
	check.UnitInterval("discretize.EnergyDepletionCDF", out)
	return out, nil
}
