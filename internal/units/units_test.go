package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestCurrentConversions(t *testing.T) {
	tests := []struct {
		name string
		c    Current
		amps float64
		ma   float64
	}{
		{"one amp", Amperes(1), 1, 1000},
		{"paper load", Amperes(0.96), 0.96, 960},
		{"idle draw", Milliamps(8), 0.008, 8},
		{"send draw", Milliamps(200), 0.2, 200},
		{"zero", Amperes(0), 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Amperes(); !almostEq(got, tt.amps, 1e-12) {
				t.Errorf("Amperes() = %v, want %v", got, tt.amps)
			}
			if got := tt.c.Milliamps(); !almostEq(got, tt.ma, 1e-12) {
				t.Errorf("Milliamps() = %v, want %v", got, tt.ma)
			}
		})
	}
}

func TestChargeConversions(t *testing.T) {
	tests := []struct {
		name string
		q    Charge
		as   float64
		mah  float64
	}{
		{"paper capacity", MilliampHours(2000), 7200, 2000},
		{"cell phone", MilliampHours(800), 2880, 800},
		{"small pack", MilliampHours(500), 1800, 500},
		{"one Ah", AmpHours(1), 3600, 1000},
		{"direct As", AmpereSeconds(4500), 4500, 1250},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.q.AmpereSeconds(); !almostEq(got, tt.as, 1e-12) {
				t.Errorf("AmpereSeconds() = %v, want %v", got, tt.as)
			}
			if got := tt.q.MilliampHours(); !almostEq(got, tt.mah, 1e-12) {
				t.Errorf("MilliampHours() = %v, want %v", got, tt.mah)
			}
		})
	}
}

func TestDurationConversions(t *testing.T) {
	if got := Minutes(90).Seconds(); got != 5400 {
		t.Errorf("Minutes(90).Seconds() = %v, want 5400", got)
	}
	if got := Hours(1).Minutes(); got != 60 {
		t.Errorf("Hours(1).Minutes() = %v, want 60", got)
	}
	if got := Seconds(15000).Hours(); !almostEq(got, 15000.0/3600, 1e-12) {
		t.Errorf("Seconds(15000).Hours() = %v", got)
	}
}

func TestRateConversions(t *testing.T) {
	// The paper's k = 4.5e-5 /s = 1.96e-2 /h (it rounds 0.162 to 1.96e-2
	// after a factor; verify the exact conversion here: 4.5e-5*3600 = 0.162).
	if got := PerSecond(4.5e-5).PerHour(); !almostEq(got, 0.162, 1e-12) {
		t.Errorf("PerSecond(4.5e-5).PerHour() = %v, want 0.162", got)
	}
	if got := PerHour(6).PerSecond(); !almostEq(got, 6.0/3600, 1e-12) {
		t.Errorf("PerHour(6).PerSecond() = %v", got)
	}
}

func TestChargeRoundTripProperty(t *testing.T) {
	f := func(mah float64) bool {
		if math.IsNaN(mah) || math.IsInf(mah, 0) {
			return true
		}
		return almostEq(MilliampHours(mah).MilliampHours(), mah, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationRoundTripProperty(t *testing.T) {
	f := func(h float64) bool {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			return true
		}
		return almostEq(Hours(h).Hours(), h, 1e-12) && almostEq(Minutes(h).Minutes(), h, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCharge(t *testing.T) {
	tests := []struct {
		in      string
		want    float64 // ampere-seconds
		wantErr bool
	}{
		{"800mAh", 2880, false},
		{"7200As", 7200, false},
		{"2Ah", 7200, false},
		{" 500 mAh ", 1800, false},
		{"1.5e3 As", 1500, false},
		{"800", 0, true},
		{"mAh", 0, true},
		{"800furlongs", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParseCharge(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseCharge(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && !almostEq(got.AmpereSeconds(), tt.want, 1e-12) {
				t.Errorf("ParseCharge(%q) = %v As, want %v", tt.in, got.AmpereSeconds(), tt.want)
			}
		})
	}
}

func TestParseCurrent(t *testing.T) {
	tests := []struct {
		in      string
		want    float64 // ampere
		wantErr bool
	}{
		{"0.96A", 0.96, false},
		{"200mA", 0.2, false},
		{"8 mA", 0.008, false},
		{"0.96", 0, true},
		{"0.96V", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParseCurrent(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseCurrent(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && !almostEq(got.Amperes(), tt.want, 1e-12) {
				t.Errorf("ParseCurrent(%q) = %v A, want %v", tt.in, got.Amperes(), tt.want)
			}
		})
	}
}

func TestParseDuration(t *testing.T) {
	tests := []struct {
		in      string
		want    float64 // seconds
		wantErr bool
	}{
		{"90min", 5400, false},
		{"2h", 7200, false},
		{"15000s", 15000, false},
		{"10 m", 600, false},
		{"1 hr", 3600, false},
		{"90", 0, true},
		{"90parsecs", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParseDuration(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseDuration(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && !almostEq(got.Seconds(), tt.want, 1e-12) {
				t.Errorf("ParseDuration(%q) = %v s, want %v", tt.in, got.Seconds(), tt.want)
			}
		})
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		got  string
		want string
	}{
		{Amperes(0.96).String(), "0.96A"},
		{Milliamps(8).String(), "8mA"},
		{MilliampHours(800).String(), "2880As"},
		{MilliampHours(10).String(), "10mAh"},
		{Seconds(15000).String(), "4.16667h"},
		{Minutes(90).String(), "90min"},
		{Seconds(30).String(), "30s"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}
