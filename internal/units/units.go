// Package units provides the physical quantities used throughout the
// battery models: electric current, electric charge, and time, together
// with the unit conversions the paper mixes freely (Ampere-seconds for
// the second-domain experiments, milliampere-hours for the hour-domain
// ones).
//
// All quantities are represented as float64 in an explicit base unit:
// Current in ampere, Charge in coulomb (ampere-second), Duration in
// seconds. The named constructors and accessors make call sites
// self-describing and keep conversion factors in one place.
package units

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Conversion factors between the base units and the derived units used
// in the paper.
const (
	secondsPerHour  = 3600.0
	milliampsPerAmp = 1000.0
	// coulombsPerMAh is the charge, in ampere-seconds, of one
	// milliampere-hour: 1 mAh = 3.6 As.
	coulombsPerMAh = secondsPerHour / milliampsPerAmp
)

// Current is an electric current in ampere.
type Current float64

// Amperes constructs a Current from a value in ampere.
func Amperes(a float64) Current { return Current(a) }

// Milliamps constructs a Current from a value in milliampere.
func Milliamps(ma float64) Current { return Current(ma / milliampsPerAmp) }

// Amperes reports the current in ampere.
func (c Current) Amperes() float64 { return float64(c) }

// Milliamps reports the current in milliampere.
func (c Current) Milliamps() float64 { return float64(c) * milliampsPerAmp }

// String formats the current with an adaptive unit.
func (c Current) String() string {
	if abs(float64(c)) < 0.1 {
		return trimFloat(c.Milliamps()) + "mA"
	}
	return trimFloat(c.Amperes()) + "A"
}

// Charge is an electric charge in coulomb (ampere-second).
type Charge float64

// Coulombs constructs a Charge from a value in ampere-seconds.
func Coulombs(as float64) Charge { return Charge(as) }

// AmpereSeconds is an alias constructor matching the paper's "As" unit.
func AmpereSeconds(as float64) Charge { return Charge(as) }

// MilliampHours constructs a Charge from a value in mAh.
func MilliampHours(mah float64) Charge { return Charge(mah * coulombsPerMAh) }

// AmpHours constructs a Charge from a value in Ah.
func AmpHours(ah float64) Charge { return Charge(ah * coulombsPerMAh * milliampsPerAmp) }

// AmpereSeconds reports the charge in ampere-seconds.
func (q Charge) AmpereSeconds() float64 { return float64(q) }

// MilliampHours reports the charge in milliampere-hours.
func (q Charge) MilliampHours() float64 { return float64(q) / coulombsPerMAh }

// String formats the charge with an adaptive unit.
func (q Charge) String() string {
	if abs(float64(q)) >= 100 {
		return trimFloat(q.AmpereSeconds()) + "As"
	}
	return trimFloat(q.MilliampHours()) + "mAh"
}

// Duration is a span of time in seconds. The standard library's
// time.Duration has nanosecond resolution and a ~292-year range; battery
// lifetimes are continuous quantities produced by root finding, so a
// float64 in seconds is the appropriate representation here.
type Duration float64

// Seconds constructs a Duration from a value in seconds.
func Seconds(s float64) Duration { return Duration(s) }

// Minutes constructs a Duration from a value in minutes.
func Minutes(m float64) Duration { return Duration(m * 60) }

// Hours constructs a Duration from a value in hours.
func Hours(h float64) Duration { return Duration(h * secondsPerHour) }

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Minutes reports the duration in minutes.
func (d Duration) Minutes() float64 { return float64(d) / 60 }

// Hours reports the duration in hours.
func (d Duration) Hours() float64 { return float64(d) / secondsPerHour }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	s := float64(d)
	switch {
	case abs(s) >= 2*secondsPerHour:
		return trimFloat(d.Hours()) + "h"
	case abs(s) >= 120:
		return trimFloat(d.Minutes()) + "min"
	default:
		return trimFloat(s) + "s"
	}
}

// Rate is a transition or flow rate in events per second.
type Rate float64

// PerSecond constructs a Rate from a value in 1/s.
func PerSecond(r float64) Rate { return Rate(r) }

// PerHour constructs a Rate from a value in 1/h.
func PerHour(r float64) Rate { return Rate(r / secondsPerHour) }

// PerSecond reports the rate in 1/s.
func (r Rate) PerSecond() float64 { return float64(r) }

// PerHour reports the rate in 1/h.
func (r Rate) PerHour() float64 { return float64(r) * secondsPerHour }

// ErrBadUnit reports an unparseable quantity string.
var ErrBadUnit = errors.New("units: unrecognised unit suffix")

// ParseCharge parses strings like "800mAh", "7200As", "2Ah".
func ParseCharge(s string) (Charge, error) {
	num, suffix, err := splitUnit(s)
	if err != nil {
		return 0, fmt.Errorf("parse charge %q: %w", s, err)
	}
	switch strings.ToLower(suffix) {
	case "as", "c":
		return Coulombs(num), nil
	case "mah":
		return MilliampHours(num), nil
	case "ah":
		return AmpHours(num), nil
	default:
		return 0, fmt.Errorf("parse charge %q: %w", s, ErrBadUnit)
	}
}

// ParseCurrent parses strings like "0.96A" or "200mA".
func ParseCurrent(s string) (Current, error) {
	num, suffix, err := splitUnit(s)
	if err != nil {
		return 0, fmt.Errorf("parse current %q: %w", s, err)
	}
	switch strings.ToLower(suffix) {
	case "a":
		return Amperes(num), nil
	case "ma":
		return Milliamps(num), nil
	default:
		return 0, fmt.Errorf("parse current %q: %w", s, ErrBadUnit)
	}
}

// ParseDuration parses strings like "90min", "2h", "15000s".
func ParseDuration(s string) (Duration, error) {
	num, suffix, err := splitUnit(s)
	if err != nil {
		return 0, fmt.Errorf("parse duration %q: %w", s, err)
	}
	switch strings.ToLower(suffix) {
	case "s", "sec":
		return Seconds(num), nil
	case "min", "m":
		return Minutes(num), nil
	case "h", "hr":
		return Hours(num), nil
	default:
		return 0, fmt.Errorf("parse duration %q: %w", s, ErrBadUnit)
	}
}

func splitUnit(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	i := len(s)
	for i > 0 {
		ch := s[i-1]
		if (ch >= '0' && ch <= '9') || ch == '.' || ch == '-' || ch == '+' || ch == 'e' || ch == 'E' {
			break
		}
		i--
	}
	if i == 0 || i == len(s) {
		return 0, "", ErrBadUnit
	}
	num, err := strconv.ParseFloat(strings.TrimSpace(s[:i]), 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad number: %w", err)
	}
	return num, strings.TrimSpace(s[i:]), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', 6, 64)
}
