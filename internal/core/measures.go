package core

import (
	"errors"
	"fmt"
	"math"

	"batlife/internal/sparse"
)

// ErrNoAbsorption reports a chain whose battery can never empty, so
// absorption-based measures diverge.
var ErrNoAbsorption = errors.New("core: battery never empties under this model")

// MeanLifetime returns the expected battery lifetime E[L] in seconds:
// the expected absorption time of the expanded chain into the empty
// (j1 = 0) slice, obtained by solving the linear system
//
//	q_s·m_s − Σ_{s′ live} rate(s→s′)·m_{s′} = 1
//
// over the live states with Gauss–Seidel sweeps. The sweep order follows
// the state indexing (ascending j1), which propagates values upward from
// the empty boundary and converges in a number of sweeps far below the
// state count. Models built with AllowEmptyRecovery (no absorbing
// states) have no finite mean lifetime and return ErrNoAbsorption.
func (e *Expanded) MeanLifetime() (float64, error) {
	if e.opts.AllowEmptyRecovery {
		return 0, fmt.Errorf("%w: empty states are not absorbing", ErrNoAbsorption)
	}
	if e.model.MaxCurrent() == 0 {
		return 0, fmt.Errorf("%w: no state draws current", ErrNoAbsorption)
	}
	n := e.model.Workload.NumStates()
	total := e.NumStates()

	// Live states are those with j1 > 0; they occupy the contiguous
	// index range [n·n2, total).
	offset := n * e.n2
	live := total - offset

	b := sparse.NewBuilder(live, live, e.gen.NNZ())
	for s := offset; s < total; s++ {
		e.gen.Row(s, func(col int, v float64) {
			if col == s {
				b.Add(s-offset, s-offset, -v) // diagonal: q_s
				return
			}
			if col >= offset {
				b.Add(s-offset, col-offset, -v)
			}
			// Transitions into the empty slice leave the system (their
			// target has mean 0).
		})
	}
	a, err := b.Freeze()
	if err != nil {
		return 0, fmt.Errorf("core: mean lifetime system: %w", err)
	}
	m := make([]float64, live)
	ones := make([]float64, live)
	for i := range ones {
		ones[i] = 1
	}
	if _, err := sparse.GaussSeidel(a, m, ones, sparse.GaussSeidelOptions{
		MaxIterations: 200000,
		Tolerance:     1e-12,
	}); err != nil {
		if errors.Is(err, sparse.ErrZeroDiagonal) || errors.Is(err, sparse.ErrNoConvergence) {
			return 0, fmt.Errorf("%w: %v", ErrNoAbsorption, err)
		}
		return 0, fmt.Errorf("core: mean lifetime: %w", err)
	}
	mean := 0.0
	for s, p := range e.alpha {
		if p > 0 {
			if s < offset {
				continue // initial mass already in the empty slice
			}
			mean += p * m[s-offset]
		}
	}
	return mean, nil
}

// ChargeMoments holds summary statistics of the remaining charge at one
// time instant.
type ChargeMoments struct {
	// MeanAvailable and MeanBound are the expected well contents in
	// ampere-seconds (grid midpoints; the empty level counts as zero).
	MeanAvailable, MeanBound float64
	// StdAvailable is the standard deviation of the available charge.
	StdAvailable float64
	// EmptyProb is Pr{battery empty at t}.
	EmptyProb float64
}

// ChargeAt returns the charge moments at time t, derived from the full
// transient distribution of the expanded chain. It quantifies how the
// probability mass drains down the grid over time — the distributional
// view behind the lifetime CDF.
func (e *Expanded) ChargeAt(t float64) (*ChargeMoments, error) {
	u, err := e.Operator()
	if err != nil {
		return nil, err
	}
	res, err := u.Transient(e.alpha, nil, []float64{t}, e.transientOpts(SolveOptions{}))
	if err != nil {
		return nil, fmt.Errorf("core: charge moments: %w", err)
	}
	n := e.model.Workload.NumStates()
	pi := res.Distributions[0]
	m := &ChargeMoments{}
	var second float64
	for j1 := 0; j1 < e.n1; j1++ {
		y1 := 0.0
		if j1 > 0 {
			y1 = (float64(j1) + 0.5) * e.delta
		}
		for j2 := 0; j2 < e.n2; j2++ {
			y2 := 0.0
			if j2 > 0 {
				y2 = (float64(j2) + 0.5) * e.delta
			}
			for i := 0; i < n; i++ {
				p := pi[e.index(i, j1, j2)]
				if p == 0 {
					continue
				}
				m.MeanAvailable += p * y1
				m.MeanBound += p * y2
				second += p * y1 * y1
				if j1 == 0 {
					m.EmptyProb += p
				}
			}
		}
	}
	if v := second - m.MeanAvailable*m.MeanAvailable; v > 0 {
		m.StdAvailable = math.Sqrt(v)
	}
	return m, nil
}

// WastedCharge is the distribution of the bound charge remaining when
// the battery empties — capacity that was paid for but never delivered.
// The paper's Figure 10 discussion observes that a two-well battery can
// in general not use its full capacity; this measure quantifies how
// much is stranded.
type WastedCharge struct {
	// Levels[j2] is Pr{bound charge in (j2Δ, (j2+1)Δ] at depletion},
	// conditioned on the battery being empty at the evaluation time.
	Levels []float64
	// Delta is the grid step in ampere-seconds.
	Delta float64
	// AbsorbedMass is the unconditional probability that the battery is
	// empty at the evaluation time.
	AbsorbedMass float64
}

// Mean returns the expected stranded bound charge in ampere-seconds
// (midpoint rule over the grid intervals).
func (wc *WastedCharge) Mean() float64 {
	mean := 0.0
	for j2, p := range wc.Levels {
		mean += p * (float64(j2) + 0.5) * wc.Delta
	}
	return mean
}

// WastedChargeDistribution computes the stranded-charge distribution at
// time t (choose t well past the lifetime's upper tail so that
// AbsorbedMass ≈ 1 and the conditional distribution is the depletion
// distribution proper).
func (e *Expanded) WastedChargeDistribution(t float64) (*WastedCharge, error) {
	return e.WastedChargeDistributionOpts(t, SolveOptions{})
}

// WastedChargeDistributionOpts is WastedChargeDistribution with
// per-solve options; zero fields fall back to the build Options.
func (e *Expanded) WastedChargeDistributionOpts(t float64, so SolveOptions) (*WastedCharge, error) {
	u, err := e.Operator()
	if err != nil {
		return nil, err
	}
	res, err := u.Transient(e.alpha, nil, []float64{t}, e.transientOpts(so))
	if err != nil {
		return nil, fmt.Errorf("core: wasted charge: %w", err)
	}
	n := e.model.Workload.NumStates()
	wc := &WastedCharge{
		Levels: make([]float64, e.n2),
		Delta:  e.delta,
	}
	pi := res.Distributions[0]
	for j2 := 0; j2 < e.n2; j2++ {
		for i := 0; i < n; i++ {
			wc.Levels[j2] += pi[e.index(i, 0, j2)]
		}
	}
	for _, p := range wc.Levels {
		wc.AbsorbedMass += p
	}
	if wc.AbsorbedMass > 0 {
		inv := 1 / wc.AbsorbedMass
		for j2 := range wc.Levels {
			wc.Levels[j2] *= inv
		}
	}
	return wc, nil
}
