package core

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/sim"
)

func TestMeanLifetimeErlangClosedForm(t *testing.T) {
	// Single always-on state, c = 1: absorption needs C/Δ − 1 jumps at
	// rate I/Δ, so E[L] = (C − Δ)/I exactly.
	const capacity, current, delta = 1000.0, 2.0, 50.0
	e, err := Build(alwaysOnModel(t, capacity, current), delta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := e.MeanLifetime()
	if err != nil {
		t.Fatal(err)
	}
	want := (capacity - delta) / current
	if math.Abs(mean-want) > 1e-6*want {
		t.Errorf("mean lifetime = %v, want %v", mean, want)
	}
}

func TestMeanLifetimeMatchesCDFIntegral(t *testing.T) {
	// E[L] = ∫ (1 − F(t)) dt; both sides computed on the same expanded
	// chain must agree to quadrature accuracy.
	e, err := Build(onOffModel(t, 0.625, 4.5e-5), 300, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := e.MeanLifetime()
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	const step = 250.0
	for tm := step; tm <= 30000; tm += step {
		times = append(times, tm)
	}
	res, err := e.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}
	integral := 0.0
	prev := 0.0
	for i, tm := range times {
		integral += (tm - prev) * (1 - res.EmptyProb[i])
		prev = tm
	}
	if math.Abs(mean-integral) > 0.02*mean {
		t.Errorf("mean lifetime %v vs CDF integral %v", mean, integral)
	}
}

func TestMeanLifetimeAgainstSimulation(t *testing.T) {
	model := onOffModel(t, 0.625, 4.5e-5)
	e, err := Build(model, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := e.MeanLifetime()
	if err != nil {
		t.Fatal(err)
	}
	ecdf, err := sim.Lifetimes(model, 5, sim.Options{Runs: 300})
	if err != nil {
		t.Fatal(err)
	}
	simMean, err := ecdf.Mean()
	if err != nil {
		t.Fatal(err)
	}
	// The coarse grid biases the approximation early by O(Δ/I · n-ish);
	// 5% is ample at Δ = 100.
	if math.Abs(mean-simMean) > 0.05*simMean {
		t.Errorf("approximation mean %v vs simulation mean %v", mean, simMean)
	}
}

func TestMeanLifetimeDecreasingInDelta(t *testing.T) {
	// The grid rounds charge down, so coarser grids die earlier; the
	// mean must increase monotonically as Δ shrinks.
	prev := 0.0
	for _, delta := range []float64{600, 300, 100} {
		e, err := Build(onOffModel(t, 1, 0), delta, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mean, err := e.MeanLifetime()
		if err != nil {
			t.Fatal(err)
		}
		if mean <= prev {
			t.Errorf("delta=%v: mean %v not above previous %v", delta, mean, prev)
		}
		prev = mean
	}
}

func TestMeanLifetimeErrNoAbsorption(t *testing.T) {
	m := onOffModel(t, 0.625, 4.5e-5)
	e, err := Build(m, 900, Options{AllowEmptyRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.MeanLifetime(); !errors.Is(err, ErrNoAbsorption) {
		t.Errorf("recovery model: err = %v, want ErrNoAbsorption", err)
	}
	zero := m
	zero.Currents = []float64{0, 0}
	e2, err := Build(zero, 900, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.MeanLifetime(); !errors.Is(err, ErrNoAbsorption) {
		t.Errorf("zero-current model: err = %v, want ErrNoAbsorption", err)
	}
}

func TestChargeAtInitialState(t *testing.T) {
	e, err := Build(onOffModel(t, 0.625, 4.5e-5), 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.ChargeAt(0)
	if err != nil {
		t.Fatal(err)
	}
	// Initial cell is (n1-2, n2-2): midpoints 4500 − Δ/2, 2700 − Δ/2.
	if math.Abs(m.MeanAvailable-(4500-50)) > 1e-6 {
		t.Errorf("initial available mean = %v", m.MeanAvailable)
	}
	if math.Abs(m.MeanBound-(2700-50)) > 1e-6 {
		t.Errorf("initial bound mean = %v", m.MeanBound)
	}
	if m.StdAvailable > 1e-6 || m.EmptyProb != 0 {
		t.Errorf("initial spread %v / empty %v", m.StdAvailable, m.EmptyProb)
	}
}

func TestChargeAtDrainsMonotonically(t *testing.T) {
	e, err := Build(onOffModel(t, 0.625, 4.5e-5), 300, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prevAvail, prevTotal := math.Inf(1), math.Inf(1)
	for _, tm := range []float64{2000, 6000, 10000, 14000} {
		m, err := e.ChargeAt(tm)
		if err != nil {
			t.Fatal(err)
		}
		if m.MeanAvailable >= prevAvail {
			t.Errorf("t=%v: available mean %v did not decrease", tm, m.MeanAvailable)
		}
		total := m.MeanAvailable + m.MeanBound
		if total >= prevTotal {
			t.Errorf("t=%v: total mean %v did not decrease", tm, total)
		}
		prevAvail, prevTotal = m.MeanAvailable, total
	}
}

func TestChargeAtLateTimes(t *testing.T) {
	e, err := Build(onOffModel(t, 0.625, 4.5e-5), 300, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.ChargeAt(40000)
	if err != nil {
		t.Fatal(err)
	}
	if m.EmptyProb < 0.999 {
		t.Errorf("empty prob at 40000 = %v", m.EmptyProb)
	}
	if m.MeanAvailable > 1 {
		t.Errorf("available mean after depletion = %v", m.MeanAvailable)
	}
	// Stranded bound charge remains positive and consistent with the
	// wasted-charge measure up to midpoint-vs-interval conventions
	// (ChargeAt places level j2 at its midpoint (j2+0.5)Δ, WastedCharge
	// at (j2+0.5)Δ too, but the latter conditions on absorption).
	wc, err := e.WastedChargeDistribution(40000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.MeanBound-wc.Mean()*wc.AbsorbedMass) > e.Delta() {
		t.Errorf("bound mean %v vs wasted mean %v", m.MeanBound, wc.Mean())
	}
}

func TestChargeAtVariancePeaksMidLife(t *testing.T) {
	e, err := Build(onOffModel(t, 1, 0), 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	early, err := e.ChargeAt(1000)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := e.ChargeAt(8000)
	if err != nil {
		t.Fatal(err)
	}
	late, err := e.ChargeAt(40000)
	if err != nil {
		t.Fatal(err)
	}
	if !(mid.StdAvailable > early.StdAvailable && mid.StdAvailable > late.StdAvailable) {
		t.Errorf("std dev not peaked mid-life: %v, %v, %v",
			early.StdAvailable, mid.StdAvailable, late.StdAvailable)
	}
}

func TestWastedChargeDegenerate(t *testing.T) {
	// c = 1: there is no bound well; the stranded charge is the single
	// level 0 with certainty.
	e, err := Build(onOffModel(t, 1, 0), 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := e.WastedChargeDistribution(40000)
	if err != nil {
		t.Fatal(err)
	}
	if len(wc.Levels) != 1 || math.Abs(wc.Levels[0]-1) > 1e-9 {
		t.Errorf("levels = %v", wc.Levels)
	}
	if wc.AbsorbedMass < 0.999 {
		t.Errorf("absorbed mass = %v at t=40000", wc.AbsorbedMass)
	}
}

func TestWastedChargeTwoWell(t *testing.T) {
	model := onOffModel(t, 0.625, 4.5e-5)
	e, err := Build(model, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := e.WastedChargeDistribution(40000)
	if err != nil {
		t.Fatal(err)
	}
	if wc.AbsorbedMass < 0.999 {
		t.Fatalf("absorbed mass = %v at t=40000", wc.AbsorbedMass)
	}
	sum := 0.0
	for _, p := range wc.Levels {
		if p < -1e-12 {
			t.Fatalf("negative level probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("conditional distribution sums to %v", sum)
	}
	mean := wc.Mean()
	if mean <= 0 || mean >= (1-0.625)*7200 {
		t.Fatalf("mean stranded charge = %v As", mean)
	}
	// Cross-validate against the simulator's stranded-charge samples.
	res, err := sim.Run(model, 3, sim.Options{Runs: 300})
	if err != nil {
		t.Fatal(err)
	}
	simMean, err := res.WastedCharge.Mean()
	if err != nil {
		t.Fatal(err)
	}
	// Grid bias: the approximation rounds y2 down by up to Δ and kills
	// the battery early (more charge stranded); allow a wide band.
	if math.Abs(mean-simMean) > 0.25*simMean+100 {
		t.Errorf("approximation stranded mean %v vs simulation %v", mean, simMean)
	}
}

func TestWastedChargeLessWithSlowerDrain(t *testing.T) {
	// A lighter load gives the bound charge more time to flow over, so
	// less capacity is stranded.
	heavy := onOffModel(t, 0.625, 4.5e-5)
	light := heavy
	light.Currents = []float64{0.24, 0}
	eh, err := Build(heavy, 300, Options{})
	if err != nil {
		t.Fatal(err)
	}
	el, err := Build(light, 300, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wh, err := eh.WastedChargeDistribution(60000)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := el.WastedChargeDistribution(200000)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Mean() >= wh.Mean() {
		t.Errorf("light-load stranded %v not below heavy-load %v", wl.Mean(), wh.Mean())
	}
}
