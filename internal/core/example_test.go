package core_test

import (
	"fmt"

	"batlife/internal/core"
	"batlife/internal/ctmc"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
)

// Build the paper's Section 6.1 degenerate example — a 1 Hz on/off
// workload on an ideal 7200 As battery — and read off the state count
// the paper quotes for Δ = 5 and the lifetime CDF near the
// deterministic lifetime.
func Example() {
	var b ctmc.Builder
	b.Transition("on", "off", 2) // λ = 2·f·K = 2
	b.Transition("off", "on", 2)
	chain, err := b.Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	model := mrm.KiBaMRM{
		Workload: chain,
		Currents: []float64{0.96, 0},
		Initial:  chain.PointDistribution(chain.Index("on")),
		Battery:  kibam.Params{Capacity: 7200, C: 1, K: 0},
	}
	expanded, err := core.Build(model, 5, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("states:", expanded.NumStates())

	res, err := expanded.LifetimeCDF([]float64{15000})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Pr[empty at 15000 s] = %.2f\n", res.EmptyProb[0])
	// Output:
	// states: 2882
	// Pr[empty at 15000 s] = 0.51
}

// The mean lifetime comes from a linear solve on the same expanded
// chain — no time grid needed.
func ExampleExpanded_MeanLifetime() {
	var b ctmc.Builder
	b.Transition("on", "off", 2)
	b.Transition("off", "on", 2)
	chain, err := b.Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	model := mrm.KiBaMRM{
		Workload: chain,
		Currents: []float64{0.96, 0},
		Initial:  chain.PointDistribution(chain.Index("on")),
		Battery:  kibam.Params{Capacity: 7200, C: 0.625, K: 4.5e-5},
	}
	expanded, err := core.Build(model, 50, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mean, err := expanded.MeanLifetime()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("mean lifetime ≈ %.0f minutes\n", mean/60)
	// Output:
	// mean lifetime ≈ 198 minutes
}
