package core

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/ctmc"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
)

// harvestingModel builds a three-state workload: active (drain),
// harvest (charge at the given negative current) and off (nothing).
func harvestingModel(t *testing.T, harvestCurrent float64) mrm.KiBaMRM {
	t.Helper()
	var b ctmc.Builder
	b.Transition("active", "harvest", 0.5)
	b.Transition("harvest", "active", 0.5)
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return mrm.KiBaMRM{
		Workload:      chain,
		Currents:      []float64{0.96, harvestCurrent},
		Initial:       chain.PointDistribution(chain.Index("active")),
		Battery:       kibam.Params{Capacity: 7200, C: 1, K: 0},
		AllowCharging: true,
	}
}

func TestChargingRequiresFlag(t *testing.T) {
	m := harvestingModel(t, -0.2)
	m.AllowCharging = false
	if _, err := Build(m, 100, Options{}); !errors.Is(err, mrm.ErrBadModel) {
		t.Errorf("negative current without flag: err = %v", err)
	}
}

func TestChargingExtendsLifetime(t *testing.T) {
	times := []float64{15000, 22000}
	noHarvest := harvestingModel(t, 0)
	noHarvest.AllowCharging = false
	withHarvest := harvestingModel(t, -0.4)

	en, err := Build(noHarvest, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := en.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}
	eh, err := Build(withHarvest, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rh, err := eh.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		if rh.EmptyProb[k] >= rn.EmptyProb[k] {
			t.Errorf("t=%v: harvesting Pr[empty] %v not below idle-recovery %v",
				times[k], rh.EmptyProb[k], rn.EmptyProb[k])
		}
	}
}

func TestChargingMonotoneInHarvestRate(t *testing.T) {
	probe := []float64{18000}
	prev := 1.1
	for _, harvest := range []float64{0, -0.2, -0.5, -0.9} {
		m := harvestingModel(t, harvest)
		e, err := Build(m, 100, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.LifetimeCDF(probe)
		if err != nil {
			t.Fatal(err)
		}
		if res.EmptyProb[0] >= prev {
			t.Errorf("harvest=%v: Pr[empty] %v did not decrease (prev %v)", harvest, res.EmptyProb[0], prev)
		}
		prev = res.EmptyProb[0]
	}
}

func TestChargingGeneratorStillValid(t *testing.T) {
	e, err := Build(harvestingModel(t, -0.3), 400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := e.Generator()
	for r := 0; r < g.Rows(); r++ {
		if s := g.RowSum(r); math.Abs(s) > 1e-9 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
	// The top level must absorb surplus: the charging state at j1 =
	// n1-1 has no upward transition.
	top := e.index(1, e.n1-1, 0)
	g.Row(top, func(col int, v float64) {
		if col != top && v > 0 {
			// Only workload transitions allowed from the full level.
			if col != e.index(0, e.n1-1, 0) {
				t.Fatalf("unexpected transition from full level to %d", col)
			}
		}
	})
}

func TestChargingSurvivalWithStrongHarvest(t *testing.T) {
	// Net-positive harvesting (spends half the time charging faster
	// than it drains): over a moderate horizon the battery should very
	// likely survive.
	m := harvestingModel(t, -2.0)
	e, err := Build(m, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.LifetimeCDF([]float64{20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.EmptyProb[0] > 0.05 {
		t.Errorf("strong harvesting: Pr[empty at 20000] = %v", res.EmptyProb[0])
	}
	// No MeanLifetime check here: with net-positive harvesting the mean
	// absorption time is astronomically large (exponential in the level
	// count) and the linear solve rightly fails to converge.
}

func TestChargingTwoWellGrid(t *testing.T) {
	// Charging must compose with the two-well battery: bound-charge
	// transfer keeps flowing while the harvest state refills y1.
	var b ctmc.Builder
	b.Transition("drain", "charge", 1)
	b.Transition("charge", "drain", 1)
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.KiBaMRM{
		Workload:      chain,
		Currents:      []float64{0.96, -0.3},
		Initial:       chain.PointDistribution(0),
		Battery:       kibam.Params{Capacity: 7200, C: 0.625, K: 4.5e-5},
		AllowCharging: true,
	}
	e, err := Build(m, 300, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.LifetimeCDF([]float64{10000, 20000, 40000})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for k, p := range res.EmptyProb {
		if p < prev-1e-9 || p > 1 {
			t.Fatalf("CDF invalid at %d: %v", k, res.EmptyProb)
		}
		prev = p
	}
}
