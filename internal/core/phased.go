package core

import (
	"errors"
	"fmt"
	"math"

	"batlife/internal/ctmc"
	"batlife/internal/mrm"
)

// ErrPhaseMismatch reports phased models that cannot be chained.
var ErrPhaseMismatch = errors.New("core: phased models are incompatible")

// ModelPhase is one segment of a time-inhomogeneous battery scenario: a
// KiBaMRM in force for Duration seconds. Successive phases must share
// the workload state space and the battery, so that the expanded chains
// have identical grids and the probability vector can be handed from
// one phase to the next — e.g. a device with a heavy daytime and a
// light nighttime profile.
type ModelPhase struct {
	// Model is the workload/battery coupling during this phase. Only
	// the workload rates and currents may differ between phases.
	Model mrm.KiBaMRM
	// Duration is the phase length in seconds; the final phase may be
	// +Inf.
	Duration float64
}

// PhasedLifetimeCDF computes Pr{battery empty at t} for a scenario that
// switches between workload models at fixed instants (the paper's
// time-inhomogeneous MRMs of Section 4.1, in piecewise-constant form).
// All phases are discretised with the same step delta.
func PhasedLifetimeCDF(phases []ModelPhase, delta float64, times []float64, opts Options) (*Result, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("%w: no phases", ErrPhaseMismatch)
	}
	first, err := Build(phases[0].Model, delta, opts)
	if err != nil {
		return nil, err
	}
	chainPhases := make([]ctmc.Phase, len(phases))
	chainPhases[0] = ctmc.Phase{Generator: first.gen, Duration: phases[0].Duration}
	for i, ph := range phases[1:] {
		if err := checkPhaseCompat(phases[0].Model, ph.Model); err != nil {
			return nil, fmt.Errorf("phase %d: %w", i+1, err)
		}
		e, err := Build(ph.Model, delta, opts)
		if err != nil {
			return nil, fmt.Errorf("phase %d: %w", i+1, err)
		}
		chainPhases[i+1] = ctmc.Phase{Generator: e.gen, Duration: ph.Duration}
	}

	n := phases[0].Model.Workload.NumStates()
	w := make([]float64, first.NumStates())
	for j2 := 0; j2 < first.n2; j2++ {
		for i := 0; i < n; i++ {
			w[first.index(i, 0, j2)] = 1
		}
	}
	res, err := ctmc.PiecewiseTransientFunctional(chainPhases, first.alpha, w, times, ctmc.TransientOptions{
		Epsilon:     opts.Epsilon,
		Workers:     opts.Workers,
		OnIteration: opts.OnIteration,
	})
	if err != nil {
		return nil, fmt.Errorf("core: phased lifetime CDF: %w", err)
	}
	probs := res.Values
	for k, p := range probs {
		probs[k] = math.Min(1, math.Max(0, p))
	}
	return &Result{
		Times:      res.Times,
		EmptyProb:  probs,
		Iterations: res.Iterations,
		Rate:       res.Rate,
		States:     first.NumStates(),
		NNZ:        first.NNZ(),
	}, nil
}

// checkPhaseCompat checks that two phase models share the structure the grid
// hand-off requires.
func checkPhaseCompat(a, b mrm.KiBaMRM) error {
	if a.Workload.NumStates() != b.Workload.NumStates() {
		return fmt.Errorf("%w: %d vs %d workload states",
			ErrPhaseMismatch, a.Workload.NumStates(), b.Workload.NumStates())
	}
	if a.Battery != b.Battery {
		return fmt.Errorf("%w: batteries differ (%+v vs %+v)", ErrPhaseMismatch, a.Battery, b.Battery)
	}
	return nil
}
