package core

import (
	"errors"
	"fmt"
	"math"

	"batlife/internal/ctmc"
	"batlife/internal/mrm"
)

// ErrPhaseMismatch reports phased models that cannot be chained.
var ErrPhaseMismatch = errors.New("core: phased models are incompatible")

// ModelPhase is one segment of a time-inhomogeneous battery scenario: a
// KiBaMRM in force for Duration seconds. Successive phases must share
// the workload state space and the battery, so that the expanded chains
// have identical grids and the probability vector can be handed from
// one phase to the next — e.g. a device with a heavy daytime and a
// light nighttime profile.
type ModelPhase struct {
	// Model is the workload/battery coupling during this phase. Only
	// the workload rates and currents may differ between phases.
	Model mrm.KiBaMRM
	// Duration is the phase length in seconds; the final phase may be
	// +Inf.
	Duration float64
}

// PhasedLifetimeCDF computes Pr{battery empty at t} for a scenario that
// switches between workload models at fixed instants (the paper's
// time-inhomogeneous MRMs of Section 4.1, in piecewise-constant form).
// All phases are discretised with the same step delta.
func PhasedLifetimeCDF(phases []ModelPhase, delta float64, times []float64, opts Options) (*Result, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("%w: no phases", ErrPhaseMismatch)
	}
	xs := make([]*Expanded, len(phases))
	durations := make([]float64, len(phases))
	for i, ph := range phases {
		if i > 0 {
			if err := checkPhaseCompat(phases[0].Model, ph.Model); err != nil {
				return nil, fmt.Errorf("phase %d: %w", i, err)
			}
		}
		e, err := Build(ph.Model, delta, opts)
		if err != nil {
			if i > 0 {
				err = fmt.Errorf("phase %d: %w", i, err)
			}
			return nil, err
		}
		xs[i], durations[i] = e, ph.Duration
	}
	return PhasedLifetimeCDFExpanded(xs, durations, times, SolveOptions{
		Epsilon:     opts.Epsilon,
		Workers:     opts.Workers,
		OnIteration: opts.OnIteration,
	})
}

// PhasedLifetimeCDFExpanded runs the piecewise transient solve over
// already-expanded phases — e.g. instances served by an engine cache —
// with full SolveOptions threading (shared pool, iteration budget,
// cancellation, telemetry). Phase i's chain is in force for
// durations[i] seconds; the final duration may be +Inf. All phases must
// share the battery, the workload state count and the step Δ, so the
// probability vector can be handed across phase boundaries.
func PhasedLifetimeCDFExpanded(phases []*Expanded, durations []float64, times []float64, so SolveOptions) (*Result, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("%w: no phases", ErrPhaseMismatch)
	}
	if len(durations) != len(phases) {
		return nil, fmt.Errorf("%w: %d durations for %d phases", ErrPhaseMismatch, len(durations), len(phases))
	}
	first := phases[0]
	chainPhases := make([]ctmc.Phase, len(phases))
	chainPhases[0] = ctmc.Phase{Generator: first.gen, Duration: durations[0]}
	for i, e := range phases[1:] {
		if err := checkPhaseCompat(first.model, e.model); err != nil {
			return nil, fmt.Errorf("phase %d: %w", i+1, err)
		}
		//numlint:ignore floatcmp the grid step is a configuration constant shared verbatim across phases, not a computed value
		if e.delta != first.delta {
			return nil, fmt.Errorf("%w: phase %d step %v vs %v", ErrPhaseMismatch, i+1, e.delta, first.delta)
		}
		chainPhases[i+1] = ctmc.Phase{Generator: e.gen, Duration: durations[i+1]}
	}

	n := first.model.Workload.NumStates()
	w := make([]float64, first.NumStates())
	for j2 := 0; j2 < first.n2; j2++ {
		for i := 0; i < n; i++ {
			w[first.index(i, 0, j2)] = 1
		}
	}
	res, err := ctmc.PiecewiseTransientFunctional(chainPhases, first.alpha, w, times, first.transientOpts(so))
	if err != nil {
		return nil, fmt.Errorf("core: phased lifetime CDF: %w", err)
	}
	probs := res.Values
	for k, p := range probs {
		probs[k] = math.Min(1, math.Max(0, p))
	}
	return &Result{
		Times:      res.Times,
		EmptyProb:  probs,
		Iterations: res.Iterations,
		Rate:       res.Rate,
		States:     first.NumStates(),
		NNZ:        first.NNZ(),
	}, nil
}

// checkPhaseCompat checks that two phase models share the structure the grid
// hand-off requires.
func checkPhaseCompat(a, b mrm.KiBaMRM) error {
	if a.Workload.NumStates() != b.Workload.NumStates() {
		return fmt.Errorf("%w: %d vs %d workload states",
			ErrPhaseMismatch, a.Workload.NumStates(), b.Workload.NumStates())
	}
	if a.Battery != b.Battery {
		return fmt.Errorf("%w: batteries differ (%+v vs %+v)", ErrPhaseMismatch, a.Battery, b.Battery)
	}
	return nil
}
