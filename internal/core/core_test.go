package core

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/ctmc"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/units"
	"batlife/internal/workload"
)

// onOffModel builds the Figure 7/8 KiBaMRM: Erlang-1 on/off workload at
// f = 1 Hz drawing 0.96 A, on a 7200 As battery.
func onOffModel(t *testing.T, c, k float64) mrm.KiBaMRM {
	t.Helper()
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		t.Fatal(err)
	}
	return mrm.KiBaMRM{
		Workload: w.Chain,
		Currents: w.Currents,
		Initial:  w.Initial,
		Battery:  kibam.Params{Capacity: 7200, C: c, K: k},
	}
}

// alwaysOnModel is a degenerate single-state workload drawing a constant
// current; with c = 1 its lifetime CDF has the Erlang closed form.
func alwaysOnModel(t *testing.T, capacity, current float64) mrm.KiBaMRM {
	t.Helper()
	var b ctmc.Builder
	b.State("on")
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return mrm.KiBaMRM{
		Workload: chain,
		Currents: []float64{current},
		Initial:  []float64{1},
		Battery:  kibam.Params{Capacity: capacity, C: 1, K: 0},
	}
}

func erlangCDF(k int, rate, t float64) float64 {
	sum, term := 0.0, 1.0
	for i := 0; i < k; i++ {
		if i > 0 {
			term *= rate * t / float64(i)
		}
		sum += term
	}
	return 1 - math.Exp(-rate*t)*sum
}

func TestBuildValidatesModel(t *testing.T) {
	m := onOffModel(t, 1, 0)
	m.Currents = m.Currents[:1]
	if _, err := Build(m, 100, Options{}); !errors.Is(err, mrm.ErrBadModel) {
		t.Errorf("err = %v, want ErrBadModel", err)
	}
}

func TestBuildRejectsBadDelta(t *testing.T) {
	m := onOffModel(t, 1, 0)
	for _, delta := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := Build(m, delta, Options{}); !errors.Is(err, ErrBadGrid) {
			t.Errorf("delta %v: err = %v, want ErrBadGrid", delta, err)
		}
	}
	// 7000 does not divide 7200.
	if _, err := Build(m, 7000, Options{}); !errors.Is(err, ErrBadGrid) {
		t.Errorf("non-divisor delta: err = %v, want ErrBadGrid", err)
	}
	// Two-well battery: delta must divide both wells.
	m2 := onOffModel(t, 0.625, 4.5e-5)
	if _, err := Build(m2, 4500, Options{}); !errors.Is(err, ErrBadGrid) {
		t.Errorf("non-divisor of bound well: err = %v, want ErrBadGrid", err)
	}
	// Delta equal to the whole available well leaves a single level.
	if _, err := Build(m, 7200, Options{}); !errors.Is(err, ErrBadGrid) {
		t.Errorf("single-level grid: err = %v, want ErrBadGrid", err)
	}
}

func TestPaperStateCountDelta5(t *testing.T) {
	// Section 6.1: "the CTMC for Δ = 5 has 2882 states" (on/off model,
	// C = 7200 As, c = 1).
	e, err := Build(onOffModel(t, 1, 0), 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumStates() != 2882 {
		t.Errorf("states = %d, paper reports 2882", e.NumStates())
	}
}

func TestGridDimensions(t *testing.T) {
	e, err := Build(onOffModel(t, 0.625, 4.5e-5), 25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := e.Levels()
	// u1 = 4500, u2 = 2700: 181 and 109 levels.
	if n1 != 181 || n2 != 109 {
		t.Errorf("levels = (%d, %d), want (181, 109)", n1, n2)
	}
	if e.NumStates() != 181*109*2 {
		t.Errorf("states = %d", e.NumStates())
	}
	if e.Delta() != 25 {
		t.Errorf("delta = %v", e.Delta())
	}
}

func TestGeneratorRowSums(t *testing.T) {
	// Q* must be a proper generator: rows sum to zero (absorbing rows
	// are all-zero).
	e, err := Build(onOffModel(t, 0.625, 4.5e-5), 900, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := e.Generator()
	for r := 0; r < g.Rows(); r++ {
		if s := g.RowSum(r); math.Abs(s) > 1e-9 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestEmptyStatesAbsorbing(t *testing.T) {
	e, err := Build(onOffModel(t, 0.625, 4.5e-5), 900, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 2 // workload states
	g := e.Generator()
	for j2 := 0; j2 < e.n2; j2++ {
		for i := 0; i < n; i++ {
			row := e.index(i, 0, j2)
			count := 0
			g.Row(row, func(int, float64) { count++ })
			if count != 0 {
				t.Fatalf("empty state (i=%d, j2=%d) has %d transitions", i, j2, count)
			}
		}
	}
}

func TestEmptyRecoveryOption(t *testing.T) {
	e, err := Build(onOffModel(t, 0.625, 4.5e-5), 900, Options{AllowEmptyRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	// With recovery allowed, an empty state with bound charge must have
	// a transfer transition back up.
	g := e.Generator()
	row := e.index(0, 0, 1)
	found := false
	g.Row(row, func(col int, v float64) {
		if col == e.index(0, 1, 0) && v > 0 {
			found = true
		}
	})
	if !found {
		t.Error("no recovery transition out of the empty slice")
	}
}

func TestErlangClosedFormDegenerate(t *testing.T) {
	// Single always-on state, c = 1: reaching j1 = 0 from j1 = C/Δ − 1
	// takes C/Δ − 1 consumption jumps at rate I/Δ, so the lifetime CDF
	// is an Erlang(C/Δ − 1, I/Δ) CDF.
	const capacity, current, delta = 1000.0, 2.0, 50.0
	m := alwaysOnModel(t, capacity, current)
	e, err := Build(m, delta, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jumps := int(capacity/delta) - 1
	rate := current / delta
	times := []float64{100, 300, 475, 500, 525, 700}
	res, err := e.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}
	for k, tm := range times {
		want := erlangCDF(jumps, rate, tm)
		if math.Abs(res.EmptyProb[k]-want) > 1e-8 {
			t.Errorf("t=%v: Pr = %v, want Erlang %v", tm, res.EmptyProb[k], want)
		}
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	e, err := Build(onOffModel(t, 0.625, 4.5e-5), 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{2000, 6000, 10000, 14000, 18000, 25000}
	res, err := e.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for k, p := range res.EmptyProb {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		if p < prev-1e-9 {
			t.Fatalf("CDF decreases at t=%v: %v -> %v", times[k], prev, p)
		}
		prev = p
	}
	if res.EmptyProb[0] > 1e-6 {
		t.Errorf("battery empty too early: Pr[empty at 2000] = %v", res.EmptyProb[0])
	}
	if res.EmptyProb[len(times)-1] < 0.999 {
		t.Errorf("battery not empty at 25000 s: %v", res.EmptyProb[len(times)-1])
	}
}

func TestConvergenceWithDelta(t *testing.T) {
	// Figure 7: as Δ decreases the approximation approaches the (nearly
	// deterministic) true lifetime at 15000 s. The CDF evaluated just
	// before the true lifetime must shrink with Δ, and just after must
	// grow: the phase-type approximation sharpens.
	var before, after []float64
	for _, delta := range []float64{100, 50, 25} {
		e, err := Build(onOffModel(t, 1, 0), delta, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.LifetimeCDF([]float64{13000, 17000})
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, res.EmptyProb[0])
		after = append(after, res.EmptyProb[1])
	}
	for i := 1; i < len(before); i++ {
		if before[i] >= before[i-1] {
			t.Errorf("CDF(13000) did not shrink with delta: %v", before)
		}
		if after[i] <= after[i-1] {
			t.Errorf("CDF(17000) did not grow with delta: %v", after)
		}
	}
}

func TestMedianNearDeterministicLifetime(t *testing.T) {
	// The on/off workload at f = 1 Hz spends half its time on, so the
	// c = 1 battery dies around 2·C/I = 15000 s. The CDF at the median
	// must be near one half for a reasonably fine grid.
	e, err := Build(onOffModel(t, 1, 0), 25, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.LifetimeCDF([]float64{15000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.EmptyProb[0]-0.5) > 0.06 {
		t.Errorf("Pr[empty at 15000] = %v, want ≈ 0.5", res.EmptyProb[0])
	}
}

func TestBoundChargeExtendsLifetime(t *testing.T) {
	// Figure 9's ordering at a fixed time in the transition region:
	// (C=4500, c=1) dies first, (C=7200, c=0.625) second,
	// (C=7200, c=1) last.
	delta := 100.0
	build := func(capacity, c, k float64) float64 {
		m := onOffModel(t, c, k)
		m.Battery = kibam.Params{Capacity: capacity, C: c, K: k}
		e, err := Build(m, delta, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.LifetimeCDF([]float64{12000})
		if err != nil {
			t.Fatal(err)
		}
		return res.EmptyProb[0]
	}
	small := build(4500, 1, 0)
	twoWell := build(7200, 0.625, 4.5e-5)
	big := build(7200, 1, 0)
	if !(small > twoWell && twoWell > big) {
		t.Errorf("Pr[empty at 12000]: C=4500 %v, two-well %v, C=7200 %v — want strictly decreasing",
			small, twoWell, big)
	}
}

func TestRewardDependentGenerator(t *testing.T) {
	// A device that throttles its on-rate when the battery is low must
	// outlive the unthrottled one.
	m := onOffModel(t, 1, 0)
	plain, err := Build(m, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	onIdx := m.Workload.Index("on0")
	throttled, err := Build(m, 100, Options{
		TransitionRate: func(from, to int, y1, _, base float64) float64 {
			if to == onIdx && y1 < 2000 {
				return base / 4 // enter the on state four times less often
			}
			return base
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tp := []float64{15000}
	rp, err := plain.LifetimeCDF(tp)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := throttled.LifetimeCDF(tp)
	if err != nil {
		t.Fatal(err)
	}
	if rt.EmptyProb[0] >= rp.EmptyProb[0] {
		t.Errorf("throttled Pr[empty] %v not below plain %v", rt.EmptyProb[0], rp.EmptyProb[0])
	}
}

func TestStateDistributionDrainsDownward(t *testing.T) {
	e, err := Build(onOffModel(t, 1, 0), 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	early, err := e.StateDistribution(1000)
	if err != nil {
		t.Fatal(err)
	}
	late, err := e.StateDistribution(14000)
	if err != nil {
		t.Fatal(err)
	}
	meanLevel := func(d []float64) float64 {
		m, tot := 0.0, 0.0
		for j, p := range d {
			m += float64(j) * p
			tot += p
		}
		if math.Abs(tot-1) > 1e-9 {
			t.Fatalf("marginal sums to %v", tot)
		}
		return m
	}
	if meanLevel(late) >= meanLevel(early) {
		t.Error("mean charge level did not decrease over time")
	}
}

func TestResultMetadata(t *testing.T) {
	e, err := Build(onOffModel(t, 1, 0), 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.LifetimeCDF([]float64{5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != e.NumStates() || res.NNZ != e.NNZ() {
		t.Errorf("metadata states/nnz = %d/%d, want %d/%d", res.States, res.NNZ, e.NumStates(), e.NNZ())
	}
	if res.Iterations <= 0 || res.Rate <= 0 {
		t.Errorf("iterations %d, rate %v", res.Iterations, res.Rate)
	}
	// Uniformisation constant: dominated by the workload rate λ = 2
	// plus consumption I/Δ.
	if res.Rate < 2 || res.Rate > 2.2 {
		t.Errorf("uniformisation rate = %v, want ≈ 2.05", res.Rate)
	}
}
