// Package core implements the paper's contribution: the Markovian
// approximation algorithm of Section 5, which computes the battery
// lifetime distribution of a KiBaMRM — a reward-inhomogeneous Markov
// reward model whose two accumulated rewards are the charge wells of the
// Kinetic Battery Model.
//
// The uncountable state space S × [0, u1] × [0, u2] of the MRM is broken
// down to a finite grid with step Δ: a state (i, j1, j2) of the derived
// pure CTMC means the workload is in state i, the available charge lies
// in (j1Δ, (j1+1)Δ] and the bound charge in (j2Δ, (j2+1)Δ]. Three kinds
// of transitions arise (Section 5.2):
//
//   - workload transitions (i, j1, j2) → (i′, j1, j2) with the original
//     rate Q_{i,i′}(j1Δ, j2Δ);
//   - consumption (i, j1, j2) → (i, j1−1, j2) with rate I_i/Δ;
//   - bound-to-available transfer (i, j1, j2) → (i, j1+1, j2−1) with
//     rate k(h2 − h1)/Δ = k(j2/(1−c) − j1/c).
//
// States with j1 = 0 are absorbing — the battery is empty, and the
// lifetime is defined as the first time this happens — so the battery
// lifetime distribution Pr{battery empty at t} is the transient
// probability mass on the j1 = 0 slice, obtained by uniformisation. The
// approximation is a phase-type distribution that converges to the true
// lifetime distribution as Δ → 0.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"batlife/internal/check"
	"batlife/internal/ctmc"
	"batlife/internal/mrm"
	"batlife/internal/obs"
	"batlife/internal/sparse"
)

// ErrBadGrid reports an unusable discretisation step.
var ErrBadGrid = errors.New("core: invalid discretisation")

// Options tunes the construction and solution of the expanded CTMC.
type Options struct {
	// Epsilon bounds the truncated Poisson tail mass of the transient
	// solve; zero selects 1e-12.
	Epsilon float64
	// Workers sets the SpMV parallelism; zero selects runtime.NumCPU().
	Workers int
	// AllowEmptyRecovery keeps the j1 = 0 states live instead of
	// absorbing. The paper makes them absorbing (lifetime = first
	// passage) but notes "the recovery transitions could easily be
	// included"; this flag includes them, turning the computed measure
	// into Pr{battery empty at time t} without the first-passage
	// interpretation.
	AllowEmptyRecovery bool
	// TransitionRate, when non-nil, overrides the workload generator
	// with a reward-dependent rate Q_{i,i′}(y1, y2), evaluated at the
	// grid point (j1Δ, j2Δ). Entries for which the underlying chain has
	// no transition are not consulted; return the given base rate to
	// leave a transition unchanged.
	TransitionRate func(from, to int, y1, y2, base float64) float64
	// OnIteration is forwarded to the uniformisation engine.
	OnIteration func(done, total int)
	// Obs, when non-nil, receives expansion telemetry (state/NNZ counts,
	// build timing, a "core.build" span) and becomes the default
	// registry for solves on the built model. It does not affect the
	// result and is excluded from engine fingerprints.
	Obs *obs.Registry
	// Context, when non-nil, carries the request-scoped trace: the
	// "core.build" span is parented under the span the context carries
	// (see obs.StartSpan), so daemon builds appear inside their
	// request's trace. Like Obs it does not affect the result and is
	// excluded from engine fingerprints.
	Context context.Context
}

// SolveOptions tunes one transient solve on an already-built Expanded.
// Zero fields fall back to the Options the model was built with (and
// from there to the engine defaults), so an Expanded built once can be
// queried under many numerical settings — the substrate of the cached
// Solver facade.
type SolveOptions struct {
	// Epsilon bounds the truncated Poisson tail mass; zero falls back
	// to the build Options, then to 1e-12.
	Epsilon float64
	// Workers sets the SpMV parallelism; ignored when Pool is set.
	Workers int
	// Pool, when non-nil, supplies a shared SpMV worker pool.
	Pool *sparse.Pool
	// MaxIterations caps uniformisation steps; exceeding it fails the
	// solve with ctmc.ErrIterationBudget. Zero is unlimited.
	MaxIterations int
	// Context cancels the iteration loop between steps.
	Context context.Context
	// OnIteration is forwarded to the uniformisation engine.
	OnIteration func(done, total int)
	// Obs is forwarded to the uniformisation engine; nil falls back to
	// the build Options.
	Obs *obs.Registry
}

// Expanded is the derived pure CTMC Q* for one model and step size. It
// is immutable after Build apart from the lazily-constructed, internally
// synchronised uniformisation operator, so one Expanded may serve
// concurrent solves (e.g. parallel scenario sweeps sharing a cache).
type Expanded struct {
	model mrm.KiBaMRM
	delta float64
	// n1, n2 are the level counts of the two reward dimensions.
	n1, n2 int
	gen    *sparse.CSR
	alpha  []float64
	opts   Options

	// uniOnce guards the lazily-built uniformised operator shared by
	// every transient solve on this model.
	uniOnce sync.Once
	uni     *ctmc.Uniformized
	uniErr  error
}

// Build discretises the model's reward space with step delta (in
// ampere-seconds) and assembles the expanded generator. The step must
// divide both well capacities c·C and (1−c)·C.
func Build(model mrm.KiBaMRM, delta float64, opts Options) (*Expanded, error) {
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if delta <= 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return nil, fmt.Errorf("%w: delta %v", ErrBadGrid, delta)
	}
	u1 := model.Battery.C * model.Battery.Capacity
	u2 := (1 - model.Battery.C) * model.Battery.Capacity
	m1, ok1 := exactDiv(u1, delta)
	m2, ok2 := exactDiv(u2, delta)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("%w: delta %v does not divide the well capacities %v and %v",
			ErrBadGrid, delta, u1, u2)
	}
	e := &Expanded{
		model: model,
		delta: delta,
		n1:    m1 + 1,
		n2:    m2 + 1,
		opts:  opts,
	}
	var (
		span  *obs.Span
		start time.Time
	)
	if reg := opts.Obs; reg != nil {
		start = time.Now()
		_, span = obs.StartSpan(opts.Context, reg, "core.build",
			obs.Float("delta", delta),
			obs.Int("n1", int64(e.n1)),
			obs.Int("n2", int64(e.n2)))
	}
	if err := e.assemble(); err != nil {
		span.End(obs.String("error", err.Error()))
		return nil, err
	}
	if reg := opts.Obs; reg != nil {
		reg.Counter("core_expansions_total").Inc()
		reg.Histogram("core_expanded_states").Observe(float64(e.NumStates()))
		reg.Histogram("core_expanded_nnz").Observe(float64(e.NNZ()))
		reg.Histogram("core_build_seconds").ObserveDuration(time.Since(start).Seconds())
		span.End(
			obs.Int("states", int64(e.NumStates())),
			obs.Int("nnz", int64(e.NNZ())))
	}
	return e, nil
}

// exactDiv returns x/d as an integer if d divides x (within rounding).
//
//numlint:requires positive(d)
func exactDiv(x, d float64) (int, bool) {
	numlintContract_exactDiv(d)
	q := x / d
	r := math.Round(q)
	if math.Abs(q-r) > 1e-9*(1+math.Abs(q)) {
		return 0, false
	}
	return int(r), true
}

// index maps (i, j1, j2) to the flat state index.
func (e *Expanded) index(i, j1, j2 int) int {
	n := e.model.Workload.NumStates()
	return (j1*e.n2+j2)*n + i
}

// assemble builds the generator Q* and the initial distribution α*.
func (e *Expanded) assemble() error {
	n := e.model.Workload.NumStates()
	total := n * e.n1 * e.n2
	k := e.model.Battery.K
	c := e.model.Battery.C
	delta := e.delta

	// Initial distribution: the battery starts full, a1 = c·C falls in
	// the interval (j1Δ, (j1+1)Δ] with j1 = u1/Δ − 1, and likewise for
	// the bound well (j2 = 0 when there is no bound well).
	j1init := e.n1 - 2
	if e.n1 < 3 {
		return fmt.Errorf("%w: available well resolves to %d levels; decrease delta", ErrBadGrid, e.n1)
	}
	j2init := e.n2 - 2
	if e.n2 == 1 {
		j2init = 0
	}
	e.alpha = make([]float64, total)
	for i := 0; i < n; i++ {
		e.alpha[e.index(i, j1init, j2init)] = e.model.Initial[i]
	}

	// Estimate nonzeros: per live state one consumption, one transfer,
	// the workload row and a diagonal.
	workloadNNZ := e.model.Workload.Generator().NNZ()
	b := sparse.NewBuilder(total, total, e.n1*e.n2*(workloadNNZ+2*n)+total)

	for j1 := 0; j1 < e.n1; j1++ {
		if j1 == 0 && !e.opts.AllowEmptyRecovery {
			continue // battery empty: absorbing, no outgoing transitions
		}
		y1 := float64(j1) * delta
		for j2 := 0; j2 < e.n2; j2++ {
			y2 := float64(j2) * delta
			// Transfer rate between wells at this grid point, the
			// paper's k(j2/(1−c) − j1/c).
			transfer := 0.0
			if k > 0 && c < 1 && j2 > 0 {
				transfer = k * (y2/(1-c) - y1/c) / delta
				if transfer < 0 {
					transfer = 0
				}
			}
			for i := 0; i < n; i++ {
				from := e.index(i, j1, j2)
				diag := 0.0
				// Workload transitions at fixed reward levels.
				e.model.Workload.Generator().Row(i, func(col int, v float64) {
					if col == i || v <= 0 {
						return
					}
					rate := v
					if e.opts.TransitionRate != nil {
						rate = e.opts.TransitionRate(i, col, y1, y2, v)
						if rate < 0 || math.IsNaN(rate) {
							rate = 0
						}
					}
					if rate == 0 {
						return
					}
					b.Add(from, e.index(col, j1, j2), rate)
					diag -= rate
				})
				// Consumption: one level down in the available well.
				// Charging states (negative current, AllowCharging)
				// instead move one level up; surplus at the top level
				// is discarded.
				if current := e.model.Currents[i]; current > 0 && j1 > 0 {
					b.Add(from, e.index(i, j1-1, j2), current/delta)
					diag -= current / delta
				} else if current < 0 && j1 < e.n1-1 {
					b.Add(from, e.index(i, j1+1, j2), -current/delta)
					diag -= -current / delta
				}
				// Transfer: up in the available well, down in the bound
				// well.
				if transfer > 0 && j1 < e.n1-1 {
					b.Add(from, e.index(i, j1+1, j2-1), transfer)
					diag -= transfer
				}
				if diag != 0 {
					b.Add(from, from, diag)
				}
			}
		}
	}
	gen, err := b.Freeze()
	if err != nil {
		return fmt.Errorf("core: assemble Q*: %w", err)
	}
	e.gen = gen
	return nil
}

// NumStates reports the size of the expanded state space N·n1·n2.
func (e *Expanded) NumStates() int {
	return e.model.Workload.NumStates() * e.n1 * e.n2
}

// NNZ reports the number of nonzero generator entries.
func (e *Expanded) NNZ() int { return e.gen.NNZ() }

// Levels reports the level counts (n1, n2) of the two reward grids.
func (e *Expanded) Levels() (int, int) { return e.n1, e.n2 }

// Delta reports the discretisation step.
func (e *Expanded) Delta() float64 { return e.delta }

// Generator exposes the expanded generator for inspection and ablation
// experiments. Callers must not modify it.
func (e *Expanded) Generator() *sparse.CSR { return e.gen }

// Operator returns the uniformised transposed operator (I + Q*/q)ᵀ of
// the expanded chain, building it on first use and reusing it — together
// with its cached Fox–Glynn weight tables — for every subsequent
// transient solve on this model.
func (e *Expanded) Operator() (*ctmc.Uniformized, error) {
	e.uniOnce.Do(func() {
		e.uni, e.uniErr = ctmc.NewUniformized(e.gen, ctmc.TransientOptions{})
	})
	if e.uniErr != nil {
		return nil, fmt.Errorf("core: uniformised operator: %w", e.uniErr)
	}
	return e.uni, nil
}

// transientOpts merges per-solve options with the build-time defaults.
func (e *Expanded) transientOpts(so SolveOptions) ctmc.TransientOptions {
	eps := so.Epsilon
	if eps <= 0 {
		eps = e.opts.Epsilon
	}
	workers := so.Workers
	if workers == 0 {
		workers = e.opts.Workers
	}
	onIter := so.OnIteration
	if onIter == nil {
		onIter = e.opts.OnIteration
	}
	reg := so.Obs
	if reg == nil {
		reg = e.opts.Obs
	}
	return ctmc.TransientOptions{
		Epsilon:       eps,
		Workers:       workers,
		Pool:          so.Pool,
		MaxIterations: so.MaxIterations,
		Context:       so.Context,
		OnIteration:   onIter,
		Obs:           reg,
	}
}

// Result is a computed battery lifetime distribution.
type Result struct {
	// Times are the evaluation points, in seconds.
	Times []float64
	// EmptyProb[k] approximates Pr{battery empty at Times[k]}.
	EmptyProb []float64
	// Iterations is the number of uniformisation steps performed.
	Iterations int
	// Rate is the uniformisation constant of the expanded chain.
	Rate float64
	// States and NNZ echo the expanded chain size.
	States, NNZ int
	// FoxGlynnLeft and FoxGlynnRight delimit the Poisson truncation
	// window the solve committed to; SpMVs counts matrix-vector
	// products. See ctmc.Result for the exact semantics.
	FoxGlynnLeft, FoxGlynnRight int
	SpMVs                       int
}

// LifetimeCDF computes Pr{battery empty at t} — the approximation of
// equation (4) — at each of the given times (seconds, ascending).
func (e *Expanded) LifetimeCDF(times []float64) (*Result, error) {
	return e.LifetimeCDFOpts(times, SolveOptions{})
}

// LifetimeCDFOpts is LifetimeCDF with per-solve options; zero fields
// fall back to the build Options. The solve reuses the model's cached
// uniformisation operator, so repeated queries pay only the iteration
// loop.
func (e *Expanded) LifetimeCDFOpts(times []float64, so SolveOptions) (*Result, error) {
	n := e.model.Workload.NumStates()
	w := make([]float64, e.NumStates())
	for j2 := 0; j2 < e.n2; j2++ {
		for i := 0; i < n; i++ {
			w[e.index(i, 0, j2)] = 1
		}
	}
	u, err := e.Operator()
	if err != nil {
		return nil, err
	}
	res, err := u.Transient(e.alpha, w, times, e.transientOpts(so))
	if err != nil {
		return nil, fmt.Errorf("core: lifetime CDF: %w", err)
	}
	probs := res.Values
	for k, p := range probs {
		// Uniformisation guarantees probabilities up to rounding;
		// clamp the usual ±1e-15 noise.
		probs[k] = math.Min(1, math.Max(0, p))
	}
	return &Result{
		Times:         res.Times,
		EmptyProb:     probs,
		Iterations:    res.Iterations,
		Rate:          res.Rate,
		States:        e.NumStates(),
		NNZ:           e.NNZ(),
		FoxGlynnLeft:  res.FoxGlynnLeft,
		FoxGlynnRight: res.FoxGlynnRight,
		SpMVs:         res.SpMVs,
	}, nil
}

// LifetimeCDFBatchOpts evaluates the lifetime CDF on several time grids
// in one batched transient solve: all grids share the model's initial
// distribution and depletion functional, and every uniformisation step
// advances the whole batch through one multi-RHS product
// (sparse.Pool.MulVecMulti), so B grids cost roughly one matrix
// traversal per step instead of B. Results[k] is bit-identical to a
// solo LifetimeCDFOpts(grids[k], so) — this is how Solver.Sweep
// amortises scenarios that share one expanded CTMC.
func (e *Expanded) LifetimeCDFBatchOpts(grids [][]float64, so SolveOptions) ([]*Result, error) {
	n := e.model.Workload.NumStates()
	w := make([]float64, e.NumStates())
	for j2 := 0; j2 < e.n2; j2++ {
		for i := 0; i < n; i++ {
			w[e.index(i, 0, j2)] = 1
		}
	}
	u, err := e.Operator()
	if err != nil {
		return nil, err
	}
	alphas := make([][]float64, len(grids))
	for k := range alphas {
		alphas[k] = e.alpha
	}
	batch, err := u.TransientMulti(alphas, w, grids, e.transientOpts(so))
	if err != nil {
		return nil, fmt.Errorf("core: batched lifetime CDF: %w", err)
	}
	out := make([]*Result, len(batch))
	for k, res := range batch {
		probs := res.Values
		for j, p := range probs {
			// Uniformisation guarantees probabilities up to rounding;
			// clamp the usual ±1e-15 noise.
			probs[j] = math.Min(1, math.Max(0, p))
		}
		out[k] = &Result{
			Times:         res.Times,
			EmptyProb:     probs,
			Iterations:    res.Iterations,
			Rate:          res.Rate,
			States:        e.NumStates(),
			NNZ:           e.NNZ(),
			FoxGlynnLeft:  res.FoxGlynnLeft,
			FoxGlynnRight: res.FoxGlynnRight,
			SpMVs:         res.SpMVs,
		}
	}
	return out, nil
}

// StateDistribution returns the marginal distribution over available-
// charge levels at time t: out[j1] = Pr{Y1(t) ∈ level j1}. Useful for
// inspecting how probability mass drains toward the empty slice.
func (e *Expanded) StateDistribution(t float64) ([]float64, error) {
	u, err := e.Operator()
	if err != nil {
		return nil, err
	}
	res, err := u.Transient(e.alpha, nil, []float64{t}, e.transientOpts(SolveOptions{}))
	if err != nil {
		return nil, fmt.Errorf("core: state distribution: %w", err)
	}
	n := e.model.Workload.NumStates()
	out := make([]float64, e.n1)
	for j1 := 0; j1 < e.n1; j1++ {
		for j2 := 0; j2 < e.n2; j2++ {
			for i := 0; i < n; i++ {
				out[j1] += res.Distributions[0][e.index(i, j1, j2)]
			}
		}
	}
	// The marginal sums to the transient mass (1 minus truncation tail),
	// so assert non-negativity rather than exact conservation.
	check.NonNegative("core.StateDistribution", out)
	return out, nil
}
