package core

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/units"
	"batlife/internal/workload"
)

func TestPhasedMatchesHomogeneous(t *testing.T) {
	model := onOffModel(t, 0.625, 4.5e-5)
	times := []float64{5000, 12000, 18000}
	direct, err := Build(model, 300, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PhasedLifetimeCDF([]ModelPhase{
		{Model: model, Duration: 7000},
		{Model: model, Duration: math.Inf(1)},
	}, 300, times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		if math.Abs(got.EmptyProb[k]-want.EmptyProb[k]) > 1e-8 {
			t.Errorf("t=%v: phased %v vs direct %v", times[k], got.EmptyProb[k], want.EmptyProb[k])
		}
	}
}

func TestPhasedIdlePhaseFreezesDepletion(t *testing.T) {
	// Phase 2 draws no current; during it the empty probability cannot
	// grow (no consumption, and empties are absorbing anyway).
	active := onOffModel(t, 1, 0)
	idle := active
	idle.Currents = []float64{0, 0}
	phases := []ModelPhase{
		{Model: active, Duration: 10000},
		{Model: idle, Duration: 10000},
		{Model: active, Duration: math.Inf(1)},
	}
	times := []float64{10000, 15000, 20000, 25000, 30000}
	res, err := PhasedLifetimeCDF(phases, 100, times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.EmptyProb[0]-res.EmptyProb[1]) > 1e-9 ||
		math.Abs(res.EmptyProb[1]-res.EmptyProb[2]) > 1e-9 {
		t.Errorf("CDF moved during idle phase: %v", res.EmptyProb[:3])
	}
	if res.EmptyProb[4] <= res.EmptyProb[2] {
		t.Errorf("CDF did not resume after idle phase: %v", res.EmptyProb)
	}
}

func TestPhasedDayNightOrdering(t *testing.T) {
	// A light-then-heavy schedule must deplete later than heavy-always,
	// earlier than light-always, at every time point.
	heavy := onOffModel(t, 1, 0)
	light := heavy
	light.Currents = []float64{0.24, 0}
	const nightLen = 8000.0
	times := []float64{12000, 20000, 30000}

	phased, err := PhasedLifetimeCDF([]ModelPhase{
		{Model: light, Duration: nightLen},
		{Model: heavy, Duration: math.Inf(1)},
	}, 100, times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	heavyAll, err := Build(heavy, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := heavyAll.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}
	lightAll, err := Build(light, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := lightAll.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		if !(phased.EmptyProb[k] <= hres.EmptyProb[k]+1e-9 && phased.EmptyProb[k] >= lres.EmptyProb[k]-1e-9) {
			t.Errorf("t=%v: phased %v not between light %v and heavy %v",
				times[k], phased.EmptyProb[k], lres.EmptyProb[k], hres.EmptyProb[k])
		}
	}
}

func TestPhasedMismatchErrors(t *testing.T) {
	a := onOffModel(t, 0.625, 4.5e-5)
	// Different battery.
	b := a
	b.Battery = kibam.Params{Capacity: 3600, C: 0.5, K: 1e-5}
	if _, err := PhasedLifetimeCDF([]ModelPhase{
		{Model: a, Duration: 10},
		{Model: b, Duration: math.Inf(1)},
	}, 300, []float64{5}, Options{}); !errors.Is(err, ErrPhaseMismatch) {
		t.Errorf("battery mismatch: err = %v", err)
	}
	// Different workload size.
	w, err := workload.OnOff(1, 2, units.Amperes(0.96))
	if err != nil {
		t.Fatal(err)
	}
	c := mrm.KiBaMRM{Workload: w.Chain, Currents: w.Currents, Initial: w.Initial, Battery: a.Battery}
	if _, err := PhasedLifetimeCDF([]ModelPhase{
		{Model: a, Duration: 10},
		{Model: c, Duration: math.Inf(1)},
	}, 300, []float64{5}, Options{}); !errors.Is(err, ErrPhaseMismatch) {
		t.Errorf("state-count mismatch: err = %v", err)
	}
	if _, err := PhasedLifetimeCDF(nil, 300, []float64{5}, Options{}); !errors.Is(err, ErrPhaseMismatch) {
		t.Errorf("no phases: err = %v", err)
	}
}
