// Package sim estimates battery lifetime distributions by stochastic
// simulation: CTMC workload trajectories are sampled jump by jump, and
// between jumps the battery follows the exact constant-current solution
// of the analytic KiBaM. This is the method behind the "simulation"
// curves of Figures 7, 8 and 10, which the paper obtains from 1000
// independent runs.
//
// Because the inter-jump battery evolution uses the closed form (package
// kibam) rather than time stepping, a simulated lifetime is exact given
// the sampled trajectory — all error is statistical.
package sim

import (
	"errors"
	"fmt"
	"math"

	"batlife/internal/ctmc"
	"batlife/internal/dist"
	"batlife/internal/mrm"
)

// ErrBadRun reports invalid simulation arguments.
var ErrBadRun = errors.New("sim: invalid run parameters")

// Options tunes the simulator.
type Options struct {
	// Runs is the number of independent lifetime samples; zero selects
	// 1000, the paper's count.
	Runs int
	// MaxTime censors runs that survive beyond this horizon (seconds);
	// censored lifetimes enter the empirical CDF as +Inf. Zero selects
	// 100 × Capacity / max current — far beyond any plausible lifetime.
	MaxTime float64
}

func (o Options) runs() int {
	if o.Runs == 0 {
		return 1000
	}
	return o.Runs
}

// Result bundles the empirical distributions a simulation produces.
type Result struct {
	// Lifetimes is the empirical lifetime distribution (+Inf samples
	// are censored runs).
	Lifetimes *dist.ECDF
	// WastedCharge is the empirical distribution of the bound charge
	// stranded in the battery at depletion, over the uncensored runs
	// (nil if every run was censored).
	WastedCharge *dist.ECDF
}

// Lifetimes draws independent battery lifetime samples for the KiBaMRM
// and returns their empirical distribution.
func Lifetimes(model mrm.KiBaMRM, seed int64, opts Options) (*dist.ECDF, error) {
	res, err := Run(model, seed, opts)
	if err != nil {
		return nil, err
	}
	return res.Lifetimes, nil
}

// Run draws independent samples and returns both the lifetime and the
// stranded-charge distributions.
func Run(model mrm.KiBaMRM, seed int64, opts Options) (*Result, error) {
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	runs := opts.runs()
	if runs < 0 {
		return nil, fmt.Errorf("%w: runs = %d", ErrBadRun, runs)
	}
	maxTime := opts.MaxTime
	if maxTime == 0 {
		maxI := model.MaxCurrent()
		if maxI == 0 {
			return nil, fmt.Errorf("%w: no state draws current", ErrBadRun)
		}
		maxTime = 100 * model.Battery.Capacity / maxI
	}
	sampler := ctmc.NewSampler(model.Workload, seed)
	samples := make([]float64, 0, runs)
	wasted := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		life, stranded, err := simulateOne(model, sampler, maxTime)
		if err != nil {
			return nil, err
		}
		samples = append(samples, life)
		if !math.IsInf(life, 1) {
			wasted = append(wasted, stranded)
		}
	}
	ecdf, err := dist.NewECDF(samples)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	res := &Result{Lifetimes: ecdf}
	if len(wasted) > 0 {
		w, err := dist.NewECDF(wasted)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		res.WastedCharge = w
	}
	return res, nil
}

// simulateOne samples one trajectory until depletion or the censoring
// horizon, returning the lifetime and the bound charge stranded at
// depletion (0 for censored runs).
func simulateOne(model mrm.KiBaMRM, sampler *ctmc.Sampler, maxTime float64) (float64, float64, error) {
	battery := model.Battery
	state := sampler.InitialState(model.Initial)
	charge := battery.FullState()
	elapsed := 0.0
	for elapsed < maxTime {
		sojourn := sampler.Sojourn(state)
		dt := math.Min(sojourn, maxTime-elapsed)
		current := model.Currents[state]
		if t, ok := battery.Depletion(charge, current, dt); ok {
			final := battery.Step(charge, current, t)
			return elapsed + t, math.Max(final.Y2, 0), nil
		}
		charge = battery.Step(charge, current, dt)
		elapsed += dt
		if math.IsInf(sojourn, 1) {
			if current <= 0 {
				return math.Inf(1), 0, nil // absorbed in a non-drawing state
			}
			continue
		}
		state = sampler.Next(state)
	}
	return math.Inf(1), 0, nil
}

// CurveAt is a convenience wrapper: it simulates and evaluates the
// empirical lifetime CDF at the given times.
func CurveAt(model mrm.KiBaMRM, seed int64, opts Options, times []float64) ([]float64, error) {
	ecdf, err := Lifetimes(model, seed, opts)
	if err != nil {
		return nil, err
	}
	return ecdf.Eval(times), nil
}
