package sim

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/ctmc"
	"batlife/internal/dist"
	"batlife/internal/kibam"
	"batlife/internal/mrm"
	"batlife/internal/units"
	"batlife/internal/workload"
)

func onOffModel(t *testing.T, c, k float64) mrm.KiBaMRM {
	t.Helper()
	w, err := workload.OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		t.Fatal(err)
	}
	return mrm.KiBaMRM{
		Workload: w.Chain,
		Currents: w.Currents,
		Initial:  w.Initial,
		Battery:  kibam.Params{Capacity: 7200, C: c, K: k},
	}
}

func TestLifetimesReproducible(t *testing.T) {
	m := onOffModel(t, 1, 0)
	a, err := Lifetimes(m, 42, Options{Runs: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lifetimes(m, 42, Options{Runs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ks := dist.KSBetween(a, b); ks != 0 {
		t.Errorf("same seed, KS distance %v", ks)
	}
}

func TestOnOffLifetimeNearDeterministic(t *testing.T) {
	// §6.1: the f = 1 Hz, c = 1 on/off lifetime is close to
	// deterministic with mean ≈ 15000 s (the on-time needed is
	// C/I = 7500 s, half the wall clock).
	m := onOffModel(t, 1, 0)
	e, err := Lifetimes(m, 1, Options{Runs: 400})
	if err != nil {
		t.Fatal(err)
	}
	mean, err := e.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-15000) > 200 {
		t.Errorf("mean lifetime = %v, want ≈ 15000", mean)
	}
	std, err := e.Std()
	if err != nil {
		t.Fatal(err)
	}
	// Total on-time is Erlang(7500, 2): sd of lifetime ≈ 2·sd(on-time)
	// ≈ 2·√7500/2 ≈ 122 s — a tightly concentrated distribution.
	if std < 50 || std > 400 {
		t.Errorf("lifetime std = %v, want a few hundred seconds", std)
	}
	if e.Censored() != 0 {
		t.Errorf("%d censored runs", e.Censored())
	}
}

func TestErlangKSharpensDistribution(t *testing.T) {
	// §6.1: for larger Erlang order K the simulated lifetime gets even
	// closer to deterministic.
	build := func(k int) float64 {
		w, err := workload.OnOff(1, k, units.Amperes(0.96))
		if err != nil {
			t.Fatal(err)
		}
		m := mrm.KiBaMRM{
			Workload: w.Chain, Currents: w.Currents, Initial: w.Initial,
			Battery: kibam.Params{Capacity: 7200, C: 1, K: 0},
		}
		e, err := Lifetimes(m, 7, Options{Runs: 300})
		if err != nil {
			t.Fatal(err)
		}
		std, err := e.Std()
		if err != nil {
			t.Fatal(err)
		}
		return std
	}
	if s1, s8 := build(1), build(8); s8 >= s1 {
		t.Errorf("K=8 std %v not below K=1 std %v", s8, s1)
	}
}

func TestTwoWellSimulationMatchesAnalyticMedian(t *testing.T) {
	// The simulated two-well lifetime should be concentrated near the
	// deterministic square-wave lifetime of the analytic KiBaM
	// (~203 min = 12180 s), since exponential on/off times at 1 Hz
	// average out over thousands of cycles.
	m := onOffModel(t, 0.625, 4.5e-5)
	e, err := Lifetimes(m, 3, Options{Runs: 200})
	if err != nil {
		t.Fatal(err)
	}
	med, err := e.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	det, err := m.Battery.Lifetime(kibam.SquareWave{On: 0.96, Frequency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-det) > 0.05*det {
		t.Errorf("simulated median %v vs deterministic %v", med, det)
	}
}

func TestRecoveryExtendsSimulatedLifetime(t *testing.T) {
	noTransfer := onOffModel(t, 0.625, 0)
	withTransfer := onOffModel(t, 0.625, 4.5e-5)
	a, err := Lifetimes(noTransfer, 5, Options{Runs: 150})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lifetimes(withTransfer, 5, Options{Runs: 150})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := a.Mean()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if mb <= ma {
		t.Errorf("transfer did not extend lifetime: %v vs %v", ma, mb)
	}
}

func TestCensoring(t *testing.T) {
	// A tiny horizon censors every run.
	m := onOffModel(t, 1, 0)
	e, err := Lifetimes(m, 1, Options{Runs: 20, MaxTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if e.Censored() != 20 {
		t.Errorf("censored = %d, want all 20", e.Censored())
	}
}

func TestAbsorbingZeroCurrentState(t *testing.T) {
	// A workload that falls into a non-drawing absorbing state leaves
	// the battery alive forever: the run must censor, not spin.
	var b ctmc.Builder
	b.Transition("on", "dead", 5)
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.KiBaMRM{
		Workload: chain,
		Currents: []float64{0.5, 0},
		Initial:  chain.PointDistribution(chain.Index("on")),
		Battery:  kibam.Params{Capacity: 7200, C: 1, K: 0},
	}
	e, err := Lifetimes(m, 2, Options{Runs: 30, MaxTime: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	// With mean 0.2 s in "on" before death, no run should deplete
	// 7200 As at 0.5 A (needs 14400 s on-time).
	if e.Censored() != 30 {
		t.Errorf("censored = %d, want 30", e.Censored())
	}
}

func TestValidationErrors(t *testing.T) {
	m := onOffModel(t, 1, 0)
	bad := m
	bad.Currents = []float64{1}
	if _, err := Lifetimes(bad, 1, Options{Runs: 5}); !errors.Is(err, mrm.ErrBadModel) {
		t.Errorf("invalid model: err = %v", err)
	}
	zero := m
	zero.Currents = []float64{0, 0}
	if _, err := Lifetimes(zero, 1, Options{Runs: 5}); !errors.Is(err, ErrBadRun) {
		t.Errorf("no current: err = %v", err)
	}
}

func TestCurveAt(t *testing.T) {
	m := onOffModel(t, 1, 0)
	times := []float64{10000, 15000, 20000}
	curve, err := CurveAt(m, 9, Options{Runs: 100}, times)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if curve[0] > 0.05 || curve[2] < 0.95 {
		t.Errorf("curve = %v, want ≈ [0, ·, 1]", curve)
	}
	if curve[1] < 0.2 || curve[1] > 0.8 {
		t.Errorf("median point = %v, want interior", curve[1])
	}
}

func TestSimulationAgreesWithMarkovianApproximation(t *testing.T) {
	// Cross-validation of the two solution methods on the simple
	// wireless model (hour-scale): the simulated CDF and the
	// fine-grid approximation must agree within Monte-Carlo noise.
	// (Tested here via the analytic Erlang form of the always-on model
	// to stay fast; the full cross-check lives in the integration
	// tests at the repository root.)
	var b ctmc.Builder
	b.State("on")
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.KiBaMRM{
		Workload: chain,
		Currents: []float64{2},
		Initial:  []float64{1},
		Battery:  kibam.Params{Capacity: 1000, C: 1, K: 0},
	}
	e, err := Lifetimes(m, 11, Options{Runs: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic lifetime C/I = 500 s for every run.
	if e.Min() != e.Max() || math.Abs(e.Min()-500) > 1e-9 {
		t.Errorf("always-on lifetimes [%v, %v], want exactly 500", e.Min(), e.Max())
	}
}
