// Package workload builds the three stochastic workload models of the
// paper's Section 4.3: the Erlang-K on/off model (Figure 3), the simple
// three-state wireless-device model (Figure 4) and the six-state burst
// model (Figure 5), together with the steady-state calibration that
// makes the burst model comparable to the simple one.
//
// All models are expressed in SI units internally: transition rates in
// 1/s and currents in ampere. The paper quotes the wireless models in
// per-hour rates and milliampere; the constructors accept those units
// and convert.
package workload

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"batlife/internal/ctmc"
	"batlife/internal/units"
)

// ErrBadWorkload reports invalid workload parameters.
var ErrBadWorkload = errors.New("workload: invalid parameters")

// Model couples a workload CTMC with the current drawn in each state and
// an initial distribution — the "abstract workload model" of the paper's
// introduction.
type Model struct {
	// Chain is the operating-mode CTMC.
	Chain *ctmc.Chain
	// Currents holds the load current of each state, in ampere.
	Currents []float64
	// Initial is the initial state distribution.
	Initial []float64
}

// Current returns the load current of the named state, in ampere.
func (m *Model) Current(name string) (float64, error) {
	i := m.Chain.Index(name)
	if i < 0 {
		return 0, fmt.Errorf("%w: no state %q", ErrBadWorkload, name)
	}
	return m.Currents[i], nil
}

// MeanCurrent returns the steady-state average current draw, in ampere.
func (m *Model) MeanCurrent() (float64, error) {
	pi, err := m.Chain.SteadyState()
	if err != nil {
		return 0, fmt.Errorf("workload: mean current: %w", err)
	}
	mean := 0.0
	for i, p := range pi {
		mean += p * m.Currents[i]
	}
	return mean, nil
}

// OnOff builds the Erlang-K on/off model of Figure 3: the workload
// cycles through K on-phases then K off-phases, all with rate
// λ = 2·f·K, so the expected on- and off-times are each 1/(2f) and the
// switching frequency is f. K = 1 gives exponential on/off times; as K
// grows they approach deterministic times. The on-states draw the given
// current; the model starts at the beginning of an on-period.
func OnOff(freq float64, k int, onCurrent units.Current) (*Model, error) {
	if freq <= 0 || math.IsNaN(freq) || math.IsInf(freq, 0) {
		return nil, fmt.Errorf("%w: frequency %v", ErrBadWorkload, freq)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: Erlang order %d", ErrBadWorkload, k)
	}
	if onCurrent.Amperes() <= 0 {
		return nil, fmt.Errorf("%w: on-current %v", ErrBadWorkload, onCurrent)
	}
	rate := 2 * freq * float64(k)
	var b ctmc.Builder
	phase := func(kind string, i int) string { return kind + strconv.Itoa(i) }
	for i := 0; i < k; i++ {
		next := phase("on", i+1)
		if i == k-1 {
			next = phase("off", 0)
		}
		b.Transition(phase("on", i), next, rate)
	}
	for i := 0; i < k; i++ {
		next := phase("off", i+1)
		if i == k-1 {
			next = phase("on", 0)
		}
		b.Transition(phase("off", i), next, rate)
	}
	chain, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: on/off model: %w", err)
	}
	currents := make([]float64, chain.NumStates())
	for i := 0; i < k; i++ {
		currents[chain.Index(phase("on", i))] = onCurrent.Amperes()
	}
	return &Model{
		Chain:    chain,
		Currents: currents,
		Initial:  chain.PointDistribution(chain.Index("on0")),
	}, nil
}

// ErlangOrderForCV returns the Erlang order K whose coefficient of
// variation 1/√K best matches the given target (in log scale), clamped
// to [1, maxK]. The paper uses increasing K to approximate the
// deterministic switching of its reference experiments (CV → 0); this
// helper picks K from a measured CV instead of by eye.
func ErlangOrderForCV(cv float64, maxK int) (int, error) {
	if cv <= 0 || math.IsNaN(cv) {
		return 0, fmt.Errorf("%w: coefficient of variation %v", ErrBadWorkload, cv)
	}
	if maxK < 1 {
		return 0, fmt.Errorf("%w: maxK %d", ErrBadWorkload, maxK)
	}
	ideal := 1 / (cv * cv)
	k := int(math.Round(ideal))
	if k < 1 {
		k = 1
	}
	if k > maxK {
		k = maxK
	}
	return k, nil
}

// SimpleConfig parameterises the simple wireless-device model. The zero
// value selects the paper's numbers.
type SimpleConfig struct {
	// Lambda is the data-arrival rate (idle→send and sleep→send), per
	// hour. Zero selects 2.
	Lambda float64
	// Mu is the send-completion rate (send→idle), per hour. Zero
	// selects 6 (10-minute average sends).
	Mu float64
	// Tau is the power-save rate (idle→sleep), per hour. Zero selects 1.
	Tau float64
	// IdleCurrent, SendCurrent and SleepCurrent are the per-state draws.
	// Zero values select the paper's 8 mA, 200 mA and 0 mA. To force a
	// true zero elsewhere use a negligible positive value.
	IdleCurrent  units.Current
	SendCurrent  units.Current
	SleepCurrent units.Current
}

func (c SimpleConfig) withDefaults() SimpleConfig {
	if c.Lambda == 0 {
		c.Lambda = 2
	}
	if c.Mu == 0 {
		c.Mu = 6
	}
	if c.Tau == 0 {
		c.Tau = 1
	}
	if c.IdleCurrent == 0 {
		c.IdleCurrent = units.Milliamps(8)
	}
	if c.SendCurrent == 0 {
		c.SendCurrent = units.Milliamps(200)
	}
	return c
}

// Simple builds the three-state model of Figure 4: idle→send (λ),
// idle→sleep (τ), sleep→send (λ), send→idle (µ). It starts in idle.
func Simple(cfg SimpleConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.Lambda <= 0 || cfg.Mu <= 0 || cfg.Tau <= 0 {
		return nil, fmt.Errorf("%w: rates λ=%v µ=%v τ=%v", ErrBadWorkload, cfg.Lambda, cfg.Mu, cfg.Tau)
	}
	var b ctmc.Builder
	b.Transition("idle", "send", units.PerHour(cfg.Lambda).PerSecond())
	b.Transition("idle", "sleep", units.PerHour(cfg.Tau).PerSecond())
	b.Transition("sleep", "send", units.PerHour(cfg.Lambda).PerSecond())
	b.Transition("send", "idle", units.PerHour(cfg.Mu).PerSecond())
	chain, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: simple model: %w", err)
	}
	currents := make([]float64, chain.NumStates())
	currents[chain.Index("idle")] = cfg.IdleCurrent.Amperes()
	currents[chain.Index("send")] = cfg.SendCurrent.Amperes()
	currents[chain.Index("sleep")] = cfg.SleepCurrent.Amperes()
	return &Model{
		Chain:    chain,
		Currents: currents,
		Initial:  chain.PointDistribution(chain.Index("idle")),
	}, nil
}

// BurstConfig parameterises the burst model. The zero value selects the
// paper's numbers, with LambdaBurst = 182 per hour (the calibrated
// value; see CalibrateBurst).
type BurstConfig struct {
	// LambdaBurst is the on-idle→on-send rate per hour; zero selects
	// 182, the paper's calibration.
	LambdaBurst float64
	// SwitchOn is the flow-activation rate per hour; zero selects 1.
	SwitchOn float64
	// SwitchOff is the flow-deactivation rate per hour; zero selects 6.
	SwitchOff float64
	// Mu is the send-completion rate per hour; zero selects 6.
	Mu float64
	// Tau is the power-save rate (off-idle→sleep) per hour; zero
	// selects 1.
	Tau float64
	// IdleCurrent, SendCurrent and SleepCurrent are as in SimpleConfig.
	IdleCurrent  units.Current
	SendCurrent  units.Current
	SleepCurrent units.Current
}

func (c BurstConfig) withDefaults() BurstConfig {
	if c.LambdaBurst == 0 {
		c.LambdaBurst = 182
	}
	if c.SwitchOn == 0 {
		c.SwitchOn = 1
	}
	if c.SwitchOff == 0 {
		c.SwitchOff = 6
	}
	if c.Mu == 0 {
		c.Mu = 6
	}
	if c.Tau == 0 {
		c.Tau = 1
	}
	if c.IdleCurrent == 0 {
		c.IdleCurrent = units.Milliamps(8)
	}
	if c.SendCurrent == 0 {
		c.SendCurrent = units.Milliamps(200)
	}
	return c
}

// Burst builds the model of Figure 5. Data arrives in bursts: while the
// flow is on, sends start at the high rate λ_burst; while it is off the
// device may fall asleep. States: on-idle, off-idle, on-send, off-send,
// sleep; it starts in off-idle.
func Burst(cfg BurstConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if cfg.LambdaBurst <= 0 || cfg.SwitchOn <= 0 || cfg.SwitchOff <= 0 || cfg.Mu <= 0 || cfg.Tau <= 0 {
		return nil, fmt.Errorf("%w: non-positive burst rate", ErrBadWorkload)
	}
	perHour := func(r float64) float64 { return units.PerHour(r).PerSecond() }
	var b ctmc.Builder
	b.Transition("on-idle", "on-send", perHour(cfg.LambdaBurst))
	b.Transition("on-send", "on-idle", perHour(cfg.Mu))
	b.Transition("off-send", "off-idle", perHour(cfg.Mu))
	b.Transition("on-idle", "off-idle", perHour(cfg.SwitchOff))
	b.Transition("on-send", "off-send", perHour(cfg.SwitchOff))
	b.Transition("off-idle", "on-idle", perHour(cfg.SwitchOn))
	b.Transition("off-send", "on-send", perHour(cfg.SwitchOn))
	b.Transition("off-idle", "sleep", perHour(cfg.Tau))
	b.Transition("sleep", "on-idle", perHour(cfg.SwitchOn))
	chain, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: burst model: %w", err)
	}
	currents := make([]float64, chain.NumStates())
	currents[chain.Index("on-idle")] = cfg.IdleCurrent.Amperes()
	currents[chain.Index("off-idle")] = cfg.IdleCurrent.Amperes()
	currents[chain.Index("on-send")] = cfg.SendCurrent.Amperes()
	currents[chain.Index("off-send")] = cfg.SendCurrent.Amperes()
	currents[chain.Index("sleep")] = cfg.SleepCurrent.Amperes()
	return &Model{
		Chain:    chain,
		Currents: currents,
		Initial:  chain.PointDistribution(chain.Index("off-idle")),
	}, nil
}

// SendProbability returns the steady-state probability of being in a
// sending state (send, or on-send/off-send).
func (m *Model) SendProbability() (float64, error) {
	pi, err := m.Chain.SteadyState()
	if err != nil {
		return 0, fmt.Errorf("workload: send probability: %w", err)
	}
	p := 0.0
	for _, name := range []string{"send", "on-send", "off-send"} {
		if i := m.Chain.Index(name); i >= 0 {
			p += pi[i]
		}
	}
	return p, nil
}

// CalibrateBurst finds λ_burst such that the burst model's steady-state
// send probability matches target (the paper matches the simple model's
// 1/4 and obtains λ_burst = 182 per hour). All other rates are taken
// from cfg.
func CalibrateBurst(cfg BurstConfig, target float64) (float64, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("%w: target send probability %v", ErrBadWorkload, target)
	}
	probAt := func(lb float64) (float64, error) {
		c := cfg
		c.LambdaBurst = lb
		m, err := Burst(c)
		if err != nil {
			return 0, err
		}
		return m.SendProbability()
	}
	// The send probability is increasing in λ_burst; bracket and bisect.
	lo, hi := 1e-6, 1.0
	for {
		p, err := probAt(hi)
		if err != nil {
			return 0, err
		}
		if p >= target {
			break
		}
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("%w: send probability %v unreachable", ErrBadWorkload, target)
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		p, err := probAt(mid)
		if err != nil {
			return 0, err
		}
		if p < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
