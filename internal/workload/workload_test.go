package workload

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/units"
)

func TestOnOffStructure(t *testing.T) {
	m, err := OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.NumStates() != 2 {
		t.Fatalf("K=1 on/off has %d states", m.Chain.NumStates())
	}
	// λ = 2·f·K = 2 for f = 1, K = 1.
	if got := m.Chain.ExitRate(m.Chain.Index("on0")); math.Abs(got-2) > 1e-12 {
		t.Errorf("on-state rate = %v, want 2", got)
	}
	c, err := m.Current("on0")
	if err != nil || c != 0.96 {
		t.Errorf("on current = %v (%v)", c, err)
	}
	c, err = m.Current("off0")
	if err != nil || c != 0 {
		t.Errorf("off current = %v (%v)", c, err)
	}
	if m.Initial[m.Chain.Index("on0")] != 1 {
		t.Error("on/off model must start in on0")
	}
}

func TestOnOffErlangK(t *testing.T) {
	const k = 4
	m, err := OnOff(0.5, k, units.Amperes(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.NumStates() != 2*k {
		t.Fatalf("K=%d on/off has %d states, want %d", k, m.Chain.NumStates(), 2*k)
	}
	// All rates λ = 2·f·K = 4.
	for i := 0; i < m.Chain.NumStates(); i++ {
		if got := m.Chain.ExitRate(i); math.Abs(got-4) > 1e-12 {
			t.Errorf("state %s rate = %v, want 4", m.Chain.Name(i), got)
		}
	}
	// Expected cycle time = 2K/λ = 1/f: one full period.
	pi, err := m.Chain.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	onProb := 0.0
	for i := 0; i < m.Chain.NumStates(); i++ {
		if m.Currents[i] > 0 {
			onProb += pi[i]
		}
	}
	if math.Abs(onProb-0.5) > 1e-9 {
		t.Errorf("steady-state on probability = %v, want 0.5", onProb)
	}
}

func TestOnOffMeanCurrent(t *testing.T) {
	m, err := OnOff(1, 1, units.Amperes(0.96))
	if err != nil {
		t.Fatal(err)
	}
	mean, err := m.MeanCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.48) > 1e-9 {
		t.Errorf("mean current = %v, want 0.48", mean)
	}
}

func TestOnOffErrors(t *testing.T) {
	cases := []struct {
		freq float64
		k    int
		on   units.Current
	}{
		{0, 1, units.Amperes(1)},
		{-1, 1, units.Amperes(1)},
		{math.NaN(), 1, units.Amperes(1)},
		{1, 0, units.Amperes(1)},
		{1, 1, units.Amperes(0)},
	}
	for _, tc := range cases {
		if _, err := OnOff(tc.freq, tc.k, tc.on); !errors.Is(err, ErrBadWorkload) {
			t.Errorf("OnOff(%v,%d,%v): err = %v, want ErrBadWorkload", tc.freq, tc.k, tc.on, err)
		}
	}
}

func TestErlangOrderForCV(t *testing.T) {
	tests := []struct {
		cv    float64
		maxK  int
		want  int
		isErr bool
	}{
		{1, 64, 1, false},     // exponential
		{0.5, 64, 4, false},   // CV 1/2 → K=4
		{0.25, 64, 16, false}, // CV 1/4 → K=16
		{0.01, 64, 64, false}, // near-deterministic, clamped
		{2, 64, 1, false},     // hyper-variable: best Erlang is K=1
		{0, 64, 0, true},
		{-1, 64, 0, true},
		{0.5, 0, 0, true},
	}
	for _, tt := range tests {
		got, err := ErlangOrderForCV(tt.cv, tt.maxK)
		if (err != nil) != tt.isErr {
			t.Errorf("cv=%v: err = %v", tt.cv, err)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("cv=%v: K = %d, want %d", tt.cv, got, tt.want)
		}
	}
}

func TestErlangOrderMatchesEmpiricalCV(t *testing.T) {
	// Sanity: the CV of an Erlang-K on-phase in the built model equals
	// 1/√K (sum of K exponentials at rate 2fK: mean K/(2fK), var
	// K/(2fK)²).
	k, err := ErlangOrderForCV(1/math.Sqrt(9), 64)
	if err != nil {
		t.Fatal(err)
	}
	if k != 9 {
		t.Fatalf("K = %d, want 9", k)
	}
	if _, err := OnOff(1, k, units.Amperes(1)); err != nil {
		t.Fatalf("building the fitted model: %v", err)
	}
}

func TestSimpleModelMatchesPaper(t *testing.T) {
	m, err := Simple(SimpleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.NumStates() != 3 {
		t.Fatalf("simple model has %d states", m.Chain.NumStates())
	}
	// Steady state (1/2, 1/4, 1/4) for (idle, send, sleep).
	pi, err := m.Chain.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"idle": 0.5, "send": 0.25, "sleep": 0.25}
	for name, p := range want {
		if got := pi[m.Chain.Index(name)]; math.Abs(got-p) > 1e-12 {
			t.Errorf("π(%s) = %v, want %v", name, got, p)
		}
	}
	// Currents 8 / 200 / 0 mA.
	for name, ma := range map[string]float64{"idle": 8, "send": 200, "sleep": 0} {
		c, err := m.Current(name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c*1000-ma) > 1e-9 {
			t.Errorf("current(%s) = %v mA, want %v", name, c*1000, ma)
		}
	}
	// Rates are per hour: idle exit rate λ+τ = 3/h.
	if got := m.Chain.ExitRate(m.Chain.Index("idle")); math.Abs(got-3.0/3600) > 1e-15 {
		t.Errorf("idle exit rate = %v /s, want 3/h", got)
	}
	if m.Initial[m.Chain.Index("idle")] != 1 {
		t.Error("simple model must start in idle")
	}
}

func TestSimpleModelTheoreticalEndurance(t *testing.T) {
	// Sanity numbers from the paper: with C = 800 mAh the device lasts
	// 4 h sending continuously or 100 h idling.
	m, err := Simple(SimpleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c := units.MilliampHours(800)
	send, err := m.Current("send")
	if err != nil {
		t.Fatal(err)
	}
	idle, err := m.Current("idle")
	if err != nil {
		t.Fatal(err)
	}
	if h := c.AmpereSeconds() / send / 3600; math.Abs(h-4) > 1e-9 {
		t.Errorf("send endurance = %v h, want 4", h)
	}
	if h := c.AmpereSeconds() / idle / 3600; math.Abs(h-100) > 1e-9 {
		t.Errorf("idle endurance = %v h, want 100", h)
	}
}

func TestSimpleBadConfig(t *testing.T) {
	if _, err := Simple(SimpleConfig{Lambda: -1}); !errors.Is(err, ErrBadWorkload) {
		t.Errorf("err = %v, want ErrBadWorkload", err)
	}
}

func TestBurstModelStructure(t *testing.T) {
	m, err := Burst(BurstConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.NumStates() != 5 {
		t.Fatalf("burst model has %d states, want 5", m.Chain.NumStates())
	}
	for _, name := range []string{"on-idle", "off-idle", "on-send", "off-send", "sleep"} {
		if m.Chain.Index(name) < 0 {
			t.Errorf("missing state %s", name)
		}
	}
	// Sending states draw 200 mA in both flow conditions.
	for _, name := range []string{"on-send", "off-send"} {
		c, err := m.Current(name)
		if err != nil || math.Abs(c-0.2) > 1e-12 {
			t.Errorf("current(%s) = %v (%v)", name, c, err)
		}
	}
	if m.Initial[m.Chain.Index("off-idle")] != 1 {
		t.Error("burst model must start in off-idle")
	}
}

func TestBurstCalibrationMatchesPaper(t *testing.T) {
	// §4.3: λ_burst = 182 per hour makes the burst model's send
	// probability equal the simple model's 1/4.
	lb, err := CalibrateBurst(BurstConfig{}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-182) > 0.5 {
		t.Errorf("calibrated λ_burst = %v /h, paper reports 182", lb)
	}
}

func TestBurstSendProbabilityAtPaperRate(t *testing.T) {
	m, err := Burst(BurstConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.SendProbability()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.25) > 1e-3 {
		t.Errorf("send probability at default λ_burst = %v, want 0.25", p)
	}
}

func TestBurstSleepsMoreThanSimple(t *testing.T) {
	// §4.3: "the steady-state probability to be in sleep is higher in
	// the burst model than in the simple model".
	simple, err := Simple(SimpleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := Burst(BurstConfig{})
	if err != nil {
		t.Fatal(err)
	}
	piS, err := simple.Chain.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	piB, err := burst.Chain.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if piB[burst.Chain.Index("sleep")] <= piS[simple.Chain.Index("sleep")] {
		t.Errorf("burst sleep %v not above simple sleep %v",
			piB[burst.Chain.Index("sleep")], piS[simple.Chain.Index("sleep")])
	}
}

func TestBurstMeanCurrentBelowSimple(t *testing.T) {
	// More sleep at the same send probability ⇒ lower average draw.
	simple, err := Simple(SimpleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := Burst(BurstConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := simple.MeanCurrent()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := burst.MeanCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if mb >= ms {
		t.Errorf("burst mean current %v not below simple %v", mb, ms)
	}
}

func TestCalibrateBurstErrors(t *testing.T) {
	for _, target := range []float64{0, 1, -0.2, 1.5} {
		if _, err := CalibrateBurst(BurstConfig{}, target); !errors.Is(err, ErrBadWorkload) {
			t.Errorf("target %v: err = %v, want ErrBadWorkload", target, err)
		}
	}
}

func TestBurstBadConfig(t *testing.T) {
	if _, err := Burst(BurstConfig{Mu: -3}); !errors.Is(err, ErrBadWorkload) {
		t.Errorf("err = %v, want ErrBadWorkload", err)
	}
}

func TestCurrentUnknownState(t *testing.T) {
	m, err := Simple(SimpleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Current("warp-drive"); !errors.Is(err, ErrBadWorkload) {
		t.Errorf("err = %v, want ErrBadWorkload", err)
	}
}
