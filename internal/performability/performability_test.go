package performability

import (
	"errors"
	"math"
	"testing"

	"batlife/internal/ctmc"
	"batlife/internal/mrm"
	"batlife/internal/units"
	"batlife/internal/workload"
)

func singleState(t *testing.T, rate float64) mrm.ConstantReward {
	t.Helper()
	var b ctmc.Builder
	b.State("only")
	chain, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return mrm.ConstantReward{Chain: chain, Rates: []float64{rate}, Initial: []float64{1}}
}

func onOff(t *testing.T, a, b float64, rates []float64, start int) mrm.ConstantReward {
	t.Helper()
	var bld ctmc.Builder
	bld.Transition("on", "off", a)
	bld.Transition("off", "on", b)
	chain, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	return mrm.ConstantReward{
		Chain:   chain,
		Rates:   rates,
		Initial: chain.PointDistribution(start),
	}
}

func TestDeterministicReward(t *testing.T) {
	m := singleState(t, 2)
	cases := []struct {
		y    float64
		want float64
	}{
		{19, 0}, {21, 1}, {-1, 0}, {1e9, 1},
	}
	for _, tc := range cases {
		got, err := Distribution(m, 10, tc.y)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("F(10, %v) = %v, want %v", tc.y, got, tc.want)
		}
	}
}

func TestZeroTime(t *testing.T) {
	m := singleState(t, 2)
	if f, err := Distribution(m, 0, 0.5); err != nil || f != 1 {
		t.Errorf("F(0, 0.5) = %v (%v), want 1", f, err)
	}
	if f, err := Distribution(m, 0, -0.5); err != nil || f != 0 {
		t.Errorf("F(0, -0.5) = %v (%v), want 0", f, err)
	}
}

func TestAtomAtLowerBound(t *testing.T) {
	// Starting in the zero-reward off state with switch rate b:
	// Pr{Y(t) = 0} = Pr{no jump by t} = e^{−b·t}.
	m := onOff(t, 2, 3, []float64{1, 0}, 1)
	for _, tm := range []float64{0.5, 1, 2} {
		got, err := Distribution(m, tm, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-3 * tm)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("atom at t=%v: %v, want %v", tm, got, want)
		}
	}
}

func TestAtomWithShiftedRates(t *testing.T) {
	// Same atom computation must survive a non-zero minimum rate: with
	// rates (5, 4), Y(t) ≤ 4t + ε only if the chain never leaves off.
	m := onOff(t, 2, 3, []float64{5, 4}, 1)
	got, err := Distribution(m, 1, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("shifted atom = %v, want %v", got, want)
	}
}

// occupationMC estimates Pr{occupation of on ≤ y} by Monte Carlo.
func occupationMC(t *testing.T, m mrm.ConstantReward, horizon, y float64, runs int) float64 {
	t.Helper()
	s := ctmc.NewSampler(m.Chain, 12345)
	count := 0
	for r := 0; r < runs; r++ {
		occ := 0.0
		for _, step := range s.Trajectory(m.Initial, horizon) {
			occ += m.Rates[step.State] * step.Sojourn
		}
		if occ <= y {
			count++
		}
	}
	return float64(count) / float64(runs)
}

func TestOccupationTimeAgainstMonteCarlo(t *testing.T) {
	m := onOff(t, 2, 2, []float64{1, 0}, 0)
	const runs = 40000
	for _, y := range []float64{3, 5, 6, 8} {
		exact, err := Distribution(m, 10, y)
		if err != nil {
			t.Fatal(err)
		}
		mc := occupationMC(t, m, 10, y, runs)
		tol := 4 * math.Sqrt(0.25/runs) // 4σ binomial noise
		if math.Abs(exact-mc) > tol+1e-3 {
			t.Errorf("y=%v: exact %v vs MC %v (tol %v)", y, exact, mc, tol)
		}
	}
}

func TestDistributionMonotoneInY(t *testing.T) {
	m := onOff(t, 1.3, 0.7, []float64{2, 0.5}, 0)
	prev := -1.0
	for y := 1.0; y <= 19; y += 1.5 {
		f, err := Distribution(m, 10, y)
		if err != nil {
			t.Fatal(err)
		}
		if f < prev-1e-7 {
			t.Fatalf("F decreases at y=%v: %v -> %v", y, prev, f)
		}
		if f < 0 || f > 1 {
			t.Fatalf("F(10,%v) = %v out of range", y, f)
		}
		prev = f
	}
}

func TestQueryValidation(t *testing.T) {
	m := singleState(t, 1)
	if _, err := Distribution(m, -1, 1); !errors.Is(err, ErrBadQuery) {
		t.Errorf("negative t: err = %v", err)
	}
	if _, err := Distribution(m, math.NaN(), 1); !errors.Is(err, ErrBadQuery) {
		t.Errorf("NaN t: err = %v", err)
	}
	if _, err := Distribution(m, 1, math.NaN()); !errors.Is(err, ErrBadQuery) {
		t.Errorf("NaN y: err = %v", err)
	}
	bad := m
	bad.Initial = []float64{0.5}
	if _, err := Distribution(bad, 1, 1); !errors.Is(err, mrm.ErrBadModel) {
		t.Errorf("bad model: err = %v", err)
	}
}

func TestEnergyDepletionValidation(t *testing.T) {
	m := singleState(t, 1)
	if _, err := EnergyDepletionCDF(m, 0, []float64{1}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("zero capacity: err = %v", err)
	}
	neg := onOff(t, 1, 1, []float64{1, -1}, 0)
	if _, err := EnergyDepletionCDF(neg, 1, []float64{1}); !errors.Is(err, ErrBadQuery) {
		t.Errorf("negative rate: err = %v", err)
	}
}

func TestEnergyDepletionDeterministic(t *testing.T) {
	// Single state at 2 A with capacity 100 As: dead at exactly 50 s.
	m := singleState(t, 2)
	probs, err := EnergyDepletionCDF(m, 100, []float64{49, 51})
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 0 || probs[1] != 1 {
		t.Errorf("probs = %v, want [0 1]", probs)
	}
}

func TestSimpleModelExactCurveMatchesPaper(t *testing.T) {
	// Figure 10, rightmost curve (C = 800 mAh, c = 1): the battery is
	// almost surely empty after about 25 hours, and still almost surely
	// alive at 10 hours.
	w, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.ConstantReward{Chain: w.Chain, Rates: w.Currents, Initial: w.Initial}
	capacity := units.MilliampHours(800).AmpereSeconds()
	times := []float64{10 * 3600, 20 * 3600, 25 * 3600, 30 * 3600}
	probs, err := EnergyDepletionCDF(m, capacity, times)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] > 0.05 {
		t.Errorf("Pr[empty at 10 h] = %v, want near 0", probs[0])
	}
	if probs[2] < 0.98 {
		t.Errorf("Pr[empty at 25 h] = %v, paper: surely empty after ~25 h", probs[2])
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] < probs[i-1]-1e-7 {
			t.Errorf("depletion CDF not monotone: %v", probs)
		}
	}
}

func TestExactCurveConsistentWithExpectedEnergy(t *testing.T) {
	// The median depletion time must bracket the time at which the
	// expected accumulated energy crosses the capacity.
	w, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := mrm.ConstantReward{Chain: w.Chain, Rates: w.Currents, Initial: w.Initial}
	capacity := units.MilliampHours(800).AmpereSeconds()
	// Steady-state mean current: 0.5·8 + 0.25·200 + 0.25·0 = 54 mA →
	// expected crossing at 800/54 ≈ 14.8 h.
	cross := capacity / 0.054 / 3600
	lo, hi := (cross-2)*3600, (cross+2)*3600
	probs, err := EnergyDepletionCDF(m, capacity, []float64{lo, hi})
	if err != nil {
		t.Fatal(err)
	}
	if !(probs[0] < 0.5 && probs[1] > 0.4) {
		t.Errorf("median not near expected crossing %.1f h: Pr = %v", cross, probs)
	}
}

func BenchmarkDistributionSimpleModel(b *testing.B) {
	w, err := workload.Simple(workload.SimpleConfig{})
	if err != nil {
		b.Fatal(err)
	}
	m := mrm.ConstantReward{Chain: w.Chain, Rates: w.Currents, Initial: w.Initial}
	capacity := units.MilliampHours(800).AmpereSeconds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distribution(m, 20*3600, capacity); err != nil {
			b.Fatal(err)
		}
	}
}
