// Package performability computes the exact distribution of accumulated
// reward in a homogeneous Markov reward model with constant, finite
// reward rates — the performability distribution of Meyer.
//
// The paper obtains the "exact" curve of Figure 10 (C = 800 mAh, c = 1)
// with Sericola's uniformisation-based occupation-time algorithm [25].
// This package computes the same quantity through the transform domain
// (see DESIGN.md, substitution 3): for reward rates r and generator Q,
//
//	E[exp(−s·Y(t))] = α · exp((Q − s·diag(r))·t) · 𝟙,
//
// a classical identity obtained by conditioning on the state process.
// The Laplace–Stieltjes transform is inverted numerically with the
// Abate–Whitt Euler algorithm, giving Pr{Y(t) ≤ y} to roughly 1e−8 —
// far below every other error source in the paper's experiments.
//
// For a battery with all charge available (c = 1) and capacity C, the
// accumulated energy Y(t) is non-decreasing, so the battery-lifetime
// distribution is the first-passage dual Pr{L ≤ t} = Pr{Y(t) ≥ C}.
package performability

import (
	"errors"
	"fmt"
	"math"

	"batlife/internal/linalg"
	"batlife/internal/mrm"
)

// ErrBadQuery reports invalid evaluation arguments.
var ErrBadQuery = errors.New("performability: invalid query")

// euler holds the Abate–Whitt Euler-summation constants: discretisation
// parameter A (controls aliasing error, e^-A), n regular terms and m
// binomial averaging terms.
const (
	eulerA = 18.4
	eulerN = 15
	eulerM = 11
)

// Distribution returns F(t, y) = Pr{Y(t) ≤ y} for the accumulated
// reward of the model at time t. Rates may be any finite reals; y may be
// any real. At atoms of Y(t) (e.g. y = r_i·t reachable by never leaving
// state i) the inversion converges to the midpoint of the jump.
func Distribution(m mrm.ConstantReward, t, y float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, fmt.Errorf("performability: %w", err)
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, fmt.Errorf("%w: time %v", ErrBadQuery, t)
	}
	if math.IsNaN(y) {
		return 0, fmt.Errorf("%w: level NaN", ErrBadQuery)
	}
	// Support bounds: Y(t) ∈ [min r·t, max r·t].
	minR, maxR := rateRange(m.Rates)
	if t == 0 {
		if y >= 0 {
			return 1, nil
		}
		return 0, nil
	}
	if y >= maxR*t {
		return 1, nil
	}
	if y < minR*t {
		return 0, nil
	}
	// Shift rewards so the minimum rate is zero: Y(t) = minR·t + Y'(t)
	// with Y' having non-negative rates. The inversion then works on a
	// non-negative random variable, which Euler summation requires.
	shifted := make([]float64, len(m.Rates))
	for i, r := range m.Rates {
		shifted[i] = r - minR
	}
	yPrime := y - minR*t
	if yPrime <= 0 {
		// Left edge of the support: Pr{Y' ≤ 0} = Pr{Y' = 0}, the
		// probability of spending all of [0, t] in minimum-rate states.
		// The inversion cannot resolve the boundary atom, so compute it
		// directly via the taboo process restricted to those states.
		return atomAtZero(m, shifted, t), nil
	}
	return invert(m, shifted, t, yPrime)
}

// EnergyDepletionCDF returns Pr{Y(t) ≥ capacity} at each time — the
// exact battery-lifetime CDF of a c = 1 battery under the workload MRM,
// by first-passage duality. All reward rates must be non-negative (they
// are currents) and capacity positive.
func EnergyDepletionCDF(m mrm.ConstantReward, capacity float64, times []float64) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("performability: %w", err)
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, fmt.Errorf("%w: capacity %v", ErrBadQuery, capacity)
	}
	for _, r := range m.Rates {
		if r < 0 {
			return nil, fmt.Errorf("%w: negative reward rate %v (currents required)", ErrBadQuery, r)
		}
	}
	out := make([]float64, len(times))
	for k, t := range times {
		f, err := Distribution(m, t, capacity)
		if err != nil {
			return nil, err
		}
		p := 1 - f
		out[k] = math.Min(1, math.Max(0, p))
	}
	return out, nil
}

func rateRange(rates []float64) (minR, maxR float64) {
	minR, maxR = rates[0], rates[0]
	for _, r := range rates[1:] {
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	return minR, maxR
}

// atomAtZero returns Pr{X(s) in zero-rate states for all s ≤ t}, the
// probability mass of the shifted reward at zero, via the sub-generator
// restricted to the zero-rate states.
func atomAtZero(m mrm.ConstantReward, shifted []float64, t float64) float64 {
	var zero []int
	for i, r := range shifted {
		if r == 0 {
			zero = append(zero, i)
		}
	}
	if len(zero) == 0 {
		return 0
	}
	// Taboo transient solution on the restricted sub-generator.
	sub := linalg.NewMatC(len(zero))
	pos := make(map[int]int, len(zero))
	for k, i := range zero {
		pos[i] = k
	}
	for k, i := range zero {
		m.Chain.Generator().Row(i, func(col int, v float64) {
			if kk, ok := pos[col]; ok {
				sub.Set(k, kk, complex(v*t, 0))
			}
		})
	}
	exp := sub.Exp()
	alpha := make([]complex128, len(zero))
	for k, i := range zero {
		alpha[k] = complex(m.Initial[i], 0)
	}
	row, err := exp.MulVecLeft(alpha)
	if err != nil {
		return 0 // cannot happen: dimensions match by construction
	}
	sum := 0.0
	for _, v := range row {
		sum += real(v)
	}
	return math.Min(1, math.Max(0, sum))
}

// transform evaluates φ(s) = α·exp((Q − s·R)t)·𝟙 for complex s.
func transform(m mrm.ConstantReward, shifted []float64, t float64, s complex128) complex128 {
	n := m.Chain.NumStates()
	a := linalg.NewMatC(n)
	for i := 0; i < n; i++ {
		m.Chain.Generator().Row(i, func(col int, v float64) {
			a.Set(i, col, a.At(i, col)+complex(v, 0))
		})
		a.Set(i, i, a.At(i, i)-s*complex(shifted[i], 0))
	}
	a.Scale(complex(t, 0))
	exp := a.Exp()
	alpha := make([]complex128, n)
	for i := 0; i < n; i++ {
		alpha[i] = complex(m.Initial[i], 0)
	}
	row, err := exp.MulVecLeft(alpha)
	if err != nil {
		return 0 // cannot happen: dimensions match by construction
	}
	var sum complex128
	for _, v := range row {
		sum += v
	}
	return sum
}

// invert computes Pr{Y'(t) ≤ y} by Abate–Whitt Euler summation of the
// Bromwich integral for φ(s)/s.
func invert(m mrm.ConstantReward, shifted []float64, t, y float64) (float64, error) {
	if y <= 0 || math.IsNaN(y) {
		return 0, fmt.Errorf("%w: inversion requires a positive reward bound, got y=%v", ErrBadQuery, y)
	}
	// Partial sums of the alternating series.
	fhat := func(s complex128) complex128 {
		return transform(m, shifted, t, s) / s
	}
	base := eulerA / (2 * y)
	sum := 0.5 * real(fhat(complex(base, 0)))
	partial := make([]float64, 0, eulerN+eulerM+1)
	for k := 1; k <= eulerN+eulerM; k++ {
		term := real(fhat(complex(base, float64(k)*math.Pi/y)))
		if k%2 == 1 {
			term = -term
		}
		sum += term
		if k >= eulerN {
			partial = append(partial, sum)
		}
	}
	// Binomial (Euler) averaging of the last m+1 partial sums.
	avg := 0.0
	binom := 1.0
	total := 0.0
	for j := 0; j <= eulerM; j++ {
		avg += binom * partial[j]
		total += binom
		binom *= float64(eulerM-j) / float64(j+1)
	}
	avg /= total
	f := math.Exp(eulerA/2) / y * avg
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("%w: inversion diverged at t=%v y=%v", ErrBadQuery, t, y)
	}
	return math.Min(1, math.Max(0, f)), nil
}
