// Package performability computes the exact distribution of accumulated
// reward in a homogeneous Markov reward model with constant, finite
// reward rates — the performability distribution of Meyer.
//
// The paper obtains the "exact" curve of Figure 10 (C = 800 mAh, c = 1)
// with Sericola's uniformisation-based occupation-time algorithm [25].
// This package computes the same quantity through the transform domain
// (see DESIGN.md, substitution 3): for reward rates r and generator Q,
//
//	E[exp(−s·Y(t))] = α · exp((Q − s·diag(r))·t) · 𝟙,
//
// a classical identity obtained by conditioning on the state process.
// The Laplace–Stieltjes transform is inverted numerically with the
// Abate–Whitt Euler algorithm, giving Pr{Y(t) ≤ y} to roughly 1e−8 —
// far below every other error source in the paper's experiments.
//
// For a battery with all charge available (c = 1) and capacity C, the
// accumulated energy Y(t) is non-decreasing, so the battery-lifetime
// distribution is the first-passage dual Pr{L ≤ t} = Pr{Y(t) ≥ C}.
package performability

import (
	"context"
	"errors"
	"fmt"
	"math"

	"batlife/internal/linalg"
	"batlife/internal/mrm"
)

// ErrBadQuery reports invalid evaluation arguments.
var ErrBadQuery = errors.New("performability: invalid query")

// euler holds the Abate–Whitt Euler-summation constants: discretisation
// parameter A (controls aliasing error, e^-A), n regular terms and m
// binomial averaging terms.
const (
	eulerA = 18.4
	eulerN = 15
	eulerM = 11
)

// Distribution returns F(t, y) = Pr{Y(t) ≤ y} for the accumulated
// reward of the model at time t. Rates may be any finite reals; y may be
// any real. At atoms of Y(t) (e.g. y = r_i·t reachable by never leaving
// state i) the inversion converges to the midpoint of the jump.
func Distribution(m mrm.ConstantReward, t, y float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, fmt.Errorf("performability: %w", err)
	}
	f, _, err := distributionCounted(m, t, y)
	return f, err
}

// distributionCounted is Distribution without the model validation (the
// caller has already validated), additionally reporting the number of
// transform evaluations spent — the matrix-exponential work unit that
// Stats surfaces to the facade.
func distributionCounted(m mrm.ConstantReward, t, y float64) (float64, int, error) {
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, 0, fmt.Errorf("%w: time %v", ErrBadQuery, t)
	}
	if math.IsNaN(y) {
		return 0, 0, fmt.Errorf("%w: level NaN", ErrBadQuery)
	}
	// Support bounds: Y(t) ∈ [min r·t, max r·t].
	minR, maxR := rateRange(m.Rates)
	if t == 0 {
		if y >= 0 {
			return 1, 0, nil
		}
		return 0, 0, nil
	}
	if y >= maxR*t {
		return 1, 0, nil
	}
	if y < minR*t {
		return 0, 0, nil
	}
	// Shift rewards so the minimum rate is zero: Y(t) = minR·t + Y'(t)
	// with Y' having non-negative rates. The inversion then works on a
	// non-negative random variable, which Euler summation requires.
	shifted := make([]float64, len(m.Rates))
	for i, r := range m.Rates {
		shifted[i] = r - minR
	}
	yPrime := y - minR*t
	if yPrime <= 0 {
		// Left edge of the support: Pr{Y' ≤ 0} = Pr{Y' = 0}, the
		// probability of spending all of [0, t] in minimum-rate states.
		// The inversion cannot resolve the boundary atom, so compute it
		// directly via the taboo process restricted to those states.
		// One restricted matrix exponential ≈ one transform evaluation.
		return atomAtZero(m, shifted, t), 1, nil
	}
	f, err := invert(m, shifted, t, yPrime)
	return f, eulerN + eulerM + 1, err
}

// EnergyDepletionCDF returns Pr{Y(t) ≥ capacity} at each time — the
// exact battery-lifetime CDF of a c = 1 battery under the workload MRM,
// by first-passage duality. All reward rates must be non-negative (they
// are currents) and capacity positive.
func EnergyDepletionCDF(m mrm.ConstantReward, capacity float64, times []float64) ([]float64, error) {
	probs, _, err := EnergyDepletionCDFStats(m, capacity, times, nil)
	return probs, err
}

// Stats summarises the work behind one EnergyDepletionCDFStats call, in
// the shape the facade reports for every analysis: the size of the
// model that was solved and an iteration count — here the number of
// transform-domain evaluations φ(s) performed by the Euler inversion.
type Stats struct {
	// States and Transitions describe the workload CTMC.
	States, Transitions int
	// TransformEvals counts evaluations of the Laplace transform
	// φ(s) = α·exp((Q − s·diag(r))t)·𝟙, the unit of work of the
	// inversion (each costs one complex matrix exponential).
	TransformEvals int
}

// EnergyDepletionCDFStats is EnergyDepletionCDF with work statistics
// and optional cancellation: a non-nil ctx is checked between time
// points and aborts the evaluation with an error wrapping ctx.Err().
func EnergyDepletionCDFStats(m mrm.ConstantReward, capacity float64, times []float64, ctx context.Context) ([]float64, Stats, error) {
	var stats Stats
	if err := m.Validate(); err != nil {
		return nil, stats, fmt.Errorf("performability: %w", err)
	}
	stats.States = m.Chain.NumStates()
	stats.Transitions = m.Chain.Generator().NNZ()
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return nil, stats, fmt.Errorf("%w: capacity %v", ErrBadQuery, capacity)
	}
	for _, r := range m.Rates {
		if r < 0 {
			return nil, stats, fmt.Errorf("%w: negative reward rate %v (currents required)", ErrBadQuery, r)
		}
	}
	out := make([]float64, len(times))
	for k, t := range times {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, stats, fmt.Errorf("performability: cancelled at time point %d: %w", k, err)
			}
		}
		f, evals, err := distributionCounted(m, t, capacity)
		stats.TransformEvals += evals
		if err != nil {
			return nil, stats, err
		}
		p := 1 - f
		out[k] = math.Min(1, math.Max(0, p))
	}
	return out, stats, nil
}

func rateRange(rates []float64) (minR, maxR float64) {
	minR, maxR = rates[0], rates[0]
	for _, r := range rates[1:] {
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	return minR, maxR
}

// atomAtZero returns Pr{X(s) in zero-rate states for all s ≤ t}, the
// probability mass of the shifted reward at zero, via the sub-generator
// restricted to the zero-rate states.
func atomAtZero(m mrm.ConstantReward, shifted []float64, t float64) float64 {
	var zero []int
	for i, r := range shifted {
		if r == 0 {
			zero = append(zero, i)
		}
	}
	if len(zero) == 0 {
		return 0
	}
	// Taboo transient solution on the restricted sub-generator.
	sub := linalg.NewMatC(len(zero))
	pos := make(map[int]int, len(zero))
	for k, i := range zero {
		pos[i] = k
	}
	for k, i := range zero {
		m.Chain.Generator().Row(i, func(col int, v float64) {
			if kk, ok := pos[col]; ok {
				sub.Set(k, kk, complex(v*t, 0))
			}
		})
	}
	exp := sub.Exp()
	alpha := make([]complex128, len(zero))
	for k, i := range zero {
		alpha[k] = complex(m.Initial[i], 0)
	}
	row, err := exp.MulVecLeft(alpha)
	if err != nil {
		return 0 // cannot happen: dimensions match by construction
	}
	sum := 0.0
	for _, v := range row {
		sum += real(v)
	}
	return math.Min(1, math.Max(0, sum))
}

// transform evaluates φ(s) = α·exp((Q − s·R)t)·𝟙 for complex s.
func transform(m mrm.ConstantReward, shifted []float64, t float64, s complex128) complex128 {
	n := m.Chain.NumStates()
	a := linalg.NewMatC(n)
	for i := 0; i < n; i++ {
		m.Chain.Generator().Row(i, func(col int, v float64) {
			a.Set(i, col, a.At(i, col)+complex(v, 0))
		})
		a.Set(i, i, a.At(i, i)-s*complex(shifted[i], 0))
	}
	a.Scale(complex(t, 0))
	exp := a.Exp()
	alpha := make([]complex128, n)
	for i := 0; i < n; i++ {
		alpha[i] = complex(m.Initial[i], 0)
	}
	row, err := exp.MulVecLeft(alpha)
	if err != nil {
		return 0 // cannot happen: dimensions match by construction
	}
	var sum complex128
	for _, v := range row {
		sum += v
	}
	return sum
}

// invert computes Pr{Y'(t) ≤ y} by Abate–Whitt Euler summation of the
// Bromwich integral for φ(s)/s.
func invert(m mrm.ConstantReward, shifted []float64, t, y float64) (float64, error) {
	if y <= 0 || math.IsNaN(y) {
		return 0, fmt.Errorf("%w: inversion requires a positive reward bound, got y=%v", ErrBadQuery, y)
	}
	// Partial sums of the alternating series.
	fhat := func(s complex128) complex128 {
		return transform(m, shifted, t, s) / s
	}
	base := eulerA / (2 * y)
	sum := 0.5 * real(fhat(complex(base, 0)))
	partial := make([]float64, 0, eulerN+eulerM+1)
	for k := 1; k <= eulerN+eulerM; k++ {
		term := real(fhat(complex(base, float64(k)*math.Pi/y)))
		if k%2 == 1 {
			term = -term
		}
		sum += term
		if k >= eulerN {
			partial = append(partial, sum)
		}
	}
	// Binomial (Euler) averaging of the last m+1 partial sums.
	avg := 0.0
	binom := 1.0
	total := 0.0
	for j := 0; j <= eulerM; j++ {
		avg += binom * partial[j]
		total += binom
		binom *= float64(eulerM-j) / float64(j+1)
	}
	avg /= total
	f := math.Exp(eulerA/2) / y * avg
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("%w: inversion diverged at t=%v y=%v", ErrBadQuery, t, y)
	}
	return math.Min(1, math.Max(0, f)), nil
}
