// Package check is the runtime numerical-invariant layer of the solver
// pipeline.
//
// Every function is a no-op unless the build carries the "debugchecks"
// tag (go test -tags debugchecks ./...). Enabled is an untyped constant,
// so in release builds the compiler eliminates both the calls and their
// loop bodies — the hot paths pay nothing. With the tag set, a violated
// invariant panics with the offending site and value: a silent NaN, a
// generator row that does not sum to zero, or a malformed CSR corrupts
// an entire lifetime distribution without any visible failure, and a
// loud early panic in a debug run is the cheapest place to catch it.
//
// The package deliberately imports nothing from the rest of the module;
// matrix-shaped arguments arrive through the small Generator and
// Validator interfaces so that internal/sparse can call into check
// without an import cycle.
package check

import (
	"fmt"
	"math"
)

// probTol bounds how far a probability vector's mass may drift from 1,
// and how negative a rounded-to-negative entry may be. Uniformisation
// accumulates ~n·ulp of drift over 1e5-term windows, so 1e-8 leaves
// two orders of headroom over honest rounding while still catching
// real mass leaks.
const probTol = 1e-8

// genTol is the per-row tolerance, relative to the largest magnitude in
// the row, for generator row sums.
const genTol = 1e-9

// Generator is the slice of the sparse-matrix API the generator-row
// invariant needs; *sparse.CSR satisfies it.
type Generator interface {
	Rows() int
	Row(r int, fn func(col int, v float64))
}

// Validator is anything with a structural self-check; *sparse.CSR
// satisfies it.
type Validator interface {
	Validate() error
}

// failf panics with a uniform prefix so violations are greppable.
func failf(site, format string, args ...any) {
	panic("check: " + site + ": " + fmt.Sprintf(format, args...))
}

// Finite asserts every x is neither NaN nor ±Inf.
//
//numlint:asserts finite(xs)
func Finite(site string, xs ...float64) {
	if !Enabled {
		return
	}
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			failf(site, "value %d is not finite: %v", i, x)
		}
	}
}

// FiniteVec asserts every element of v is finite.
//
//numlint:asserts finite(v)
func FiniteVec(site string, v []float64) {
	if !Enabled {
		return
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			failf(site, "element %d is not finite: %v", i, x)
		}
	}
}

// NonNegative asserts every element of v is finite and >= -probTol.
//
//numlint:asserts nonnegative(v)
func NonNegative(site string, v []float64) {
	if !Enabled {
		return
	}
	for i, x := range v {
		if !(x >= -probTol) { // catches NaN too
			failf(site, "element %d is negative or NaN: %v", i, x)
		}
		if math.IsInf(x, 0) {
			failf(site, "element %d is infinite", i)
		}
	}
}

// Probabilities asserts v is a probability distribution: finite,
// non-negative entries summing to 1 within probTol.
//
//numlint:asserts normalized(v)
func Probabilities(site string, v []float64) {
	if !Enabled {
		return
	}
	sum := 0.0
	for i, x := range v {
		if !(x >= -probTol) || math.IsInf(x, 0) {
			failf(site, "element %d is not a probability: %v", i, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > probTol {
		failf(site, "mass is %v, want 1 (|drift| %v > %v)", sum, math.Abs(sum-1), probTol)
	}
}

// UnitInterval asserts every element of v lies in [0, 1] within probTol.
//
//numlint:asserts unitinterval(v)
func UnitInterval(site string, v []float64) {
	if !Enabled {
		return
	}
	for i, x := range v {
		if !(x >= -probTol && x <= 1+probTol) {
			failf(site, "element %d is outside [0,1]: %v", i, x)
		}
	}
}

// GeneratorRows asserts g is an infinitesimal generator: finite entries,
// non-negative off-diagonal, non-positive diagonal, and every row
// summing to zero within genTol relative to the row's largest magnitude.
func GeneratorRows(site string, g Generator) {
	if !Enabled {
		return
	}
	for r := 0; r < g.Rows(); r++ {
		sum, scale := 0.0, 1.0
		bad := false
		g.Row(r, func(col int, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				bad = true
				return
			}
			if col == r {
				if v > 0 {
					bad = true
				}
			} else if v < 0 {
				bad = true
			}
			sum += v
			if a := math.Abs(v); a > scale {
				scale = a
			}
		})
		if bad {
			failf(site, "row %d has an invalid generator entry", r)
		}
		if math.Abs(sum) > genTol*scale {
			failf(site, "row %d sums to %v (tolerance %v)", r, sum, genTol*scale)
		}
	}
}

// CSRWellFormed asserts the matrix passes its structural self-check.
func CSRWellFormed(site string, m Validator) {
	if !Enabled {
		return
	}
	if err := m.Validate(); err != nil {
		failf(site, "malformed matrix: %v", err)
	}
}
