package check

import (
	"math"
	"strings"
	"testing"
)

// fakeGen adapts a dense matrix to the Generator interface.
type fakeGen [][]float64

func (g fakeGen) Rows() int { return len(g) }

func (g fakeGen) Row(r int, fn func(col int, v float64)) {
	for c, v := range g[r] {
		if v != 0 {
			fn(c, v)
		}
	}
}

type fakeValidator struct{ err error }

func (v fakeValidator) Validate() error { return v.err }

// mustPanic runs fn and asserts it panics (iff checks are enabled) with
// a message containing the site marker.
func mustPanic(t *testing.T, site string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if !Enabled {
			if r != nil {
				t.Fatalf("check panicked with Enabled=false: %v", r)
			}
			return
		}
		if r == nil {
			t.Fatalf("expected panic from %s with Enabled=true", site)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, site) {
			t.Fatalf("panic %v does not mention site %q", r, site)
		}
	}()
	fn()
}

func mustNotPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("unexpected check panic: %v", r)
		}
	}()
	fn()
}

func TestFinite(t *testing.T) {
	mustNotPanic(t, func() { Finite("ok", 0, -1, 1e300) })
	mustPanic(t, "nan-site", func() { Finite("nan-site", 1, math.NaN()) })
	mustPanic(t, "inf-site", func() { Finite("inf-site", math.Inf(-1)) })
}

func TestFiniteVec(t *testing.T) {
	mustNotPanic(t, func() { FiniteVec("ok", []float64{0, 0.5, -3}) })
	mustPanic(t, "vec-site", func() { FiniteVec("vec-site", []float64{0, math.Inf(1)}) })
}

func TestProbabilities(t *testing.T) {
	mustNotPanic(t, func() { Probabilities("ok", []float64{0.25, 0.75}) })
	// Drift within tolerance is accepted.
	mustNotPanic(t, func() { Probabilities("ok", []float64{0.5, 0.5 + 1e-12}) })
	mustPanic(t, "neg-site", func() { Probabilities("neg-site", []float64{-0.1, 1.1}) })
	mustPanic(t, "mass-site", func() { Probabilities("mass-site", []float64{0.5, 0.4}) })
	mustPanic(t, "nan-site", func() { Probabilities("nan-site", []float64{math.NaN(), 1}) })
}

func TestNonNegativeAndUnitInterval(t *testing.T) {
	mustNotPanic(t, func() { NonNegative("ok", []float64{0, 1, 42}) })
	mustPanic(t, "nn-site", func() { NonNegative("nn-site", []float64{-1}) })
	mustNotPanic(t, func() { UnitInterval("ok", []float64{0, 0.5, 1}) })
	mustPanic(t, "ui-site", func() { UnitInterval("ui-site", []float64{1.5}) })
}

func TestGeneratorRows(t *testing.T) {
	mustNotPanic(t, func() {
		GeneratorRows("ok", fakeGen{
			{-2, 2, 0},
			{1, -3, 2},
			{0, 0, 0}, // absorbing
		})
	})
	mustPanic(t, "rowsum-site", func() {
		GeneratorRows("rowsum-site", fakeGen{{-2, 1}, {0, 0}})
	})
	mustPanic(t, "sign-site", func() {
		GeneratorRows("sign-site", fakeGen{{1, -1}, {0, 0}})
	})
	mustPanic(t, "nan-site", func() {
		GeneratorRows("nan-site", fakeGen{{math.NaN(), 0}, {0, 0}})
	})
}

func TestCSRWellFormed(t *testing.T) {
	mustNotPanic(t, func() { CSRWellFormed("ok", fakeValidator{}) })
	mustPanic(t, "csr-site", func() {
		CSRWellFormed("csr-site", fakeValidator{err: errFake})
	})
}

var errFake = errTest("malformed")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestScalarAsserts(t *testing.T) {
	mustNotPanic(t, func() { Positive("ok", 1, 0.5, 1e300) })
	mustPanic(t, "pos0", func() { Positive("pos0", 1, 0) })
	mustPanic(t, "posneg", func() { Positive("posneg", -1) })
	mustPanic(t, "posnan", func() { Positive("posnan", math.NaN()) })

	mustNotPanic(t, func() { NonZero("ok", -1, 1e-300, math.Inf(1)) })
	mustPanic(t, "nz0", func() { NonZero("nz0", 1, 0) })
	mustPanic(t, "nznan", func() { NonZero("nznan", math.NaN()) })

	mustNotPanic(t, func() { NonNegativeScalar("ok", 0, 2, math.Inf(1)) })
	mustPanic(t, "nneg", func() { NonNegativeScalar("nneg", -1e-12) })
	mustPanic(t, "nnan", func() { NonNegativeScalar("nnan", math.NaN()) })

	mustNotPanic(t, func() { UnitScalar("ok", 0, 1, 0.25, 1+1e-9) })
	mustPanic(t, "unithi", func() { UnitScalar("unithi", 1.01) })
	mustPanic(t, "unitlo", func() { UnitScalar("unitlo", -0.01) })
	mustPanic(t, "unitnan", func() { UnitScalar("unitnan", math.NaN()) })
}
