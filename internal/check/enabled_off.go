//go:build !debugchecks

package check

// Enabled reports whether the runtime invariant checks are compiled in.
// Without the debugchecks build tag every check.* call is a constant
// no-op that the compiler eliminates entirely.
const Enabled = false
