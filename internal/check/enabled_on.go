//go:build debugchecks

package check

// Enabled reports whether the runtime invariant checks are compiled in.
// This build carries the debugchecks tag, so every check.* call
// validates its argument and panics on violation.
const Enabled = true
