package peukert

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestIdealLifetime(t *testing.T) {
	b := Ideal{Capacity: 7200}
	life, err := b.Lifetime(0.96)
	if err != nil {
		t.Fatal(err)
	}
	if want := 7500.0; math.Abs(life-want) > 1e-12 {
		t.Errorf("lifetime = %v, want %v", life, want)
	}
}

func TestIdealErrors(t *testing.T) {
	if _, err := (Ideal{Capacity: 0}).Lifetime(1); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero capacity: err = %v", err)
	}
	if _, err := (Ideal{Capacity: 1}).Lifetime(0); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero current: err = %v", err)
	}
}

func TestLawReducesToIdealAtBOne(t *testing.T) {
	law := Law{A: 7200, B: 1}
	life, err := law.Lifetime(0.96)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(life-7500) > 1e-9 {
		t.Errorf("lifetime = %v, want 7500", life)
	}
}

func TestLawPenalisesHighCurrent(t *testing.T) {
	// With b > 1, doubling the current must more than halve the
	// lifetime.
	law := Law{A: 7200, B: 1.2}
	l1, err := law.Lifetime(0.5)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := law.Lifetime(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if l2 >= l1/2 {
		t.Errorf("lifetime at 1A = %v, not below half of %v", l2, l1)
	}
}

func TestLawValidate(t *testing.T) {
	cases := []Law{{A: 0, B: 1.2}, {A: -1, B: 1.2}, {A: 1, B: 0.9}, {A: math.NaN(), B: 1.2}}
	for _, law := range cases {
		if err := law.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("Validate(%+v) = %v, want ErrBadParams", law, err)
		}
	}
}

func TestLifetimeAverage(t *testing.T) {
	law := Law{A: 7200, B: 1.1}
	full, err := law.Lifetime(0.48)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := law.LifetimeAverage(0.96, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if avg != full {
		t.Errorf("duty-cycle average %v != constant-average %v", avg, full)
	}
	if _, err := law.LifetimeAverage(1, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("zero duty: err = %v", err)
	}
	if _, err := law.LifetimeAverage(1, 1.5); !errors.Is(err, ErrBadParams) {
		t.Errorf("duty > 1: err = %v", err)
	}
}

func TestFitRecoversParameters(t *testing.T) {
	orig := Law{A: 5400, B: 1.3}
	l1, err := orig.Lifetime(0.3)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := orig.Lifetime(1.7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fit(0.3, l1, 1.7, l2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-orig.A) > 1e-6*orig.A || math.Abs(got.B-orig.B) > 1e-9 {
		t.Errorf("fit = %+v, want %+v", got, orig)
	}
}

func TestFitRoundTripProperty(t *testing.T) {
	f := func(rawA, rawB, rawI1, rawI2 float64) bool {
		a := 100 + math.Abs(math.Mod(rawA, 1e4))
		b := 1 + math.Abs(math.Mod(rawB, 0.8))
		i1 := 0.1 + math.Abs(math.Mod(rawI1, 3))
		i2 := 0.1 + math.Abs(math.Mod(rawI2, 3))
		if math.Abs(i1-i2) < 1e-3 {
			return true
		}
		orig := Law{A: a, B: b}
		l1, err1 := orig.Lifetime(i1)
		l2, err2 := orig.Lifetime(i2)
		if err1 != nil || err2 != nil {
			return false
		}
		got, err := Fit(i1, l1, i2, l2)
		if err != nil {
			return false
		}
		return math.Abs(got.A-a) < 1e-5*a && math.Abs(got.B-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitSweepRecoversExactLaw(t *testing.T) {
	orig := Law{A: 6000, B: 1.25}
	var points []Measurement
	for _, i := range []float64{0.2, 0.5, 1.0, 2.0, 4.0} {
		l, err := orig.Lifetime(i)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, Measurement{Current: i, Lifetime: l})
	}
	got, err := FitSweep(points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.A-orig.A) > 1e-6*orig.A || math.Abs(got.B-orig.B) > 1e-9 {
		t.Errorf("sweep fit = %+v, want %+v", got, orig)
	}
}

func TestFitSweepMatchesFitForTwoPoints(t *testing.T) {
	orig := Law{A: 5400, B: 1.3}
	l1, err := orig.Lifetime(0.3)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := orig.Lifetime(1.7)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Fit(0.3, l1, 1.7, l2)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := FitSweep([]Measurement{{0.3, l1}, {1.7, l2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(two.A-sweep.A) > 1e-6*two.A || math.Abs(two.B-sweep.B) > 1e-9 {
		t.Errorf("two-point %+v vs sweep %+v", two, sweep)
	}
}

func TestFitSweepAveragesNoise(t *testing.T) {
	// Noisy measurements around a known law: the fitted exponent must
	// land near the truth (least squares averages the noise out).
	orig := Law{A: 6000, B: 1.2}
	noise := []float64{1.02, 0.97, 1.01, 0.99, 1.03, 0.98}
	var points []Measurement
	for j, i := range []float64{0.2, 0.4, 0.8, 1.6, 3.2, 6.4} {
		l, err := orig.Lifetime(i)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, Measurement{Current: i, Lifetime: l * noise[j]})
	}
	got, err := FitSweep(points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.B-orig.B) > 0.05 {
		t.Errorf("fitted exponent %v, want ≈ %v", got.B, orig.B)
	}
}

func TestFitSweepErrors(t *testing.T) {
	if _, err := FitSweep(nil); !errors.Is(err, ErrBadParams) {
		t.Errorf("empty: err = %v", err)
	}
	if _, err := FitSweep([]Measurement{{1, 100}}); !errors.Is(err, ErrBadParams) {
		t.Errorf("single point: err = %v", err)
	}
	if _, err := FitSweep([]Measurement{{1, 100}, {1, 90}}); !errors.Is(err, ErrBadParams) {
		t.Errorf("single current: err = %v", err)
	}
	if _, err := FitSweep([]Measurement{{1, 100}, {-2, 90}}); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative current: err = %v", err)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(1, 100, 1, 50); !errors.Is(err, ErrBadParams) {
		t.Errorf("same currents: err = %v", err)
	}
	if _, err := Fit(-1, 100, 2, 50); !errors.Is(err, ErrBadParams) {
		t.Errorf("negative current: err = %v", err)
	}
	// Lifetimes increasing with current would need b < 1.
	if _, err := Fit(1, 100, 2, 200); !errors.Is(err, ErrBadParams) {
		t.Errorf("inverted measurements: err = %v", err)
	}
}
