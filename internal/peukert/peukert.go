// Package peukert implements the two simplest battery-lifetime models
// the paper's Section 2 uses as a foil for the KiBaM: the ideal linear
// battery, L = C/I, and Peukert's law, L = a/I^b.
//
// Both models are purely analytical and, deliberately, both mispredict
// variable loads: under Peukert's law all load profiles with the same
// average current have the same lifetime, which experiments falsify.
// They serve as baselines in the benchmark harness.
package peukert

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParams reports invalid model parameters.
var ErrBadParams = errors.New("peukert: invalid parameters")

// Ideal is the ideal linear battery with a fixed capacity in
// ampere-seconds: every coulomb is delivered regardless of rate.
type Ideal struct {
	// Capacity is the battery capacity in ampere-seconds.
	Capacity float64
}

// Lifetime returns C/I, the ideal lifetime under constant load.
func (b Ideal) Lifetime(current float64) (float64, error) {
	if b.Capacity <= 0 {
		return 0, fmt.Errorf("%w: capacity %v", ErrBadParams, b.Capacity)
	}
	if current <= 0 {
		return 0, fmt.Errorf("%w: current %v", ErrBadParams, current)
	}
	return b.Capacity / current, nil
}

// Law is Peukert's law with constants a > 0 and b > 1.
type Law struct {
	// A is the numerator constant; for b = 1 it equals the capacity.
	A float64
	// B is Peukert's exponent, > 1 for real batteries.
	B float64
}

// Validate reports whether the constants are usable.
func (l Law) Validate() error {
	if l.A <= 0 || math.IsNaN(l.A) || math.IsInf(l.A, 0) {
		return fmt.Errorf("%w: a = %v", ErrBadParams, l.A)
	}
	if l.B < 1 || math.IsNaN(l.B) || math.IsInf(l.B, 0) {
		return fmt.Errorf("%w: b = %v (must be >= 1)", ErrBadParams, l.B)
	}
	return nil
}

// Lifetime returns a/I^b, the Peukert lifetime under constant load.
func (l Law) Lifetime(current float64) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if current <= 0 {
		return 0, fmt.Errorf("%w: current %v", ErrBadParams, current)
	}
	return l.A / math.Pow(current, l.B), nil
}

// LifetimeAverage applies Peukert's law to the average current of a duty
// cycle — the (wrong for real batteries) prediction that all profiles
// with the same mean behave alike.
func (l Law) LifetimeAverage(onCurrent, duty float64) (float64, error) {
	if duty <= 0 || duty > 1 {
		return 0, fmt.Errorf("%w: duty %v", ErrBadParams, duty)
	}
	return l.Lifetime(onCurrent * duty)
}

// Measurement is one (current, lifetime) observation from a constant-
// current discharge test.
type Measurement struct {
	// Current is the discharge current in ampere.
	Current float64
	// Lifetime is the observed time to empty in seconds.
	Lifetime float64
}

// FitSweep determines a and b from two or more measurements by ordinary
// least squares on log L = log a − b·log I. With exactly two
// measurements it coincides with Fit.
func FitSweep(points []Measurement) (Law, error) {
	if len(points) < 2 {
		return Law{}, fmt.Errorf("%w: need at least two measurements, got %d", ErrBadParams, len(points))
	}
	var sumX, sumY, sumXX, sumXY float64
	for _, p := range points {
		if p.Current <= 0 || p.Lifetime <= 0 {
			return Law{}, fmt.Errorf("%w: measurement %+v must be positive", ErrBadParams, p)
		}
		x, y := math.Log(p.Current), math.Log(p.Lifetime)
		sumX += x
		sumY += y
		sumXX += x * x
		sumXY += x * y
	}
	n := float64(len(points))
	det := n*sumXX - sumX*sumX
	if math.Abs(det) < 1e-12*(1+n*sumXX) {
		return Law{}, fmt.Errorf("%w: measurements share a single current", ErrBadParams)
	}
	slope := (n*sumXY - sumX*sumY) / det
	intercept := (sumY - slope*sumX) / n
	law := Law{A: math.Exp(intercept), B: -slope}
	if err := law.Validate(); err != nil {
		return Law{}, fmt.Errorf("peukert: sweep fit produced %+v: %w", law, err)
	}
	return law, nil
}

// Fit determines a and b from two measured (current, lifetime) pairs by
// solving the log-linear system. The currents must differ.
func Fit(i1, l1, i2, l2 float64) (Law, error) {
	if i1 <= 0 || i2 <= 0 || l1 <= 0 || l2 <= 0 {
		return Law{}, fmt.Errorf("%w: measurements must be positive", ErrBadParams)
	}
	//numlint:ignore floatcmp distinctness check on caller-supplied measurements; near-equal pairs are rejected by Law.Validate
	if i1 == i2 {
		return Law{}, fmt.Errorf("%w: need two distinct currents", ErrBadParams)
	}
	// log L = log a − b·log I.
	b := -(math.Log(l1) - math.Log(l2)) / (math.Log(i1) - math.Log(i2))
	a := l1 * math.Pow(i1, b)
	law := Law{A: a, B: b}
	if err := law.Validate(); err != nil {
		return Law{}, fmt.Errorf("peukert: fit produced %+v: %w", law, err)
	}
	return law, nil
}
