package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus / OpenMetrics text exposition. WritePrometheus renders the
// registry in the OpenMetrics text format (the format Prometheus
// negotiates when exemplars are wanted): one `# TYPE` line per metric
// family, samples grouped by family with label sets sorted, histograms
// as cumulative `_bucket`/`_sum`/`_count` series, and per-bucket
// exemplars (`# {trace_id="..."} value`) linking latency buckets to the
// trace behind their slowest observation. Exemplar timestamps are
// omitted — they are optional in OpenMetrics, and leaving them out keeps
// the exposition deterministic for a deterministic workload, which the
// golden test pins byte-for-byte.
//
// Family naming follows the OpenMetrics convention for counters: the
// family is the metric name with any `_total` suffix stripped, and the
// sample line carries the `_total` suffix (appended when a counter was
// registered without one). Gauge and histogram families use the
// registered name as-is.

// series is one (labels, key) pair within a family; the key indexes the
// registry maps.
type series struct {
	labels string // inside-the-braces form, "" when unlabeled
	key    string
}

// familyOf splits a registry key `name{labels}` into its family name and
// label part.
func familyOf(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], strings.TrimSuffix(key[i+1:], "}")
	}
	return key, ""
}

// groupFamilies buckets registry keys by family name, with both the
// family list and each family's series deterministically sorted.
func groupFamilies(keys []string) ([]string, map[string][]series) {
	byFamily := make(map[string][]series)
	for _, key := range keys {
		name, labels := familyOf(key)
		byFamily[name] = append(byFamily[name], series{labels: labels, key: key})
	}
	names := make([]string, 0, len(byFamily))
	for name, ss := range byFamily {
		names = append(names, name)
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
	}
	sort.Strings(names)
	return names, byFamily
}

// promFloat renders a float64 in the exposition's number syntax.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promWriter accumulates the exposition, remembering the first write
// error so the render loop stays linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) str(parts ...string) {
	if p.err != nil {
		return
	}
	for _, s := range parts {
		if _, p.err = io.WriteString(p.w, s); p.err != nil {
			return
		}
	}
}

// sample writes one `name{labels} value` line, merging an extra label
// (the histogram `le`) into an existing label set when needed, plus an
// optional exemplar suffix.
func (p *promWriter) sample(name, labels, extraLabel, value string, ex *exemplar) {
	p.str(name)
	switch {
	case labels == "" && extraLabel == "":
	case labels == "":
		p.str("{", extraLabel, "}")
	case extraLabel == "":
		p.str("{", labels, "}")
	default:
		p.str("{", labels, ",", extraLabel, "}")
	}
	p.str(" ", value)
	if ex != nil {
		p.str(` # {trace_id="`, ex.trace, `"} `, promFloat(ex.value))
	}
	p.str("\n")
}

// bucketUpperBound returns the inclusive upper bound of bucket i in the
// log-linear layout (the `le` value). The underflow bucket's bound is
// the layout's lower edge; the overflow bucket is +Inf.
func bucketUpperBound(i int) float64 {
	switch {
	case i <= 0:
		return math.Exp2(float64(histMinExp))
	case i > numBuckets:
		return math.Inf(1)
	}
	return math.Exp2(float64(i)/histSub + float64(histMinExp))
}

// WritePrometheus writes the registry's metrics in the OpenMetrics text
// exposition format, terminated by `# EOF`. A nil Registry writes only
// the terminator. Output is fully deterministic: families and label sets
// are sorted, and nothing in it depends on the clock.
func (r *Registry) WritePrometheus(w io.Writer) error {
	p := &promWriter{w: w}
	if r == nil {
		p.str("# EOF\n")
		return p.err
	}

	// Snapshot under the read lock, render outside it.
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	counterKeys := make([]string, 0, len(r.counters))
	for key, c := range r.counters {
		counters[key] = c.Value()
		counterKeys = append(counterKeys, key)
	}
	gauges := make(map[string]float64, len(r.gauges))
	gaugeKeys := make([]string, 0, len(r.gauges))
	for key, g := range r.gauges {
		gauges[key] = g.Value()
		gaugeKeys = append(gaugeKeys, key)
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	histKeys := make([]string, 0, len(r.hists))
	for key, h := range r.hists {
		hists[key] = h.Snapshot()
		histKeys = append(histKeys, key)
	}
	r.mu.RUnlock()

	names, families := groupFamilies(counterKeys)
	for _, name := range names {
		// OpenMetrics: family name drops `_total`, sample lines carry it.
		family := strings.TrimSuffix(name, "_total")
		p.str("# TYPE ", family, " counter\n")
		for _, s := range families[name] {
			p.sample(family+"_total", s.labels, "", strconv.FormatInt(counters[s.key], 10), nil)
		}
	}

	names, families = groupFamilies(gaugeKeys)
	for _, name := range names {
		p.str("# TYPE ", name, " gauge\n")
		for _, s := range families[name] {
			p.sample(name, s.labels, "", promFloat(gauges[s.key]), nil)
		}
	}

	names, families = groupFamilies(histKeys)
	for _, name := range names {
		p.str("# TYPE ", name, " histogram\n")
		for _, s := range families[name] {
			snap := hists[s.key]
			// Cumulative buckets: emit only occupied buckets (the layout
			// has 282; an ascending subset plus +Inf is valid exposition)
			// with each one's running total, exemplars attached where a
			// trace-attributed sample landed in that bucket.
			cum := int64(0)
			for i, n := range snap.buckets {
				if n == 0 || i > numBuckets {
					continue
				}
				cum += n
				le := `le="` + promFloat(bucketUpperBound(i)) + `"`
				p.sample(name+"_bucket", s.labels, le, strconv.FormatInt(cum, 10), snap.exemplars[i])
			}
			// The +Inf bucket and _count derive from the same bucket sums
			// as the cumulative lines, so the mini-parser's cumulativity
			// and count==+Inf invariants hold even if a concurrent Observe
			// tore the snapshot's count field.
			total := cum + snap.buckets[numBuckets+1]
			p.sample(name+"_bucket", s.labels, `le="+Inf"`, strconv.FormatInt(total, 10),
				snap.exemplars[numBuckets+1])
			p.sample(name+"_sum", s.labels, "", promFloat(snap.Sum), nil)
			p.sample(name+"_count", s.labels, "", strconv.FormatInt(total, 10), nil)
		}
	}

	p.str("# EOF\n")
	return p.err
}
