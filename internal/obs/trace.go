package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync/atomic"
)

// Trace identity. Every span belongs to exactly one trace: a 128-bit
// TraceID shared by all spans of one request (minted at the first span,
// or adopted from an inbound W3C traceparent header) plus a 64-bit
// SpanID unique to the span. The zero value of either type is invalid —
// W3C reserves all-zero IDs as "absent" — and is used as the "no
// parent" sentinel throughout.

// TraceID is a 128-bit trace identity, rendered as 32 lowercase hex
// digits on the wire.
type TraceID [16]byte

// SpanID is a 64-bit span identity, rendered as 16 lowercase hex
// digits on the wire.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
//
//numlint:hotpath
func (t TraceID) IsZero() bool {
	var zero TraceID
	return t == zero
}

// IsZero reports whether the ID is the invalid all-zero value.
//
//numlint:hotpath
func (s SpanID) IsZero() bool {
	var zero SpanID
	return s == zero
}

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 lowercase hex digits; the all-zero ID is
// rejected (W3C reserves it as invalid).
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, errBadTraceID
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || hasUpperHex(s) {
		return TraceID{}, errBadTraceID
	}
	if id.IsZero() {
		return TraceID{}, errBadTraceID
	}
	return id, nil
}

// ParseSpanID parses 16 lowercase hex digits; the all-zero ID is
// rejected.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 2*len(id) {
		return SpanID{}, errBadSpanID
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || hasUpperHex(s) {
		return SpanID{}, errBadSpanID
	}
	if id.IsZero() {
		return SpanID{}, errBadSpanID
	}
	return id, nil
}

// hasUpperHex reports whether s contains an uppercase hex digit. W3C
// traceparent requires lowercase; encoding/hex accepts both, so the
// parser re-checks.
func hasUpperHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'F' {
			return true
		}
	}
	return false
}

// idState is the process-wide ID generator state: a splitmix64 stream
// seeded from crypto/rand at start-up. Splitmix's increment guarantees
// a full 2^64 period, so collisions within a process are impossible for
// span IDs until wrap-around, and the random seed de-correlates
// processes. Not cryptographic — trace IDs are correlation handles, not
// secrets.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	}
}

// nextID draws the next 64-bit ID (splitmix64 output function over an
// atomically advanced Weyl sequence). Never returns 0.
//
//numlint:hotpath
func nextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// newTraceID mints a fresh non-zero 128-bit trace ID.
func newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], nextID())
	binary.BigEndian.PutUint64(id[8:], nextID())
	return id
}

// newSpanID mints a fresh non-zero 64-bit span ID.
func newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], nextID())
	return id
}

// W3C Trace Context (https://www.w3.org/TR/trace-context/). The
// traceparent header carries trace identity across service boundaries:
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// The parser accepts any version except the reserved ff; versions
// above 00 may carry additional "-"-separated fields, which are
// ignored as the spec requires.

// FlagSampled is the traceparent sampled flag bit.
const FlagSampled byte = 0x01

var (
	errBadTraceparent = errors.New("obs: malformed traceparent")
	errBadTraceID     = errors.New("obs: malformed trace id")
	errBadSpanID      = errors.New("obs: malformed span id")
)

const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2 // version-traceid-spanid-flags

// ParseTraceparent parses a W3C traceparent header value into its trace
// ID, parent span ID and flags. Malformed versions, wrong field widths,
// uppercase hex and all-zero trace or span IDs are rejected.
func ParseTraceparent(h string) (TraceID, SpanID, byte, error) {
	if len(h) < traceparentLen {
		return TraceID{}, SpanID{}, 0, errBadTraceparent
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, 0, errBadTraceparent
	}
	version, ok := parseHexByte(h[0:2])
	if !ok || version == 0xff {
		return TraceID{}, SpanID{}, 0, errBadTraceparent
	}
	if len(h) > traceparentLen {
		// Only future versions may carry extra fields, and they must be
		// "-"-separated.
		if version == 0 || h[traceparentLen] != '-' {
			return TraceID{}, SpanID{}, 0, errBadTraceparent
		}
	}
	traceID, err := ParseTraceID(h[3:35])
	if err != nil {
		return TraceID{}, SpanID{}, 0, errBadTraceparent
	}
	spanID, err := ParseSpanID(h[36:52])
	if err != nil {
		return TraceID{}, SpanID{}, 0, errBadTraceparent
	}
	flags, ok := parseHexByte(h[53:55])
	if !ok {
		return TraceID{}, SpanID{}, 0, errBadTraceparent
	}
	return traceID, spanID, flags, nil
}

// parseHexByte decodes exactly two lowercase hex digits.
func parseHexByte(s string) (byte, bool) {
	hi, ok1 := hexNibble(s[0])
	lo, ok2 := hexNibble(s[1])
	return hi<<4 | lo, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(trace TraceID, span SpanID, flags byte) string {
	var buf [traceparentLen]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], trace[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], span[:])
	buf[52] = '-'
	const digits = "0123456789abcdef"
	buf[53] = digits[flags>>4]
	buf[54] = digits[flags&0x0f]
	return string(buf[:])
}

// spanKeyType keys the context span slot; the package-level spanKey
// value keeps SpanFromContext allocation-free (a zero-size struct boxes
// to a static interface value).
type spanKeyType struct{}

var spanKey spanKeyType

// ContextWithSpan returns a context carrying the span. Layers pass the
// returned context down so later StartSpan calls nest under it; a nil
// span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	if ctx == nil {
		//numlint:ignore ctxflow nil ctx means the caller has no cancellation chain to preserve
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the span carried by ctx, or nil. Safe on a
// nil context.
//
//numlint:hotpath
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan begins a span as a child of the span carried by ctx, or a
// root span on reg's tracer when the context carries none, and returns
// a context carrying the new span. With a nil registry and no parent in
// ctx it returns (ctx, nil) — but note the attrs slice is built by the
// caller either way, so zero-alloc disabled paths must guard the call
// on TracingEnabled (see the instrumented packages for the idiom).
func StartSpan(ctx context.Context, reg *Registry, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent != nil {
		s := parent.Child(name, attrs...)
		return ContextWithSpan(ctx, s), s
	}
	if reg == nil {
		return ctx, nil
	}
	s := reg.Tracer().Start(name, attrs...)
	return ContextWithSpan(ctx, s), s
}

// TracingEnabled reports whether StartSpan would record a span — the
// guard instrumented code uses so the disabled path never builds an
// attribute slice.
//
//numlint:hotpath
func TracingEnabled(ctx context.Context, reg *Registry) bool {
	return reg != nil || SpanFromContext(ctx) != nil
}
