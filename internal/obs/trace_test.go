package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseTraceparentValid(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	trace, span, flags, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got := trace.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace = %s", got)
	}
	if got := span.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span = %s", got)
	}
	if flags != FlagSampled {
		t.Errorf("flags = %#x, want %#x", flags, FlagSampled)
	}
	if back := FormatTraceparent(trace, span, flags); back != h {
		t.Errorf("FormatTraceparent round-trip = %q, want %q", back, h)
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Versions above 00 may carry extra "-"-separated fields, which are
	// ignored.
	base := "4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	for _, h := range []string{"01-" + base, "01-" + base + "-extra-fields"} {
		if _, _, _, err := ParseTraceparent(h); err != nil {
			t.Errorf("ParseTraceparent(%q) = %v, want nil", h, err)
		}
	}
	// Version 00 is exactly four fields; trailing content is malformed.
	for _, h := range []string{"00-" + base + "-extra", "01-" + base + "x"} {
		if _, _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", h)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	cases := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // reserved version
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // all-zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // all-zero span
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01",  // uppercase span
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e473-000f067aa0ba902b7-01",  // short trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",  // non-hex flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736--00f067aa0ba902b7-01", // shifted fields
	}
	for _, h := range cases {
		if _, _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", h)
		}
	}
}

// FuzzParseTraceparent checks the parser never panics and only accepts
// values that round-trip through the ID parsers: any accepted header
// yields non-zero, re-parseable IDs.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00-more")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add(strings.Repeat("-", 60))
	f.Fuzz(func(t *testing.T, h string) {
		trace, span, _, err := ParseTraceparent(h)
		if err != nil {
			if !trace.IsZero() || !span.IsZero() {
				t.Fatalf("error path leaked IDs: %v %v", trace, span)
			}
			return
		}
		if trace.IsZero() || span.IsZero() {
			t.Fatalf("accepted all-zero ID from %q", h)
		}
		if _, err := ParseTraceID(trace.String()); err != nil {
			t.Fatalf("trace %q does not re-parse: %v", trace, err)
		}
		if _, err := ParseSpanID(span.String()); err != nil {
			t.Fatalf("span %q does not re-parse: %v", span, err)
		}
	})
}

func TestParseIDRejections(t *testing.T) {
	if _, err := ParseTraceID("00000000000000000000000000000000"); err == nil {
		t.Error("all-zero trace ID accepted")
	}
	if _, err := ParseTraceID("4bf92f3577b34da6"); err == nil {
		t.Error("short trace ID accepted")
	}
	if _, err := ParseSpanID("0000000000000000"); err == nil {
		t.Error("all-zero span ID accepted")
	}
	if _, err := ParseSpanID("00f067aa0ba902b7ff"); err == nil {
		t.Error("long span ID accepted")
	}
}

func TestContextSpanCarriage(t *testing.T) {
	if s := SpanFromContext(context.Background()); s != nil {
		t.Errorf("empty context carries span %v", s)
	}
	if s := SpanFromContext(nil); s != nil { //nolint:staticcheck // nil-safety is the contract
		t.Errorf("nil context carries span %v", s)
	}
	reg := NewRegistry()
	ctx, root := StartSpan(context.Background(), reg, "root")
	if root == nil {
		t.Fatal("StartSpan with registry returned nil span")
	}
	if got := SpanFromContext(ctx); got != root {
		t.Errorf("SpanFromContext = %v, want the started span", got)
	}
	ctx2, child := StartSpan(ctx, nil, "child")
	if child == nil {
		t.Fatal("StartSpan under a parent span returned nil even without a registry")
	}
	child.End()
	root.End()
	_ = ctx2
	spans := reg.Tracer().Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	if spans[0].TraceID != spans[1].TraceID {
		t.Errorf("child trace %s != root trace %s", spans[0].TraceID, spans[1].TraceID)
	}
	if spans[0].ParentSpanID != spans[1].SpanID {
		t.Errorf("child parent %s != root span %s", spans[0].ParentSpanID, spans[1].SpanID)
	}
}

func TestStartSpanDisabled(t *testing.T) {
	ctx := context.Background()
	ctx2, span := StartSpan(ctx, nil, "nothing")
	if span != nil || ctx2 != ctx {
		t.Errorf("disabled StartSpan = (%v, %v), want (ctx, nil)", ctx2, span)
	}
	if TracingEnabled(ctx, nil) {
		t.Error("TracingEnabled with nothing to record")
	}
	if !TracingEnabled(ctx, NewRegistry()) {
		t.Error("!TracingEnabled with a registry")
	}
}

// TestDisabledPathAllocs pins the disabled (no registry, untraced
// context) guard path at zero allocations.
func TestDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		if TracingEnabled(ctx, nil) {
			t.Fatal("enabled")
		}
		if s := SpanFromContext(ctx); s != nil {
			t.Fatal("span")
		}
		if _, s := StartSpan(ctx, nil, "off"); s != nil {
			t.Fatal("started")
		}
	}); n != 0 {
		t.Errorf("disabled tracing path allocates %v per op, want 0", n)
	}
}

func TestTraceMiddleware(t *testing.T) {
	reg := NewRegistry()
	var sawTrace string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s := SpanFromContext(r.Context()); s != nil {
			sawTrace = s.TraceID().String()
		}
		w.WriteHeader(http.StatusTeapot)
	})
	srv := httptest.NewServer(TraceMiddleware(reg, inner))
	defer srv.Close()

	// Inbound traceparent: the request joins the caller's trace.
	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("GET", srv.URL+"/x", nil)
	req.Header.Set(TraceparentHeader, "00-"+wantTrace+"-00f067aa0ba902b7-01")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != wantTrace {
		t.Errorf("%s = %q, want %q", TraceHeader, got, wantTrace)
	}
	if sawTrace != wantTrace {
		t.Errorf("handler saw trace %q, want %q", sawTrace, wantTrace)
	}
	spans := reg.Tracer().TraceSpans(TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6,
		0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36})
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans for inbound trace, want 1", len(spans))
	}
	if spans[0].Name != "http.request" || spans[0].ParentSpanID != "00f067aa0ba902b7" {
		t.Errorf("span = %+v", spans[0])
	}
	if spans[0].Attrs["status"] != "418" {
		t.Errorf("status attr = %q, want 418", spans[0].Attrs["status"])
	}

	// Malformed traceparent: ignored, a fresh root trace is minted.
	req2, _ := http.NewRequest("GET", srv.URL+"/y", nil)
	req2.Header.Set(TraceparentHeader, "not-a-traceparent")
	resp2, err := srv.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	fresh := resp2.Header.Get(TraceHeader)
	if fresh == "" || fresh == wantTrace {
		t.Errorf("fresh trace = %q, want a new non-empty ID", fresh)
	}
	if _, err := ParseTraceID(fresh); err != nil {
		t.Errorf("fresh trace %q does not parse: %v", fresh, err)
	}

	// Nil registry: the middleware is a no-op passthrough.
	if h := TraceMiddleware(nil, inner); h == nil {
		t.Fatal("nil-registry middleware is nil")
	} else if _, ok := h.(http.HandlerFunc); !ok {
		// must be the inner handler unchanged
		t.Errorf("nil-registry middleware wrapped the handler: %T", h)
	}
}
