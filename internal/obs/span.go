package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func formatInt(v int64) string     { return strconv.FormatInt(v, 10) }
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Attr is one key/value span attribute. Values are strings so that span
// JSON round-trips exactly; use the Int/Float helpers for numbers.
type Attr struct {
	Key, Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: formatInt(value)}
}

// Float builds a float attribute (shortest round-trippable form).
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: formatFloat(value)}
}

// SpanRecord is one completed span, the unit of the trace JSON export.
type SpanRecord struct {
	// TraceID groups all spans of one request; SpanID identifies this
	// span within it. ParentSpanID is empty for root spans (a root may
	// still have a remote parent in another process, carried by the
	// inbound traceparent but not retained here).
	TraceID      string `json:"trace_id"`
	SpanID       string `json:"span_id"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// Name identifies the traced stage, e.g. "core.build",
	// "ctmc.transient", "sweep.scenario".
	Name string `json:"name"`
	// StartUnixNs is the wall-clock start in Unix nanoseconds;
	// DurationNs the span length in nanoseconds.
	StartUnixNs int64 `json:"start_unix_ns"`
	DurationNs  int64 `json:"duration_ns"`
	// Attrs carries the key/value attributes recorded at begin and end.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer collects spans. It is safe for concurrent use and bounded: at
// most maxSpans completed spans are retained in a ring, and once the
// ring is full each newly completed span evicts the oldest one — so a
// long-running daemon always holds the most recent traces, and memory
// cannot grow without bound. Dropped counts the evicted spans. A nil
// Tracer is a no-op.
type Tracer struct {
	mu      sync.Mutex
	ring    []SpanRecord // ring storage; capacity fixed at max
	head    int          // next write position
	count   int          // live records, <= max
	max     int
	dropped atomic.Int64
	now     func() time.Time
}

// DefaultMaxSpans bounds how many completed spans a Tracer retains.
const DefaultMaxSpans = 16384

// NewTracer returns a Tracer retaining up to DefaultMaxSpans spans.
func NewTracer() *Tracer {
	return &Tracer{max: DefaultMaxSpans, now: time.Now}
}

// SetMaxSpans adjusts the retention bound (values < 1 select 1). When
// shrinking below the current population the oldest spans are evicted
// and counted as dropped.
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n == t.max {
		return
	}
	old := t.snapshotLocked()
	if excess := len(old) - n; excess > 0 {
		old = old[excess:]
		t.dropped.Add(int64(excess))
	}
	t.ring = make([]SpanRecord, n)
	copy(t.ring, old)
	t.head = len(old) % n
	t.count = len(old)
	t.max = n
}

// SetClock replaces the tracer's time source — for tests that need
// deterministic timestamps and durations.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Tracer) clock() time.Time {
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	return now()
}

// Span is an in-flight span; End completes it. A nil Span (from a nil
// Tracer or a disabled StartSpan) ignores every method. A Span is owned
// by the goroutine that started it — SetAttr and End must not race —
// but Child may be called from any goroutine (the identity fields are
// immutable), which is how concurrent waiters attach events to a shared
// job span.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
}

// TraceID reports the span's trace identity; zero on a nil Span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// SpanID reports the span's own identity; zero on a nil Span.
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Start begins a root span with a freshly minted trace ID. On a nil
// Tracer it returns nil, making the whole Start/SetAttr/End chain free
// when tracing is disabled.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(newTraceID(), SpanID{}, name, attrs)
}

// StartRemote begins a root span that continues a trace started in
// another process: the span adopts the given trace ID and records the
// remote span as its parent — the middleware path for inbound W3C
// traceparent headers. A zero trace ID falls back to minting a fresh
// one.
func (t *Tracer) StartRemote(trace TraceID, parent SpanID, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if trace.IsZero() {
		trace = newTraceID()
	}
	return t.startSpan(trace, parent, name, attrs)
}

func (t *Tracer) startSpan(trace TraceID, parent SpanID, name string, attrs []Attr) *Span {
	return &Span{
		tracer: t,
		trace:  trace,
		id:     newSpanID(),
		parent: parent,
		name:   name,
		start:  t.clock(),
		attrs:  attrs,
	}
}

// Child begins a span nested under s, in the same trace.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.startSpan(s.trace, s.id, name, attrs)
}

// SetAttr records an additional attribute on the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span, appending any final attributes, and records it
// with the tracer.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	end := s.tracer.clock()
	rec := SpanRecord{
		TraceID:     s.trace.String(),
		SpanID:      s.id.String(),
		Name:        s.name,
		StartUnixNs: s.start.UnixNano(),
		DurationNs:  end.Sub(s.start).Nanoseconds(),
	}
	if !s.parent.IsZero() {
		rec.ParentSpanID = s.parent.String()
	}
	if n := len(s.attrs) + len(attrs); n > 0 {
		rec.Attrs = make(map[string]string, n)
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	t := s.tracer
	t.mu.Lock()
	if t.ring == nil {
		t.ring = make([]SpanRecord, t.max)
	}
	t.ring[t.head] = rec
	t.head = (t.head + 1) % t.max
	if t.count < t.max {
		t.count++
	} else {
		// Ring full: the write above evicted the oldest completed span.
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// snapshotLocked copies the live records oldest-first; t.mu must be
// held.
func (t *Tracer) snapshotLocked() []SpanRecord {
	out := make([]SpanRecord, 0, t.count)
	start := t.head - t.count
	if start < 0 {
		start += t.max
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%t.max])
	}
	return out
}

// Spans returns a copy of the retained completed spans in completion
// order, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// TraceSpans returns the retained completed spans of one trace, in
// completion order. Spans of a still-running stage are absent until
// their End.
func (t *Tracer) TraceSpans(id TraceID) []SpanRecord {
	if t == nil {
		return nil
	}
	want := id.String()
	var out []SpanRecord
	t.mu.Lock()
	defer t.mu.Unlock()
	start := t.head - t.count
	if start < 0 {
		start += t.max
	}
	for i := 0; i < t.count; i++ {
		rec := t.ring[(start+i)%t.max]
		if rec.TraceID == want {
			out = append(out, rec)
		}
	}
	return out
}

// Dropped reports how many completed spans the retention ring has
// evicted (or, before the ring existed, discarded).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// WriteJSON writes the retained spans as one JSON array. A nil Tracer
// writes an empty array, so --trace-out always produces valid JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// ReadSpans parses a span JSON array written by WriteJSON — the other
// half of the round-trip, used by trace-reading tools and tests.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var spans []SpanRecord
	if err := json.NewDecoder(r).Decode(&spans); err != nil {
		return nil, err
	}
	return spans, nil
}
