package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func formatInt(v int64) string     { return strconv.FormatInt(v, 10) }
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Attr is one key/value span attribute. Values are strings so that span
// JSON round-trips exactly; use the Int/Float helpers for numbers.
type Attr struct {
	Key, Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: formatInt(value)}
}

// Float builds a float attribute (shortest round-trippable form).
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: formatFloat(value)}
}

// SpanRecord is one completed span, the unit of the trace JSON export.
type SpanRecord struct {
	// ID is unique within the tracer; Parent is 0 for root spans.
	ID     int64 `json:"id"`
	Parent int64 `json:"parent,omitempty"`
	// Name identifies the traced stage, e.g. "core.build",
	// "ctmc.transient", "sweep.scenario".
	Name string `json:"name"`
	// StartUnixNs is the wall-clock start in Unix nanoseconds;
	// DurationNs the span length in nanoseconds.
	StartUnixNs int64 `json:"start_unix_ns"`
	DurationNs  int64 `json:"duration_ns"`
	// Attrs carries the key/value attributes recorded at begin and end.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer collects spans. It is safe for concurrent use and bounded: at
// most maxSpans completed spans are retained, later ones are counted as
// dropped, so a long sweep cannot grow memory without bound. A nil
// Tracer is a no-op.
type Tracer struct {
	mu      sync.Mutex
	spans   []SpanRecord
	nextID  atomic.Int64
	dropped atomic.Int64
	max     int
	now     func() time.Time
}

// DefaultMaxSpans bounds how many completed spans a Tracer retains.
const DefaultMaxSpans = 16384

// NewTracer returns a Tracer retaining up to DefaultMaxSpans spans.
func NewTracer() *Tracer {
	return &Tracer{max: DefaultMaxSpans, now: time.Now}
}

// SetMaxSpans adjusts the retention bound (values < 1 select 1).
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// SetClock replaces the tracer's time source — for tests that need
// deterministic timestamps and durations.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

func (t *Tracer) clock() time.Time {
	t.mu.Lock()
	now := t.now
	t.mu.Unlock()
	return now()
}

// Span is an in-flight span; End completes it. A nil Span (from a nil
// Tracer) ignores every method.
type Span struct {
	tracer *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
	attrs  []Attr
}

// Start begins a root span. On a nil Tracer it returns nil, making the
// whole Start/SetAttr/End chain free when tracing is disabled.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	return t.startSpan(0, name, attrs)
}

func (t *Tracer) startSpan(parent int64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  t.clock(),
		attrs:  attrs,
	}
}

// Child begins a span nested under s.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.startSpan(s.id, name, attrs)
}

// SetAttr records an additional attribute on the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span, appending any final attributes, and records it
// with the tracer.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	end := s.tracer.clock()
	rec := SpanRecord{
		ID:          s.id,
		Parent:      s.parent,
		Name:        s.name,
		StartUnixNs: s.start.UnixNano(),
		DurationNs:  end.Sub(s.start).Nanoseconds(),
	}
	if n := len(s.attrs) + len(attrs); n > 0 {
		rec.Attrs = make(map[string]string, n)
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	t := s.tracer
	t.mu.Lock()
	if len(t.spans) < t.max {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Spans returns a copy of the completed spans in completion order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans were discarded over the retention
// bound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// WriteJSON writes the completed spans as one JSON array. A nil Tracer
// writes an empty array, so --trace-out always produces valid JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// ReadSpans parses a span JSON array written by WriteJSON — the other
// half of the round-trip, used by trace-reading tools and tests.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var spans []SpanRecord
	if err := json.NewDecoder(r).Decode(&spans); err != nil {
		return nil, err
	}
	return spans, nil
}
