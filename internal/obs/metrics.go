package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter is a no-op (the disabled fast path).
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter, for callers that need counts
// even without a Registry (e.g. engine cache statistics).
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n. No-op on a nil Counter.
//
//numlint:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil Counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil Counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge. The zero value is ready to use; a
// nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v. No-op on a nil Gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge. No-op on a nil Gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value; zero on a nil Gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout: log-linear with histSub sub-buckets per power
// of two, covering [2^histMinExp, 2^histMaxExp). Values outside the
// range land in saturated edge buckets. With histSub = 4 the bucket
// boundaries grow by 2^(1/4) ≈ 1.19, so a reported quantile is within
// ~19% (relative) of the exact order statistic — tight enough to size
// iteration counts, window widths and durations, at 8 bytes per bucket.
const (
	histSub    = 4
	histMinExp = -30 // ≈ 1e-9: nanosecond-scale durations in seconds
	histMaxExp = 40  // ≈ 1e12: state counts, iteration totals
	numBuckets = (histMaxExp - histMinExp) * histSub
)

// Histogram is a lock-free histogram of non-negative float64 samples
// with atomic bucket counts. The zero value is ready to use; a nil
// Histogram is a no-op. Negative and NaN samples are counted but
// attributed to the lowest bucket (they never occur in the quantities
// the solver records; the clamp keeps the type total-function).
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits; MaxFloat64 when empty
	maxBits atomic.Uint64 // float64 bits; -MaxFloat64 when empty
	buckets [numBuckets + 2]atomic.Int64
	// exemplars holds, per bucket, the slowest trace-attributed sample
	// seen so far — the OpenMetrics exemplar the Prometheus exposition
	// attaches to that bucket's line, linking a latency spike back to
	// its trace.
	exemplars [numBuckets + 2]atomic.Pointer[exemplar]
}

// exemplar is one trace-attributed observation.
type exemplar struct {
	trace string
	value float64
}

// NewHistogram returns a standalone histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.MaxFloat64))
	h.maxBits.Store(math.Float64bits(-math.MaxFloat64))
	return h
}

// bucketIndex maps a sample to its bucket: 0 is the underflow bucket,
// numBuckets+1 the overflow bucket, and 1..numBuckets the log-linear
// interior.
func bucketIndex(v float64) int {
	if !(v > 0) || math.IsNaN(v) {
		return 0
	}
	idx := int(math.Floor(histSub*math.Log2(v))) - histMinExp*histSub
	switch {
	case idx < 0:
		return 0
	case idx >= numBuckets:
		return numBuckets + 1
	}
	return idx + 1
}

// bucketValue returns the representative value of bucket i — the
// geometric midpoint of its bounds — used when reporting quantiles.
func bucketValue(i int) float64 {
	switch {
	case i <= 0:
		return math.Exp2(float64(histMinExp))
	case i > numBuckets:
		return math.Exp2(float64(histMaxExp))
	}
	return math.Exp2((float64(i-1)+0.5)/histSub + float64(histMinExp))
}

// Observe records one sample. No-op on a nil Histogram.
//
//numlint:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveDuration records a duration given in seconds; it is Observe
// with a name that documents the unit convention used across the stack.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// ObserveExemplar records one sample and, when the trace ID is valid,
// offers it as the bucket's exemplar. Each bucket keeps its slowest
// trace-attributed sample, so the exposition's exemplars point an
// operator at the trace behind the worst observation in every latency
// band. No-op on a nil Histogram; a zero trace ID degrades to Observe.
func (h *Histogram) ObserveExemplar(v float64, trace TraceID) {
	if h == nil {
		return
	}
	h.Observe(v)
	if trace.IsZero() {
		return
	}
	slot := &h.exemplars[bucketIndex(v)]
	for {
		old := slot.Load()
		if old != nil && old.value >= v {
			return
		}
		if slot.CompareAndSwap(old, &exemplar{trace: trace.String(), value: v}) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to read
// without synchronisation.
type HistogramSnapshot struct {
	// Count and Sum aggregate every observed sample.
	Count int64
	Sum   float64
	// Min and Max are the exact extreme samples (0 when empty).
	Min, Max  float64
	buckets   [numBuckets + 2]int64
	exemplars [numBuckets + 2]*exemplar
}

// Snapshot copies the histogram's current state. On a nil Histogram it
// returns an empty snapshot. Concurrent Observes may tear between count
// and buckets by at most the in-flight samples; quantiles remain valid
// bounds.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
		s.exemplars[i] = h.exemplars[i].Load()
	}
	return s
}

// Mean returns the arithmetic mean of the observed samples, or 0 when
// empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an estimate of the q-th quantile (q in [0, 1]) by
// walking the cumulative bucket counts; the result is the representative
// value of the bucket containing the rank, clamped to the exact [Min,
// Max] envelope, so its relative error is bounded by the bucket growth
// factor 2^(1/4) ≈ 19%.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, n := range s.buckets {
		cum += n
		if cum >= rank {
			v := bucketValue(i)
			return math.Min(s.Max, math.Max(s.Min, v))
		}
	}
	return s.Max
}
