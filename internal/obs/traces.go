package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Live trace inspection. BuildTraceTrees reassembles the tracer's flat
// completed-span ring into per-trace span trees, and TracesHandler
// serves them at /debug/traces as JSON (or a plain-text waterfall with
// ?fmt=text) so an operator can inspect where a slow solve spent its
// time without any external tracing infrastructure.

// TraceNode is one span with its children nested beneath it.
type TraceNode struct {
	SpanRecord
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceTree is every retained span of one trace, as a forest of root
// nodes (spans whose parent is unknown — true roots, or spans whose
// parent was evicted from the ring or ended in another process).
type TraceTree struct {
	TraceID string `json:"trace_id"`
	// StartUnixNs is the earliest span start; DurationNs spans from it
	// to the latest span end.
	StartUnixNs int64        `json:"start_unix_ns"`
	DurationNs  int64        `json:"duration_ns"`
	SpanCount   int          `json:"span_count"`
	Spans       []*TraceNode `json:"spans"`
}

// BuildTraceTrees groups completed spans by trace ID and links each
// trace's spans into trees by parent span ID. Trees are ordered newest
// trace first; within a trace, siblings are ordered by start time.
func BuildTraceTrees(spans []SpanRecord) []*TraceTree {
	byTrace := make(map[string][]*TraceNode)
	order := make([]string, 0)
	for _, rec := range spans {
		if _, seen := byTrace[rec.TraceID]; !seen {
			order = append(order, rec.TraceID)
		}
		byTrace[rec.TraceID] = append(byTrace[rec.TraceID], &TraceNode{SpanRecord: rec})
	}
	trees := make([]*TraceTree, 0, len(order))
	for _, id := range order {
		nodes := byTrace[id]
		byID := make(map[string]*TraceNode, len(nodes))
		for _, n := range nodes {
			byID[n.SpanID] = n
		}
		tree := &TraceTree{TraceID: id, SpanCount: len(nodes)}
		for _, n := range nodes {
			if p, ok := byID[n.ParentSpanID]; ok && n.ParentSpanID != "" && p != n {
				p.Children = append(p.Children, n)
			} else {
				tree.Spans = append(tree.Spans, n)
			}
		}
		tree.StartUnixNs, tree.DurationNs = envelope(nodes)
		sortNodes(tree.Spans)
		for _, n := range nodes {
			sortNodes(n.Children)
		}
		trees = append(trees, tree)
	}
	// Newest trace first: order by envelope start, descending.
	sort.SliceStable(trees, func(i, j int) bool { return trees[i].StartUnixNs > trees[j].StartUnixNs })
	return trees
}

// envelope returns the earliest start and the span of the whole trace.
func envelope(nodes []*TraceNode) (start, duration int64) {
	if len(nodes) == 0 {
		return 0, 0
	}
	start = nodes[0].StartUnixNs
	end := start
	for _, n := range nodes {
		if n.StartUnixNs < start {
			start = n.StartUnixNs
		}
		if e := n.StartUnixNs + n.DurationNs; e > end {
			end = e
		}
	}
	return start, end - start
}

func sortNodes(nodes []*TraceNode) {
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].StartUnixNs < nodes[j].StartUnixNs })
}

// waterfallWidth is the bar width of the text waterfall, in cells.
const waterfallWidth = 32

// WriteWaterfall renders the trace as an indented text waterfall: one
// line per span with its offset from the trace start, duration, and a
// bar showing its extent within the trace window.
func (t *TraceTree) WriteWaterfall(b *strings.Builder) {
	fmt.Fprintf(b, "trace %s  spans=%d  duration=%s\n",
		t.TraceID, t.SpanCount, formatNs(t.DurationNs))
	for _, n := range t.Spans {
		n.writeWaterfall(b, t, 1)
	}
}

func (n *TraceNode) writeWaterfall(b *strings.Builder, t *TraceTree, depth int) {
	bar := [waterfallWidth]byte{}
	for i := range bar {
		bar[i] = '.'
	}
	if t.DurationNs > 0 {
		lo := int(int64(waterfallWidth) * (n.StartUnixNs - t.StartUnixNs) / t.DurationNs)
		hi := int(int64(waterfallWidth) * (n.StartUnixNs + n.DurationNs - t.StartUnixNs) / t.DurationNs)
		if lo < 0 {
			lo = 0
		}
		if hi >= waterfallWidth {
			hi = waterfallWidth - 1
		}
		for i := lo; i <= hi; i++ {
			bar[i] = '='
		}
	}
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%-*s [%s] +%s %s\n",
		indent, 28-2*depth, n.Name, bar[:], formatNs(n.StartUnixNs-t.StartUnixNs), formatNs(n.DurationNs))
	for _, c := range n.Children {
		c.writeWaterfall(b, t, depth+1)
	}
}

// formatNs renders a nanosecond quantity with an adaptive unit.
func formatNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return strconv.FormatFloat(float64(ns)/1e9, 'f', 3, 64) + "s"
	case ns >= 1e6:
		return strconv.FormatFloat(float64(ns)/1e6, 'f', 3, 64) + "ms"
	case ns >= 1e3:
		return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64) + "µs"
	}
	return strconv.FormatInt(ns, 10) + "ns"
}

// TracesHandler serves the tracer's retained spans as per-trace span
// trees: JSON by default, a text waterfall with ?fmt=text. ?trace=<hex>
// filters to one trace ID, ?n=<k> limits to the k most recent traces.
func TracesHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spans []SpanRecord
		if want := r.URL.Query().Get("trace"); want != "" {
			id, err := ParseTraceID(want)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			spans = reg.Tracer().TraceSpans(id)
		} else {
			spans = reg.Tracer().Spans()
		}
		trees := BuildTraceTrees(spans)
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(trees) {
				trees = trees[:n]
			}
		}
		if r.URL.Query().Get("fmt") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			var b strings.Builder
			for _, t := range trees {
				t.WriteWaterfall(&b)
				b.WriteByte('\n')
			}
			_, _ = fmt.Fprint(w, b.String())
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if trees == nil {
			trees = []*TraceTree{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(trees)
	})
}
