package obs

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// goldenRegistry builds a deterministic registry exercising every
// exposition feature: bare and labeled counters, label-value escaping,
// a gauge, and a histogram with exemplars and an overflow observation.
func goldenRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("solves_total").Add(3)
	r.CounterWith("requests_total", String("endpoint", "solve")).Add(2)
	r.CounterWith("requests_total", String("endpoint", "sweep")).Inc()
	r.CounterWith("odd_total", String("path", "a\\b\"c\nd")).Inc()
	r.Gauge("inflight").Set(2)
	h := r.Histogram("latency_seconds")
	h.Observe(0.25)
	h.Observe(0.25)
	trace, err := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	if err != nil {
		t.Fatal(err)
	}
	h.ObserveExemplar(0.5, trace)
	h.ObserveExemplar(0.4, trace) // slower 0.5 keeps the bucket's exemplar
	h.Observe(1e300)              // overflow bucket
	return r
}

// TestPrometheusGolden pins the exposition byte-for-byte: family
// grouping and ordering, `_total` sample naming, label escaping,
// cumulative buckets, exemplar syntax and the `# EOF` terminator.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry(t).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE odd counter
odd_total{path="a\\b\"c\nd"} 1
# TYPE requests counter
requests_total{endpoint="solve"} 2
requests_total{endpoint="sweep"} 1
# TYPE solves counter
solves_total 3
# TYPE inflight gauge
inflight 2
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.29730177875068026"} 2
latency_seconds_bucket{le="0.4204482076268573"} 3 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.4
latency_seconds_bucket{le="0.5946035575013605"} 4 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.5
latency_seconds_bucket{le="+Inf"} 5
latency_seconds_sum 1e+300
latency_seconds_count 5
# EOF
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPrometheusNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	var r *Registry
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Errorf("nil registry exposition = %q, want # EOF only", buf.String())
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	name     string
	labels   map[string]string
	value    float64
	exemplar string // trace_id, "" when absent
}

// parsePromText is a minimal in-repo parser for the subset of the
// OpenMetrics text format WritePrometheus emits. It fails the test on
// anything it does not understand, so drift in the exposition surfaces
// here as well as in the golden bytes.
func parsePromText(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	lines := strings.Split(text, "\n")
	if lines[len(lines)-1] != "" || lines[len(lines)-2] != "# EOF" {
		t.Fatalf("exposition must end with a # EOF line")
	}
	for _, line := range lines[: len(lines)-2 : len(lines)-2] {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("bad TYPE line %q", line)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		s := promSample{labels: map[string]string{}}
		body := line
		if i := strings.Index(line, " # "); i >= 0 {
			body = line[:i]
			ex := line[i+3:]
			inner, ok := strings.CutPrefix(ex, `{trace_id="`)
			if !ok {
				t.Fatalf("bad exemplar %q", ex)
			}
			id, val, ok := strings.Cut(inner, `"} `)
			if !ok {
				t.Fatalf("bad exemplar %q", ex)
			}
			if _, err := ParseTraceID(id); err != nil {
				t.Fatalf("exemplar trace id %q: %v", id, err)
			}
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("exemplar value %q: %v", val, err)
			}
			s.exemplar = id
		}
		nameAndLabels, valueStr, ok := strings.Cut(body, " ")
		if !ok {
			t.Fatalf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s.value = v
		s.name = nameAndLabels
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			s.name = nameAndLabels[:i]
			inner := strings.TrimSuffix(nameAndLabels[i+1:], "}")
			for len(inner) > 0 {
				key, rest, ok := strings.Cut(inner, `="`)
				if !ok {
					t.Fatalf("bad label set in %q", line)
				}
				// Unescape up to the closing quote.
				var val strings.Builder
				j := 0
				for ; j < len(rest); j++ {
					if rest[j] == '"' {
						break
					}
					if rest[j] == '\\' && j+1 < len(rest) {
						j++
						switch rest[j] {
						case 'n':
							val.WriteByte('\n')
						default:
							val.WriteByte(rest[j])
						}
						continue
					}
					val.WriteByte(rest[j])
				}
				if j == len(rest) {
					t.Fatalf("unterminated label value in %q", line)
				}
				s.labels[key] = val.String()
				inner = strings.TrimPrefix(rest[j+1:], ",")
			}
		}
		samples = append(samples, s)
	}
	return types, samples
}

// TestPrometheusParses runs the mini-parser over the golden registry's
// exposition and checks the structural invariants: every sample has a
// TYPE, counters carry _total, histogram buckets are cumulative in
// ascending le order and agree with _count, and escaped label values
// round-trip.
func TestPrometheusParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry(t).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types, samples := parsePromText(t, buf.String())

	if types["latency_seconds"] != "histogram" {
		t.Errorf("latency_seconds type = %q", types["latency_seconds"])
	}
	if types["requests"] != "counter" || types["inflight"] != "gauge" {
		t.Errorf("types = %v", types)
	}

	var buckets []promSample
	var count, sum *promSample
	seen := map[string]bool{}
	for i := range samples {
		s := samples[i]
		base := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count", "_total"} {
			if b, ok := strings.CutSuffix(s.name, suffix); ok {
				base = b
				break
			}
		}
		if _, ok := types[base]; !ok {
			t.Errorf("sample %s has no TYPE for family %s", s.name, base)
		}
		if types[base] == "counter" && !strings.HasSuffix(s.name, "_total") {
			t.Errorf("counter sample %s lacks _total", s.name)
		}
		seen[s.name] = true
		switch s.name {
		case "latency_seconds_bucket":
			buckets = append(buckets, s)
		case "latency_seconds_count":
			count = &samples[i]
		case "latency_seconds_sum":
			sum = &samples[i]
		}
	}
	if !seen["odd_total"] {
		t.Fatalf("escaped-label counter missing: %v", seen)
	}
	for _, s := range samples {
		if s.name == "odd_total" && s.labels["path"] != "a\\b\"c\nd" {
			t.Errorf("escaped label round-trip = %q", s.labels["path"])
		}
	}

	if len(buckets) < 2 || count == nil || sum == nil {
		t.Fatalf("histogram series incomplete: %d buckets, count=%v sum=%v", len(buckets), count, sum)
	}
	les := make([]float64, len(buckets))
	for i, b := range buckets {
		le := b.labels["le"]
		if le == "+Inf" {
			les[i] = math.Inf(1)
			continue
		}
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("le %q: %v", le, err)
		}
		les[i] = v
	}
	if !sort.Float64sAreSorted(les) {
		t.Errorf("bucket le values not ascending: %v", les)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].value < buckets[i-1].value {
			t.Errorf("bucket counts not cumulative: %v then %v", buckets[i-1].value, buckets[i].value)
		}
	}
	last := buckets[len(buckets)-1]
	if last.labels["le"] != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", last.labels["le"])
	}
	if last.value != count.value {
		t.Errorf("+Inf bucket %v != count %v", last.value, count.value)
	}
	if count.value != 5 {
		t.Errorf("count = %v, want 5", count.value)
	}

	// The exemplar rides the bucket the trace-attributed sample landed
	// in, keeping the slowest observation.
	var withExemplar int
	for _, b := range buckets {
		if b.exemplar != "" {
			withExemplar++
			if b.exemplar != "4bf92f3577b34da6a3ce929d0e0e4736" {
				t.Errorf("exemplar trace = %s", b.exemplar)
			}
		}
	}
	if withExemplar == 0 {
		t.Error("no bucket carries an exemplar")
	}
}

// TestPrometheusConcurrent hammers a registry while scraping it; the
// mini-parser's invariants must hold on every scrape (torn snapshots
// may under-count, never break cumulativity).
func TestPrometheusConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds")
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(rng.Float64() * 10)
			}
		}
	}()
	defer close(stop)
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		parsePromText(t, buf.String())
	}
}
