// Package obs is the stdlib-only observability layer for the solver
// stack: atomic counters and gauges, lock-free histograms with quantile
// snapshots, span-style tracing with JSON export, structured logging via
// log/slog, and an HTTP server exposing expvar-style metrics JSON plus
// net/http/pprof.
//
// The design centres on one rule: a nil *Registry disables everything at
// zero cost. Every accessor on a nil Registry returns a nil handle, and
// every operation on a nil handle (Counter.Add, Histogram.Observe,
// Span.End, ...) is a no-op that performs no allocation, so instrumented
// code needs no build tags or branches beyond the nil checks the handles
// do themselves. Hahn et al.'s transient-reward work (PAPERS.md) singles
// out uniformisation iteration counts and truncation-window sizes as the
// cost drivers on large chains; those are exactly the quantities the
// instrumented packages record here.
//
// Everything the layer counts is deterministic for a deterministic
// workload — cache hits, iteration counts, window sizes, SpMV totals —
// so tests can assert on exact values. Only durations and span
// timestamps depend on the clock, which the Tracer lets tests stub.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of metrics plus an optional tracer and
// logger. A nil Registry is the disabled state: all accessors return nil
// handles whose methods are no-ops. Registries are safe for concurrent
// use; handle lookup takes a read lock, so callers on hot paths should
// resolve handles once and reuse them (see the per-package metric
// bundles in internal/engine, internal/ctmc and internal/sparse).
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	tracer    *Tracer
	loggerPtr atomic.Pointer[slog.Logger]
}

// NewRegistry returns an enabled Registry with an attached Tracer.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   NewTracer(),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// Registry returns a nil Counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = NewCounter()
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// Registry returns a nil Gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = NewGauge()
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// Registry returns a nil Histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram()
	r.hists[name] = h
	return h
}

// metricKey renders a metric name plus labels as the registry key:
// `name{k1="v1",k2="v2"}` with label keys sorted and values
// Prometheus-escaped. The key doubles as the series identity in both the
// JSON view and the Prometheus exposition, so escaping happens once,
// here. With no labels the key is the bare name.
func metricKey(name string, labels []Attr) string {
	if len(labels) == 0 {
		return name
	}
	sorted := make([]Attr, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies Prometheus label-value escaping: backslash,
// double quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// CounterWith returns the counter for the labeled series, creating it on
// first use. Label keys are sorted, so call-site order does not matter.
// Resolve handles once and reuse them — key construction is not free.
func (r *Registry) CounterWith(name string, labels ...Attr) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(metricKey(name, labels))
}

// GaugeWith returns the gauge for the labeled series.
func (r *Registry) GaugeWith(name string, labels ...Attr) *Gauge {
	if r == nil {
		return nil
	}
	return r.Gauge(metricKey(name, labels))
}

// HistogramWith returns the histogram for the labeled series.
func (r *Registry) HistogramWith(name string, labels ...Attr) *Histogram {
	if r == nil {
		return nil
	}
	return r.Histogram(metricKey(name, labels))
}

// Tracer returns the registry's tracer, or nil for a nil Registry.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// histogramJSON is the serialised form of one histogram snapshot.
type histogramJSON struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// snapshotJSON is the serialised form of a whole registry.
type snapshotJSON struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]histogramJSON `json:"histograms"`
}

// WriteJSON writes the registry's current state as one JSON object in
// expvar style: {"counters": {...}, "gauges": {...}, "histograms":
// {...}}. Keys are sorted (encoding/json sorts map keys), so the output
// is deterministic for a deterministic workload. A nil Registry writes
// an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	snap := snapshotJSON{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]histogramJSON),
	}
	r.mu.RLock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		snap.Histograms[name] = histogramJSON{
			Count: s.Count, Sum: s.Sum, Min: s.Min, Max: s.Max,
			P50: s.Quantile(0.5), P90: s.Quantile(0.9), P99: s.Quantile(0.99),
		}
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Dump returns a sorted, human-readable listing of every metric — one
// "name value" line per counter and gauge — for log output and tests.
func (r *Registry) Dump() string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, g.Value()))
	}
	r.mu.RUnlock()
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
