package obs

import (
	"context"
	"io"
	"log/slog"
)

// discardHandler is a slog.Handler that drops everything. (slog gained a
// built-in DiscardHandler only in Go 1.24; this keeps the module at its
// declared go 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// nopLogger is shared by every disabled path so Logger never allocates.
var nopLogger = slog.New(discardHandler{})

// NopLogger returns a logger that discards every record at every level.
func NopLogger() *slog.Logger { return nopLogger }

// NewLogger returns a JSON structured logger writing to w at the given
// level — the logger the CLI threads through the solver when -log is
// set. The handler is trace-aware: records logged with a context-taking
// method (InfoContext, ...) under a traced request automatically carry
// trace_id and span_id attributes.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(TraceLogHandler(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})))
}

// traceLogHandler decorates records with the trace identity carried by
// the logging call's context.
type traceLogHandler struct {
	inner slog.Handler
}

// TraceLogHandler wraps a slog.Handler so every record whose context
// carries a span is stamped with trace_id and span_id attributes — the
// glue that lets an operator jump from a log line to /debug/traces.
func TraceLogHandler(h slog.Handler) slog.Handler {
	if _, ok := h.(traceLogHandler); ok {
		return h
	}
	return traceLogHandler{inner: h}
}

func (h traceLogHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h traceLogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if s := SpanFromContext(ctx); s != nil {
		rec.AddAttrs(
			slog.String("trace_id", s.TraceID().String()),
			slog.String("span_id", s.SpanID().String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h traceLogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return traceLogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h traceLogHandler) WithGroup(name string) slog.Handler {
	return traceLogHandler{inner: h.inner.WithGroup(name)}
}

// SetLogger attaches a structured logger to the registry. No-op on a nil
// Registry.
func (r *Registry) SetLogger(l *slog.Logger) {
	if r == nil {
		return
	}
	r.loggerPtr.Store(l)
}

// Logger returns the registry's logger, or a shared no-op logger when
// the registry is nil or has none attached — callers can log
// unconditionally.
func (r *Registry) Logger() *slog.Logger {
	if r == nil {
		return nopLogger
	}
	if l := r.loggerPtr.Load(); l != nil {
		return l
	}
	return nopLogger
}
