package obs

import (
	"context"
	"io"
	"log/slog"
)

// discardHandler is a slog.Handler that drops everything. (slog gained a
// built-in DiscardHandler only in Go 1.24; this keeps the module at its
// declared go 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// nopLogger is shared by every disabled path so Logger never allocates.
var nopLogger = slog.New(discardHandler{})

// NopLogger returns a logger that discards every record at every level.
func NopLogger() *slog.Logger { return nopLogger }

// NewLogger returns a JSON structured logger writing to w at the given
// level — the logger the CLI threads through the solver when -log is
// set.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// SetLogger attaches a structured logger to the registry. No-op on a nil
// Registry.
func (r *Registry) SetLogger(l *slog.Logger) {
	if r == nil {
		return
	}
	r.loggerPtr.Store(l)
}

// Logger returns the registry's logger, or a shared no-op logger when
// the registry is nil or has none attached — callers can log
// unconditionally.
func (r *Registry) Logger() *slog.Logger {
	if r == nil {
		return nopLogger
	}
	if l := r.loggerPtr.Load(); l != nil {
		return l
	}
	return nopLogger
}
