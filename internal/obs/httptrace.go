package obs

import (
	"net/http"
)

// W3C Trace Context HTTP middleware. TraceMiddleware gives every
// request one span: inbound `traceparent` headers are honored (the
// request joins the caller's trace), otherwise a root trace is minted.
// The trace ID is echoed in the X-Batlife-Trace-Id response header so
// clients can correlate a response with /debug/traces and log lines
// even when they did not send a traceparent themselves.

// TraceHeader is the response header carrying the request's trace ID.
const TraceHeader = "X-Batlife-Trace-Id"

// TraceparentHeader is the W3C Trace Context request header.
const TraceparentHeader = "traceparent"

// TraceMiddleware wraps next so every request runs under an
// "http.request" span carried by the request context, continuing an
// inbound W3C trace when the traceparent header parses (malformed
// headers are ignored per spec: a fresh trace is minted). With a nil
// registry the handler is returned unchanged — tracing disabled costs
// nothing.
func TraceMiddleware(reg *Registry, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var trace TraceID
		var parent SpanID
		if tp := r.Header.Get(TraceparentHeader); tp != "" {
			if t, p, _, err := ParseTraceparent(tp); err == nil {
				trace, parent = t, p
			}
		}
		span := reg.Tracer().StartRemote(trace, parent, "http.request",
			String("method", r.Method), String("path", r.URL.Path))
		w.Header().Set(TraceHeader, span.TraceID().String())
		tw := &traceResponseWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(tw, r.WithContext(ContextWithSpan(r.Context(), span)))
		span.End(Int("status", int64(tw.status)))
	})
}

// traceResponseWriter records the response status for the request span.
// Flush passes through so NDJSON streaming keeps working under the
// middleware.
type traceResponseWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *traceResponseWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceResponseWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *traceResponseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
