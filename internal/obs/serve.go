package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the HTTP handler behind Serve: expvar-style metrics
// JSON at /metrics and /debug/vars, and the net/http/pprof suite under
// /debug/pprof/. Exposed separately so tests can drive it through
// httptest without opening a socket.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	metrics := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/debug/vars", metrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics/pprof HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving Handler(reg) on addr (":0" picks a free port)
// and returns immediately; the listener runs until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(reg),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path;
		// nothing useful to do with other errors once main has moved on.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr reports the bound address, e.g. "127.0.0.1:43671" after ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
