package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the HTTP handler behind Serve: Prometheus/OpenMetrics
// text exposition at /metrics, the expvar-style metrics JSON at
// /metrics.json and /debug/vars, per-trace span trees at /debug/traces
// (?fmt=text for a waterfall), and the net/http/pprof suite under
// /debug/pprof/. Exposed separately so tests can drive it through
// httptest without opening a socket, and so the service router can
// mount the same endpoints.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	RegisterDebugRoutes(mux, reg)
	return mux
}

// RegisterDebugRoutes mounts the observability endpoints on an existing
// mux — the daemon router reuses this so /metrics, /metrics.json,
// /debug/vars, /debug/traces and /debug/pprof/* behave identically on
// the service port and the standalone metrics port.
func RegisterDebugRoutes(mux *http.ServeMux, reg *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	metricsJSON := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/metrics.json", metricsJSON)
	mux.HandleFunc("/debug/vars", metricsJSON)
	mux.Handle("/debug/traces", TracesHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Server is a running metrics/pprof HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving Handler(reg) on addr (":0" picks a free port)
// and returns immediately; the listener runs until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           Handler(reg),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path;
		// nothing useful to do with other errors once main has moved on.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr reports the bound address, e.g. "127.0.0.1:43671" after ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
