package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if v := c.Value(); v != 42 {
		t.Errorf("Value = %d, want 42", v)
	}
	var nilC *Counter
	nilC.Inc()
	nilC.Add(7)
	if v := nilC.Value(); v != 0 {
		t.Errorf("nil Counter Value = %d, want 0", v)
	}
}

func TestGaugeBasics(t *testing.T) {
	g := NewGauge()
	g.Set(2.5)
	g.Add(-1.25)
	//numlint:ignore floatcmp 2.5 - 1.25 is exact in binary
	if v := g.Value(); v != 1.25 {
		t.Errorf("Value = %v, want 1.25", v)
	}
	var nilG *Gauge
	nilG.Set(3)
	nilG.Add(1)
	if v := nilG.Value(); v != 0 {
		t.Errorf("nil Gauge Value = %v, want 0", v)
	}
}

func TestCounterGaugeRace(t *testing.T) {
	// Concurrent writers on one counter and one gauge must be race-clean
	// and lose no updates.
	c := NewCounter()
	g := NewGauge()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if v := c.Value(); v != goroutines*perG {
		t.Errorf("Counter = %d, want %d", v, goroutines*perG)
	}
	//numlint:ignore floatcmp small-integer float addition is exact
	if v := g.Value(); v != goroutines*perG {
		t.Errorf("Gauge = %v, want %d", v, goroutines*perG)
	}
}

func TestHistogramRace(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < perG; j++ {
				h.Observe(rng.Float64() * 1000)
			}
		}(int64(i))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	if s.Min < 0 || s.Max > 1000 || s.Min > s.Max {
		t.Errorf("Min/Max envelope [%v, %v] out of range", s.Min, s.Max)
	}
}

// TestHistogramQuantileOracle checks every reported quantile against the
// exact order statistic of a sorted copy: the documented bound is the
// bucket growth factor 2^(1/4), i.e. ~19% relative error, with Min and
// Max exact.
func TestHistogramQuantileOracle(t *testing.T) {
	distributions := map[string]func(*rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return r.Float64() * 1e4 },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 3) },
		"durations": func(r *rand.Rand) float64 { return 1e-6 * math.Exp(r.NormFloat64()) },
		"counts":    func(r *rand.Rand) float64 { return float64(1 + r.Intn(100000)) },
	}
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	const n = 20000
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			h := NewHistogram()
			samples := make([]float64, n)
			for i := range samples {
				samples[i] = gen(rng)
				h.Observe(samples[i])
			}
			sort.Float64s(samples)
			s := h.Snapshot()
			//numlint:ignore floatcmp exact sample values survive Observe unchanged
			if s.Min != samples[0] || s.Max != samples[n-1] {
				t.Errorf("Min/Max = %v/%v, want exact %v/%v", s.Min, s.Max, samples[0], samples[n-1])
			}
			const bound = 0.20 // 2^(1/4) - 1 ≈ 0.189, plus headroom
			for _, q := range quantiles {
				rank := int(math.Ceil(q * n))
				if rank < 1 {
					rank = 1
				}
				exact := samples[rank-1]
				got := s.Quantile(q)
				if math.Abs(got-exact) > bound*exact {
					t.Errorf("q=%v: got %v, exact %v (rel err %.3f)", q, got, exact, math.Abs(got-exact)/exact)
				}
			}
		})
	}
}

func TestHistogramEdgeSamples(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0, -1, math.NaN(), 1e300, 1e-300, 42} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	// All quantiles must come back finite even with NaN/negative/extreme
	// inputs in the stream.
	for _, q := range []float64{0, 0.5, 1} {
		if v := s.Quantile(q); math.IsInf(v, 0) {
			t.Errorf("Quantile(%v) = %v", q, v)
		}
	}
	var nilH *Histogram
	nilH.Observe(1)
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Errorf("nil Histogram Count = %d", s.Count)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	//numlint:ignore floatcmp small-integer sums are exact
	if m := h.Snapshot().Mean(); m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
	if m := (HistogramSnapshot{}).Mean(); m != 0 {
		t.Errorf("empty Mean = %v, want 0", m)
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name resolved to different counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same name resolved to different gauges")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("same name resolved to different histograms")
	}
}

func TestNilRegistryDisabled(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil || r.Tracer() != nil {
		t.Error("nil Registry returned a non-nil handle")
	}
	r.Counter("x").Inc()
	r.Histogram("x").Observe(1)
	r.Tracer().Start("span").End()
	if r.Dump() != "" {
		t.Errorf("nil Dump = %q", r.Dump())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "{}" {
		t.Errorf("nil WriteJSON = %q", buf.String())
	}
}

// TestDisabledZeroAlloc pins the disabled fast path: recording through a
// nil registry's handles must not allocate. Attribute construction is
// excluded — building an Attr costs a string either way, which is why
// instrumented code only builds attrs behind its own registry nil-check.
func TestDisabledZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	h := r.Histogram("h")
	tr := r.Tracer()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(1.5)
		sp := tr.Start("solve")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}
}

// TestEnabledCounterZeroAlloc pins the enabled hot path for pre-resolved
// counters — the only instrument on the solver's warm memo path.
func TestEnabledCounterZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(2)
	})
	if allocs != 0 {
		t.Errorf("enabled counter/histogram path allocates %v per op, want 0", allocs)
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	// A deterministic clock makes timestamps and durations exact.
	now := time.Unix(1000, 0)
	tr.SetClock(func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	})
	root := tr.Start("sweep", String("grid", "3x2"))
	child := root.Child("solve", Int("index", 0))
	child.SetAttr(Float("delta", 18))
	child.End(Int("iterations", 1234))
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Spans()
	if len(back) != len(want) {
		t.Fatalf("round-trip length %d, want %d", len(back), len(want))
	}
	for i := range want {
		a, b := want[i], back[i]
		if a.TraceID != b.TraceID || a.SpanID != b.SpanID ||
			a.ParentSpanID != b.ParentSpanID || a.Name != b.Name ||
			a.StartUnixNs != b.StartUnixNs || a.DurationNs != b.DurationNs {
			t.Errorf("span %d: %+v != %+v", i, a, b)
		}
		if len(a.Attrs) != len(b.Attrs) {
			t.Errorf("span %d attrs: %v != %v", i, a.Attrs, b.Attrs)
		}
		for k, v := range a.Attrs {
			if b.Attrs[k] != v {
				t.Errorf("span %d attr %s: %q != %q", i, k, b.Attrs[k], v)
			}
		}
	}
	// Completion order: the child ends before the root.
	if want[0].Name != "solve" || want[1].Name != "sweep" {
		t.Errorf("span order %q, %q", want[0].Name, want[1].Name)
	}
	if want[0].ParentSpanID != want[1].SpanID {
		t.Errorf("child ParentSpanID = %s, want root SpanID %s", want[0].ParentSpanID, want[1].SpanID)
	}
	if want[0].TraceID != want[1].TraceID {
		t.Errorf("child TraceID = %s, want root TraceID %s", want[0].TraceID, want[1].TraceID)
	}
	if want[0].DurationNs <= 0 {
		t.Errorf("child duration = %d", want[0].DurationNs)
	}
}

func TestTracerBoundedRetention(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxSpans(4)
	for i := 0; i < 10; i++ {
		tr.Start("s", Int("i", int64(i))).End()
	}
	spans := tr.Spans()
	if n := len(spans); n != 4 {
		t.Fatalf("retained %d spans, want 4", n)
	}
	// The ring evicts oldest-first: the four NEWEST spans survive, in
	// completion order.
	for i, rec := range spans {
		if want := strconv.Itoa(6 + i); rec.Attrs["i"] != want {
			t.Errorf("spans[%d] has i=%s, want %s (newest spans must survive)", i, rec.Attrs["i"], want)
		}
	}
	if d := tr.Dropped(); d != 6 {
		t.Errorf("Dropped = %d, want 6", d)
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("solves_total").Add(3)
	r.Gauge("load").Set(0.5)
	for i := 1; i <= 100; i++ {
		r.Histogram("iters").Observe(float64(i))
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Min   float64 `json:"min"`
			Max   float64 `json:"max"`
			P50   float64 `json:"p50"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["solves_total"] != 3 {
		t.Errorf("counter = %d, want 3", snap.Counters["solves_total"])
	}
	//numlint:ignore floatcmp 0.5 round-trips exactly through JSON
	if snap.Gauges["load"] != 0.5 {
		t.Errorf("gauge = %v, want 0.5", snap.Gauges["load"])
	}
	h := snap.Histograms["iters"]
	if h.Count != 100 {
		t.Errorf("histogram count = %d, want 100", h.Count)
	}
	if h.P50 < 40 || h.P50 > 60 {
		t.Errorf("p50 = %v, want ≈50", h.P50)
	}
}

func TestDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("c").Set(3)
	want := "a 1\nb 2\nc 3\n"
	if got := r.Dump(); got != want {
		t.Errorf("Dump = %q, want %q", got, want)
	}
}

func TestLogger(t *testing.T) {
	var r *Registry
	if r.Logger() == nil {
		t.Fatal("nil Registry Logger() = nil, want nop logger")
	}
	r.Logger().Info("into the void") // must not panic

	reg := NewRegistry()
	if reg.Logger() == nil {
		t.Fatal("fresh Registry Logger() = nil, want nop logger")
	}
	var buf bytes.Buffer
	reg.SetLogger(NewLogger(&buf, slog.LevelDebug))
	reg.Logger().Info("solve done", "states", 100)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "solve done" {
		t.Errorf("msg = %v", rec["msg"])
	}
	//numlint:ignore floatcmp JSON numbers decode to float64; 100 is exact
	if rec["states"] != float64(100) {
		t.Errorf("states = %v", rec["states"])
	}
}

func TestServeHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(5)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	for _, path := range []string{"/metrics.json", "/debug/vars"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var snap map[string]any
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("%s: not JSON: %v", path, err)
		}
		counters, _ := snap["counters"].(map[string]any)
		//numlint:ignore floatcmp JSON numbers decode to float64; 5 is exact
		if counters["hits"] != float64(5) {
			t.Errorf("%s: hits = %v, want 5", path, counters["hits"])
		}
	}

	// /metrics now serves the Prometheus text exposition.
	resp0, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(resp0.Body)
	resp0.Body.Close()
	if resp0.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", resp0.StatusCode)
	}
	if ct := resp0.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("/metrics Content-Type = %q, want openmetrics-text", ct)
	}
	if !strings.Contains(string(promBody), "hits_total 5") && !strings.Contains(string(promBody), "hits 5") {
		t.Errorf("/metrics missing hits counter:\n%s", promBody)
	}
	if !strings.HasSuffix(string(promBody), "# EOF\n") {
		t.Errorf("/metrics missing # EOF terminator")
	}

	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/: status %d", resp.StatusCode)
	}
}

func TestServeLifecycle(t *testing.T) {
	reg := NewRegistry()
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" {
		t.Error("empty bound address")
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}
