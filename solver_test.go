package batlife

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"batlife/internal/core"
	"batlife/internal/mrm"
	"batlife/internal/performability"
)

func onOffC1(t testing.TB) (Battery, *Workload) {
	t.Helper()
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	return Battery{CapacityAs: 7200, AvailableFraction: 1}, w
}

// sameCurve fails unless the two CDF slices agree bit for bit — the
// redesign's contract is delegation, not approximation.
func sameCurve(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for k := range want {
		//numlint:ignore floatcmp golden equivalence demands bit-identical output
		if got[k] != want[k] {
			t.Errorf("%s: point %d = %v, want %v (must be bit-identical)", label, k, got[k], want[k])
		}
	}
}

func TestSolverGoldenLifetimeDistribution(t *testing.T) {
	// The deprecated free function, a fresh Solver, and the pre-redesign
	// direct core path must produce bit-identical curves.
	b, w := onOffC1(t)
	times := []float64{10000, 15000, 20000}
	const delta = 50

	e, err := core.Build(w.kibamrm(b), delta, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.LifetimeCDF(times)
	if err != nil {
		t.Fatal(err)
	}

	viaFree, err := LifetimeDistribution(b, w, delta, times)
	if err != nil {
		t.Fatal(err)
	}
	viaSolver, err := NewSolver(SolverOptions{}).LifetimeDistribution(b, w, times, AnalysisOptions{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}

	sameCurve(t, "free function vs core", viaFree.EmptyProb, direct.EmptyProb)
	sameCurve(t, "Solver vs core", viaSolver.EmptyProb, direct.EmptyProb)
	if viaSolver.States != direct.States || viaSolver.Transitions != direct.NNZ || viaSolver.Iterations != direct.Iterations {
		t.Errorf("metadata: solver {%d %d %d} vs core {%d %d %d}",
			viaSolver.States, viaSolver.Transitions, viaSolver.Iterations,
			direct.States, direct.NNZ, direct.Iterations)
	}
}

func TestSolverGoldenExpectedLifetime(t *testing.T) {
	b, w := onOffC1(t)
	const delta = 100
	e, err := core.Build(w.kibamrm(b), delta, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.MeanLifetime()
	if err != nil {
		t.Fatal(err)
	}
	viaFree, err := ExpectedLifetime(b, w, delta)
	if err != nil {
		t.Fatal(err)
	}
	viaSolver, err := NewSolver(SolverOptions{}).ExpectedLifetime(b, w, AnalysisOptions{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	//numlint:ignore floatcmp golden equivalence demands bit-identical output
	if viaFree != direct || viaSolver != direct {
		t.Errorf("E[L]: free %v, solver %v, core %v — must be bit-identical", viaFree, viaSolver, direct)
	}
}

func TestSolverGoldenStrandedCharge(t *testing.T) {
	b := PaperBattery()
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	const (
		delta   = 100.0
		horizon = 60000.0
	)
	e, err := core.Build(w.kibamrm(b), delta, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := e.WastedChargeDistribution(horizon)
	if err != nil {
		t.Fatal(err)
	}
	viaFree, err := ExpectedStrandedCharge(b, w, delta, horizon)
	if err != nil {
		t.Fatal(err)
	}
	viaSolver, err := NewSolver(SolverOptions{}).StrandedCharge(b, w, horizon, AnalysisOptions{Delta: delta})
	if err != nil {
		t.Fatal(err)
	}
	//numlint:ignore floatcmp golden equivalence demands bit-identical output
	if viaFree.MeanAs != wc.Mean() || viaSolver.MeanAs != wc.Mean() {
		t.Errorf("stranded mean: free %v, solver %v, core %v", viaFree.MeanAs, viaSolver.MeanAs, wc.Mean())
	}
}

func TestSolverGoldenExactCDF(t *testing.T) {
	b, w := onOffC1(t)
	times := []float64{10000, 15000, 20000}
	model := mrm.ConstantReward{Chain: w.model.Chain, Rates: w.model.Currents, Initial: w.model.Initial}
	direct, err := performability.EnergyDepletionCDF(model, b.CapacityAs, times)
	if err != nil {
		t.Fatal(err)
	}
	viaFree, err := ExactLifetimeCDF(b, w, times)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewSolver(SolverOptions{}).ExactCDF(b, w, times, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameCurve(t, "ExactLifetimeCDF vs performability", viaFree, direct)
	sameCurve(t, "Solver.ExactCDF vs performability", d.EmptyProb, direct)
	if d.States != 2 || d.Transitions == 0 || d.Iterations == 0 {
		t.Errorf("exact metadata not filled: %+v", d)
	}
	sameCurve(t, "ExactCDF.Times", d.Times, times)
}

func TestSolverCachesModelsAndResults(t *testing.T) {
	b, w := onOffC1(t)
	s := NewSolver(SolverOptions{})
	times := []float64{10000, 15000}
	opts := AnalysisOptions{Delta: 50}
	first, err := s.LifetimeDistribution(b, w, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.CachedModels() != 1 {
		t.Errorf("CachedModels = %d after one query", s.CachedModels())
	}
	second, err := s.LifetimeDistribution(b, w, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Error("memoised Distribution returned without cloning")
	}
	sameCurve(t, "memo hit", second.EmptyProb, first.EmptyProb)
	// Mean and stranded charge reuse the same expanded model.
	if _, err := s.ExpectedLifetime(b, w, opts); err != nil {
		t.Fatal(err)
	}
	if s.CachedModels() != 1 {
		t.Errorf("CachedModels = %d after mixed analyses on one model", s.CachedModels())
	}
}

func TestSolverCacheIsolationAcrossSolvers(t *testing.T) {
	// Two solvers with different batteries must not share entries: each
	// result must match a fresh single-use computation of its own model.
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	big := Battery{CapacityAs: 7200, AvailableFraction: 1}
	small := Battery{CapacityAs: 3600, AvailableFraction: 1}
	times := []float64{6000, 10000, 15000}
	opts := AnalysisOptions{Delta: 50}

	s1 := NewSolver(SolverOptions{})
	s2 := NewSolver(SolverOptions{})
	d1, err := s1.LifetimeDistribution(big, w, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s2.LifetimeDistribution(small, w, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Re-query each solver with the *other* solver's battery; the answer
	// must come out right even though both caches are warm.
	x2, err := s1.LifetimeDistribution(small, w, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := s2.LifetimeDistribution(big, w, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameCurve(t, "s1 small vs s2 small", x2.EmptyProb, d2.EmptyProb)
	sameCurve(t, "s2 big vs s1 big", x1.EmptyProb, d1.EmptyProb)
	if d2.EmptyProb[0] <= d1.EmptyProb[0] {
		t.Errorf("smaller battery not emptier: %v vs %v", d2.EmptyProb[0], d1.EmptyProb[0])
	}
}

func TestSolverResultMutationDoesNotCorruptCache(t *testing.T) {
	b, w := onOffC1(t)
	s := NewSolver(SolverOptions{})
	times := []float64{10000, 15000, 20000}
	opts := AnalysisOptions{Delta: 50}
	first, err := s.LifetimeDistribution(b, w, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), first.EmptyProb...)
	// Vandalise everything the caller can reach.
	for k := range first.EmptyProb {
		first.EmptyProb[k] = -1
		first.Times[k] = -1
	}
	first.States = -1
	second, err := s.LifetimeDistribution(b, w, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameCurve(t, "after caller mutation", second.EmptyProb, want)
	if second.States < 0 {
		t.Error("mutated States leaked into the cache")
	}
}

func TestSolverProgressBypassesMemo(t *testing.T) {
	b, w := onOffC1(t)
	s := NewSolver(SolverOptions{})
	times := []float64{15000}
	var calls atomic.Int64
	opts := AnalysisOptions{Delta: 100, Progress: func(done, total int) { calls.Add(1) }}
	if _, err := s.LifetimeDistribution(b, w, times, opts); err != nil {
		t.Fatal(err)
	}
	firstCalls := calls.Load()
	if firstCalls == 0 {
		t.Fatal("Progress never invoked")
	}
	if _, err := s.LifetimeDistribution(b, w, times, opts); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2*firstCalls {
		t.Errorf("second call reported %d progress steps, want %d (memo must not swallow progress)",
			calls.Load()-firstCalls, firstCalls)
	}
	if s.results.Len() != 0 {
		t.Errorf("progress-bearing queries were memoised: %d entries", s.results.Len())
	}
}

func TestSolverMaxIterations(t *testing.T) {
	b, w := onOffC1(t)
	s := NewSolver(SolverOptions{})
	_, err := s.LifetimeDistribution(b, w, []float64{15000}, AnalysisOptions{Delta: 50, MaxIterations: 3})
	if !errors.Is(err, ErrIterationLimit) {
		t.Errorf("err = %v, want ErrIterationLimit", err)
	}
	// A refused solve must not poison the memo: a follow-up without the
	// budget must succeed.
	if _, err := s.LifetimeDistribution(b, w, []float64{15000}, AnalysisOptions{Delta: 50}); err != nil {
		t.Errorf("solve after refused budget: %v", err)
	}
}

func TestSolverContextCancellation(t *testing.T) {
	b, w := onOffC1(t)
	s := NewSolver(SolverOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.LifetimeDistribution(b, w, []float64{15000}, AnalysisOptions{Delta: 25, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in chain", err)
	}
	_, err = s.ExactCDF(b, w, []float64{15000}, AnalysisOptions{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ExactCDF err = %v, want context.Canceled in chain", err)
	}
}

func TestSolverArgumentErrors(t *testing.T) {
	b, w := onOffC1(t)
	s := NewSolver(SolverOptions{})
	cases := []struct {
		name string
		call func() error
	}{
		{"nil workload", func() error {
			_, err := s.LifetimeDistribution(b, nil, []float64{1}, AnalysisOptions{Delta: 50})
			return err
		}},
		{"zero delta", func() error {
			_, err := s.LifetimeDistribution(b, w, []float64{1}, AnalysisOptions{})
			return err
		}},
		{"negative delta", func() error {
			_, err := s.ExpectedLifetime(b, w, AnalysisOptions{Delta: -5})
			return err
		}},
		{"non-divisor delta", func() error {
			_, err := s.LifetimeDistribution(b, w, []float64{1}, AnalysisOptions{Delta: 7})
			return err
		}},
		{"exact with c<1", func() error {
			_, err := s.ExactCDF(PaperBattery(), w, []float64{1}, AnalysisOptions{})
			return err
		}},
		{"stranded horizon too early", func() error {
			_, err := s.StrandedCharge(PaperBattery(), w, 100, AnalysisOptions{Delta: 100})
			return err
		}},
		{"empty sweep", func() error {
			_, err := s.Sweep(nil, SweepOptions{})
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.call(); !errors.Is(err, ErrBadArgument) {
			t.Errorf("%s: err = %v, want ErrBadArgument", tc.name, err)
		}
	}
}

func TestStrandedChargeNoBoundWell(t *testing.T) {
	b, w := onOffC1(t) // AvailableFraction = 1
	sc, err := NewSolver(SolverOptions{}).StrandedCharge(b, w, 60000, AnalysisOptions{Delta: 50})
	if err != nil {
		t.Fatal(err)
	}
	if sc.MeanAs != 0 || sc.FractionOfBound != 0 {
		t.Errorf("c=1 battery strands charge: %+v", sc)
	}
}

func TestSweepMatchesSequential(t *testing.T) {
	// A parallel sweep must return results in input order, bit-identical
	// to the sequential free-function path.
	b, w := onOffC1(t)
	simple, err := SimpleWireless()
	if err != nil {
		t.Fatal(err)
	}
	smallB := Battery{CapacityAs: MilliampHours(500), AvailableFraction: 1}
	times := []float64{10000, 15000, 20000}
	hours := []float64{6 * 3600, 9 * 3600, 12 * 3600}
	scenarios := []Scenario{
		{Name: "onoff-d100", Battery: b, Workload: w, DeltaAs: 100, Times: times},
		{Name: "onoff-d50", Battery: b, Workload: w, DeltaAs: 50, Times: times},
		{Name: "onoff-d25", Battery: b, Workload: w, DeltaAs: 25, Times: times},
		{Name: "simple", Battery: smallB, Workload: simple, DeltaAs: MilliampHours(2), Times: hours},
		{Name: "onoff-d100-again", Battery: b, Workload: w, DeltaAs: 100, Times: times},
	}
	var progress atomic.Int64
	results, err := NewSolver(SolverOptions{}).Sweep(scenarios, SweepOptions{
		Workers:  4,
		Progress: func(done, total int) { progress.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(scenarios) {
		t.Fatalf("%d results for %d scenarios", len(results), len(scenarios))
	}
	if progress.Load() != int64(len(scenarios)) {
		t.Errorf("progress fired %d times, want %d", progress.Load(), len(scenarios))
	}
	for i, r := range results {
		if r.Index != i || r.Name != scenarios[i].Name {
			t.Fatalf("result %d is {Index: %d, Name: %q}, want input order", i, r.Index, r.Name)
		}
		if r.Err != nil {
			t.Fatalf("scenario %q: %v", r.Name, r.Err)
		}
		sc := scenarios[i]
		seq, err := LifetimeDistribution(sc.Battery, sc.Workload, sc.DeltaAs, sc.Times)
		if err != nil {
			t.Fatal(err)
		}
		sameCurve(t, "sweep "+sc.Name, r.Distribution.EmptyProb, seq.EmptyProb)
	}
}

func TestSweepPerScenarioErrors(t *testing.T) {
	b, w := onOffC1(t)
	scenarios := []Scenario{
		{Name: "ok", Battery: b, Workload: w, DeltaAs: 100, Times: []float64{15000}},
		{Name: "bad-delta", Battery: b, Workload: w, DeltaAs: 7, Times: []float64{15000}},
		{Name: "nil-workload", Battery: b, Workload: nil, DeltaAs: 100, Times: []float64{15000}},
	}
	results, err := NewSolver(SolverOptions{}).Sweep(scenarios, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatalf("scenario failures must not abort the sweep: %v", err)
	}
	if results[0].Err != nil || results[0].Distribution == nil {
		t.Errorf("good scenario failed: %v", results[0].Err)
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(results[i].Err, ErrBadArgument) {
			t.Errorf("%s: err = %v, want ErrBadArgument", results[i].Name, results[i].Err)
		}
		if results[i].Distribution != nil {
			t.Errorf("%s: non-nil distribution alongside error", results[i].Name)
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	b, w := onOffC1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scenarios := make([]Scenario, 4)
	for i := range scenarios {
		scenarios[i] = Scenario{Battery: b, Workload: w, DeltaAs: 50, Times: []float64{15000}}
	}
	results, err := NewSolver(SolverOptions{}).Sweep(scenarios, SweepOptions{Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("scenario %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestSweepConcurrentSolversShareNothing(t *testing.T) {
	// Two solvers sweeping different grids concurrently must stay
	// race-clean and correct (exercised under -race in CI).
	b, w := onOffC1(t)
	small := Battery{CapacityAs: 3600, AvailableFraction: 1}
	mk := func(bat Battery) []Scenario {
		return []Scenario{
			{Battery: bat, Workload: w, DeltaAs: 100, Times: []float64{10000}},
			{Battery: bat, Workload: w, DeltaAs: 50, Times: []float64{10000}},
		}
	}
	type out struct {
		results []SweepResult
		err     error
	}
	ch := make(chan out, 2)
	go func() {
		r, err := NewSolver(SolverOptions{}).Sweep(mk(b), SweepOptions{Workers: 2})
		ch <- out{r, err}
	}()
	go func() {
		r, err := NewSolver(SolverOptions{}).Sweep(mk(small), SweepOptions{Workers: 2})
		ch <- out{r, err}
	}()
	for i := 0; i < 2; i++ {
		o := <-ch
		if o.err != nil {
			t.Fatal(o.err)
		}
		for _, r := range o.results {
			if r.Err != nil {
				t.Errorf("%v", r.Err)
			}
		}
	}
}
