package batlife_test

import (
	"fmt"

	"batlife"
)

// The paper's Table 1 in three lines: the same current, continuous vs
// pulsed, on the same battery.
func ExampleBattery_Lifetime() {
	battery := batlife.PaperBattery()
	continuous, err := battery.Lifetime(0.96)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	pulsed, err := battery.LifetimeSquareWave(0.96, 1, 0.5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("continuous: %.0f min\n", continuous/60)
	fmt.Printf("pulsed:     %.0f min\n", pulsed/60)
	// Output:
	// continuous: 91 min
	// pulsed:     203 min
}

// Computing a lifetime distribution for the paper's simple wireless
// device.
func ExampleLifetimeDistribution() {
	battery := batlife.Battery{
		CapacityAs:        batlife.MilliampHours(800),
		AvailableFraction: 0.625,
		FlowRate:          4.5e-5,
	}
	device, err := batlife.SimpleWireless()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := batlife.LifetimeDistribution(battery, device,
		batlife.MilliampHours(5), []float64{10 * 3600, 20 * 3600})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Pr[empty at 10 h] = %.2f\n", res.EmptyProb[0])
	fmt.Printf("Pr[empty at 20 h] = %.2f\n", res.EmptyProb[1])
	// Output:
	// Pr[empty at 10 h] = 0.12
	// Pr[empty at 20 h] = 0.96
}

// Fitting the KiBaM flow constant to a measured lifetime, the paper's
// Section 3 calibration procedure.
func ExampleBattery_CalibrateFlowRate() {
	battery := batlife.Battery{CapacityAs: 7200, AvailableFraction: 0.625}
	k, err := battery.CalibrateFlowRate(0.96, 90*60) // 90 min at 0.96 A
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("k is of order 1e-5: %v\n", k > 1e-5 && k < 1e-4)
	// Output:
	// k is of order 1e-5: true
}

// Building a custom workload: a device with a charging (harvesting)
// state, expressed as a negative current.
func ExampleNewWorkload() {
	w, err := batlife.NewWorkload(
		[]batlife.StateSpec{
			{Name: "work", CurrentA: 0.100},
			{Name: "solar", CurrentA: -0.030},
		},
		[]batlife.TransitionSpec{
			{From: "work", To: "solar", RatePerSec: 1.0 / 600},
			{From: "solar", To: "work", RatePerSec: 1.0 / 600},
		},
		"work",
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mean, err := w.MeanCurrent()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("mean net draw: %.0f mA\n", mean*1000)
	// Output:
	// mean net draw: 35 mA
}
