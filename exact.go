package batlife

import (
	"fmt"

	"batlife/internal/mrm"
	"batlife/internal/performability"
)

// ExactLifetimeCDF computes the exact lifetime CDF Pr{battery empty at
// t} for a battery with all charge available (AvailableFraction = 1,
// where the battery empties exactly when the accumulated energy reaches
// the capacity) under the stochastic workload. It evaluates the
// performability distribution of the accumulated-energy Markov reward
// model through the transform domain, accurate to roughly 1e-8.
//
// For two-well batteries (AvailableFraction < 1) there is no exact
// method; use LifetimeDistribution with a small delta instead.
func ExactLifetimeCDF(b Battery, w *Workload, times []float64) ([]float64, error) {
	if w == nil {
		return nil, fmt.Errorf("%w: nil workload", ErrBadArgument)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	//numlint:ignore floatcmp AvailableFraction = 1 is an exact configuration sentinel, not a computed value
	if b.AvailableFraction != 1 {
		return nil, fmt.Errorf("%w: exact solution requires AvailableFraction = 1, got %v",
			ErrBadArgument, b.AvailableFraction)
	}
	model := mrm.ConstantReward{
		Chain:   w.model.Chain,
		Rates:   w.model.Currents,
		Initial: w.model.Initial,
	}
	probs, err := performability.EnergyDepletionCDF(model, b.CapacityAs, times)
	if err != nil {
		return nil, fmt.Errorf("batlife: %w", err)
	}
	return probs, nil
}
