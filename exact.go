package batlife

// ExactLifetimeCDF computes the exact lifetime CDF Pr{battery empty at
// t} for a battery with all charge available (AvailableFraction = 1,
// where the battery empties exactly when the accumulated energy reaches
// the capacity) under the stochastic workload. It evaluates the
// performability distribution of the accumulated-energy Markov reward
// model through the transform domain, accurate to roughly 1e-8.
//
// For two-well batteries (AvailableFraction < 1) there is no exact
// method; use LifetimeDistribution with a small delta instead.
//
// Deprecated: Use [Solver.ExactCDF], which returns a *Distribution —
// interchangeable with the approximate analyses downstream — and
// memoises results. This wrapper delegates to [DefaultSolver]; its
// EmptyProb values are identical to the slice returned here.
func ExactLifetimeCDF(b Battery, w *Workload, times []float64) ([]float64, error) {
	d, err := DefaultSolver().ExactCDF(b, w, times, AnalysisOptions{})
	if err != nil {
		return nil, err
	}
	return d.EmptyProb, nil
}
