package batlife

import (
	"errors"
	"math"
	"testing"
)

func TestPaperBatteryLifetimes(t *testing.T) {
	b := PaperBattery()
	life, err := b.Lifetime(0.96)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(life/60-91) > 0.5 {
		t.Errorf("continuous lifetime = %v min, want 91 (Table 1)", life/60)
	}
	square, err := b.LifetimeSquareWave(0.96, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(square/60-203) > 1 {
		t.Errorf("square-wave lifetime = %v min, want 203 (Table 1)", square/60)
	}
}

func TestBatteryValidate(t *testing.T) {
	bad := Battery{CapacityAs: -1, AvailableFraction: 0.5}
	if err := bad.Validate(); !errors.Is(err, ErrBadArgument) {
		t.Errorf("err = %v, want ErrBadArgument", err)
	}
	if err := PaperBattery().Validate(); err != nil {
		t.Errorf("paper battery rejected: %v", err)
	}
}

func TestMilliampHours(t *testing.T) {
	if got := MilliampHours(800); got != 2880 {
		t.Errorf("MilliampHours(800) = %v, want 2880", got)
	}
}

func TestCalibrateFlowRateRoundTrip(t *testing.T) {
	b := PaperBattery()
	life, err := b.Lifetime(0.96)
	if err != nil {
		t.Fatal(err)
	}
	k, err := b.CalibrateFlowRate(0.96, life)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-b.FlowRate) > 1e-9 {
		t.Errorf("recovered k = %v, want %v", k, b.FlowRate)
	}
}

func TestBatteryArgumentErrors(t *testing.T) {
	b := PaperBattery()
	if _, err := b.Lifetime(0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero current: err = %v", err)
	}
	if _, err := b.LifetimeSquareWave(1, 0, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero frequency: err = %v", err)
	}
	if _, err := b.LifetimeSquareWave(1, 1, 1.5); !errors.Is(err, ErrBadArgument) {
		t.Errorf("bad duty: err = %v", err)
	}
}

func TestWorkloadConstructors(t *testing.T) {
	onoff, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(onoff.States()); got != 2 {
		t.Errorf("on/off has %d states", got)
	}
	simple, err := SimpleWireless()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(simple.States()); got != 3 {
		t.Errorf("simple has %d states", got)
	}
	mean, err := simple.MeanCurrent()
	if err != nil {
		t.Fatal(err)
	}
	// 0.5·8 + 0.25·200 = 54 mA.
	if math.Abs(mean-0.054) > 1e-9 {
		t.Errorf("simple mean current = %v A, want 0.054", mean)
	}
	burst, err := BurstWireless()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(burst.States()); got != 5 {
		t.Errorf("burst has %d states", got)
	}
}

func TestNewWorkloadCustom(t *testing.T) {
	w, err := NewWorkload(
		[]StateSpec{{Name: "active", CurrentA: 0.1}, {Name: "rest", CurrentA: 0}},
		[]TransitionSpec{
			{From: "active", To: "rest", RatePerSec: 1},
			{From: "rest", To: "active", RatePerSec: 1},
		},
		"active",
	)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := w.MeanCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.05) > 1e-12 {
		t.Errorf("mean current = %v, want 0.05", mean)
	}
}

func TestNewWorkloadErrors(t *testing.T) {
	if _, err := NewWorkload(nil, nil, "x"); !errors.Is(err, ErrBadArgument) {
		t.Errorf("no states: err = %v", err)
	}
	states := []StateSpec{{Name: "a", CurrentA: 1}}
	if _, err := NewWorkload(states, nil, "missing"); !errors.Is(err, ErrBadArgument) {
		t.Errorf("unknown initial: err = %v", err)
	}
	// Negative currents are allowed (charging states) but reject
	// simulation.
	neg := []StateSpec{{Name: "a", CurrentA: -1}, {Name: "b", CurrentA: 1}}
	tr2 := []TransitionSpec{{From: "a", To: "b", RatePerSec: 1}, {From: "b", To: "a", RatePerSec: 1}}
	wNeg, err := NewWorkload(neg, tr2, "a")
	if err != nil {
		t.Fatalf("charging workload rejected: %v", err)
	}
	if _, err := SimulateLifetimes(Battery{CapacityAs: 100, AvailableFraction: 1}, wNeg, 10, 1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("simulating charging workload: err = %v", err)
	}
	bad := []StateSpec{{Name: "a"}, {Name: "b"}}
	tr := []TransitionSpec{{From: "a", To: "b", RatePerSec: -1}}
	if _, err := NewWorkload(bad, tr, "a"); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestLifetimeDistributionEndToEnd(t *testing.T) {
	b := Battery{CapacityAs: 7200, AvailableFraction: 1}
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{10000, 15000, 20000}
	res, err := LifetimeDistribution(b, w, 50, times)
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 290 || res.Transitions == 0 || res.Iterations == 0 {
		t.Errorf("metadata: %+v", res)
	}
	if res.EmptyProb[0] > 0.05 || res.EmptyProb[2] < 0.95 {
		t.Errorf("curve = %v", res.EmptyProb)
	}
	if res.EmptyProb[1] < 0.3 || res.EmptyProb[1] > 0.7 {
		t.Errorf("median point = %v", res.EmptyProb[1])
	}
}

func TestThreeMethodsAgree(t *testing.T) {
	// Integration: Markovian approximation, simulation, and the exact
	// transform must agree on the simple wireless model with c = 1
	// (approximation within its grid bias, simulation within
	// Monte-Carlo noise).
	b := Battery{CapacityAs: MilliampHours(500), AvailableFraction: 1}
	w, err := SimpleWireless()
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{6 * 3600, 9 * 3600, 12 * 3600, 15 * 3600}
	exact, err := ExactLifetimeCDF(b, w, times)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := LifetimeDistribution(b, w, MilliampHours(2), times)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := SimulateLifetimes(b, w, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	simCurve := samples.CDF(times)
	for k := range times {
		if math.Abs(approx.EmptyProb[k]-exact[k]) > 0.05 {
			t.Errorf("t=%vh: approximation %v vs exact %v", times[k]/3600, approx.EmptyProb[k], exact[k])
		}
		if math.Abs(simCurve[k]-exact[k]) > 0.06 { // ±4σ at n=1000 ≈ 0.06
			t.Errorf("t=%vh: simulation %v vs exact %v", times[k]/3600, simCurve[k], exact[k])
		}
	}
}

func TestExactRequiresCOne(t *testing.T) {
	w, err := SimpleWireless()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactLifetimeCDF(PaperBattery(), w, []float64{3600}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("c<1: err = %v", err)
	}
	if _, err := ExactLifetimeCDF(Battery{CapacityAs: 1, AvailableFraction: 1}, nil, []float64{1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil workload: err = %v", err)
	}
}

func TestSimulateLifetimesStats(t *testing.T) {
	b := Battery{CapacityAs: 7200, AvailableFraction: 1}
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SimulateLifetimes(b, w, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 200 {
		t.Errorf("N = %d", s.N())
	}
	mean, err := s.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-15000) > 300 {
		t.Errorf("mean = %v, want ≈ 15000", mean)
	}
	med, err := s.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-mean) > 500 {
		t.Errorf("median %v far from mean %v", med, mean)
	}
	if _, err := s.Quantile(2); err == nil {
		t.Error("Quantile(2) accepted")
	}
}

func TestLifetimeDistributionErrors(t *testing.T) {
	b := PaperBattery()
	if _, err := LifetimeDistribution(b, nil, 25, []float64{1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil workload: err = %v", err)
	}
	w, err := OnOffWorkload(1, 1, 0.96)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LifetimeDistribution(b, w, 7, []float64{1}); err == nil {
		t.Error("non-divisor delta accepted")
	}
}

func TestBurstOutlivesSimple(t *testing.T) {
	// The headline qualitative result of Figure 11, through the public
	// API at a coarse grid: the burst workload's battery outlives the
	// simple one.
	b := PaperBattery()
	b.CapacityAs = MilliampHours(800)
	simple, err := SimpleWireless()
	if err != nil {
		t.Fatal(err)
	}
	burst, err := BurstWireless()
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{20 * 3600}
	delta := MilliampHours(10)
	rs, err := LifetimeDistribution(b, simple, delta, times)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := LifetimeDistribution(b, burst, delta, times)
	if err != nil {
		t.Fatal(err)
	}
	if rb.EmptyProb[0] >= rs.EmptyProb[0] {
		t.Errorf("burst Pr[empty at 20h] %v not below simple %v", rb.EmptyProb[0], rs.EmptyProb[0])
	}
}
