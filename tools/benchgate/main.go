// Command benchgate compares benchmark results against a committed
// baseline and fails on regressions — the CI tripwire that keeps the
// SpMV runtime's performance claims honest across commits.
//
// Input files are `go test -json` streams containing benchmark output
// (the BENCH_*.json artifacts written by `make bench`). For every
// benchmark the gate extracts ns/op — taking the minimum across
// repeated runs (`-count=N`), the standard noise filter for shared
// runners — plus allocs/op when the benchmark reported it, and compares
// against the baseline:
//
//   - ns/op above baseline by more than -tolerance (default 10%) fails;
//   - allocs/op above baseline by more than the same tolerance fails
//     (alloc counts are deterministic, so this catches accidental
//     per-call allocations the moment they land);
//   - a baseline benchmark missing from the input fails, so renaming or
//     deleting a benchmark forces a deliberate baseline refresh;
//   - benchmarks absent from the baseline are reported but pass —
//     refresh with -write-baseline to start gating them.
//
// Faster-than-baseline results always pass; commit a refreshed baseline
// (`make bench-baseline`) to lock improvements in.
//
// Benchmark names are keyed as "<package>.<name>" with the trailing
// -GOMAXPROCS suffix stripped, so baselines written on an n-core
// machine compare on an m-core one. Avoid benchmark names ending in a
// literal "-<digits>" segment; they are indistinguishable from the
// GOMAXPROCS suffix. (Names like "persistent-w8" are safe — the suffix
// strip requires the dash to immediately precede the digits.)
//
// Exit status: 0 all gates passed, 1 regression (or missing benchmark),
// 2 usage or input-parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

const (
	exitOK         = 0
	exitRegression = 1
	exitUsage      = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// measurement is one benchmark's gated quantities. AllocsPerOp is nil
// when the benchmark did not report allocations.
type measurement struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// baseline is the committed reference file.
type baseline struct {
	// Tolerance is the relative headroom regressions are allowed before
	// failing; the -tolerance flag overrides it when set explicitly.
	Tolerance  float64                `json:"tolerance"`
	Benchmarks map[string]measurement `json:"benchmarks"`
}

// testEvent is the subset of the `go test -json` event schema benchgate
// consumes.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches one complete benchmark result line, e.g.
//
//	BenchmarkUniformizedSpMV/persistent-w8-16   123   456789 ns/op   7 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.eE+]+) ns/op(.*)$`)

// allocsField extracts the allocs/op column when present.
var allocsField = regexp.MustCompile(`\s([0-9.eE+]+) allocs/op`)

// gomaxprocsSuffix is the trailing -N the benchmark runner appends when
// GOMAXPROCS != 1; the dash must immediately precede the digits.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseStream folds one `go test -json` stream into per-benchmark
// measurements, keyed "<package>.<name>". Benchmark text can arrive
// split across several Output events (the runner prints the padded name
// before the measurements), so output is reassembled per package before
// line-scanning. Repeated runs of one benchmark keep the minimum ns/op
// and the allocs/op of that fastest run.
func parseStream(r io.Reader, into map[string]measurement) error {
	perPkg := make(map[string]*strings.Builder)
	order := []string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("not a `go test -json` stream: %w (line %q)", err, truncate(line, 80))
		}
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		b, ok := perPkg[ev.Package]
		if !ok {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for _, pkg := range order {
		for _, line := range strings.Split(perPkg[pkg].String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return fmt.Errorf("package %s: bad ns/op in %q: %w", pkg, line, err)
			}
			name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
			key := pkg + "." + name
			cur := measurement{NsPerOp: ns}
			if am := allocsField.FindStringSubmatch(m[3]); am != nil {
				a, err := strconv.ParseFloat(am[1], 64)
				if err != nil {
					return fmt.Errorf("package %s: bad allocs/op in %q: %w", pkg, line, err)
				}
				cur.AllocsPerOp = &a
			}
			if prev, seen := into[key]; !seen || cur.NsPerOp < prev.NsPerOp {
				into[key] = cur
			}
		}
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// gate compares current measurements against the baseline and returns
// the failures and informational notes.
func gate(base baseline, cur map[string]measurement, tol float64) (failures, notes []string) {
	keys := make([]string, 0, len(base.Benchmarks))
	for k := range base.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		want := base.Benchmarks[k]
		got, ok := cur[k]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"%s: in baseline but not in results — deleted or renamed? refresh with -write-baseline if intended", k))
			continue
		}
		if limit := want.NsPerOp * (1 + tol); got.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by %.1f%% (tolerance %.0f%%)",
				k, got.NsPerOp, want.NsPerOp, 100*(got.NsPerOp/want.NsPerOp-1), 100*tol))
		}
		if want.AllocsPerOp != nil && got.AllocsPerOp != nil {
			if limit := *want.AllocsPerOp * (1 + tol); *got.AllocsPerOp > limit {
				failures = append(failures, fmt.Sprintf(
					"%s: %.1f allocs/op exceeds baseline %.1f allocs/op (tolerance %.0f%%)",
					k, *got.AllocsPerOp, *want.AllocsPerOp, 100*tol))
			}
		}
	}
	for k := range cur {
		if _, ok := base.Benchmarks[k]; !ok {
			notes = append(notes, fmt.Sprintf("%s: not in baseline (passes; -write-baseline to gate it)", k))
		}
	}
	sort.Strings(notes)
	return failures, notes
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against (or write)")
	tolerance := fs.Float64("tolerance", 0, "relative regression headroom; 0 uses the baseline's own tolerance (default 0.10)")
	write := fs.Bool("write-baseline", false, "write the parsed results as the new baseline instead of gating")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchgate [flags] BENCH_file.json...\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "benchgate: no input files (expected go test -json benchmark streams)")
		fs.Usage()
		return exitUsage
	}
	if *tolerance < 0 || math.IsNaN(*tolerance) {
		fmt.Fprintf(stderr, "benchgate: tolerance %v out of range\n", *tolerance)
		return exitUsage
	}

	cur := make(map[string]measurement)
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return exitUsage
		}
		err = parseStream(f, cur)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %s: %v\n", path, err)
			return exitUsage
		}
	}
	if len(cur) == 0 {
		fmt.Fprintln(stderr, "benchgate: no benchmark results found in input")
		return exitUsage
	}

	if *write {
		tol := *tolerance
		if tol == 0 {
			tol = 0.10
		}
		out := baseline{Tolerance: tol, Benchmarks: cur}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return exitRegression
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return exitRegression
		}
		fmt.Fprintf(stdout, "benchgate: wrote %d benchmarks to %s (tolerance %.0f%%)\n",
			len(cur), *baselinePath, 100*tol)
		return exitOK
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v (run with -write-baseline to create it)\n", err)
		return exitUsage
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchgate: %s: %v\n", *baselinePath, err)
		return exitUsage
	}
	tol := *tolerance
	if tol == 0 {
		tol = base.Tolerance
	}
	if tol <= 0 {
		tol = 0.10
	}

	failures, notes := gate(base, cur, tol)
	for _, n := range notes {
		fmt.Fprintf(stdout, "note: %s\n", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(stderr, "FAIL: %s\n", f)
		}
		fmt.Fprintf(stderr, "benchgate: %d regression(s) against %s\n", len(failures), *baselinePath)
		return exitRegression
	}
	fmt.Fprintf(stdout, "benchgate: %d benchmarks within %.0f%% of %s\n",
		len(base.Benchmarks), 100*tol, *baselinePath)
	return exitOK
}
