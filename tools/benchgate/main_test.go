package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stream builds a `go test -json` fragment carrying the given benchmark
// output lines, splitting each line into a padded-name event and a
// measurement event — the shape the real runner produces.
func stream(pkg string, lines ...string) string {
	var b strings.Builder
	for _, line := range lines {
		name, rest, _ := strings.Cut(line, "\t")
		for _, out := range []string{name + "         \t", rest + "\n"} {
			ev, _ := json.Marshal(map[string]string{
				"Action": "output", "Package": pkg, "Output": out,
			})
			b.Write(ev)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseStreamReassemblesAndTakesMin(t *testing.T) {
	in := stream("batlife/internal/sparse",
		"BenchmarkUniformizedSpMV/persistent-w8-16\t     100\t    540000 ns/op",
		"BenchmarkUniformizedSpMV/persistent-w8-16\t     120\t    520000 ns/op", // -count rerun, faster
		"BenchmarkFused\t     200\t    910.5 ns/op\t      64 B/op\t       3 allocs/op",
	)
	got := make(map[string]measurement)
	if err := parseStream(strings.NewReader(in), got); err != nil {
		t.Fatal(err)
	}
	spmv, ok := got["batlife/internal/sparse.BenchmarkUniformizedSpMV/persistent-w8"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped; keys: %v", keys(got))
	}
	if spmv.NsPerOp != 520000 {
		t.Errorf("min-of-N ns/op = %v, want 520000", spmv.NsPerOp)
	}
	fused := got["batlife/internal/sparse.BenchmarkFused"]
	if fused.NsPerOp != 910.5 || fused.AllocsPerOp == nil || *fused.AllocsPerOp != 3 {
		t.Errorf("fused = %+v, want 910.5 ns/op with 3 allocs/op", fused)
	}
}

func keys(m map[string]measurement) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestParseStreamRejectsNonJSON(t *testing.T) {
	got := make(map[string]measurement)
	if err := parseStream(strings.NewReader("BenchmarkFoo 1 5 ns/op\n"), got); err == nil {
		t.Fatal("plain-text benchmark output accepted; want a parse error demanding -json streams")
	}
}

// TestGateRegressionAndHeadroom pins the gate arithmetic: within
// tolerance passes, beyond fails, faster always passes.
func TestGateRegressionAndHeadroom(t *testing.T) {
	base := baseline{Benchmarks: map[string]measurement{
		"p.BenchmarkA": {NsPerOp: 1000},
		"p.BenchmarkB": {NsPerOp: 1000},
		"p.BenchmarkC": {NsPerOp: 1000},
	}}
	cur := map[string]measurement{
		"p.BenchmarkA": {NsPerOp: 1099}, // +9.9%: inside 10%
		"p.BenchmarkB": {NsPerOp: 1200}, // +20%: regression
		"p.BenchmarkC": {NsPerOp: 600},  // improvement
	}
	failures, notes := gate(base, cur, 0.10)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkB") {
		t.Errorf("failures = %v, want exactly the 20%% regression on BenchmarkB", failures)
	}
	if len(notes) != 0 {
		t.Errorf("notes = %v, want none", notes)
	}
}

func TestGateAllocRegression(t *testing.T) {
	three, five := 3.0, 5.0
	base := baseline{Benchmarks: map[string]measurement{
		"p.BenchmarkA": {NsPerOp: 1000, AllocsPerOp: &three},
	}}
	cur := map[string]measurement{
		"p.BenchmarkA": {NsPerOp: 1000, AllocsPerOp: &five},
	}
	failures, _ := gate(base, cur, 0.10)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Errorf("failures = %v, want one allocs/op regression", failures)
	}
}

func TestGateMissingBenchmarkFails(t *testing.T) {
	base := baseline{Benchmarks: map[string]measurement{
		"p.BenchmarkGone": {NsPerOp: 1000},
	}}
	failures, _ := gate(base, map[string]measurement{"p.BenchmarkNew": {NsPerOp: 1}}, 0.10)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkGone") {
		t.Errorf("failures = %v, want missing-benchmark failure", failures)
	}
}

// TestRunRoundTrip drives the binary path end to end: write a baseline
// from one stream, gate an identical stream (pass), then gate a stream
// with ns/op inflated 20% — the documented negative test for the 10%
// default tolerance — and require exit 1.
func TestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_BASELINE.json")
	good := writeFile(t, dir, "BENCH_good.json", stream("batlife/internal/sparse",
		"BenchmarkUniformizedSpMV/persistent-w8\t     100\t    500000 ns/op",
		"BenchmarkUniformizedSpMV/spawn-w8\t     100\t    700000 ns/op",
	))
	inflated := writeFile(t, dir, "BENCH_inflated.json", stream("batlife/internal/sparse",
		"BenchmarkUniformizedSpMV/persistent-w8\t     100\t    600000 ns/op", // +20%
		"BenchmarkUniformizedSpMV/spawn-w8\t     100\t    700000 ns/op",
	))

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-write-baseline", good}, &stdout, &stderr); code != exitOK {
		t.Fatalf("write-baseline exit %d, stderr: %s", code, stderr.String())
	}
	if code := run([]string{"-baseline", basePath, good}, &stdout, &stderr); code != exitOK {
		t.Fatalf("self-gate exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-baseline", basePath, inflated}, &stdout, &stderr); code != exitRegression {
		t.Fatalf("20%%-inflated gate exit %d, want %d; stderr: %s", code, exitRegression, stderr.String())
	}
	if !strings.Contains(stderr.String(), "persistent-w8") || !strings.Contains(stderr.String(), "20.0%") {
		t.Errorf("regression report missing culprit/magnitude: %s", stderr.String())
	}
	// A looser explicit tolerance lets the same input through.
	if code := run([]string{"-baseline", basePath, "-tolerance", "0.25", inflated}, &stdout, &stderr); code != exitOK {
		t.Fatalf("25%%-tolerance gate exit %d, stderr: %s", code, stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != exitUsage {
		t.Errorf("no files: exit %d, want %d", code, exitUsage)
	}
	if code := run([]string{"/nonexistent/bench.json"}, &stdout, &stderr); code != exitUsage {
		t.Errorf("missing file: exit %d, want %d", code, exitUsage)
	}
	dir := t.TempDir()
	empty := writeFile(t, dir, "empty.json", "")
	if code := run([]string{"-baseline", filepath.Join(dir, "nope.json"), empty}, &stdout, &stderr); code != exitUsage {
		t.Errorf("empty stream: exit %d, want %d", code, exitUsage)
	}
	good := writeFile(t, dir, "ok.json", stream("p", "BenchmarkA\t 1\t 5 ns/op"))
	if code := run([]string{"-baseline", filepath.Join(dir, "nope.json"), good}, &stdout, &stderr); code != exitUsage {
		t.Errorf("absent baseline: exit %d, want %d", code, exitUsage)
	}
}

// TestBaselineFileShape locks the on-disk schema (other tooling may
// read it) and that fmt.Stringer-ish float noise stays out.
func TestBaselineFileShape(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "b.json")
	in := writeFile(t, dir, "in.json", stream("p", "BenchmarkA\t 10\t 123 ns/op"))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-write-baseline", in}, &stdout, &stderr); code != exitOK {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Tolerance != 0.10 {
		t.Errorf("default tolerance = %v, want 0.10", b.Tolerance)
	}
	if m := b.Benchmarks["p.BenchmarkA"]; m.NsPerOp != 123 || m.AllocsPerOp != nil {
		t.Errorf("benchmark entry = %+v", m)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Error("baseline file does not end in newline")
	}
}
