// Package loading and type-checking for numlint.
//
// numlint must run with `go run ./tools/numlint ./...` in an offline
// container, so it cannot depend on golang.org/x/tools/go/packages.
// Instead it resolves module-local import paths ("batlife/...") straight
// to directories under the module root and type-checks them with
// go/types, delegating standard-library imports to the compiler "source"
// importer. The module has no external requirements (see go.mod), so the
// two importers together cover the whole build graph.
package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type packageInfo struct {
	path  string
	dir   string
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info

	loading bool
	err     error
}

type loader struct {
	fset    *token.FileSet
	modDir  string
	modPath string
	tags    []string
	std     types.ImporterFrom
	pkgs    map[string]*packageInfo
}

func newLoader(modDir, modPath string, tags []string) *loader {
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		panic("numlint: source importer does not implement ImporterFrom")
	}
	return &loader{
		fset:    fset,
		modDir:  modDir,
		modPath: modPath,
		tags:    tags,
		std:     std,
		pkgs:    map[string]*packageInfo{},
	}
}

// loaded returns every successfully loaded package — requested patterns
// and their transitive module-local imports — sorted by import path, so
// interprocedural passes see one deterministic module-wide view.
func (l *loader) loaded() []*packageInfo {
	out := make([]*packageInfo, 0, len(l.pkgs))
	for _, pi := range l.pkgs {
		if pi.err == nil && !pi.loading && pi.pkg != nil {
			out = append(out, pi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("numlint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("numlint: no go.mod above %s", dir)
		}
		d = parent
	}
}

func (l *loader) isModuleLocal(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

func (l *loader) dirFor(path string) string {
	if path == l.modPath {
		return l.modDir
	}
	rel := strings.TrimPrefix(path, l.modPath+"/")
	return filepath.Join(l.modDir, filepath.FromSlash(rel))
}

// load parses and type-checks one module-local package, memoized by
// import path.
func (l *loader) load(path string) (*packageInfo, error) {
	if pi, ok := l.pkgs[path]; ok {
		if pi.loading {
			return nil, fmt.Errorf("numlint: import cycle through %s", path)
		}
		return pi, pi.err
	}
	pi := &packageInfo{path: path, dir: l.dirFor(path), fset: l.fset, loading: true}
	l.pkgs[path] = pi
	pi.err = l.loadInto(pi)
	pi.loading = false
	return pi, pi.err
}

func (l *loader) loadInto(pi *packageInfo) error {
	ctx := build.Default
	ctx.BuildTags = append(ctx.BuildTags, l.tags...)
	bp, err := ctx.ImportDir(pi.dir, 0)
	if err != nil {
		return fmt.Errorf("numlint: list %s: %w", pi.dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(pi.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("numlint: parse: %w", err)
		}
		pi.files = append(pi.files, f)
	}

	pi.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*chainImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pi.pkg, _ = conf.Check(pi.path, l.fset, pi.files, pi.info)
	if len(typeErrs) > 0 {
		return fmt.Errorf("numlint: type errors in %s:\n\t%v", pi.path, typeErrs[0])
	}
	return nil
}

// chainImporter routes module-local imports to the loader and everything
// else (the standard library) to the source importer.
type chainImporter loader

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*loader)(c)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModuleLocal(path) {
		pi, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// expandPatterns turns command-line package patterns (directories, import
// paths, or the "/..." wildcard) into module-local import paths.
func (l *loader) expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		var dir string
		switch {
		case pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "/"):
			abs, err := filepath.Abs(pat)
			if err != nil {
				return nil, err
			}
			dir = abs
		case l.isModuleLocal(pat):
			dir = l.dirFor(pat)
		default:
			return nil, fmt.Errorf("numlint: pattern %q is outside module %s", pat, l.modPath)
		}
		rel, err := filepath.Rel(l.modDir, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("numlint: %q is outside module root %s", pat, l.modDir)
		}
		if !recursive {
			if path, ok := l.importPathFor(dir); ok {
				add(path)
			}
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if path, ok := l.importPathFor(p); ok {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// importPathFor maps an absolute directory to its module import path if
// the directory holds at least one buildable Go file.
func (l *loader) importPathFor(dir string) (string, bool) {
	ctx := build.Default
	ctx.BuildTags = append(ctx.BuildTags, l.tags...)
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil || len(bp.GoFiles) == 0 {
		return "", false
	}
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil {
		return "", false
	}
	if rel == "." {
		return l.modPath, true
	}
	return l.modPath + "/" + filepath.ToSlash(rel), true
}
