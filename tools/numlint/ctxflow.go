package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflowAnalyzer keeps the cancellation chain unbroken: a function
// that receives a context.Context (directly, or inside an options
// struct with a Context field) and calls a module-local callee that
// accepts one must actually pass a context along — again either
// directly or via an options struct. The Sweep → Solver → engine →
// ctmc.Transient chain threads cancellation through such structs, so a
// call that silently drops the context turns a cancellable solve into
// an unbounded one.
//
// Two findings:
//
//	dropped   a context-capable callee is invoked with no context-ish argument
//	fresh     context.Background()/TODO() is minted while a caller context is in scope
var ctxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag calls that drop an in-scope context.Context on its way to a context-capable callee",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) {
	funcsOf(pass, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
		sig, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		st := sig.Type().(*types.Signature)
		direct, viaStruct := paramsCarryContext(st.Params())
		if !direct && !viaStruct {
			return
		}
		checkCtxBody(pass, fd.Name.Name, body, direct)
	})
}

// checkCtxBody walks one function body that has a context in scope.
// Nested function literals inherit the enclosing scope (closures can
// reference ctx), so unlike the other flow analyzers they are walked
// too rather than treated as separate frames.
func checkCtxBody(pass *Pass, name string, body *ast.BlockStmt, directCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if directCtx && fn.Pkg().Path() == "context" &&
			(fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(),
				"%s has a caller context in scope but mints context.%s, detaching the cancellation chain",
				name, fn.Name())
			return true
		}
		if !strings.HasPrefix(fn.Pkg().Path(), pass.ModPath) {
			return true
		}
		csig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		calleeDirect, calleeStruct := paramsCarryContext(csig.Params())
		if !calleeDirect && !calleeStruct {
			return true
		}
		for _, arg := range call.Args {
			t := pass.Info.Types[arg].Type
			if t == nil {
				continue
			}
			if isContextType(t) || structCarriesContext(t) {
				return true // context travels with this argument
			}
		}
		pass.Reportf(call.Pos(),
			"%s has a context in scope but calls %s (context-capable) without passing one",
			name, fn.Name())
		return true
	})
}

// paramsCarryContext reports whether a parameter list includes a
// context.Context directly, or a struct with a context field.
func paramsCarryContext(params *types.Tuple) (direct, viaStruct bool) {
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if isContextType(t) {
			direct = true
		} else if structCarriesContext(t) {
			viaStruct = true
		}
	}
	return direct, viaStruct
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// structCarriesContext reports whether t (or *t) is a struct with a
// context.Context field — the options-struct idiom used across the
// solver stack.
func structCarriesContext(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
