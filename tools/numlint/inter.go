// Interprocedural layer: after every requested package is loaded, the
// driver builds one module-wide call graph and summary set
// (internal/callgraph + internal/summary) and hands them to the
// analyzers through Pass.Inter. divguard and probconserve use the
// summaries to discharge guards across call boundaries; the contract
// analyzer enforces //numlint:requires / ensures declarations.
package main

import (
	"go/ast"
	"go/types"

	"batlife/tools/numlint/internal/callgraph"
	"batlife/tools/numlint/internal/summary"
)

// interState is the shared interprocedural view of one numlint run.
type interState struct {
	graph  *callgraph.Graph
	sums   *summary.Set
	issues []summary.Issue

	// bodies caches the per-function solved lattices so divguard and
	// contract don't each re-solve every body.
	bodies map[*ast.FuncDecl]*summary.AnalyzerBody
}

// buildInter computes the interprocedural state over everything the
// loader has pulled in (requested patterns plus transitive deps, so
// summaries exist for out-of-pattern callees too).
func buildInter(l *loader) *interState {
	var pkgs []*callgraph.Package
	for _, pi := range l.loaded() {
		pkgs = append(pkgs, &callgraph.Package{
			Path:  pi.path,
			Fset:  pi.fset,
			Files: pi.files,
			Pkg:   pi.pkg,
			Info:  pi.info,
		})
	}
	g := callgraph.Build(pkgs)
	contracts, issues := summary.CollectContracts(pkgs)
	sums := summary.Compute(g, contracts, summary.Options{
		// Obligation inference mirrors the naninf/divguard envelope, so
		// interprocedural findings appear exactly where the
		// intraprocedural ones already would.
		InferBody: func(p *callgraph.Package, fd *ast.FuncDecl) bool {
			return returnsFloatInfo(p.Info, fd) && !docStatesPrecondition(fd.Doc)
		},
	})
	return &interState{
		graph:  g,
		sums:   sums,
		issues: issues,
		bodies: map[*ast.FuncDecl]*summary.AnalyzerBody{},
	}
}

// nodeOf resolves a declaration to its call-graph node.
func (st *interState) nodeOf(info *types.Info, fd *ast.FuncDecl) *callgraph.Node {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	return st.graph.Lookup(fn)
}

// analyzerBody returns the memoized interprocedural lattice view of one
// declared function, or nil when the declaration is unknown.
func (st *interState) analyzerBody(info *types.Info, fd *ast.FuncDecl) *summary.AnalyzerBody {
	if ab, ok := st.bodies[fd]; ok {
		return ab
	}
	n := st.nodeOf(info, fd)
	if n == nil || n.Decl == nil {
		return nil
	}
	ab := st.sums.AnalyzerBody(n)
	st.bodies[fd] = ab
	return ab
}

// hasRequiresContract reports whether fd declares //numlint:requires
// clauses — a machine-readable precondition, which exempts the function
// from naninf/divguard the same way a prose one does.
func (st *interState) hasRequiresContract(info *types.Info, fd *ast.FuncDecl) bool {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	ct := st.sums.ContractOf(fn)
	return ct != nil && len(ct.Requires) > 0
}

// contextPreds returns the predicates every visible call site
// establishes for one of fd's parameters (zero when the function is
// exported, address-taken, a method, or has an unguarded caller). A
// parameter guarded by every caller needs no guard in the body.
func (st *interState) contextPreds(info *types.Info, fd *ast.FuncDecl, obj types.Object) summary.PredSet {
	n := st.nodeOf(info, fd)
	if n == nil {
		return 0
	}
	sum := st.sums.Of(n.Fn)
	if sum == nil || len(sum.Context) == 0 {
		return 0
	}
	sig, ok := n.Fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	for i := 0; i < sig.Params().Len() && i < len(sum.Context); i++ {
		if sig.Params().At(i) == obj {
			return sum.Context[i]
		}
	}
	return 0
}

// returnsFloatInfo is returnsFloat without a Pass, for use before
// passes exist.
func returnsFloatInfo(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		t := info.Types[res.Type].Type
		if isFloat(t) {
			return true
		}
		if sl, ok := t.(*types.Slice); ok && isFloat(sl.Elem()) {
			return true
		}
	}
	return false
}
