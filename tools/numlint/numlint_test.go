package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// loadFixture type-checks one testdata package through the real loader
// and returns its unsuppressed diagnostics.
func loadFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modDir, modPath, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(modDir, modPath, nil)
	pi, err := l.load(modPath + "/tools/numlint/testdata/" + name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return runAnalyzers(pi, modPath, buildInter(l))
}

// keys reduces diagnostics to comparable "analyzer:line" strings.
func keys(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d", d.Analyzer, d.Pos.Line))
	}
	sort.Strings(out)
	return out
}

func assertFindings(t *testing.T, diags []Diagnostic, want []string) {
	t.Helper()
	got := keys(diags)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("findings %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("findings %v, want %v", got, want)
		}
	}
}

func TestFloatcmpFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "floatcmp"), []string{
		"floatcmp:9",
		"floatcmp:25",
	})
}

func TestNanInfFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "naninf"), []string{
		"naninf:9", // math.Log(x)
		"naninf:9", // 1/d
	})
}

func TestErrcheckFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "errcheck"), []string{
		"errchecklite:13",
		"errchecklite:14",
		"errchecklite:15",
		"errchecklite:17",
	})
}

func TestUnitsafetyFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "unitsafety"), []string{
		"unitsafety:21",
		"unitsafety:22",
		"unitsafety:26",
	})
}

func TestDivguardFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "divguard"), []string{
		"divguard:13", // x / d before the branch on d
		"divguard:26", // x / d on the d <= 0 branch
		"divguard:32", // math.Log(x) on the x < 0 branch
	})
}

func TestProbconserveFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "probconserve"), []string{
		"probconserve:15", // BuildUnguarded
		"probconserve:46", // DirtiedAfterCheck
		"probconserve:56", // HalfGuarded
		"probconserve:62", // BareReturn
	})
}

func TestCtxflowFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "ctxflow"), []string{
		"ctxflow:24", // solve(nil, n) with ctx in scope
		"ctxflow:29", // context.Background() with ctx in scope
	})
}

func TestSharedcaptureFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "sharedcapture"), []string{
		"sharedcapture:19", // total++ with no lock
		"sharedcapture:72", // out[next] shared index
		"sharedcapture:73", // next++ with no lock
		"sharedcapture:84", // return with mu held
	})
}

func TestHotallocFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "hotalloc"), []string{
		"hotalloc:22", // make
		"hotalloc:24", // append
		"hotalloc:33", // fmt.Sprintf
		"hotalloc:40", // string concatenation
	})
}

// TestContractFixture pins the contract analyzer plus the
// interprocedural behaviour of naninf and divguard: declared requires
// enforced at call sites, ensures discharged (or not) by the body,
// inferred obligations crossing call boundaries, and context facts
// suppressing naninf for helpers guarded at every call site (ctxHelper
// stays clean, leakHelper does not).
func TestContractFixture(t *testing.T) {
	assertFindings(t, loadFixture(t, "contract"), []string{
		"contract:45",  // badScale: scale requires nonzero(d)
		"naninf:57",    // leakHelper division, unguarded call site exists
		"divguard:60",  // leakCaller hands x to leakHelper unguarded
		"contract:90",  // distBad: ensures normalized not established
		"contract:109", // clampBad: ensures positive not established
		"contract:133", // feedBad: consume requires normalized(v)
		"contract:136", // typoContract: unknown predicate
	})
}

// TestRepoIsClean runs every analyzer over the whole module — the same
// gate CI applies with `go run ./tools/numlint ./...` — so a finding
// introduced anywhere in the tree fails the test suite too.
func TestRepoIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modDir, modPath, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(modDir, modPath, nil)
	paths, err := l.expandPatterns([]string{filepath.Join(modDir, "...")})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 20 {
		t.Fatalf("expected to discover the whole module, got %d packages: %v", len(paths), paths)
	}
	var pis []*packageInfo
	for _, path := range paths {
		pi, err := l.load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pis = append(pis, pi)
	}
	inter := buildInter(l)
	for _, pi := range pis {
		for _, d := range runAnalyzers(pi, modPath, inter) {
			t.Errorf("%s", d)
		}
	}
}

// TestBaselineFileIsEmpty pins the committed baseline to zero accepted
// findings. TestRepoIsClean proves the raw finding count is zero; this
// test makes sure a regression cannot be hidden by refreshing
// .numlint-baseline.json instead of fixing (or explicitly ignoring) the
// finding. If a baseline entry ever becomes genuinely necessary, update
// this test in the same change with the justification.
func TestBaselineFileIsEmpty(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modDir, _, err := findModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(modDir, ".numlint-baseline.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("baseline file: %v", err)
	}
	b, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range b.Findings {
		t.Errorf("baseline accepts a finding: %s in %s: %s (count %d)", e.Analyzer, e.File, e.Message, e.count())
	}
}
