package main

import (
	"go/ast"
	"go/token"
	"go/types"

	"batlife/tools/numlint/internal/callgraph"
	"batlife/tools/numlint/internal/flow"
	"batlife/tools/numlint/internal/summary"
)

// divguardAnalyzer is the dataflow upgrade of naninf: instead of asking
// "does the parameter appear in any condition anywhere?", it asks
// whether a positivity/non-zero guard *dominates* each dangerous
// operation. A guard inside one branch does not protect the other
// branch; a guard followed by reassignment protects nothing.
//
//	x / d           needs a dominating d != 0 (or d > 0) fact
//	math.Log(d)     needs a dominating d > 0 fact
//	math.Sqrt(d)    needs a dominating d >= 0 fact
//
// Scope matches naninf — float-typed parameters of float-returning
// functions — so the two analyzers agree on what a "float kernel" is,
// and a documented precondition ("must be", "positive", ...) exempts
// the function from both. Guards carried by short-circuit conjuncts
// count: in `d != 0 && 1/d > eps` the division is guarded.
//
// The two analyzers partition the findings rather than overlap: naninf
// owns parameters with no guard anywhere in the function, divguard owns
// parameters that *are* guarded somewhere but where the guard fails to
// dominate a use — exactly the cases the syntactic pass waves through.
var divguardAnalyzer = &Analyzer{
	Name: "divguard",
	Doc:  "flag division/Log/Sqrt of parameters with no dominating positivity guard on some path",
	Run:  runDivguard,
}

func runDivguard(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !returnsFloat(pass, fd) || docStatesPrecondition(fd.Doc) {
				continue
			}
			if pass.Inter != nil && pass.Inter.hasRequiresContract(pass.Info, fd) {
				continue // declared precondition: the contract analyzer owns it
			}
			allParams := floatParams(pass, fd)
			if len(allParams) == 0 {
				continue
			}
			// Restrict the intraprocedural checks to parameters naninf
			// considers guarded (they appear in some branch condition):
			// wholly unguarded parameters are naninf findings, not
			// divguard ones. The interprocedural call-site check below
			// covers every float parameter.
			params := map[types.Object]bool{}
			guarded := guardedObjects(pass, fd.Body)
			for obj := range allParams {
				if guarded[obj] {
					params[obj] = true
				}
			}
			if pass.Inter != nil {
				// Interprocedural view: entry facts carry the function's
				// declared requires and its call-site context, so a guard
				// in every caller discharges a division here.
				if ab := pass.Inter.analyzerBody(pass.Info, fd); ab != nil {
					for _, b := range ab.Graph.Blocks {
						for idx, node := range b.Nodes {
							facts, reachable := ab.FactsAt(b, idx)
							if !reachable {
								continue
							}
							walkWithFacts(pass, fd, params, allParams, node, facts)
						}
					}
					continue
				}
			}
			if len(params) == 0 {
				continue
			}
			g := flow.New(fd.Body)
			sol := flow.GuardFacts(pass.Info, g)
			for _, b := range g.Blocks {
				for idx, node := range b.Nodes {
					facts, reachable := flow.FactsAt(pass.Info, sol, b, idx)
					if !reachable {
						continue
					}
					walkWithFacts(pass, fd, params, nil, node, facts)
				}
			}
		}
	}
}

// walkWithFacts inspects one CFG node under the facts holding on its
// entry, refining them through short-circuit operators. params scopes
// the intraprocedural division/Log/Sqrt checks; callParams (nil when no
// interprocedural state exists) scopes the callee-obligation check.
func walkWithFacts(pass *Pass, fd *ast.FuncDecl, params, callParams map[types.Object]bool, node ast.Node, facts flow.Facts) {
	flow.Inspect(node, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			// Separate frame: fd's parameter guards say nothing about it.
			return false
		case *ast.BinaryExpr:
			if e.Op == token.LAND || e.Op == token.LOR {
				walkWithFacts(pass, fd, params, callParams, e.X, facts)
				refined := unionFacts(facts, flow.CondFacts(pass.Info, e.X, e.Op == token.LAND))
				walkWithFacts(pass, fd, params, callParams, e.Y, refined)
				return false
			}
			if e.Op == token.QUO {
				checkDivision(pass, fd, params, e, facts)
			}
		case *ast.CallExpr:
			checkMathArg(pass, fd, params, e, facts)
			if callParams != nil {
				checkCalleeRequires(pass, fd, callParams, e, facts)
			}
		}
		return true
	})
}

// checkCalleeRequires flags handing an unguarded parameter to a callee
// whose body (transitively) divides by it or feeds it to Log/Sqrt —
// obligations inferred bottom-up by internal/summary that the
// intraprocedural walk cannot see. Declared //numlint:requires clauses
// are excluded here; the contract analyzer enforces those.
func checkCalleeRequires(pass *Pass, fd *ast.FuncDecl, callParams map[types.Object]bool, call *ast.CallExpr, facts flow.Facts) {
	st := pass.Inter
	callee := callgraph.StaticCallee(pass.Info, call)
	if callee == nil {
		return
	}
	sum := st.sums.Of(callee)
	if sum == nil {
		return
	}
	sig := callee.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len() && i < len(sum.InferredRequires); i++ {
		need := sum.InferredRequires[i] & summary.StaticMask(false)
		if need == 0 || i >= len(call.Args) {
			continue
		}
		arg := call.Args[i]
		obj := paramIdent(pass, callParams, arg)
		if obj == nil {
			continue
		}
		have := st.sums.ScalarExprPreds(pass.Info, facts, arg)
		for _, p := range need.Preds() {
			if have.Has(p) {
				continue
			}
			pass.Reportf(arg.Pos(),
				"possible NaN/Inf: %s passes parameter %s to %s, whose body needs it %s, with no dominating guard",
				fd.Name.Name, obj.Name(), callee.Name(), p)
			break
		}
	}
}

func checkDivision(pass *Pass, fd *ast.FuncDecl, params map[types.Object]bool, e *ast.BinaryExpr, facts flow.Facts) {
	if tv := pass.Info.Types[e.Y]; tv.Value != nil {
		return // constant denominator
	}
	if !isFloat(pass.Info.Types[e.X].Type) && !isFloat(pass.Info.Types[e.Y].Type) {
		return
	}
	obj := paramIdent(pass, params, e.Y)
	if obj == nil || facts.Has(obj, flow.NonZero) {
		return
	}
	pass.Reportf(e.OpPos,
		"possible NaN/Inf: %s divides by parameter %s on a path with no dominating non-zero guard",
		fd.Name.Name, obj.Name())
}

func checkMathArg(pass *Pass, fd *ast.FuncDecl, params map[types.Object]bool, e *ast.CallExpr, facts flow.Facts) {
	need := flow.Positive
	switch {
	case isMathCall(pass.Info, e, "Log", "Log2", "Log10"):
	case isMathCall(pass.Info, e, "Sqrt"):
		need = flow.NonNegative
	default:
		return
	}
	if len(e.Args) != 1 {
		return
	}
	if tv := pass.Info.Types[e.Args[0]]; tv.Value != nil {
		return
	}
	obj := paramIdent(pass, params, e.Args[0])
	if obj == nil || facts.Has(obj, need) {
		return
	}
	fn := calleeFunc(pass.Info, e)
	pass.Reportf(e.Pos(),
		"possible NaN/Inf: %s applies math.%s to parameter %s on a path with no dominating %s guard",
		fd.Name.Name, fn.Name(), obj.Name(), need)
}

// paramIdent resolves e to a tracked parameter object when e is (after
// unwrapping parentheses) a plain identifier for one.
func paramIdent(pass *Pass, params map[types.Object]bool, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil || !params[obj] {
		return nil
	}
	return obj
}

func unionFacts(a, b flow.Facts) flow.Facts {
	out := flow.Facts{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
