package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotallocAnalyzer keeps annotated hot paths allocation-free. A
// function whose doc comment carries //numlint:hotpath is an inner-loop
// kernel (SpMV, uniformisation steps, telemetry record paths) where a
// single allocation per call multiplies into GC pressure across
// millions of iterations. The analyzer flags every construct that can
// allocate:
//
//	composite literals, make/new, append (may grow), closures
//	(func literals), go/defer statements, string concatenation,
//	string<->[]byte/[]rune conversions, and fmt.* calls
//
// Interface boxing of stack values is not modelled; pair every hotpath
// annotation with a testing.AllocsPerRun test to close that gap (see
// docs/STATIC_ANALYSIS.md).
var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocating constructs inside functions annotated //numlint:hotpath",
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) {
	funcsOf(pass, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
		if !funcDirective(fd, "hotpath") {
			return
		}
		name := fd.Name.Name
		ast.Inspect(body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CompositeLit:
				pass.Reportf(e.Pos(), "%s is a hotpath but allocates a composite literal", name)
			case *ast.FuncLit:
				pass.Reportf(e.Pos(), "%s is a hotpath but allocates a closure", name)
				return false // contents belong to the closure's frame
			case *ast.GoStmt:
				pass.Reportf(e.Pos(), "%s is a hotpath but spawns a goroutine", name)
			case *ast.DeferStmt:
				pass.Reportf(e.Pos(), "%s is a hotpath but defers (allocates a defer record in loops)", name)
			case *ast.BinaryExpr:
				if e.Op == token.ADD && isString(pass.Info.Types[e.X].Type) {
					pass.Reportf(e.OpPos, "%s is a hotpath but concatenates strings", name)
				}
			case *ast.CallExpr:
				reportHotCall(pass, name, e)
			}
			return true
		})
	})
}

func reportHotCall(pass *Pass, name string, call *ast.CallExpr) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s is a hotpath but calls %s", name, id.Name)
			case "append":
				pass.Reportf(call.Pos(), "%s is a hotpath but appends (may grow and allocate)", name)
			}
			return
		}
	}
	// Conversions between strings and byte/rune slices copy.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.Info.Types[call.Args[0]].Type
		if (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from)) {
			pass.Reportf(call.Pos(), "%s is a hotpath but converts between string and slice (copies)", name)
		}
		return
	}
	// fmt.* formats through interfaces and allocates.
	if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s is a hotpath but calls fmt.%s (formats and allocates)", name, fn.Name())
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
