// Analysis framework for numlint.
//
// The container this repository builds in has no module proxy access, so
// the driver mirrors the shape of golang.org/x/tools/go/analysis on top
// of the standard library alone: an Analyzer owns a Run function that
// receives a type-checked Pass and reports Diagnostics. Suppression is
// line-based via //numlint:ignore directives (see docs/DEVELOPING.md).
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in ignore directives.
	Name string
	// Doc is a one-line description shown by -help.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ModPath is the module path; analyzers use it to scope findings to
	// module-local callees.
	ModPath string
	// Inter is the module-wide interprocedural state (call graph +
	// function summaries), shared by every pass of a run. Nil only in
	// stripped-down unit tests.
	Inter *interState

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is a single finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// ignoreDirectives maps filename -> line -> analyzer names suppressed on
// that line. The sentinel "*" suppresses every analyzer.
type ignoreDirectives map[string]map[int][]string

// collectIgnores scans the comments of the files for
// //numlint:ignore [analyzer] [reason...] directives.
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreDirectives {
	dir := ignoreDirectives{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "numlint:ignore") {
					continue
				}
				rest := strings.Fields(strings.TrimPrefix(text, "numlint:ignore"))
				name := "*"
				if len(rest) > 0 && isAnalyzerName(rest[0]) {
					name = rest[0]
				}
				pos := fset.Position(c.Pos())
				m := dir[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					dir[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], name)
			}
		}
	}
	return dir
}

// suppressed reports whether d is covered by a directive on its own line
// or on the line immediately above.
func (dir ignoreDirectives) suppressed(d Diagnostic) bool {
	m := dir[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range m[line] {
			if name == "*" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

func isAnalyzerName(s string) bool {
	for _, a := range analyzers {
		if a.Name == s {
			return true
		}
	}
	return false
}

// runAnalyzers executes every analyzer over one loaded package and
// returns the unsuppressed diagnostics sorted by position.
func runAnalyzers(pi *packageInfo, modPath string, inter *interState) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pi.fset,
			Files:    pi.files,
			Pkg:      pi.pkg,
			Info:     pi.info,
			ModPath:  modPath,
			Inter:    inter,
			diags:    &diags,
		}
		a.Run(pass)
	}
	ignores := collectIgnores(pi.fset, pi.files)
	kept := diags[:0]
	for _, d := range diags {
		if !ignores.suppressed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept
}

// --- shared type helpers -------------------------------------------------

// isFloat reports whether t is (or has underlying) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// calleeFunc resolves the called function or method object of a call
// expression, or nil for conversions, builtins, and indirect calls
// through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isMathCall reports whether call invokes math.<name>.
func isMathCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
