package main

import (
	"go/ast"
	"go/token"
	"go/types"

	"batlife/tools/numlint/internal/callgraph"
	"batlife/tools/numlint/internal/flow"
	"batlife/tools/numlint/internal/summary"
)

// contractAnalyzer enforces the machine-checked numeric contracts:
//
//	//numlint:requires positive(lambda), nonzero(d)
//	//numlint:ensures normalized
//	//numlint:asserts nonnegative(xs)
//
// Three obligations are verified per package:
//
//  1. Directives must parse and resolve — unknown predicates, missing
//     parameters, and shape mismatches (normalized on a scalar) are
//     findings at the directive.
//  2. A declared ensures must be provable: on every reachable return,
//     the scalar guard lattice or the vector bless lattice must
//     establish the predicate for the result (runtime-only predicates —
//     finite, unitinterval on a scalar — are exempt; the generated
//     debugchecks shims own those).
//  3. A declared requires must be discharged at every static call site:
//     the argument has to be provably compliant via dominating guards,
//     constants, assert calls, the caller's own contract, or callee
//     ensures. Calls inside function literals are checked in their own
//     frame.
//
// The summaries behind 2 and 3 come from Pass.Inter (see inter.go) and
// propagate through call chains: a function returning another's result
// inherits its ensures, recursion included.
var contractAnalyzer = &Analyzer{
	Name: "contract",
	Doc:  "verify //numlint:requires/ensures contracts: bodies discharge ensures, call sites satisfy requires",
	Run:  runContract,
}

func runContract(pass *Pass) {
	st := pass.Inter
	if st == nil {
		return
	}
	for _, is := range st.issues {
		if is.PkgPath == pass.Pkg.Path() {
			pass.Reportf(is.Pos, "bad contract: %s", is.Msg)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			checkEnsuresDischarged(pass, fd, fn)
			if fd.Body != nil {
				if ab := st.analyzerBody(pass.Info, fd); ab != nil {
					checkContractCalls(pass, ab)
				}
			}
		}
	}
	// Function literals are separate frames: no contract of their own,
	// but the calls inside still owe their callees' requires.
	funcLitsOf(pass, func(lit *ast.FuncLit) {
		checkContractCalls(pass, st.sums.LitBody(pass.Info, lit))
	})
}

// checkEnsuresDischarged reports declared ensures clauses the body does
// not establish on every reachable return.
func checkEnsuresDischarged(pass *Pass, fd *ast.FuncDecl, fn *types.Func) {
	st := pass.Inter
	ct := st.sums.ContractOf(fn)
	sum := st.sums.Of(fn)
	if ct == nil || sum == nil || fd.Body == nil {
		return
	}
	for _, cl := range ct.Ensures {
		if !cl.Pred.StaticallyCheckable(cl.Vector) {
			continue // runtime-only: the generated shim checks it
		}
		if cl.Index < len(sum.Proven) && !sum.Proven[cl.Index].Has(cl.Pred) {
			pass.Reportf(cl.Pos,
				"%s declares ensures %s but the body does not establish it on every return (add a check.* assert or normalize step before returning)",
				fn.Name(), cl.Pred)
		}
	}
}

// checkContractCalls verifies the declared requires of every static
// callee in one solved frame.
func checkContractCalls(pass *Pass, ab *summary.AnalyzerBody) {
	for _, b := range ab.Graph.Blocks {
		for idx, nd := range b.Nodes {
			facts, ok := ab.FactsAt(b, idx)
			if !ok {
				continue
			}
			vec, _ := ab.VecAt(b, idx)
			contractWalk(pass, ab, nd, facts, vec)
		}
	}
}

// contractWalk inspects one CFG node under its entry state, refining
// scalar facts through short-circuit operators like divguard does.
func contractWalk(pass *Pass, ab *summary.AnalyzerBody, node ast.Node, facts flow.Facts, vec summary.VecFacts) {
	flow.Inspect(node, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false // checked in its own frame
		case *ast.BinaryExpr:
			if e.Op == token.LAND || e.Op == token.LOR {
				contractWalk(pass, ab, e.X, facts, vec)
				refined := unionFacts(facts, flow.CondFacts(pass.Info, e.X, e.Op == token.LAND))
				contractWalk(pass, ab, e.Y, refined, vec)
				return false
			}
		case *ast.CallExpr:
			checkCallRequires(pass, e, facts, vec)
		}
		return true
	})
}

func checkCallRequires(pass *Pass, call *ast.CallExpr, facts flow.Facts, vec summary.VecFacts) {
	st := pass.Inter
	fn := callgraph.StaticCallee(pass.Info, call)
	ct := st.sums.ContractOf(fn)
	if ct == nil {
		return
	}
	for _, cl := range ct.Requires {
		if !cl.Pred.StaticallyCheckable(cl.Vector) {
			continue
		}
		var args []ast.Expr
		switch {
		case cl.Variadic:
			if call.Ellipsis.IsValid() || cl.Index >= len(call.Args) {
				continue // spread slice: elements unknowable statically
			}
			args = call.Args[cl.Index:]
		case cl.Index < len(call.Args):
			args = call.Args[cl.Index : cl.Index+1]
		default:
			continue // f(g()) multi-value forwarding: unknowable
		}
		for _, arg := range args {
			var ok bool
			if cl.Vector {
				ok = st.sums.VecExprPreds(pass.Info, vec, arg).Has(cl.Pred)
			} else {
				ok = st.sums.ScalarExprPreds(pass.Info, facts, arg).Has(cl.Pred)
			}
			if !ok {
				pass.Reportf(arg.Pos(),
					"call to %s requires %s(%s); the argument is not provably %s here (guard it, assert it, or propagate the contract)",
					fn.Name(), cl.Pred, cl.Target, cl.Pred)
			}
		}
	}
}
