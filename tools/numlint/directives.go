// Directive handling shared by the flow-based analyzers.
//
// Beyond //numlint:ignore (see analysis.go), the dataflow suite
// understands two assertion directives:
//
//	//numlint:hotpath             function must stay allocation-free (hotalloc)
//	//numlint:normalized <why>    vector is normalized by construction (probconserve)
//
// hotpath appears in a function's doc comment and opts the function in
// to hotalloc. normalized appears on (or directly above) a return
// statement, or in the doc comment to cover every return, and records
// why conservation holds without a runtime guard.
package main

import (
	"go/ast"
	"go/token"
	"strings"
)

// funcDirective reports whether fd's doc comment carries the directive
// //numlint:<name>.
func funcDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if directiveNamed(c.Text, name) {
			return true
		}
	}
	return false
}

func directiveNamed(comment, name string) bool {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	return text == "numlint:"+name || strings.HasPrefix(text, "numlint:"+name+" ")
}

// lineDirectives maps filename -> line for every //numlint:<name>
// directive in files, so analyzers can honour assertions placed on or
// directly above a statement.
func lineDirectives(fset *token.FileSet, files []*ast.File, name string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !directiveNamed(c.Text, name) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// markedAt reports whether a directive from lineDirectives covers pos:
// same line or the line directly above.
func markedAt(dir map[string]map[int]bool, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	m := dir[p.Filename]
	return m != nil && (m[p.Line] || m[p.Line-1])
}

// funcsOf invokes fn for every function declaration with a body in the
// pass, and separately for every function literal, so flow analyses can
// treat each frame independently. decl is nil for literals.
func funcsOf(pass *Pass, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, fd.Body)
		}
	}
}

// funcLitsOf invokes fn for every function literal in the pass.
func funcLitsOf(pass *Pass, fn func(lit *ast.FuncLit)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn(lit)
			}
			return true
		})
	}
}
